package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func run(t *testing.T, src string, input []byte, cfg Config) *Result {
	t.Helper()
	prog, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, err := Run(prog, input, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
	main:	li   t0, 21
		add  t1, t0, t0      # 42
		li   a0, '0'
		add  a0, a0, t1      # '0'+42 = 'Z'
		sys  2               # putc
		halt
	`, nil, Config{})
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if string(res.Output) != "Z" {
		t.Fatalf("output %q, want Z", res.Output)
	}
}

func TestLoop(t *testing.T) {
	// Sum 1..10 = 55 and exit with that code.
	res := run(t, `
	main:	li t0, 0          # sum
		li t1, 1          # i
		li t2, 11
	loop:	beq t1, t2, done
		add t0, t0, t1
		addi t1, t1, 1
		j loop
	done:	mov a0, t0
		sys 4             # exit
	`, nil, Config{})
	if res.ExitCode != 55 {
		t.Fatalf("exit code %d, want 55", res.ExitCode)
	}
}

func TestMemoryAndData(t *testing.T) {
	res := run(t, `
		.data
	msg:	.asciiz "ok\n"
		.text
	main:	la  s0, msg
	loop:	lbu a0, 0(s0)
		beqz a0, done
		sys 2
		addi s0, s0, 1
		j loop
	done:	halt
	`, nil, Config{})
	if string(res.Output) != "ok\n" {
		t.Fatalf("output %q", res.Output)
	}
}

func TestWordLoadStore(t *testing.T) {
	res := run(t, `
		.data
	buf:	.space 32
		.text
	main:	la  s0, buf
		li  t0, -123456789
		sw  t0, 8(s0)
		lw  a0, 8(s0)
		sys 4
	`, nil, Config{})
	if res.ExitCode != -123456789 {
		t.Fatalf("exit code %d", res.ExitCode)
	}
}

func TestSignedByteLoad(t *testing.T) {
	res := run(t, `
		.data
	b:	.byte 0xFF
		.text
	main:	la t0, b
		lb a0, 0(t0)
		sys 4
	`, nil, Config{})
	if res.ExitCode != -1 {
		t.Fatalf("lb sign extension: got %d, want -1", res.ExitCode)
	}
}

func TestInputSyscall(t *testing.T) {
	// Echo input until EOF (-1).
	res := run(t, `
	main:	sys 1            # getc
		li  t0, -1
		beq a0, t0, done
		sys 2            # putc
		j   main
	done:	halt
	`, []byte("abc"), Config{})
	if string(res.Output) != "abc" {
		t.Fatalf("echo output %q", res.Output)
	}
}

func TestSbrk(t *testing.T) {
	res := run(t, `
	main:	li  a0, 4096
		sys 3            # sbrk -> old brk
		mov s0, a0
		li  t0, 7
		sw  t0, 0(s0)    # write to new heap
		lw  a0, 0(s0)
		sys 4
	`, nil, Config{})
	if res.ExitCode != 7 {
		t.Fatalf("heap write/read: %d", res.ExitCode)
	}
}

func TestCallReturn(t *testing.T) {
	res := run(t, `
	main:	li  a0, 6
		call double
		sys 4
	double:	add a0, a0, a0
		ret
	`, nil, Config{})
	if res.ExitCode != 12 {
		t.Fatalf("call/ret: %d", res.ExitCode)
	}
}

func TestRecursionFibonacci(t *testing.T) {
	// Classic recursive fib(10) = 55 exercising the stack.
	res := run(t, `
	main:	li a0, 10
		call fib
		sys 4
	fib:	li  t0, 2
		blt a0, t0, base
		addi sp, sp, -24
		sw  ra, 0(sp)
		sw  s0, 8(sp)
		sw  s1, 16(sp)
		mov s0, a0
		addi a0, s0, -1
		call fib
		mov s1, a0
		addi a0, s0, -2
		call fib
		add a0, a0, s1
		lw  ra, 0(sp)
		lw  s0, 8(sp)
		lw  s1, 16(sp)
		addi sp, sp, 24
	base:	ret
	`, nil, Config{})
	if res.ExitCode != 55 {
		t.Fatalf("fib(10) = %d, want 55", res.ExitCode)
	}
}

func TestValueEvents(t *testing.T) {
	var events []ValueEvent
	run(t, `
	main:	addi t0, zero, 5     # AddSub event, value 5
		slli t1, t0, 1       # Shift event, value 10
		sw   t0, 0(sp)       # no event (store)
		lw   t2, 0(sp)       # Loads event, value 5
		beq  t0, t0, skip    # no event (branch)
	skip:	and  t3, t0, t1      # Logic event, value 0
		slt  t4, t0, t1      # Set event, value 1
		mul  t5, t0, t1      # MultDiv event, value 50
		lui  t6, 2           # Lui event
		addi zero, zero, 0   # nop: writes zero reg, no event
		halt
	`, nil, Config{OnValue: func(ev ValueEvent) { events = append(events, ev) }})

	wantCats := []isa.Category{
		isa.CatAddSub, isa.CatShift, isa.CatLoads, isa.CatLogic,
		isa.CatSet, isa.CatMultDiv, isa.CatLui,
	}
	wantVals := []uint64{5, 10, 5, 0, 1, 50, 2 << 16}
	if len(events) != len(wantCats) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(wantCats), events)
	}
	for i, ev := range events {
		if ev.Cat != wantCats[i] || ev.Value != wantVals[i] {
			t.Errorf("event %d = cat %v value %d, want %v %d", i, ev.Cat, ev.Value, wantCats[i], wantVals[i])
		}
	}
}

func TestJALProducesNoEvent(t *testing.T) {
	var events []ValueEvent
	run(t, `
	main:	call f
		halt
	f:	ret
	`, nil, Config{OnValue: func(ev ValueEvent) { events = append(events, ev) }})
	if len(events) != 0 {
		t.Fatalf("jumps must not be predicted; got %+v", events)
	}
}

func TestSyscallEventIsOther(t *testing.T) {
	var events []ValueEvent
	run(t, `
	main:	sys 1
		halt
	`, []byte("x"), Config{OnValue: func(ev ValueEvent) { events = append(events, ev) }})
	if len(events) != 1 || events[0].Cat != isa.CatOther || events[0].Value != 'x' {
		t.Fatalf("events = %+v", events)
	}
}

func TestInstructionBudget(t *testing.T) {
	prog, err := asm.Assemble("t.s", "main: j main")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, nil, Config{MaxInstr: 1000})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if res.Instructions != 1000 {
		t.Fatalf("executed %d, want 1000", res.Instructions)
	}
}

func TestEventCap(t *testing.T) {
	prog, err := asm.Assemble("t.s", `
	main:	addi t0, t0, 1
		j main
	`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	res, err := Run(prog, nil, Config{
		MaxEvents: 50,
		OnValue:   func(ValueEvent) { n++ },
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if res.Events != 50 || n != 50 {
		t.Fatalf("events=%d callbacks=%d, want 50", res.Events, n)
	}
}

func TestMemoryFaults(t *testing.T) {
	cases := []string{
		"main: li t0, -8\n lw t1, 0(t0)\n halt",  // huge unsigned address
		"main: jr zero\n nop",                    // jump to pc 0 is fine; use bad target
		"main: li t0, 0x7fffffff\n jr t0\n halt", // pc outside text
		"main: li t0, -16\n sw t0, 0(t0)\n halt", // store out of range
	}
	for i, src := range cases {
		if i == 1 {
			continue // jr zero loops to main, not a fault; skip
		}
		prog, err := asm.Assemble("t.s", src)
		if err != nil {
			t.Fatalf("case %d assemble: %v", i, err)
		}
		_, err = Run(prog, nil, Config{MaxInstr: 100})
		var fault *Fault
		if !errors.As(err, &fault) && !errors.Is(err, ErrBudget) {
			t.Errorf("case %d: err = %v, want fault", i, err)
		}
	}
}

func TestDivisionConventions(t *testing.T) {
	res := run(t, `
	main:	li  t0, 7
		li  t1, -2
		div t2, t0, t1       # -3 (truncated)
		rem t3, t0, t1       # 1
		div t4, t0, zero     # 0 by convention
		rem t5, t0, zero     # 0 by convention
		add a0, t2, t3
		add a0, a0, t4
		add a0, a0, t5
		sys 4
	`, nil, Config{})
	if res.ExitCode != -2 {
		t.Fatalf("div/rem conventions: %d, want -2", res.ExitCode)
	}
}

func TestDynPerCatCounts(t *testing.T) {
	res := run(t, `
	main:	li t0, 3
	loop:	addi t0, t0, -1
		bnez t0, loop
		halt
	`, nil, Config{})
	if res.DynPerCat[isa.CatAddSub] != 4 { // li + 3 loop decrements
		t.Fatalf("AddSub count = %d, want 4", res.DynPerCat[isa.CatAddSub])
	}
	if res.Events != 4 {
		t.Fatalf("events = %d, want 4", res.Events)
	}
}

func TestShiftAndLogicOps(t *testing.T) {
	res := run(t, `
	main:	li   t0, -16
		srai t1, t0, 2      # -4
		srli t2, t0, 60     # 15
		li   t3, 12
		sll  t4, t3, t2     # 12 << 15
		nor  t5, zero, zero # -1
		xor  t6, t5, t0     # ^-16 ^ -1 = 15
		add  a0, t1, t2     # 11
		add  a0, a0, t6     # 26
		sys  4
	`, nil, Config{})
	if res.ExitCode != 26 {
		t.Fatalf("shift/logic: %d, want 26", res.ExitCode)
	}
}

func TestDataSegmentTooLarge(t *testing.T) {
	prog := &isa.Program{
		Text:     []isa.Inst{{Op: isa.OpHALT}},
		Data:     make([]byte, 1024),
		DataBase: 1 << 20,
	}
	_, err := Run(prog, nil, Config{MemSize: 1 << 20})
	if err == nil || !strings.Contains(err.Error(), "exceeds memory size") {
		t.Fatalf("err = %v", err)
	}
}

// batchProgram emits a known number of value events (li + 9 loop
// iterations x 2 register writes + final mov = 20 events).
const batchProgram = `
	main:	li t0, 9
		li t1, 0
	loop:	add t1, t1, t0
		addi t0, t0, -1
		bnez t0, loop
		mov a0, t1
		sys 4
	`

func TestBatchedDeliveryMatchesPerEvent(t *testing.T) {
	for _, batchSize := range []int{1, 3, 7, DefaultBatchSize} {
		var perEvent, batched []ValueEvent
		var flushes int
		res := run(t, batchProgram, nil, Config{
			OnValue:   func(ev ValueEvent) { perEvent = append(perEvent, ev) },
			OnValues:  func(evs []ValueEvent) { flushes++; batched = append(batched, evs...) },
			BatchSize: batchSize,
		})
		if uint64(len(perEvent)) != res.Events {
			t.Fatalf("OnValue saw %d events, result says %d", len(perEvent), res.Events)
		}
		if len(batched) != len(perEvent) {
			t.Fatalf("batch=%d: OnValues saw %d events, OnValue saw %d",
				batchSize, len(batched), len(perEvent))
		}
		for i := range perEvent {
			if batched[i] != perEvent[i] {
				t.Fatalf("batch=%d: event %d = %+v, want %+v",
					batchSize, i, batched[i], perEvent[i])
			}
		}
		wantFlushes := (len(perEvent) + batchSize - 1) / batchSize
		if flushes != wantFlushes {
			t.Fatalf("batch=%d: %d flushes, want %d", batchSize, flushes, wantFlushes)
		}
	}
}

func TestBatchedDeliveryFlushesOnBudget(t *testing.T) {
	var batched []ValueEvent
	prog, err := asm.Assemble("test.s", batchProgram)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, err := Run(prog, nil, Config{
		MaxEvents: 5,
		OnValues:  func(evs []ValueEvent) { batched = append(batched, evs...) },
		BatchSize: 64, // larger than the event cap: only the final flush delivers
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if res.Events != 5 || uint64(len(batched)) != res.Events {
		t.Fatalf("events = %d, batched = %d, want 5 each", res.Events, len(batched))
	}
}
