// Package sim is a functional (instruction-accurate, not cycle-accurate)
// simulator for VISA-64 programs.
//
// It plays the role of SimpleScalar's trace generation in the paper: it
// executes a program and emits one value event for every register-writing
// instruction that the paper's methodology predicts (stores, branches and
// jumps excluded; writes to the hard-wired zero register are discarded and
// therefore not events). Prediction tables in the paper are updated
// immediately, which trace-driven consumers get for free.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/isa"
)

// Default machine parameters.
const (
	DefaultMemSize  = 64 << 20 // 64 MiB flat memory
	DefaultMaxInstr = 1 << 32  // effectively unbounded
	// DefaultBatchSize is the OnValues batch capacity when Config.BatchSize
	// is zero. Large enough to amortize the callback, small enough that a
	// batch of events stays cache-resident downstream.
	DefaultBatchSize = 4096
)

// ValueEvent describes one predicted-instruction result, the unit of the
// paper's simulations.
type ValueEvent struct {
	PC    uint64
	Op    isa.Opcode
	Cat   isa.Category
	Value uint64
}

// Config parameterizes a machine.
type Config struct {
	MemSize  uint64 // bytes of flat memory (0 = DefaultMemSize)
	MaxInstr uint64 // dynamic instruction budget (0 = DefaultMaxInstr)
	// MaxEvents stops the run after this many value events (0 = no limit).
	// The paper's experiments are budgeted in predicted instructions, so
	// harnesses usually set MaxEvents rather than MaxInstr.
	MaxEvents uint64
	// OnValue, when non-nil, receives every value event.
	OnValue func(ValueEvent)
	// OnValues, when non-nil, receives value events in batches of up to
	// BatchSize, in program order, replacing per-event callback overhead on
	// the hot path. The slice is reused between calls and is only valid
	// until the callback returns; consumers that retain events must copy.
	// A final partial batch is flushed when the run ends for any reason.
	// OnValue and OnValues may be set together; both see the same stream.
	OnValues func([]ValueEvent)
	// BatchSize is the OnValues batch capacity (0 = DefaultBatchSize).
	BatchSize int
}

// Result summarizes one completed run.
type Result struct {
	Instructions uint64 // dynamic instructions executed
	Events       uint64 // value events emitted (predicted instructions)
	ExitCode     int64
	Halted       bool // reached halt/exit (false = budget exhausted)
	Output       []byte
	// DynPerCat counts dynamic predicted instructions per category.
	DynPerCat [isa.NumCategories]uint64
}

// Machine executes one program.
type Machine struct {
	prog  *isa.Program
	cfg   Config
	regs  [isa.NumRegs]uint64
	pc    uint64
	mem   []byte
	brk   uint64
	input []byte
	inPos int
	out   []byte
	batch []ValueEvent // pending OnValues events (nil when unused)
	res   Result
}

// ErrBudget is wrapped by Run when the instruction budget is exhausted
// before the program halts. Harnesses that cap event counts treat this as
// a normal early stop.
var ErrBudget = errors.New("instruction budget exhausted")

// Fault is a machine exception (bad memory access, bad PC...).
type Fault struct {
	PC  uint64
	Msg string
}

func (f *Fault) Error() string { return fmt.Sprintf("fault at pc=0x%x: %s", f.PC, f.Msg) }

// New prepares a machine to run prog with the given input bytes.
func New(prog *isa.Program, input []byte, cfg Config) (*Machine, error) {
	if cfg.MemSize == 0 {
		cfg.MemSize = DefaultMemSize
	}
	if cfg.MaxInstr == 0 {
		cfg.MaxInstr = DefaultMaxInstr
	}
	if prog.DataBase+uint64(len(prog.Data)) > cfg.MemSize {
		return nil, fmt.Errorf("sim: data segment (%d bytes at 0x%x) exceeds memory size %d",
			len(prog.Data), prog.DataBase, cfg.MemSize)
	}
	m := &Machine{
		prog:  prog,
		cfg:   cfg,
		mem:   make([]byte, cfg.MemSize),
		input: input,
	}
	if cfg.OnValues != nil {
		bs := cfg.BatchSize
		if bs <= 0 {
			bs = DefaultBatchSize
		}
		m.batch = make([]ValueEvent, 0, bs)
	}
	copy(m.mem[prog.DataBase:], prog.Data)
	// Heap break starts page-aligned after the data image.
	m.brk = (prog.DataBase + uint64(len(prog.Data)) + 4095) &^ 4095
	m.regs[isa.RegSP] = cfg.MemSize - 64 // small red zone at the top
	m.regs[isa.RegFP] = m.regs[isa.RegSP]
	m.pc = prog.Entry
	return m, nil
}

// Run executes until halt/exit, a fault, or the instruction budget is
// exhausted (ErrBudget). The Result is valid in all cases.
func Run(prog *isa.Program, input []byte, cfg Config) (*Result, error) {
	m, err := New(prog, input, cfg)
	if err != nil {
		return nil, err
	}
	err = m.Run()
	return m.Result(), err
}

// Result returns the run summary collected so far.
func (m *Machine) Result() *Result {
	r := m.res
	r.Output = m.out
	return &r
}

// Reg returns the current value of a register (for tests and tooling).
func (m *Machine) Reg(i int) uint64 { return m.regs[i] }

// Run executes the program loop. See Run (package function) for the
// error contract. Any pending OnValues batch is flushed before Run
// returns, whether the program halted, faulted or hit its budget.
func (m *Machine) Run() error {
	err := m.run()
	m.flushBatch()
	return err
}

func (m *Machine) flushBatch() {
	if len(m.batch) > 0 {
		m.cfg.OnValues(m.batch)
		m.batch = m.batch[:0]
	}
}

func (m *Machine) run() error {
	text := m.prog.Text
	n := uint64(len(text))
	for {
		if m.res.Instructions >= m.cfg.MaxInstr {
			return fmt.Errorf("%w after %d instructions", ErrBudget, m.res.Instructions)
		}
		if m.cfg.MaxEvents > 0 && m.res.Events >= m.cfg.MaxEvents {
			return fmt.Errorf("%w: event cap %d reached", ErrBudget, m.cfg.MaxEvents)
		}
		idx := m.pc / 4
		if idx >= n {
			return &Fault{PC: m.pc, Msg: "pc outside text segment"}
		}
		inst := &text[idx]
		m.res.Instructions++
		nextPC := m.pc + 4

		var value uint64
		writes := false

		switch inst.Op {
		case isa.OpADD:
			value, writes = m.r(inst.Rs1)+m.r(inst.Rs2), true
		case isa.OpSUB:
			value, writes = m.r(inst.Rs1)-m.r(inst.Rs2), true
		case isa.OpADDI:
			value, writes = m.r(inst.Rs1)+uint64(inst.Imm), true
		case isa.OpMUL:
			value, writes = m.r(inst.Rs1)*m.r(inst.Rs2), true
		case isa.OpDIV:
			value, writes = sdiv(m.r(inst.Rs1), m.r(inst.Rs2)), true
		case isa.OpREM:
			value, writes = srem(m.r(inst.Rs1), m.r(inst.Rs2)), true
		case isa.OpAND:
			value, writes = m.r(inst.Rs1)&m.r(inst.Rs2), true
		case isa.OpOR:
			value, writes = m.r(inst.Rs1)|m.r(inst.Rs2), true
		case isa.OpXOR:
			value, writes = m.r(inst.Rs1)^m.r(inst.Rs2), true
		case isa.OpNOR:
			value, writes = ^(m.r(inst.Rs1) | m.r(inst.Rs2)), true
		case isa.OpANDI:
			value, writes = m.r(inst.Rs1)&uint64(inst.Imm), true
		case isa.OpORI:
			value, writes = m.r(inst.Rs1)|uint64(inst.Imm), true
		case isa.OpXORI:
			value, writes = m.r(inst.Rs1)^uint64(inst.Imm), true
		case isa.OpSLL:
			value, writes = m.r(inst.Rs1)<<(m.r(inst.Rs2)&63), true
		case isa.OpSRL:
			value, writes = m.r(inst.Rs1)>>(m.r(inst.Rs2)&63), true
		case isa.OpSRA:
			value, writes = uint64(int64(m.r(inst.Rs1))>>(m.r(inst.Rs2)&63)), true
		case isa.OpSLLI:
			value, writes = m.r(inst.Rs1)<<(uint64(inst.Imm)&63), true
		case isa.OpSRLI:
			value, writes = m.r(inst.Rs1)>>(uint64(inst.Imm)&63), true
		case isa.OpSRAI:
			value, writes = uint64(int64(m.r(inst.Rs1))>>(uint64(inst.Imm)&63)), true
		case isa.OpSLT:
			value, writes = b2u(int64(m.r(inst.Rs1)) < int64(m.r(inst.Rs2))), true
		case isa.OpSLTU:
			value, writes = b2u(m.r(inst.Rs1) < m.r(inst.Rs2)), true
		case isa.OpSLTI:
			value, writes = b2u(int64(m.r(inst.Rs1)) < inst.Imm), true
		case isa.OpSEQ:
			value, writes = b2u(m.r(inst.Rs1) == m.r(inst.Rs2)), true
		case isa.OpSNE:
			value, writes = b2u(m.r(inst.Rs1) != m.r(inst.Rs2)), true
		case isa.OpLUI:
			value, writes = uint64(inst.Imm<<16), true
		case isa.OpLW:
			v, err := m.load(inst, 8)
			if err != nil {
				return err
			}
			value, writes = v, true
		case isa.OpLB:
			v, err := m.load(inst, 1)
			if err != nil {
				return err
			}
			value, writes = uint64(int64(int8(v))), true
		case isa.OpLBU:
			v, err := m.load(inst, 1)
			if err != nil {
				return err
			}
			value, writes = v, true
		case isa.OpSW:
			if err := m.store(inst, 8); err != nil {
				return err
			}
		case isa.OpSB:
			if err := m.store(inst, 1); err != nil {
				return err
			}
		case isa.OpBEQ:
			if m.r(inst.Rs1) == m.r(inst.Rs2) {
				nextPC = uint64(inst.Imm)
			}
		case isa.OpBNE:
			if m.r(inst.Rs1) != m.r(inst.Rs2) {
				nextPC = uint64(inst.Imm)
			}
		case isa.OpBLT:
			if int64(m.r(inst.Rs1)) < int64(m.r(inst.Rs2)) {
				nextPC = uint64(inst.Imm)
			}
		case isa.OpBGE:
			if int64(m.r(inst.Rs1)) >= int64(m.r(inst.Rs2)) {
				nextPC = uint64(inst.Imm)
			}
		case isa.OpBLTU:
			if m.r(inst.Rs1) < m.r(inst.Rs2) {
				nextPC = uint64(inst.Imm)
			}
		case isa.OpBGEU:
			if m.r(inst.Rs1) >= m.r(inst.Rs2) {
				nextPC = uint64(inst.Imm)
			}
		case isa.OpJ:
			nextPC = uint64(inst.Imm)
		case isa.OpJR:
			nextPC = m.r(inst.Rs1)
		case isa.OpJAL:
			m.w(isa.RegRA, m.pc+4) // link write, never predicted
			nextPC = uint64(inst.Imm)
		case isa.OpJALR:
			target := m.r(inst.Rs1)
			m.w(isa.RegRA, m.pc+4)
			nextPC = target
		case isa.OpSYS:
			v, halted, err := m.syscall(inst.Imm)
			if err != nil {
				return err
			}
			if halted {
				m.res.Halted = true
				return nil
			}
			value, writes = v, true
		case isa.OpHALT:
			m.res.Halted = true
			return nil
		default:
			return &Fault{PC: m.pc, Msg: "invalid opcode"}
		}

		if writes && inst.Rd != isa.RegZero {
			m.regs[inst.Rd] = value
			// Every surviving register write from a predicted opcode is a
			// value event, the paper's unit of measurement.
			cat := inst.Op.Category()
			m.res.Events++
			m.res.DynPerCat[cat]++
			if m.cfg.OnValue != nil {
				m.cfg.OnValue(ValueEvent{PC: m.pc, Op: inst.Op, Cat: cat, Value: value})
			}
			if m.batch != nil {
				m.batch = append(m.batch, ValueEvent{PC: m.pc, Op: inst.Op, Cat: cat, Value: value})
				if len(m.batch) == cap(m.batch) {
					m.flushBatch()
				}
			}
		}
		m.pc = nextPC
	}
}

func (m *Machine) r(i uint8) uint64 { return m.regs[i] }

func (m *Machine) w(i uint8, v uint64) {
	if i != isa.RegZero {
		m.regs[i] = v
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// sdiv implements signed division with the paper-simulator convention that
// division by zero yields 0 (SPEC-style benchmarks never rely on it).
func sdiv(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	return uint64(int64(a) / int64(b))
}

func srem(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	return uint64(int64(a) % int64(b))
}

func (m *Machine) load(inst *isa.Inst, size uint64) (uint64, error) {
	addr := m.r(inst.Rs1) + uint64(inst.Imm)
	if addr+size > uint64(len(m.mem)) || addr+size < addr {
		return 0, &Fault{PC: m.pc, Msg: fmt.Sprintf("load of %d bytes at 0x%x out of range", size, addr)}
	}
	var v uint64
	for i := uint64(0); i < size; i++ {
		v |= uint64(m.mem[addr+i]) << (8 * i)
	}
	return v, nil
}

func (m *Machine) store(inst *isa.Inst, size uint64) error {
	addr := m.r(inst.Rs1) + uint64(inst.Imm)
	if addr+size > uint64(len(m.mem)) || addr+size < addr {
		return &Fault{PC: m.pc, Msg: fmt.Sprintf("store of %d bytes at 0x%x out of range", size, addr)}
	}
	v := m.r(inst.Rs2)
	for i := uint64(0); i < size; i++ {
		m.mem[addr+i] = byte(v >> (8 * i))
	}
	return nil
}

// syscall dispatches the SYS instruction. The result value (when the call
// produces one) is written to a0 by the main loop and traced as a value
// event of category Other.
func (m *Machine) syscall(num int64) (value uint64, halted bool, err error) {
	a0 := m.regs[isa.RegA0]
	switch num {
	case isa.SysGetc:
		if m.inPos >= len(m.input) {
			return ^uint64(0), false, nil // -1 at end of input
		}
		c := m.input[m.inPos]
		m.inPos++
		return uint64(c), false, nil
	case isa.SysPutc:
		if len(m.out) > 1<<24 {
			return 0, false, &Fault{PC: m.pc, Msg: "output limit exceeded"}
		}
		m.out = append(m.out, byte(a0))
		return a0, false, nil
	case isa.SysSbrk:
		old := m.brk
		newBrk := m.brk + a0
		if newBrk > m.regs[isa.RegSP]-(1<<20) {
			return 0, false, &Fault{PC: m.pc, Msg: "sbrk: heap would run into stack"}
		}
		m.brk = newBrk
		return old, false, nil
	case isa.SysExit:
		m.res.ExitCode = int64(a0)
		return 0, true, nil
	default:
		return 0, false, &Fault{PC: m.pc, Msg: fmt.Sprintf("unknown syscall %d", num)}
	}
}
