package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegisterNamesRoundTrip(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		name := RegName(i)
		got, ok := RegByName(name)
		if !ok || got != i {
			t.Errorf("register %d (%s): round trip gave (%d,%v)", i, name, got, ok)
		}
	}
	// Raw rN aliases.
	if r, ok := RegByName("r31"); !ok || r != 31 {
		t.Errorf("r31 -> (%d,%v)", r, ok)
	}
	if _, ok := RegByName("r32"); ok {
		t.Error("r32 must be rejected")
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("bogus must be rejected")
	}
	if RegName(99) == "" || !strings.Contains(RegName(99), "?") {
		t.Error("out-of-range RegName should be marked")
	}
}

func TestWellKnownRegisters(t *testing.T) {
	checks := map[string]int{
		"zero": RegZero, "ra": RegRA, "sp": RegSP, "fp": RegFP,
		"a0": RegA0, "a7": RegA7, "t0": RegT0, "t9": RegT9,
		"s0": RegS0, "s7": RegS7, "gp": RegGP, "at": RegAT,
	}
	for name, want := range checks {
		if got, ok := RegByName(name); !ok || got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestOpcodeNamesRoundTrip(t *testing.T) {
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		name := op.String()
		got, ok := OpByName(name)
		if !ok || got != op {
			t.Errorf("opcode %v: round trip gave (%v,%v)", op, got, ok)
		}
	}
	if _, ok := OpByName("frobnicate"); ok {
		t.Error("unknown mnemonic accepted")
	}
}

func TestCategoryAssignments(t *testing.T) {
	cases := map[Opcode]Category{
		OpADD: CatAddSub, OpADDI: CatAddSub, OpSUB: CatAddSub,
		OpMUL: CatMultDiv, OpDIV: CatMultDiv, OpREM: CatMultDiv,
		OpAND: CatLogic, OpNOR: CatLogic, OpXORI: CatLogic,
		OpSLL: CatShift, OpSRAI: CatShift,
		OpSLT: CatSet, OpSEQ: CatSet, OpSNE: CatSet,
		OpLUI: CatLui,
		OpLW:  CatLoads, OpLB: CatLoads, OpLBU: CatLoads,
		OpSW: CatNone, OpSB: CatNone,
		OpBEQ: CatNone, OpBGEU: CatNone,
		OpJ: CatNone, OpJAL: CatNone, OpJR: CatNone,
		OpSYS: CatOther, OpHALT: CatNone,
	}
	for op, want := range cases {
		if got := op.Category(); got != want {
			t.Errorf("%v category = %v, want %v", op, got, want)
		}
	}
}

func TestPredictedMatchesPaperRules(t *testing.T) {
	// The paper predicts register writers, excluding stores, branches and
	// jumps (even JAL, which writes ra).
	predicted := []Opcode{OpADD, OpADDI, OpMUL, OpAND, OpSLL, OpSLT, OpLUI, OpLW, OpLBU, OpSYS}
	notPredicted := []Opcode{OpSW, OpSB, OpBEQ, OpBNE, OpJ, OpJR, OpJAL, OpJALR, OpHALT}
	for _, op := range predicted {
		if !op.Predicted() {
			t.Errorf("%v should be predicted", op)
		}
	}
	for _, op := range notPredicted {
		if op.Predicted() {
			t.Errorf("%v must not be predicted", op)
		}
	}
	if !OpJAL.WritesRegister() || !OpJALR.WritesRegister() {
		t.Error("JAL/JALR architecturally write ra")
	}
}

func TestPredictedCategoriesOrder(t *testing.T) {
	cats := PredictedCategories()
	if len(cats) != NumCategories {
		t.Fatalf("%d categories, want %d", len(cats), NumCategories)
	}
	want := []string{"AddSub", "Loads", "Logic", "Shift", "Set", "MultDiv", "Lui", "Other"}
	for i, c := range cats {
		if c.String() != want[i] {
			t.Errorf("category %d = %s, want %s", i, c, want[i])
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		inst Inst
		want string
	}{
		{Inst{Op: OpADD, Rd: RegT0, Rs1: RegT0, Rs2: RegT0 + 1}, "add t0, t0, t1"},
		{Inst{Op: OpADDI, Rd: RegA0, Rs1: RegZero, Imm: -5}, "addi a0, zero, -5"},
		{Inst{Op: OpLW, Rd: RegT0, Rs1: RegSP, Imm: 16}, "lw t0, 16(sp)"},
		{Inst{Op: OpSW, Rs1: RegSP, Rs2: RegT0, Imm: 8}, "sw t0, 8(sp)"},
		{Inst{Op: OpBEQ, Rs1: RegT0, Rs2: RegZero, Imm: 64}, "beq t0, zero, 0x40"},
		{Inst{Op: OpJR, Rs1: RegRA}, "jr ra"},
		{Inst{Op: OpSYS, Imm: 4}, "sys 4"},
		{Inst{Op: OpHALT}, "halt"},
		{Inst{Op: OpLUI, Rd: RegT0, Imm: 3}, "lui t0, 3"},
	}
	for _, c := range cases {
		if got := c.inst.String(); !strings.Contains(got, c.want) {
			t.Errorf("String() = %q, want contains %q", got, c.want)
		}
	}
}

func TestPCIndexConversion(t *testing.T) {
	f := func(idx uint32) bool {
		pc := IndexToPC(uint64(idx))
		return PCToIndex(pc) == uint64(idx) && pc == uint64(idx)*4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
