// Package isa defines VISA-64, the MIPS-like 64-bit RISC instruction set
// used by the simulator, assembler and MiniC compiler.
//
// VISA-64 plays the role SimpleScalar's PISA plays in the paper: a simple
// load/store architecture whose register-writing instructions fall into the
// same categories the paper reports on (Table 3): AddSub, Loads, Logic,
// Shift, Set, MultDiv, Lui and Other. Stores, branches and jumps do not
// write general-purpose registers (JAL writes the link register but, as in
// the paper, jumps are never predicted).
package isa

import "fmt"

// NumRegs is the number of general-purpose registers. Register 0 is
// hard-wired to zero, as on MIPS.
const NumRegs = 32

// Well-known registers of the VISA-64 ABI.
const (
	RegZero = 0  // always zero
	RegRA   = 1  // return address
	RegSP   = 2  // stack pointer
	RegFP   = 3  // frame pointer
	RegA0   = 4  // first argument / return value; a0..a7 = 4..11
	RegA7   = 11 // last argument register
	RegT0   = 12 // first caller-saved temporary; t0..t9 = 12..21
	RegT9   = 21 // last caller-saved temporary
	RegS0   = 22 // first callee-saved register; s0..s7 = 22..29
	RegS7   = 29 // last callee-saved register
	RegGP   = 30 // global pointer (reserved)
	RegAT   = 31 // assembler temporary
)

// regNames holds the canonical ABI name of each register.
var regNames = [NumRegs]string{
	"zero", "ra", "sp", "fp",
	"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"gp", "at",
}

// RegName returns the ABI name of register r ("zero", "ra", "sp", ...).
func RegName(r int) string {
	if r < 0 || r >= NumRegs {
		return fmt.Sprintf("r?%d", r)
	}
	return regNames[r]
}

// RegByName maps an ABI register name (or the raw form "rN") to its number.
// The second result reports whether the name was recognized.
func RegByName(name string) (int, bool) {
	for i, n := range regNames {
		if n == name {
			return i, true
		}
	}
	if len(name) >= 2 && name[0] == 'r' {
		n := 0
		for _, c := range name[1:] {
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
		}
		if n < NumRegs {
			return n, true
		}
	}
	return 0, false
}

// Opcode enumerates every VISA-64 instruction.
type Opcode uint8

// Instruction opcodes, grouped by the paper's reporting categories.
const (
	OpInvalid Opcode = iota

	// AddSub
	OpADD  // rd = rs1 + rs2
	OpSUB  // rd = rs1 - rs2
	OpADDI // rd = rs1 + imm

	// MultDiv
	OpMUL // rd = rs1 * rs2
	OpDIV // rd = rs1 / rs2 (signed; x/0 = 0)
	OpREM // rd = rs1 % rs2 (signed; x%0 = 0)

	// Logic
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpANDI
	OpORI
	OpXORI

	// Shift (shift amounts use the low 6 bits of rs2/imm)
	OpSLL
	OpSRL
	OpSRA
	OpSLLI
	OpSRLI
	OpSRAI

	// Set (compare-and-set, result is 0 or 1)
	OpSLT  // rd = rs1 < rs2 (signed)
	OpSLTU // rd = rs1 < rs2 (unsigned)
	OpSLTI // rd = rs1 < imm (signed)
	OpSEQ  // rd = rs1 == rs2
	OpSNE  // rd = rs1 != rs2

	// Lui
	OpLUI // rd = imm << 16 (imm is a signed 32-bit payload)

	// Loads (rd = mem[rs1+imm])
	OpLW  // 64-bit load
	OpLB  // sign-extended byte load
	OpLBU // zero-extended byte load

	// Stores (mem[rs1+imm] = rs2; no register write)
	OpSW
	OpSB

	// Branches (pc-relative via label/target; no register write)
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Jumps (JAL/JALR write ra but are never predicted, as in the paper)
	OpJ
	OpJR
	OpJAL
	OpJALR

	// System
	OpSYS  // syscall; number in imm, argument/result in a0 (writes a0)
	OpHALT // stop the machine

	numOpcodes
)

// Category is the paper's instruction grouping (Table 3). Predicted
// instructions are those that write a general-purpose register; stores,
// branches and jumps are CatNone.
type Category uint8

// Categories in the order the paper reports them.
const (
	CatAddSub Category = iota
	CatLoads
	CatLogic
	CatShift
	CatSet
	CatMultDiv
	CatLui
	CatOther                     // misc register writers (here: syscall results)
	CatNone                      // not predicted: stores, branches, jumps, halt
	NumCategories = int(CatNone) // number of *predicted* categories
)

var catNames = [...]string{
	CatAddSub:  "AddSub",
	CatLoads:   "Loads",
	CatLogic:   "Logic",
	CatShift:   "Shift",
	CatSet:     "Set",
	CatMultDiv: "MultDiv",
	CatLui:     "Lui",
	CatOther:   "Other",
	CatNone:    "None",
}

func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// PredictedCategories lists the categories of register-writing
// instructions in the paper's reporting order.
func PredictedCategories() []Category {
	return []Category{CatAddSub, CatLoads, CatLogic, CatShift, CatSet, CatMultDiv, CatLui, CatOther}
}

// opInfo describes the static properties of an opcode.
type opInfo struct {
	name     string
	cat      Category
	writes   bool // writes rd (or ra for JAL/JALR, a0 for SYS)
	hasImm   bool
	isBranch bool
	isJump   bool
	isMem    bool
}

var opTable = [numOpcodes]opInfo{
	OpInvalid: {name: "invalid", cat: CatNone},

	OpADD:  {name: "add", cat: CatAddSub, writes: true},
	OpSUB:  {name: "sub", cat: CatAddSub, writes: true},
	OpADDI: {name: "addi", cat: CatAddSub, writes: true, hasImm: true},

	OpMUL: {name: "mul", cat: CatMultDiv, writes: true},
	OpDIV: {name: "div", cat: CatMultDiv, writes: true},
	OpREM: {name: "rem", cat: CatMultDiv, writes: true},

	OpAND:  {name: "and", cat: CatLogic, writes: true},
	OpOR:   {name: "or", cat: CatLogic, writes: true},
	OpXOR:  {name: "xor", cat: CatLogic, writes: true},
	OpNOR:  {name: "nor", cat: CatLogic, writes: true},
	OpANDI: {name: "andi", cat: CatLogic, writes: true, hasImm: true},
	OpORI:  {name: "ori", cat: CatLogic, writes: true, hasImm: true},
	OpXORI: {name: "xori", cat: CatLogic, writes: true, hasImm: true},

	OpSLL:  {name: "sll", cat: CatShift, writes: true},
	OpSRL:  {name: "srl", cat: CatShift, writes: true},
	OpSRA:  {name: "sra", cat: CatShift, writes: true},
	OpSLLI: {name: "slli", cat: CatShift, writes: true, hasImm: true},
	OpSRLI: {name: "srli", cat: CatShift, writes: true, hasImm: true},
	OpSRAI: {name: "srai", cat: CatShift, writes: true, hasImm: true},

	OpSLT:  {name: "slt", cat: CatSet, writes: true},
	OpSLTU: {name: "sltu", cat: CatSet, writes: true},
	OpSLTI: {name: "slti", cat: CatSet, writes: true, hasImm: true},
	OpSEQ:  {name: "seq", cat: CatSet, writes: true},
	OpSNE:  {name: "sne", cat: CatSet, writes: true},

	OpLUI: {name: "lui", cat: CatLui, writes: true, hasImm: true},

	OpLW:  {name: "lw", cat: CatLoads, writes: true, hasImm: true, isMem: true},
	OpLB:  {name: "lb", cat: CatLoads, writes: true, hasImm: true, isMem: true},
	OpLBU: {name: "lbu", cat: CatLoads, writes: true, hasImm: true, isMem: true},

	OpSW: {name: "sw", cat: CatNone, hasImm: true, isMem: true},
	OpSB: {name: "sb", cat: CatNone, hasImm: true, isMem: true},

	OpBEQ:  {name: "beq", cat: CatNone, hasImm: true, isBranch: true},
	OpBNE:  {name: "bne", cat: CatNone, hasImm: true, isBranch: true},
	OpBLT:  {name: "blt", cat: CatNone, hasImm: true, isBranch: true},
	OpBGE:  {name: "bge", cat: CatNone, hasImm: true, isBranch: true},
	OpBLTU: {name: "bltu", cat: CatNone, hasImm: true, isBranch: true},
	OpBGEU: {name: "bgeu", cat: CatNone, hasImm: true, isBranch: true},

	OpJ:    {name: "j", cat: CatNone, hasImm: true, isJump: true},
	OpJR:   {name: "jr", cat: CatNone, isJump: true},
	OpJAL:  {name: "jal", cat: CatNone, hasImm: true, isJump: true, writes: true},
	OpJALR: {name: "jalr", cat: CatNone, isJump: true, writes: true},

	OpSYS:  {name: "sys", cat: CatOther, hasImm: true, writes: true},
	OpHALT: {name: "halt", cat: CatNone},
}

// String returns the assembler mnemonic of the opcode.
func (op Opcode) String() string {
	if op < numOpcodes {
		return opTable[op].name
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// Category returns the paper's reporting category for the opcode.
// Instructions that are not predicted return CatNone.
func (op Opcode) Category() Category {
	if op < numOpcodes {
		return opTable[op].cat
	}
	return CatNone
}

// WritesRegister reports whether the instruction architecturally writes a
// general-purpose register (including JAL/JALR writing ra and SYS writing a0).
func (op Opcode) WritesRegister() bool { return op < numOpcodes && opTable[op].writes }

// Predicted reports whether results of this opcode are candidates for value
// prediction under the paper's rules: it writes a register and is neither a
// jump nor a store/branch.
func (op Opcode) Predicted() bool {
	if op >= numOpcodes {
		return false
	}
	info := opTable[op]
	return info.writes && !info.isJump && info.cat != CatNone
}

// IsBranch reports whether the opcode is a conditional branch.
func (op Opcode) IsBranch() bool { return op < numOpcodes && opTable[op].isBranch }

// IsJump reports whether the opcode is an unconditional control transfer.
func (op Opcode) IsJump() bool { return op < numOpcodes && opTable[op].isJump }

// IsMem reports whether the opcode accesses memory.
func (op Opcode) IsMem() bool { return op < numOpcodes && opTable[op].isMem }

// HasImm reports whether the opcode carries an immediate operand.
func (op Opcode) HasImm() bool { return op < numOpcodes && opTable[op].hasImm }

// OpByName maps a mnemonic to its opcode. The second result reports whether
// the mnemonic names a real (non-pseudo) instruction.
func OpByName(name string) (Opcode, bool) {
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		if opTable[op].name == name {
			return op, true
		}
	}
	return OpInvalid, false
}

// Syscall numbers understood by the simulator (see internal/sim).
const (
	SysGetc = 1 // a0 = next input byte, or -1 at end of input
	SysPutc = 2 // write low byte of a0 to the output
	SysSbrk = 3 // grow the heap by a0 bytes; a0 = old break address
	SysExit = 4 // stop the machine with exit code a0
)

// Inst is a single decoded VISA-64 instruction. Instructions are held in a
// Harvard-style text segment and addressed by PC = index*4.
type Inst struct {
	Op  Opcode
	Rd  uint8 // destination register
	Rs1 uint8 // first source register
	Rs2 uint8 // second source register
	Imm int64 // immediate / branch or jump target (absolute PC)
}

// String disassembles the instruction.
func (i Inst) String() string {
	switch {
	case i.Op == OpHALT:
		return "halt"
	case i.Op == OpSYS:
		return fmt.Sprintf("sys %d", i.Imm)
	case i.Op == OpJ, i.Op == OpJAL:
		return fmt.Sprintf("%s 0x%x", i.Op, uint64(i.Imm))
	case i.Op == OpJR:
		return fmt.Sprintf("jr %s", RegName(int(i.Rs1)))
	case i.Op == OpJALR:
		return fmt.Sprintf("jalr %s", RegName(int(i.Rs1)))
	case i.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, 0x%x", i.Op, RegName(int(i.Rs1)), RegName(int(i.Rs2)), uint64(i.Imm))
	case i.Op == OpLUI:
		return fmt.Sprintf("lui %s, %d", RegName(int(i.Rd)), i.Imm)
	case i.Op.IsMem():
		if i.Op == OpSW || i.Op == OpSB {
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegName(int(i.Rs2)), i.Imm, RegName(int(i.Rs1)))
		}
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegName(int(i.Rd)), i.Imm, RegName(int(i.Rs1)))
	case i.Op.HasImm():
		return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(int(i.Rd)), RegName(int(i.Rs1)), i.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, RegName(int(i.Rd)), RegName(int(i.Rs1)), RegName(int(i.Rs2)))
	}
}

// Program is a loadable unit: a text segment of instructions plus an
// initialized data image. PCs are instruction indices multiplied by 4.
type Program struct {
	Text     []Inst
	Data     []byte            // initial data image, loaded at DataBase
	DataBase uint64            // load address of Data
	Entry    uint64            // PC of the first instruction to execute
	Symbols  map[string]uint64 // label -> PC or data address (for tooling)
}

// PCToIndex converts a text-segment PC to an instruction index.
func PCToIndex(pc uint64) uint64 { return pc / 4 }

// IndexToPC converts an instruction index to its PC.
func IndexToPC(i uint64) uint64 { return i * 4 }
