package experiments

import (
	"strings"
	"testing"
)

func smallCfg() Config {
	return Config{Events: 40_000, Benchmarks: []string{"compress", "m88ksim"}}
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"table1", "fig1", "fig2", "table2", "table4", "table5",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"table6", "table7", "fig11", "ceil",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, got[i], want[i])
		}
	}
	for _, id := range want {
		e := ByID(id)
		if e == nil || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if ByID("fig99") != nil {
		t.Fatal("expected nil for unknown id")
	}
	var sb strings.Builder
	if err := RunOne(&sb, "fig99", smallCfg()); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// TestAnalyticExperimentsRender checks the synthetic-sequence experiments
// against their known-exact content.
func TestAnalyticExperimentsRender(t *testing.T) {
	cases := []struct {
		id   string
		want []string
	}{
		{"table1", []string{"RNS", "100", "Sequence"}},
		{"fig1", []string{"order 3 model", "prediction: b", "count(b | [a a a]) = 2"}},
		{"fig2", []string{"[0 0 3 4 5 2 3 4 5 2 3 4]", "[0 0 0 0 0 0 3 4 1 2 3 4]"}},
	}
	for _, c := range cases {
		var sb strings.Builder
		if err := RunOne(&sb, c.id, smallCfg()); err != nil {
			t.Fatalf("%s: %v", c.id, err)
		}
		for _, w := range c.want {
			if !strings.Contains(sb.String(), w) {
				t.Errorf("%s output missing %q:\n%s", c.id, w, sb.String())
			}
		}
	}
}

// TestSuiteExperimentsRender smoke-tests every suite-backed experiment on
// a small budget and checks structural content.
func TestSuiteExperimentsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiments in -short mode")
	}
	suite, err := suiteFor(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		id   string
		want []string
	}{
		{"table2", []string{"compress", "m88ksim", "Predicted %"}},
		{"table4", []string{"AddSub", "Loads", "Shift"}},
		{"table5", []string{"AddSub", "Lui"}},
		{"fig3", []string{"fcm3", "mean"}},
		{"fig4", []string{"AddSub instructions"}},
		{"fig5", []string{"Loads instructions"}},
		{"fig6", []string{"Logic instructions"}},
		{"fig7", []string{"Shift instructions"}},
		{"fig8", []string{"np", "lsf", "sf"}},
		{"fig9", []string{"% static instrs", "100"}},
		{"fig10", []string{">65536", "unique values"}},
	}
	for _, c := range cases {
		e := ByID(c.id)
		var sb strings.Builder
		if err := e.Run(&sb, smallCfg(), suite); err != nil {
			t.Fatalf("%s: %v", c.id, err)
		}
		for _, w := range c.want {
			if !strings.Contains(sb.String(), w) {
				t.Errorf("%s output missing %q:\n%s", c.id, w, sb.String())
			}
		}
	}
}

// TestCeilExperiment runs the predictability-ceiling experiment on a
// small budget and checks both tables render with class rows, entropy and
// ceiling columns, and per-predictor gap columns.
func TestCeilExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("ceil experiment in -short mode")
	}
	var sb strings.Builder
	if err := RunOne(&sb, "ceil", smallCfg()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Entropy (b)", "Ceiling (%)", "Best (%)", "Gap (%)",
		"compress", "m88ksim", "fcm3", "sequence class",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ceil output missing %q:\n%s", want, out)
		}
	}
}

// TestSensitivityExperiments runs the gcc-specific experiments on small
// budgets.
func TestSensitivityExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity experiments in -short mode")
	}
	cfg := Config{Events: 30_000}
	for _, id := range []string{"table6", "table7", "fig11"} {
		var sb strings.Builder
		if err := RunOne(&sb, id, cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(sb.String(), "Correct (%)") {
			t.Errorf("%s output lacks accuracy column:\n%s", id, sb.String())
		}
	}
}
