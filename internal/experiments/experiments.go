// Package experiments maps every table and figure of the paper's
// evaluation to a runnable experiment. Each experiment regenerates the
// corresponding artifact as an ASCII table or series; EXPERIMENTS.md in
// the repository root records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/engine"
)

// Config parameterizes experiment runs.
type Config struct {
	// Events caps traced predicted instructions per benchmark run
	// (0 = to completion). The paper traces full benchmarks; scaled-down
	// runs preserve the qualitative results (see EXPERIMENTS.md).
	Events uint64
	// Scale is the workload input scale factor.
	Scale int
	// Benchmarks restricts suite experiments (nil = all seven).
	Benchmarks []string
	// Workers bounds the engine's benchmark-level parallelism for the
	// shared suite pass (0 = GOMAXPROCS, 1 = serial reference path).
	Workers int
	// BatchSize is the engine's event-delivery batch size (0 = default).
	BatchSize int
	// Progress, when non-nil, receives a line per starting benchmark.
	// With Workers != 1 it may be invoked from concurrent goroutines.
	Progress func(string)
}

// Experiment is one reproducible artifact from the paper.
type Experiment struct {
	ID    string // "fig3", "table6", ...
	Title string // the paper's caption
	// NeedsSuite marks experiments that consume the shared all-benchmark
	// pass (the driver runs it once for all of them).
	NeedsSuite bool
	// Run renders the artifact. suite is non-nil iff NeedsSuite.
	Run func(w io.Writer, cfg Config, suite *analysis.Suite) error
}

// Registry returns all experiments in paper order.
func Registry() []*Experiment {
	return []*Experiment{
		{ID: "table1", Title: "Table 1: Behavior of prediction models on basic value sequences", Run: runTable1},
		{ID: "fig1", Title: "Figure 1: Finite context models of order 0-3", Run: runFig1},
		{ID: "fig2", Title: "Figure 2: Computational vs context based prediction", Run: runFig2},
		{ID: "table2", Title: "Table 2: Benchmark characteristics", NeedsSuite: true, Run: runTable2},
		{ID: "table4", Title: "Table 4: Predicted instructions - static count", NeedsSuite: true, Run: runTable4},
		{ID: "table5", Title: "Table 5: Predicted instructions - dynamic (%)", NeedsSuite: true, Run: runTable5},
		{ID: "fig3", Title: "Figure 3: Prediction success for all instructions", NeedsSuite: true, Run: runFig3},
		{ID: "fig4", Title: "Figure 4: Prediction success for add/subtract instructions", NeedsSuite: true, Run: catFig(0)},
		{ID: "fig5", Title: "Figure 5: Prediction success for load instructions", NeedsSuite: true, Run: catFig(1)},
		{ID: "fig6", Title: "Figure 6: Prediction success for logic instructions", NeedsSuite: true, Run: catFig(2)},
		{ID: "fig7", Title: "Figure 7: Prediction success for shift instructions", NeedsSuite: true, Run: catFig(3)},
		{ID: "fig8", Title: "Figure 8: Contribution of different predictors", NeedsSuite: true, Run: runFig8},
		{ID: "fig9", Title: "Figure 9: Cumulative improvement of FCM over stride", NeedsSuite: true, Run: runFig9},
		{ID: "fig10", Title: "Figure 10: Values and instruction behavior", NeedsSuite: true, Run: runFig10},
		{ID: "table6", Title: "Table 6: Sensitivity of gcc to different input files", Run: runTable6},
		{ID: "table7", Title: "Table 7: Sensitivity of gcc to input flags", Run: runTable7},
		{ID: "fig11", Title: "Figure 11: Sensitivity of gcc to the fcm order", Run: runFig11},
		{ID: "ceil", Title: "Predictability ceilings: per-class accuracy vs entropy ceiling", Run: runCeil},
	}
}

// ByID returns the experiment or nil.
func ByID(id string) *Experiment {
	for _, e := range Registry() {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// RunAll executes every experiment, sharing one suite pass among those
// that need it.
func RunAll(w io.Writer, cfg Config) error {
	suite, err := suiteFor(cfg)
	if err != nil {
		return err
	}
	for _, e := range Registry() {
		fmt.Fprintf(w, "=== %s: %s ===\n\n", e.ID, e.Title)
		var s *analysis.Suite
		if e.NeedsSuite {
			s = suite
		}
		if err := e.Run(w, cfg, s); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// RunOne executes a single experiment by id.
func RunOne(w io.Writer, id string, cfg Config) error {
	e := ByID(id)
	if e == nil {
		return fmt.Errorf("unknown experiment %q (have %v)", id, IDs())
	}
	var suite *analysis.Suite
	if e.NeedsSuite {
		var err error
		suite, err = suiteFor(cfg)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "=== %s: %s ===\n\n", e.ID, e.Title)
	return e.Run(w, cfg, suite)
}

func suiteFor(cfg Config) (*analysis.Suite, error) {
	return engine.RunSuite(engine.Config{
		Analysis: analysis.Config{
			Events:     cfg.Events,
			Scale:      cfg.Scale,
			Benchmarks: cfg.Benchmarks,
		},
		Workers:   cfg.Workers,
		BatchSize: cfg.BatchSize,
		Progress:  cfg.Progress,
	})
}
