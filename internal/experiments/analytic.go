package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/seqclass"
)

// This file implements the paper's analytic artifacts (Table 1, Figures 1
// and 2), which use synthetic sequences rather than benchmark traces.

// runTable1 measures learning time (LT) and learning degree (LD) of the
// actual predictor implementations on the Section 1.1 sequence classes,
// reproducing Table 1 empirically.
func runTable1(w io.Writer, _ Config, _ *analysis.Suite) error {
	const n = 400
	const period = 4
	const order = 3

	sequences := []struct {
		name string
		gen  seqclass.Gen
	}{
		{"C", seqclass.ConstantGen(5)},
		{"S", seqclass.StrideGen(1, 1)},
		{"NS", seqclass.NonStrideGen(7)},
		{"RS", seqclass.RepeatedGen(seqclass.StridePeriod(1, 1, period))},
		{"RNS", seqclass.RepeatedGen(seqclass.NonStridePeriod(3, period))},
	}
	predictors := []struct {
		name string
		make func() interface {
			Predict(uint64) (uint64, bool)
			Update(uint64, uint64)
		}
	}{
		{"Last Value", func() interface {
			Predict(uint64) (uint64, bool)
			Update(uint64, uint64)
		} {
			return core.NewLastValue()
		}},
		{"Stride (s2)", func() interface {
			Predict(uint64) (uint64, bool)
			Update(uint64, uint64)
		} {
			return core.NewStride2Delta()
		}},
		{fmt.Sprintf("FCM (o=%d)", order), func() interface {
			Predict(uint64) (uint64, bool)
			Update(uint64, uint64)
		} {
			return core.NewFCMNoBlend(order)
		}},
	}

	t := analysis.NewTable(
		fmt.Sprintf("Learning time (first correct at value #) and learning degree (%%), %d values, period=%d, order=%d; paper's Table 1 uses '-' for unsuitable pairs", n, period, order),
		"Sequence", "L: LT", "L: LD%", "S2: LT", "S2: LD%", "FCM: LT", "FCM: LD%")
	for _, seq := range sequences {
		row := []any{seq.name}
		for _, p := range predictors {
			prof := seqclass.Measure(p.make(), seq.gen, n)
			if prof.LT == 0 || prof.LD < 5 {
				row = append(row, "-", "-")
				continue
			}
			row = append(row, fmt.Sprint(prof.LT), fmt.Sprintf("%.0f", prof.LD))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	fmt.Fprintln(w, "Paper: L suits only C (LT 1, 100%); stride suits C/S (LT 2, 100%) and RS")
	fmt.Fprintln(w, "(LD (p-1)/p = 75%); FCM needs order (C) or period+order (RS, RNS) values")
	fmt.Fprintln(w, "then reaches 100%; nobody predicts NS.")
	fmt.Fprintln(w)
	return nil
}

// runFig1 rebuilds the frequency tables of Figure 1: finite context
// models of orders 0-3 over the sequence a a a b c a a a b c a a a.
func runFig1(w io.Writer, _ Config, _ *analysis.Suite) error {
	seq := []string{"a", "a", "a", "b", "c", "a", "a", "a", "b", "c", "a", "a", "a"}
	fmt.Fprintf(w, "Sequence: %v ?\n\n", seq)
	for order := 0; order <= 3; order++ {
		m := core.NewCountTable(order)
		m.Train(seq)
		pred, ok := m.Predict(seq)
		if !ok {
			pred = "(no match)"
		}
		fmt.Fprintf(w, "order %d model: %d context(s), prediction: %s\n", order, m.Contexts(), pred)
		// Show the counts for the final context.
		ctx := seq[len(seq)-order:]
		for _, sym := range []string{"a", "b", "c"} {
			if c := m.Count(ctx, sym); c > 0 {
				fmt.Fprintf(w, "  count(%s | %v) = %d\n", sym, ctx, c)
			}
		}
	}
	fmt.Fprintln(w, "\nPaper: orders 0-2 predict a; the order-3 model (context a,a,a) predicts b.")
	fmt.Fprintln(w)
	return nil
}

// runFig2 prints the prediction traces of Figure 2: 2-delta stride vs
// order-2 FCM over the repeated stride sequence 1 2 3 4.
func runFig2(w io.Writer, _ Config, _ *analysis.Suite) error {
	input := []uint64{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4}
	stride := core.NewStride2Delta()
	fcm := core.NewFCMNoBlend(2)

	var strideRow, fcmRow []uint64
	for _, v := range input {
		p1, ok1 := stride.Predict(0)
		if !ok1 {
			p1 = 0
		}
		p2, ok2 := fcm.Predict(0)
		if !ok2 {
			p2 = 0
		}
		strideRow = append(strideRow, p1)
		fcmRow = append(fcmRow, p2)
		stride.Update(0, v)
		fcm.Update(0, v)
	}
	fmt.Fprintf(w, "value sequence:        %v\n", input)
	fmt.Fprintf(w, "stride prediction:     %v\n", strideRow)
	fmt.Fprintf(w, "fcm(order 2) predicts: %v\n\n", fcmRow)
	fmt.Fprintln(w, "Paper: stride predicts 0 0 3 4 5 2 3 4 5 2 3 4 (learn time 2, one miss")
	fmt.Fprintln(w, "per period, LD 75%); fcm predicts 0 0 0 0 0 0 3 4 1 2 3 4 (learn time")
	fmt.Fprintln(w, "period+order = 6, then 100%).")
	fmt.Fprintln(w)
	return nil
}
