package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/isa"
)

// This file renders the experiments backed by the shared all-benchmark
// suite pass: Tables 2, 4, 5 and Figures 3-10.

// runTable2 reports benchmark characteristics (paper's Table 2).
func runTable2(w io.Writer, _ Config, suite *analysis.Suite) error {
	t := analysis.NewTable(
		"Dynamic instructions executed and predicted (counts in thousands)",
		"Benchmark", "Instr (k)", "Predicted (k)", "Predicted %")
	for _, r := range suite.Results {
		t.AddRow(r.Name,
			fmt.Sprintf("%d", r.Instructions/1000),
			fmt.Sprintf("%d", r.Events/1000),
			fmt.Sprintf("%.0f%%", 100*float64(r.Events)/float64(r.Instructions)))
	}
	t.Render(w)
	fmt.Fprintln(w, "Paper: predicted fraction ranged 62%-84% across the seven benchmarks")
	fmt.Fprintln(w, "(absolute counts differ: scaled-down analog workloads; see EXPERIMENTS.md).")
	fmt.Fprintln(w)
	return nil
}

// runTable4 reports executed static instruction counts by category.
func runTable4(w io.Writer, _ Config, suite *analysis.Suite) error {
	headers := []string{"Type"}
	for _, r := range suite.Results {
		headers = append(headers, r.Name)
	}
	t := analysis.NewTable("Executed static predicted instructions by type", headers...)
	var perBench [][8]int
	for _, r := range suite.Results {
		perBench = append(perBench, analysis.StaticCounts(r))
	}
	for _, cat := range isa.PredictedCategories() {
		row := []any{cat.String()}
		for i := range suite.Results {
			row = append(row, perBench[i][cat])
		}
		t.AddRow(row...)
	}
	t.Render(w)
	fmt.Fprintln(w, "Paper: AddSub and Loads dominate the static mix in every benchmark.")
	fmt.Fprintln(w)
	return nil
}

// runTable5 reports the dynamic percentage of each instruction type.
func runTable5(w io.Writer, _ Config, suite *analysis.Suite) error {
	headers := []string{"Type"}
	for _, r := range suite.Results {
		headers = append(headers, r.Name)
	}
	t := analysis.NewTable("Dynamic predicted instructions by type (%)", headers...)
	for _, cat := range isa.PredictedCategories() {
		row := []any{cat.String()}
		for _, r := range suite.Results {
			row = append(row, fmt.Sprintf("%.1f", 100*float64(r.DynPerCat[cat])/float64(r.Events)))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	fmt.Fprintln(w, "Paper: the majority of predicted values come from addition and load")
	fmt.Fprintln(w, "instructions (Table 5).")
	fmt.Fprintln(w)
	return nil
}

// accuracyFig renders one Figure 3-7 panel: accuracy per predictor per
// benchmark for a category filter (cat < 0 = all instructions).
func accuracyFig(w io.Writer, suite *analysis.Suite, cat int, label string) error {
	headers := []string{"Benchmark"}
	for _, p := range analysis.PredictorNames {
		headers = append(headers, p)
	}
	t := analysis.NewTable(fmt.Sprintf("Prediction success (%%) — %s", label), headers...)
	means := make([]float64, len(analysis.PredictorNames))
	counted := 0
	for _, r := range suite.Results {
		row := []any{r.Name}
		skip := false
		for i, p := range analysis.PredictorNames {
			var acc float64
			if cat < 0 {
				acc = r.Accuracy(p)
			} else {
				a := r.Acc[p].PerCat[cat]
				if a.Total == 0 {
					skip = true
					break
				}
				acc = a.Percent()
			}
			row = append(row, fmt.Sprintf("%.1f", acc))
			means[i] += acc
		}
		if skip {
			t.AddRow(r.Name, "-", "-", "-", "-", "-")
			continue
		}
		counted++
		t.AddRow(row...)
	}
	if counted > 0 {
		row := []any{"mean"}
		for _, m := range means {
			row = append(row, fmt.Sprintf("%.1f", m/float64(counted)))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	return nil
}

func runFig3(w io.Writer, _ Config, suite *analysis.Suite) error {
	if err := accuracyFig(w, suite, -1, "all predicted instructions"); err != nil {
		return err
	}
	fmt.Fprintln(w, "Paper: L averages ~40% (23-61), S2 ~56% (38-80), FCM3 ~78% (56-91);")
	fmt.Fprintln(w, "accuracy ordering L < S2 < FCM1 < FCM2 < FCM3 with diminishing returns")
	fmt.Fprintln(w, "per added order.")
	fmt.Fprintln(w)
	return nil
}

// catFig builds the Run func for Figures 4-7.
func catFig(cat isa.Category) func(io.Writer, Config, *analysis.Suite) error {
	return func(w io.Writer, _ Config, suite *analysis.Suite) error {
		if err := accuracyFig(w, suite, int(cat), cat.String()+" instructions"); err != nil {
			return err
		}
		switch cat {
		case isa.CatAddSub:
			fmt.Fprintln(w, "Paper: add/subtract is the most predictable class; stride does")
			fmt.Fprintln(w, "particularly well because the operation matches the predictor.")
		case isa.CatLoads:
			fmt.Fprintln(w, "Paper: loads are harder than add/subtract for all predictors.")
		case isa.CatLogic:
			fmt.Fprintln(w, "Paper: logic instructions are very predictable, especially by fcm.")
		case isa.CatShift:
			fmt.Fprintln(w, "Paper: shifts are the most difficult type to predict.")
		}
		fmt.Fprintln(w)
		return nil
	}
}

// runFig8 renders the predictor-set correlation breakdown.
func runFig8(w io.Writer, _ Config, suite *analysis.Suite) error {
	groups := []struct {
		label string
		cat   int
	}{
		{"All", -1},
		{"AddSub", int(isa.CatAddSub)},
		{"Loads", int(isa.CatLoads)},
		{"Logic", int(isa.CatLogic)},
		{"Shift", int(isa.CatShift)},
		{"Set", int(isa.CatSet)},
	}
	headers := []string{"Set"}
	for _, g := range groups {
		headers = append(headers, g.label)
	}
	t := analysis.NewTable(
		"Fraction of predictions (%) by exactly-correct predictor subset\n(l=last value, s=stride s2, f=fcm3; np=none correct; mean over benchmarks)",
		headers...)
	for mask := 0; mask < analysis.NumMasks; mask++ {
		row := []any{analysis.MaskLabels[mask]}
		for _, g := range groups {
			fr := suite.MeanSetFractions(g.cat)
			row = append(row, fmt.Sprintf("%.1f", 100*fr[mask]))
		}
		t.AddRow(row...)
	}
	t.Render(w)

	fr := suite.MeanSetFractions(-1)
	fmt.Fprintf(w, "np (none correct):            %.1f%%   (paper: ~18%%)\n", 100*fr[0])
	fmt.Fprintf(w, "lsf (all three correct):      %.1f%%   (paper: ~40%%)\n", 100*fr[7])
	fmt.Fprintf(w, "f only (fcm alone):           %.1f%%   (paper: >20%%)\n", 100*fr[4])
	fmt.Fprintf(w, "l+ls (stride/fcm miss, l ok): %.1f%%   (paper: <5%% adds little)\n",
		100*(fr[1]+fr[3]))
	fmt.Fprintln(w)
	return nil
}

// runFig9 renders the cumulative improvement curve of FCM3 over S2.
func runFig9(w io.Writer, _ Config, suite *analysis.Suite) error {
	groups := []struct {
		label string
		cat   int
	}{
		{"All", -1},
		{"AddSub", int(isa.CatAddSub)},
		{"Loads", int(isa.CatLoads)},
		{"Logic", int(isa.CatLogic)},
		{"Shift", int(isa.CatShift)},
		{"Set", int(isa.CatSet)},
	}
	headers := []string{"% static instrs"}
	for _, g := range groups {
		headers = append(headers, g.label)
	}
	t := analysis.NewTable(
		"Cumulative % of total FCM3-over-S2 improvement vs % of improving static instructions",
		headers...)
	curves := make([][]analysis.ImprovementPoint, len(groups))
	for i, g := range groups {
		curves[i] = analysis.ImprovementCurve(suite.Results, g.cat)
	}
	for step := 0; step <= 20; step++ {
		pct := float64(step) * 5
		row := []any{fmt.Sprintf("%.0f", pct)}
		for _, curve := range curves {
			v := "-"
			for _, p := range curve {
				if p.PctStatic <= pct+1e-9 {
					v = fmt.Sprintf("%.1f", p.PctImprovement)
				}
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	t.Render(w)

	pctStatic, pctImp := analysis.ImprovementShare(suite.Results, 0.97)
	fmt.Fprintf(w, "%.0f%% of improving static instructions cover %.1f%% of the improvement.\n",
		pctStatic, pctImp)
	fmt.Fprintln(w, "Paper: about 20% of static instructions account for ~97% of the total")
	fmt.Fprintln(w, "improvement of fcm over stride, motivating a chooser-based hybrid.")
	fmt.Fprintln(w)
	return nil
}

// runFig10 renders the unique-value histograms.
func runFig10(w io.Writer, _ Config, suite *analysis.Suite) error {
	groups := []struct {
		label string
		cat   int
	}{
		{"All", -1},
		{"AddSub", int(isa.CatAddSub)},
		{"Loads", int(isa.CatLoads)},
		{"Logic", int(isa.CatLogic)},
		{"Shift", int(isa.CatShift)},
		{"Set", int(isa.CatSet)},
	}
	for _, view := range []struct {
		label   string
		dynamic bool
	}{
		{"static instructions (s.)", false},
		{"dynamic instructions (d.)", true},
	} {
		headers := []string{"unique values <="}
		for _, g := range groups {
			headers = append(headers, g.label)
		}
		t := analysis.NewTable(fmt.Sprintf("Share of %s by unique values produced (%%)", view.label), headers...)
		hists := make([]analysis.ValueHistogram, len(groups))
		for i, g := range groups {
			hists[i] = analysis.UniqueValueHistogram(suite.Results, g.cat, view.dynamic)
		}
		for bi, b := range analysis.ValueBuckets {
			row := []any{fmt.Sprint(b)}
			for _, h := range hists {
				row = append(row, fmt.Sprintf("%.1f", h.Buckets[bi]))
			}
			t.AddRow(row...)
		}
		row := []any{">65536"}
		for _, h := range hists {
			row = append(row, fmt.Sprintf("%.1f", h.Over))
		}
		t.AddRow(row...)
		t.Render(w)
	}

	all := analysis.UniqueValueHistogram(suite.Results, -1, false)
	dyn := analysis.UniqueValueHistogram(suite.Results, -1, true)
	fmt.Fprintf(w, "static instrs producing 1 value:   %.1f%%  (paper: >50%%)\n", all.CumulativeAtMost(1))
	fmt.Fprintf(w, "static instrs producing <=64:      %.1f%%  (paper: ~90%%)\n", all.CumulativeAtMost(64))
	fmt.Fprintf(w, "dynamic instrs from <=64 sources:  %.1f%%  (paper: >50%%)\n", dyn.CumulativeAtMost(64))
	fmt.Fprintf(w, "dynamic instrs from <=4096:        %.1f%%  (paper: >90%%)\n", dyn.CumulativeAtMost(4096))
	fmt.Fprintln(w)
	return nil
}
