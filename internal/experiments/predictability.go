package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/predstat"
)

// This file implements the "ceil" experiment: per-class accuracy versus
// the entropy ceiling the value streams themselves permit. Where the
// paper reports how often each predictor hit, this experiment reports how
// close each hit rate comes to the best any predictor of its class could
// do on the same stream — the online analogue built on internal/predstat.

// ceilMinEvents is the per-PC event floor for the offline report; scaled
// runs are short, so it sits below the online tracker's default.
const ceilMinEvents = 64

// runCeil replays each benchmark through the standard bank with a
// predstat.Tracker attached and renders the per-class accuracy-vs-ceiling
// and per-predictor ceiling-gap tables.
func runCeil(w io.Writer, cfg Config, _ *analysis.Suite) error {
	benches := cfg.Benchmarks
	if len(benches) == 0 {
		for _, wl := range bench.Registry() {
			benches = append(benches, wl.Name)
		}
	}
	facs := core.StandardFactories()
	names := make([]string, len(facs))
	for i, fac := range facs {
		names[i] = fac.Name
	}

	classTab := analysis.NewTable(
		fmt.Sprintf("accuracy vs entropy ceiling by sequence class (PCs with >=%d events)", ceilMinEvents),
		"Bench", "Class", "PCs", "Events", "Entropy (b)", "Ceiling (%)", "Best (%)", "Gap (%)")
	gapHeaders := append([]string{"Bench"}, names...)
	gapTab := analysis.NewTable(
		"events-weighted ceiling gap per predictor (own-class ceiling - realized hit rate, %)",
		gapHeaders...)

	for _, name := range benches {
		if cfg.Progress != nil {
			cfg.Progress(name)
		}
		ps := make([]core.Predictor, len(facs))
		for i, fac := range facs {
			ps[i] = fac.New()
		}
		bank := core.NewBank(ps...)
		tr := predstat.NewTracker(predstat.Config{
			PredNames: names,
			MinEvents: ceilMinEvents,
		})
		bank.SetObserver(tr)
		_, err := engine.RunStream(engine.StreamConfig{
			Benchmark: name,
			Opt:       bench.RefOpt,
			Scale:     cfg.Scale,
			Events:    cfg.Events,
			BatchSize: cfg.BatchSize,
		}, func(pcs, vals []uint64) {
			bank.StepBatch(pcs, vals)
		})
		if err != nil {
			return err
		}
		rep := tr.Report(1)
		for _, cls := range predstat.ClassLabels {
			cs := rep.Classes[cls]
			if cs == nil {
				continue
			}
			classTab.AddRow(name, cls, fmt.Sprint(cs.PCs), fmt.Sprint(cs.Events),
				fmt.Sprintf("%.3f", cs.EntropyBits),
				fmt.Sprintf("%.1f", 100*cs.Ceiling),
				fmt.Sprintf("%.1f", 100*cs.Accuracy),
				fmt.Sprintf("%.1f", 100*(cs.Ceiling-cs.Accuracy)))
		}
		row := make([]any, 0, len(names)+1)
		row = append(row, name)
		for _, g := range rep.GapByPred {
			row = append(row, fmt.Sprintf("%.1f", 100*g.Gap))
		}
		gapTab.AddRow(row...)
	}
	classTab.Render(w)
	gapTab.Render(w)
	fmt.Fprintln(w, "Paper: constant and stride sequences are near-fully predictable while")
	fmt.Fprintln(w, "non-stride classes need context (Table 1); the ceiling column bounds")
	fmt.Fprintln(w, "what any predictor of the class can reach, so the gap separates model")
	fmt.Fprintln(w, "limits from table-training limits.")
	fmt.Fprintln(w)
	return nil
}
