package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/sim"
)

// This file implements the gcc sensitivity experiments (Tables 6-7 and
// Figure 11): order-2 FCM accuracy under different inputs and compiler
// flags, and the order sweep.

// runGccFCM runs the gcc workload with a single FCM of the given order
// and returns (predicted events, accuracy%).
func runGccFCM(order int, opt int, input []byte, events uint64) (uint64, float64, error) {
	w := bench.Gcc()
	fcm := core.NewFCM(order)
	var acc core.Accuracy
	res, err := w.Run(bench.RunConfig{
		Opt:       opt,
		Input:     input,
		MaxEvents: events,
		OnValue: func(ev sim.ValueEvent) {
			pred, ok := fcm.Predict(ev.PC)
			acc.Observe(ok && pred == ev.Value)
			fcm.Update(ev.PC, ev.Value)
		},
	})
	if err != nil {
		return 0, 0, err
	}
	return res.Events, acc.Percent(), nil
}

// runTable6 varies the gcc input file with an order-2 FCM.
func runTable6(w io.Writer, cfg Config, _ *analysis.Suite) error {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	t := analysis.NewTable(
		"gcc with order-2 fcm across input files",
		"File", "Predictions (k)", "Correct (%)")
	for _, file := range bench.GccInputFiles {
		events, pct, err := runGccFCM(2, bench.RefOpt, bench.GccInput(file, scale), cfg.Events)
		if err != nil {
			return err
		}
		t.AddRow(file, fmt.Sprintf("%d", events/1000), fmt.Sprintf("%.1f", pct))
	}
	t.Render(w)
	fmt.Fprintln(w, "Paper: accuracy varies little across input files (76.0-78.6% over")
	fmt.Fprintln(w, "inputs spanning 106M-372M predictions) because tables are unbounded.")
	fmt.Fprintln(w)
	return nil
}

// runTable7 varies the compiler optimization level with an order-2 FCM.
func runTable7(w io.Writer, cfg Config, _ *analysis.Suite) error {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	input := bench.GccInput("gcc.i", scale)
	t := analysis.NewTable(
		"gcc (input gcc.i) with order-2 fcm across compiler flags",
		"Flags", "Predictions (k)", "Correct (%)")
	for opt := 0; opt <= 3; opt++ {
		events, pct, err := runGccFCM(2, opt, input, cfg.Events)
		if err != nil {
			return err
		}
		t.AddRow(minic.OptLevelName(opt), fmt.Sprintf("%d", events/1000), fmt.Sprintf("%.1f", pct))
	}
	t.Render(w)
	fmt.Fprintln(w, "Paper: accuracy varies only 75.3-78.6% across none/-O1/-O2/ref even")
	fmt.Fprintln(w, "though the prediction counts change 4x — predictability is a program")
	fmt.Fprintln(w, "property, not a compiler artifact.")
	fmt.Fprintln(w)
	return nil
}

// runFig11 sweeps the FCM order 1..8 on gcc.
func runFig11(w io.Writer, cfg Config, _ *analysis.Suite) error {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	input := bench.GccInput("gcc.i", scale)
	t := analysis.NewTable(
		"gcc (input gcc.i) prediction accuracy vs fcm order",
		"Order", "Correct (%)", "Gain over previous")
	prev := 0.0
	for order := 1; order <= 8; order++ {
		_, pct, err := runGccFCM(order, bench.RefOpt, input, cfg.Events)
		if err != nil {
			return err
		}
		gain := "-"
		if order > 1 {
			gain = fmt.Sprintf("%+.2f", pct-prev)
		}
		t.AddRow(fmt.Sprint(order), fmt.Sprintf("%.2f", pct), gain)
		prev = pct
	}
	t.Render(w)
	fmt.Fprintln(w, "Paper: accuracy rises from ~74% (order 1) to ~82% (order 8) with")
	fmt.Fprintln(w, "clearly diminishing returns — roughly halving the gain per added")
	fmt.Fprintln(w, "context value.")
	fmt.Fprintln(w)
	return nil
}
