package serve

// Delta checkpoints: the serve-side half of the v2 incremental snapshot
// format. The server keeps a chain state between cuts — the tip
// checkpoint's ID, per-shard parent chunk descriptors, and the set of
// chunk hashes stored inline somewhere in the live chain. Each cut
// decides full-vs-delta under ckptMu, mails an immutable capture plan to
// every shard with the cut markers, and the shards serialize their
// predictor state chunk-wise on their own goroutines: clean chunks are
// skipped against the parent descriptors (dirty tracking is exact at
// bank granularity — every predictor in a bank observes every event),
// and fresh chunk bytes dedup by content hash against the whole chain.
// Any capture or write failure poisons the chain, forcing the next cut
// full, which is also what makes resetting the dirty bits right after a
// shard's capture sound.

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/snapshot"
)

// defaultFullEvery is how many delta checkpoints may follow a full
// before the next cut is forced full, bounding restore chain length.
const defaultFullEvery = 8

// chainShard is one shard's capture descriptors from the chain tip: the
// bank's PC count at that capture (clean-chunk skipping is only sound
// while membership is unchanged) and, per predictor, the chunk table
// with data stripped — what the next capture copies for skipped chunks.
type chainShard struct {
	pcCount int
	preds   [][]snapshot.ChunkRef
}

// chainState tracks the live delta chain between checkpoints. Mutated
// only under ckptMu; shards see it through the immutable deltaPlan
// mailed with each cut marker.
type chainState struct {
	tipID     string
	depth     int
	sinceFull int
	// poisoned forces the next cut full: set when a capture or write
	// failed (shards may have reset dirty bits for a checkpoint that
	// never landed) and cleared by the next successful full.
	poisoned bool
	// hashes is every chunk hash stored inline somewhere in the live
	// chain — the set references may point into. Rebuilt at each full,
	// extended by each delta.
	hashes map[[snapshot.HashSize]byte]struct{}
	shards []chainShard
}

// deltaPlan is one shard's capture directive for one cut. It is built
// under ckptMu before the markers are mailed and never mutated while
// shards read it concurrently.
type deltaPlan struct {
	// full captures everything inline-or-self-referenced: no parent
	// skipping, no cross-file references (a chain root must resolve
	// alone).
	full bool
	// hashes is the chain's read-only dedup set (nil for a full cut).
	hashes map[[snapshot.HashSize]byte]struct{}
	// parent is this shard's tip capture descriptors (nil for a full
	// cut).
	parent *chainShard
}

// planCut decides full-vs-delta for the next checkpoint and builds the
// per-shard capture plans; nil when delta checkpoints are disabled.
// Called under ckptMu.
func (s *Server) planCut(forceFull bool) []*deltaPlan {
	if !s.cfg.DeltaCheckpoints {
		return nil
	}
	st := &s.chain
	full := forceFull || st.poisoned || st.tipID == "" ||
		st.sinceFull >= s.cfg.FullEvery || len(st.shards) != len(s.shards)
	plans := make([]*deltaPlan, len(s.shards))
	for i := range plans {
		p := &deltaPlan{full: full}
		if !full {
			p.hashes = st.hashes
			p.parent = &st.shards[i]
		}
		plans[i] = p
	}
	return plans
}

// deltaShardState is one shard's reply to a delta-mode capture marker.
type deltaShardState struct {
	sh      snapshot.DeltaShard
	pcCount int
	written int // chunks stored inline in this checkpoint
	deduped int // chunks stored as references (skipped clean or hash hit)
}

// captureDelta serializes the shard's predictor state chunk-wise for a
// v2 checkpoint; called on the shard goroutine, like captureState. On
// success the bank's dirty bits are reset — sound because any later
// failure of this checkpoint poisons the chain and forces the next cut
// full.
func (sh *shard) captureDelta(plan *deltaPlan) shardStateMsg {
	ds := &deltaShardState{
		sh: snapshot.DeltaShard{
			Shard:  sh.id,
			Events: sh.events,
			PCs:    sh.pcs.AppendSorted(make([]uint64, 0, sh.pcs.Len())),
			Preds:  make([]snapshot.DeltaPred, len(sh.preds)),
		},
		pcCount: sh.bank.PCCount(),
	}
	canSkip := !plan.full && plan.parent != nil && plan.parent.pcCount == ds.pcCount
	// seen dedups identical chunks within this shard's own capture;
	// references resolve against the written file itself, so this is
	// legal even in a full checkpoint.
	seen := make(map[[snapshot.HashSize]byte]struct{})
	// dedup classifies one freshly encoded chunk: a reference when its
	// hash is already stored in the chain (or earlier in this capture),
	// a copied inline chunk otherwise.
	dedup := func(firstPC uint64, records int, data []byte) snapshot.ChunkRef {
		h, crc := snapshot.ChunkKey(data)
		_, inChain := plan.hashes[h]
		if _, ok := seen[h]; ok || inChain {
			ds.deduped++
			return snapshot.ChunkRef{Hash: h, CRC: crc, Len: len(data), FirstPC: firstPC, Records: records}
		}
		seen[h] = struct{}{}
		ds.written++
		return snapshot.ChunkRef{
			Hash: h, CRC: crc, Len: len(data), FirstPC: firstPC, Records: records,
			Data: append([]byte(nil), data...),
		}
	}
	for i, p := range sh.preds {
		dp := &ds.sh.Preds[i]
		dp.Name = sh.names[i]
		dp.Correct = sh.acc[i].Correct
		dp.Total = sh.acc[i].Total
		cp, chunked := p.(core.ChunkedStateful)
		if !chunked {
			// Opaque predictor (composite or cross-PC state): the whole
			// SaveState blob is a single chunk, content-addressed like any
			// other — an unchanged opaque predictor still dedups to one
			// reference.
			stateful, ok := p.(core.Stateful)
			if !ok {
				return shardStateMsg{err: fmt.Errorf("serve: predictor %q does not implement core.Stateful", sh.names[i])}
			}
			var buf bytes.Buffer
			if err := stateful.SaveState(&buf); err != nil {
				return shardStateMsg{err: fmt.Errorf("serve: shard %d: %w", sh.id, err)}
			}
			dp.Chunks = append(dp.Chunks, dedup(0, 0, buf.Bytes()))
			continue
		}
		var parent []snapshot.ChunkRef
		if plan.parent != nil && i < len(plan.parent.preds) {
			parent = plan.parent.preds[i]
		}
		idx := 0
		cs := &core.ChunkSaver{
			Dirty:   sh.bank.PCDirty,
			CanSkip: canSkip && parent != nil,
			Header: func(hdr []byte) error {
				dp.Header = append([]byte(nil), hdr...)
				return nil
			},
			Emit: func(firstPC uint64, records int, data []byte) error {
				k := idx
				idx++
				if data == nil {
					// Skipped clean chunk: its bytes equal the parent's
					// chunk at the same index. The descriptor copy is
					// cross-checked against the chunking the save just
					// produced — any drift is corruption, not a delta.
					if k >= len(parent) {
						return fmt.Errorf("serve: shard %d %q: clean chunk %d past parent table (%d chunks)",
							sh.id, dp.Name, k, len(parent))
					}
					pc := parent[k]
					if pc.FirstPC != firstPC || pc.Records != records {
						return fmt.Errorf("serve: shard %d %q: clean chunk %d misaligned with parent (pc %#x/%d vs %#x/%d)",
							sh.id, dp.Name, k, firstPC, records, pc.FirstPC, pc.Records)
					}
					ds.deduped++
					dp.Chunks = append(dp.Chunks, snapshot.ChunkRef{
						Hash: pc.Hash, CRC: pc.CRC, Len: pc.Len, FirstPC: firstPC, Records: records,
					})
					return nil
				}
				dp.Chunks = append(dp.Chunks, dedup(firstPC, records, data))
				return nil
			},
		}
		if err := cp.SaveStateChunks(cs); err != nil {
			return shardStateMsg{err: fmt.Errorf("serve: shard %d: %w", sh.id, err)}
		}
	}
	sh.bank.ResetDirty()
	return shardStateMsg{delta: ds}
}

// assembleDelta drains the shard replies of a delta-mode cut, writes the
// v2 checkpoint file and advances the chain state. Mirrors
// assembleCheckpoint's metrics, ring events and trace spans, adding the
// chunk and chain telemetry. Called under ckptMu.
func (s *Server) assembleDelta(dir string, replies []chan shardStateMsg, plans []*deltaPlan, cutT0 time.Time, tctx otrace.Context) (CheckpointInfo, error) {
	defer s.health.cutStart.Store(0)
	full := plans[0].full
	kind := "delta"
	if full {
		kind = "full"
	}
	d := &snapshot.Delta{
		Meta: snapshot.DeltaMeta{
			CreatedUnixNano: time.Now().UnixNano(),
			Predictors:      append([]string(nil), s.predNames...),
		},
		Shards: make([]snapshot.DeltaShard, len(replies)),
	}
	if !full {
		d.Meta.ParentID = s.chain.tipID
		d.Meta.Depth = s.chain.depth + 1
	}
	shardStates := make([]*deltaShardState, len(replies))
	var firstErr error
	var events uint64
	written, deduped := 0, 0
	for i, ch := range replies {
		resp := <-ch // always drain every reply, even after an error
		if resp.err != nil && firstErr == nil {
			firstErr = resp.err
		}
		if resp.delta != nil {
			shardStates[i] = resp.delta
			d.Shards[i] = resp.delta.sh
			events += resp.delta.sh.Events
			written += resp.delta.written
			deduped += resp.delta.deduped
		}
	}
	cutNs := time.Since(cutT0).Nanoseconds()
	s.metrics.ckptCutNs.ObserveInt(cutNs)
	s.ring.Add(obs.StageEvent{Kind: evCheckpointCut, Shard: -1, DurNs: cutNs, N: events})
	cutStartNs := cutT0.UnixNano()
	s.tracer.Record(s.controlLane(), otrace.Span{
		TraceID: tctx.TraceID, SpanID: tctx.SpanID,
		Stage: otrace.StageCheckpointCut, Shard: -1, Pred: -1,
		Start: cutStartNs, Dur: cutNs, N: events,
	})
	if firstErr != nil {
		s.chain.poisoned = true
		s.metrics.ckptErrors.Inc()
		s.ring.Add(obs.StageEvent{Kind: evCheckpointError, Shard: -1, Detail: firstErr.Error()})
		s.tracer.Promote(tctx, cutStartNs, cutNs, events, "checkpoint_error")
		return CheckpointInfo{}, firstErr
	}
	encT0 := time.Now()
	path, err := snapshot.WriteDeltaFileAtomic(dir, d)
	encNs := time.Since(encT0).Nanoseconds()
	s.metrics.ckptEncodeNs.ObserveInt(encNs)
	s.tracer.Record(s.controlLane(), otrace.Span{
		TraceID: tctx.TraceID, SpanID: tctx.SpanID + 1, Parent: tctx.SpanID,
		Stage: otrace.StageCheckpointEncode, Shard: -1, Pred: -1,
		Start: encT0.UnixNano(), Dur: encNs, N: events,
	})
	s.tracer.Promote(tctx, cutStartNs, cutNs+encNs, events, "checkpoint")
	if err != nil {
		s.chain.poisoned = true
		s.metrics.ckptErrors.Inc()
		s.ring.Add(obs.StageEvent{Kind: evCheckpointError, Shard: -1, DurNs: encNs, Detail: err.Error()})
		return CheckpointInfo{}, err
	}

	// The checkpoint is durable: advance the chain. Descriptors keep the
	// chunk tables but drop the inline bytes, so the retained state is
	// manifest-sized, not snapshot-sized.
	st := &s.chain
	st.tipID = d.Meta.ID
	st.depth = d.Meta.Depth
	if full {
		st.sinceFull = 0
		st.poisoned = false
		st.hashes = make(map[[snapshot.HashSize]byte]struct{})
	} else {
		st.sinceFull++
	}
	if len(st.shards) != len(replies) {
		st.shards = make([]chainShard, len(replies))
	}
	for i, dst := range shardStates {
		cs := chainShard{pcCount: dst.pcCount, preds: make([][]snapshot.ChunkRef, len(d.Shards[i].Preds))}
		for j := range d.Shards[i].Preds {
			chunks := d.Shards[i].Preds[j].Chunks
			refs := make([]snapshot.ChunkRef, len(chunks))
			copy(refs, chunks)
			for k := range refs {
				if refs[k].Data != nil {
					st.hashes[refs[k].Hash] = struct{}{}
					refs[k].Data = nil
				}
			}
			cs.preds[j] = refs
		}
		st.shards[i] = cs
	}

	var size int64
	if fi, statErr := os.Stat(path); statErr == nil {
		size = fi.Size()
	}
	m := s.metrics
	m.ckptTotal[kind].Inc()
	m.ckptBytes[kind].Add(uint64(size))
	m.ckptChunksWritten.Add(uint64(written))
	m.ckptChunksDeduped.Add(uint64(deduped))
	if written+deduped > 0 {
		m.ckptDedupRatio.Set(float64(deduped) / float64(written+deduped))
	}
	m.ckptChainDepth.Set(int64(st.depth))
	m.ckptLastBytes.Set(size)
	m.ckptLastUnix.Set(time.Now().UnixNano())
	s.ring.Add(obs.StageEvent{Kind: evCheckpointWritten, Shard: -1, DurNs: encNs, N: uint64(size),
		Detail: fmt.Sprintf("%s kind=%s depth=%d", d.Meta.ID, kind, st.depth)})
	s.log.Info("checkpoint written",
		"id", d.Meta.ID, "kind", kind, "depth", st.depth, "parent", d.Meta.ParentID,
		"events", d.Meta.Events, "bytes", size, "chunks_written", written, "chunks_deduped", deduped,
		"cut", time.Duration(cutNs), "encode", time.Duration(encNs))

	// A durable full supersedes every older chain: GC the files (and with
	// them every chunk only reachable through them). Best-effort — a
	// failed sweep never fails the checkpoint that just landed.
	if full {
		if removed, gcErr := snapshot.SweepSuperseded(dir, path, d.Meta.Events); gcErr != nil {
			s.log.Warn("checkpoint gc failed", "err", gcErr)
		} else if removed > 0 {
			s.log.Info("checkpoint gc", "removed", removed, "keep", d.Meta.ID)
		}
	}
	return CheckpointInfo{
		ID: d.Meta.ID, Path: path, Events: d.Meta.Events, Shards: len(d.Shards),
		Kind: kind, Depth: st.depth, ParentID: d.Meta.ParentID,
		ChunksWritten: written, ChunksDeduped: deduped,
	}, nil
}
