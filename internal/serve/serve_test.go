package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// captureEvents runs the compress workload once (package-wide, it is the
// slow part) and exposes the identical stream as serve events and as an
// encoded trace file.
var captureOnce = struct {
	sync.Once
	events []Event
	traced []byte
	err    error
}{}

func capturedStream(t *testing.T) ([]Event, []byte) {
	t.Helper()
	captureOnce.Do(func() {
		w := bench.Compress()
		var buf bytes.Buffer
		tw, err := trace.NewWriter(&buf, trace.Header{Benchmark: w.Name, Opt: 2, Scale: 1})
		if err != nil {
			captureOnce.err = err
			return
		}
		_, err = w.Run(bench.RunConfig{
			Opt:       2,
			MaxEvents: 20_000,
			OnValues: func(evs []sim.ValueEvent) {
				for _, ev := range evs {
					captureOnce.events = append(captureOnce.events, Event{PC: ev.PC, Value: ev.Value})
					if werr := tw.Write(trace.FromSim(ev)); werr != nil && captureOnce.err == nil {
						captureOnce.err = werr
					}
				}
			},
		})
		if err != nil {
			captureOnce.err = err
			return
		}
		if err := tw.Close(); err != nil {
			captureOnce.err = err
			return
		}
		captureOnce.traced = buf.Bytes()
	})
	if captureOnce.err != nil {
		t.Fatal(captureOnce.err)
	}
	return captureOnce.events, captureOnce.traced
}

// offlineReplay applies vptrace replay's exact loop: predict, observe,
// update, per predictor over the full stream.
func offlineReplay(t *testing.T, names string, evs []Event) ([]string, []uint64) {
	t.Helper()
	facs, err := core.ParseFactories(names)
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]core.Predictor, len(facs))
	labels := make([]string, len(facs))
	for i, f := range facs {
		preds[i] = f.New()
		labels[i] = f.Name
	}
	correct := make([]uint64, len(preds))
	for _, ev := range evs {
		core.StepBank(preds, correct, ev.PC, ev.Value)
	}
	return labels, correct
}

func startTestServer(t *testing.T, shards int, httpAddr string) *Server {
	t.Helper()
	s, err := New(Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", httpAddr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestParityWithOfflineReplay is the subsystem's acceptance test: driving
// a captured stream through a running server — at several shard counts and
// client concurrencies — must report byte-identical per-predictor tallies
// to the offline replay loop.
func TestParityWithOfflineReplay(t *testing.T) {
	evs, _ := capturedStream(t)
	_, want := offlineReplay(t, "l,s2,fcm1,fcm2,fcm3", evs)
	for _, tc := range []struct{ shards, clients int }{
		{1, 1}, {1, 4}, {3, 1}, {4, 4},
	} {
		t.Run(fmt.Sprintf("shards=%d/clients=%d", tc.shards, tc.clients), func(t *testing.T) {
			s := startTestServer(t, tc.shards, "")
			res, err := DriveEvents(evs, DriveConfig{
				Addr:      s.Addr().String(),
				Clients:   tc.clients,
				BatchSize: 512,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Events != uint64(len(evs)) {
				t.Fatalf("drove %d events, want %d", res.Events, len(evs))
			}
			for i, name := range res.Predictors {
				if res.Correct[i] != want[i] {
					t.Errorf("%s: online correct = %d, offline = %d", name, res.Correct[i], want[i])
				}
			}
		})
	}
}

// TestTraceDriveParity drives the encoded .vpt bytes through DriveTrace —
// the vptrace drive path — and checks the same parity.
func TestTraceDriveParity(t *testing.T) {
	evs, traced := capturedStream(t)
	_, want := offlineReplay(t, "l,s2,fcm1,fcm2,fcm3", evs)
	s := startTestServer(t, 2, "")
	tr, err := trace.NewReader(bytes.NewReader(traced))
	if err != nil {
		t.Fatal(err)
	}
	res, err := DriveTrace(tr, DriveConfig{Addr: s.Addr().String(), Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != uint64(len(evs)) {
		t.Fatalf("drove %d events, want %d", res.Events, len(evs))
	}
	for i, name := range res.Predictors {
		if res.Correct[i] != want[i] {
			t.Errorf("%s: online correct = %d, offline = %d", name, res.Correct[i], want[i])
		}
	}
}

func TestStatsAggregation(t *testing.T) {
	evs, _ := capturedStream(t)
	s := startTestServer(t, 3, "")
	if _, err := DriveEvents(evs, DriveConfig{Addr: s.Addr().String(), Clients: 2}); err != nil {
		t.Fatal(err)
	}
	snap := s.Stats()
	if snap.Events != uint64(len(evs)) {
		t.Errorf("stats events = %d, want %d", snap.Events, len(evs))
	}
	uniq := make(map[uint64]bool)
	for _, ev := range evs {
		uniq[ev.PC] = true
	}
	if snap.UniquePCs != len(uniq) {
		t.Errorf("stats unique PCs = %d, want %d", snap.UniquePCs, len(uniq))
	}
	var perShard uint64
	for _, st := range snap.PerShard {
		perShard += st.Events
	}
	if perShard != snap.Events {
		t.Errorf("per-shard events sum %d != aggregate %d", perShard, snap.Events)
	}
	for _, ps := range snap.Predictors {
		if ps.Total != uint64(len(evs)) {
			t.Errorf("%s: total = %d, want %d", ps.Name, ps.Total, len(evs))
		}
		if ps.StaticPCs != len(uniq) {
			t.Errorf("%s: static PCs = %d, want %d", ps.Name, ps.StaticPCs, len(uniq))
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := startTestServer(t, 2, "127.0.0.1:0")
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do([]Event{{PC: 8, Value: 1}, {PC: 8, Value: 1}}); err != nil {
		t.Fatal(err)
	}

	base := "http://" + s.HTTPAddr().String()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status string   `json:"status"`
		Shards int      `json:"shards"`
		Preds  []string `json:"predictors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Shards != 2 || len(health.Preds) != 5 {
		t.Fatalf("healthz = %+v", health)
	}

	resp2, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Events != 2 || snap.UniquePCs != 1 || len(snap.PerShard) != 2 {
		t.Fatalf("stats = %+v", snap)
	}
	// Second occurrence of (8,1): last-value must have predicted it.
	if snap.Predictors[0].Name != "l" || snap.Predictors[0].Correct != 1 {
		t.Fatalf("l stats = %+v", snap.Predictors[0])
	}
}

func TestPipelinedRequests(t *testing.T) {
	s := startTestServer(t, 2, "")
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const batches = 100
	for b := 0; b < batches; b++ {
		evs := make([]Event, 50)
		for i := range evs {
			evs[i] = Event{PC: uint64(i * 4), Value: uint64(b)}
		}
		if err := c.Send(evs); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for b := 0; b < batches; b++ {
		r, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		total += r.Events
	}
	if total != batches*50 {
		t.Fatalf("tallied %d events", total)
	}
}

func TestEmptyBatch(t *testing.T) {
	s := startTestServer(t, 2, "")
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, err := c.Do(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events != 0 {
		t.Fatalf("empty batch tallied %d events", r.Events)
	}
}

func TestHelloReportsPriorEvents(t *testing.T) {
	s := startTestServer(t, 2, "")
	evs := []Event{{PC: 4, Value: 1}, {PC: 8, Value: 2}, {PC: 12, Value: 3}}
	res, err := DriveEvents(evs, DriveConfig{Addr: s.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerPriorEvents != 0 {
		t.Fatalf("first drive saw %d prior events", res.ServerPriorEvents)
	}
	res2, err := DriveEvents(evs, DriveConfig{Addr: s.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ServerPriorEvents != uint64(len(evs)) {
		t.Fatalf("second drive saw %d prior events, want %d", res2.ServerPriorEvents, len(evs))
	}
}

func TestRejectsNonShardablePredictor(t *testing.T) {
	bfcm, ok := core.FactoryByName("bfcm3")
	if !ok {
		t.Fatal("bfcm3 missing from registry")
	}
	if _, err := New(Config{Shards: 2, Predictors: []core.NamedFactory{bfcm}}); err == nil {
		t.Fatal("cross-PC predictor accepted with shards > 1")
	}
	s, err := New(Config{Shards: 1, Predictors: []core.NamedFactory{bfcm}})
	if err != nil {
		t.Fatalf("shards=1 must accept bfcm3: %v", err)
	}
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	s.Close()
}

func TestMalformedRequestReportsError(t *testing.T) {
	s := startTestServer(t, 1, "")
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Hand-craft a frame with an unknown message type.
	c.sbuf = append(c.sbuf[:0], 0x7F)
	if err := writeFrame(c.bw, c.sbuf); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	_, err = c.Recv()
	if err == nil || err == io.EOF {
		t.Fatalf("expected protocol error, got %v", err)
	}
}

func TestCloseAndStatsWithoutStart(t *testing.T) {
	// The natural defer-Close-around-Start pattern must survive a Start
	// that never ran (or failed): no panic, no hang.
	s, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if snap := s.Stats(); snap.Events != 0 {
		t.Fatalf("unstarted Stats = %+v", snap)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close on unstarted server: %v", err)
	}
	if err := s.Close(); err == nil {
		t.Fatal("double Close must error")
	}
}

func TestStartFailureLeavesServerClosable(t *testing.T) {
	a, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(a.Addr().String(), ""); err == nil {
		t.Fatal("Start on an in-use port must fail")
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close after failed Start: %v", err)
	}
}

func TestServerCloseWithActiveClients(t *testing.T) {
	s, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do([]Event{{PC: 4, Value: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.ln.Close(); err == nil {
		t.Log("listener closed twice without error (ok)")
	}
}
