package serve

import "sync"

// pendingPool recycles request-lifetime objects so the serving hot path
// is allocation-free in steady state: the pending itself, its per-request
// event buffer (the copy the shards own until the request completes) and
// the per-predictor tally slots are all reused. A pending returns to the
// pool only after the response writer has consumed its done signal, so
// reuse never races the shards.
//
// done is a one-slot buffered channel signalled (not closed) by the last
// finishing shard, which is what makes the channel itself reusable across
// requests; it is allocated once per pooled object and stays empty
// between uses (init fires it immediately for zero-part requests, the
// writer always receives exactly once).
var pendingPool = sync.Pool{
	New: func() any {
		return &pending{done: make(chan struct{}, 1)}
	},
}

// getPending returns a pending ready for init.
func getPending() *pending {
	return pendingPool.Get().(*pending)
}

// putPending recycles p (and its buffers) once no shard or writer can
// touch it anymore.
func putPending(p *pending) {
	pendingPool.Put(p)
}
