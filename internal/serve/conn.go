package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
)

// respQueueDepth bounds pipelining per connection: at most this many
// requests may be in flight (dispatched to shards but not yet answered)
// before the connection's reader blocks.
const respQueueDepth = 32

// handleConn speaks the binary protocol on one connection. The reader
// (this goroutine) decodes each events frame, buckets it stably by shard
// and dispatches the sub-batches; a writer goroutine emits results in
// request order as shards complete them, so independent requests pipeline
// while responses stay FIFO.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)
	if err := writeFrame(bw, appendHello(nil, len(s.shards), s.eventsServed.Load(), s.predNames)); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	resp := make(chan *pending, respQueueDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var buf []byte
		var werr error
		correct := make([]uint64, len(s.predNames))
		// On a write error keep draining resp (without writing) so the
		// reader never blocks on a full response queue.
		for p := range resp {
			<-p.done
			if werr != nil {
				continue
			}
			for i := range p.correct {
				correct[i] = p.correct[i].Load()
			}
			buf = appendResult(buf[:0], p.events, correct)
			if werr = writeFrame(bw, buf); werr != nil {
				continue
			}
			// Flush only when no further result is immediately ready, so
			// back-to-back pipelined responses coalesce into one write.
			if len(resp) == 0 {
				werr = bw.Flush()
			}
		}
		if werr == nil {
			bw.Flush()
		}
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	nshards := len(s.shards)
	var frame []byte
	cnt := make([]int, nshards)
	pos := make([]int, nshards)
	var readErr error
	for {
		var err error
		frame, err = readFrame(br, frame)
		if err != nil {
			readErr = err
			break
		}
		if frame[0] != msgEvents {
			readErr = fmt.Errorf("serve: unexpected message type %d", frame[0])
			break
		}
		evs, err := decodeEvents(frame[1:])
		if err != nil {
			readErr = err
			break
		}
		p := s.dispatch(evs, cnt, pos)
		resp <- p
	}
	close(resp)
	<-writerDone
	if readErr != nil && !errors.Is(readErr, io.EOF) {
		// Best-effort error report; the connection is going down anyway.
		writeFrame(bw, appendError(nil, readErr.Error()))
		bw.Flush()
	}
}

// dispatch buckets one request's events stably by shard and mails each
// non-empty sub-batch. cnt and pos are caller-owned scratch (one slot per
// shard); the bucketed backing array is allocated per request because the
// shards own it until the request completes.
//
// The shared cut lock is held across the sends so a concurrent
// checkpoint's capture markers can never land between two shards of the
// same request — the cut is request-atomic.
func (s *Server) dispatch(evs []Event, cnt, pos []int) *pending {
	s.eventsServed.Add(uint64(len(evs)))
	s.cutMu.RLock()
	defer s.cutMu.RUnlock()
	nshards := len(s.shards)
	if nshards == 1 {
		p := newPending(len(s.predNames), len(evs), boolToInt(len(evs) > 0))
		if len(evs) > 0 {
			s.shards[0].mailbox <- shardMsg{events: evs, req: p}
		}
		return p
	}
	for i := range cnt {
		cnt[i] = 0
	}
	for i := range evs {
		cnt[ShardOf(evs[i].PC, nshards)]++
	}
	parts := 0
	off := 0
	for i, c := range cnt {
		pos[i] = off
		off += c
		if c > 0 {
			parts++
		}
	}
	bucketed := make([]Event, len(evs))
	for i := range evs {
		sh := ShardOf(evs[i].PC, nshards)
		bucketed[pos[sh]] = evs[i]
		pos[sh]++
	}
	p := newPending(len(s.predNames), len(evs), parts)
	off = 0
	for i, c := range cnt {
		if c == 0 {
			continue
		}
		s.shards[i].mailbox <- shardMsg{events: bucketed[off : off+c], req: p}
		off += c
	}
	return p
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
