package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
)

// respQueueDepth bounds pipelining per connection: at most this many
// requests may be in flight (dispatched to shards but not yet answered)
// before the connection's reader blocks.
const respQueueDepth = 32

// handleConn speaks the binary protocol on one connection. The reader
// (this goroutine) decodes each events frame, buckets it stably by shard
// and dispatches the sub-batches; a writer goroutine emits results in
// request order as shards complete them, so independent requests pipeline
// while responses stay FIFO.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)
	hello := appendHello(nil, len(s.shards), s.eventsServed.Load(), s.predNames)
	if err := writeFrame(bw, hello); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	s.metrics.framesOut.Inc()
	s.metrics.bytesOut.Add(uint64(4 + len(hello)))

	resp := make(chan *pending, respQueueDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var buf []byte
		var werr error
		correct := make([]uint64, len(s.predNames))
		// On a write error keep draining resp (without writing) so the
		// reader never blocks on a full response queue. Every pending is
		// recycled here: once its done signal has been consumed, no shard
		// references its buffers anymore.
		for p := range resp {
			<-p.done
			if werr == nil {
				for i := range p.correct {
					correct[i] = p.correct[i].Load()
				}
				buf = appendResult(buf[:0], p.events, correct)
				s.metrics.framesOut.Inc()
				s.metrics.bytesOut.Add(uint64(4 + len(buf)))
				if werr = writeFrame(bw, buf); werr == nil && len(resp) == 0 {
					// Flush only when no further result is immediately
					// ready, so back-to-back pipelined responses coalesce
					// into one write.
					werr = bw.Flush()
				}
			}
			putPending(p)
		}
		if werr == nil {
			bw.Flush()
		}
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	nshards := len(s.shards)
	var frame []byte
	var scratch []Event // conn-local decode target, reused every frame
	cnt := make([]int, nshards)
	pos := make([]int, nshards)
	var readErr error
	for {
		var err error
		frame, err = readFrame(br, frame)
		if err != nil {
			readErr = err
			break
		}
		s.metrics.framesIn.Inc()
		s.metrics.bytesIn.Add(uint64(4 + len(frame)))
		if frame[0] != msgEvents {
			s.metrics.decodeErrors.Inc()
			readErr = fmt.Errorf("serve: unexpected message type %d", frame[0])
			break
		}
		scratch, err = decodeEventsInto(frame[1:], scratch[:0])
		if err != nil {
			s.metrics.decodeErrors.Inc()
			readErr = err
			break
		}
		p := s.dispatch(scratch, cnt, pos)
		resp <- p
		s.metrics.pipelineHW.SetMax(int64(len(resp)))
	}
	close(resp)
	<-writerDone
	if readErr != nil && !errors.Is(readErr, io.EOF) {
		// Best-effort error report; the connection is going down anyway.
		writeFrame(bw, appendError(nil, readErr.Error()))
		bw.Flush()
	}
}

// dispatch copies one request's events into a pooled request-owned buffer
// (bucketed stably by shard when there are several), and mails each
// non-empty sub-batch. cnt and pos are caller-owned scratch (one slot per
// shard); evs is the caller's decode scratch and may be reused as soon as
// dispatch returns — the shards only ever see the pooled copy, which the
// response writer recycles when the request completes.
//
// The shared cut lock is held across the sends so a concurrent
// checkpoint's capture markers can never land between two shards of the
// same request — the cut is request-atomic.
func (s *Server) dispatch(evs []Event, cnt, pos []int) *pending {
	s.eventsServed.Add(uint64(len(evs)))
	s.metrics.events.Add(uint64(len(evs)))
	nshards := len(s.shards)
	p := getPending()
	if cap(p.buf) < len(evs) {
		p.buf = make([]Event, len(evs))
	}
	owned := p.buf[:len(evs)]
	p.buf = owned
	if nshards == 1 {
		copy(owned, evs)
		p.init(len(s.predNames), len(evs), boolToInt(len(evs) > 0))
		s.cutMu.RLock()
		defer s.cutMu.RUnlock()
		if len(evs) > 0 {
			s.shards[0].mailbox <- shardMsg{events: owned, req: p}
		}
		return p
	}
	for i := range cnt {
		cnt[i] = 0
	}
	for i := range evs {
		cnt[ShardOf(evs[i].PC, nshards)]++
	}
	parts := 0
	off := 0
	for i, c := range cnt {
		pos[i] = off
		off += c
		if c > 0 {
			parts++
		}
	}
	for i := range evs {
		sh := ShardOf(evs[i].PC, nshards)
		owned[pos[sh]] = evs[i]
		pos[sh]++
	}
	p.init(len(s.predNames), len(evs), parts)
	s.cutMu.RLock()
	defer s.cutMu.RUnlock()
	off = 0
	for i, c := range cnt {
		if c == 0 {
			continue
		}
		s.shards[i].mailbox <- shardMsg{events: owned[off : off+c], req: p}
		off += c
	}
	return p
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
