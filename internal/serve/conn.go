package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	otrace "repro/internal/obs/trace"
)

// respQueueDepth bounds pipelining per connection: at most this many
// requests may be in flight (dispatched to shards but not yet answered)
// before the connection's reader blocks.
const respQueueDepth = 32

// handleConn speaks the binary protocol on one connection. The reader
// (this goroutine) decodes each events frame, buckets it stably by shard
// and dispatches the sub-batches; a writer goroutine emits results in
// request order as shards complete them, so independent requests pipeline
// while responses stay FIFO.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)
	hello := appendHello(nil, len(s.shards), s.eventsServed.Load(), s.predNames)
	if err := writeFrame(bw, hello); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	s.metrics.framesOut.Inc()
	s.metrics.bytesOut.Add(uint64(4 + len(hello)))

	resp := make(chan *pending, respQueueDepth)
	writerDone := make(chan struct{})
	ctl := s.controlLane()
	go func() {
		defer close(writerDone)
		var buf []byte
		var werr error
		correct := make([]uint64, len(s.predNames))
		// On a write error keep draining resp (without writing) so the
		// reader never blocks on a full response queue. Every pending is
		// recycled here: once its done signal has been consumed, no shard
		// references its buffers anymore.
		for p := range resp {
			<-p.done
			// The request is complete: observe whole-request latency (the
			// adaptive slow threshold's input) and, for traced requests,
			// record the root span and make the tail-sampling decision.
			// Every shard span happened-before the done signal, so a
			// promotion here collects a complete trace.
			durNs := time.Now().UnixNano() - p.start
			s.metrics.requestNs.ObserveInt(durNs)
			if p.ctx.Valid() {
				s.tracer.Record(ctl, otrace.Span{
					TraceID: p.ctx.TraceID, SpanID: p.ctx.SpanID,
					Stage: otrace.StageConn, Shard: -1, Pred: -1,
					Start: p.start, Dur: durNs, N: p.events,
				})
				if reason := s.tracer.RetainReason(p.ctx, durNs, p.degraded); reason != "" {
					s.tracer.Promote(p.ctx, p.start, durNs, p.events, reason)
				}
			}
			if werr == nil {
				for i := range p.correct {
					correct[i] = p.correct[i].Load()
				}
				buf = appendResult(buf[:0], p.events, correct)
				s.metrics.framesOut.Inc()
				s.metrics.bytesOut.Add(uint64(4 + len(buf)))
				if werr = writeFrame(bw, buf); werr == nil && len(resp) == 0 {
					// Flush only when no further result is immediately
					// ready, so back-to-back pipelined responses coalesce
					// into one write.
					werr = bw.Flush()
				}
			}
			putPending(p)
		}
		if werr == nil {
			bw.Flush()
		}
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	nshards := len(s.shards)
	var frame []byte
	var scratch []Event // conn-local decode target, reused every frame
	cnt := make([]int, nshards)
	pos := make([]int, nshards)
	var readErr error
	for {
		var err error
		frame, err = readFrame(br, frame)
		if err != nil {
			readErr = err
			break
		}
		s.metrics.framesIn.Inc()
		s.metrics.bytesIn.Add(uint64(4 + len(frame)))
		var tctx otrace.Context
		body := frame[1:]
		switch frame[0] {
		case msgEvents:
		case msgEventsTraced:
			tctx, body, err = decodeTraceHeader(frame[1:])
			if err != nil {
				s.metrics.decodeErrors.Inc()
				readErr = err
				break
			}
		default:
			s.metrics.decodeErrors.Inc()
			readErr = fmt.Errorf("serve: unexpected message type %d", frame[0])
		}
		if readErr != nil {
			break
		}
		scratch, err = decodeEventsInto(body, scratch[:0])
		if err != nil {
			s.metrics.decodeErrors.Inc()
			// A traced frame whose body failed to decode is a degraded
			// path: retain a (span-less) trace so the client's id lookup
			// finds what happened to it.
			if tctx.Valid() {
				s.tracer.Promote(tctx, time.Now().UnixNano(), 0, 0, "decode_error")
			}
			readErr = err
			break
		}
		p := s.dispatch(scratch, cnt, pos, tctx)
		resp <- p
		s.metrics.pipelineHW.SetMax(int64(len(resp)))
	}
	close(resp)
	<-writerDone
	if readErr != nil && !errors.Is(readErr, io.EOF) {
		// Best-effort error report; the connection is going down anyway.
		writeFrame(bw, appendError(nil, readErr.Error()))
		bw.Flush()
	}
}

// dispatch copies one request's events into a pooled request-owned buffer
// (bucketed stably by shard when there are several), and mails each
// non-empty sub-batch. cnt and pos are caller-owned scratch (one slot per
// shard); evs is the caller's decode scratch and may be reused as soon as
// dispatch returns — the shards only ever see the pooled copy, which the
// response writer recycles when the request completes.
//
// The shared cut lock is held across the sends so a concurrent
// checkpoint's capture markers can never land between two shards of the
// same request — the cut is request-atomic.
//
// tctx is the request's wire-carried trace context (zero = untraced).
// For traced requests dispatch records an enqueue span (bucketing +
// cut-lock acquisition + mailbox sends — where backpressure and
// checkpoint interference surface) and marks the request degraded when
// it lands on an already-full mailbox.
func (s *Server) dispatch(evs []Event, cnt, pos []int, tctx otrace.Context) *pending {
	startNs := time.Now().UnixNano()
	s.eventsServed.Add(uint64(len(evs)))
	s.metrics.events.Add(uint64(len(evs)))
	nshards := len(s.shards)
	p := getPending()
	p.ctx, p.start, p.degraded = tctx, startNs, ""
	if cap(p.buf) < len(evs) {
		p.buf = make([]Event, len(evs))
	}
	owned := p.buf[:len(evs)]
	p.buf = owned
	if nshards == 1 {
		copy(owned, evs)
		p.init(len(s.predNames), len(evs), boolToInt(len(evs) > 0))
		s.cutMu.RLock()
		defer s.cutMu.RUnlock()
		if len(evs) > 0 {
			sh := s.shards[0]
			if tctx.Valid() && len(sh.mailbox) == cap(sh.mailbox) {
				p.degraded = "mailbox_saturated"
			}
			sh.mailbox <- shardMsg{events: owned, req: p, ctx: tctx, sentNs: startNs}
		}
		s.recordEnqueue(tctx, startNs, len(evs))
		return p
	}
	for i := range cnt {
		cnt[i] = 0
	}
	for i := range evs {
		cnt[ShardOf(evs[i].PC, nshards)]++
	}
	parts := 0
	off := 0
	for i, c := range cnt {
		pos[i] = off
		off += c
		if c > 0 {
			parts++
		}
	}
	for i := range evs {
		sh := ShardOf(evs[i].PC, nshards)
		owned[pos[sh]] = evs[i]
		pos[sh]++
	}
	p.init(len(s.predNames), len(evs), parts)
	s.cutMu.RLock()
	defer s.cutMu.RUnlock()
	off = 0
	for i, c := range cnt {
		if c == 0 {
			continue
		}
		sh := s.shards[i]
		if tctx.Valid() && len(sh.mailbox) == cap(sh.mailbox) {
			p.degraded = "mailbox_saturated"
		}
		sh.mailbox <- shardMsg{events: owned[off : off+c], req: p, ctx: tctx, sentNs: startNs}
		off += c
	}
	s.recordEnqueue(tctx, startNs, len(evs))
	return p
}

// recordEnqueue closes a traced request's dispatch span: shard
// bucketing, cut-lock acquisition and every mailbox send.
func (s *Server) recordEnqueue(tctx otrace.Context, startNs int64, events int) {
	if !tctx.Valid() {
		return
	}
	s.tracer.Record(s.controlLane(), otrace.Span{
		TraceID: tctx.TraceID, SpanID: tctx.SpanID + 1, Parent: tctx.SpanID,
		Stage: otrace.StageEnqueue, Shard: -1, Pred: -1,
		Start: startNs, Dur: time.Now().UnixNano() - startNs, N: uint64(events),
	})
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
