package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"

	otrace "repro/internal/obs/trace"
)

// Client speaks the binary protocol to a running Server.
//
// Requests pipeline: Send may be called any number of times before the
// matching Recv calls, and results come back in send order. The send and
// receive halves are independent, so one goroutine may Send while another
// Recvs (the pattern the load driver uses); Send/Send and Recv/Recv from
// multiple goroutines need external locking.
type Client struct {
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	preds  []string
	shards int
	prior  uint64 // server lifetime events at connect
	sbuf   []byte // send scratch
	rbuf   []byte // recv scratch
}

// BatchResult is the server's tally for one events batch.
type BatchResult struct {
	Events  uint64
	Correct []uint64 // indexed like Predictors()
}

// Dial connects and consumes the server's hello.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
	frame, err := readFrame(c.br, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: reading hello: %w", err)
	}
	if frame[0] != msgHello {
		conn.Close()
		return nil, fmt.Errorf("serve: expected hello, got message type %d", frame[0])
	}
	c.shards, c.prior, c.preds, err = decodeHello(frame[1:])
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// PriorEvents returns how many events the server had already processed
// (across all clients, lifetime) when this connection was established —
// zero means the predictor tables were untrained at connect.
func (c *Client) PriorEvents() uint64 { return c.prior }

// Predictors returns the server's predictor bank names in result order.
func (c *Client) Predictors() []string { return append([]string(nil), c.preds...) }

// Shards returns the server's shard count.
func (c *Client) Shards() int { return c.shards }

// Send enqueues one events batch (buffered; flushed when the buffer
// fills or Flush/CloseWrite is called).
func (c *Client) Send(evs []Event) error {
	c.sbuf = appendEvents(c.sbuf[:0], evs)
	return writeFrame(c.bw, c.sbuf)
}

// SendTraced is Send carrying a trace context: the server records spans
// for this request at every stage it crosses and tail-samples it into
// GET /trace when it finishes slow, hits a degraded path, or carries the
// head-sampling flag. Invalid (zero) contexts fall back to a plain
// untraced events frame.
func (c *Client) SendTraced(evs []Event, ctx otrace.Context) error {
	if !ctx.Valid() {
		return c.Send(evs)
	}
	c.sbuf = appendEventsTraced(c.sbuf[:0], evs, ctx)
	return writeFrame(c.bw, c.sbuf)
}

// Flush pushes any buffered frames to the server.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv reads the next result, in send order. After CloseWrite, io.EOF
// signals that every outstanding result has been received. The returned
// Correct slice is freshly allocated; loops that drain many results
// should use RecvInto.
func (c *Client) Recv() (BatchResult, error) {
	res := BatchResult{Correct: make([]uint64, len(c.preds))}
	if err := c.RecvInto(&res); err != nil {
		return BatchResult{}, err
	}
	return res, nil
}

// RecvInto is Recv reusing the caller's result: res.Correct is resized in
// place (reallocated only when its capacity is short), so a loop that
// passes the same BatchResult receives with zero allocation in steady
// state.
func (c *Client) RecvInto(res *BatchResult) error {
	frame, err := readFrame(c.br, c.rbuf)
	if err != nil {
		return err
	}
	c.rbuf = frame[:0]
	switch frame[0] {
	case msgResult:
		if cap(res.Correct) < len(c.preds) {
			res.Correct = make([]uint64, len(c.preds))
		}
		res.Correct = res.Correct[:len(c.preds)]
		res.Events, err = decodeResultInto(frame[1:], res.Correct)
		return err
	case msgError:
		return errors.New("serve: server error: " + decodeError(frame[1:]))
	default:
		return fmt.Errorf("serve: unexpected message type %d", frame[0])
	}
}

// Do is the synchronous round trip: send one batch and wait for its
// result.
func (c *Client) Do(evs []Event) (BatchResult, error) {
	if err := c.Send(evs); err != nil {
		return BatchResult{}, err
	}
	if err := c.Flush(); err != nil {
		return BatchResult{}, err
	}
	return c.Recv()
}

// CloseWrite flushes and half-closes the connection: the server finishes
// the outstanding requests, sends their results and closes, so Recv
// drains to io.EOF.
func (c *Client) CloseWrite() error {
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if tc, ok := c.conn.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return errors.New("serve: connection does not support half-close")
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }
