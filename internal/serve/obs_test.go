package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// startObsServer is startTestServer with a checkpoint directory and full
// health/observability config, for the metrics and health tests.
func startObsServer(t *testing.T, shards int, ckptDir string) *Server {
	t.Helper()
	s, err := New(Config{Shards: shards, CheckpointDir: ckptDir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// promLine matches one exposition sample: name{labels} value. The label
// block, if present, must be well-formed key="value" pairs.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? [0-9.eE+-]+(Inf)?$`)

// TestMetricsEndpoint drives traffic and a checkpoint through a server
// and asserts GET /metrics exposes every required family in parseable
// Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	evs, _ := capturedStream(t)
	s := startObsServer(t, 2, t.TempDir())
	if _, err := DriveEvents(evs, DriveConfig{Addr: s.Addr().String(), Clients: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteCheckpoint(s.cfg.CheckpointDir); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, "http://"+s.HTTPAddr().String()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}

	// Every non-comment line must be a well-formed sample.
	sc := bufio.NewScanner(strings.NewReader(body))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines++
		if !promLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}
	if lines == 0 {
		t.Fatal("no samples in /metrics output")
	}

	// The families the acceptance criteria name, plus a value check on
	// the ones traffic must have moved.
	for _, fam := range []string{
		"vp_events_total ",
		"vp_conn_accepted_total ",
		"vp_conn_frames_in_total ",
		"vp_conn_bytes_in_total ",
		"vp_conn_bytes_out_total ",
		"vp_batch_ns_bucket{",
		"vp_batch_ns_count ",
		"vp_batch_events_bucket{",
		"vp_batch_pc_runs_count ",
		"vp_shard_events_total{shard=\"0\"}",
		"vp_shard_events_total{shard=\"1\"}",
		"vp_shard_mailbox_depth{shard=\"0\"}",
		"vp_shard_mailbox_highwater{",
		"vp_shard_unique_pcs{",
		"vp_pred_hits_total{",
		"vp_pred_events_total{",
		"vp_pred_hit_rate_ewma{",
		"vp_checkpoint_total{kind=\"full\"}",
		"vp_checkpoint_total{kind=\"delta\"}",
		"vp_checkpoint_chunks_written_total ",
		"vp_checkpoint_chunks_deduped_total ",
		"vp_checkpoint_dedupe_ratio ",
		"vp_checkpoint_chain_depth ",
		"vp_checkpoint_cut_ns_count ",
		"vp_checkpoint_encode_ns_count ",
		"vp_checkpoint_last_bytes ",
		"vp_uptime_seconds ",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("family %q missing from /metrics", fam)
		}
	}
	for _, want := range []string{
		"vp_checkpoint_total{kind=\"full\"} 1\n",
		"vp_conn_decode_errors_total 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("expected exact sample %q in /metrics", want)
		}
	}
	// The events counter must equal the driven stream.
	if !strings.Contains(body, "vp_events_total "+strconv.Itoa(len(evs))+"\n") {
		t.Errorf("vp_events_total does not report %d driven events", len(evs))
	}
}

// TestEventsEndpoint asserts checkpoint stage events land in the trace
// ring and come back over GET /events.
func TestEventsEndpoint(t *testing.T) {
	evs, _ := capturedStream(t)
	s := startObsServer(t, 2, t.TempDir())
	if _, err := DriveEvents(evs[:2000], DriveConfig{Addr: s.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteCheckpoint(s.cfg.CheckpointDir); err != nil {
		t.Fatal(err)
	}
	code, body := httpGet(t, "http://"+s.HTTPAddr().String()+"/events")
	if code != http.StatusOK {
		t.Fatalf("GET /events: status %d", code)
	}
	var out struct {
		Total  uint64           `json:"total"`
		Events []obs.StageEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("GET /events not valid JSON: %v\n%s", err, body)
	}
	kinds := make(map[string]int)
	for _, ev := range out.Events {
		kinds[ev.Kind]++
		if ev.TimeUnixNano == 0 {
			t.Errorf("event %q missing timestamp", ev.Kind)
		}
	}
	if kinds[evCheckpointCut] == 0 || kinds[evCheckpointWritten] == 0 {
		t.Errorf("expected checkpoint_cut and checkpoint_written events, got %v", kinds)
	}
	if out.Total != uint64(len(out.Events)) {
		t.Errorf("total %d != retained %d with no overflow", out.Total, len(out.Events))
	}
}

// TestHealthzDegraded drives the health state machine directly: a
// checkpoint cut pending past its deadline and a saturated mailbox must
// flip /healthz to 503/degraded with both reasons, and clearing them
// restores 200/ok.
func TestHealthzDegraded(t *testing.T) {
	s := startObsServer(t, 2, "")
	url := "http://" + s.HTTPAddr().String() + "/healthz"

	code, body := httpGet(t, url)
	if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("healthy server: status %d body %s", code, body)
	}

	// A cut that "started" past the deadline, plus sustained saturation.
	s.health.cutStart.Store(time.Now().Add(-2 * s.cfg.HealthCheckpointDeadline).UnixNano())
	s.health.sat[1].Store(int64(s.cfg.HealthSaturationIntervals))
	code, body = httpGet(t, url)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded server: status %d body %s", code, body)
	}
	var got struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "degraded" || len(got.Reasons) != 2 {
		t.Fatalf("want degraded with 2 reasons, got %+v", got)
	}
	joined := strings.Join(got.Reasons, "; ")
	if !strings.Contains(joined, "checkpoint cut") || !strings.Contains(joined, "shard 1 mailbox saturated") {
		t.Fatalf("reasons missing expected text: %v", got.Reasons)
	}

	s.health.cutStart.Store(0)
	s.health.sat[1].Store(0)
	if code, _ = httpGet(t, url); code != http.StatusOK {
		t.Fatalf("recovered server: status %d", code)
	}
}

// TestDriveLatencyRecorded asserts the driver measures per-request
// round trips: one sample per sent batch, a sane distribution, and a
// printable summary.
func TestDriveLatencyRecorded(t *testing.T) {
	evs, _ := capturedStream(t)
	s := startTestServer(t, 2, "")
	res, err := DriveEvents(evs, DriveConfig{Addr: s.Addr().String(), Clients: 2, BatchSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count == 0 {
		t.Fatal("no latency samples recorded")
	}
	wantBatches := uint64(0)
	for cl := 0; cl < 2; cl++ {
		n := 0
		for _, ev := range evs {
			if ShardOf(ev.PC, 2) == cl {
				n++
			}
		}
		wantBatches += uint64((n + 1023) / 1024)
	}
	if res.Latency.Count != wantBatches {
		t.Fatalf("latency samples %d != sent batches %d", res.Latency.Count, wantBatches)
	}
	if res.Latency.Max == 0 {
		t.Error("latency max is zero")
	}
	p50, p99 := res.Latency.Quantile(0.5), res.Latency.Quantile(0.99)
	if p50 > p99 || p99 > float64(res.Latency.Max) {
		t.Errorf("non-monotone quantiles: p50=%v p99=%v max=%d", p50, p99, res.Latency.Max)
	}
	sum := res.LatencySummary()
	for _, part := range []string{"p50=", "p90=", "p99=", "max="} {
		if !strings.Contains(sum, part) {
			t.Errorf("summary %q missing %s", sum, part)
		}
	}
}

// TestStatsIncludesProtocolAndCheckpoints asserts the enriched /stats
// carries the protocol and checkpoint counter blocks.
func TestStatsIncludesProtocolAndCheckpoints(t *testing.T) {
	evs, _ := capturedStream(t)
	s := startObsServer(t, 2, t.TempDir())
	if _, err := DriveEvents(evs[:4000], DriveConfig{Addr: s.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteCheckpoint(s.cfg.CheckpointDir); err != nil {
		t.Fatal(err)
	}
	snap := s.Stats()
	if snap.Protocol.ConnsTotal == 0 || snap.Protocol.FramesIn == 0 || snap.Protocol.BytesIn == 0 {
		t.Errorf("protocol counters not populated: %+v", snap.Protocol)
	}
	if snap.Protocol.ConnsOpen != 0 {
		t.Errorf("conns_open should be 0 after drive, got %d", snap.Protocol.ConnsOpen)
	}
	if snap.Checkpoints.Count != 1 || snap.Checkpoints.LastBytes == 0 || snap.Checkpoints.LastUnixNano == 0 {
		t.Errorf("checkpoint counters not populated: %+v", snap.Checkpoints)
	}
	// And over HTTP, as JSON.
	code, body := httpGet(t, "http://"+s.HTTPAddr().String()+"/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /stats: status %d", code)
	}
	if !strings.Contains(body, `"protocol"`) || !strings.Contains(body, `"checkpoints"`) {
		t.Error("stats JSON missing protocol/checkpoints blocks")
	}
	// The batch latency summary the daemons print at shutdown.
	if lat := s.BatchLatency(); lat.Count == 0 {
		t.Error("no shard batch latency recorded after drive")
	}
}

// TestPprofEndpoint asserts the profile index is wired onto the admin
// mux.
func TestPprofEndpoint(t *testing.T) {
	s := startObsServer(t, 1, "")
	code, body := httpGet(t, "http://"+s.HTTPAddr().String()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("GET /debug/pprof/: status %d", code)
	}
}
