package serve

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
)

// httpHandler serves the introspection endpoints:
//
//	GET  /healthz   liveness + health: {"status":"ok",...} or, when a
//	                checkpoint cut is stuck past its deadline or a shard
//	                mailbox has sat saturated for the configured number of
//	                monitor intervals, HTTP 503 with
//	                {"status":"degraded","reasons":[...]}
//	GET  /stats     full Snapshot (aggregate + per-shard accuracy, events/sec,
//	                unique PCs, table occupancy, approximate state bytes,
//	                protocol and checkpoint counters, restore provenance)
//	GET  /metrics   Prometheus text exposition of every vp_* series
//	GET  /events    the stage-event trace ring (checkpoints, restores,
//	                slow batches, predictability gaps, drain), oldest
//	                first; ?n= keeps only the most recent N, ?kind=
//	                filters by event kind, and ?since= resumes after a
//	                previously seen sequence number (the response's
//	                last_seq), so pollers tail the ring without
//	                re-reading old events
//	GET  /trace     retained request traces (tail-sampled slow/degraded
//	                requests, head-sampled ones, checkpoints), newest
//	                first, each with its recorded spans; ?min_ns= keeps
//	                only traces at least that slow, ?n= caps the count
//	GET  /trace/perfetto  the same traces as Chrome trace-event JSON —
//	                save the body to a file and open it in
//	                https://ui.perfetto.dev or chrome://tracing
//	GET  /predictability  merged predictability report: top-N (?n=,
//	                default 10) hardest and easiest PCs with sequence
//	                class, entropy ceiling and realized accuracy, plus
//	                per-class event tallies and per-predictor ceiling gaps
//	POST /snapshot  write a checkpoint now (requires a configured
//	                checkpoint directory); answers with CheckpointInfo.
//	                ?full=1 forces a full cut even in delta mode,
//	                rooting a fresh chain
//	/debug/pprof/*  the standard runtime profiles
func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"status":     "ok",
			"shards":     len(s.shards),
			"predictors": s.predNames,
		}
		if reasons := s.healthReasons(time.Now()); len(reasons) > 0 {
			body["status"] = "degraded"
			body["reasons"] = reasons
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			writeJSONBody(w, body)
			return
		}
		writeJSON(w, body)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		var evs []obs.StageEvent
		if sinceStr := r.URL.Query().Get("since"); sinceStr != "" {
			since, err := strconv.ParseUint(sinceStr, 10, 64)
			if err != nil {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				writeJSONBody(w, map[string]any{"error": "since must be a non-negative integer (a previously returned last_seq)"})
				return
			}
			evs = s.ring.EventsSince(since)
		} else {
			evs = s.ring.Events()
		}
		if kind := r.URL.Query().Get("kind"); kind != "" {
			kept := evs[:0]
			for _, ev := range evs {
				if ev.Kind == kind {
					kept = append(kept, ev)
				}
			}
			evs = kept
		}
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			n, err := strconv.Atoi(nStr)
			if err != nil || n < 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				writeJSONBody(w, map[string]any{"error": "n must be a non-negative integer"})
				return
			}
			if n < len(evs) {
				evs = evs[len(evs)-n:] // most recent N, still oldest first
			}
		}
		// last_seq is the newest sequence number ever assigned — the
		// cursor a poller passes back as ?since= on its next poll.
		writeJSON(w, map[string]any{
			"total":    s.ring.Total(),
			"last_seq": s.ring.Total(),
			"events":   evs,
		})
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		minNs, n, ok := traceFilters(w, r)
		if !ok {
			return
		}
		writeJSON(w, map[string]any{
			"slow_ns":  s.tracer.SlowNs(),
			"promoted": s.tracer.Promoted(),
			"stages":   s.tracer.StageSummary(),
			"traces":   s.tracer.Traces(minNs, n),
		})
	})
	mux.HandleFunc("GET /trace/perfetto", func(w http.ResponseWriter, r *http.Request) {
		minNs, n, ok := traceFilters(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="vpserve-trace.json"`)
		otrace.WritePerfetto(w, s.tracer.Traces(minNs, n))
	})
	mux.HandleFunc("GET /predictability", func(w http.ResponseWriter, r *http.Request) {
		topN := 10
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			n, err := strconv.Atoi(nStr)
			if err != nil || n <= 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				writeJSONBody(w, map[string]any{"error": "n must be a positive integer"})
				return
			}
			topN = n
		}
		writeJSON(w, map[string]any{
			"enabled": !s.cfg.PredstatDisabled,
			"report":  s.PredictabilityReport(topN),
		})
	})
	mux.HandleFunc("POST /snapshot", func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.CheckpointDir == "" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			writeJSONBody(w, map[string]any{"error": "no checkpoint directory configured (start vpserve with -checkpoint-dir)"})
			return
		}
		var info CheckpointInfo
		var err error
		if r.URL.Query().Get("full") == "1" {
			info, err = s.WriteFullCheckpoint(s.cfg.CheckpointDir)
		} else {
			info, err = s.WriteCheckpoint(s.cfg.CheckpointDir)
		}
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			writeJSONBody(w, map[string]any{"error": err.Error()})
			return
		}
		writeJSON(w, info)
	})
	// The default-mux pprof handlers, re-homed onto this private mux so a
	// vpserve process never exposes profiles anywhere but its admin port.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// traceFilters parses the shared /trace query parameters (?min_ns=,
// ?n=), answering 400 itself when they are malformed.
func traceFilters(w http.ResponseWriter, r *http.Request) (minNs int64, n int, ok bool) {
	q := r.URL.Query()
	if v := q.Get("min_ns"); v != "" {
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil || parsed < 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			writeJSONBody(w, map[string]any{"error": "min_ns must be a non-negative integer"})
			return 0, 0, false
		}
		minNs = parsed
	}
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			writeJSONBody(w, map[string]any{"error": "n must be a non-negative integer"})
			return 0, 0, false
		}
		n = parsed
	}
	return minNs, n, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

// writeJSONBody encodes v without touching headers, for handlers that
// have already written an error status.
func writeJSONBody(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
