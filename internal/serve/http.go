package serve

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// httpHandler serves the introspection endpoints:
//
//	GET  /healthz   liveness + health: {"status":"ok",...} or, when a
//	                checkpoint cut is stuck past its deadline or a shard
//	                mailbox has sat saturated for the configured number of
//	                monitor intervals, HTTP 503 with
//	                {"status":"degraded","reasons":[...]}
//	GET  /stats     full Snapshot (aggregate + per-shard accuracy, events/sec,
//	                unique PCs, table occupancy, approximate state bytes,
//	                protocol and checkpoint counters, restore provenance)
//	GET  /metrics   Prometheus text exposition of every vp_* series
//	GET  /events    the stage-event trace ring (checkpoints, restores,
//	                slow batches, predictability gaps, drain), oldest
//	                first; ?n= keeps only the most recent N and ?kind=
//	                filters by event kind
//	GET  /predictability  merged predictability report: top-N (?n=,
//	                default 10) hardest and easiest PCs with sequence
//	                class, entropy ceiling and realized accuracy, plus
//	                per-class event tallies and per-predictor ceiling gaps
//	POST /snapshot  write a checkpoint now (requires a configured
//	                checkpoint directory); answers with CheckpointInfo
//	/debug/pprof/*  the standard runtime profiles
func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"status":     "ok",
			"shards":     len(s.shards),
			"predictors": s.predNames,
		}
		if reasons := s.healthReasons(time.Now()); len(reasons) > 0 {
			body["status"] = "degraded"
			body["reasons"] = reasons
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			writeJSONBody(w, body)
			return
		}
		writeJSON(w, body)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		evs := s.ring.Events()
		if kind := r.URL.Query().Get("kind"); kind != "" {
			kept := evs[:0]
			for _, ev := range evs {
				if ev.Kind == kind {
					kept = append(kept, ev)
				}
			}
			evs = kept
		}
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			n, err := strconv.Atoi(nStr)
			if err != nil || n < 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				writeJSONBody(w, map[string]any{"error": "n must be a non-negative integer"})
				return
			}
			if n < len(evs) {
				evs = evs[len(evs)-n:] // most recent N, still oldest first
			}
		}
		writeJSON(w, map[string]any{
			"total":  s.ring.Total(),
			"events": evs,
		})
	})
	mux.HandleFunc("GET /predictability", func(w http.ResponseWriter, r *http.Request) {
		topN := 10
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			n, err := strconv.Atoi(nStr)
			if err != nil || n <= 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				writeJSONBody(w, map[string]any{"error": "n must be a positive integer"})
				return
			}
			topN = n
		}
		writeJSON(w, map[string]any{
			"enabled": !s.cfg.PredstatDisabled,
			"report":  s.PredictabilityReport(topN),
		})
	})
	mux.HandleFunc("POST /snapshot", func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.CheckpointDir == "" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			writeJSONBody(w, map[string]any{"error": "no checkpoint directory configured (start vpserve with -checkpoint-dir)"})
			return
		}
		info, err := s.WriteCheckpoint(s.cfg.CheckpointDir)
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			writeJSONBody(w, map[string]any{"error": err.Error()})
			return
		}
		writeJSON(w, info)
	})
	// The default-mux pprof handlers, re-homed onto this private mux so a
	// vpserve process never exposes profiles anywhere but its admin port.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

// writeJSONBody encodes v without touching headers, for handlers that
// have already written an error status.
func writeJSONBody(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
