package serve

import (
	"encoding/json"
	"net/http"
)

// httpHandler serves the JSON introspection endpoints:
//
//	GET  /healthz   liveness: {"status":"ok","shards":N,"predictors":[...]}
//	GET  /stats     full Snapshot (aggregate + per-shard accuracy, events/sec,
//	                unique PCs, table occupancy, approximate state bytes,
//	                restore provenance)
//	POST /snapshot  write a checkpoint now (requires a configured
//	                checkpoint directory); answers with CheckpointInfo
func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"status":     "ok",
			"shards":     len(s.shards),
			"predictors": s.predNames,
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("POST /snapshot", func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.CheckpointDir == "" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			writeJSONBody(w, map[string]any{"error": "no checkpoint directory configured (start vpserve with -checkpoint-dir)"})
			return
		}
		info, err := s.WriteCheckpoint(s.cfg.CheckpointDir)
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			writeJSONBody(w, map[string]any{"error": err.Error()})
			return
		}
		writeJSON(w, info)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

// writeJSONBody encodes v without touching headers, for handlers that
// have already written an error status.
func writeJSONBody(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
