package serve

import (
	"encoding/json"
	"net/http"
)

// httpHandler serves the JSON introspection endpoints:
//
//	GET /healthz  liveness: {"status":"ok","shards":N,"predictors":[...]}
//	GET /stats    full Snapshot (aggregate + per-shard accuracy, events/sec,
//	              unique PCs, predictor table occupancy)
func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"status":     "ok",
			"shards":     len(s.shards),
			"predictors": s.predNames,
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
