// Package serve is the online value-prediction service: the paper's
// predictors behind a long-running, sharded TCP server that accepts
// (pc, value) event streams from many concurrent clients and answers with
// live per-predictor accuracy.
//
// Predictor state is partitioned into N shards by hash(pc). Each shard is
// owned by a single goroutine with a bounded FIFO mailbox consuming request
// sub-batches — shard state is touched by exactly one goroutine and the
// dispatch path's only lock is the shared (read) side of the checkpoint
// cut lock, mirroring internal/engine's batched delivery. Every event
// makes one combined predict+update round
// trip through the configured predictor bank (the paper's immediate-update
// protocol), and the per-batch correctness tallies stream back to the
// client in request order.
//
// Because every registry predictor marked PCLocal keeps strictly per-PC
// tables, sharding by PC preserves each static instruction's value
// subsequence exactly, so the service's accuracy is bit-identical to an
// offline replay of the same stream at any shard count — the property the
// end-to-end tests pin down. This operationalizes the framing of Macleod
// et al.'s "Universal Relationships in Measures of Unpredictability": run
// a bank of predictor classes side by side over a live stream and read
// predictability off the best performer. Alongside the binary protocol the
// server exposes HTTP /stats (per-shard and aggregate accuracy,
// events/sec, unique PCs, table occupancy — the per-stream history-depth
// statistics "Predictive Information" motivates) and /healthz.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/predstat"
	"repro/internal/snapshot"
)

// Event is one (pc, value) observation, the unit of the service protocol.
// Instruction categories stay client-side: the server predicts and tallies
// on the bare stream, like the substrate-free core predictors.
type Event struct {
	PC    uint64
	Value uint64
}

// DefaultMailboxDepth bounds each shard's mailbox: deep enough to keep
// shards busy under bursty arrivals, shallow enough that a slow shard
// exerts backpressure on connections instead of buffering unboundedly.
const DefaultMailboxDepth = 128

// ShardOf maps a PC to its owning shard. Both the server and the load
// generator use this function, so a driver partitioning a stream across C
// client connections by ShardOf(pc, C) keeps each PC's subsequence on one
// ordered connection — the condition for accuracy parity with offline
// replay at any concurrency.
func ShardOf(pc uint64, shards int) int {
	// splitmix64 finalizer: cheap and well-mixed, so consecutive PCs
	// (tight loops) spread across shards.
	x := pc
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(shards))
}

// Config parameterizes a Server.
type Config struct {
	// Shards is the number of state partitions (0 = GOMAXPROCS).
	Shards int
	// Predictors is the bank every shard runs (empty = the registry
	// entries for the paper's standard set: l, s2, fcm1, fcm2, fcm3).
	Predictors []core.NamedFactory
	// MailboxDepth bounds each shard's mailbox (0 = DefaultMailboxDepth).
	MailboxDepth int
	// CheckpointDir, when set, enables the HTTP POST /snapshot trigger
	// and is the default directory for WriteCheckpoint / Shutdown
	// checkpoints.
	CheckpointDir string
	// DeltaCheckpoints switches checkpoints to the v2 incremental format:
	// the banks track per-PC dirty bits, each cut writes only the state
	// chunks that changed since the chain tip (everything else dedups to
	// content-hash references), and restore resolves full + deltas back
	// into one snapshot.
	DeltaCheckpoints bool
	// FullEvery bounds a delta chain: after this many delta checkpoints
	// the next cut is forced full, and older chain files are swept
	// (0 = 8). Only meaningful with DeltaCheckpoints.
	FullEvery int
	// HealthCheckpointDeadline is how long a checkpoint cut may stay in
	// flight before /healthz reports degraded (0 = 30s).
	HealthCheckpointDeadline time.Duration
	// HealthSaturationIntervals is how many consecutive monitor ticks a
	// shard mailbox may sit at capacity before /healthz reports degraded
	// (0 = 3).
	HealthSaturationIntervals int
	// HealthTick is the health monitor's sampling period (0 = 1s).
	HealthTick time.Duration
	// EventRingSize caps the stage-event trace ring served by
	// GET /events (0 = 256).
	EventRingSize int
	// Logger, when non-nil, receives the server's structured log lines
	// (checkpoints, restores, degraded transitions).
	Logger *obs.Logger
	// Predstat configures the per-shard predictability trackers (entropy
	// ceilings, sequence classes, ceiling-gap attribution); the zero
	// value means defaults. Set PredstatDisabled to turn the subsystem
	// off entirely (no observer attached to the banks).
	Predstat         predstat.Config
	PredstatDisabled bool
	// TraceSpanRing caps each trace lane's provisional span ring
	// (0 = 4096 spans per lane; one lane per shard plus a control lane).
	TraceSpanRing int
	// TraceRetain caps the retained-trace flight recorder served by
	// GET /trace (0 = 64 traces).
	TraceRetain int
	// TraceSlowNs is the floor of the tail-sampling slow threshold: a
	// traced request whose total latency reaches the threshold is
	// retained. The monitor adapts the threshold upward to the live
	// p99 of vp_request_ns, never below this floor (0 = 10ms).
	TraceSlowNs int64
	// Arena selects the predictor slab backing: "heap" (or empty, the
	// default) for ordinary GC-managed slabs, "mmap" to back large slabs
	// with anonymous mappings the collector never scans. Process-global:
	// it applies to every predictor constructed after New.
	Arena string
}

// Health configuration defaults.
const (
	defaultHealthCheckpointDeadline  = 30 * time.Second
	defaultHealthSaturationIntervals = 3
	defaultHealthTick                = time.Second
)

// defaultTraceSlowNs is the tail-sampling threshold floor: generous next
// to the µs-scale steady state, so retained traces mean something even
// before the adaptive p99 has data.
const defaultTraceSlowNs = int64(10 * time.Millisecond)

// Server is a running value-prediction service.
type Server struct {
	cfg       Config
	predNames []string
	shards    []*shard
	start     time.Time
	// eventsServed counts events dispatched over the server's lifetime;
	// its connect-time value rides in the hello so clients can tell a
	// fresh server from a warm one.
	eventsServed atomic.Uint64

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	started bool
	closed  bool
	httpErr error // first fatal error from the HTTP stats listener
	// statsMu orders Stats's mailbox sends against Close's mailbox
	// close, without making stats polls contend with connection
	// registration on mu.
	statsMu sync.Mutex
	// cutMu makes checkpoints request-atomic: dispatch holds it shared
	// while mailing one request's sub-batches, a checkpoint holds it
	// exclusively while mailing its capture markers, so the cut can never
	// land between two shards of the same request.
	cutMu sync.RWMutex
	// ckptMu serializes whole checkpoints (plan, cut, assemble, chain
	// update) against each other: the periodic ticker, POST /snapshot and
	// shutdown may race, and the delta chain state must advance one
	// checkpoint at a time.
	ckptMu sync.Mutex
	// chain is the live delta-chain state (delta mode only); mutated only
	// under ckptMu.
	chain chainState

	// restoredID / restoredAt identify the snapshot this server was
	// warm-started from (empty when cold-started); set before Start.
	restoredID string
	restoredAt time.Time

	// metrics, ring and health are the observability plane: every series
	// registered at construction, written lock-free from the serving
	// layers, scraped by GET /metrics, /events and /healthz.
	metrics *serverMetrics
	ring    *obs.Ring
	health  *healthState
	log     *obs.Logger
	// tracer records request spans: lane i belongs to shard i's goroutine,
	// lane len(shards) is the shared control lane (conn writers, dispatch,
	// checkpoints). GET /trace serves its flight recorder.
	tracer *otrace.Recorder

	monitorStop chan struct{}
	monitorDone chan struct{}

	connWG   sync.WaitGroup
	acceptWG sync.WaitGroup
}

// New validates the configuration and builds the shard set (not yet
// listening; call Start).
func New(cfg Config) (*Server, error) {
	if err := core.SetSlabArena(cfg.Arena); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = DefaultMailboxDepth
	}
	if len(cfg.Predictors) == 0 {
		for _, f := range core.StandardFactories() {
			e, ok := core.FactoryByName(f.Name)
			if !ok {
				return nil, fmt.Errorf("serve: standard predictor %q missing from registry", f.Name)
			}
			cfg.Predictors = append(cfg.Predictors, e)
		}
	}
	names := make([]string, len(cfg.Predictors))
	for i, f := range cfg.Predictors {
		if cfg.Shards > 1 && !f.PCLocal {
			return nil, fmt.Errorf(
				"serve: predictor %q keeps cross-PC state and cannot be sharded (use -shards 1)", f.Name)
		}
		names[i] = f.Name
	}
	if cfg.CheckpointDir != "" {
		// The directory belongs to this server now; temp files a crashed
		// predecessor left mid-checkpoint are dead weight.
		if _, err := snapshot.SweepTemp(cfg.CheckpointDir); err != nil {
			return nil, err
		}
	}
	if cfg.HealthCheckpointDeadline <= 0 {
		cfg.HealthCheckpointDeadline = defaultHealthCheckpointDeadline
	}
	if cfg.HealthSaturationIntervals <= 0 {
		cfg.HealthSaturationIntervals = defaultHealthSaturationIntervals
	}
	if cfg.HealthTick <= 0 {
		cfg.HealthTick = defaultHealthTick
	}
	if cfg.TraceSlowNs <= 0 {
		cfg.TraceSlowNs = defaultTraceSlowNs
	}
	if cfg.FullEvery <= 0 {
		cfg.FullEvery = defaultFullEvery
	}
	s := &Server{
		cfg:       cfg,
		predNames: names,
		shards:    make([]*shard, cfg.Shards),
		conns:     make(map[net.Conn]struct{}),
		start:     time.Now(),
		ring:      obs.NewRing(cfg.EventRingSize),
		health:    newHealthState(cfg.Shards),
		log:       cfg.Logger,
	}
	s.metrics = newServerMetrics(s.start, cfg.Shards, names)
	s.tracer = otrace.NewRecorder(otrace.Config{
		Lanes:    cfg.Shards + 1,
		SpanRing: cfg.TraceSpanRing,
		Retain:   cfg.TraceRetain,
		SlowNs:   cfg.TraceSlowNs,
		Registry: s.metrics.reg,
	})
	for i := range s.shards {
		s.shards[i] = newShard(i, cfg.Predictors, cfg.MailboxDepth)
		if cfg.DeltaCheckpoints {
			s.shards[i].dirtyTrack = true
			s.shards[i].bank.SetDirtyTracking(true)
		}
		s.shards[i].met = s.metrics.shards[i]
		s.shards[i].ring = s.ring
		s.shards[i].tracer = s.tracer
		if !cfg.PredstatDisabled {
			pcfg := cfg.Predstat
			pcfg.PredNames = names
			pcfg.Ring = s.ring
			pcfg.Shard = i
			s.shards[i].pstat = predstat.NewTracker(pcfg)
			s.shards[i].bank.SetObserver(s.shards[i].pstat)
		}
	}
	if !cfg.PredstatDisabled {
		// Predictability families are rebuilt from the live trackers on
		// each scrape, so their cost lands on /metrics, not the event path.
		s.metrics.reg.OnScrape(s.fillPredstatMetrics)
	}
	return s, nil
}

// fillPredstatMetrics refreshes the scrape-derived predictability
// families from a fresh cross-shard report.
func (s *Server) fillPredstatMetrics() {
	rep := s.PredictabilityReport(1)
	m := s.metrics
	m.pcEntropy.Reset()
	for _, bits := range rep.EntropyBits {
		mb := int64(bits * 1000) // millibits: keeps sub-bit resolution in log2 buckets
		m.pcEntropy.ObserveInt(mb)
	}
	for _, cls := range predstat.ClassLabels {
		m.seqclassEvents[cls].Set(int64(rep.ClassEvents[cls]))
	}
	for i, g := range rep.GapByPred {
		if i < len(m.predCeilingGap) {
			m.predCeilingGap[i].Set(g.Gap)
		}
	}
}

// PredictabilityReport gathers every shard's predictability tracker
// through its mailbox (never racing shard state) and merges them, keeping
// the topN hardest/easiest PCs. Before Start and once Close has begun it
// returns an empty report; likewise when the subsystem is disabled.
func (s *Server) PredictabilityReport(topN int) *predstat.Report {
	rep := &predstat.Report{}
	if s.cfg.PredstatDisabled {
		return rep
	}
	replies := make([]chan *predstat.Report, len(s.shards))
	s.statsMu.Lock()
	s.mu.Lock()
	live := s.started && !s.closed
	s.mu.Unlock()
	if !live {
		s.statsMu.Unlock()
		return rep
	}
	for i, sh := range s.shards {
		replies[i] = make(chan *predstat.Report, 1)
		sh.mailbox <- shardMsg{pstat: replies[i], pstatN: topN}
	}
	s.statsMu.Unlock()
	for i := range s.shards {
		rep.Merge(<-replies[i], topN)
	}
	return rep
}

// MetricsRegistry exposes the server's metric registry, the source of
// GET /metrics; callers may register additional series on it before
// Start.
func (s *Server) MetricsRegistry() *obs.Registry { return s.metrics.reg }

// EventRing exposes the server's stage-event trace ring (GET /events).
func (s *Server) EventRing() *obs.Ring { return s.ring }

// BatchLatency merges every shard's predict+update batch latency
// histogram — p50/p90/p99/max of the serving hot path, the end-of-run
// summary vpserve prints at shutdown.
func (s *Server) BatchLatency() obs.HistSnap { return s.metrics.batchLatency() }

// Predictors returns the configured predictor names in bank order.
func (s *Server) Predictors() []string { return append([]string(nil), s.predNames...) }

// Tracer exposes the server's span recorder (GET /trace's source).
func (s *Server) Tracer() *otrace.Recorder { return s.tracer }

// controlLane is the tracer lane shared by non-shard writers: conn
// readers/writers (dispatch enqueue + whole-request spans) and the
// checkpoint machinery. Shard i writes lane i.
func (s *Server) controlLane() int { return len(s.shards) }

// Start launches the shard goroutines and begins accepting on addr
// (binary protocol). When httpAddr is non-empty, /stats and /healthz are
// served there. Use "127.0.0.1:0" to bind an ephemeral port and read it
// back from Addr / HTTPAddr.
func (s *Server) Start(addr, httpAddr string) error {
	// Bind every listener before spawning anything, so a failed Start
	// leaves no goroutines behind and no half-initialized Server.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	var hl net.Listener
	if httpAddr != "" {
		hl, err = net.Listen("tcp", httpAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("serve: http: %w", err)
		}
	}
	s.mu.Lock()
	if s.closed || s.started {
		s.mu.Unlock()
		ln.Close()
		if hl != nil {
			hl.Close()
		}
		return errors.New("serve: server already started or closed")
	}
	s.started = true
	s.ln = ln
	s.mu.Unlock()
	for _, sh := range s.shards {
		go sh.run()
	}
	s.monitorStop = make(chan struct{})
	s.monitorDone = make(chan struct{})
	go s.monitor()
	s.acceptWG.Add(1)
	go s.acceptLoop()
	if hl != nil {
		s.httpLn = hl
		s.httpSrv = &http.Server{Handler: s.httpHandler()}
		go func() {
			if err := s.httpSrv.Serve(hl); err != nil && !errors.Is(err, http.ErrServerClosed) {
				s.mu.Lock()
				if s.httpErr == nil {
					s.httpErr = err
				}
				s.mu.Unlock()
			}
		}()
	}
	return nil
}

// HTTPErr reports the first fatal error of the HTTP stats listener, nil
// while it is healthy (or disabled). A daemon can use it at exit to turn
// a silently dead introspection endpoint into a non-zero status.
func (s *Server) HTTPErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.httpErr
}

// Addr returns the binary-protocol listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// HTTPAddr returns the HTTP listen address, or nil when HTTP is disabled.
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		s.metrics.connsTotal.Inc()
		s.metrics.connsOpen.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handleConn(conn)
			s.metrics.connsOpen.Add(-1)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, tears down open connections, drains the shards
// and shuts the HTTP endpoint. Safe to call once, including on a server
// that was never started (or whose Start failed).
func (s *Server) Close() error {
	_, err := s.shutdown("")
	return err
}

// Shutdown is the graceful flavor of Close: stop accepting, tear down
// connections, wait for every in-flight request to finish, then — when
// dir is non-empty — write a final checkpoint of the fully drained state
// before stopping the shard goroutines. The returned CheckpointInfo is
// zero when no checkpoint was requested or the server never started.
func (s *Server) Shutdown(dir string) (CheckpointInfo, error) {
	return s.shutdown(dir)
}

func (s *Server) shutdown(ckptDir string) (CheckpointInfo, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return CheckpointInfo{}, errors.New("serve: already closed")
	}
	s.closed = true
	started := s.started
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()

	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.acceptWG.Wait()
	s.connWG.Wait()
	if s.monitorStop != nil {
		close(s.monitorStop)
		<-s.monitorDone
	}
	s.ring.Add(obs.StageEvent{Kind: evDrain, Shard: -1, N: s.eventsServed.Load()})
	// Drain in-flight HTTP handlers (which may be mid-Stats) before the
	// mailboxes close underneath them.
	if s.httpSrv != nil {
		s.httpSrv.Shutdown(context.Background())
	}
	// With every connection handler done, all dispatched sub-batches are
	// already answered, so the mailboxes are quiet: the final checkpoint
	// below observes the fully drained state.
	var info CheckpointInfo
	if ckptDir != "" && started {
		var ckErr error
		info, ckErr = s.checkpointShards(ckptDir)
		if ckErr != nil {
			err = ckErr
		}
	}
	s.statsMu.Lock()
	for _, sh := range s.shards {
		close(sh.mailbox)
	}
	s.statsMu.Unlock()
	if started {
		for _, sh := range s.shards {
			<-sh.stopped
		}
	}
	return info, err
}

// monitor samples each shard's mailbox between Start and shutdown: it
// maintains the depth gauges and high-water marks and counts consecutive
// ticks of saturation for the /healthz degraded signal. Reading len/cap
// of a shard's mailbox is safe from here — channel length is always
// readable, and the mailboxes outlive the monitor (shutdown stops it
// before closing them).
func (s *Server) monitor() {
	defer close(s.monitorDone)
	t := time.NewTicker(s.cfg.HealthTick)
	defer t.Stop()
	for {
		select {
		case <-s.monitorStop:
			return
		case <-t.C:
			for i, sh := range s.shards {
				d := len(sh.mailbox)
				m := s.metrics.shards[i]
				m.mailboxDepth.Set(int64(d))
				m.mailboxHW.SetMax(int64(d))
				if d >= cap(sh.mailbox) {
					if n := s.health.sat[i].Add(1); n == int64(s.cfg.HealthSaturationIntervals) {
						s.log.Warn("shard mailbox saturated", "shard", i, "intervals", n)
					}
				} else {
					s.health.sat[i].Store(0)
				}
			}
			// Adapt the tail-sampling slow threshold to the live request
			// latency: a trace is "slow" when it lands past today's p99,
			// never below the configured floor.
			if snap := s.metrics.requestNs.Snapshot(); snap.Count > 0 {
				ns := int64(snap.Quantile(0.99))
				if ns < s.cfg.TraceSlowNs {
					ns = s.cfg.TraceSlowNs
				}
				s.tracer.SetSlowNs(ns)
			}
		}
	}
}

// healthReasons returns why the server is degraded, empty when healthy.
func (s *Server) healthReasons(now time.Time) []string {
	var reasons []string
	if cs := s.health.cutStart.Load(); cs != 0 {
		if age := now.Sub(time.Unix(0, cs)); age > s.cfg.HealthCheckpointDeadline {
			reasons = append(reasons, fmt.Sprintf(
				"checkpoint cut in flight for %s (deadline %s)", age.Round(time.Millisecond), s.cfg.HealthCheckpointDeadline))
		}
	}
	for i := range s.health.sat {
		if n := s.health.sat[i].Load(); n >= int64(s.cfg.HealthSaturationIntervals) {
			reasons = append(reasons, fmt.Sprintf(
				"shard %d mailbox saturated for %d intervals", i, n))
		}
	}
	return reasons
}

// Stats snapshots every shard through its mailbox (so snapshots never race
// shard state) and aggregates. Before Start and once Close has begun it
// returns an empty snapshot rather than touching inert or draining shards.
func (s *Server) Stats() Snapshot {
	snap := Snapshot{
		Shards:             len(s.shards),
		UptimeSec:          time.Since(s.start).Seconds(),
		PerShard:           make([]ShardStats, len(s.shards)),
		Predictors:         make([]PredStat, len(s.predNames)),
		StartedAt:          s.start.UTC().Format(time.RFC3339Nano),
		RestoredSnapshotID: s.restoredID,
	}
	if !s.restoredAt.IsZero() {
		snap.RestoredAt = s.restoredAt.UTC().Format(time.RFC3339Nano)
	}
	m := s.metrics
	snap.Protocol = ProtoStats{
		ConnsOpen:         m.connsOpen.Load(),
		ConnsTotal:        m.connsTotal.Load(),
		FramesIn:          m.framesIn.Load(),
		FramesOut:         m.framesOut.Load(),
		BytesIn:           m.bytesIn.Load(),
		BytesOut:          m.bytesOut.Load(),
		DecodeErrors:      m.decodeErrors.Load(),
		PipelineHighWater: m.pipelineHW.Load(),
	}
	fulls, deltas := m.ckptTotal["full"].Load(), m.ckptTotal["delta"].Load()
	snap.Checkpoints = CkptStats{
		Count:         fulls + deltas,
		Errors:        m.ckptErrors.Load(),
		LastBytes:     m.ckptLastBytes.Load(),
		LastUnixNano:  m.ckptLastUnix.Load(),
		Full:          fulls,
		Deltas:        deltas,
		ChainDepth:    m.ckptChainDepth.Load(),
		ChunksWritten: m.ckptChunksWritten.Load(),
		ChunksDeduped: m.ckptChunksDeduped.Load(),
		DedupeRatio:   m.ckptDedupRatio.Load(),
	}
	replies := make([]chan ShardStats, len(s.shards))
	s.statsMu.Lock()
	s.mu.Lock()
	live := s.started && !s.closed
	s.mu.Unlock()
	if !live {
		s.statsMu.Unlock()
		return snap
	}
	for i, sh := range s.shards {
		replies[i] = make(chan ShardStats, 1)
		sh.mailbox <- shardMsg{snap: replies[i]}
	}
	s.statsMu.Unlock()
	for i := range s.shards {
		snap.PerShard[i] = <-replies[i]
	}
	for i, name := range s.predNames {
		snap.Predictors[i].Name = name
	}
	for _, st := range snap.PerShard {
		snap.Events += st.Events
		snap.UniquePCs += st.UniquePCs // shards own disjoint PCs, so the sum is exact
		snap.ApproxStateBytes += st.ApproxStateBytes
		for i, ps := range st.Predictors {
			snap.Predictors[i].Correct += ps.Correct
			snap.Predictors[i].Total += ps.Total
			snap.Predictors[i].StaticPCs += ps.StaticPCs
			snap.Predictors[i].TableEntries += ps.TableEntries
			snap.Predictors[i].ApproxStateBytes += ps.ApproxStateBytes
		}
	}
	for i := range snap.Predictors {
		if t := snap.Predictors[i].Total; t > 0 {
			snap.Predictors[i].AccuracyPct = 100 * float64(snap.Predictors[i].Correct) / float64(t)
		}
	}
	if snap.UptimeSec > 0 {
		snap.EventsPerSec = float64(snap.Events) / snap.UptimeSec
	}
	return snap
}
