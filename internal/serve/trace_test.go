package serve

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	otrace "repro/internal/obs/trace"
	"repro/internal/snapshot"
)

// TestTracedUntracedParity pins the tentpole's non-negotiable: tracing
// observes the request path without perturbing it. Driving the same
// stream traced (every request carrying a minted context) and untraced
// must leave byte-identical predictor state and identical tallies.
func TestTracedUntracedParity(t *testing.T) {
	evs, _ := capturedStream(t)
	dir := t.TempDir()

	run := func(traceSample int) (*DriveResult, *snapshot.Snapshot) {
		s := startTestServer(t, 3, "")
		res, err := DriveEvents(evs, DriveConfig{
			Addr:        s.Addr().String(),
			Clients:     2,
			BatchSize:   512,
			TraceSample: traceSample,
		})
		if err != nil {
			t.Fatal(err)
		}
		ck, err := s.WriteCheckpoint(dir)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := snapshot.ReadFile(ck.Path)
		if err != nil {
			t.Fatal(err)
		}
		return res, snap
	}

	plain, plainSnap := run(0)
	traced, tracedSnap := run(1) // every request traced and head-sampled

	if plain.Events != traced.Events {
		t.Fatalf("events: untraced %d, traced %d", plain.Events, traced.Events)
	}
	if !reflect.DeepEqual(plain.Correct, traced.Correct) {
		t.Errorf("tallies: untraced %v, traced %v", plain.Correct, traced.Correct)
	}
	if !reflect.DeepEqual(plainSnap.Shards, tracedSnap.Shards) {
		t.Error("predictor state differs between traced and untraced runs")
	}
	if len(traced.SlowTraces) == 0 {
		t.Error("traced run reported no slow traces")
	}
}

// TestTraceRetentionEndToEnd drives traced requests into a server whose
// slow threshold floor is 1ns — every traced request finishes "slow" —
// and checks the flight recorder serves them over GET /trace and
// GET /trace/perfetto with the conn/enqueue/shard/bank stages present.
func TestTraceRetentionEndToEnd(t *testing.T) {
	evs, _ := capturedStream(t)
	s, err := New(Config{Shards: 2, TraceSlowNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := DriveEvents(evs[:4096], DriveConfig{
		Addr: s.Addr().String(), Clients: 1, BatchSize: 512, TraceSample: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if s.Tracer().Promoted() == 0 {
		t.Fatal("no traces promoted with a 1ns slow threshold")
	}

	h := s.httpHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /trace = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		SlowNs   int64             `json:"slow_ns"`
		Promoted uint64            `json:"promoted"`
		Traces   []otrace.Retained `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("GET /trace is not JSON: %v", err)
	}
	if body.Promoted == 0 || len(body.Traces) == 0 {
		t.Fatalf("GET /trace = %+v, want retained traces", body)
	}
	stages := map[string]bool{}
	for _, tr := range body.Traces {
		if tr.Reason != "slow" && tr.Reason != "head" {
			t.Errorf("trace %s retained for %q, want slow or head", tr.TraceID, tr.Reason)
		}
		for _, sp := range tr.Spans {
			stages[sp.StageName] = true
		}
	}
	for _, want := range []string{"conn", "enqueue", "shard", "bank"} {
		if !stages[want] {
			t.Errorf("no retained trace has a %q span (got %v)", want, stages)
		}
	}

	// ?min_ns= filters and ?n= caps.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?n=1&min_ns=0", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || len(body.Traces) > 1 {
		t.Fatalf("GET /trace?n=1: err=%v traces=%d", err, len(body.Traces))
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?min_ns=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("malformed min_ns = %d, want 400", rec.Code)
	}

	// Perfetto export: valid chrome trace-event JSON with span slices.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace/perfetto", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /trace/perfetto = %d", rec.Code)
	}
	var pf struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &pf); err != nil {
		t.Fatalf("perfetto export is not JSON: %v", err)
	}
	slices := 0
	for _, ev := range pf.TraceEvents {
		if ev.Ph == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Fatal("perfetto export has no span slices")
	}
}

// TestTraceHotPathZeroAlloc gates the acceptance criterion: a traced
// request that is NOT promoted (fast, healthy, no head-sample flag) must
// cost zero allocations on the client goroutine in steady state, same
// bar as the untraced path. Server-side span recording is gated
// separately (obs/trace TestSpanRecordZeroAlloc covers Record); this
// test additionally proves no promotion — the only allocating trace
// path — happened while requests carried contexts.
func TestTraceHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	// A huge slow floor means no traced request ever qualifies as slow.
	s, err := New(Config{Shards: 2, TraceSlowNs: int64(1) << 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// headEvery math.MaxInt-ish so no request is head-sampled.
	minter := otrace.NewMinter(1, 1<<40)
	minter.Next() // consume the head-sampled first context

	const batch = 512
	evs := make([]Event, batch)
	fill := func(base int) {
		for j := range evs {
			evs[j] = Event{PC: uint64((base + j) % 64 * 4), Value: uint64((base + j) % 7)}
		}
	}
	var res BatchResult
	roundTrip := func(base int) {
		fill(base)
		if err := c.SendTraced(evs, minter.Next()); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := c.RecvInto(&res); err != nil {
			t.Fatal(err)
		}
		if res.Events != batch {
			t.Fatalf("server tallied %d events, want %d", res.Events, batch)
		}
	}
	for i := 0; i < 8; i++ {
		roundTrip(i * batch)
	}
	i := 8
	allocs := testing.AllocsPerRun(50, func() {
		roundTrip(i * batch)
		i++
	})
	if allocs != 0 {
		t.Fatalf("traced round trip allocates %.1f allocs in steady state", allocs)
	}
	if n := s.Tracer().Promoted(); n != 0 {
		t.Fatalf("%d traces promoted; the hot path should never promote", n)
	}
}
