package serve

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/predstat"
	"repro/internal/snapshot"
)

// pending is one in-flight request: the conn handler takes it from the
// pool, shards add their partial tallies, and the last shard to finish
// signals done so the response writer can emit the result in request
// order (and recycle the pending afterwards).
type pending struct {
	events    uint64
	buf       []Event         // request-owned event copy the shards consume
	correct   []atomic.Uint64 // per predictor, summed across shards
	remaining atomic.Int32    // shards still working on this request
	done      chan struct{}   // one-slot, signalled once per request
	// Trace state: the request's wire-carried context (zero = untraced),
	// its dispatch timestamp, and a degraded-path marker the dispatcher
	// sets (e.g. "mailbox_saturated"). Written by the conn reader before
	// the request is mailed, read by the conn writer after the done
	// signal — both ordered by the resp channel + done handoff.
	ctx      otrace.Context
	start    int64
	degraded string
}

// init readies a pooled pending for one request of the given part count.
func (p *pending) init(npred, events, parts int) {
	p.events = uint64(events)
	if cap(p.correct) < npred {
		p.correct = make([]atomic.Uint64, npred)
	}
	p.correct = p.correct[:npred]
	for i := range p.correct {
		p.correct[i].Store(0)
	}
	p.remaining.Store(int32(parts))
	if parts == 0 {
		p.done <- struct{}{}
	}
}

// finish merges one shard's partial correct counts; the last part
// completes the request.
func (p *pending) finish(counts []uint64) {
	for i, c := range counts {
		if c != 0 {
			p.correct[i].Add(c)
		}
	}
	if p.remaining.Add(-1) == 0 {
		p.done <- struct{}{}
	}
}

// shardMsg is one mailbox entry: either a sub-batch of a request or a
// control message (stats snapshot or checkpoint state capture).
type shardMsg struct {
	events []Event
	req    *pending
	snap   chan<- ShardStats       // non-nil = stats request
	state  chan<- shardStateMsg    // non-nil = checkpoint capture request
	plan   *deltaPlan              // with state: delta-mode capture directive
	pstat  chan<- *predstat.Report // non-nil = predictability report request
	pstatN int                     // ranking size for pstat requests
	// ctx and sentNs carry the request's trace identity into the shard:
	// the shard loop records a queue-wait+execute span (sentNs → applied)
	// and a bank-step span when ctx is valid.
	ctx    otrace.Context
	sentNs int64
}

// shardStateMsg is one shard's reply to a checkpoint capture: st for a
// v1 full capture, delta for a delta-mode (chunked) capture.
type shardStateMsg struct {
	st    snapshot.ShardState
	delta *deltaShardState
	err   error
}

// shard owns one partition of predictor state. All access happens on the
// shard's own goroutine, fed through a bounded FIFO mailbox — the shard
// loop itself takes no locks (dispatchers hold the shared checkpoint cut
// lock while mailing), mirroring internal/engine's batched fan-out. The
// predictor bank executes through core.Bank.StepBatchCollect, the same
// batch path the engine and warm-restart replay use.
type shard struct {
	id      int
	names   []string // registry names, bank order (snapshot identity)
	preds   []core.Predictor
	bank    *core.Bank
	acc     []core.Accuracy
	pcs     core.PCSet
	events  uint64
	mailbox chan shardMsg
	stopped chan struct{}
	scratch []uint64 // per-request correct counts, reused
	spcs    []uint64 // SoA split of one sub-batch, reused
	svals   []uint64
	// met holds this shard's metric cells (single-writer: only this
	// goroutine and the monitor touch them); ewma is the shard-local
	// per-predictor hit-rate EWMA state behind the exported gauges; ring
	// receives slow-batch stage events.
	met       *shardMetrics
	ewma      []float64
	ewmaReady bool
	ring      *obs.Ring
	// pstat, when non-nil, is this shard's predictability tracker,
	// attached to the bank as its run observer (single-writer: only the
	// shard goroutine touches it).
	pstat *predstat.Tracker
	// tracer receives this shard's request spans on lane id (single
	// writer: the shard goroutine).
	tracer *otrace.Recorder
	// dirtyTrack mirrors Config.DeltaCheckpoints: the bank stamps per-PC
	// dirty bits for chunk-granular delta captures, re-enabled whenever
	// the bank is rebuilt (restore).
	dirtyTrack bool
}

func newShard(id int, facs []core.NamedFactory, depth int) *shard {
	sh := &shard{
		id:      id,
		names:   make([]string, len(facs)),
		preds:   make([]core.Predictor, len(facs)),
		acc:     make([]core.Accuracy, len(facs)),
		mailbox: make(chan shardMsg, depth),
		stopped: make(chan struct{}),
		scratch: make([]uint64, len(facs)),
		ewma:    make([]float64, len(facs)),
	}
	for i, f := range facs {
		sh.names[i] = f.Name
		sh.preds[i] = f.New()
	}
	sh.bank = core.NewBank(sh.preds...)
	return sh
}

// run consumes the mailbox until it is closed. One sub-batch applies the
// paper's protocol — predict, compare, update — for every predictor in the
// bank through the batch path, tallying both shard-lifetime accuracy and
// the request's reply. The mailbox is FIFO and sub-batches preserve
// request order, so every predictor still observes each PC's exact value
// subsequence.
func (sh *shard) run() {
	defer close(sh.stopped)
	for msg := range sh.mailbox {
		if msg.snap != nil {
			msg.snap <- sh.snapshot()
			continue
		}
		if msg.state != nil {
			if msg.plan != nil {
				msg.state <- sh.captureDelta(msg.plan)
			} else {
				msg.state <- sh.captureState()
			}
			continue
		}
		if msg.pstat != nil {
			if sh.pstat != nil {
				msg.pstat <- sh.pstat.Report(msg.pstatN)
			} else {
				msg.pstat <- &predstat.Report{}
			}
			continue
		}
		n := len(msg.events)
		if cap(sh.spcs) < n {
			sh.spcs = make([]uint64, n)
			sh.svals = make([]uint64, n)
		}
		pcs, vals := sh.spcs[:n], sh.svals[:n]
		for j := range msg.events {
			sh.pcs.Add(msg.events[j].PC)
			pcs[j] = msg.events[j].PC
			vals[j] = msg.events[j].Value
		}
		counts := sh.scratch
		for i := range counts {
			counts[i] = 0
		}
		t0 := time.Now()
		sh.bank.StepBatchCollect(pcs, vals, counts, nil)
		stepNs := time.Since(t0).Nanoseconds()
		if msg.ctx.Valid() {
			t0u := t0.UnixNano()
			// Shard span: mailed → applied (queue wait + execution);
			// bank span: the core.Bank step alone. Both on this shard's
			// lane, so the writes never contend with other shards.
			sh.tracer.Record(sh.id, otrace.Span{
				TraceID: msg.ctx.TraceID, SpanID: msg.ctx.SpanID + uint64(sh.id)*2 + 2, Parent: msg.ctx.SpanID,
				Stage: otrace.StageShard, Shard: int32(sh.id), Pred: -1,
				Start: msg.sentNs, Dur: t0u + stepNs - msg.sentNs, N: uint64(n),
			})
			sh.tracer.Record(sh.id, otrace.Span{
				TraceID: msg.ctx.TraceID, SpanID: msg.ctx.SpanID + uint64(sh.id)*2 + 3, Parent: msg.ctx.SpanID,
				Stage: otrace.StageBank, Shard: int32(sh.id), Pred: -1,
				Start: t0u, Dur: stepNs, N: uint64(n),
			})
		}
		for i := range sh.acc {
			sh.acc[i].Correct += counts[i]
			sh.acc[i].Total += uint64(n)
		}
		sh.events += uint64(n)
		sh.observeBatch(pcs, counts, stepNs)
		msg.req.finish(counts)
	}
}

// observeBatch records one applied sub-batch into the shard's metric
// cells: all plain stores and uncontended atomic adds, nothing
// allocates — the instrumentation rides inside the 0 allocs/op batch
// path. Called on the shard goroutine.
func (sh *shard) observeBatch(pcs []uint64, counts []uint64, stepNs int64) {
	if sh.met == nil {
		return
	}
	n := len(pcs)
	runs := 0
	for j := range pcs {
		if j == 0 || pcs[j] != pcs[j-1] {
			runs++
		}
	}
	m := sh.met
	m.events.Add(uint64(n))
	m.batches.Inc()
	m.batchEvents.Observe(uint64(n))
	m.batchNs.ObserveInt(stepNs)
	m.batchPCRuns.Observe(uint64(runs))
	m.mailboxDepth.Set(int64(len(sh.mailbox)))
	m.mailboxHW.SetMax(int64(len(sh.mailbox)))
	m.uniquePCs.Set(int64(sh.pcs.Len()))
	for i, c := range counts {
		m.predHits[i].Add(c)
		m.predEvents[i].Add(uint64(n))
		rate := float64(c) / float64(n)
		if !sh.ewmaReady { // first batch seeds the EWMA
			sh.ewma[i] = rate
		} else {
			sh.ewma[i] += ewmaAlpha * (rate - sh.ewma[i])
		}
		m.predEWMA[i].Set(sh.ewma[i])
	}
	sh.ewmaReady = true
	if stepNs > slowBatchNs {
		sh.ring.Add(obs.StageEvent{Kind: evSlowBatch, Shard: sh.id, DurNs: stepNs, N: uint64(n)})
	}
}

// approxEntryBytes is the nominal resident width of one predictor table
// entry (8-byte key, 8-byte value, ~8 bytes of per-entry metadata and
// container overhead). /stats reports entries × this width as the
// approximate state footprint; it is an estimate, not an accounting.
const approxEntryBytes = 24

// snapshot captures the shard's stats; called on the shard goroutine.
func (sh *shard) snapshot() ShardStats {
	st := ShardStats{
		Shard:        sh.id,
		Events:       sh.events,
		UniquePCs:    sh.pcs.Len(),
		Predictors:   make([]PredStat, len(sh.preds)),
		MailboxDepth: len(sh.mailbox),
	}
	if sh.met != nil {
		st.MailboxHighWater = int(sh.met.mailboxHW.Load())
	}
	for i, p := range sh.preds {
		ps := PredStat{
			Name:    p.Name(),
			Correct: sh.acc[i].Correct,
			Total:   sh.acc[i].Total,
		}
		ps.AccuracyPct = sh.acc[i].Percent()
		if sh.ewmaReady {
			ps.HitRateEWMA = sh.ewma[i]
		}
		if sized, ok := p.(core.Sized); ok {
			ps.StaticPCs, ps.TableEntries = sized.TableEntries()
			ps.ApproxStateBytes = int64(ps.StaticPCs)*8 + int64(ps.TableEntries)*approxEntryBytes
		}
		st.ApproxStateBytes += ps.ApproxStateBytes
		st.Predictors[i] = ps
	}
	st.ApproxStateBytes += int64(sh.pcs.Len()) * 8 // the unique-PC set itself
	return st
}

// captureState serializes the shard's full predictor state for a
// checkpoint; called on the shard goroutine, so it never races live
// traffic. The mailbox is FIFO, which is what "drain" means here: every
// sub-batch mailed before the capture request has been applied, and none
// mailed after it is visible.
func (sh *shard) captureState() shardStateMsg {
	st := snapshot.ShardState{
		Shard:  sh.id,
		Events: sh.events,
		PCs:    sh.pcs.AppendSorted(make([]uint64, 0, sh.pcs.Len())),
		Preds:  make([]snapshot.PredState, len(sh.preds)),
	}
	for i, p := range sh.preds {
		stateful, ok := p.(core.Stateful)
		if !ok {
			return shardStateMsg{err: fmt.Errorf("serve: predictor %q does not implement core.Stateful", sh.names[i])}
		}
		var buf bytes.Buffer
		if err := stateful.SaveState(&buf); err != nil {
			return shardStateMsg{err: fmt.Errorf("serve: shard %d: %w", sh.id, err)}
		}
		st.Preds[i] = snapshot.PredState{
			Name:    sh.names[i],
			Correct: sh.acc[i].Correct,
			Total:   sh.acc[i].Total,
			State:   buf.Bytes(),
		}
	}
	return shardStateMsg{st: st}
}

// restore replaces the shard's state from a decoded snapshot section.
// Only legal before the shard goroutine starts. Fresh predictor
// instances are built first, so a failed load leaves the shard's
// previous (empty) state intact.
func (sh *shard) restore(st snapshot.ShardState, facs []core.NamedFactory, nshards int) error {
	preds := make([]core.Predictor, len(facs))
	acc := make([]core.Accuracy, len(facs))
	for i, f := range facs {
		p := f.New()
		stateful, ok := p.(core.Stateful)
		if !ok {
			return fmt.Errorf("serve: predictor %q does not implement core.Stateful", f.Name)
		}
		if err := stateful.LoadState(bytes.NewReader(st.Preds[i].State)); err != nil {
			return fmt.Errorf("serve: shard %d: restoring %q: %w", sh.id, f.Name, err)
		}
		preds[i] = p
		acc[i] = core.Accuracy{Correct: st.Preds[i].Correct, Total: st.Preds[i].Total}
	}
	var pcs core.PCSet
	for _, pc := range st.PCs {
		if nshards > 1 && ShardOf(pc, nshards) != sh.id {
			return fmt.Errorf("serve: shard %d: snapshot PC %#x belongs to shard %d (snapshot from a different shard layout?)",
				sh.id, pc, ShardOf(pc, nshards))
		}
		pcs.Add(pc)
	}
	sh.preds, sh.acc, sh.pcs, sh.events = preds, acc, pcs, st.Events
	sh.bank = core.NewBank(preds...)
	if sh.dirtyTrack {
		sh.bank.SetDirtyTracking(true)
	}
	sh.ewmaReady = false // the EWMA reseeds from live traffic, not history
	if sh.pstat != nil {
		// Predictability estimates describe observed live traffic, which a
		// restore replaces wholesale: restart them from scratch and keep
		// the tracker attached to the rebuilt bank.
		sh.pstat.Reset()
		sh.bank.SetObserver(sh.pstat)
	}
	if sh.met != nil {
		sh.met.uniquePCs.Set(int64(sh.pcs.Len()))
	}
	return nil
}

// PredStat is one predictor's live tally, per shard or aggregated.
type PredStat struct {
	Name        string  `json:"name"`
	Correct     uint64  `json:"correct"`
	Total       uint64  `json:"total"`
	AccuracyPct float64 `json:"accuracy_pct"`
	// StaticPCs and TableEntries expose the predictor's table occupancy
	// (history depth / context growth) when the predictor reports it.
	StaticPCs    int `json:"static_pcs,omitempty"`
	TableEntries int `json:"table_entries,omitempty"`
	// ApproxStateBytes estimates the resident table footprint as
	// entries × nominal entry width.
	ApproxStateBytes int64 `json:"approx_state_bytes,omitempty"`
	// HitRateEWMA is the per-batch hit-rate EWMA — the live
	// predictability signal tracking the paper's per-predictor accuracy
	// tables as the stream drifts (0 until the first batch lands).
	HitRateEWMA float64 `json:"hit_rate_ewma,omitempty"`
}

// ShardStats is one shard's live view.
type ShardStats struct {
	Shard      int        `json:"shard"`
	Events     uint64     `json:"events"`
	UniquePCs  int        `json:"unique_pcs"`
	Predictors []PredStat `json:"predictors"`
	// ApproxStateBytes estimates this shard's resident predictor state
	// (all banks plus the unique-PC set), entries × entry width.
	ApproxStateBytes int64 `json:"approx_state_bytes"`
	// MailboxDepth is the queued mailbox entries at capture;
	// MailboxHighWater the deepest queue ever observed on this shard.
	MailboxDepth     int `json:"mailbox_depth"`
	MailboxHighWater int `json:"mailbox_highwater"`
}

// ProtoStats aggregates the binary protocol's transport counters.
type ProtoStats struct {
	ConnsOpen         int64  `json:"conns_open"`
	ConnsTotal        uint64 `json:"conns_total"`
	FramesIn          uint64 `json:"frames_in"`
	FramesOut         uint64 `json:"frames_out"`
	BytesIn           uint64 `json:"bytes_in"`
	BytesOut          uint64 `json:"bytes_out"`
	DecodeErrors      uint64 `json:"decode_errors"`
	PipelineHighWater int64  `json:"pipeline_highwater"`
}

// CkptStats aggregates checkpoint activity.
type CkptStats struct {
	Count        uint64 `json:"count"`
	Errors       uint64 `json:"errors"`
	LastBytes    int64  `json:"last_bytes,omitempty"`
	LastUnixNano int64  `json:"last_unixnano,omitempty"`
	// Full and Deltas split Count by checkpoint kind (delta mode only —
	// v1 checkpoints all count as full).
	Full   uint64 `json:"full"`
	Deltas uint64 `json:"deltas"`
	// ChainDepth is the live chain's delta links past its full root (0
	// right after a full).
	ChainDepth int64 `json:"chain_depth"`
	// ChunksWritten / ChunksDeduped count chunks stored inline versus
	// stored as content-hash references, over the server's lifetime;
	// DedupeRatio is the most recent checkpoint's deduped fraction.
	ChunksWritten uint64  `json:"chunks_written,omitempty"`
	ChunksDeduped uint64  `json:"chunks_deduped,omitempty"`
	DedupeRatio   float64 `json:"dedupe_ratio,omitempty"`
}

// Snapshot is the whole server's aggregated view plus the per-shard
// breakdown. Shards are snapshotted independently (each through its own
// mailbox), so totals are consistent per shard but not cut at a single
// global instant.
type Snapshot struct {
	Shards       int          `json:"shards"`
	UptimeSec    float64      `json:"uptime_sec"`
	Events       uint64       `json:"events"`
	EventsPerSec float64      `json:"events_per_sec"`
	UniquePCs    int          `json:"unique_pcs"`
	Predictors   []PredStat   `json:"predictors"`
	PerShard     []ShardStats `json:"per_shard"`
	// ApproxStateBytes sums the per-shard resident-state estimates.
	ApproxStateBytes int64 `json:"approx_state_bytes"`
	// Protocol and Checkpoints surface the transport and durability
	// counters the /metrics endpoint exports, inlined here so a JSON
	// /stats poll sees the same picture.
	Protocol    ProtoStats `json:"protocol"`
	Checkpoints CkptStats  `json:"checkpoints"`
	// StartedAt is the server process start time (RFC 3339).
	StartedAt string `json:"started_at"`
	// RestoredSnapshotID and RestoredAt identify the checkpoint this
	// server was warm-started from; both empty on a cold start. Together
	// with StartedAt they let a driver distinguish warm-from-snapshot
	// from warm-from-traffic.
	RestoredSnapshotID string `json:"restored_snapshot_id,omitempty"`
	RestoredAt         string `json:"restored_at,omitempty"`
}
