package serve

import (
	"sync/atomic"

	"repro/internal/core"
)

// pending is one in-flight request: the conn handler creates it, shards
// add their partial tallies, and the last shard to finish closes done so
// the response writer can emit the result in request order.
type pending struct {
	events    uint64
	correct   []atomic.Uint64 // per predictor, summed across shards
	remaining atomic.Int32    // shards still working on this request
	done      chan struct{}
}

func newPending(npred int, events int, parts int) *pending {
	p := &pending{
		events:  uint64(events),
		correct: make([]atomic.Uint64, npred),
		done:    make(chan struct{}),
	}
	p.remaining.Store(int32(parts))
	if parts == 0 {
		close(p.done)
	}
	return p
}

// finish merges one shard's partial correct counts; the last part
// completes the request.
func (p *pending) finish(counts []uint64) {
	for i, c := range counts {
		if c != 0 {
			p.correct[i].Add(c)
		}
	}
	if p.remaining.Add(-1) == 0 {
		close(p.done)
	}
}

// shardMsg is one mailbox entry: either a sub-batch of a request or a
// control message (stats snapshot).
type shardMsg struct {
	events []Event
	req    *pending
	snap   chan<- ShardStats // non-nil = stats request
}

// shard owns one partition of predictor state. All access happens on the
// shard's own goroutine, fed through a bounded FIFO mailbox — the hot path
// takes no locks, mirroring internal/engine's batched fan-out.
type shard struct {
	id      int
	preds   []core.Predictor
	acc     []core.Accuracy
	pcs     map[uint64]struct{}
	events  uint64
	mailbox chan shardMsg
	stopped chan struct{}
	scratch []uint64 // per-request correct counts, reused
}

func newShard(id int, facs []core.NamedFactory, depth int) *shard {
	sh := &shard{
		id:      id,
		preds:   make([]core.Predictor, len(facs)),
		acc:     make([]core.Accuracy, len(facs)),
		pcs:     make(map[uint64]struct{}),
		mailbox: make(chan shardMsg, depth),
		stopped: make(chan struct{}),
		scratch: make([]uint64, len(facs)),
	}
	for i, f := range facs {
		sh.preds[i] = f.New()
	}
	return sh
}

// run consumes the mailbox until it is closed. One sub-batch applies the
// paper's protocol — predict, compare, update — for every predictor in the
// bank, tallying both shard-lifetime accuracy and the request's reply.
func (sh *shard) run() {
	defer close(sh.stopped)
	for msg := range sh.mailbox {
		if msg.snap != nil {
			msg.snap <- sh.snapshot()
			continue
		}
		counts := sh.scratch
		for i := range counts {
			counts[i] = 0
		}
		for j := range msg.events {
			ev := &msg.events[j]
			sh.pcs[ev.PC] = struct{}{}
			for i, p := range sh.preds {
				pred, ok := p.Predict(ev.PC)
				correct := ok && pred == ev.Value
				sh.acc[i].Observe(correct)
				if correct {
					counts[i]++
				}
				p.Update(ev.PC, ev.Value)
			}
		}
		sh.events += uint64(len(msg.events))
		msg.req.finish(counts)
	}
}

// snapshot captures the shard's stats; called on the shard goroutine.
func (sh *shard) snapshot() ShardStats {
	st := ShardStats{
		Shard:      sh.id,
		Events:     sh.events,
		UniquePCs:  len(sh.pcs),
		Predictors: make([]PredStat, len(sh.preds)),
	}
	for i, p := range sh.preds {
		ps := PredStat{
			Name:    p.Name(),
			Correct: sh.acc[i].Correct,
			Total:   sh.acc[i].Total,
		}
		ps.AccuracyPct = sh.acc[i].Percent()
		if sized, ok := p.(core.Sized); ok {
			ps.StaticPCs, ps.TableEntries = sized.TableEntries()
		}
		st.Predictors[i] = ps
	}
	return st
}

// PredStat is one predictor's live tally, per shard or aggregated.
type PredStat struct {
	Name        string  `json:"name"`
	Correct     uint64  `json:"correct"`
	Total       uint64  `json:"total"`
	AccuracyPct float64 `json:"accuracy_pct"`
	// StaticPCs and TableEntries expose the predictor's table occupancy
	// (history depth / context growth) when the predictor reports it.
	StaticPCs    int `json:"static_pcs,omitempty"`
	TableEntries int `json:"table_entries,omitempty"`
}

// ShardStats is one shard's live view.
type ShardStats struct {
	Shard      int        `json:"shard"`
	Events     uint64     `json:"events"`
	UniquePCs  int        `json:"unique_pcs"`
	Predictors []PredStat `json:"predictors"`
}

// Snapshot is the whole server's aggregated view plus the per-shard
// breakdown. Shards are snapshotted independently (each through its own
// mailbox), so totals are consistent per shard but not cut at a single
// global instant.
type Snapshot struct {
	Shards       int          `json:"shards"`
	UptimeSec    float64      `json:"uptime_sec"`
	Events       uint64       `json:"events"`
	EventsPerSec float64      `json:"events_per_sec"`
	UniquePCs    int          `json:"unique_pcs"`
	Predictors   []PredStat   `json:"predictors"`
	PerShard     []ShardStats `json:"per_shard"`
}
