package serve

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/trace"
)

// DefaultDriveBatch is the events-per-request batch size the driver uses
// when DriveConfig.BatchSize is zero.
const DefaultDriveBatch = 2048

// DriveConfig parameterizes a load-generation run against a server.
type DriveConfig struct {
	// Addr is the server's binary-protocol address.
	Addr string
	// Clients is the number of concurrent connections (0 = 1). The stream
	// is partitioned across clients by ShardOf(pc, Clients), so every
	// PC's subsequence stays on one ordered connection and — for banks of
	// PC-local predictors — the summed accuracy is identical to offline
	// replay at any concurrency. A non-PC-local bank (bfcm3) still sees a
	// nondeterministic cross-connection interleaving; drive it with one
	// client when parity matters.
	Clients int
	// BatchSize is events per request frame (0 = DefaultDriveBatch).
	BatchSize int
	// TraceSample, when > 0, sends every request with a minted trace
	// context (so the server's tail sampler sees all of them) and
	// head-samples one in TraceSample — those are retained server-side
	// regardless of latency. 1 retains every request; 0 drives untraced.
	TraceSample int
}

// SlowTrace identifies one of the slowest traced requests of a drive:
// the trace id to look up in the server's GET /trace, and the
// client-observed round-trip time.
type SlowTrace struct {
	TraceID string `json:"trace_id"`
	DurNs   int64  `json:"dur_ns"`
}

// DriveResult aggregates a whole run.
type DriveResult struct {
	Predictors []string
	Events     uint64
	Correct    []uint64 // per predictor, summed across clients
	Elapsed    time.Duration
	// ServerPriorEvents is the largest lifetime event count any client
	// connection observed in its hello. Non-zero means the server's
	// tables were already trained before this drive, so the tallies are
	// not comparable to an offline replay from cold tables.
	ServerPriorEvents uint64
	// Latency is the request round-trip latency distribution in ns
	// (batch handed to the sender → matching result received), merged
	// across every client connection. Quantile/Mean/Max summarize it.
	Latency obs.HistSnap
	// SlowTraces are the slowest traced requests of the run (client-side
	// round-trip), slowest first — the ids to paste into the server's
	// GET /trace. Empty when TraceSample was 0.
	SlowTraces []SlowTrace
}

// AccuracyPct returns predictor i's accuracy over the driven stream.
func (r *DriveResult) AccuracyPct(i int) float64 {
	if r.Events == 0 {
		return 0
	}
	return 100 * float64(r.Correct[i]) / float64(r.Events)
}

// EventsPerSec returns the end-to-end drive throughput.
func (r *DriveResult) EventsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Events) / r.Elapsed.Seconds()
}

// clientRunner owns one connection: a sender goroutine streams batches
// from work, then half-closes; the receiver (run's own goroutine) drains
// results until EOF. Spent batch buffers flow back to the producer over
// free — Send copies the events onto the wire, so a buffer is reusable
// the moment Send returns — which makes the drive loop's buffer
// management allocation-free in steady state.
//
// Latency is measured per request: the sender records a timestamp just
// before each Send, and — responses being FIFO — the receiver pairs the
// oldest outstanding timestamp with each result. The timestamps ride a
// bounded channel; every stamp is pushed before its frame is sent, so the
// receiver's pop can never run ahead of the sender.
type clientRunner struct {
	c       *Client
	work    chan []Event
	free    chan []Event
	lat     *obs.Histogram
	times   chan sendStamp
	minter  *otrace.Minter // nil = drive untraced
	slow    [slowTrackK]slowSlot
	sum     BatchResult
	sent    uint64
	sendErr error
	recvErr error
	wg      sync.WaitGroup
}

// sendStamp pairs a request's send timestamp with its trace id (0 when
// untraced); responses are FIFO, so the receiver pops stamps in order.
type sendStamp struct {
	t0 int64
	id uint64
}

// slowTrackK bounds the per-runner slowest-request tracking — constant
// memory however long the drive runs.
const slowTrackK = 16

type slowSlot struct {
	id uint64
	ns int64
}

// noteSlow keeps the K slowest traced requests; called only from the
// receiver goroutine, so no locking.
func (r *clientRunner) noteSlow(id uint64, ns int64) {
	minI := 0
	for i := 1; i < slowTrackK; i++ {
		if r.slow[i].ns < r.slow[minI].ns {
			minI = i
		}
	}
	if ns > r.slow[minI].ns {
		r.slow[minI] = slowSlot{id: id, ns: ns}
	}
}

func startRunner(addr string, lat *obs.Histogram, minter *otrace.Minter) (*clientRunner, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	r := &clientRunner{
		c:    c,
		work: make(chan []Event, 8),
		// One slot per in-flight work entry plus the producer's and the
		// sender's own, so recycling never blocks.
		free: make(chan []Event, 10),
		lat:  lat,
		// Far deeper than any realistic in-flight frame count; the sender
		// flushes before blocking on a full queue, so even degenerate
		// tiny-batch runs keep making progress.
		times:  make(chan sendStamp, 1024),
		minter: minter,
	}
	r.wg.Add(2)
	go func() { // sender
		defer r.wg.Done()
		for b := range r.work {
			r.sent += uint64(len(b))
			if r.sendErr == nil {
				r.stampAndSend(b)
			}
			select {
			case r.free <- b[:0]:
			default:
			}
		}
		if err := r.c.CloseWrite(); err != nil && r.sendErr == nil {
			r.sendErr = err
		}
	}()
	go func() { // receiver
		defer r.wg.Done()
		r.recvErr = r.drainTimed()
	}()
	return r, nil
}

// stampAndSend records the send timestamp, writes the batch and flushes
// when the producer has nothing further queued — so the measured latency
// is wire-and-server time, not client-side buffering.
func (r *clientRunner) stampAndSend(b []Event) {
	var ctx otrace.Context
	if r.minter != nil {
		ctx = r.minter.Next()
	}
	st := sendStamp{t0: time.Now().UnixNano(), id: ctx.TraceID}
	select {
	case r.times <- st:
	default:
		// Timestamp queue full: that many frames are unflushed or
		// unanswered. Force them onto the wire — the server keeps
		// answering, the receiver keeps popping — then wait for a slot.
		if err := r.c.Flush(); err != nil {
			r.sendErr = err
			return
		}
		r.times <- st
	}
	if err := r.c.SendTraced(b, ctx); err != nil {
		r.sendErr = err
		return
	}
	if len(r.work) == 0 {
		if err := r.c.Flush(); err != nil {
			r.sendErr = err
		}
	}
}

// drainTimed receives until EOF, summing results through one reused
// BatchResult and pairing each with its send timestamp.
func (r *clientRunner) drainTimed() error {
	var br BatchResult
	for {
		err := r.c.RecvInto(&br)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		select {
		case st := <-r.times:
			ns := time.Now().UnixNano() - st.t0
			r.lat.ObserveInt(ns)
			if st.id != 0 {
				r.noteSlow(st.id, ns)
			}
		default:
			// No stamp for this result — the sender hit an error after
			// stamping a different frame; skip the sample.
		}
		r.sum.Events += br.Events
		if r.sum.Correct == nil {
			r.sum.Correct = make([]uint64, len(r.c.preds))
		}
		for i, v := range br.Correct {
			r.sum.Correct[i] += v
		}
	}
}

func (r *clientRunner) finish() error {
	r.wg.Wait()
	r.c.Close()
	if r.sendErr != nil {
		return r.sendErr
	}
	if r.recvErr != nil {
		return r.recvErr
	}
	if r.sum.Events != r.sent {
		return fmt.Errorf("serve: drive: sent %d events but server tallied %d", r.sent, r.sum.Events)
	}
	return nil
}

// Drive streams events from next against the server. next is called until
// it returns false; it fills the driver's per-client batches, so the
// source can be a trace file, a live simulation or a generator.
func Drive(cfg DriveConfig, next func() (Event, bool)) (*DriveResult, error) {
	clients := cfg.Clients
	if clients <= 0 {
		clients = 1
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultDriveBatch
	}
	start := time.Now()
	lat := obs.NewHistogram()
	runners := make([]*clientRunner, clients)
	for i := range runners {
		var minter *otrace.Minter
		if cfg.TraceSample > 0 {
			// Per-runner minter (the sender goroutine owns it), seeded so
			// ids never collide across runners of the same drive.
			minter = otrace.NewMinter(uint64(start.UnixNano())+uint64(i)<<32, cfg.TraceSample)
		}
		r, err := startRunner(cfg.Addr, lat, minter)
		if err != nil {
			for _, prev := range runners[:i] {
				close(prev.work)
				prev.finish()
			}
			return nil, err
		}
		runners[i] = r
	}
	preds := runners[0].c.Predictors()

	bufs := make([][]Event, clients)
	for i := range bufs {
		bufs[i] = make([]Event, 0, batch)
	}
	for {
		ev, ok := next()
		if !ok {
			break
		}
		cl := 0
		if clients > 1 {
			cl = ShardOf(ev.PC, clients)
		}
		bufs[cl] = append(bufs[cl], ev)
		if len(bufs[cl]) == batch {
			runners[cl].work <- bufs[cl]
			select {
			case bufs[cl] = <-runners[cl].free: // recycled, cap == batch
			default:
				bufs[cl] = make([]Event, 0, batch)
			}
		}
	}
	for i, b := range bufs {
		if len(b) > 0 {
			runners[i].work <- b
		}
	}

	res := &DriveResult{Predictors: preds, Correct: make([]uint64, len(preds))}
	var firstErr error
	for _, r := range runners {
		close(r.work)
		if err := r.finish(); err != nil && firstErr == nil {
			firstErr = err
		}
		res.Events += r.sum.Events
		res.ServerPriorEvents = max(res.ServerPriorEvents, r.c.PriorEvents())
		for i, v := range r.sum.Correct {
			res.Correct[i] += v
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	res.Elapsed = time.Since(start)
	res.Latency = lat.Snapshot()
	if cfg.TraceSample > 0 {
		var all []slowSlot
		for _, r := range runners {
			for _, sl := range r.slow {
				if sl.id != 0 {
					all = append(all, sl)
				}
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].ns > all[j].ns })
		if len(all) > slowTrackK {
			all = all[:slowTrackK]
		}
		for _, sl := range all {
			res.SlowTraces = append(res.SlowTraces, SlowTrace{TraceID: otrace.Hex16(sl.id), DurNs: sl.ns})
		}
	}
	return res, nil
}

// LatencySummary formats the run's round-trip latency distribution as
// "p50=… p90=… p99=… max=…" (empty string when nothing was measured) —
// the end-of-run line vpserve drivers and `vptrace drive` print.
func (r *DriveResult) LatencySummary() string {
	if r.Latency.Count == 0 {
		return ""
	}
	return fmt.Sprintf("p50=%s p90=%s p99=%s max=%s",
		time.Duration(r.Latency.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(r.Latency.Quantile(0.90)).Round(time.Microsecond),
		time.Duration(r.Latency.Quantile(0.99)).Round(time.Microsecond),
		time.Duration(r.Latency.Max).Round(time.Microsecond))
}

// DriveEvents drives an in-memory event stream.
func DriveEvents(evs []Event, cfg DriveConfig) (*DriveResult, error) {
	i := 0
	return Drive(cfg, func() (Event, bool) {
		if i >= len(evs) {
			return Event{}, false
		}
		ev := evs[i]
		i++
		return ev, true
	})
}

// DriveTrace replays a captured value trace through the server using the
// batched trace read path.
func DriveTrace(tr *trace.Reader, cfg DriveConfig) (*DriveResult, error) {
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultDriveBatch
	}
	var pendingEvs []Event
	var done bool
	var readErr error
	buf := make([]trace.Event, batch)
	next := func() (Event, bool) {
		for len(pendingEvs) == 0 {
			if done || readErr != nil {
				return Event{}, false
			}
			n, err := tr.ReadBatch(buf)
			switch {
			case errors.Is(err, io.EOF):
				done = true
			case err != nil:
				readErr = err
			}
			for _, te := range buf[:n] {
				pendingEvs = append(pendingEvs, Event{PC: te.PC, Value: te.Value})
			}
			if n < len(buf) {
				done = true
			}
		}
		ev := pendingEvs[0]
		pendingEvs = pendingEvs[1:]
		return ev, true
	}
	res, err := Drive(cfg, next)
	if err != nil {
		return nil, err
	}
	if readErr != nil {
		return nil, readErr
	}
	return res, nil
}
