package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	otrace "repro/internal/obs/trace"
)

func TestHelloRoundTrip(t *testing.T) {
	buf := appendHello(nil, 7, 123456, []string{"l", "s2", "fcm3"})
	if buf[0] != msgHello {
		t.Fatalf("type byte = %d", buf[0])
	}
	shards, prior, preds, err := decodeHello(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if shards != 7 || prior != 123456 || len(preds) != 3 || preds[2] != "fcm3" {
		t.Fatalf("decoded shards=%d prior=%d preds=%v", shards, prior, preds)
	}
}

func TestEventsRoundTrip(t *testing.T) {
	in := []Event{{PC: 0x400, Value: 42}, {PC: 1 << 62, Value: ^uint64(0)}, {PC: 0, Value: 0}}
	buf := appendEvents(nil, in)
	out, err := decodeEvents(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("event %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestEventsTracedRoundTrip(t *testing.T) {
	in := []Event{{PC: 0x400, Value: 42}, {PC: 1 << 62, Value: ^uint64(0)}}
	ctx := otrace.Context{TraceID: 0xdeadbeef12345678, SpanID: 0xabc, Flags: otrace.FlagSampled}
	buf := appendEventsTraced(nil, in, ctx)
	if buf[0] != msgEventsTraced {
		t.Fatalf("type byte = %d", buf[0])
	}
	got, body, err := decodeTraceHeader(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got != ctx {
		t.Fatalf("context = %+v, want %+v", got, ctx)
	}
	out, err := decodeEvents(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("events = %+v, want %+v", out, in)
	}
	// The traced body past the header is bit-identical to the untraced
	// encoding — both frame versions share one events codec.
	untraced := appendEvents(nil, in)
	if !bytes.Equal(body, untraced[1:]) {
		t.Fatal("traced body diverges from untraced encoding")
	}
}

func TestDecodeTraceHeaderMalformed(t *testing.T) {
	// Header shorter than the fixed 17 bytes.
	for n := 0; n < traceHeaderLen; n++ {
		if _, _, err := decodeTraceHeader(make([]byte, n)); err == nil {
			t.Fatalf("truncated trace header (%d bytes) accepted", n)
		}
	}
	// Valid header, corrupt body.
	ctx := otrace.Context{TraceID: 1, SpanID: 2}
	buf := appendEventsTraced(nil, []Event{{PC: 1, Value: 2}}, ctx)
	_, body, err := decodeTraceHeader(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeEvents(append(body[:len(body):len(body)], 0xFF)); err == nil {
		t.Fatal("trailing bytes in traced body accepted")
	}
}

func TestHelloAcceptsBothVersions(t *testing.T) {
	// A v1 hello (old server) must still decode on a new client.
	buf := appendHello(nil, 3, 9, []string{"l"})
	v1 := append([]byte{}, buf[1:]...)
	v1[0] = 1
	shards, prior, preds, err := decodeHello(v1)
	if err != nil {
		t.Fatalf("v1 hello rejected: %v", err)
	}
	if shards != 3 || prior != 9 || len(preds) != 1 {
		t.Fatalf("v1 hello decoded wrong: %d %d %v", shards, prior, preds)
	}
	// Unknown future version still rejected.
	v9 := append([]byte{}, buf[1:]...)
	v9[0] = 9
	if _, _, _, err := decodeHello(v9); err == nil {
		t.Fatal("future protocol version accepted")
	}
}

func TestResultRoundTrip(t *testing.T) {
	buf := appendResult(nil, 1000, []uint64{5, 0, 999})
	events, correct, err := decodeResult(buf[1:], 3)
	if err != nil {
		t.Fatal(err)
	}
	if events != 1000 || correct[0] != 5 || correct[2] != 999 {
		t.Fatalf("decoded events=%d correct=%v", events, correct)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := decodeEvents([]byte{}); err == nil {
		t.Error("empty events payload accepted")
	}
	// Count says 2 events but only one follows.
	if _, err := decodeEvents([]byte{2, 0x10, 0x20}); err == nil {
		t.Error("short events payload accepted")
	}
	// Trailing garbage after a well-formed event.
	buf := appendEvents(nil, []Event{{PC: 1, Value: 2}})
	if _, err := decodeEvents(append(buf[1:], 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, _, _, err := decodeHello([]byte{99}); err == nil {
		t.Error("wrong protocol version accepted")
	}
	// Event count claiming more events than the frame could hold must be
	// rejected before allocation.
	if _, err := decodeEvents(binary.AppendUvarint(nil, 1<<20)); err == nil {
		t.Error("oversized event count accepted")
	}
	if _, _, err := decodeResult([]byte{10}, 3); err == nil {
		t.Error("short result accepted")
	}
}

func TestFrameRoundTripAndLimits(t *testing.T) {
	var nw bytes.Buffer
	bw := bufio.NewWriter(&nw)
	payload := []byte{msgEvents, 0}
	if err := writeFrame(bw, payload); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	got, err := readFrame(bufio.NewReader(&nw), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %v", got)
	}

	// Absurd length prefix must be rejected, not allocated.
	bad := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(bad)), nil); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Truncated payload must surface ErrUnexpectedEOF, not clean EOF.
	trunc := []byte{8, 0, 0, 0, 1, 2}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(trunc)), nil); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestShardOfStableAndInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		counts := make([]int, shards)
		for pc := uint64(0); pc < 4096; pc += 4 {
			s := ShardOf(pc, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d", pc, shards, s)
			}
			if s != ShardOf(pc, shards) {
				t.Fatal("ShardOf not deterministic")
			}
			counts[s]++
		}
		// Consecutive PCs should spread: no shard may own everything.
		for s, c := range counts {
			if shards > 1 && c == 1024 {
				t.Fatalf("shard %d of %d owns all PCs", s, shards)
			}
		}
	}
}
