package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"slices"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/snapshot"
)

// CheckpointInfo describes one written checkpoint.
type CheckpointInfo struct {
	// ID is the snapshot's content-addressed identifier.
	ID string `json:"id"`
	// Path is the checkpoint file written (temp-file + rename, so it is
	// complete or absent, never partial).
	Path string `json:"path"`
	// Events is the total event count captured across shards.
	Events uint64 `json:"events"`
	// Shards is the shard count of the captured layout.
	Shards int `json:"shards"`
	// Kind is "full" or "delta" (v1 checkpoints are always full).
	Kind string `json:"kind"`
	// Depth is the chain depth of this checkpoint (0 for a full);
	// ParentID names the previous chain link, empty for a full.
	Depth    int    `json:"depth,omitempty"`
	ParentID string `json:"parent_id,omitempty"`
	// ChunksWritten / ChunksDeduped split this checkpoint's chunk table
	// into inline chunks and content-hash references (delta mode only).
	ChunksWritten int `json:"chunks_written,omitempty"`
	ChunksDeduped int `json:"chunks_deduped,omitempty"`
}

// WriteCheckpoint captures the full predictor state of a running server
// and writes it atomically into dir. The cut is request-atomic: capture
// markers ride each shard's FIFO mailbox under the exclusive cut lock,
// so every request dispatched before the checkpoint is fully included
// and every one dispatched after is fully excluded — each shard drains
// its queued sub-batches before serializing. Serving continues
// underneath; only dispatching pauses for the instant the markers are
// mailed.
func (s *Server) WriteCheckpoint(dir string) (CheckpointInfo, error) {
	return s.writeCheckpoint(dir, false)
}

// WriteFullCheckpoint is WriteCheckpoint with a forced full cut: in
// delta mode it roots a fresh chain (POST /snapshot?full=1); otherwise
// it is identical to WriteCheckpoint.
func (s *Server) WriteFullCheckpoint(dir string) (CheckpointInfo, error) {
	return s.writeCheckpoint(dir, true)
}

func (s *Server) writeCheckpoint(dir string, forceFull bool) (CheckpointInfo, error) {
	if dir == "" {
		return CheckpointInfo{}, errors.New("serve: no checkpoint directory configured")
	}
	// One checkpoint at a time: the chain state must advance atomically
	// from plan to written file.
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	replies := make([]chan shardStateMsg, len(s.shards))
	s.statsMu.Lock()
	s.mu.Lock()
	live := s.started && !s.closed
	s.mu.Unlock()
	if !live {
		s.statsMu.Unlock()
		return CheckpointInfo{}, errors.New("serve: server is not running")
	}
	plans := s.planCut(forceFull)
	cutT0 := time.Now()
	s.health.cutStart.Store(cutT0.UnixNano())
	s.cutMu.Lock()
	for i, sh := range s.shards {
		replies[i] = make(chan shardStateMsg, 1)
		msg := shardMsg{state: replies[i]}
		if plans != nil {
			msg.plan = plans[i]
		}
		sh.mailbox <- msg
	}
	s.cutMu.Unlock()
	s.statsMu.Unlock()
	return s.assembleCheckpoint(dir, replies, plans, cutT0, otrace.Mint())
}

// checkpointShards is the shutdown-path capture: connections are already
// drained and the mailboxes are quiet but still open, so the markers
// need no cut lock and observe the final state.
func (s *Server) checkpointShards(dir string) (CheckpointInfo, error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	plans := s.planCut(false)
	cutT0 := time.Now()
	s.health.cutStart.Store(cutT0.UnixNano())
	replies := make([]chan shardStateMsg, len(s.shards))
	for i, sh := range s.shards {
		replies[i] = make(chan shardStateMsg, 1)
		msg := shardMsg{state: replies[i]}
		if plans != nil {
			msg.plan = plans[i]
		}
		sh.mailbox <- msg
	}
	return s.assembleCheckpoint(dir, replies, plans, cutT0, otrace.Mint())
}

// assembleCheckpoint drains the shard replies and writes the snapshot.
// tctx is the checkpoint's own minted trace: cut and encode become spans
// on the control lane and the trace is always retained, so checkpoint
// interference shows up in GET /trace alongside the requests it delayed.
func (s *Server) assembleCheckpoint(dir string, replies []chan shardStateMsg, plans []*deltaPlan, cutT0 time.Time, tctx otrace.Context) (CheckpointInfo, error) {
	if plans != nil {
		return s.assembleDelta(dir, replies, plans, cutT0, tctx)
	}
	defer s.health.cutStart.Store(0)
	snap := &snapshot.Snapshot{
		Meta: snapshot.Meta{
			CreatedUnixNano: time.Now().UnixNano(),
			Predictors:      append([]string(nil), s.predNames...),
		},
		Shards: make([]snapshot.ShardState, len(replies)),
	}
	var firstErr error
	var events uint64
	for i, ch := range replies {
		resp := <-ch // always drain every reply, even after an error
		if resp.err != nil && firstErr == nil {
			firstErr = resp.err
		}
		snap.Shards[i] = resp.st
		events += resp.st.Events
	}
	cutNs := time.Since(cutT0).Nanoseconds()
	s.metrics.ckptCutNs.ObserveInt(cutNs)
	s.ring.Add(obs.StageEvent{Kind: evCheckpointCut, Shard: -1, DurNs: cutNs, N: events})
	cutStartNs := cutT0.UnixNano()
	s.tracer.Record(s.controlLane(), otrace.Span{
		TraceID: tctx.TraceID, SpanID: tctx.SpanID,
		Stage: otrace.StageCheckpointCut, Shard: -1, Pred: -1,
		Start: cutStartNs, Dur: cutNs, N: events,
	})
	if firstErr != nil {
		s.metrics.ckptErrors.Inc()
		s.ring.Add(obs.StageEvent{Kind: evCheckpointError, Shard: -1, Detail: firstErr.Error()})
		s.tracer.Promote(tctx, cutStartNs, cutNs, events, "checkpoint_error")
		return CheckpointInfo{}, firstErr
	}
	encT0 := time.Now()
	path, err := snapshot.WriteFileAtomic(dir, snap)
	encNs := time.Since(encT0).Nanoseconds()
	s.metrics.ckptEncodeNs.ObserveInt(encNs)
	s.tracer.Record(s.controlLane(), otrace.Span{
		TraceID: tctx.TraceID, SpanID: tctx.SpanID + 1, Parent: tctx.SpanID,
		Stage: otrace.StageCheckpointEncode, Shard: -1, Pred: -1,
		Start: encT0.UnixNano(), Dur: encNs, N: events,
	})
	s.tracer.Promote(tctx, cutStartNs, cutNs+encNs, events, "checkpoint")
	if err != nil {
		s.metrics.ckptErrors.Inc()
		s.ring.Add(obs.StageEvent{Kind: evCheckpointError, Shard: -1, DurNs: encNs, Detail: err.Error()})
		return CheckpointInfo{}, err
	}
	var size int64
	if fi, statErr := os.Stat(path); statErr == nil {
		size = fi.Size()
	}
	s.metrics.ckptTotal["full"].Inc()
	s.metrics.ckptBytes["full"].Add(uint64(size))
	s.metrics.ckptLastBytes.Set(size)
	s.metrics.ckptLastUnix.Set(time.Now().UnixNano())
	s.ring.Add(obs.StageEvent{Kind: evCheckpointWritten, Shard: -1, DurNs: encNs, N: uint64(size), Detail: snap.Meta.ID})
	s.log.Info("checkpoint written",
		"id", snap.Meta.ID, "events", snap.Meta.Events, "bytes", size,
		"cut", time.Duration(cutNs), "encode", time.Duration(encNs))
	return CheckpointInfo{ID: snap.Meta.ID, Path: path, Events: snap.Meta.Events, Shards: len(snap.Shards), Kind: "full"}, nil
}

// Restore loads a decoded snapshot into a server that has not started
// yet, replacing every shard's predictors, tallies, PC sets and event
// counts. The server must be configured with the snapshot's exact shard
// count and predictor bank; after Start it continues bit-identically to
// the server that wrote the checkpoint.
func (s *Server) Restore(snap *snapshot.Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return errors.New("serve: restore requires a server that has not been started")
	}
	if snap.Meta.Shards != len(s.shards) {
		return fmt.Errorf("serve: snapshot %s has %d shards, server is configured with %d (restart with -shards %d)",
			snap.Meta.ID, snap.Meta.Shards, len(s.shards), snap.Meta.Shards)
	}
	if !slices.Equal(snap.Meta.Predictors, s.predNames) {
		return fmt.Errorf("serve: snapshot %s predictor bank %v does not match server bank %v",
			snap.Meta.ID, snap.Meta.Predictors, s.predNames)
	}
	var events uint64
	for i, sh := range s.shards {
		if err := sh.restore(snap.Shards[i], s.cfg.Predictors, len(s.shards)); err != nil {
			return err
		}
		events += snap.Shards[i].Events
	}
	s.eventsServed.Store(events)
	s.restoredID = snap.Meta.ID
	s.restoredAt = time.Now()
	s.metrics.restoreTotal.Inc()
	s.metrics.restoredEvents.Set(int64(events))
	s.ring.Add(obs.StageEvent{Kind: evRestore, Shard: -1, N: events, Detail: snap.Meta.ID})
	s.log.Info("warm restore", "id", snap.Meta.ID, "events", events, "shards", len(s.shards))
	return nil
}

// RestoredFrom returns the snapshot ID this server was warm-started
// from, or "" after a cold start.
func (s *Server) RestoredFrom() string { return s.restoredID }

// WarmBank replays a stream through per-shard predictor banks restored
// from a snapshot, mirroring the server's sharded state layout exactly.
// It is the offline half of the warm-restart parity check: feed it the
// post-checkpoint remainder of a stream and its tallies must match what
// a server restored from the same snapshot returns for that remainder.
// Replay runs through core.Bank.StepBatch — the same batch path the
// server's shard loop uses — so online serving and offline warm replay
// execute identical code.
type WarmBank struct {
	names  []string
	shards []*core.Bank
	events uint64
	// Batch scratch: shard bucketing counters/cursors and the SoA split,
	// grouped by shard, all reused across StepBatch calls.
	cnt   []int
	pos   []int
	spcs  []uint64
	svals []uint64
	one   [2]uint64 // Step's 1-event batch (pc, value)
}

// warmChunk bounds the events one StepBatch call buckets at once, so
// replaying a multi-million-event stream keeps constant scratch memory.
const warmChunk = 4096

// NewWarmBank builds the per-shard banks from a snapshot, resolving
// predictors through the registry.
func NewWarmBank(snap *snapshot.Snapshot) (*WarmBank, error) {
	facs := make([]core.NamedFactory, len(snap.Meta.Predictors))
	for i, name := range snap.Meta.Predictors {
		fac, ok := core.FactoryByName(name)
		if !ok {
			return nil, fmt.Errorf("serve: snapshot predictor %q not in local registry", name)
		}
		facs[i] = fac
	}
	b := &WarmBank{
		names:  append([]string(nil), snap.Meta.Predictors...),
		shards: make([]*core.Bank, snap.Meta.Shards),
		cnt:    make([]int, snap.Meta.Shards),
		pos:    make([]int, snap.Meta.Shards),
	}
	for si := range b.shards {
		preds := make([]core.Predictor, len(facs))
		for pi, fac := range facs {
			p := fac.New()
			st, ok := p.(core.Stateful)
			if !ok {
				return nil, fmt.Errorf("serve: predictor %q does not implement core.Stateful", fac.Name)
			}
			if err := st.LoadState(bytes.NewReader(snap.Shards[si].Preds[pi].State)); err != nil {
				return nil, fmt.Errorf("serve: shard %d predictor %q: %w", si, fac.Name, err)
			}
			preds[pi] = p
		}
		b.shards[si] = core.NewBank(preds...)
	}
	return b, nil
}

// Step applies one event to the owning shard's bank, tallying correct
// predictions exactly like the server's shard loop. Streams long enough
// to batch should go through StepBatch.
func (b *WarmBank) Step(pc, value uint64) {
	bank := b.shards[0]
	if len(b.shards) > 1 {
		bank = b.shards[ShardOf(pc, len(b.shards))]
	}
	b.one[0], b.one[1] = pc, value
	bank.StepBatch(b.one[:1], b.one[1:2])
	b.events++
}

// StepBatch replays a batch of events: each chunk is bucketed stably by
// owning shard (the transformation the server's dispatch applies) and
// fed to the per-shard banks through the shared batch path.
func (b *WarmBank) StepBatch(evs []Event) {
	nshards := len(b.shards)
	for off := 0; off < len(evs); off += warmChunk {
		chunk := evs[off:min(off+warmChunk, len(evs))]
		n := len(chunk)
		if cap(b.spcs) < n {
			b.spcs = make([]uint64, n)
			b.svals = make([]uint64, n)
		}
		pcs, vals := b.spcs[:n], b.svals[:n]
		if nshards == 1 {
			for j, ev := range chunk {
				pcs[j] = ev.PC
				vals[j] = ev.Value
			}
			b.shards[0].StepBatch(pcs, vals)
			b.events += uint64(n)
			continue
		}
		for i := range b.cnt {
			b.cnt[i] = 0
		}
		for _, ev := range chunk {
			b.cnt[ShardOf(ev.PC, nshards)]++
		}
		o := 0
		for i, c := range b.cnt {
			b.pos[i] = o
			o += c
		}
		for _, ev := range chunk {
			sh := ShardOf(ev.PC, nshards)
			pcs[b.pos[sh]] = ev.PC
			vals[b.pos[sh]] = ev.Value
			b.pos[sh]++
		}
		o = 0
		for i, c := range b.cnt {
			if c > 0 {
				b.shards[i].StepBatch(pcs[o:o+c], vals[o:o+c])
			}
			o += c
		}
		b.events += uint64(n)
	}
}

// Predictors returns the bank's predictor names in tally order.
func (b *WarmBank) Predictors() []string { return append([]string(nil), b.names...) }

// Correct returns the per-predictor correct tallies since construction.
func (b *WarmBank) Correct() []uint64 {
	out := make([]uint64, len(b.names))
	for _, bank := range b.shards {
		for i, c := range bank.Correct() {
			out[i] += c
		}
	}
	return out
}

// Events returns how many events have been stepped.
func (b *WarmBank) Events() uint64 { return b.events }
