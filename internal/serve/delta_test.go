package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/snapshot"
)

// checkpointFiles lists the checkpoint files (either generation) in dir.
func checkpointFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	for _, pat := range []string{"*" + snapshot.Ext, "*" + snapshot.DeltaExt} {
		m, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m...)
	}
	return out
}

// TestKillAndRestoreParityDeltaChain is the delta-checkpoint acceptance
// test: serve a stream in segments, cutting a full checkpoint then K
// deltas along the way, kill the server mid-chain, restore a new one by
// resolving full + deltas, and serve the remainder — the remainder's
// predictions must be bit-identical to an uninterrupted run, at several
// shard counts. Verified the same three ways as the v1 parity test:
// tallies, offline WarmBank replay, and final drained state bytes.
func TestKillAndRestoreParityDeltaChain(t *testing.T) {
	evs, _ := capturedStream(t)
	cut := len(evs) * 2 / 3
	const segs = 4 // one full + three deltas before the kill

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()

			// Uninterrupted reference run, final state checkpointed at exit.
			refFinalDir := t.TempDir()
			ref, err := New(Config{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Start("127.0.0.1:0", ""); err != nil {
				t.Fatal(err)
			}
			full := driveAll(t, ref, evs, 2)
			refFinal, err := ref.Shutdown(refFinalDir)
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted delta-mode run: drive in segments, checkpoint
			// after each, kill after the last.
			a, err := New(Config{Shards: shards, DeltaCheckpoints: true, FullEvery: 64})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Start("127.0.0.1:0", ""); err != nil {
				t.Fatal(err)
			}
			var prefixCorrect []uint64
			var infos []CheckpointInfo
			for si := 0; si < segs; si++ {
				lo, hi := cut*si/segs, cut*(si+1)/segs
				res := driveAll(t, a, evs[lo:hi], 2)
				if prefixCorrect == nil {
					prefixCorrect = make([]uint64, len(res.Correct))
				}
				for i, c := range res.Correct {
					prefixCorrect[i] += c
				}
				info, err := a.WriteCheckpoint(dir)
				if err != nil {
					t.Fatal(err)
				}
				infos = append(infos, info)
			}
			if infos[0].Kind != "full" || infos[0].Depth != 0 || infos[0].ParentID != "" {
				t.Fatalf("first checkpoint is not a chain root: %+v", infos[0])
			}
			for i := 1; i < segs; i++ {
				if infos[i].Kind != "delta" || infos[i].Depth != i || infos[i].ParentID != infos[i-1].ID {
					t.Fatalf("checkpoint %d does not extend the chain: %+v (parent %+v)", i, infos[i], infos[i-1])
				}
			}
			st := a.Stats()
			if st.Checkpoints.Full != 1 || st.Checkpoints.Deltas != segs-1 || st.Checkpoints.ChainDepth != segs-1 {
				t.Fatalf("stats checkpoint block = %+v", st.Checkpoints)
			}
			if err := a.Close(); err != nil { // the "kill": no graceful checkpoint
				t.Fatal(err)
			}

			// Restart from the newest checkpoint, resolving its chain.
			latest, err := snapshot.LatestAny(dir)
			if err != nil {
				t.Fatal(err)
			}
			if latest != infos[segs-1].Path {
				t.Fatalf("LatestAny = %s, want tip %s", latest, infos[segs-1].Path)
			}
			snap, chain, err := snapshot.ResolveChain(latest)
			if err != nil {
				t.Fatal(err)
			}
			if chain.Depth != segs-1 || len(chain.Files) != segs {
				t.Fatalf("chain depth %d over %d files, want %d over %d", chain.Depth, len(chain.Files), segs-1, segs)
			}
			if snap.Meta.Events != uint64(cut) {
				t.Fatalf("resolved chain carries %d events, want %d", snap.Meta.Events, cut)
			}
			b, err := New(Config{Shards: shards, DeltaCheckpoints: true, FullEvery: 64})
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Restore(snap); err != nil {
				t.Fatal(err)
			}
			if err := b.Start("127.0.0.1:0", ""); err != nil {
				t.Fatal(err)
			}
			suffix := driveAll(t, b, evs[cut:], 2)
			if suffix.ServerPriorEvents != uint64(cut) {
				t.Fatalf("restored server reported %d prior events, want %d", suffix.ServerPriorEvents, cut)
			}

			// 1. prefix + suffix must equal the uninterrupted tallies.
			for i, name := range full.Predictors {
				if got, want := prefixCorrect[i]+suffix.Correct[i], full.Correct[i]; got != want {
					t.Errorf("%s: interrupted %d correct, uninterrupted %d", name, got, want)
				}
			}

			// 2. The offline warm bank must reproduce the suffix exactly.
			warm, err := NewWarmBank(snap)
			if err != nil {
				t.Fatal(err)
			}
			warm.StepBatch(evs[cut:])
			if !reflect.DeepEqual(warm.Correct(), suffix.Correct) {
				t.Errorf("warm bank replay %v, restored server %v", warm.Correct(), suffix.Correct)
			}

			// 3. The restored server's final drained state must be
			// byte-identical to the uninterrupted server's. Both finals go
			// through ResolveChain, which reads either generation.
			bFinalDir := t.TempDir()
			bFinal, err := b.Shutdown(bFinalDir)
			if err != nil {
				t.Fatal(err)
			}
			refSnap, _, err := snapshot.ResolveChain(refFinal.Path)
			if err != nil {
				t.Fatal(err)
			}
			bSnap, _, err := snapshot.ResolveChain(bFinal.Path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refSnap.Shards, bSnap.Shards) {
				t.Error("final predictor state differs between interrupted and uninterrupted runs")
			}
			if refSnap.Meta.Events != bSnap.Meta.Events || bSnap.Meta.Events != uint64(len(evs)) {
				t.Errorf("final events %d vs %d, want %d", refSnap.Meta.Events, bSnap.Meta.Events, len(evs))
			}
		})
	}
}

// TestDeltaCheckpointCleanChunkSkip pins the mechanism the format exists
// for: after a full checkpoint, traffic touching a single PC must yield
// a delta that stores only the few dirty chunks inline, dedups the rest
// to references, resolves bit-identically to a forced full cut of the
// same state, and is swept (with its root) once that full lands.
func TestDeltaCheckpointCleanChunkSkip(t *testing.T) {
	evs, _ := capturedStream(t)
	dir := t.TempDir()
	s, err := New(Config{Shards: 2, DeltaCheckpoints: true, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	driveAll(t, s, evs, 2)
	fullInfo, err := s.WriteCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fullInfo.Kind != "full" {
		t.Fatalf("first checkpoint kind %q", fullInfo.Kind)
	}

	// Touch exactly one PC: at most one chunk per predictor dirties on
	// its owning shard, everything else must skip clean.
	hot := make([]Event, 0, 256)
	for _, ev := range evs {
		if ev.PC == evs[0].PC {
			hot = append(hot, ev)
		}
		if len(hot) == 256 {
			break
		}
	}
	driveAll(t, s, hot, 1)
	deltaInfo, err := s.WriteCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if deltaInfo.Kind != "delta" || deltaInfo.ParentID != fullInfo.ID || deltaInfo.Depth != 1 {
		t.Fatalf("second checkpoint did not chain: %+v", deltaInfo)
	}
	if deltaInfo.ChunksDeduped == 0 {
		t.Fatal("single-PC delta deduped no chunks")
	}
	if deltaInfo.ChunksWritten >= fullInfo.ChunksWritten {
		t.Fatalf("delta wrote %d chunks inline, full wrote %d", deltaInfo.ChunksWritten, fullInfo.ChunksWritten)
	}
	fullSize := fileSize(t, fullInfo.Path)
	deltaSize := fileSize(t, deltaInfo.Path)
	if deltaSize >= fullSize {
		t.Fatalf("delta file %d bytes, full %d", deltaSize, fullSize)
	}

	// Resolve the chain now — the forced full below sweeps it away.
	chainSnap, chain, err := snapshot.ResolveChain(deltaInfo.Path)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Depth != 1 || len(chain.Files) != 2 {
		t.Fatalf("chain = %+v", chain)
	}

	// A forced full of the identical state must materialize the exact
	// same bytes the chain resolves to.
	forced, err := s.WriteFullCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Kind != "full" || forced.Depth != 0 {
		t.Fatalf("forced checkpoint = %+v", forced)
	}
	forcedSnap, _, err := snapshot.ResolveChain(forced.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(chainSnap.Shards, forcedSnap.Shards) {
		t.Error("chain-resolved state differs from a forced full cut of the same state")
	}
	if chainSnap.Meta.Events != forcedSnap.Meta.Events {
		t.Errorf("events %d vs %d", chainSnap.Meta.Events, forcedSnap.Meta.Events)
	}

	// The full superseded the old chain: GC must leave only the new root.
	files := checkpointFiles(t, dir)
	if len(files) != 1 || files[0] != forced.Path {
		t.Fatalf("after full, dir holds %v, want only %s", files, forced.Path)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
