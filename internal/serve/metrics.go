package serve

import (
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/predstat"
)

// Stage-event kinds the server records into its obs ring; dumped by
// GET /events.
const (
	evCheckpointCut     = "checkpoint_cut"
	evCheckpointWritten = "checkpoint_written"
	evCheckpointError   = "checkpoint_error"
	evRestore           = "restore"
	evDrain             = "shutdown_drain"
	evSlowBatch         = "slow_batch"
)

// slowBatchNs is the shard-batch duration past which the shard loop
// records a slow_batch stage event (the ring is for anomalies, not the
// steady state).
const slowBatchNs = int64(50 * time.Millisecond)

// ewmaAlpha weights each batch's hit rate into the per-predictor
// exponentially-weighted moving average — the online predictability
// signal exported per (shard, predictor). ~0.02 ≈ a ~50-batch horizon.
const ewmaAlpha = 0.02

// shardMetrics is one shard's metric cells. Every field is written by
// exactly one goroutine (the shard loop, or the monitor for the
// high-water mark), so hot-path updates are uncontended stores on
// shard-private cache lines; scrapes aggregate across shards.
type shardMetrics struct {
	events       *obs.Counter   // vp_shard_events_total{shard}
	batches      *obs.Counter   // vp_shard_batches_total{shard}
	batchEvents  *obs.Histogram // vp_batch_events (merged across shards)
	batchNs      *obs.Histogram // vp_batch_ns (merged across shards)
	batchPCRuns  *obs.Histogram // vp_batch_pc_runs (merged across shards)
	mailboxDepth *obs.Gauge     // vp_shard_mailbox_depth{shard}
	mailboxHW    *obs.Gauge     // vp_shard_mailbox_highwater{shard}
	uniquePCs    *obs.Gauge     // vp_shard_unique_pcs{shard}
	predHits     []*obs.Counter // vp_pred_hits_total{shard,pred}
	predEvents   []*obs.Counter // vp_pred_events_total{shard,pred}
	predEWMA     []*obs.FloatGauge
}

// serverMetrics owns the server's registry and every instrument the
// serving layers write. All series are registered up front, at
// construction, so the hot path never touches the registry lock and a
// scrape always exposes the full schema (zero-valued until traffic).
type serverMetrics struct {
	reg *obs.Registry

	events     *obs.Counter // vp_events_total
	connsOpen  *obs.Gauge   // vp_conn_open
	connsTotal *obs.Counter // vp_conn_accepted_total

	framesIn     *obs.Counter // vp_conn_frames_in_total
	framesOut    *obs.Counter // vp_conn_frames_out_total
	bytesIn      *obs.Counter // vp_conn_bytes_in_total
	bytesOut     *obs.Counter // vp_conn_bytes_out_total
	decodeErrors *obs.Counter // vp_conn_decode_errors_total
	pipelineHW   *obs.Gauge   // vp_conn_pipeline_highwater

	// requestNs is whole-request latency (events frame decoded → result
	// ready): the distribution the adaptive trace slow threshold tracks.
	// Multi-writer (every conn writer observes into it); obs.Histogram is
	// atomic, so that is safe and allocation-free.
	requestNs *obs.Histogram // vp_request_ns

	ckptTotal         map[string]*obs.Counter // vp_checkpoint_total{kind}
	ckptErrors        *obs.Counter            // vp_checkpoint_errors_total
	ckptCutNs         *obs.Histogram          // vp_checkpoint_cut_ns (markers mailed -> all shard states gathered)
	ckptEncodeNs      *obs.Histogram          // vp_checkpoint_encode_ns (atomic file write)
	ckptBytes         map[string]*obs.Counter // vp_checkpoint_bytes_total{kind}
	ckptLastBytes     *obs.Gauge              // vp_checkpoint_last_bytes
	ckptLastUnix      *obs.Gauge              // vp_checkpoint_last_unixnano
	ckptChunksWritten *obs.Counter            // vp_checkpoint_chunks_written_total
	ckptChunksDeduped *obs.Counter            // vp_checkpoint_chunks_deduped_total
	ckptDedupRatio    *obs.FloatGauge         // vp_checkpoint_dedupe_ratio
	ckptChainDepth    *obs.Gauge              // vp_checkpoint_chain_depth
	restoreTotal      *obs.Counter            // vp_restore_total
	restoredEvents    *obs.Gauge              // vp_restored_events

	// Predictability families, rebuilt from the shard trackers by an
	// OnScrape hook (scrape-derived, not hot-path-written).
	pcEntropy      *obs.Histogram        // vp_pc_entropy_bits (millibits)
	seqclassEvents map[string]*obs.Gauge // vp_seqclass_events{class}
	predCeilingGap []*obs.FloatGauge     // vp_pred_ceiling_gap{pred}

	shards []*shardMetrics
}

func newServerMetrics(start time.Time, nshards int, predNames []string) *serverMetrics {
	r := obs.NewRegistry()
	// Runtime telemetry (vp_go_*) rides the same scrape so /metrics shows
	// GC pauses and scheduler latency next to the request-path families.
	obs.RegisterGoRuntime(r)
	m := &serverMetrics{
		reg:        r,
		events:     r.Counter("vp_events_total", "events dispatched to shards over the server's lifetime"),
		connsOpen:  r.Gauge("vp_conn_open", "currently open binary-protocol connections"),
		connsTotal: r.Counter("vp_conn_accepted_total", "binary-protocol connections accepted"),

		framesIn:     r.Counter("vp_conn_frames_in_total", "protocol frames received"),
		framesOut:    r.Counter("vp_conn_frames_out_total", "protocol frames sent"),
		bytesIn:      r.Counter("vp_conn_bytes_in_total", "protocol bytes received (incl. length prefixes)"),
		bytesOut:     r.Counter("vp_conn_bytes_out_total", "protocol bytes sent (incl. length prefixes)"),
		decodeErrors: r.Counter("vp_conn_decode_errors_total", "frames rejected as malformed"),
		pipelineHW:   r.Gauge("vp_conn_pipeline_highwater", "deepest per-connection response pipeline observed"),

		requestNs: r.Histogram("vp_request_ns", "ns per request, frame decoded to result ready (all shards joined)"),

		ckptTotal: map[string]*obs.Counter{
			"full":  r.Counter("vp_checkpoint_total", "checkpoints written", "kind", "full"),
			"delta": r.Counter("vp_checkpoint_total", "checkpoints written", "kind", "delta"),
		},
		ckptErrors:   r.Counter("vp_checkpoint_errors_total", "checkpoint attempts that failed"),
		ckptCutNs:    r.Histogram("vp_checkpoint_cut_ns", "ns from mailing cut markers to gathering every shard's state"),
		ckptEncodeNs: r.Histogram("vp_checkpoint_encode_ns", "ns encoding and atomically writing a checkpoint file"),
		ckptBytes: map[string]*obs.Counter{
			"full":  r.Counter("vp_checkpoint_bytes_total", "checkpoint bytes written", "kind", "full"),
			"delta": r.Counter("vp_checkpoint_bytes_total", "checkpoint bytes written", "kind", "delta"),
		},
		ckptLastBytes: r.Gauge("vp_checkpoint_last_bytes", "size of the most recent checkpoint"),
		ckptLastUnix:  r.Gauge("vp_checkpoint_last_unixnano", "wall time of the most recent checkpoint"),
		ckptChunksWritten: r.Counter("vp_checkpoint_chunks_written_total",
			"state chunks stored inline in delta-mode checkpoints"),
		ckptChunksDeduped: r.Counter("vp_checkpoint_chunks_deduped_total",
			"state chunks stored as content-hash references (clean-skipped or dedup hits)"),
		ckptDedupRatio: r.FloatGauge("vp_checkpoint_dedupe_ratio",
			"deduped fraction of the most recent checkpoint's chunks"),
		ckptChainDepth: r.Gauge("vp_checkpoint_chain_depth",
			"delta links past the live chain's full root (0 right after a full)"),
		restoreTotal:   r.Counter("vp_restore_total", "warm restores performed"),
		restoredEvents: r.Gauge("vp_restored_events", "events of prior learning in the restored snapshot"),

		shards: make([]*shardMetrics, nshards),
	}
	r.GaugeFunc("vp_uptime_seconds", "seconds since the server was built", func() float64 {
		return time.Since(start).Seconds()
	})
	m.pcEntropy = r.Histogram("vp_pc_entropy_bits",
		"per-PC conditional entropy rate in millibits/value (order-k ceiling estimate), rebuilt each scrape")
	m.seqclassEvents = make(map[string]*obs.Gauge, len(predstat.ClassLabels))
	for _, cls := range predstat.ClassLabels {
		m.seqclassEvents[cls] = r.Gauge("vp_seqclass_events",
			"events at PCs whose trailing window carries this sequence class", "class", cls)
	}
	m.predCeilingGap = make([]*obs.FloatGauge, len(predNames))
	for pi, name := range predNames {
		m.predCeilingGap[pi] = r.FloatGauge("vp_pred_ceiling_gap",
			"events-weighted gap between each predictor's class ceiling and its realized hit rate", "pred", name)
	}
	for i := range m.shards {
		sid := strconv.Itoa(i)
		sm := &shardMetrics{
			events:  r.Counter("vp_shard_events_total", "events applied, per shard", "shard", sid),
			batches: r.Counter("vp_shard_batches_total", "request sub-batches applied, per shard", "shard", sid),
			// One histogram cell per shard under a shared name: each stays
			// single-writer on the hot path, scrapes merge them.
			batchEvents:  r.Histogram("vp_batch_events", "events per applied shard sub-batch"),
			batchNs:      r.Histogram("vp_batch_ns", "ns per shard predict+update batch (core.Bank step)"),
			batchPCRuns:  r.Histogram("vp_batch_pc_runs", "distinct same-PC runs per applied sub-batch (arrival order)"),
			mailboxDepth: r.Gauge("vp_shard_mailbox_depth", "queued mailbox entries, per shard", "shard", sid),
			mailboxHW:    r.Gauge("vp_shard_mailbox_highwater", "deepest mailbox observed, per shard", "shard", sid),
			uniquePCs:    r.Gauge("vp_shard_unique_pcs", "distinct PCs seen, per shard", "shard", sid),
			predHits:     make([]*obs.Counter, len(predNames)),
			predEvents:   make([]*obs.Counter, len(predNames)),
			predEWMA:     make([]*obs.FloatGauge, len(predNames)),
		}
		for pi, name := range predNames {
			sm.predHits[pi] = r.Counter("vp_pred_hits_total", "correct predictions, per shard and predictor", "shard", sid, "pred", name)
			sm.predEvents[pi] = r.Counter("vp_pred_events_total", "predicted events, per shard and predictor", "shard", sid, "pred", name)
			sm.predEWMA[pi] = r.FloatGauge("vp_pred_hit_rate_ewma", "per-batch hit-rate EWMA (online predictability signal), per shard and predictor", "shard", sid, "pred", name)
		}
		m.shards[i] = sm
	}
	return m
}

// batchLatency merges every shard's predict+update latency histogram —
// the end-of-run summary vpserve prints at shutdown.
func (m *serverMetrics) batchLatency() obs.HistSnap {
	var s obs.HistSnap
	for _, sm := range m.shards {
		sm.batchNs.AddTo(&s)
	}
	return s
}

// healthState backs the degraded-status logic of GET /healthz.
type healthState struct {
	// cutStart is the UnixNano at which an in-flight checkpoint cut
	// began, 0 when none is running. A cut pending past the configured
	// deadline marks the server degraded.
	cutStart atomic.Int64
	// sat[i] counts consecutive monitor ticks during which shard i's
	// mailbox sat at capacity; saturation sustained for the configured
	// number of intervals marks the server degraded.
	sat []atomic.Int64
}

func newHealthState(nshards int) *healthState {
	return &healthState{sat: make([]atomic.Int64, nshards)}
}
