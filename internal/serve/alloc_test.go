package serve

import (
	"testing"
)

// TestClientSteadyStateZeroAlloc pins the client-side half of the
// serving hot path (the ROADMAP's "client-side (driver) buffer pooling"
// item): once the send scratch, receive scratch and result buffers have
// grown to the workload's batch size, a synchronous send → flush →
// receive round trip allocates nothing on the client goroutine. The
// server side's steady state is covered separately (its pending/event
// buffers are pooled); AllocsPerRun only counts the calling goroutine.
func TestClientSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	s, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const batch = 512
	evs := make([]Event, batch)
	fill := func(base int) {
		for j := range evs {
			evs[j] = Event{PC: uint64((base + j) % 64 * 4), Value: uint64((base + j) % 7)}
		}
	}
	var res BatchResult
	roundTrip := func(base int) {
		fill(base)
		if err := c.Send(evs); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := c.RecvInto(&res); err != nil {
			t.Fatal(err)
		}
		if res.Events != batch {
			t.Fatalf("server tallied %d events, want %d", res.Events, batch)
		}
	}
	for i := 0; i < 8; i++ { // warm client scratch and server tables
		roundTrip(i * batch)
	}
	i := 8
	allocs := testing.AllocsPerRun(50, func() {
		roundTrip(i * batch)
		i++
	})
	if allocs != 0 {
		t.Fatalf("client round trip allocates %.1f allocs in steady state", allocs)
	}
}
