package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/snapshot"
)

func mustFactories(t *testing.T, spec string) []core.NamedFactory {
	t.Helper()
	facs, err := core.ParseFactories(spec)
	if err != nil {
		t.Fatal(err)
	}
	return facs
}

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// driveAll pushes evs through the server and returns per-predictor
// correct tallies for exactly that stream.
func driveAll(t *testing.T, s *Server, evs []Event, clients int) *DriveResult {
	t.Helper()
	res, err := DriveEvents(evs, DriveConfig{Addr: s.Addr().String(), Clients: clients, BatchSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != uint64(len(evs)) {
		t.Fatalf("drove %d of %d events", res.Events, len(evs))
	}
	return res
}

// TestKillAndRestoreParity is the subsystem's acceptance test: serve a
// stream prefix, checkpoint, kill the server, restore a new one from the
// checkpoint file and serve the remainder — the remainder's predictions
// must be bit-identical to an uninterrupted run, at several shard
// counts. Verified three ways: per-predictor tallies against the
// uninterrupted server, against an offline WarmBank replay of the
// remainder, and by comparing the final drained state of both servers
// byte-for-byte.
func TestKillAndRestoreParity(t *testing.T) {
	evs, _ := capturedStream(t)
	cut := len(evs) * 2 / 3

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			finalDir := t.TempDir()

			// Uninterrupted reference run, final state checkpointed at exit.
			ref, err := New(Config{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Start("127.0.0.1:0", ""); err != nil {
				t.Fatal(err)
			}
			full := driveAll(t, ref, evs, 2)
			refFinal, err := ref.Shutdown(finalDir)
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted run: prefix, checkpoint, kill.
			a, err := New(Config{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Start("127.0.0.1:0", ""); err != nil {
				t.Fatal(err)
			}
			prefix := driveAll(t, a, evs[:cut], 2)
			ck, err := a.WriteCheckpoint(dir)
			if err != nil {
				t.Fatal(err)
			}
			if ck.Events != uint64(cut) || ck.Shards != shards {
				t.Fatalf("checkpoint = %+v, want %d events over %d shards", ck, cut, shards)
			}
			if err := a.Close(); err != nil { // the "kill": no graceful checkpoint
				t.Fatal(err)
			}

			// Restart from the latest checkpoint in dir.
			latest, err := snapshot.Latest(dir)
			if err != nil {
				t.Fatal(err)
			}
			if latest != ck.Path {
				t.Fatalf("Latest = %s, want %s", latest, ck.Path)
			}
			snap, err := snapshot.ReadFile(latest)
			if err != nil {
				t.Fatal(err)
			}
			b, err := New(Config{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Restore(snap); err != nil {
				t.Fatal(err)
			}
			if err := b.Start("127.0.0.1:0", ""); err != nil {
				t.Fatal(err)
			}
			suffix := driveAll(t, b, evs[cut:], 2)
			if suffix.ServerPriorEvents != uint64(cut) {
				t.Fatalf("restored server reported %d prior events, want %d", suffix.ServerPriorEvents, cut)
			}

			// 1. prefix + suffix must equal the uninterrupted tallies.
			for i, name := range full.Predictors {
				if got, want := prefix.Correct[i]+suffix.Correct[i], full.Correct[i]; got != want {
					t.Errorf("%s: interrupted %d correct, uninterrupted %d", name, got, want)
				}
			}

			// 2. The offline warm bank must reproduce the suffix exactly.
			warm, err := NewWarmBank(snap)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range evs[cut:] {
				warm.Step(ev.PC, ev.Value)
			}
			if !reflect.DeepEqual(warm.Correct(), suffix.Correct) {
				t.Errorf("warm bank replay %v, restored server %v", warm.Correct(), suffix.Correct)
			}

			// 3. The restored server's final drained state must be
			// byte-identical to the uninterrupted server's.
			bFinal, err := b.Shutdown(finalDir)
			if err != nil {
				t.Fatal(err)
			}
			refSnap, err := snapshot.ReadFile(refFinal.Path)
			if err != nil {
				t.Fatal(err)
			}
			bSnap, err := snapshot.ReadFile(bFinal.Path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refSnap.Shards, bSnap.Shards) {
				t.Error("final predictor state differs between interrupted and uninterrupted runs")
			}
			if refSnap.Meta.Events != bSnap.Meta.Events || bSnap.Meta.Events != uint64(len(evs)) {
				t.Errorf("final events %d vs %d, want %d", refSnap.Meta.Events, bSnap.Meta.Events, len(evs))
			}
		})
	}
}

// TestCheckpointUnderLiveTraffic races checkpoints against an active
// drive: every checkpoint must be internally consistent (its own shard
// events sum to its header) and the drive's tallies must stay exact.
func TestCheckpointUnderLiveTraffic(t *testing.T) {
	evs, _ := capturedStream(t)
	_, want := offlineReplay(t, "l,s2,fcm1,fcm2,fcm3", evs)
	dir := t.TempDir()
	s, err := New(Config{Shards: 4, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	done := make(chan *DriveResult, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := DriveEvents(evs, DriveConfig{Addr: s.Addr().String(), Clients: 4, BatchSize: 256})
		errc <- err
		done <- res
	}()
	var infos []CheckpointInfo
	for i := 0; i < 8; i++ {
		info, err := s.WriteCheckpoint(dir)
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, info)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	res := <-done
	for i, name := range res.Predictors {
		if res.Correct[i] != want[i] {
			t.Errorf("%s: drive tallied %d, offline replay %d (checkpointing perturbed serving)", name, res.Correct[i], want[i])
		}
	}
	// Every mid-stream checkpoint must decode cleanly and restore into a
	// working warm bank.
	for _, info := range infos {
		snap, err := snapshot.ReadFile(info.Path)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Meta.Events != info.Events {
			t.Fatalf("checkpoint %s header %d events, info says %d", info.ID, snap.Meta.Events, info.Events)
		}
		if _, err := NewWarmBank(snap); err != nil {
			t.Fatalf("checkpoint %s does not restore: %v", info.ID, err)
		}
	}
}

// TestRestoreValidation: a snapshot must only restore into a server with
// the identical shard layout and predictor bank.
func TestRestoreValidation(t *testing.T) {
	evs, _ := capturedStream(t)
	dir := t.TempDir()
	s, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	driveAll(t, s, evs[:5000], 1)
	ck, err := s.WriteCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	snap, err := snapshot.ReadFile(ck.Path)
	if err != nil {
		t.Fatal(err)
	}

	wrongShards, _ := New(Config{Shards: 3})
	if err := wrongShards.Restore(snap); err == nil {
		t.Fatal("restore into mismatched shard count accepted")
	}
	wrongBank, _ := New(Config{Shards: 2, Predictors: mustFactories(t, "l,s2")})
	if err := wrongBank.Restore(snap); err == nil {
		t.Fatal("restore into mismatched predictor bank accepted")
	}
	started := startTestServer(t, 2, "")
	if err := started.Restore(snap); err == nil {
		t.Fatal("restore into a started server accepted")
	}
}

// TestStatsReportsRestoreProvenance: /stats must expose state size and,
// after a restore, the snapshot ID and restore timestamp, so a driver
// can tell warm-from-snapshot apart from warm-from-traffic.
func TestStatsReportsRestoreProvenance(t *testing.T) {
	evs, _ := capturedStream(t)
	dir := t.TempDir()
	s, err := New(Config{Shards: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	driveAll(t, s, evs[:8000], 1)

	cold := s.Stats()
	if cold.RestoredSnapshotID != "" || cold.RestoredAt != "" {
		t.Fatalf("cold server claims restore provenance: %+v", cold)
	}
	if cold.StartedAt == "" || cold.ApproxStateBytes <= 0 {
		t.Fatalf("missing started_at or state size: %+v", cold)
	}
	for _, st := range cold.PerShard {
		if st.ApproxStateBytes <= 0 {
			t.Fatalf("shard %d reports no resident state", st.Shard)
		}
	}

	// Trigger the checkpoint over HTTP.
	resp, err := http.Post("http://"+s.HTTPAddr().String()+"/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /snapshot = %d", resp.StatusCode)
	}
	var ck CheckpointInfo
	if err := jsonDecode(resp.Body, &ck); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ck.Events != 8000 {
		t.Fatalf("HTTP checkpoint captured %d events, want 8000", ck.Events)
	}
	s.Close()

	snap, err := snapshot.ReadFile(ck.Path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := r.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	warm := r.Stats()
	if warm.RestoredSnapshotID != snap.Meta.ID || warm.RestoredAt == "" {
		t.Fatalf("restored server stats missing provenance: %+v", warm)
	}
	if warm.Events != 8000 {
		t.Fatalf("restored server reports %d events, want 8000", warm.Events)
	}
}

// TestHTTPSnapshotWithoutDir: the trigger must refuse cleanly when no
// checkpoint directory is configured.
func TestHTTPSnapshotWithoutDir(t *testing.T) {
	s := startTestServer(t, 1, "127.0.0.1:0")
	resp, err := http.Post("http://"+s.HTTPAddr().String()+"/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /snapshot without dir = %d, want %d", resp.StatusCode, http.StatusConflict)
	}
}
