package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	otrace "repro/internal/obs/trace"
)

// Wire protocol: every message is a length-prefixed frame — a little-endian
// uint32 payload length followed by the payload, whose first byte is the
// message type.
//
//	server → client on connect:   hello   (version, shard count, predictor names)
//	client → server, repeated:    events  (count, count × (uvarint pc, uvarint value))
//	client → server, repeated:    eventsT (trace id, span id, flags, then the events body)
//	server → client, in order:    result  (count, per-predictor correct counts)
//	server → client on error:     error   (message), then the connection closes
//
// Requests may be pipelined: the client can send any number of events
// frames before reading results; the server answers strictly in request
// order. A client that is done sending half-closes the write side; the
// server flushes the remaining results and closes.
//
// Version history:
//
//	v1: hello / events / result / error.
//	v2: adds eventsT — an events frame prefixed by a 17-byte trace
//	    header (8-byte LE trace id, 8-byte LE span id, 1 flags byte).
//	    v1 frames remain valid and are served as untraced; v1 clients
//	    reject a v2 hello, which is the intended "upgrade me" signal.
const (
	protoVersion = 2

	msgHello        = 1
	msgEvents       = 2
	msgResult       = 3
	msgError        = 4
	msgEventsTraced = 5

	// traceHeaderLen is the fixed eventsT prefix after the type byte:
	// trace id + span id + flags.
	traceHeaderLen = 8 + 8 + 1

	// maxFrame bounds a single frame payload (64 MiB) so a corrupt or
	// hostile length prefix cannot trigger an absurd allocation.
	maxFrame = 1 << 26
)

// writeFrame emits one length-prefixed frame. Oversized payloads are
// rejected locally — the peer would refuse them anyway, and payloads past
// 4 GiB would silently wrap the uint32 length prefix. The prefix goes
// byte-wise into the bufio buffer: a stack [4]byte would escape into the
// writer's interface call and put one allocation on every frame.
func writeFrame(w *bufio.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("serve: frame payload %d bytes exceeds limit %d (use a smaller batch)", len(payload), maxFrame)
	}
	n := uint32(len(payload))
	for shift := 0; shift < 32; shift += 8 {
		if err := w.WriteByte(byte(n >> shift)); err != nil {
			return err
		}
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into buf (grown as needed) and returns the
// payload. A clean io.EOF before the length prefix means the peer is done.
// The prefix is peeked out of the bufio buffer rather than ReadFull'd
// into a scratch array, for the same no-allocation reason as writeFrame.
func readFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	hdr, err := r.Peek(4)
	if err != nil {
		// Match io.ReadFull's contract: a clean EOF before the prefix
		// passes through, EOF mid-prefix is ErrUnexpectedEOF, and any
		// real transport error (reset, timeout) propagates verbatim.
		if errors.Is(err, io.EOF) && len(hdr) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	r.Discard(4)
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("serve: bad frame length %d", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// appendHello encodes the connect-time greeting: shard count, the
// server's lifetime event count at this instant (so clients can tell a
// fresh server from a warm one), and the predictor bank.
func appendHello(buf []byte, shards int, priorEvents uint64, preds []string) []byte {
	buf = append(buf, msgHello, protoVersion)
	buf = binary.AppendUvarint(buf, uint64(shards))
	buf = binary.AppendUvarint(buf, priorEvents)
	buf = binary.AppendUvarint(buf, uint64(len(preds)))
	for _, p := range preds {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// decodeHello parses a hello payload (after the type byte).
func decodeHello(p []byte) (shards int, priorEvents uint64, preds []string, err error) {
	if len(p) < 1 {
		return 0, 0, nil, io.ErrUnexpectedEOF
	}
	// v1 servers are still speakable-to: they just never see traced
	// frames, because a client keys SendTraced availability off this.
	if p[0] != 1 && p[0] != protoVersion {
		return 0, 0, nil, fmt.Errorf("serve: protocol version %d, want 1..%d", p[0], protoVersion)
	}
	p = p[1:]
	ns, p, err := uvarint(p)
	if err != nil {
		return 0, 0, nil, err
	}
	priorEvents, p, err = uvarint(p)
	if err != nil {
		return 0, 0, nil, err
	}
	np, p, err := uvarint(p)
	if err != nil {
		return 0, 0, nil, err
	}
	if np > 1024 {
		return 0, 0, nil, fmt.Errorf("serve: unreasonable predictor count %d", np)
	}
	preds = make([]string, np)
	for i := range preds {
		var n uint64
		n, p, err = uvarint(p)
		if err != nil {
			return 0, 0, nil, err
		}
		if uint64(len(p)) < n {
			return 0, 0, nil, io.ErrUnexpectedEOF
		}
		preds[i] = string(p[:n])
		p = p[n:]
	}
	return int(ns), priorEvents, preds, nil
}

func appendEvents(buf []byte, evs []Event) []byte {
	buf = append(buf, msgEvents)
	buf = binary.AppendUvarint(buf, uint64(len(evs)))
	for _, ev := range evs {
		buf = binary.AppendUvarint(buf, ev.PC)
		buf = binary.AppendUvarint(buf, ev.Value)
	}
	return buf
}

// decodeEventsInto parses an events payload (after the type byte) into
// dst's backing array, growing it only when the batch outsizes every
// previous one — the connection reader's steady state decodes with zero
// allocation. The result is scratch: callers that need the events beyond
// the next decode must copy them (dispatch copies into a pooled
// request-owned buffer for the shards).
func decodeEventsInto(p []byte, dst []Event) ([]Event, error) {
	n, p, err := uvarint(p)
	if err != nil {
		return nil, err
	}
	// Each event takes at least two bytes on the wire, so a count claiming
	// more than len(p)/2 events is corrupt — reject it before allocating.
	if n > uint64(len(p)/2) {
		return nil, fmt.Errorf("serve: event count %d exceeds frame capacity", n)
	}
	if uint64(cap(dst)) < n {
		dst = make([]Event, n)
	}
	evs := dst[:n]
	for i := range evs {
		evs[i].PC, p, err = uvarint(p)
		if err != nil {
			return nil, err
		}
		evs[i].Value, p, err = uvarint(p)
		if err != nil {
			return nil, err
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("serve: %d trailing bytes in events frame", len(p))
	}
	return evs, nil
}

// decodeEvents is decodeEventsInto with a fresh destination.
func decodeEvents(p []byte) ([]Event, error) {
	return decodeEventsInto(p, nil)
}

// appendEventsTraced encodes a v2 traced events frame: the fixed trace
// header, then the same body appendEvents produces.
func appendEventsTraced(buf []byte, evs []Event, ctx otrace.Context) []byte {
	buf = append(buf, msgEventsTraced)
	buf = binary.LittleEndian.AppendUint64(buf, ctx.TraceID)
	buf = binary.LittleEndian.AppendUint64(buf, ctx.SpanID)
	buf = append(buf, ctx.Flags)
	buf = binary.AppendUvarint(buf, uint64(len(evs)))
	for _, ev := range evs {
		buf = binary.AppendUvarint(buf, ev.PC)
		buf = binary.AppendUvarint(buf, ev.Value)
	}
	return buf
}

// decodeTraceHeader splits an eventsT payload (after the type byte) into
// its trace context and the events body that follows.
func decodeTraceHeader(p []byte) (otrace.Context, []byte, error) {
	if len(p) < traceHeaderLen {
		return otrace.Context{}, nil, io.ErrUnexpectedEOF
	}
	ctx := otrace.Context{
		TraceID: binary.LittleEndian.Uint64(p),
		SpanID:  binary.LittleEndian.Uint64(p[8:]),
		Flags:   p[16],
	}
	return ctx, p[traceHeaderLen:], nil
}

func appendResult(buf []byte, events uint64, correct []uint64) []byte {
	buf = append(buf, msgResult)
	buf = binary.AppendUvarint(buf, events)
	for _, c := range correct {
		buf = binary.AppendUvarint(buf, c)
	}
	return buf
}

// decodeResult parses a result payload (after the type byte) for a server
// configured with npred predictors.
func decodeResult(p []byte, npred int) (events uint64, correct []uint64, err error) {
	correct = make([]uint64, npred)
	events, err = decodeResultInto(p, correct)
	if err != nil {
		return 0, nil, err
	}
	return events, correct, nil
}

// decodeResultInto is decodeResult into a caller-owned correct slice
// (len(correct) fixes the expected predictor count), the allocation-free
// steady state of the client's receive path.
func decodeResultInto(p []byte, correct []uint64) (events uint64, err error) {
	events, p, err = uvarint(p)
	if err != nil {
		return 0, err
	}
	for i := range correct {
		correct[i], p, err = uvarint(p)
		if err != nil {
			return 0, err
		}
	}
	if len(p) != 0 {
		return 0, fmt.Errorf("serve: %d trailing bytes in result frame", len(p))
	}
	return events, nil
}

func appendError(buf []byte, msg string) []byte {
	buf = append(buf, msgError)
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	return append(buf, msg...)
}

func decodeError(p []byte) string {
	n, p, err := uvarint(p)
	if err != nil || uint64(len(p)) < n {
		return "malformed error frame"
	}
	return string(p[:n])
}

// uvarint decodes one varint from p, returning the remainder.
func uvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	return v, p[n:], nil
}
