package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/predstat"
)

// TestEventsEndpointQueryParams pins the /events query surface: ?kind=
// filters by event kind, ?n= keeps only the most recent N (oldest first),
// and a malformed n is a 400.
func TestEventsEndpointQueryParams(t *testing.T) {
	evs, _ := capturedStream(t)
	s := startObsServer(t, 2, t.TempDir())
	if _, err := DriveEvents(evs[:2000], DriveConfig{Addr: s.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	// Two checkpoints give at least two cut and two written events.
	for i := 0; i < 2; i++ {
		if _, err := s.WriteCheckpoint(s.cfg.CheckpointDir); err != nil {
			t.Fatal(err)
		}
	}
	base := "http://" + s.HTTPAddr().String() + "/events"
	get := func(url string) (uint64, []obs.StageEvent) {
		t.Helper()
		code, body := httpGet(t, url)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", url, code, body)
		}
		var out struct {
			Total  uint64           `json:"total"`
			Events []obs.StageEvent `json:"events"`
		}
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("GET %s not valid JSON: %v", url, err)
		}
		return out.Total, out.Events
	}

	_, all := get(base)
	if len(all) < 4 {
		t.Fatalf("expected at least 4 ring events, got %d", len(all))
	}
	_, cuts := get(base + "?kind=" + evCheckpointCut)
	if len(cuts) != 2 {
		t.Fatalf("?kind=%s returned %d events, want 2", evCheckpointCut, len(cuts))
	}
	for _, ev := range cuts {
		if ev.Kind != evCheckpointCut {
			t.Fatalf("filter leaked kind %q", ev.Kind)
		}
	}
	_, last := get(base + "?n=1")
	if len(last) != 1 {
		t.Fatalf("?n=1 returned %d events", len(last))
	}
	if want := all[len(all)-1]; last[0].Kind != want.Kind || last[0].TimeUnixNano != want.TimeUnixNano {
		t.Fatalf("?n=1 returned %+v, want most recent %+v", last[0], want)
	}
	// Combined: most recent single checkpoint_written event.
	_, comb := get(base + "?kind=" + evCheckpointWritten + "&n=1")
	if len(comb) != 1 || comb[0].Kind != evCheckpointWritten {
		t.Fatalf("combined filter returned %+v", comb)
	}
	// ?n=0 is valid and empties the list; garbage is a 400.
	if _, none := get(base + "?n=0"); len(none) != 0 {
		t.Fatal("?n=0 should return no events")
	}
	if code, _ := httpGet(t, base+"?n=-3"); code != http.StatusBadRequest {
		t.Fatalf("?n=-3: status %d, want 400", code)
	}
	if code, _ := httpGet(t, base+"?n=abc"); code != http.StatusBadRequest {
		t.Fatalf("?n=abc: status %d, want 400", code)
	}
}

// predictabilityBody mirrors the /predictability JSON envelope.
type predictabilityBody struct {
	Enabled bool            `json:"enabled"`
	Report  predstat.Report `json:"report"`
}

// TestPredictabilityEndpoint drives real traffic through a sharded server
// and checks the merged report: full event coverage, per-class tallies
// that add up, ranked PCs with sane ceilings, and per-predictor gaps.
func TestPredictabilityEndpoint(t *testing.T) {
	evs, _ := capturedStream(t)
	s, err := New(Config{
		Shards:   2,
		Predstat: predstat.Config{MinEvents: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if _, err := DriveEvents(evs, DriveConfig{Addr: s.Addr().String(), Clients: 2}); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, "http://"+s.HTTPAddr().String()+"/predictability?n=5")
	if code != http.StatusOK {
		t.Fatalf("GET /predictability: status %d\n%s", code, body)
	}
	var out predictabilityBody
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, body)
	}
	if !out.Enabled {
		t.Fatal("predictability should be enabled by default")
	}
	rep := out.Report
	if rep.Events != uint64(len(evs)) {
		t.Errorf("report covers %d events, drove %d", rep.Events, len(evs))
	}
	if rep.PCs == 0 || rep.Reported == 0 {
		t.Fatalf("no PCs reported: %+v", rep)
	}
	var classSum uint64
	for _, n := range rep.ClassEvents {
		classSum += n
	}
	if classSum != rep.Events {
		t.Errorf("class tallies sum to %d, want %d", classSum, rep.Events)
	}
	if len(rep.Hardest) == 0 || len(rep.Hardest) > 5 || len(rep.Easiest) == 0 {
		t.Fatalf("bad rankings: hardest %d easiest %d", len(rep.Hardest), len(rep.Easiest))
	}
	for _, pr := range append(append([]predstat.PCReport(nil), rep.Hardest...), rep.Easiest...) {
		if pr.Ceiling < 0 || pr.Ceiling > 1 || pr.BestAccuracy < 0 || pr.BestAccuracy > 1 {
			t.Errorf("pc %#x out-of-range stats: %+v", pr.PC, pr)
		}
		if pr.Class == "" || pr.BestPred == "" {
			t.Errorf("pc %#x missing labels: %+v", pr.PC, pr)
		}
		if pr.Events < 8 {
			t.Errorf("pc %#x below MinEvents reported", pr.PC)
		}
	}
	// Hardest is sorted by entropy descending, easiest ascending.
	for i := 1; i < len(rep.Hardest); i++ {
		if rep.Hardest[i].EntropyBits > rep.Hardest[i-1].EntropyBits {
			t.Error("hardest not sorted by entropy desc")
		}
	}
	for i := 1; i < len(rep.Easiest); i++ {
		if rep.Easiest[i].EntropyBits < rep.Easiest[i-1].EntropyBits {
			t.Error("easiest not sorted by entropy asc")
		}
	}
	if len(rep.GapByPred) != len(s.Predictors()) {
		t.Fatalf("gap attribution covers %d predictors, want %d", len(rep.GapByPred), len(s.Predictors()))
	}
	for _, g := range rep.GapByPred {
		if g.Events == 0 {
			t.Errorf("predictor %s has no attributed events", g.Name)
		}
	}

	// The scrape-derived families render from the same live trackers.
	code, body = httpGet(t, "http://"+s.HTTPAddr().String()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	for _, fam := range []string{
		"vp_pc_entropy_bits_bucket{",
		"vp_pc_entropy_bits_count ",
		`vp_seqclass_events{class="C"}`,
		`vp_seqclass_events{class="NS"}`,
		`vp_pred_ceiling_gap{pred="l"}`,
		`vp_pred_ceiling_gap{pred="fcm3"}`,
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("family %q missing from /metrics", fam)
		}
	}
	// The entropy histogram must hold one sample per reported PC.
	want := "vp_pc_entropy_bits_count " + jsonNumber(uint64(rep.Reported))
	if !strings.Contains(body, want+"\n") {
		t.Errorf("expected %q in /metrics (reported=%d)", want, rep.Reported)
	}
}

func jsonNumber(n uint64) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestPredictabilityDisabled: with the subsystem off, the endpoint says
// so, the bank carries no observer, and nothing breaks.
func TestPredictabilityDisabled(t *testing.T) {
	evs, _ := capturedStream(t)
	s, err := New(Config{Shards: 2, PredstatDisabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for _, sh := range s.shards {
		if sh.bank.Observer() != nil {
			t.Fatal("disabled server attached an observer")
		}
	}
	if _, err := DriveEvents(evs[:2000], DriveConfig{Addr: s.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	code, body := httpGet(t, "http://"+s.HTTPAddr().String()+"/predictability")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var out predictabilityBody
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Enabled || out.Report.Events != 0 {
		t.Fatalf("disabled server reported: %+v", out)
	}
}
