//go:build unix

package arena

import "syscall"

const mmapSupported = true

func mmapBytes(n int) ([]byte, error) {
	return syscall.Mmap(-1, 0, n,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
}

func munmapBytes(b []byte) error { return syscall.Munmap(b) }
