//go:build !unix

package arena

import "errors"

const mmapSupported = false

func mmapBytes(n int) ([]byte, error) { return nil, errors.New("mmap unsupported") }

func munmapBytes(b []byte) error { return nil }
