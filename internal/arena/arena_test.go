package arena

import "testing"

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
		err  bool
	}{
		{"", Heap, false},
		{"heap", Heap, false},
		{"mmap", Mmap, false},
		{"disk", Heap, true},
	} {
		k, err := ParseKind(tc.in)
		if (err != nil) != tc.err || k != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, err=%v", tc.in, k, err, tc.want, tc.err)
		}
	}
}

func TestNilArenaIsHeap(t *testing.T) {
	var a *Arena
	s := Make[uint64](a, 100)
	if len(s) != 100 {
		t.Fatalf("Make len = %d, want 100", len(s))
	}
	s = append(Grow(a, s, 1), 7)
	if s[100] != 7 || len(s) != 101 {
		t.Fatalf("Grow+append: got len %d last %d", len(s), s[100])
	}
	Free(a, s)    // no-op
	a.Release()   // no-op
	if a.Mapped() != 0 {
		t.Fatal("nil arena reports mapped bytes")
	}
	if New(Heap) != nil {
		t.Fatal("New(Heap) must return the nil heap stand-in")
	}
}

func TestMmapMakeGrowFree(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	defer func(old int) { MmapThreshold = old }(MmapThreshold)
	MmapThreshold = 64

	a := New(Mmap)
	if a == nil {
		t.Fatal("New(Mmap) = nil with mmap supported")
	}
	s := Make[uint64](a, 32) // 256 bytes ≥ threshold → mapped
	if a.Mapped() == 0 {
		t.Fatal("Make above threshold did not map")
	}
	for i := range s {
		s[i] = uint64(i) * 3
	}
	before := a.Mapped()
	s = Grow(a, s, 100) // forces relocation; old region must be unmapped
	if cap(s)-len(s) < 100 {
		t.Fatalf("Grow left cap %d len %d", cap(s), len(s))
	}
	for i := range s {
		if s[i] != uint64(i)*3 {
			t.Fatalf("Grow lost contents at %d: %d", i, s[i])
		}
	}
	if a.Mapped() <= before-256 {
		t.Fatalf("old region not replaced by a larger one: %d → %d", before, a.Mapped())
	}
	Free(a, s)
	if a.Mapped() != 0 {
		t.Fatalf("Free left %d bytes mapped", a.Mapped())
	}
	a.Release() // idempotent
}

func TestSmallStaysOnHeap(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	a := New(Mmap)
	s := Make[uint64](a, 8) // 64 bytes, far below the default threshold
	_ = s
	if a.Mapped() != 0 {
		t.Fatal("sub-threshold Make used a mapping")
	}
	a.Release()
}

func TestRelease(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	defer func(old int) { MmapThreshold = old }(MmapThreshold)
	MmapThreshold = 64
	a := New(Mmap)
	_ = Make[uint64](a, 64)
	_ = Make[uint32](a, 64)
	if a.Mapped() == 0 {
		t.Fatal("nothing mapped")
	}
	a.Release()
	if a.Mapped() != 0 {
		t.Fatalf("Release left %d bytes", a.Mapped())
	}
}
