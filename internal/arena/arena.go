// Package arena provides an opt-in mmap-backed allocator for the large,
// pointer-free slabs behind predictor tables. Multi-GB context and value
// slabs are append-only working state the collector can never shrink or
// move; keeping them on the Go heap makes every GC cycle walk gigabytes of
// arrays that contain no pointers. Backing them with anonymous private
// mappings takes them out of the heap entirely — the GC neither scans nor
// accounts them — while the slices handed back behave like ordinary Go
// slices, so slab contents (and therefore SaveState bytes and predictions)
// are identical under either backend.
//
// Contract: only pointer-free element types may be arena-allocated. The
// collector does not see mapped memory, so a pointer stored there keeps
// nothing alive. Callers must also hold no aliases of a slice's backing
// array when passing it to Grow or Free — the old mapping is unmapped
// eagerly, not when the GC gets around to it.
//
// A nil *Arena is valid everywhere and means "plain heap": Make and Grow
// degrade to make/append semantics, Free and Release are no-ops. New
// returns nil for Kind Heap (and on platforms without mmap), so callers
// thread one pointer through unconditionally and pay nothing unless mmap
// was requested.
package arena

import (
	"fmt"
	"runtime"
	"sync"
	"unsafe"
)

// Kind selects the backing store for slab allocations.
type Kind uint8

const (
	// Heap is ordinary GC-managed allocation.
	Heap Kind = iota
	// Mmap backs allocations at or above MmapThreshold with anonymous
	// private mappings outside the Go heap.
	Mmap
)

// ParseKind maps the -arena flag spelling to a Kind. The empty string
// means Heap, the default.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "heap":
		return Heap, nil
	case "mmap":
		return Mmap, nil
	}
	return Heap, fmt.Errorf("unknown arena kind %q (want heap or mmap)", s)
}

// String returns the flag spelling of k.
func (k Kind) String() string {
	if k == Mmap {
		return "mmap"
	}
	return "heap"
}

// MmapThreshold is the allocation size in bytes below which even an Mmap
// arena uses the heap: small slabs are cheap for the GC and would waste
// most of a page. A variable so tests can force tiny slabs through the
// mapped path.
var MmapThreshold = 64 << 10

// Arena tracks the live mappings of one owner (one predictor store). It is
// safe for concurrent use, and a finalizer unmaps everything if the owner
// is collected without an explicit Release.
type Arena struct {
	mu      sync.Mutex
	regions map[uintptr][]byte // backing base address → full mapping
}

// New returns an arena of the given kind, or nil — the heap stand-in —
// when kind is Heap or the platform has no mmap.
func New(kind Kind) *Arena {
	if kind != Mmap || !mmapSupported {
		return nil
	}
	a := &Arena{regions: make(map[uintptr][]byte)}
	runtime.SetFinalizer(a, (*Arena).Release)
	return a
}

// Release unmaps every live region. The owner must have dropped all
// slices into them first. Safe on nil and idempotent.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for base, b := range a.regions {
		munmapBytes(b)
		delete(a.regions, base)
	}
}

// Mapped returns the total bytes currently mapped (0 for nil/heap).
func (a *Arena) Mapped() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, b := range a.regions {
		n += len(b)
	}
	return n
}

// free unmaps the region based at p if this arena owns it.
func (a *Arena) free(p unsafe.Pointer) {
	if a == nil || p == nil {
		return
	}
	a.mu.Lock()
	b, ok := a.regions[uintptr(p)]
	if ok {
		delete(a.regions, uintptr(p))
	}
	a.mu.Unlock()
	if ok {
		munmapBytes(b)
	}
}

// Make returns a zeroed slice of n elements of pointer-free type T,
// mapped when the arena and size call for it, heap-allocated otherwise
// (including when the mapping fails — the heap is always a correct
// fallback).
func Make[T any](a *Arena, n int) []T {
	var zero T
	size := n * int(unsafe.Sizeof(zero))
	if a == nil || size < MmapThreshold {
		return make([]T, n)
	}
	b, err := mmapBytes(size)
	if err != nil {
		return make([]T, n)
	}
	base := unsafe.Pointer(&b[0])
	a.mu.Lock()
	a.regions[uintptr(base)] = b
	a.mu.Unlock()
	return unsafe.Slice((*T)(base), n)
}

// Grow returns s with capacity for at least n more elements, preserving
// length and contents, so a subsequent append up to that capacity cannot
// reallocate. When s must move, the new backing comes from the arena and
// an arena-owned old backing is unmapped immediately — the caller must
// hold no other slices aliasing it, and must not read the old backing
// after Grow returns (re-slice the result, never the original).
func Grow[T any](a *Arena, s []T, n int) []T {
	if cap(s)-len(s) >= n {
		return s
	}
	newCap := max(len(s)+n, 2*cap(s), 8)
	t := Make[T](a, newCap)
	copy(t, s)
	Free(a, s)
	return t[:len(s)]
}

// Free returns s's backing to the arena if the arena owns it; a no-op for
// nil arenas and heap-backed slices. The caller must hold no aliases.
func Free[T any](a *Arena, s []T) {
	if a == nil || cap(s) == 0 {
		return
	}
	a.free(unsafe.Pointer(unsafe.SliceData(s[:cap(s)])))
}
