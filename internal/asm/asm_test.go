package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		.text
	main:
		addi t0, zero, 5
		add  t1, t0, t0
		sub  t2, t1, t0
		halt
	`)
	if len(p.Text) != 4 {
		t.Fatalf("got %d instructions, want 4", len(p.Text))
	}
	i0 := p.Text[0]
	if i0.Op != isa.OpADDI || i0.Rd != isa.RegT0 || i0.Imm != 5 {
		t.Fatalf("inst 0 = %+v", i0)
	}
	if p.Text[3].Op != isa.OpHALT {
		t.Fatalf("inst 3 = %+v", p.Text[3])
	}
	if p.Entry != 0 {
		t.Fatalf("entry = %d, want 0 (main)", p.Entry)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
	main:	addi t0, zero, 3
	loop:	addi t0, t0, -1
		bne  t0, zero, loop
		beqz t0, done
		nop
	done:	halt
	`)
	// loop is the second instruction, PC 4.
	bne := p.Text[2]
	if bne.Op != isa.OpBNE || uint64(bne.Imm) != 4 {
		t.Fatalf("bne = %+v, want target 4", bne)
	}
	beqz := p.Text[3]
	if beqz.Op != isa.OpBEQ || beqz.Rs2 != isa.RegZero || uint64(beqz.Imm) != 20 {
		t.Fatalf("beqz = %+v, want beq to 20", beqz)
	}
}

func TestPseudoExpansion(t *testing.T) {
	p := mustAssemble(t, `
	main:	li t0, 7
		li t1, 0x12345
		li t2, -40000
		mov a0, t0
		neg a1, t0
		not a2, t0
		ret
	`)
	// li 7 -> 1 inst; li 0x12345 -> lui+ori; li -40000 -> lui+ori.
	ops := []isa.Opcode{}
	for _, in := range p.Text {
		ops = append(ops, in.Op)
	}
	want := []isa.Opcode{
		isa.OpADDI,
		isa.OpLUI, isa.OpORI,
		isa.OpLUI, isa.OpORI,
		isa.OpADDI, // mov
		isa.OpSUB,  // neg
		isa.OpNOR,  // not
		isa.OpJR,   // ret
	}
	if len(ops) != len(want) {
		t.Fatalf("got %d instructions %v, want %d", len(ops), ops, len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("inst %d = %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.data
	a:	.word 1, 2, -3
	s:	.asciiz "hi"
	b:	.byte 0x41, 66
	sp:	.space 5
		.align 3
	c:	.word 9
		.text
	main:	la t0, s
		halt
	`)
	if p.Symbols["a"] != DataBase {
		t.Fatalf("a at 0x%x", p.Symbols["a"])
	}
	if p.Symbols["s"] != DataBase+24 {
		t.Fatalf("s at 0x%x, want base+24", p.Symbols["s"])
	}
	// "hi\0" = 3 bytes, then 2 bytes, then 5 spaces = offset 34, align 8 -> 40.
	if p.Symbols["c"] != DataBase+40 {
		t.Fatalf("c at 0x%x, want base+40", p.Symbols["c"])
	}
	// .word -3 little-endian (third word, offsets 16..23)
	if p.Data[16] != 0xFD || p.Data[23] != 0xFF {
		t.Fatalf("word -3 encoded wrong: % x", p.Data[16:24])
	}
	if string(p.Data[24:27]) != "hi\x00" {
		t.Fatalf("asciiz wrong: %q", p.Data[24:27])
	}
	// la expands to lui+ori of the address of s.
	lui, ori := p.Text[0], p.Text[1]
	addr := uint64(lui.Imm)<<16 | uint64(ori.Imm)
	if addr != p.Symbols["s"] {
		t.Fatalf("la resolved to 0x%x, want 0x%x", addr, p.Symbols["s"])
	}
}

func TestMemoryOperands(t *testing.T) {
	p := mustAssemble(t, `
	main:	lw  t0, 16(sp)
		sw  t0, -8(fp)
		lb  t1, 0(t0)
		sb  t1, 3(t0)
		lbu t2, (t0)
		halt
	`)
	lw := p.Text[0]
	if lw.Op != isa.OpLW || lw.Rd != isa.RegT0 || lw.Rs1 != isa.RegSP || lw.Imm != 16 {
		t.Fatalf("lw = %+v", lw)
	}
	sw := p.Text[1]
	if sw.Op != isa.OpSW || sw.Rs2 != isa.RegT0 || sw.Rs1 != isa.RegFP || sw.Imm != -8 {
		t.Fatalf("sw = %+v", sw)
	}
	if p.Text[4].Imm != 0 {
		t.Fatalf("bare (reg) operand: %+v", p.Text[4])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"main: frob t0, t1", "unknown mnemonic"},
		{"main: addi t0, zero, 99999", "out of signed 16-bit range"},
		{"main: andi t0, t1, -1", "logical immediate"},
		{"main: slli t0, t1, 64", "shift amount"},
		{"main: addi q9, zero, 1", "unknown register"},
		{"main: j nowhere", "undefined symbol"},
		{"main: lw t0, t1", "bad memory operand"},
		{".data\nx: .word 1\n.text\nmain: .word 2", ".word outside .data"},
		{"main: halt\nmain: halt", "duplicate label"},
		{"main: addi t0, zero", "want 3 operands"},
	}
	for _, c := range cases {
		_, err := Assemble("t.s", c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not mention %q", c.src, err.Error(), c.want)
		}
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Assemble("t.s", "main: halt\n\n bogus t0\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "t.s:3:") {
		t.Fatalf("error %q lacks line info", err)
	}
}

func TestCommentsAndCharLiterals(t *testing.T) {
	p := mustAssemble(t, `
	# full line comment
	main:	addi t0, zero, 'A'   # trailing
		addi t1, zero, '\n'  ; alt comment
		halt
	`)
	if p.Text[0].Imm != 65 || p.Text[1].Imm != 10 {
		t.Fatalf("char literals: %d %d", p.Text[0].Imm, p.Text[1].Imm)
	}
}

func TestHashInsideStringLiteral(t *testing.T) {
	p := mustAssemble(t, `
		.data
	s:	.asciiz "a#b"
		.text
	main:	halt
	`)
	if string(p.Data[:4]) != "a#b\x00" {
		t.Fatalf("string with hash: %q", p.Data[:4])
	}
}

func TestLoadImm64Bit(t *testing.T) {
	p := mustAssemble(t, `
	main:	li t0, 0x123456789ABCDEF0
		halt
	`)
	// 6-instruction expansion.
	if len(p.Text) != 7 {
		t.Fatalf("got %d instructions, want 7", len(p.Text))
	}
}

func TestStartPreferredOverMain(t *testing.T) {
	p := mustAssemble(t, `
	main:	halt
	_start:	j main
	`)
	if p.Entry != 4 {
		t.Fatalf("entry = %d, want 4 (_start)", p.Entry)
	}
}

func TestDisassembleRoundTrips(t *testing.T) {
	p := mustAssemble(t, `
	main:	addi t0, zero, 5
	loop:	addi t0, t0, -1
		bne t0, zero, loop
		lw a0, 8(sp)
		sw a0, 0(sp)
		halt
	`)
	dis := Disassemble(p)
	for _, want := range []string{"main:", "loop:", "addi t0, zero, 5", "bne t0, zero, 0x4", "lw a0, 8(sp)", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}
