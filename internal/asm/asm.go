// Package asm implements a two-pass assembler for VISA-64 assembly, the
// format emitted by the MiniC compiler and accepted by cmd/vpasm.
//
// Syntax overview:
//
//	        .text                  # section directives
//	main:   addi  a0, zero, 5      # label + instruction
//	        jal   fib              # call via label
//	        lw    t0, 8(sp)        # memory operand imm(reg)
//	        beq   t0, zero, done   # branch to label
//	        li    t1, 0x12345678   # pseudo: expands to lui/ori
//	        la    t2, buf          # pseudo: address of symbol
//	        halt
//	        .data
//	buf:    .space 64
//	msg:    .asciiz "hi\n"
//	vals:   .word  1, -2, 0x30
//
// Comments run from '#' or ';' to end of line. Numbers are decimal,
// hexadecimal (0x) or character literals ('a', '\n'). The .data segment is
// loaded at DataBase; .word values are 64-bit and 8-byte aligned.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// DataBase is the load address of the data segment. The text segment is
// held separately (Harvard style); PCs start at 0, so any program below
// 256k instructions cannot collide with data addresses.
const DataBase = 0x100000

// Error describes one assembly error with its source position.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

// ErrorList collects all errors found during assembly.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	msgs := make([]string, 0, len(l))
	for i, e := range l {
		if i == 8 {
			msgs = append(msgs, fmt.Sprintf("... and %d more errors", len(l)-8))
			break
		}
		msgs = append(msgs, e.Error())
	}
	return strings.Join(msgs, "\n")
}

// assembler holds the state of one assembly run.
type assembler struct {
	file    string
	errs    ErrorList
	text    []isa.Inst
	textSrc []int // source line per emitted instruction (for disassembly)
	data    []byte
	symbols map[string]uint64
	// fixups are instruction operands referencing symbols, patched after
	// pass 1 establishes all addresses.
	fixups []fixup
	// dataFixups are .word directives referencing symbols: the 8 bytes at
	// the recorded data offset receive the symbol's address.
	dataFixups []dataFixup
	inData     bool
}

// dataFixup records a symbol-valued .word in the data segment.
type dataFixup struct {
	off  int
	sym  string
	line int
}

// fixup records a symbol reference in the instruction stream.
type fixup struct {
	index int    // instruction index in text
	sym   string // referenced symbol
	line  int
	kind  fixKind
}

type fixKind uint8

const (
	fixBranch fixKind = iota // Imm <- symbol PC (branch/jump target)
	fixHi                    // Imm <- bits 31..16 of symbol address (lui)
	fixLo                    // Imm <- bits 15..0 of symbol address (ori)
)

// Assemble translates one assembly source into a loadable program. The
// file name is used in error messages only.
func Assemble(file, src string) (*isa.Program, error) {
	a := &assembler{file: file, symbols: make(map[string]uint64)}
	a.run(src)
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	entry := uint64(0)
	if pc, ok := a.symbols["_start"]; ok {
		entry = pc
	} else if pc, ok := a.symbols["main"]; ok {
		entry = pc
	}
	return &isa.Program{
		Text:     a.text,
		Data:     a.data,
		DataBase: DataBase,
		Entry:    entry,
		Symbols:  a.symbols,
	}, nil
}

func (a *assembler) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, &Error{File: a.file, Line: line, Msg: fmt.Sprintf(format, args...)})
}

func (a *assembler) run(src string) {
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		a.line(i+1, raw)
	}
	a.patch()
}

// line assembles a single source line.
func (a *assembler) line(ln int, raw string) {
	s := stripComment(raw)
	s = strings.TrimSpace(s)
	for s != "" {
		// Leading labels, possibly several per line.
		colon := strings.IndexByte(s, ':')
		if colon >= 0 && isIdent(strings.TrimSpace(s[:colon])) {
			label := strings.TrimSpace(s[:colon])
			if _, dup := a.symbols[label]; dup {
				a.errorf(ln, "duplicate label %q", label)
			}
			if a.inData {
				a.symbols[label] = DataBase + uint64(len(a.data))
			} else {
				a.symbols[label] = isa.IndexToPC(uint64(len(a.text)))
			}
			s = strings.TrimSpace(s[colon+1:])
			continue
		}
		break
	}
	if s == "" {
		return
	}
	if s[0] == '.' {
		a.directive(ln, s)
		return
	}
	a.instruction(ln, s)
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"' && (i == 0 || s[i-1] != '\\'):
			inStr = !inStr
		case !inStr && (s[i] == '#' || s[i] == ';'):
			return s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == '.' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// directive handles .text/.data/.word/.byte/.asciiz/.space/.align/.global.
func (a *assembler) directive(ln int, s string) {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
	case ".global", ".globl":
		// Accepted for compatibility; entry resolution uses _start/main.
	case ".align":
		n, err := parseInt(rest)
		if err != nil || n < 0 || n > 12 {
			a.errorf(ln, "bad .align operand %q", rest)
			return
		}
		a.alignData(1 << uint(n))
	case ".space":
		if !a.inData {
			a.errorf(ln, ".space outside .data")
			return
		}
		n, err := parseInt(rest)
		if err != nil || n < 0 || n > 1<<30 {
			a.errorf(ln, "bad .space size %q", rest)
			return
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".word":
		if !a.inData {
			a.errorf(ln, ".word outside .data")
			return
		}
		a.alignData(8)
		for _, f := range splitOperands(rest) {
			v, err := parseInt(f)
			if err != nil {
				if isIdent(f) {
					a.dataFixups = append(a.dataFixups, dataFixup{off: len(a.data), sym: f, line: ln})
					v = 0
				} else {
					a.errorf(ln, "bad .word value %q", f)
					continue
				}
			}
			var b [8]byte
			putUint64(b[:], uint64(v))
			a.data = append(a.data, b[:]...)
		}
	case ".byte":
		if !a.inData {
			a.errorf(ln, ".byte outside .data")
			return
		}
		for _, f := range splitOperands(rest) {
			v, err := parseInt(f)
			if err != nil || v < -128 || v > 255 {
				a.errorf(ln, "bad .byte value %q", f)
				continue
			}
			a.data = append(a.data, byte(v))
		}
	case ".asciiz", ".string":
		if !a.inData {
			a.errorf(ln, "%s outside .data", name)
			return
		}
		str, err := strconv.Unquote(rest)
		if err != nil {
			a.errorf(ln, "bad string literal %s", rest)
			return
		}
		a.data = append(a.data, str...)
		a.data = append(a.data, 0)
	default:
		a.errorf(ln, "unknown directive %s", name)
	}
}

func (a *assembler) alignData(n int) {
	for len(a.data)%n != 0 {
		a.data = append(a.data, 0)
	}
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// splitOperands splits on commas outside string/char literals.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	inCh := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'' && (i == 0 || s[i-1] != '\\'):
			inCh = !inCh
		case inCh:
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" {
		out = append(out, last)
	}
	return out
}

// parseInt accepts decimal, hex (0x) and character literals.
func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '\'' {
		str, err := strconv.Unquote(s)
		if err != nil || len(str) != 1 {
			return 0, fmt.Errorf("bad char literal %q", s)
		}
		return int64(str[0]), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}
