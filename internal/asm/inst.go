package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Immediate ranges, MIPS-style: arithmetic immediates are signed 16-bit,
// logical immediates are zero-extended 16-bit, shift amounts are 0..63.
const (
	minSImm = -32768
	maxSImm = 32767
	maxUImm = 65535
	maxShft = 63
)

// instruction assembles one instruction or pseudo-instruction.
func (a *assembler) instruction(ln int, s string) {
	if a.inData {
		a.errorf(ln, "instruction in .data section")
		return
	}
	mnem, rest, _ := strings.Cut(s, " ")
	mnem = strings.ToLower(strings.TrimSpace(mnem))
	ops := splitOperands(strings.TrimSpace(rest))

	if a.pseudo(ln, mnem, ops) {
		return
	}

	op, ok := isa.OpByName(mnem)
	if !ok {
		a.errorf(ln, "unknown mnemonic %q", mnem)
		return
	}
	switch {
	case op == isa.OpHALT:
		a.need(ln, ops, 0) // halt
		a.emit(ln, isa.Inst{Op: op})
	case op == isa.OpSYS:
		if !a.need(ln, ops, 1) {
			return
		}
		n, err := parseInt(ops[0])
		if err != nil {
			a.errorf(ln, "bad syscall number %q", ops[0])
			return
		}
		a.emit(ln, isa.Inst{Op: op, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: n})
	case op == isa.OpJ || op == isa.OpJAL:
		if !a.need(ln, ops, 1) {
			return
		}
		a.emitTarget(ln, isa.Inst{Op: op, Rd: ra(op)}, ops[0])
	case op == isa.OpJR:
		if !a.need(ln, ops, 1) {
			return
		}
		a.emit(ln, isa.Inst{Op: op, Rs1: a.reg(ln, ops[0])})
	case op == isa.OpJALR:
		if !a.need(ln, ops, 1) {
			return
		}
		a.emit(ln, isa.Inst{Op: op, Rd: isa.RegRA, Rs1: a.reg(ln, ops[0])})
	case op.IsBranch():
		if !a.need(ln, ops, 3) {
			return
		}
		inst := isa.Inst{Op: op, Rs1: a.reg(ln, ops[0]), Rs2: a.reg(ln, ops[1])}
		a.emitTarget(ln, inst, ops[2])
	case op == isa.OpLUI:
		if !a.need(ln, ops, 2) {
			return
		}
		imm, err := parseInt(ops[1])
		if err != nil || imm < minSImm || imm > maxSImm {
			a.errorf(ln, "lui immediate out of range: %q", ops[1])
			return
		}
		a.emit(ln, isa.Inst{Op: op, Rd: a.reg(ln, ops[0]), Imm: imm})
	case op.IsMem():
		if !a.need(ln, ops, 2) {
			return
		}
		base, off, ok := a.memOperand(ln, ops[1])
		if !ok {
			return
		}
		r := a.reg(ln, ops[0])
		if op == isa.OpSW || op == isa.OpSB {
			a.emit(ln, isa.Inst{Op: op, Rs1: base, Rs2: r, Imm: off})
		} else {
			a.emit(ln, isa.Inst{Op: op, Rd: r, Rs1: base, Imm: off})
		}
	case op.HasImm():
		if !a.need(ln, ops, 3) {
			return
		}
		imm, err := parseInt(ops[2])
		if err != nil {
			a.errorf(ln, "bad immediate %q", ops[2])
			return
		}
		if !a.immInRange(ln, op, imm) {
			return
		}
		a.emit(ln, isa.Inst{Op: op, Rd: a.reg(ln, ops[0]), Rs1: a.reg(ln, ops[1]), Imm: imm})
	default: // three-register form
		if !a.need(ln, ops, 3) {
			return
		}
		a.emit(ln, isa.Inst{
			Op: op, Rd: a.reg(ln, ops[0]),
			Rs1: a.reg(ln, ops[1]), Rs2: a.reg(ln, ops[2]),
		})
	}
}

func ra(op isa.Opcode) uint8 {
	if op == isa.OpJAL {
		return isa.RegRA
	}
	return 0
}

func (a *assembler) immInRange(ln int, op isa.Opcode, imm int64) bool {
	switch op {
	case isa.OpANDI, isa.OpORI, isa.OpXORI:
		if imm < 0 || imm > maxUImm {
			a.errorf(ln, "logical immediate %d out of range 0..%d", imm, maxUImm)
			return false
		}
	case isa.OpSLLI, isa.OpSRLI, isa.OpSRAI:
		if imm < 0 || imm > maxShft {
			a.errorf(ln, "shift amount %d out of range 0..%d", imm, maxShft)
			return false
		}
	default:
		if imm < minSImm || imm > maxSImm {
			a.errorf(ln, "immediate %d out of signed 16-bit range", imm)
			return false
		}
	}
	return true
}

// pseudo expands pseudo-instructions; it returns false when mnem is not a
// pseudo so the caller tries real opcodes.
func (a *assembler) pseudo(ln int, mnem string, ops []string) bool {
	switch mnem {
	case "nop":
		a.emit(ln, isa.Inst{Op: isa.OpADDI}) // addi zero, zero, 0
	case "mov", "move":
		if !a.need(ln, ops, 2) {
			return true
		}
		a.emit(ln, isa.Inst{Op: isa.OpADDI, Rd: a.reg(ln, ops[0]), Rs1: a.reg(ln, ops[1])})
	case "neg":
		if !a.need(ln, ops, 2) {
			return true
		}
		a.emit(ln, isa.Inst{Op: isa.OpSUB, Rd: a.reg(ln, ops[0]), Rs2: a.reg(ln, ops[1])})
	case "not":
		if !a.need(ln, ops, 2) {
			return true
		}
		a.emit(ln, isa.Inst{Op: isa.OpNOR, Rd: a.reg(ln, ops[0]), Rs1: a.reg(ln, ops[1])})
	case "li":
		if !a.need(ln, ops, 2) {
			return true
		}
		imm, err := parseInt(ops[1])
		if err != nil {
			a.errorf(ln, "bad li immediate %q", ops[1])
			return true
		}
		a.loadImm(ln, a.reg(ln, ops[0]), imm)
	case "la":
		if !a.need(ln, ops, 2) {
			return true
		}
		rd := a.reg(ln, ops[0])
		// Always two instructions so pass-1 sizing is stable: lui+ori with
		// hi/lo fixups (addresses fit in 31 bits).
		a.fixups = append(a.fixups, fixup{index: len(a.text), sym: ops[1], line: ln, kind: fixHi})
		a.emit(ln, isa.Inst{Op: isa.OpLUI, Rd: rd})
		a.fixups = append(a.fixups, fixup{index: len(a.text), sym: ops[1], line: ln, kind: fixLo})
		a.emit(ln, isa.Inst{Op: isa.OpORI, Rd: rd, Rs1: rd})
	case "ble":
		a.swapBranch(ln, ops, isa.OpBGE)
	case "bgt":
		a.swapBranch(ln, ops, isa.OpBLT)
	case "beqz":
		if !a.need(ln, ops, 2) {
			return true
		}
		a.emitTarget(ln, isa.Inst{Op: isa.OpBEQ, Rs1: a.reg(ln, ops[0])}, ops[1])
	case "bnez":
		if !a.need(ln, ops, 2) {
			return true
		}
		a.emitTarget(ln, isa.Inst{Op: isa.OpBNE, Rs1: a.reg(ln, ops[0])}, ops[1])
	case "call":
		if !a.need(ln, ops, 1) {
			return true
		}
		a.emitTarget(ln, isa.Inst{Op: isa.OpJAL, Rd: isa.RegRA}, ops[0])
	case "ret":
		a.emit(ln, isa.Inst{Op: isa.OpJR, Rs1: isa.RegRA})
	default:
		return false
	}
	return true
}

func (a *assembler) swapBranch(ln int, ops []string, op isa.Opcode) {
	if !a.need(ln, ops, 3) {
		return
	}
	inst := isa.Inst{Op: op, Rs1: a.reg(ln, ops[1]), Rs2: a.reg(ln, ops[0])}
	a.emitTarget(ln, inst, ops[2])
}

// loadImm emits the shortest sequence that materializes imm into rd.
func (a *assembler) loadImm(ln int, rd uint8, imm int64) {
	switch {
	case imm >= minSImm && imm <= maxSImm:
		a.emit(ln, isa.Inst{Op: isa.OpADDI, Rd: rd, Imm: imm})
	case imm >= -(1<<31) && imm < 1<<31:
		hi := imm >> 16
		lo := imm & 0xFFFF
		a.emit(ln, isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: hi})
		if lo != 0 {
			a.emit(ln, isa.Inst{Op: isa.OpORI, Rd: rd, Rs1: rd, Imm: lo})
		}
	default:
		// Full 64-bit build: top 32 bits via lui/ori, then two
		// shift-or steps for the lower halves.
		c3 := (imm >> 48) & 0xFFFF
		if c3 >= 1<<15 {
			c3 -= 1 << 16 // lui payload is signed
		}
		c2 := (imm >> 32) & 0xFFFF
		c1 := (imm >> 16) & 0xFFFF
		c0 := imm & 0xFFFF
		a.emit(ln, isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: c3})
		a.emit(ln, isa.Inst{Op: isa.OpORI, Rd: rd, Rs1: rd, Imm: c2})
		a.emit(ln, isa.Inst{Op: isa.OpSLLI, Rd: rd, Rs1: rd, Imm: 16})
		a.emit(ln, isa.Inst{Op: isa.OpORI, Rd: rd, Rs1: rd, Imm: c1})
		a.emit(ln, isa.Inst{Op: isa.OpSLLI, Rd: rd, Rs1: rd, Imm: 16})
		a.emit(ln, isa.Inst{Op: isa.OpORI, Rd: rd, Rs1: rd, Imm: c0})
	}
}

// memOperand parses "imm(reg)" or "(reg)" or a bare symbol (absolute).
func (a *assembler) memOperand(ln int, s string) (base uint8, off int64, ok bool) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		a.errorf(ln, "bad memory operand %q (want imm(reg))", s)
		return 0, 0, false
	}
	offStr := strings.TrimSpace(s[:open])
	regStr := strings.TrimSpace(s[open+1 : len(s)-1])
	if offStr != "" {
		v, err := parseInt(offStr)
		if err != nil || v < minSImm || v > maxSImm {
			a.errorf(ln, "bad memory offset %q", offStr)
			return 0, 0, false
		}
		off = v
	}
	return a.reg(ln, regStr), off, true
}

func (a *assembler) reg(ln int, name string) uint8 {
	r, ok := isa.RegByName(strings.TrimSpace(name))
	if !ok {
		a.errorf(ln, "unknown register %q", name)
		return 0
	}
	return uint8(r)
}

func (a *assembler) need(ln int, ops []string, n int) bool {
	if len(ops) != n {
		a.errorf(ln, "want %d operands, got %d", n, len(ops))
		return false
	}
	return true
}

func (a *assembler) emit(ln int, inst isa.Inst) {
	a.text = append(a.text, inst)
	a.textSrc = append(a.textSrc, ln)
}

// emitTarget emits an instruction whose Imm is a label or absolute PC.
func (a *assembler) emitTarget(ln int, inst isa.Inst, target string) {
	target = strings.TrimSpace(target)
	if v, err := parseInt(target); err == nil {
		inst.Imm = v
		a.emit(ln, inst)
		return
	}
	a.fixups = append(a.fixups, fixup{index: len(a.text), sym: target, line: ln, kind: fixBranch})
	a.emit(ln, inst)
}

// patch resolves all symbol fixups after both segments are laid out.
func (a *assembler) patch() {
	for _, f := range a.dataFixups {
		addr, ok := a.symbols[f.sym]
		if !ok {
			a.errorf(f.line, "undefined symbol %q in .word", f.sym)
			continue
		}
		putUint64(a.data[f.off:], addr)
	}
	for _, f := range a.fixups {
		addr, ok := a.symbols[f.sym]
		if !ok {
			a.errorf(f.line, "undefined symbol %q", f.sym)
			continue
		}
		switch f.kind {
		case fixBranch:
			a.text[f.index].Imm = int64(addr)
		case fixHi:
			if addr >= 1<<31 {
				a.errorf(f.line, "symbol %q address too large for la", f.sym)
				continue
			}
			a.text[f.index].Imm = int64(addr >> 16)
		case fixLo:
			a.text[f.index].Imm = int64(addr & 0xFFFF)
		}
	}
}

// Disassemble renders a program's text segment with PC labels, for
// debugging and cmd/vpasm.
func Disassemble(p *isa.Program) string {
	names := make(map[uint64]string)
	for sym, addr := range p.Symbols {
		if addr < isa.IndexToPC(uint64(len(p.Text))) {
			if old, ok := names[addr]; !ok || sym < old {
				names[addr] = sym
			}
		}
	}
	var b strings.Builder
	for i, inst := range p.Text {
		pc := isa.IndexToPC(uint64(i))
		if sym, ok := names[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", sym)
		}
		fmt.Fprintf(&b, "  %06x:  %s\n", pc, inst)
	}
	return b.String()
}
