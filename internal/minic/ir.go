package minic

import (
	"fmt"
	"strings"
)

// VReg is a virtual register id; 0 is "none".
type VReg int32

// IROp enumerates three-address-code operations.
type IROp uint8

// IR operations.
const (
	IRConst IROp = iota // Dst = Imm
	IRMov               // Dst = A
	IRBin               // Dst = A <Bin> (B|Imm)
	IRLoad              // Dst = mem[A+Imm] (Size bytes, zero-extended)
	IRStore             // mem[A+Imm] = B (Size bytes)
	IRAddrG             // Dst = address of global Sym
	IRAddrL             // Dst = address of frame slot Imm
	IRParam             // Dst = incoming argument Imm
	IRCall              // Dst = Sym(Args...); Dst may be 0
	IRSys               // Dst = syscall Imm with argument A (A may be 0)
	IRRet               // return A (A may be 0 for void)
	IRJmp               // goto label Imm
	IRCJmp              // if A <CC> B goto label Imm
	IRLabel             // label Imm
)

// BinOp enumerates IRBin operators, mapping 1:1 to VISA instructions.
type BinOp uint8

// Binary operators.
const (
	BAdd BinOp = iota
	BSub
	BMul
	BDiv
	BRem
	BAnd
	BOr
	BXor
	BShl
	BShr // logical right
	BSar // arithmetic right
	BSlt
	BSltu
	BSeq
	BSne
)

var binNames = [...]string{
	BAdd: "add", BSub: "sub", BMul: "mul", BDiv: "div", BRem: "rem",
	BAnd: "and", BOr: "or", BXor: "xor", BShl: "shl", BShr: "shr",
	BSar: "sar", BSlt: "slt", BSltu: "sltu", BSeq: "seq", BSne: "sne",
}

// CC enumerates IRCJmp conditions, mapping 1:1 to VISA branches.
type CC uint8

// Branch conditions.
const (
	CCEq CC = iota
	CCNe
	CCLt
	CCGe
	CCLtu
	CCGeu
)

var ccNames = [...]string{CCEq: "eq", CCNe: "ne", CCLt: "lt", CCGe: "ge", CCLtu: "ltu", CCGeu: "geu"}

// Negate returns the opposite condition.
func (cc CC) Negate() CC {
	switch cc {
	case CCEq:
		return CCNe
	case CCNe:
		return CCEq
	case CCLt:
		return CCGe
	case CCGe:
		return CCLt
	case CCLtu:
		return CCGeu
	default:
		return CCLtu
	}
}

// IRInst is one TAC instruction.
type IRInst struct {
	Op     IROp
	Bin    BinOp
	CC     CC
	Dst    VReg
	A, B   VReg
	HasImm bool // IRBin: B is replaced by Imm
	Imm    int64
	Size   uint8 // IRLoad/IRStore: 1 or 8
	Sym    string
	Args   []VReg
}

// String renders the instruction for IR dumps and tests.
func (in IRInst) String() string {
	v := func(r VReg) string { return fmt.Sprintf("v%d", r) }
	switch in.Op {
	case IRConst:
		return fmt.Sprintf("%s = %d", v(in.Dst), in.Imm)
	case IRMov:
		return fmt.Sprintf("%s = %s", v(in.Dst), v(in.A))
	case IRBin:
		rhs := v(in.B)
		if in.HasImm {
			rhs = fmt.Sprintf("%d", in.Imm)
		}
		return fmt.Sprintf("%s = %s %s, %s", v(in.Dst), binNames[in.Bin], v(in.A), rhs)
	case IRLoad:
		return fmt.Sprintf("%s = load%d [%s+%d]", v(in.Dst), in.Size, v(in.A), in.Imm)
	case IRStore:
		return fmt.Sprintf("store%d [%s+%d] = %s", in.Size, v(in.A), in.Imm, v(in.B))
	case IRAddrG:
		return fmt.Sprintf("%s = &%s", v(in.Dst), in.Sym)
	case IRAddrL:
		return fmt.Sprintf("%s = &slot%d", v(in.Dst), in.Imm)
	case IRParam:
		return fmt.Sprintf("%s = param%d", v(in.Dst), in.Imm)
	case IRCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = v(a)
		}
		if in.Dst != 0 {
			return fmt.Sprintf("%s = call %s(%s)", v(in.Dst), in.Sym, strings.Join(args, ", "))
		}
		return fmt.Sprintf("call %s(%s)", in.Sym, strings.Join(args, ", "))
	case IRSys:
		return fmt.Sprintf("%s = sys %d (%s)", v(in.Dst), in.Imm, v(in.A))
	case IRRet:
		if in.A != 0 {
			return "ret " + v(in.A)
		}
		return "ret"
	case IRJmp:
		return fmt.Sprintf("jmp L%d", in.Imm)
	case IRCJmp:
		return fmt.Sprintf("if %s %s %s jmp L%d", v(in.A), ccNames[in.CC], v(in.B), in.Imm)
	case IRLabel:
		return fmt.Sprintf("L%d:", in.Imm)
	default:
		return "?"
	}
}

// Slot is one frame-resident object (unpromoted local, aggregate, or
// spill).
type Slot struct {
	Size  int64
	Align int64
	Name  string // for IR dumps
}

// IRFunc is a function lowered to TAC.
type IRFunc struct {
	Name     string
	Insts    []IRInst
	NumVRegs int // vregs are 1..NumVRegs
	Slots    []Slot
	NumArgs  int
	HasCalls bool
}

// Dump renders the function's IR.
func (f *IRFunc) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (args=%d, vregs=%d, slots=%d)\n", f.Name, f.NumArgs, f.NumVRegs, len(f.Slots))
	for _, in := range f.Insts {
		if in.Op == IRLabel {
			fmt.Fprintf(&b, "%s\n", in)
		} else {
			fmt.Fprintf(&b, "\t%s\n", in)
		}
	}
	return b.String()
}

// uses appends the vregs read by in to buf and returns it.
func (in *IRInst) uses(buf []VReg) []VReg {
	switch in.Op {
	case IRMov:
		buf = append(buf, in.A)
	case IRBin:
		buf = append(buf, in.A)
		if !in.HasImm {
			buf = append(buf, in.B)
		}
	case IRLoad:
		buf = append(buf, in.A)
	case IRStore:
		buf = append(buf, in.A, in.B)
	case IRCall:
		buf = append(buf, in.Args...)
	case IRSys:
		if in.A != 0 {
			buf = append(buf, in.A)
		}
	case IRRet:
		if in.A != 0 {
			buf = append(buf, in.A)
		}
	case IRCJmp:
		buf = append(buf, in.A, in.B)
	}
	return buf
}

// def returns the vreg written by in, or 0.
func (in *IRInst) def() VReg {
	switch in.Op {
	case IRConst, IRMov, IRBin, IRLoad, IRAddrG, IRAddrL, IRParam, IRSys:
		return in.Dst
	case IRCall:
		return in.Dst // may be 0
	}
	return 0
}

// pure reports whether the instruction can be removed if its result is
// unused.
func (in *IRInst) pure() bool {
	switch in.Op {
	case IRConst, IRMov, IRBin, IRAddrG, IRAddrL, IRParam, IRLoad:
		// Loads are pure for DCE purposes here: MiniC has no volatile and
		// in-bounds accesses cannot fault.
		return true
	}
	return false
}
