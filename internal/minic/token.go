// Package minic implements a small C-like language and an optimizing
// compiler from it to VISA-64 assembly.
//
// MiniC plays the role of gcc in the paper's methodology: the seven
// benchmark workloads are written in it, and its optimization levels
// (-O0..-O3) regenerate the compiler-flag sensitivity experiment of the
// paper's Table 7.
//
// The language: 64-bit signed int, unsigned byte char, pointers, one
// dimensional arrays, structs, functions (up to 8 scalar args), if/else,
// while, for, break/continue/return, the full C operator set including
// short-circuit && || and ?:, string/char literals, sizeof(type), and the
// intrinsics getc(), putc(c), sbrk(n), exit(c).
package minic

import "fmt"

// Pos is a source position for error reporting.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col) }

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokChar
	tokKeyword
	tokPunct
)

// token is one lexeme.
type token struct {
	kind tokKind
	text string // identifier, keyword or punctuation spelling
	num  int64  // number or char literal value
	str  string // decoded string literal
	pos  Pos
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokNumber:
		return fmt.Sprintf("number %d", t.num)
	case tokString:
		return fmt.Sprintf("string %q", t.str)
	case tokChar:
		return fmt.Sprintf("char %q", rune(t.num))
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

var keywords = map[string]bool{
	"int": true, "char": true, "void": true, "struct": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true, "sizeof": true,
}

// Error is a compile error with position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList accumulates compile errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	s := ""
	for i, e := range l {
		if i == 10 {
			return s + fmt.Sprintf("\n... and %d more errors", len(l)-10)
		}
		if i > 0 {
			s += "\n"
		}
		s += e.Error()
	}
	return s
}

// lexer converts source text to tokens.
type lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
	errs *ErrorList
}

func newLexer(file, src string, errs *ErrorList) *lexer {
	return &lexer{src: src, file: file, line: 1, col: 1, errs: errs}
}

func (lx *lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *lexer) errorf(pos Pos, format string, args ...any) {
	*lx.errs = append(*lx.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) nextByte() byte {
	c := lx.peekByte()
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpace() {
	for {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.nextByte()
		case c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/':
			for lx.peekByte() != '\n' && lx.peekByte() != 0 {
				lx.nextByte()
			}
		case c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '*':
			start := lx.pos()
			lx.nextByte()
			lx.nextByte()
			for {
				if lx.peekByte() == 0 {
					lx.errorf(start, "unterminated block comment")
					return
				}
				if lx.nextByte() == '*' && lx.peekByte() == '/' {
					lx.nextByte()
					break
				}
			}
		default:
			return
		}
	}
}

// punctuations, longest first so the scanner is greedy.
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ",", ";", ":", "?", ".",
}

func (lx *lexer) next() token {
	lx.skipSpace()
	pos := lx.pos()
	c := lx.peekByte()
	switch {
	case c == 0:
		return token{kind: tokEOF, pos: pos}
	case isIdentStart(c):
		start := lx.off
		for isIdentPart(lx.peekByte()) {
			lx.nextByte()
		}
		text := lx.src[start:lx.off]
		if keywords[text] {
			return token{kind: tokKeyword, text: text, pos: pos}
		}
		return token{kind: tokIdent, text: text, pos: pos}
	case c >= '0' && c <= '9':
		return lx.number(pos)
	case c == '"':
		return lx.stringLit(pos)
	case c == '\'':
		return lx.charLit(pos)
	default:
		for _, p := range puncts {
			if len(lx.src)-lx.off >= len(p) && lx.src[lx.off:lx.off+len(p)] == p {
				for range p {
					lx.nextByte()
				}
				return token{kind: tokPunct, text: p, pos: pos}
			}
		}
		lx.errorf(pos, "unexpected character %q", c)
		lx.nextByte()
		return lx.next()
	}
}

func (lx *lexer) number(pos Pos) token {
	start := lx.off
	base := int64(10)
	if lx.peekByte() == '0' {
		lx.nextByte()
		if lx.peekByte() == 'x' || lx.peekByte() == 'X' {
			lx.nextByte()
			base = 16
			start = lx.off
		}
	}
	var v int64
	digits := 0
	for {
		c := lx.peekByte()
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			if digits == 0 && lx.off == start {
				// bare "0"
				return token{kind: tokNumber, num: 0, pos: pos}
			}
			return token{kind: tokNumber, num: v, pos: pos}
		}
		v = v*base + d
		digits++
		lx.nextByte()
	}
}

func (lx *lexer) escape(pos Pos) byte {
	c := lx.nextByte()
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\', '\'', '"':
		return c
	default:
		lx.errorf(pos, "unknown escape \\%c", c)
		return c
	}
}

func (lx *lexer) stringLit(pos Pos) token {
	lx.nextByte() // opening quote
	var buf []byte
	for {
		c := lx.peekByte()
		if c == 0 || c == '\n' {
			lx.errorf(pos, "unterminated string literal")
			break
		}
		lx.nextByte()
		if c == '"' {
			break
		}
		if c == '\\' {
			c = lx.escape(pos)
		}
		buf = append(buf, c)
	}
	return token{kind: tokString, str: string(buf), pos: pos}
}

func (lx *lexer) charLit(pos Pos) token {
	lx.nextByte() // opening quote
	c := lx.nextByte()
	if c == '\\' {
		c = lx.escape(pos)
	}
	if lx.peekByte() != '\'' {
		lx.errorf(pos, "unterminated char literal")
	} else {
		lx.nextByte()
	}
	return token{kind: tokChar, num: int64(c), pos: pos}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
