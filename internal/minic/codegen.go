package minic

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// codegen lowers allocated IR to VISA-64 assembly text. The reserved
// scratch registers are at (operand A / results of spilled vregs) and gp
// (operand B); neither is allocatable, so reloads can never clobber live
// values.
type codegen struct {
	b       *strings.Builder
	f       *IRFunc
	alloc   *allocation
	slotOff []int64
	frame   int64
	raOff   int64
	sOff    map[uint8]int64
	errs    *ErrorList
}

const (
	scratchA = "at"
	scratchB = "gp"
)

// genCode emits one function.
func genCode(b *strings.Builder, f *IRFunc, alloc *allocation, errs *ErrorList) {
	cg := &codegen{b: b, f: f, alloc: alloc, sOff: make(map[uint8]int64), errs: errs}
	cg.layoutFrame()
	cg.prologue()
	for i := range f.Insts {
		cg.inst(&f.Insts[i])
	}
	cg.epilogue()
}

func (cg *codegen) emitf(format string, args ...any) {
	fmt.Fprintf(cg.b, "\t"+format+"\n", args...)
}

func (cg *codegen) labelf(format string, args ...any) {
	fmt.Fprintf(cg.b, format+"\n", args...)
}

// layoutFrame assigns frame offsets: [ra][saved s-regs][slots], 16-aligned.
func (cg *codegen) layoutFrame() {
	off := int64(0)
	if cg.f.HasCalls {
		cg.raOff = off
		off += 8
	}
	for _, r := range cg.alloc.usedCalleeSaved {
		cg.sOff[r] = off
		off += 8
	}
	cg.slotOff = make([]int64, len(cg.f.Slots))
	for i, s := range cg.f.Slots {
		off = roundUp(off, s.Align)
		cg.slotOff[i] = off
		off += s.Size
	}
	cg.frame = roundUp(off, 16)
	if cg.frame > 32000 {
		*cg.errs = append(*cg.errs, &Error{Msg: fmt.Sprintf(
			"function %s: frame size %d exceeds 32000 bytes; move large arrays to globals",
			cg.f.Name, cg.frame)})
	}
}

func (cg *codegen) prologue() {
	cg.labelf("%s:", cg.f.Name)
	if cg.frame > 0 {
		cg.emitf("addi sp, sp, -%d", cg.frame)
	}
	if cg.f.HasCalls {
		cg.emitf("sw ra, %d(sp)", cg.raOff)
	}
	for _, r := range cg.alloc.usedCalleeSaved {
		cg.emitf("sw %s, %d(sp)", isa.RegName(int(r)), cg.sOff[r])
	}
}

func (cg *codegen) epilogue() {
	cg.labelf(".L_%s_ret:", cg.f.Name)
	for _, r := range cg.alloc.usedCalleeSaved {
		cg.emitf("lw %s, %d(sp)", isa.RegName(int(r)), cg.sOff[r])
	}
	if cg.f.HasCalls {
		cg.emitf("lw ra, %d(sp)", cg.raOff)
	}
	if cg.frame > 0 {
		cg.emitf("addi sp, sp, %d", cg.frame)
	}
	cg.emitf("ret")
}

// src returns the register holding vreg v, reloading through scratch when
// spilled.
func (cg *codegen) src(v VReg, scratch string) string {
	if v == 0 {
		return "zero"
	}
	a := cg.alloc.assign[v]
	if !a.Spill {
		return isa.RegName(int(a.Reg))
	}
	cg.emitf("lw %s, %d(sp)", scratch, cg.slotOff[a.Slot])
	return scratch
}

// dst returns the register to compute vreg v into; call flush after the
// computing instruction to store spilled results.
func (cg *codegen) dst(v VReg) string {
	a := cg.alloc.assign[v]
	if !a.Spill {
		return isa.RegName(int(a.Reg))
	}
	return scratchA
}

func (cg *codegen) flush(v VReg) {
	a := cg.alloc.assign[v]
	if a.Spill {
		cg.emitf("sw %s, %d(sp)", scratchA, cg.slotOff[a.Slot])
	}
}

func fitsSImm(v int64) bool { return v >= -32768 && v <= 32767 }
func fitsUImm(v int64) bool { return v >= 0 && v <= 65535 }

func (cg *codegen) inst(in *IRInst) {
	switch in.Op {
	case IRLabel:
		cg.labelf(".L_%s_%d:", cg.f.Name, in.Imm)
	case IRJmp:
		cg.emitf("j .L_%s_%d", cg.f.Name, in.Imm)
	case IRCJmp:
		a := cg.src(in.A, scratchA)
		b := cg.src(in.B, scratchB)
		br := map[CC]string{CCEq: "beq", CCNe: "bne", CCLt: "blt", CCGe: "bge", CCLtu: "bltu", CCGeu: "bgeu"}[in.CC]
		cg.emitf("%s %s, %s, .L_%s_%d", br, a, b, cg.f.Name, in.Imm)
	case IRConst:
		d := cg.dst(in.Dst)
		cg.emitf("li %s, %d", d, in.Imm)
		cg.flush(in.Dst)
	case IRMov:
		a := cg.src(in.A, scratchA)
		d := cg.dst(in.Dst)
		if d != a {
			cg.emitf("mov %s, %s", d, a)
		}
		cg.flush(in.Dst)
	case IRAddrG:
		d := cg.dst(in.Dst)
		cg.emitf("la %s, %s", d, in.Sym)
		cg.flush(in.Dst)
	case IRAddrL:
		d := cg.dst(in.Dst)
		cg.emitf("addi %s, sp, %d", d, cg.slotOff[in.Imm])
		cg.flush(in.Dst)
	case IRParam:
		d := cg.dst(in.Dst)
		cg.emitf("mov %s, %s", d, isa.RegName(isa.RegA0+int(in.Imm)))
		cg.flush(in.Dst)
	case IRLoad:
		a := cg.src(in.A, scratchA)
		d := cg.dst(in.Dst)
		op := "lw"
		if in.Size == 1 {
			op = "lbu"
		}
		cg.emitf("%s %s, %d(%s)", op, d, in.Imm, a)
		cg.flush(in.Dst)
	case IRStore:
		a := cg.src(in.A, scratchA)
		b := cg.src(in.B, scratchB)
		op := "sw"
		if in.Size == 1 {
			op = "sb"
		}
		cg.emitf("%s %s, %d(%s)", op, b, in.Imm, a)
	case IRBin:
		cg.binInst(in)
	case IRCall:
		for i, arg := range in.Args {
			cg.emitf("mov %s, %s", isa.RegName(isa.RegA0+i), cg.src(arg, scratchA))
		}
		cg.emitf("call %s", in.Sym)
		if in.Dst != 0 {
			d := cg.dst(in.Dst)
			cg.emitf("mov %s, a0", d)
			cg.flush(in.Dst)
		}
	case IRSys:
		if in.A != 0 {
			cg.emitf("mov a0, %s", cg.src(in.A, scratchA))
		}
		cg.emitf("sys %d", in.Imm)
		if in.Dst != 0 {
			d := cg.dst(in.Dst)
			cg.emitf("mov %s, a0", d)
			cg.flush(in.Dst)
		}
	case IRRet:
		if in.A != 0 {
			cg.emitf("mov a0, %s", cg.src(in.A, scratchA))
		}
		cg.emitf("j .L_%s_ret", cg.f.Name)
	}
}

// regBinNames maps BinOp to the three-register mnemonic.
var regBinNames = [...]string{
	BAdd: "add", BSub: "sub", BMul: "mul", BDiv: "div", BRem: "rem",
	BAnd: "and", BOr: "or", BXor: "xor", BShl: "sll", BShr: "srl",
	BSar: "sra", BSlt: "slt", BSltu: "sltu", BSeq: "seq", BSne: "sne",
}

// immBinNames maps BinOp to its immediate form, when one exists.
var immBinNames = map[BinOp]string{
	BAdd: "addi", BAnd: "andi", BOr: "ori", BXor: "xori",
	BShl: "slli", BShr: "srli", BSar: "srai", BSlt: "slti",
}

func (cg *codegen) binInst(in *IRInst) {
	a := cg.src(in.A, scratchA)
	if !in.HasImm {
		b := cg.src(in.B, scratchB)
		d := cg.dst(in.Dst)
		cg.emitf("%s %s, %s, %s", regBinNames[in.Bin], d, a, b)
		cg.flush(in.Dst)
		return
	}
	d := cg.dst(in.Dst)
	imm := in.Imm
	emitted := false
	switch in.Bin {
	case BAdd, BSlt:
		if fitsSImm(imm) {
			cg.emitf("%s %s, %s, %d", immBinNames[in.Bin], d, a, imm)
			emitted = true
		}
	case BSub:
		if fitsSImm(-imm) {
			cg.emitf("addi %s, %s, %d", d, a, -imm)
			emitted = true
		}
	case BAnd, BOr:
		if fitsUImm(imm) {
			cg.emitf("%s %s, %s, %d", immBinNames[in.Bin], d, a, imm)
			emitted = true
		}
	case BXor:
		if imm == -1 {
			cg.emitf("nor %s, %s, zero", d, a)
			emitted = true
		} else if fitsUImm(imm) {
			cg.emitf("xori %s, %s, %d", d, a, imm)
			emitted = true
		}
	case BShl, BShr, BSar:
		cg.emitf("%s %s, %s, %d", immBinNames[in.Bin], d, a, imm&63)
		emitted = true
	}
	if !emitted {
		// Materialize the immediate in the B scratch and use the register
		// form (a may be the A scratch; they never collide).
		cg.emitf("li %s, %d", scratchB, imm)
		cg.emitf("%s %s, %s, %s", regBinNames[in.Bin], d, a, scratchB)
	}
	cg.flush(in.Dst)
}
