package minic

import "fmt"

// irgen lowers one checked function to TAC.
//
// Storage policy: at -O0 every local lives in a frame slot with loads and
// stores around each access (classic unoptimized code). At -O1 and above,
// scalar locals whose address is never taken are promoted to virtual
// registers.
type irgen struct {
	fn      *FuncDecl
	file    *File
	out     *IRFunc
	promote bool
	nextLbl int64
	brk     []int64 // break label stack
	cont    []int64 // continue label stack
	strTab  map[string]string
}

// genFunc lowers fn. strTab maps string literal text to data labels,
// shared across all functions of the compilation.
func genFunc(fn *FuncDecl, file *File, promote bool, strTab map[string]string) *IRFunc {
	g := &irgen{
		fn:      fn,
		file:    file,
		out:     &IRFunc{Name: fn.Name, NumArgs: len(fn.Params)},
		promote: promote,
		strTab:  strTab,
	}
	for i, p := range fn.Params {
		g.bindVar(p.Sym)
		if p.Sym.Slot >= 0 {
			// Memory-resident parameter: store the incoming register.
			tmp := g.newReg()
			g.emit(IRInst{Op: IRParam, Dst: tmp, Imm: int64(i)})
			addr := g.newReg()
			g.emit(IRInst{Op: IRAddrL, Dst: addr, Imm: int64(p.Sym.Slot)})
			g.emit(IRInst{Op: IRStore, A: addr, B: tmp, Size: sizeOf(p.Sym.Type)})
		} else {
			g.emit(IRInst{Op: IRParam, Dst: VReg(p.Sym.VReg), Imm: int64(i)})
		}
	}
	g.stmt(fn.Body)
	// Implicit return (value 0 for non-void, as a defined fallback).
	if n := len(g.out.Insts); n == 0 || g.out.Insts[n-1].Op != IRRet {
		if fn.Ret.Kind == TVoid {
			g.emit(IRInst{Op: IRRet})
		} else {
			z := g.newReg()
			g.emit(IRInst{Op: IRConst, Dst: z, Imm: 0})
			g.emit(IRInst{Op: IRRet, A: z})
		}
	}
	return g.out
}

func (g *irgen) emit(in IRInst) {
	if in.Op == IRCall {
		g.out.HasCalls = true
	}
	g.out.Insts = append(g.out.Insts, in)
}

func (g *irgen) newReg() VReg {
	g.out.NumVRegs++
	return VReg(g.out.NumVRegs)
}

func (g *irgen) newLabel() int64 {
	g.nextLbl++
	return g.nextLbl
}

func (g *irgen) label(l int64) { g.emit(IRInst{Op: IRLabel, Imm: l}) }
func (g *irgen) jump(l int64)  { g.emit(IRInst{Op: IRJmp, Imm: l}) }

// bindVar assigns storage to a local/param symbol.
func (g *irgen) bindVar(sym *VarSym) {
	if g.promote && sym.Type.IsScalar() && !sym.AddrTaken {
		sym.Slot = -1
		sym.VReg = int(g.newReg())
		return
	}
	sym.Slot = len(g.out.Slots)
	g.out.Slots = append(g.out.Slots, Slot{
		Size:  sym.Type.Size(),
		Align: sym.Type.Align(),
		Name:  sym.Name,
	})
}

// sizeOf returns the load/store width for a scalar type.
func sizeOf(t *Type) uint8 {
	if t.Kind == TChar {
		return 1
	}
	return 8
}

// --- statements ---------------------------------------------------------------

func (g *irgen) stmt(s *Stmt) {
	if s == nil {
		return
	}
	switch s.Kind {
	case SBlock, SGroup:
		for _, sub := range s.List {
			g.stmt(sub)
		}
	case SDecl:
		d := s.Decl
		g.bindVar(d.Sym)
		if d.Init != nil {
			v := g.rvalue(d.Init)
			g.storeVar(d.Sym, v)
		}
	case SExpr:
		g.rvalue(s.Expr)
	case SIf:
		elseL, endL := g.newLabel(), g.newLabel()
		g.cond(s.Expr, elseL, false)
		g.stmt(s.Body)
		if s.Else != nil {
			g.jump(endL)
			g.label(elseL)
			g.stmt(s.Else)
			g.label(endL)
		} else {
			g.label(elseL)
		}
	case SWhile:
		headL, endL := g.newLabel(), g.newLabel()
		g.label(headL)
		g.cond(s.Expr, endL, false)
		g.brk = append(g.brk, endL)
		g.cont = append(g.cont, headL)
		g.stmt(s.Body)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
		g.jump(headL)
		g.label(endL)
	case SFor:
		headL, postL, endL := g.newLabel(), g.newLabel(), g.newLabel()
		g.stmt(s.Init)
		g.label(headL)
		if s.Expr != nil {
			g.cond(s.Expr, endL, false)
		}
		g.brk = append(g.brk, endL)
		g.cont = append(g.cont, postL)
		g.stmt(s.Body)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
		g.label(postL)
		if s.Post != nil {
			g.rvalue(s.Post)
		}
		g.jump(headL)
		g.label(endL)
	case SReturn:
		if s.Expr != nil {
			v := g.rvalue(s.Expr)
			g.emit(IRInst{Op: IRRet, A: v})
		} else {
			g.emit(IRInst{Op: IRRet})
		}
	case SBreak:
		g.jump(g.brk[len(g.brk)-1])
	case SContinue:
		g.jump(g.cont[len(g.cont)-1])
	case SEmpty:
	}
}

// cond emits a branch to target when the condition is false (jumpIfTrue
// false) or true (jumpIfTrue true), applying short-circuit evaluation and
// compare/branch fusion.
func (g *irgen) cond(e *Expr, target int64, jumpIfTrue bool) {
	switch {
	case e.Kind == EUnary && e.Op == "!":
		g.cond(e.L, target, !jumpIfTrue)
		return
	case e.Kind == EBinary && e.Op == "&&":
		if jumpIfTrue {
			skip := g.newLabel()
			g.cond(e.L, skip, false)
			g.cond(e.R, target, true)
			g.label(skip)
		} else {
			g.cond(e.L, target, false)
			g.cond(e.R, target, false)
		}
		return
	case e.Kind == EBinary && e.Op == "||":
		if jumpIfTrue {
			g.cond(e.L, target, true)
			g.cond(e.R, target, true)
		} else {
			skip := g.newLabel()
			g.cond(e.L, skip, true)
			g.cond(e.R, target, false)
			g.label(skip)
		}
		return
	case e.Kind == EBinary && (e.Op == "==" || e.Op == "!="):
		// MIPS-style: beq/bne compare two registers directly.
		cc := CCEq
		if e.Op == "!=" {
			cc = CCNe
		}
		a := g.rvalue(e.L)
		b := g.rvalue(e.R)
		if !jumpIfTrue {
			cc = cc.Negate()
		}
		g.emit(IRInst{Op: IRCJmp, CC: cc, A: a, B: b, Imm: target})
		return
	case e.Kind == EBinary && comparisonCC(e.Op) != nil:
		// MIPS-style ordered comparison: materialize the condition with
		// slt (a Set-category instruction, as the paper's traces show),
		// then branch on zero/non-zero. For <= and >= the slt computes
		// the negated condition and the branch polarity flips.
		a := g.rvalue(e.L)
		b := g.rvalue(e.R)
		slt := g.newReg()
		truthy := jumpIfTrue
		switch e.Op {
		case "<":
			g.emit(IRInst{Op: IRBin, Bin: BSlt, Dst: slt, A: a, B: b})
		case ">":
			g.emit(IRInst{Op: IRBin, Bin: BSlt, Dst: slt, A: b, B: a})
		case "<=": // !(b < a)
			g.emit(IRInst{Op: IRBin, Bin: BSlt, Dst: slt, A: b, B: a})
			truthy = !truthy
		case ">=": // !(a < b)
			g.emit(IRInst{Op: IRBin, Bin: BSlt, Dst: slt, A: a, B: b})
			truthy = !truthy
		}
		z := g.newReg()
		g.emit(IRInst{Op: IRConst, Dst: z, Imm: 0})
		cc := CCEq
		if truthy {
			cc = CCNe
		}
		g.emit(IRInst{Op: IRCJmp, CC: cc, A: slt, B: z, Imm: target})
		return
	}
	// General scalar condition: compare with zero.
	v := g.rvalue(e)
	z := g.newReg()
	g.emit(IRInst{Op: IRConst, Dst: z, Imm: 0})
	cc := CCNe
	if !jumpIfTrue {
		cc = CCEq
	}
	g.emit(IRInst{Op: IRCJmp, CC: cc, A: v, B: z, Imm: target})
}

// comparisonCC reports whether op is an ordered comparison lowered via
// slt (the ==/!= cases branch directly and are handled earlier).
func comparisonCC(op string) *CC {
	switch op {
	case "<", ">", "<=", ">=":
		cc := CCLt
		return &cc
	default:
		return nil
	}
}

// --- lvalues ------------------------------------------------------------------

// lval describes a storage location: either a promoted vreg or a memory
// address with constant offset and access size.
type lval struct {
	reg  VReg  // non-zero: promoted scalar
	addr VReg  // memory: base address
	off  int64 // memory: constant byte offset
	size uint8 // memory: access width
}

// lvalue lowers an lvalue expression to a location.
func (g *irgen) lvalue(e *Expr) lval {
	switch e.Kind {
	case EVar:
		sym := e.Sym
		if sym.Global {
			a := g.newReg()
			g.emit(IRInst{Op: IRAddrG, Dst: a, Sym: sym.Label})
			return lval{addr: a, size: sizeOf(sym.Type)}
		}
		if sym.Slot < 0 {
			return lval{reg: VReg(sym.VReg)}
		}
		a := g.newReg()
		g.emit(IRInst{Op: IRAddrL, Dst: a, Imm: int64(sym.Slot)})
		return lval{addr: a, size: sizeOf(sym.Type)}
	case EUnary: // *p
		p := g.rvalue(e.L)
		return lval{addr: p, size: sizeOf(e.Type)}
	case EIndex:
		base := g.arrayBase(e.L)
		elem := e.Type
		idx := g.rvalue(e.R)
		addr := g.scaledAdd(base, idx, elem.Size())
		return lval{addr: addr, size: sizeOf(elem)}
	case EField:
		var base VReg
		var off int64
		if e.Arrow {
			base = g.rvalue(e.L)
		} else {
			loc := g.lvalue(e.L)
			base = loc.addr
			off = loc.off
		}
		st := e.L.Type
		if e.Arrow {
			st = e.L.Type.Elem
		}
		f := st.Str.Field(e.Name)
		return lval{addr: base, off: off + f.Offset, size: sizeOf(e.Type)}
	default:
		panic(fmt.Sprintf("irgen: not an lvalue: kind %d at %s", e.Kind, e.Pos))
	}
}

// arrayBase produces the base address for an indexing operation: the
// decayed array address or the pointer value.
func (g *irgen) arrayBase(e *Expr) VReg {
	if e.Type != nil && e.Type.Kind == TArray {
		loc := g.lvalue(e)
		if loc.off != 0 {
			r := g.newReg()
			g.emit(IRInst{Op: IRBin, Bin: BAdd, Dst: r, A: loc.addr, HasImm: true, Imm: loc.off})
			return r
		}
		return loc.addr
	}
	return g.rvalue(e)
}

// scaledAdd computes base + idx*size, using shifts for power-of-two
// element sizes (as real compilers do at every optimization level).
func (g *irgen) scaledAdd(base, idx VReg, size int64) VReg {
	scaled := idx
	switch {
	case size == 1:
	case size&(size-1) == 0:
		sh := g.newReg()
		g.emit(IRInst{Op: IRBin, Bin: BShl, Dst: sh, A: idx, HasImm: true, Imm: log2(size)})
		scaled = sh
	default:
		m := g.newReg()
		g.emit(IRInst{Op: IRBin, Bin: BMul, Dst: m, A: idx, HasImm: true, Imm: size})
		scaled = m
	}
	r := g.newReg()
	g.emit(IRInst{Op: IRBin, Bin: BAdd, Dst: r, A: base, B: scaled})
	return r
}

func log2(n int64) int64 {
	k := int64(0)
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// load reads a location into a vreg.
func (g *irgen) load(loc lval) VReg {
	if loc.reg != 0 {
		return loc.reg
	}
	d := g.newReg()
	g.emit(IRInst{Op: IRLoad, Dst: d, A: loc.addr, Imm: loc.off, Size: loc.size})
	return d
}

// store writes v into a location.
func (g *irgen) store(loc lval, v VReg) {
	if loc.reg != 0 {
		g.emit(IRInst{Op: IRMov, Dst: loc.reg, A: v})
		return
	}
	g.emit(IRInst{Op: IRStore, A: loc.addr, B: v, Imm: loc.off, Size: loc.size})
}

// storeVar assigns v to a just-declared local.
func (g *irgen) storeVar(sym *VarSym, v VReg) {
	if sym.Slot < 0 {
		g.emit(IRInst{Op: IRMov, Dst: VReg(sym.VReg), A: v})
		return
	}
	a := g.newReg()
	g.emit(IRInst{Op: IRAddrL, Dst: a, Imm: int64(sym.Slot)})
	g.emit(IRInst{Op: IRStore, A: a, B: v, Size: sizeOf(sym.Type)})
}

// --- rvalues ------------------------------------------------------------------

var binOpMap = map[string]BinOp{
	"+": BAdd, "-": BSub, "*": BMul, "/": BDiv, "%": BRem,
	"&": BAnd, "|": BOr, "^": BXor, "<<": BShl, ">>": BSar,
}

// rvalue lowers an expression to a value in a vreg.
func (g *irgen) rvalue(e *Expr) VReg {
	switch e.Kind {
	case ENum:
		d := g.newReg()
		g.emit(IRInst{Op: IRConst, Dst: d, Imm: e.Num})
		return d
	case ESizeof:
		d := g.newReg()
		g.emit(IRInst{Op: IRConst, Dst: d, Imm: e.TypeLit.Size()})
		return d
	case EStr:
		lbl, ok := g.strTab[e.Str]
		if !ok {
			lbl = fmt.Sprintf("str_%d", len(g.strTab))
			g.strTab[e.Str] = lbl
			g.file.Strings[lbl] = e.Str
		}
		d := g.newReg()
		g.emit(IRInst{Op: IRAddrG, Dst: d, Sym: lbl})
		return d
	case EVar:
		if e.Type.Kind == TArray || e.Type.Kind == TStruct {
			loc := g.lvalue(e) // decay to address
			return g.withOffset(loc)
		}
		return g.load(g.lvalue(e))
	case EIndex, EField:
		if e.Type.Kind == TArray || e.Type.Kind == TStruct {
			return g.withOffset(g.lvalue(e))
		}
		return g.load(g.lvalue(e))
	case EAssign:
		v := g.rvalue(e.R)
		loc := g.lvalue(e.L)
		g.store(loc, v)
		return v
	case EUnary:
		return g.unary(e)
	case EBinary:
		return g.binary(e)
	case ECond:
		d := g.newReg()
		elseL, endL := g.newLabel(), g.newLabel()
		g.cond(e.Cond, elseL, false)
		v1 := g.rvalue(e.L)
		g.emit(IRInst{Op: IRMov, Dst: d, A: v1})
		g.jump(endL)
		g.label(elseL)
		v2 := g.rvalue(e.R)
		g.emit(IRInst{Op: IRMov, Dst: d, A: v2})
		g.label(endL)
		return d
	case ECall:
		return g.call(e)
	default:
		panic(fmt.Sprintf("irgen: unknown expression kind %d at %s", e.Kind, e.Pos))
	}
}

// withOffset materializes addr+off for aggregate decay.
func (g *irgen) withOffset(loc lval) VReg {
	if loc.off == 0 {
		return loc.addr
	}
	r := g.newReg()
	g.emit(IRInst{Op: IRBin, Bin: BAdd, Dst: r, A: loc.addr, HasImm: true, Imm: loc.off})
	return r
}

func (g *irgen) unary(e *Expr) VReg {
	switch e.Op {
	case "-":
		v := g.rvalue(e.L)
		z := g.newReg()
		g.emit(IRInst{Op: IRConst, Dst: z, Imm: 0})
		d := g.newReg()
		g.emit(IRInst{Op: IRBin, Bin: BSub, Dst: d, A: z, B: v})
		return d
	case "~":
		v := g.rvalue(e.L)
		d := g.newReg()
		g.emit(IRInst{Op: IRBin, Bin: BXor, Dst: d, A: v, HasImm: true, Imm: -1})
		return d
	case "!":
		v := g.rvalue(e.L)
		z := g.newReg()
		g.emit(IRInst{Op: IRConst, Dst: z, Imm: 0})
		d := g.newReg()
		g.emit(IRInst{Op: IRBin, Bin: BSeq, Dst: d, A: v, B: z})
		return d
	case "*":
		return g.load(g.lvalue(e))
	case "&":
		loc := g.lvalue(e.L)
		if loc.reg != 0 {
			panic("irgen: address of promoted register (checker must prevent)")
		}
		return g.withOffset(loc)
	default:
		panic("irgen: unknown unary " + e.Op)
	}
}

func (g *irgen) binary(e *Expr) VReg {
	switch e.Op {
	case "&&", "||":
		// Value context: produce 0/1 via branches.
		d := g.newReg()
		falseL, endL := g.newLabel(), g.newLabel()
		g.cond(e, falseL, false)
		one := g.newReg()
		g.emit(IRInst{Op: IRConst, Dst: one, Imm: 1})
		g.emit(IRInst{Op: IRMov, Dst: d, A: one})
		g.jump(endL)
		g.label(falseL)
		zero := g.newReg()
		g.emit(IRInst{Op: IRConst, Dst: zero, Imm: 0})
		g.emit(IRInst{Op: IRMov, Dst: d, A: zero})
		g.label(endL)
		return d
	case "==", "!=", "<", "<=", ">", ">=":
		return g.comparison(e)
	}

	lt := decay(e.L.Type)
	rt := decay(e.R.Type)

	// Pointer arithmetic scaling.
	if e.Op == "+" || e.Op == "-" {
		if lt.Kind == TPtr && rt.Kind == TPtr {
			// Pointer difference in elements.
			a := g.rvalue(e.L)
			b := g.rvalue(e.R)
			diff := g.newReg()
			g.emit(IRInst{Op: IRBin, Bin: BSub, Dst: diff, A: a, B: b})
			return g.divBySize(diff, lt.Elem.Size())
		}
		if lt.Kind == TPtr && rt.IsInteger() {
			base := g.rvalue(e.L)
			idx := g.rvalue(e.R)
			if e.Op == "-" {
				idx = g.negate(idx)
			}
			return g.scaledAdd(base, idx, lt.Elem.Size())
		}
		if rt.Kind == TPtr && lt.IsInteger() { // int + ptr
			idx := g.rvalue(e.L)
			base := g.rvalue(e.R)
			return g.scaledAdd(base, idx, rt.Elem.Size())
		}
	}

	a := g.rvalue(e.L)
	b := g.rvalue(e.R)
	d := g.newReg()
	g.emit(IRInst{Op: IRBin, Bin: binOpMap[e.Op], Dst: d, A: a, B: b})
	return d
}

func (g *irgen) negate(v VReg) VReg {
	z := g.newReg()
	g.emit(IRInst{Op: IRConst, Dst: z, Imm: 0})
	d := g.newReg()
	g.emit(IRInst{Op: IRBin, Bin: BSub, Dst: d, A: z, B: v})
	return d
}

func (g *irgen) divBySize(v VReg, size int64) VReg {
	if size == 1 {
		return v
	}
	d := g.newReg()
	if size&(size-1) == 0 {
		// Pointers are positive, so an arithmetic shift divides exactly.
		g.emit(IRInst{Op: IRBin, Bin: BSar, Dst: d, A: v, HasImm: true, Imm: log2(size)})
	} else {
		g.emit(IRInst{Op: IRBin, Bin: BDiv, Dst: d, A: v, HasImm: true, Imm: size})
	}
	return d
}

// comparison lowers relational operators to slt/seq/sne combinations.
func (g *irgen) comparison(e *Expr) VReg {
	a := g.rvalue(e.L)
	b := g.rvalue(e.R)
	d := g.newReg()
	switch e.Op {
	case "==":
		g.emit(IRInst{Op: IRBin, Bin: BSeq, Dst: d, A: a, B: b})
	case "!=":
		g.emit(IRInst{Op: IRBin, Bin: BSne, Dst: d, A: a, B: b})
	case "<":
		g.emit(IRInst{Op: IRBin, Bin: BSlt, Dst: d, A: a, B: b})
	case ">":
		g.emit(IRInst{Op: IRBin, Bin: BSlt, Dst: d, A: b, B: a})
	case "<=": // !(b < a)
		t := g.newReg()
		g.emit(IRInst{Op: IRBin, Bin: BSlt, Dst: t, A: b, B: a})
		g.emit(IRInst{Op: IRBin, Bin: BXor, Dst: d, A: t, HasImm: true, Imm: 1})
	case ">=": // !(a < b)
		t := g.newReg()
		g.emit(IRInst{Op: IRBin, Bin: BSlt, Dst: t, A: a, B: b})
		g.emit(IRInst{Op: IRBin, Bin: BXor, Dst: d, A: t, HasImm: true, Imm: 1})
	}
	return d
}

func (g *irgen) call(e *Expr) VReg {
	if e.Builtin != BuiltinNone {
		return g.builtin(e)
	}
	args := make([]VReg, len(e.Args))
	for i, a := range e.Args {
		args[i] = g.rvalue(a)
	}
	var d VReg
	if e.Fn.Ret.Kind != TVoid {
		d = g.newReg()
	}
	g.emit(IRInst{Op: IRCall, Dst: d, Sym: e.Fn.Name, Args: args})
	if d == 0 {
		// Void result used in expression-statement position only (the
		// checker guarantees value uses are typed); return a dummy.
		d = g.newReg()
		g.emit(IRInst{Op: IRConst, Dst: d, Imm: 0})
	}
	return d
}

func (g *irgen) builtin(e *Expr) VReg {
	var arg VReg
	if len(e.Args) > 0 {
		arg = g.rvalue(e.Args[0])
	}
	d := g.newReg()
	switch e.Builtin {
	case BuiltinGetc:
		g.emit(IRInst{Op: IRSys, Dst: d, Imm: 1})
	case BuiltinPutc:
		g.emit(IRInst{Op: IRSys, Dst: d, Imm: 2, A: arg})
	case BuiltinSbrk:
		g.emit(IRInst{Op: IRSys, Dst: d, Imm: 3, A: arg})
	case BuiltinExit:
		g.emit(IRInst{Op: IRSys, Dst: d, Imm: 4, A: arg})
	}
	return d
}
