package minic

import "fmt"

// TypeKind enumerates MiniC types.
type TypeKind uint8

// Type kinds.
const (
	TVoid TypeKind = iota
	TInt           // 64-bit signed
	TChar          // unsigned byte
	TPtr
	TArray
	TStruct
)

// Type describes a MiniC type. Types are interned enough for pointer
// comparison to be unreliable; use Same.
type Type struct {
	Kind TypeKind
	Elem *Type      // Ptr, Array element
	Len  int64      // Array length
	Str  *StructDef // Struct definition
}

// StructDef is a named struct with laid-out fields.
type StructDef struct {
	Name   string
	Fields []Field
	size   int64
	align  int64
}

// Field is one struct member with its byte offset.
type Field struct {
	Name   string
	Type   *Type
	Offset int64
}

// Singleton scalar types.
var (
	typeVoid = &Type{Kind: TVoid}
	typeInt  = &Type{Kind: TInt}
	typeChar = &Type{Kind: TChar}
)

// PtrTo returns a pointer type to elem.
func PtrTo(elem *Type) *Type { return &Type{Kind: TPtr, Elem: elem} }

// ArrayOf returns an array type.
func ArrayOf(elem *Type, n int64) *Type { return &Type{Kind: TArray, Elem: elem, Len: n} }

// Size returns the byte size of the type.
func (t *Type) Size() int64 {
	switch t.Kind {
	case TInt, TPtr:
		return 8
	case TChar:
		return 1
	case TArray:
		return t.Elem.Size() * t.Len
	case TStruct:
		return t.Str.size
	default:
		return 0
	}
}

// Align returns the byte alignment of the type.
func (t *Type) Align() int64 {
	switch t.Kind {
	case TInt, TPtr:
		return 8
	case TChar:
		return 1
	case TArray:
		return t.Elem.Align()
	case TStruct:
		return t.Str.align
	default:
		return 1
	}
}

// IsScalar reports whether values of the type fit in one register
// (int, char or pointer).
func (t *Type) IsScalar() bool {
	return t.Kind == TInt || t.Kind == TChar || t.Kind == TPtr
}

// IsInteger reports int or char.
func (t *Type) IsInteger() bool { return t.Kind == TInt || t.Kind == TChar }

// Same reports structural type identity.
func (t *Type) Same(o *Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TPtr, TArray:
		return t.Elem.Same(o.Elem) && (t.Kind != TArray || t.Len == o.Len)
	case TStruct:
		return t.Str == o.Str
	default:
		return true
	}
}

func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TChar:
		return "char"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case TStruct:
		return "struct " + t.Str.Name
	default:
		return "?"
	}
}

// layout assigns field offsets and computes size/alignment.
func (s *StructDef) layout() {
	var off, maxAlign int64 = 0, 1
	for i := range s.Fields {
		f := &s.Fields[i]
		a := f.Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		off = roundUp(off, a)
		f.Offset = off
		off += f.Type.Size()
	}
	s.align = maxAlign
	s.size = roundUp(off, maxAlign)
}

// Field returns the named field, or nil.
func (s *StructDef) Field(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

func roundUp(n, align int64) int64 {
	return (n + align - 1) &^ (align - 1)
}
