package minic

import "fmt"

// parser builds the untyped AST. Struct types are resolved during parsing
// (definitions must precede use in type syntax, as in C for sized use);
// identifiers and function calls are resolved later by the checker, so
// functions may be defined in any order.
type parser struct {
	toks []token
	pos  int
	errs *ErrorList
	file *File
}

// parse lexes and parses one source file into file (which accumulates
// across multiple sources).
func parse(name, src string, file *File, errs *ErrorList) {
	lx := newLexer(name, src, errs)
	var toks []token
	for {
		t := lx.next()
		toks = append(toks, t)
		if t.kind == tokEOF {
			break
		}
	}
	p := &parser{toks: toks, errs: errs, file: file}
	p.parseFile()
}

func (p *parser) tok() token { return p.toks[p.pos] }
func (p *parser) peek(n int) token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(pos Pos, format string, args ...any) {
	*p.errs = append(*p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// sync skips tokens until a likely statement/declaration boundary,
// bounding error cascades.
func (p *parser) sync() {
	depth := 0
	for {
		t := p.tok()
		if t.kind == tokEOF {
			return
		}
		if t.kind == tokPunct {
			switch t.text {
			case "{":
				depth++
			case "}":
				if depth == 0 {
					return
				}
				depth--
			case ";":
				if depth == 0 {
					p.advance()
					return
				}
			}
		}
		p.advance()
	}
}

func (p *parser) isPunct(s string) bool {
	t := p.tok()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.tok()
	return t.kind == tokKeyword && t.text == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) || p.isKeyword(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(s string) token {
	t := p.tok()
	if p.isPunct(s) || p.isKeyword(s) {
		return p.advance()
	}
	p.errorf(t.pos, "expected %q, found %s", s, t)
	return t
}

func (p *parser) expectIdent() string {
	t := p.tok()
	if t.kind == tokIdent {
		p.advance()
		return t.text
	}
	p.errorf(t.pos, "expected identifier, found %s", t)
	return "_error_"
}

// --- declarations -----------------------------------------------------------

func (p *parser) parseFile() {
	for p.tok().kind != tokEOF {
		start := p.pos
		switch {
		case p.isKeyword("struct") && p.peek(2).kind == tokPunct && p.peek(2).text == "{":
			p.structDef()
		case p.atTypeStart():
			p.topDecl()
		default:
			p.errorf(p.tok().pos, "expected declaration, found %s", p.tok())
			p.sync()
		}
		if p.pos == start { // no progress; force it
			p.advance()
		}
	}
}

// atTypeStart reports whether the current token begins a type.
func (p *parser) atTypeStart() bool {
	return p.isKeyword("int") || p.isKeyword("char") || p.isKeyword("void") || p.isKeyword("struct")
}

// baseType parses int/char/void/struct-Name with trailing '*'s.
func (p *parser) baseType() *Type {
	pos := p.tok().pos
	var t *Type
	switch {
	case p.accept("int"):
		t = typeInt
	case p.accept("char"):
		t = typeChar
	case p.accept("void"):
		t = typeVoid
	case p.accept("struct"):
		name := p.expectIdent()
		def, ok := p.file.Structs[name]
		if !ok {
			p.errorf(pos, "undefined struct %q", name)
			def = &StructDef{Name: name}
			def.layout()
			p.file.Structs[name] = def
		}
		t = &Type{Kind: TStruct, Str: def}
	default:
		p.errorf(pos, "expected type, found %s", p.tok())
		t = typeInt
	}
	for p.accept("*") {
		t = PtrTo(t)
	}
	return t
}

// structDef parses: struct Name { fields } ;
func (p *parser) structDef() {
	p.expect("struct")
	name := p.expectIdent()
	def := &StructDef{Name: name}
	if _, dup := p.file.Structs[name]; dup {
		p.errorf(p.tok().pos, "duplicate struct %q", name)
	}
	// Register before parsing fields so self-referential pointer fields
	// (e.g. linked list nodes) resolve.
	p.file.Structs[name] = def
	p.expect("{")
	for !p.isPunct("}") && p.tok().kind != tokEOF {
		ft := p.baseType()
		for {
			fname := p.expectIdent()
			t := ft
			if p.accept("[") {
				n := p.constArrayLen()
				p.expect("]")
				t = ArrayOf(ft, n)
			}
			def.Fields = append(def.Fields, Field{Name: fname, Type: t})
			if !p.accept(",") {
				break
			}
		}
		p.expect(";")
	}
	p.expect("}")
	p.expect(";")
	def.layout()
	p.file.Structs[name] = def
}

// constArrayLen parses a constant expression and folds it to an int.
func (p *parser) constArrayLen() int64 {
	pos := p.tok().pos
	e := p.ternary()
	v, ok := foldConst(e)
	if !ok || v <= 0 {
		p.errorf(pos, "array length must be a positive constant")
		return 1
	}
	return v
}

// topDecl parses a global variable or a function definition.
func (p *parser) topDecl() {
	base := p.baseType()
	namePos := p.tok().pos
	name := p.expectIdent()

	if p.isPunct("(") { // function
		p.funcDecl(base, name, namePos)
		return
	}

	// Global variable(s).
	for {
		t := base
		if p.accept("[") {
			n := p.constArrayLen()
			p.expect("]")
			t = ArrayOf(base, n)
		}
		g := &GlobalDecl{
			Sym: &VarSym{Name: name, Type: t, Global: true, Label: "g_" + name},
			Pos: namePos,
		}
		if p.accept("=") {
			if p.isPunct("{") {
				p.advance()
				for !p.isPunct("}") && p.tok().kind != tokEOF {
					g.InitList = append(g.InitList, p.ternary())
					if !p.accept(",") {
						break
					}
				}
				p.expect("}")
			} else {
				g.Init = p.ternary()
			}
		}
		p.file.Globals = append(p.file.Globals, g)
		if !p.accept(",") {
			break
		}
		namePos = p.tok().pos
		name = p.expectIdent()
	}
	p.expect(";")
}

func (p *parser) funcDecl(ret *Type, name string, pos Pos) {
	fn := &FuncDecl{Name: name, Ret: ret, Pos: pos}
	p.expect("(")
	if !p.isPunct(")") {
		if p.isKeyword("void") && p.peek(1).text == ")" {
			p.advance()
		} else {
			for {
				pt := p.baseType()
				pname := p.expectIdent()
				fn.Params = append(fn.Params, &VarDecl{Name: pname, Type: pt, Pos: pos})
				if !p.accept(",") {
					break
				}
			}
		}
	}
	p.expect(")")
	if p.accept(";") {
		// Prototype: accepted and discarded; the checker resolves calls
		// against definitions in any order.
		return
	}
	fn.Body = p.block()
	p.file.Funcs = append(p.file.Funcs, fn)
}

// --- statements --------------------------------------------------------------

func (p *parser) block() *Stmt {
	pos := p.tok().pos
	p.expect("{")
	s := &Stmt{Kind: SBlock, Pos: pos}
	for !p.isPunct("}") && p.tok().kind != tokEOF {
		start := p.pos
		s.List = append(s.List, p.statement())
		if p.pos == start {
			p.advance()
		}
	}
	p.expect("}")
	return s
}

func (p *parser) statement() *Stmt {
	pos := p.tok().pos
	switch {
	case p.isPunct("{"):
		return p.block()
	case p.accept(";"):
		return &Stmt{Kind: SEmpty, Pos: pos}
	case p.atTypeStart():
		return p.localDecl()
	case p.accept("if"):
		p.expect("(")
		cond := p.expression()
		p.expect(")")
		s := &Stmt{Kind: SIf, Pos: pos, Expr: cond, Body: p.statement()}
		if p.accept("else") {
			s.Else = p.statement()
		}
		return s
	case p.accept("while"):
		p.expect("(")
		cond := p.expression()
		p.expect(")")
		return &Stmt{Kind: SWhile, Pos: pos, Expr: cond, Body: p.statement()}
	case p.accept("for"):
		p.expect("(")
		s := &Stmt{Kind: SFor, Pos: pos}
		if !p.isPunct(";") {
			if p.atTypeStart() {
				s.Init = p.localDecl() // consumes the ';'
			} else {
				s.Init = &Stmt{Kind: SExpr, Pos: pos, Expr: p.expression()}
				p.expect(";")
			}
		} else {
			p.expect(";")
		}
		if !p.isPunct(";") {
			s.Expr = p.expression()
		}
		p.expect(";")
		if !p.isPunct(")") {
			s.Post = p.expression()
		}
		p.expect(")")
		s.Body = p.statement()
		return s
	case p.accept("return"):
		s := &Stmt{Kind: SReturn, Pos: pos}
		if !p.isPunct(";") {
			s.Expr = p.expression()
		}
		p.expect(";")
		return s
	case p.accept("break"):
		p.expect(";")
		return &Stmt{Kind: SBreak, Pos: pos}
	case p.accept("continue"):
		p.expect(";")
		return &Stmt{Kind: SContinue, Pos: pos}
	default:
		e := p.expression()
		p.expect(";")
		return &Stmt{Kind: SExpr, Pos: pos, Expr: e}
	}
}

func (p *parser) localDecl() *Stmt {
	pos := p.tok().pos
	base := p.baseType()
	block := &Stmt{Kind: SBlock, Pos: pos}
	for {
		name := p.expectIdent()
		t := base
		if p.accept("[") {
			n := p.constArrayLen()
			p.expect("]")
			t = ArrayOf(base, n)
		}
		d := &VarDecl{Name: name, Type: t, Pos: pos}
		if p.accept("=") {
			d.Init = p.ternary()
		}
		block.List = append(block.List, &Stmt{Kind: SDecl, Pos: pos, Decl: d})
		if !p.accept(",") {
			break
		}
	}
	p.expect(";")
	if len(block.List) == 1 {
		return block.List[0]
	}
	// Multi-declarator lines become a scope-transparent group.
	block.Kind = SGroup
	return block
}

// --- expressions --------------------------------------------------------------
//
// Precedence (low to high): = | ?: | || | && | "|" | ^ | & | == != |
// < <= > >= | << >> | + - | * / % | unary | postfix.

func (p *parser) expression() *Expr { return p.assignment() }

func (p *parser) assignment() *Expr {
	lhs := p.ternary()
	if p.isPunct("=") {
		pos := p.advance().pos
		rhs := p.assignment()
		return &Expr{Kind: EAssign, Pos: pos, L: lhs, R: rhs}
	}
	return lhs
}

func (p *parser) ternary() *Expr {
	cond := p.binary(0)
	if p.isPunct("?") {
		pos := p.advance().pos
		thenE := p.assignment()
		p.expect(":")
		elseE := p.ternary()
		return &Expr{Kind: ECond, Pos: pos, Cond: cond, L: thenE, R: elseE}
	}
	return cond
}

// binLevels defines binary operator precedence tiers, lowest first.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binary(level int) *Expr {
	if level >= len(binLevels) {
		return p.unary()
	}
	lhs := p.binary(level + 1)
	for {
		matched := false
		for _, op := range binLevels[level] {
			if p.isPunct(op) {
				pos := p.advance().pos
				rhs := p.binary(level + 1)
				lhs = &Expr{Kind: EBinary, Pos: pos, Op: op, L: lhs, R: rhs}
				matched = true
				break
			}
		}
		if !matched {
			return lhs
		}
	}
}

func (p *parser) unary() *Expr {
	pos := p.tok().pos
	for _, op := range []string{"-", "!", "~", "*", "&"} {
		if p.isPunct(op) {
			p.advance()
			return &Expr{Kind: EUnary, Pos: pos, Op: op, L: p.unary()}
		}
	}
	if p.isKeyword("sizeof") {
		p.advance()
		p.expect("(")
		t := p.baseType()
		if p.accept("[") {
			n := p.constArrayLen()
			p.expect("]")
			t = ArrayOf(t, n)
		}
		p.expect(")")
		return &Expr{Kind: ESizeof, Pos: pos, TypeLit: t}
	}
	return p.postfix()
}

func (p *parser) postfix() *Expr {
	e := p.primary()
	for {
		pos := p.tok().pos
		switch {
		case p.accept("["):
			idx := p.expression()
			p.expect("]")
			e = &Expr{Kind: EIndex, Pos: pos, L: e, R: idx}
		case p.accept("."):
			e = &Expr{Kind: EField, Pos: pos, L: e, Name: p.expectIdent()}
		case p.accept("->"):
			e = &Expr{Kind: EField, Pos: pos, L: e, Name: p.expectIdent(), Arrow: true}
		default:
			return e
		}
	}
}

func (p *parser) primary() *Expr {
	t := p.tok()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return &Expr{Kind: ENum, Pos: t.pos, Num: t.num}
	case t.kind == tokChar:
		p.advance()
		return &Expr{Kind: ENum, Pos: t.pos, Num: t.num}
	case t.kind == tokString:
		p.advance()
		return &Expr{Kind: EStr, Pos: t.pos, Str: t.str}
	case t.kind == tokIdent:
		p.advance()
		if p.isPunct("(") {
			p.advance()
			call := &Expr{Kind: ECall, Pos: t.pos, Name: t.text}
			if !p.isPunct(")") {
				for {
					call.Args = append(call.Args, p.assignment())
					if !p.accept(",") {
						break
					}
				}
			}
			p.expect(")")
			return call
		}
		return &Expr{Kind: EVar, Pos: t.pos, Name: t.text}
	case p.accept("("):
		e := p.expression()
		p.expect(")")
		return e
	default:
		p.errorf(t.pos, "expected expression, found %s", t)
		p.advance()
		return &Expr{Kind: ENum, Pos: t.pos}
	}
}

// foldConst evaluates a constant expression tree of literals, sizeof and
// pure operators; used for array lengths and global initializers.
func foldConst(e *Expr) (int64, bool) {
	switch e.Kind {
	case ENum:
		return e.Num, true
	case ESizeof:
		return e.TypeLit.Size(), true
	case EUnary:
		v, ok := foldConst(e.L)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case EBinary:
		a, ok1 := foldConst(e.L)
		b, ok2 := foldConst(e.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		return evalBinop(e.Op, a, b)
	case ECond:
		c, ok := foldConst(e.Cond)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return foldConst(e.L)
		}
		return foldConst(e.R)
	default:
		return 0, false
	}
}

// evalBinop computes a binary operator on constants with MiniC (= Go
// int64) semantics. Division by zero is not folded.
func evalBinop(op string, a, b int64) (int64, bool) {
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case "%":
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case "&":
		return a & b, true
	case "|":
		return a | b, true
	case "^":
		return a ^ b, true
	case "<<":
		return a << (uint64(b) & 63), true
	case ">>":
		return a >> (uint64(b) & 63), true
	case "==":
		return b2i(a == b), true
	case "!=":
		return b2i(a != b), true
	case "<":
		return b2i(a < b), true
	case "<=":
		return b2i(a <= b), true
	case ">":
		return b2i(a > b), true
	case ">=":
		return b2i(a >= b), true
	case "&&":
		return b2i(a != 0 && b != 0), true
	case "||":
		return b2i(a != 0 || b != 0), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
