package minic

// ExprKind enumerates expression node kinds.
type ExprKind uint8

// Expression kinds.
const (
	ENum    ExprKind = iota // integer / char literal (Num)
	EStr                    // string literal (Str), type char*
	EVar                    // identifier (Name, resolved to Sym)
	EBinary                 // L Op R
	EUnary                  // Op L  (-, !, ~, *, &)
	EAssign                 // L = R
	ECond                   // Cond ? L : R
	ECall                   // Name(Args), resolved to Fn or Builtin
	EIndex                  // L[R]
	EField                  // L.Name or L->Name (Arrow)
	ESizeof                 // sizeof(TypeLit)
)

// BuiltinID identifies compiler intrinsics.
type BuiltinID uint8

// Intrinsic functions lowered to SYS instructions.
const (
	BuiltinNone BuiltinID = iota
	BuiltinGetc
	BuiltinPutc
	BuiltinSbrk
	BuiltinExit
)

// Expr is a MiniC expression node. A single fat struct keeps the
// tree-walking code compact; Kind determines which fields are meaningful.
type Expr struct {
	Kind ExprKind
	Pos  Pos
	Type *Type // set by the checker

	Op      string  // operator spelling for EBinary/EUnary
	L, R    *Expr   // operands
	Cond    *Expr   // ECond condition
	Num     int64   // ENum value
	Str     string  // EStr value
	Name    string  // EVar/ECall/EField identifier
	Arrow   bool    // EField via ->
	Args    []*Expr // ECall arguments
	TypeLit *Type   // ESizeof operand

	Sym     *VarSym   // resolved variable (EVar)
	Fn      *FuncDecl // resolved callee (ECall)
	Builtin BuiltinID // resolved intrinsic (ECall)
}

// StmtKind enumerates statement node kinds.
type StmtKind uint8

// Statement kinds.
const (
	SExpr StmtKind = iota
	SDecl
	SIf
	SWhile
	SFor
	SReturn
	SBreak
	SContinue
	SBlock
	SGroup // multi-declarator line: like SBlock but introduces no scope
	SEmpty
)

// Stmt is a MiniC statement node.
type Stmt struct {
	Kind StmtKind
	Pos  Pos

	Expr *Expr   // SExpr, SReturn value, condition for SIf/SWhile/SFor
	Init *Stmt   // SFor initializer (SExpr or SDecl or SEmpty)
	Post *Expr   // SFor post expression
	Body *Stmt   // SIf then / loop body
	Else *Stmt   // SIf else
	List []*Stmt // SBlock
	Decl *VarDecl
}

// VarDecl is a local variable declaration.
type VarDecl struct {
	Name string
	Type *Type
	Init *Expr
	Pos  Pos
	Sym  *VarSym // set by the checker
}

// VarSym is a resolved variable (global, parameter or local).
type VarSym struct {
	Name      string
	Type      *Type
	Global    bool
	Param     bool
	AddrTaken bool // true when & is applied or the var is array/struct
	// Backend fields:
	Label string // globals: data symbol
	Slot  int    // locals: frame slot index (-1 = promoted to a vreg)
	VReg  int    // locals: virtual register when promoted
}

// GlobalDecl is one global variable with optional initializer.
type GlobalDecl struct {
	Sym *VarSym
	// Init is a scalar constant initializer; InitList initializes arrays.
	Init     *Expr
	InitList []*Expr
	Pos      Pos
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*VarDecl
	Body   *Stmt
	Pos    Pos
	// Inlinable marks single-return-expression leaf functions (-O3).
	Inlinable bool
}

// File is a parsed translation unit (possibly several concatenated
// sources).
type File struct {
	Structs map[string]*StructDef
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
	// Strings collects string literals for data emission: label -> text.
	Strings map[string]string
}
