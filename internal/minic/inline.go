package minic

// Leaf-function expression inlining (-O3). A function is inlinable when
// its body is a single `return expr;` whose expression has no side effects
// other than calls to other functions, is reasonably small, and does not
// call the function itself. A call site is inlined when every argument is
// side-effect free or the corresponding parameter is used at most once, so
// argument substitution preserves evaluation semantics.

const maxInlineNodes = 40

// inlineFile marks inlinable functions and rewrites call sites in every
// function body. One pass only: inlined bodies may contain calls to other
// inlinable functions, which stay as calls (bounded growth by design).
func inlineFile(file *File) {
	for _, fn := range file.Funcs {
		fn.Inlinable = inlinableBody(fn) != nil
	}
	for _, fn := range file.Funcs {
		inlineStmt(fn.Body, fn)
	}
}

// inlinableBody returns the single returned expression, or nil.
func inlinableBody(fn *FuncDecl) *Expr {
	if fn.Ret.Kind == TVoid || fn.Body == nil {
		return nil
	}
	body := fn.Body
	if body.Kind != SBlock || len(body.List) != 1 {
		return nil
	}
	ret := body.List[0]
	if ret.Kind != SReturn || ret.Expr == nil {
		return nil
	}
	e := ret.Expr
	if countNodes(e) > maxInlineNodes || hasAssign(e) || callsSelf(e, fn.Name) {
		return nil
	}
	return e
}

func countNodes(e *Expr) int {
	if e == nil {
		return 0
	}
	n := 1 + countNodes(e.L) + countNodes(e.R) + countNodes(e.Cond)
	for _, a := range e.Args {
		n += countNodes(a)
	}
	return n
}

func hasAssign(e *Expr) bool {
	if e == nil {
		return false
	}
	if e.Kind == EAssign {
		return true
	}
	if hasAssign(e.L) || hasAssign(e.R) || hasAssign(e.Cond) {
		return true
	}
	for _, a := range e.Args {
		if hasAssign(a) {
			return true
		}
	}
	return false
}

func callsSelf(e *Expr, name string) bool {
	if e == nil {
		return false
	}
	if e.Kind == ECall && e.Name == name {
		return true
	}
	if callsSelf(e.L, name) || callsSelf(e.R, name) || callsSelf(e.Cond, name) {
		return true
	}
	for _, a := range e.Args {
		if callsSelf(a, name) {
			return true
		}
	}
	return false
}

// paramUses counts occurrences of each parameter symbol in the body.
func paramUses(e *Expr, counts map[*VarSym]int) {
	if e == nil {
		return
	}
	if e.Kind == EVar && e.Sym != nil {
		counts[e.Sym]++
	}
	paramUses(e.L, counts)
	paramUses(e.R, counts)
	paramUses(e.Cond, counts)
	for _, a := range e.Args {
		paramUses(a, counts)
	}
}

func inlineStmt(s *Stmt, owner *FuncDecl) {
	if s == nil {
		return
	}
	s.Expr = inlineExpr(s.Expr, owner)
	s.Post = inlineExpr(s.Post, owner)
	if s.Decl != nil {
		s.Decl.Init = inlineExpr(s.Decl.Init, owner)
	}
	inlineStmt(s.Init, owner)
	inlineStmt(s.Body, owner)
	inlineStmt(s.Else, owner)
	for _, sub := range s.List {
		inlineStmt(sub, owner)
	}
}

func inlineExpr(e *Expr, owner *FuncDecl) *Expr {
	if e == nil {
		return nil
	}
	e.L = inlineExpr(e.L, owner)
	e.R = inlineExpr(e.R, owner)
	e.Cond = inlineExpr(e.Cond, owner)
	for i := range e.Args {
		e.Args[i] = inlineExpr(e.Args[i], owner)
	}
	if e.Kind != ECall || e.Fn == nil || !e.Fn.Inlinable || e.Fn == owner {
		return e
	}
	body := inlinableBody(e.Fn)
	if body == nil {
		return e
	}
	// Substitution safety: every argument pure, or its parameter used at
	// most once.
	counts := make(map[*VarSym]int)
	paramUses(body, counts)
	sub := make(map[*VarSym]*Expr, len(e.Fn.Params))
	for i, p := range e.Fn.Params {
		if i >= len(e.Args) {
			return e
		}
		arg := e.Args[i]
		if !pureExpr(arg) && counts[p.Sym] > 1 {
			return e
		}
		sub[p.Sym] = arg
	}
	return cloneExpr(body, sub)
}

// cloneExpr deep-copies an expression, replacing parameter references.
func cloneExpr(e *Expr, sub map[*VarSym]*Expr) *Expr {
	if e == nil {
		return nil
	}
	if e.Kind == EVar && e.Sym != nil {
		if repl, ok := sub[e.Sym]; ok {
			return repl
		}
	}
	cp := *e
	cp.L = cloneExpr(e.L, sub)
	cp.R = cloneExpr(e.R, sub)
	cp.Cond = cloneExpr(e.Cond, sub)
	if len(e.Args) > 0 {
		cp.Args = make([]*Expr, len(e.Args))
		for i, a := range e.Args {
			cp.Args[i] = cloneExpr(a, sub)
		}
	}
	return &cp
}
