package minic

import (
	"fmt"
	"strings"
	"testing"
)

// compileIR compiles a source and returns the final IR of each function.
func compileIR(t *testing.T, src string, opt int) map[string]*IRFunc {
	t.Helper()
	out := make(map[string]*IRFunc)
	_, err := Compile([]Source{{Name: "t.mc", Text: src}}, Options{
		Opt:       opt,
		NoRuntime: true,
		DumpIR:    func(f *IRFunc) { out[f.Name] = f },
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return out
}

func countOp(f *IRFunc, op IROp) int {
	n := 0
	for i := range f.Insts {
		if f.Insts[i].Op == op {
			n++
		}
	}
	return n
}

func countBin(f *IRFunc, bin BinOp) int {
	n := 0
	for i := range f.Insts {
		if f.Insts[i].Op == IRBin && f.Insts[i].Bin == bin {
			n++
		}
	}
	return n
}

func TestConstantFoldingRemovesArithmetic(t *testing.T) {
	src := `int main() { return 2 * 3 + 4 - 1; }`
	o0 := compileIR(t, src, 0)["main"]
	o1 := compileIR(t, src, 1)["main"]
	if countOp(o0, IRBin) == 0 {
		t.Fatal("-O0 should keep the arithmetic")
	}
	if got := countOp(o1, IRBin); got != 0 {
		t.Fatalf("-O1 left %d binops for a constant expression", got)
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	src := `int f(int x) { return x * 1 + 0; } int main() { return f(5); }`
	o1 := compileIR(t, src, 1)["f"]
	if countBin(o1, BMul) != 0 || countBin(o1, BAdd) != 0 {
		t.Fatalf("x*1+0 not simplified away:\n%s", o1.Dump())
	}
}

func TestAlgebraicIdentityPreservesSideEffects(t *testing.T) {
	// g() * 0 must still call g.
	src := `
int n;
int g() { n = n + 1; return 3; }
int main() { int r; r = g() * 0; return r * 100 + n; }`
	ir := compileIR(t, src, 2)["main"]
	if countOp(ir, IRCall) == 0 {
		t.Fatal("call to g() was dropped by x*0 simplification")
	}
}

func TestStrengthReductionMulToShift(t *testing.T) {
	src := `int f(int x) { return x * 16; } int main() { return f(2); }`
	o1 := compileIR(t, src, 1)["f"]
	o2 := compileIR(t, src, 2)["f"]
	if countBin(o1, BMul) != 1 {
		t.Fatalf("-O1 should keep the multiply:\n%s", o1.Dump())
	}
	if countBin(o2, BMul) != 0 || countBin(o2, BShl) != 1 {
		t.Fatalf("-O2 should turn *16 into a shift:\n%s", o2.Dump())
	}
}

func TestLVNEliminatesCommonSubexpressions(t *testing.T) {
	src := `
int a[10];
int f(int i) { return a[i] + a[i]; }
int main() { return f(1); }`
	o1 := compileIR(t, src, 1)["f"]
	o2 := compileIR(t, src, 2)["f"]
	// The address computation and the load appear twice at -O1, once
	// after local value numbering at -O2.
	if countOp(o1, IRLoad) != 2 {
		t.Fatalf("-O1 loads = %d, want 2:\n%s", countOp(o1, IRLoad), o1.Dump())
	}
	if countOp(o2, IRLoad) != 1 {
		t.Fatalf("-O2 loads = %d, want 1 after CSE:\n%s", countOp(o2, IRLoad), o2.Dump())
	}
}

func TestLVNKillsLoadsAcrossStores(t *testing.T) {
	src := `
int a[10];
int f(int i) { int x; x = a[i]; a[i] = x + 1; return x + a[i]; }
int main() { return f(1); }`
	o2 := compileIR(t, src, 2)["f"]
	// The second a[i] read must remain a real load: the store killed the
	// cached value.
	if countOp(o2, IRLoad) < 2 {
		t.Fatalf("load after store was wrongly CSE'd:\n%s", o2.Dump())
	}
}

func TestDCERemovesUnusedComputation(t *testing.T) {
	src := `
int f(int x) { int unused; unused = x * 37 + 4; return x; }
int main() { return f(3); }`
	o1 := compileIR(t, src, 1)["f"]
	if countBin(o1, BMul) != 0 {
		t.Fatalf("dead multiply survived -O1:\n%s", o1.Dump())
	}
}

func TestComparisonLowersToSltPlusBranch(t *testing.T) {
	// MIPS-style lowering: ordered comparisons materialize slt (a Set
	// instruction) and branch on zero; ==/!= branch directly.
	src := `int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } if (s == 45) { return 1; } return 0; }`
	ir := compileIR(t, src, 2)["main"]
	if countBin(ir, BSlt) == 0 {
		t.Fatalf("loop bound check should produce slt:\n%s", ir.Dump())
	}
}

func TestPromotionOnlyWithoutAddressTaken(t *testing.T) {
	src := `
int f() { int x; int *p; x = 1; p = &x; *p = 9; return x; }
int main() { return f(); }`
	ir := compileIR(t, src, 2)["f"]
	// x must live in memory (its address escapes), so f needs a slot and
	// at least one load of x.
	if len(ir.Slots) == 0 {
		t.Fatalf("address-taken local was promoted:\n%s", ir.Dump())
	}
}

func TestSpillCodeStillCorrect(t *testing.T) {
	// Covered behaviourally in minic_test.go (register pressure test);
	// here check the allocator actually spilled.
	var sb strings.Builder
	for i := 0; i < 25; i++ {
		fmt.Fprintf(&sb, "int v%d; v%d = n * %d;\n", i, i, i+3)
	}
	sb.WriteString("return ")
	for i := 0; i < 25; i++ {
		if i > 0 {
			sb.WriteString(" + ")
		}
		fmt.Fprintf(&sb, "v%d", i)
	}
	sb.WriteString(";")
	src := "int f(int n) { " + sb.String() + " }\nint main() { return f(7) & 0xFF; }"
	ir := compileIR(t, src, 2)["f"]
	alloc := allocate(ir)
	spills := 0
	for _, a := range alloc.assign {
		if a.Spill {
			spills++
		}
	}
	if spills == 0 {
		t.Fatal("expected spills with 25 simultaneously-live values")
	}
}

func TestLivenessAcrossLoopBackedge(t *testing.T) {
	// A value defined before a loop and used after it must stay live
	// through the body (interval extension over the backedge).
	src := `
int g(int n) {
	int keep; int i; int acc;
	keep = n * 1234;
	acc = 0;
	for (i = 0; i < 50; i = i + 1) { acc = acc + i * n; }
	return keep + acc;
}
int main() { return g(3) & 0xFFFF; }`
	// Behavioural check at every level (wrong liveness corrupts keep).
	runAllLevels(t, src, nil, func() int64 {
		keep := int64(3 * 1234)
		acc := int64(0)
		for i := int64(0); i < 50; i++ {
			acc += i * 3
		}
		return (keep + acc) & 0xFFFF
	}(), "")
}

func TestBuildBlocksEdges(t *testing.T) {
	src := `
int f(int x) { if (x > 0) { return 1; } return 2; }
int main() { return f(1); }`
	ir := compileIR(t, src, 1)["f"]
	blocks := buildBlocks(ir)
	if len(blocks) < 3 {
		t.Fatalf("if/else should yield >=3 blocks, got %d", len(blocks))
	}
	// Every successor index must be valid.
	for _, b := range blocks {
		for _, s := range b.succs {
			if s < 0 || s >= len(blocks) {
				t.Fatalf("bad successor %d of block %+v", s, b)
			}
		}
	}
}

func TestIRDumpReadable(t *testing.T) {
	ir := compileIR(t, `int main() { int x; x = 1 + 2; return x; }`, 0)["main"]
	dump := ir.Dump()
	for _, want := range []string{"func main", "ret"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("IR dump missing %q:\n%s", want, dump)
		}
	}
}
