package minic

import (
	"sort"

	"repro/internal/isa"
)

// Register allocation: iterative liveness over basic blocks, conservative
// live intervals, and linear scan with two pools — caller-saved t0..t9 for
// intervals that do not cross a call, callee-saved s0..s7 for those that
// do. Intervals that get no register are spilled to frame slots; codegen
// rewrites their accesses through the reserved scratch registers (at, gp).

// Assignment records where one vreg lives.
type Assignment struct {
	Reg   uint8 // physical register, valid when Spilled is false
	Slot  int   // spill slot index, valid when Spilled is true
	Spill bool
}

// allocation is the result of register allocation for one function.
type allocation struct {
	assign []Assignment // indexed by vreg
	// usedCalleeSaved lists s-registers the function must save/restore.
	usedCalleeSaved []uint8
}

// block is one basic block [start,end) over f.Insts.
type block struct {
	start, end int
	succs      []int
	use, def   map[VReg]bool
	in, out    map[VReg]bool
}

// buildBlocks partitions the instruction list into basic blocks and wires
// successor edges.
func buildBlocks(f *IRFunc) []block {
	isLeader := make([]bool, len(f.Insts)+1)
	isLeader[0] = true
	labelBlock := make(map[int64]int)
	for i := range f.Insts {
		switch f.Insts[i].Op {
		case IRLabel:
			isLeader[i] = true
		case IRJmp, IRCJmp, IRRet:
			isLeader[i+1] = true
		}
	}
	var blocks []block
	start := 0
	for i := 1; i <= len(f.Insts); i++ {
		if i == len(f.Insts) || isLeader[i] {
			if i > start {
				blocks = append(blocks, block{start: start, end: i})
			}
			start = i
		}
	}
	for bi := range blocks {
		for i := blocks[bi].start; i < blocks[bi].end; i++ {
			if f.Insts[i].Op == IRLabel {
				labelBlock[f.Insts[i].Imm] = bi
			}
		}
	}
	for bi := range blocks {
		b := &blocks[bi]
		last := f.Insts[b.end-1]
		switch last.Op {
		case IRJmp:
			b.succs = append(b.succs, labelBlock[last.Imm])
		case IRCJmp:
			b.succs = append(b.succs, labelBlock[last.Imm])
			if bi+1 < len(blocks) {
				b.succs = append(b.succs, bi+1)
			}
		case IRRet:
		default:
			if bi+1 < len(blocks) {
				b.succs = append(b.succs, bi+1)
			}
		}
	}
	return blocks
}

// liveness computes per-block live-in/out sets.
func liveness(f *IRFunc, blocks []block) {
	var buf []VReg
	for bi := range blocks {
		b := &blocks[bi]
		b.use = make(map[VReg]bool)
		b.def = make(map[VReg]bool)
		b.in = make(map[VReg]bool)
		b.out = make(map[VReg]bool)
		for i := b.start; i < b.end; i++ {
			in := &f.Insts[i]
			buf = in.uses(buf[:0])
			for _, u := range buf {
				if u != 0 && !b.def[u] {
					b.use[u] = true
				}
			}
			if d := in.def(); d != 0 {
				b.def[d] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for bi := len(blocks) - 1; bi >= 0; bi-- {
			b := &blocks[bi]
			for _, s := range b.succs {
				for v := range blocks[s].in {
					if !b.out[v] {
						b.out[v] = true
						changed = true
					}
				}
			}
			for v := range b.out {
				if !b.def[v] && !b.in[v] {
					b.in[v] = true
					changed = true
				}
			}
			for v := range b.use {
				if !b.in[v] {
					b.in[v] = true
					changed = true
				}
			}
		}
	}
}

// interval is the conservative live range of one vreg.
type interval struct {
	v          VReg
	start, end int
	crossCall  bool
}

// buildIntervals derives live intervals and call-crossing flags.
func buildIntervals(f *IRFunc, blocks []block) []interval {
	const unset = -1
	starts := make([]int, f.NumVRegs+1)
	ends := make([]int, f.NumVRegs+1)
	for i := range starts {
		starts[i] = unset
		ends[i] = unset
	}
	touch := func(v VReg, p int) {
		if v == 0 {
			return
		}
		if starts[v] == unset || p < starts[v] {
			starts[v] = p
		}
		if p > ends[v] {
			ends[v] = p
		}
	}
	var buf []VReg
	var calls []int
	for i := range f.Insts {
		in := &f.Insts[i]
		if in.Op == IRCall {
			calls = append(calls, i)
		}
		buf = in.uses(buf[:0])
		for _, u := range buf {
			touch(u, i)
		}
		touch(in.def(), i)
	}
	for bi := range blocks {
		b := &blocks[bi]
		for v := range b.in {
			touch(v, b.start)
		}
		for v := range b.out {
			touch(v, b.end-1)
		}
	}
	var out []interval
	for v := VReg(1); int(v) <= f.NumVRegs; v++ {
		if starts[v] == unset {
			continue
		}
		iv := interval{v: v, start: starts[v], end: ends[v]}
		for _, c := range calls {
			if iv.start < c && c < iv.end {
				iv.crossCall = true
				break
			}
		}
		out = append(out, iv)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].v < out[j].v
	})
	return out
}

// Allocatable register pools.
var (
	tPool = []uint8{isa.RegT0, isa.RegT0 + 1, isa.RegT0 + 2, isa.RegT0 + 3, isa.RegT0 + 4,
		isa.RegT0 + 5, isa.RegT0 + 6, isa.RegT0 + 7, isa.RegT0 + 8, isa.RegT9}
	sPool = []uint8{isa.RegS0, isa.RegS0 + 1, isa.RegS0 + 2, isa.RegS0 + 3, isa.RegS0 + 4,
		isa.RegS0 + 5, isa.RegS0 + 6, isa.RegS7}
)

func isCalleeSaved(r uint8) bool { return r >= isa.RegS0 && r <= isa.RegS7 }

// allocate runs linear scan and appends spill slots to f.Slots.
func allocate(f *IRFunc) *allocation {
	blocks := buildBlocks(f)
	liveness(f, blocks)
	intervals := buildIntervals(f, blocks)

	alloc := &allocation{assign: make([]Assignment, f.NumVRegs+1)}
	free := make(map[uint8]bool)
	for _, r := range tPool {
		free[r] = true
	}
	for _, r := range sPool {
		free[r] = true
	}
	type activeEntry struct {
		iv  interval
		reg uint8
	}
	var active []activeEntry
	usedS := make(map[uint8]bool)

	expire := func(pos int) {
		kept := active[:0]
		for _, a := range active {
			if a.iv.end < pos {
				free[a.reg] = true
			} else {
				kept = append(kept, a)
			}
		}
		active = kept
	}
	takeFrom := func(pool []uint8) (uint8, bool) {
		for _, r := range pool {
			if free[r] {
				free[r] = false
				return r, true
			}
		}
		return 0, false
	}
	spillTo := func(v VReg) {
		slot := len(f.Slots)
		f.Slots = append(f.Slots, Slot{Size: 8, Align: 8, Name: "spill"})
		alloc.assign[v] = Assignment{Spill: true, Slot: slot}
	}

	for _, iv := range intervals {
		expire(iv.start)
		var reg uint8
		var ok bool
		if iv.crossCall {
			reg, ok = takeFrom(sPool)
		} else {
			if reg, ok = takeFrom(tPool); !ok {
				reg, ok = takeFrom(sPool)
			}
		}
		if !ok {
			// Try to steal from the active interval with the furthest end
			// whose register class is acceptable.
			bestIdx := -1
			for i, a := range active {
				if iv.crossCall && !isCalleeSaved(a.reg) {
					continue
				}
				if a.iv.end > iv.end && (bestIdx < 0 || a.iv.end > active[bestIdx].iv.end) {
					bestIdx = i
				}
			}
			if bestIdx >= 0 {
				victim := active[bestIdx]
				spillTo(victim.iv.v)
				reg = victim.reg
				active = append(active[:bestIdx], active[bestIdx+1:]...)
				ok = true
			}
		}
		if !ok {
			spillTo(iv.v)
			continue
		}
		if isCalleeSaved(reg) {
			usedS[reg] = true
		}
		alloc.assign[iv.v] = Assignment{Reg: reg}
		active = append(active, activeEntry{iv: iv, reg: reg})
	}

	for _, r := range sPool {
		if usedS[r] {
			alloc.usedCalleeSaved = append(alloc.usedCalleeSaved, r)
		}
	}
	return alloc
}
