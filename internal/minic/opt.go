package minic

// Optimization passes.
//
//	-O0: none (naive stack code, every local in memory)
//	-O1: AST constant folding + algebraic identities, dead function
//	     elimination, IR dead code elimination, scalar promotion
//	-O2: -O1 + local value numbering (copy propagation + CSE including
//	     redundant loads) + strength reduction
//	-O3: -O2 + leaf function expression inlining
//
// These levels regenerate the qualitative effect of the paper's Table 7
// (gcc with none/-O1/-O2/ref flags): different static and dynamic
// instruction mixes for the same program.

// --- AST constant folding (O1+) ----------------------------------------------

// foldFile folds constant subexpressions in all function bodies.
func foldFile(file *File) {
	for _, fn := range file.Funcs {
		foldStmt(fn.Body)
	}
}

func foldStmt(s *Stmt) {
	if s == nil {
		return
	}
	switch s.Kind {
	case SBlock, SGroup:
		for _, sub := range s.List {
			foldStmt(sub)
		}
	case SDecl:
		s.Decl.Init = foldExpr(s.Decl.Init)
	case SExpr:
		s.Expr = foldExpr(s.Expr)
	case SIf, SWhile:
		s.Expr = foldExpr(s.Expr)
		foldStmt(s.Body)
		foldStmt(s.Else)
	case SFor:
		foldStmt(s.Init)
		s.Expr = foldExpr(s.Expr)
		s.Post = foldExpr(s.Post)
		foldStmt(s.Body)
	case SReturn:
		s.Expr = foldExpr(s.Expr)
	}
}

// foldExpr rewrites e bottom-up, folding literal operations and applying
// side-effect-safe algebraic identities. It returns the (possibly new)
// node.
func foldExpr(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	e.L = foldExpr(e.L)
	e.R = foldExpr(e.R)
	e.Cond = foldExpr(e.Cond)
	for i := range e.Args {
		e.Args[i] = foldExpr(e.Args[i])
	}

	switch e.Kind {
	case ESizeof:
		return numExpr(e, e.TypeLit.Size())
	case EUnary:
		if e.L.Kind == ENum && e.Op != "*" && e.Op != "&" {
			if v, ok := foldConst(e); ok {
				return numExpr(e, v)
			}
		}
	case EBinary:
		if e.L.Kind == ENum && e.R.Kind == ENum {
			// Only fold pure integer arithmetic (pointer arithmetic never
			// has two literal operands after checking).
			if v, ok := evalBinop(e.Op, e.L.Num, e.R.Num); ok {
				return numExpr(e, v)
			}
		}
		return algebraic(e)
	case ECond:
		if e.Cond.Kind == ENum {
			if e.Cond.Num != 0 {
				return e.L
			}
			return e.R
		}
	}
	return e
}

// numExpr builds a literal node replacing e.
func numExpr(e *Expr, v int64) *Expr {
	return &Expr{Kind: ENum, Pos: e.Pos, Num: v, Type: typeInt}
}

// algebraic applies identities that preserve side effects. Identities that
// would discard an operand (x*0) require the operand to be pure.
func algebraic(e *Expr) *Expr {
	isPtr := e.Type != nil && decay(e.Type).Kind == TPtr
	if isPtr {
		return e // pointer arithmetic scales; leave to irgen
	}
	l, r := e.L, e.R
	switch e.Op {
	case "+":
		if isZero(r) {
			return l
		}
		if isZero(l) {
			return r
		}
	case "-":
		if isZero(r) {
			return l
		}
	case "*":
		if isOne(r) {
			return l
		}
		if isOne(l) {
			return r
		}
		if isZero(r) && pureExpr(l) {
			return numExpr(e, 0)
		}
		if isZero(l) && pureExpr(r) {
			return numExpr(e, 0)
		}
	case "/":
		if isOne(r) {
			return l
		}
	case "|", "^":
		if isZero(r) {
			return l
		}
		if isZero(l) {
			return r
		}
	case "&":
		if isZero(r) && pureExpr(l) {
			return numExpr(e, 0)
		}
		if isZero(l) && pureExpr(r) {
			return numExpr(e, 0)
		}
	case "<<", ">>":
		if isZero(r) {
			return l
		}
	}
	return e
}

func isZero(e *Expr) bool { return e.Kind == ENum && e.Num == 0 }
func isOne(e *Expr) bool  { return e.Kind == ENum && e.Num == 1 }

// pureExpr reports whether evaluating e has no side effects.
func pureExpr(e *Expr) bool {
	if e == nil {
		return true
	}
	switch e.Kind {
	case ENum, EStr, EVar, ESizeof:
		return true
	case EBinary:
		return pureExpr(e.L) && pureExpr(e.R)
	case EUnary:
		return pureExpr(e.L)
	case ECond:
		return pureExpr(e.Cond) && pureExpr(e.L) && pureExpr(e.R)
	case EIndex:
		return pureExpr(e.L) && pureExpr(e.R)
	case EField:
		return pureExpr(e.L)
	default: // EAssign, ECall
		return false
	}
}

// --- dead function elimination (O1+) ------------------------------------------

// dropDeadFuncs removes functions unreachable from main (keeping all when
// main is absent, e.g. in library-style tests).
func dropDeadFuncs(file *File) {
	byName := make(map[string]*FuncDecl, len(file.Funcs))
	for _, fn := range file.Funcs {
		byName[fn.Name] = fn
	}
	if byName["main"] == nil {
		return
	}
	reached := make(map[string]bool)
	var visit func(fn *FuncDecl)
	var visitExpr func(e *Expr)
	var visitStmt func(s *Stmt)
	visitExpr = func(e *Expr) {
		if e == nil {
			return
		}
		if e.Kind == ECall && e.Fn != nil && !reached[e.Fn.Name] {
			visit(e.Fn)
		}
		visitExpr(e.L)
		visitExpr(e.R)
		visitExpr(e.Cond)
		for _, a := range e.Args {
			visitExpr(a)
		}
	}
	visitStmt = func(s *Stmt) {
		if s == nil {
			return
		}
		visitExpr(s.Expr)
		visitExpr(s.Post)
		if s.Decl != nil {
			visitExpr(s.Decl.Init)
		}
		visitStmt(s.Init)
		visitStmt(s.Body)
		visitStmt(s.Else)
		for _, sub := range s.List {
			visitStmt(sub)
		}
	}
	visit = func(fn *FuncDecl) {
		reached[fn.Name] = true
		visitStmt(fn.Body)
	}
	visit(byName["main"])
	kept := file.Funcs[:0]
	for _, fn := range file.Funcs {
		if reached[fn.Name] {
			kept = append(kept, fn)
		}
	}
	file.Funcs = kept
}

// --- IR dead code elimination (O1+) ---------------------------------------------

// dce removes pure instructions whose results are never used, iterating to
// a fixpoint.
func dce(f *IRFunc) {
	for {
		useCount := make([]int, f.NumVRegs+1)
		var buf []VReg
		for i := range f.Insts {
			buf = f.Insts[i].uses(buf[:0])
			for _, u := range buf {
				useCount[u]++
			}
		}
		changed := false
		kept := f.Insts[:0]
		for i := range f.Insts {
			in := f.Insts[i]
			if in.pure() && in.Dst != 0 && useCount[in.Dst] == 0 {
				changed = true
				continue
			}
			kept = append(kept, in)
		}
		f.Insts = kept
		if !changed {
			return
		}
	}
}

// --- local value numbering: copy propagation + CSE (O2) -------------------------

// exprKey identifies a computed value within a basic block.
type exprKey struct {
	op     IROp
	bin    BinOp
	a, b   VReg
	hasImm bool
	imm    int64
	size   uint8
	sym    string
}

// lvn performs per-basic-block copy propagation and common subexpression
// elimination, including redundant load elimination (loads are killed by
// stores, calls and syscalls).
func lvn(f *IRFunc) {
	redef := countDefs(f)
	copies := make(map[VReg]VReg)
	avail := make(map[exprKey]VReg)

	resolve := func(v VReg) VReg {
		for {
			w, ok := copies[v]
			if !ok {
				return v
			}
			v = w
		}
	}
	killDst := func(d VReg) {
		if d == 0 {
			return
		}
		delete(copies, d)
		for k, v := range copies {
			if v == d {
				delete(copies, k)
			}
		}
		for k, v := range avail {
			if v == d || k.a == d || k.b == d {
				delete(avail, k)
			}
		}
	}
	killLoads := func() {
		for k := range avail {
			if k.op == IRLoad {
				delete(avail, k)
			}
		}
	}
	reset := func() {
		clear(copies)
		clear(avail)
	}

	for i := range f.Insts {
		in := &f.Insts[i]
		if in.Op == IRLabel {
			reset() // block boundary
			continue
		}
		// Substitute operands through known copies.
		in.A = resolve(in.A)
		in.B = resolve(in.B)
		for j := range in.Args {
			in.Args[j] = resolve(in.Args[j])
		}

		switch in.Op {
		case IRMov:
			killDst(in.Dst)
			// Only propagate through single-def vregs; multi-def targets
			// (?: results, promoted variables) are unsafe across merges.
			if redef[in.Dst] == 1 && redef[in.A] == 1 {
				copies[in.Dst] = in.A
			}
		case IRConst, IRBin, IRAddrG, IRAddrL, IRLoad:
			key := exprKey{op: in.Op, bin: in.Bin, a: in.A, b: in.B,
				hasImm: in.HasImm, imm: in.Imm, size: in.Size, sym: in.Sym}
			if prev, ok := avail[key]; ok && redef[in.Dst] == 1 && redef[prev] == 1 {
				// Replace the recomputation with a copy; DCE removes it if
				// the copy then becomes unused.
				killDst(in.Dst)
				*in = IRInst{Op: IRMov, Dst: in.Dst, A: prev}
				copies[in.Dst] = prev
				continue
			}
			killDst(in.Dst)
			if redef[in.Dst] == 1 {
				avail[key] = in.Dst
			}
		case IRStore:
			killLoads()
		case IRCall, IRSys:
			killDst(in.Dst)
			killLoads()
		case IRJmp, IRCJmp, IRRet:
			reset()
		case IRParam:
			killDst(in.Dst)
		}
	}
}

// countDefs returns per-vreg definition counts.
func countDefs(f *IRFunc) []int {
	redef := make([]int, f.NumVRegs+1)
	for i := range f.Insts {
		if d := f.Insts[i].def(); d != 0 {
			redef[d]++
		}
	}
	return redef
}

// --- immediate folding (O2) ------------------------------------------------------

// foldImmediates rewrites register-form binary operations whose operand is
// a single-def constant into immediate form, enabling strength reduction
// and immediate-mode code generation. The constant definition itself is
// left for DCE to collect.
func foldImmediates(f *IRFunc) {
	redef := countDefs(f)
	constVal := make(map[VReg]int64)
	for i := range f.Insts {
		in := &f.Insts[i]
		if in.Op == IRConst && redef[in.Dst] == 1 {
			constVal[in.Dst] = in.Imm
		}
	}
	commutative := map[BinOp]bool{BAdd: true, BMul: true, BAnd: true, BOr: true, BXor: true}
	for i := range f.Insts {
		in := &f.Insts[i]
		if in.Op != IRBin || in.HasImm {
			continue
		}
		if v, ok := constVal[in.B]; ok {
			in.HasImm = true
			in.Imm = v
			in.B = 0
			continue
		}
		if v, ok := constVal[in.A]; ok && commutative[in.Bin] {
			in.A = in.B
			in.HasImm = true
			in.Imm = v
			in.B = 0
		}
	}
}

// --- strength reduction and instruction simplification (O2) ---------------------

// strengthReduce rewrites expensive operations with cheap equivalents.
func strengthReduce(f *IRFunc) {
	for i := range f.Insts {
		in := &f.Insts[i]
		if in.Op != IRBin || !in.HasImm {
			continue
		}
		switch in.Bin {
		case BMul:
			switch {
			case in.Imm == 0:
				*in = IRInst{Op: IRConst, Dst: in.Dst, Imm: 0}
			case in.Imm == 1:
				*in = IRInst{Op: IRMov, Dst: in.Dst, A: in.A}
			case in.Imm > 1 && in.Imm&(in.Imm-1) == 0:
				in.Bin = BShl
				in.Imm = log2(in.Imm)
			}
		case BAdd, BSub, BOr, BXor, BShl, BShr, BSar:
			if in.Imm == 0 {
				*in = IRInst{Op: IRMov, Dst: in.Dst, A: in.A}
			}
		}
	}
}

// --- jump cleanup (all levels; purely structural) -------------------------------

// dropRedundantJumps removes jumps that target the immediately following
// label and labels that are never referenced.
func dropRedundantJumps(f *IRFunc) {
	// Jump-to-next removal.
	kept := f.Insts[:0]
	for i := range f.Insts {
		in := f.Insts[i]
		if in.Op == IRJmp {
			j := i + 1
			redundant := false
			for ; j < len(f.Insts); j++ {
				if f.Insts[j].Op != IRLabel {
					break
				}
				if f.Insts[j].Imm == in.Imm {
					redundant = true
					break
				}
			}
			if redundant {
				continue
			}
		}
		kept = append(kept, in)
	}
	f.Insts = kept

	// Unreferenced label removal.
	used := make(map[int64]bool)
	for i := range f.Insts {
		switch f.Insts[i].Op {
		case IRJmp, IRCJmp:
			used[f.Insts[i].Imm] = true
		}
	}
	kept = f.Insts[:0]
	for i := range f.Insts {
		in := f.Insts[i]
		if in.Op == IRLabel && !used[in.Imm] {
			continue
		}
		kept = append(kept, in)
	}
	f.Insts = kept
}
