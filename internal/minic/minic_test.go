package minic

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/sim"
)

// compileRun compiles src at the given level, assembles and executes it,
// and returns the run result.
func compileRun(t *testing.T, src string, opt int, input []byte) *sim.Result {
	t.Helper()
	asmText, err := Compile([]Source{{Name: "test.mc", Text: src}}, Options{Opt: opt})
	if err != nil {
		t.Fatalf("compile -O%d: %v", opt, err)
	}
	prog, err := asm.Assemble("test.s", asmText)
	if err != nil {
		t.Fatalf("assemble -O%d: %v\n%s", opt, err, asmText)
	}
	res, err := sim.Run(prog, input, sim.Config{MaxInstr: 50_000_000})
	if err != nil {
		t.Fatalf("run -O%d: %v", opt, err)
	}
	return res
}

// runAllLevels checks that the program produces the same exit code and
// output at every optimization level — the compiler's core soundness
// property.
func runAllLevels(t *testing.T, src string, input []byte, wantExit int64, wantOut string) {
	t.Helper()
	for opt := 0; opt <= 3; opt++ {
		res := compileRun(t, src, opt, input)
		if res.ExitCode != wantExit {
			t.Errorf("-O%d: exit %d, want %d", opt, res.ExitCode, wantExit)
		}
		if wantOut != "" && string(res.Output) != wantOut {
			t.Errorf("-O%d: output %q, want %q", opt, res.Output, wantOut)
		}
	}
}

func TestReturnConstant(t *testing.T) {
	runAllLevels(t, `int main() { return 42; }`, nil, 42, "")
}

func TestArithmetic(t *testing.T) {
	runAllLevels(t, `
int main() {
	int a; int b;
	a = 17; b = 5;
	return a + b * 3 - a / b + a % b - (b << 2) + (a >> 1);
}`, nil, 17+5*3-17/5+17%5-(5<<2)+(17>>1), "")
}

func TestBitwiseOps(t *testing.T) {
	runAllLevels(t, `
int main() {
	int a; int b;
	a = 0xF0F0; b = 0x0FF0;
	return (a & b) + (a | b) - (a ^ b) + (~a & 0xFF);
}`, nil, (0xF0F0&0x0FF0)+(0xF0F0|0x0FF0)-(0xF0F0^0x0FF0)+(^0xF0F0&0xFF), "")
}

func TestComparisons(t *testing.T) {
	runAllLevels(t, `
int main() {
	int a; int r;
	a = 5; r = 0;
	if (a < 10) { r = r + 1; }
	if (a <= 5) { r = r + 2; }
	if (a > 4) { r = r + 4; }
	if (a >= 6) { r = r + 8; }
	if (a == 5) { r = r + 16; }
	if (a != 5) { r = r + 32; }
	return r;
}`, nil, 1+2+4+16, "")
}

func TestShortCircuit(t *testing.T) {
	// g() must not run when the left side decides.
	runAllLevels(t, `
int calls;
int g() { calls = calls + 1; return 1; }
int main() {
	int r;
	r = 0;
	if (0 && g()) { r = 100; }
	if (1 || g()) { r = r + 1; }
	if (1 && g()) { r = r + 2; }
	if (0 || g()) { r = r + 4; }
	return r * 10 + calls;
}`, nil, 72, "")
}

func TestLogicalValues(t *testing.T) {
	runAllLevels(t, `
int main() {
	int a; int b;
	a = 3 && 0;
	b = 3 || 0;
	return a * 10 + b + (!5) * 100 + (!0) * 1000;
}`, nil, 1001, "")
}

func TestTernary(t *testing.T) {
	runAllLevels(t, `
int main() {
	int x;
	x = 7;
	return (x > 5 ? 100 : 200) + (x < 5 ? 1 : 2);
}`, nil, 102, "")
}

func TestWhileLoop(t *testing.T) {
	runAllLevels(t, `
int main() {
	int i; int sum;
	i = 1; sum = 0;
	while (i <= 100) { sum = sum + i; i = i + 1; }
	return sum;
}`, nil, 5050, "")
}

func TestForLoopBreakContinue(t *testing.T) {
	runAllLevels(t, `
int main() {
	int sum; int i;
	sum = 0;
	for (i = 0; i < 100; i = i + 1) {
		if (i % 2) { continue; }
		if (i > 20) { break; }
		sum = sum + i;
	}
	return sum;
}`, nil, 0+2+4+6+8+10+12+14+16+18+20, "")
}

func TestNestedLoops(t *testing.T) {
	runAllLevels(t, `
int main() {
	int i; int j; int n;
	n = 0;
	for (i = 0; i < 10; i = i + 1) {
		for (j = 0; j < 10; j = j + 1) {
			if (i == j) { n = n + 1; }
		}
	}
	return n;
}`, nil, 10, "")
}

func TestRecursion(t *testing.T) {
	runAllLevels(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(15); }`, nil, 610, "")
}

func TestMutualRecursion(t *testing.T) {
	runAllLevels(t, `
int isOdd(int n);
int isEven(int n) { if (n == 0) { return 1; } return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) { return 0; } return isEven(n - 1); }
int main() { return isEven(10) * 10 + isOdd(7); }`, nil, 11, "")
}

func TestGlobalsAndArrays(t *testing.T) {
	runAllLevels(t, `
int table[10];
int scale = 3;
int main() {
	int i; int sum;
	for (i = 0; i < 10; i = i + 1) { table[i] = i * scale; }
	sum = 0;
	for (i = 0; i < 10; i = i + 1) { sum = sum + table[i]; }
	return sum;
}`, nil, 45*3, "")
}

func TestGlobalInitList(t *testing.T) {
	runAllLevels(t, `
int primes[8] = {2, 3, 5, 7, 11, 13, 17, 19};
char tag[4] = {1, 2, 3, 4};
int main() {
	return primes[0] + primes[7] + tag[2];
}`, nil, 2+19+3, "")
}

func TestLocalArrays(t *testing.T) {
	runAllLevels(t, `
int main() {
	int a[16];
	int i;
	for (i = 0; i < 16; i = i + 1) { a[i] = i * i; }
	return a[3] + a[15];
}`, nil, 9+225, "")
}

func TestPointers(t *testing.T) {
	runAllLevels(t, `
int main() {
	int x; int *p; int **pp;
	x = 10;
	p = &x;
	pp = &p;
	*p = *p + 5;
	**pp = **pp * 2;
	return x;
}`, nil, 30, "")
}

func TestPointerArithmetic(t *testing.T) {
	runAllLevels(t, `
int a[5] = {10, 20, 30, 40, 50};
int main() {
	int *p; int *q;
	p = a;
	q = p + 3;
	return *q + *(p + 1) + (q - p);
}`, nil, 40+20+3, "")
}

func TestCharsAndStrings(t *testing.T) {
	runAllLevels(t, `
char *msg = "hey";
int main() {
	char buf[8];
	int i;
	for (i = 0; msg[i]; i = i + 1) { buf[i] = msg[i] - 32; }
	buf[i] = 0;
	print_str(buf);
	return strlen(msg);
}`, nil, 3, "HEY")
}

func TestStructs(t *testing.T) {
	runAllLevels(t, `
struct point { int x; int y; };
struct rect { struct point a; struct point b; int tag; };
int main() {
	struct rect r;
	struct point *p;
	r.a.x = 1; r.a.y = 2;
	r.b.x = 10; r.b.y = 20;
	r.tag = 7;
	p = &r.b;
	p->x = p->x + 100;
	return r.a.x + r.a.y + r.b.x + r.b.y + r.tag;
}`, nil, 1+2+110+20+7, "")
}

func TestStructArraysAndSizeof(t *testing.T) {
	runAllLevels(t, `
struct node { int val; struct node *next; char tag; };
struct node pool[4];
int main() {
	int i;
	struct node *head;
	head = 0;
	for (i = 0; i < 4; i = i + 1) {
		pool[i].val = i * 10;
		pool[i].next = head;
		head = &pool[i];
	}
	i = 0;
	while (head) { i = i + head->val; head = head->next; }
	return i + sizeof(struct node) + sizeof(int);
}`, nil, 60+24+8, "")
}

func TestStructFieldArrays(t *testing.T) {
	runAllLevels(t, `
struct buf { int len; char data[16]; };
int main() {
	struct buf b;
	b.len = 3;
	b.data[0] = 'a'; b.data[1] = 'b'; b.data[2] = 'c';
	return b.data[0] + b.data[2] + b.len;
}`, nil, 'a'+'c'+3, "")
}

func TestIOIntrinsics(t *testing.T) {
	runAllLevels(t, `
int main() {
	int c; int n;
	n = 0;
	c = getc();
	while (c >= 0) { putc(c + 1); n = n + 1; c = getc(); }
	return n;
}`, []byte("abc"), 3, "bcd")
}

func TestMallocFree(t *testing.T) {
	runAllLevels(t, `
int main() {
	int *a; int *b; int *c;
	a = malloc(64);
	b = malloc(128);
	a[0] = 11; a[7] = 22;
	b[15] = 33;
	free(a);
	c = malloc(48);   // should reuse a's block
	c[0] = 44;
	return a[0] + a[7] + b[15] + c[0] == 44 + 22 + 33 + 44 ? (c == a) : -1;
}`, nil, 1, "")
}

func TestRuntimeHelpers(t *testing.T) {
	runAllLevels(t, `
int main() {
	char buf[32];
	strcpy(buf, "hello");
	if (strcmp(buf, "hello") != 0) { return 1; }
	if (strcmp(buf, "hellp") >= 0) { return 2; }
	memset(buf, 'x', 3);
	if (buf[0] != 'x' || buf[2] != 'x' || buf[3] != 'l') { return 3; }
	print_int(-1234);
	putc(10);
	print_int(0);
	return abs(-5) + strlen("four");
}`, nil, 9, "-1234\n0")
}

func TestRandDeterminism(t *testing.T) {
	// Same seed, same sequence — determinism matters for experiments.
	src := `
int main() {
	int i; int s;
	srand(12345);
	s = 0;
	for (i = 0; i < 10; i = i + 1) { s = s ^ rand(); }
	return s & 0xFFFF;
}`
	first := compileRun(t, src, 2, nil).ExitCode
	for opt := 0; opt <= 3; opt++ {
		if got := compileRun(t, src, opt, nil).ExitCode; got != first {
			t.Fatalf("-O%d: rand sequence differs: %d vs %d", opt, got, first)
		}
	}
}

func TestNegativeNumbers(t *testing.T) {
	runAllLevels(t, `
int main() {
	int a;
	a = -7;
	return (a / 2) + (a % 2) + (a * -3) + (-a);
}`, nil, (-7/2)+(-7%2)+(-7*-3)+7, "")
}

func TestLargeConstants(t *testing.T) {
	runAllLevels(t, `
int big = 123456789012345;
int main() {
	int x;
	x = 0x7FFFFFFFFFFF;
	return (big % 1000) + (x & 0xFF);
}`, nil, 345+0xFF, "")
}

func TestCharUnsigned(t *testing.T) {
	// char is an unsigned byte: 0xFF loads as 255, not -1.
	runAllLevels(t, `
char c = 0xFF;
int main() { return c; }`, nil, 255, "")
}

func TestVoidFunction(t *testing.T) {
	runAllLevels(t, `
int g;
void bump(int n) { g = g + n; if (g > 100) { return; } g = g * 2; }
int main() { bump(3); bump(60); return g; }`, nil, 132, "")
}

func TestCommaDeclarations(t *testing.T) {
	runAllLevels(t, `
int a = 1, b = 2;
int main() {
	int x, y = 5, z;
	x = 3;
	z = x + y;
	return a + b + z;
}`, nil, 11, "")
}

func TestSameExitAcrossLevelsOnHashLoop(t *testing.T) {
	// A denser program exercising CSE/copy-prop paths.
	runAllLevels(t, `
int h[64];
int main() {
	int i; int k; int idx;
	for (i = 0; i < 1000; i = i + 1) {
		k = i * 2654435761;
		idx = (k ^ (k >> 13)) & 63;
		h[idx] = h[idx] + (k & 0xFF) + (k & 0xFF);
	}
	k = 0;
	for (i = 0; i < 64; i = i + 1) { k = k ^ h[i]; }
	return k & 0x7FFF;
}`, nil, func() int64 {
		var h [64]int64
		for i := int64(0); i < 1000; i++ {
			k := i * 2654435761
			idx := (k ^ (k >> 13)) & 63
			h[idx] += (k & 0xFF) + (k & 0xFF)
		}
		var k int64
		for i := 0; i < 64; i++ {
			k ^= h[i]
		}
		return k & 0x7FFF
	}(), "")
}

func TestOptimizationReducesInstructionCount(t *testing.T) {
	src := `
int main() {
	int i; int sum;
	sum = 0;
	for (i = 0; i < 1000; i = i + 1) { sum = sum + i * 8 + 3 - 3; }
	return sum & 0xFFFF;
}`
	o0 := compileRun(t, src, 0, nil)
	o2 := compileRun(t, src, 2, nil)
	if o0.ExitCode != o2.ExitCode {
		t.Fatalf("exit mismatch: %d vs %d", o0.ExitCode, o2.ExitCode)
	}
	if o2.Instructions >= o0.Instructions {
		t.Fatalf("-O2 (%d instr) not faster than -O0 (%d instr)", o2.Instructions, o0.Instructions)
	}
}

func TestInliningAtO3(t *testing.T) {
	src := `
int square(int x) { return x * x; }
int main() {
	int i; int s;
	s = 0;
	for (i = 0; i < 100; i = i + 1) { s = s + square(i); }
	return s & 0xFFFF;
}`
	asm3, err := Compile([]Source{{Name: "t.mc", Text: src}}, Options{Opt: 3, NoRuntime: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(asm3, "call square") {
		t.Error("-O3 should inline square")
	}
	runAllLevels(t, src, nil, func() int64 {
		var s int64
		for i := int64(0); i < 100; i++ {
			s += i * i
		}
		return s & 0xFFFF
	}(), "")
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`int main() { return x; }`, "undefined identifier"},
		{`int main() { foo(); }`, "undefined function"},
		{`int main() { int x; int x; return 0; }`, "redeclared"},
		{`int f(int a, int b) { return 0; } int main() { return f(1); }`, "expects 2 argument"},
		{`int main() { break; }`, "outside loop"},
		{`void f() { return 1; } int main() { return 0; }`, "return with value"},
		{`int main() { return 1 ? ; }`, "expected expression"},
		{`struct s { int x; }; int main() { struct s v; return v.y; }`, "no field"},
		{`int main() { int a[3]; a = 0; return 0; }`, "cannot assign"},
		{`int main() { return *5; }`, "dereference of non-pointer"},
		{`int main() { return &7; }`, "& of non-lvalue"},
		{`int main() { 5 = 6; return 0; }`, "not an lvalue"},
		{`int g = x + 1; int main() { return 0; }`, "not constant"},
		{`int main(int a, int b, int c, int d, int e, int f, int g, int h, int i) { return 0; }`, "at most 8"},
	}
	for _, c := range cases {
		_, err := Compile([]Source{{Name: "t.mc", Text: c.src}}, Options{NoRuntime: true})
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q:\n  got error %q\n  want mention of %q", c.src, err.Error(), c.want)
		}
	}
}

func TestParserRecoversFromMultipleErrors(t *testing.T) {
	_, err := Compile([]Source{{Name: "t.mc", Text: `
int main() { return x; }
int g() { return y; }
`}}, Options{NoRuntime: true})
	if err == nil {
		t.Fatal("expected errors")
	}
	if !strings.Contains(err.Error(), "\"x\"") || !strings.Contains(err.Error(), "\"y\"") {
		t.Fatalf("expected both errors reported, got: %v", err)
	}
}

func TestRegisterPressureSpilling(t *testing.T) {
	// More live values than registers forces spills; results must agree.
	runAllLevels(t, `
int main() {
	int a1; int a2; int a3; int a4; int a5; int a6; int a7; int a8;
	int a9; int a10; int a11; int a12; int a13; int a14; int a15;
	int a16; int a17; int a18; int a19; int a20; int i;
	a1=1; a2=2; a3=3; a4=4; a5=5; a6=6; a7=7; a8=8; a9=9; a10=10;
	a11=11; a12=12; a13=13; a14=14; a15=15; a16=16; a17=17; a18=18;
	a19=19; a20=20;
	for (i = 0; i < 10; i = i + 1) {
		a1=a1+a20; a2=a2+a19; a3=a3+a18; a4=a4+a17; a5=a5+a16;
		a6=a6+a15; a7=a7+a14; a8=a8+a13; a9=a9+a12; a10=a10+a11;
	}
	return a1+a2+a3+a4+a5+a6+a7+a8+a9+a10+a11+a12+a13+a14+a15+a16+a17+a18+a19+a20;
}`, nil, func() int64 {
		a := make([]int64, 21)
		for i := 1; i <= 20; i++ {
			a[i] = int64(i)
		}
		for i := 0; i < 10; i++ {
			for j := 1; j <= 10; j++ {
				a[j] += a[21-j]
			}
		}
		var s int64
		for i := 1; i <= 20; i++ {
			s += a[i]
		}
		return s
	}(), "")
}

func TestCallsAcrossManyArgs(t *testing.T) {
	runAllLevels(t, `
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
	return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6 + g * 7 + h * 8;
}
int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }`,
		nil, 1+4+9+16+25+36+49+64, "")
}

func TestDeadFunctionElimination(t *testing.T) {
	src := `
int unused() { return 99; }
int main() { return 1; }`
	o1, err := Compile([]Source{{Name: "t.mc", Text: src}}, Options{Opt: 1, NoRuntime: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(o1, "unused:") {
		t.Error("-O1 should drop unreachable functions")
	}
	o0, err := Compile([]Source{{Name: "t.mc", Text: src}}, Options{Opt: 0, NoRuntime: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(o0, "unused:") {
		t.Error("-O0 should keep all functions")
	}
}
