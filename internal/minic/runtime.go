package minic

// RuntimeSource is the MiniC runtime prelude compiled into every program
// (unless Options.NoRuntime is set). It provides a freelist allocator over
// the sbrk intrinsic, the usual string/memory helpers, a 64-bit LCG
// pseudo-random generator, and decimal output, all in MiniC itself so the
// runtime contributes realistic instruction mixes to the traces, as libc
// does in the paper's SPEC95 binaries.
const RuntimeSource = `
// --- MiniC runtime ---

struct __blk { int size; struct __blk *next; };

struct __blk *__freelist;

char *malloc(int n) {
	struct __blk *p;
	struct __blk *prev;
	char *c;
	int need;
	need = (n + 7) / 8 * 8 + 16;
	prev = 0;
	p = __freelist;
	while (p) {
		if (p->size >= need) {
			if (prev) { prev->next = p->next; } else { __freelist = p->next; }
			c = p;
			return c + 16;
		}
		prev = p;
		p = p->next;
	}
	p = sbrk(need);
	p->size = need;
	p->next = 0;
	c = p;
	return c + 16;
}

void free(char *ptr) {
	struct __blk *p;
	if (!ptr) { return; }
	p = ptr - 16;
	p->next = __freelist;
	__freelist = p;
}

char *memset(char *dst, int c, int n) {
	int i;
	for (i = 0; i < n; i = i + 1) { dst[i] = c; }
	return dst;
}

char *memcpy(char *dst, char *src, int n) {
	int i;
	for (i = 0; i < n; i = i + 1) { dst[i] = src[i]; }
	return dst;
}

int strlen(char *s) {
	int n;
	n = 0;
	while (s[n]) { n = n + 1; }
	return n;
}

int strcmp(char *a, char *b) {
	int i;
	i = 0;
	while (a[i] && a[i] == b[i]) { i = i + 1; }
	return a[i] - b[i];
}

char *strcpy(char *dst, char *src) {
	int i;
	i = 0;
	while (src[i]) { dst[i] = src[i]; i = i + 1; }
	dst[i] = 0;
	return dst;
}

int abs(int x) { return x < 0 ? -x : x; }

int __rand_state;

void srand(int seed) { __rand_state = seed; }

int rand() {
	__rand_state = __rand_state * 6364136223846793005 + 1442695040888963407;
	return (__rand_state >> 33) & 0x3FFFFFFF;
}

void print_str(char *s) {
	int i;
	for (i = 0; s[i]; i = i + 1) { putc(s[i]); }
}

void print_int(int n) {
	char buf[24];
	int i;
	if (n < 0) { putc('-'); n = -n; }
	i = 0;
	if (n == 0) { putc('0'); return; }
	while (n > 0) { buf[i] = '0' + n % 10; n = n / 10; i = i + 1; }
	while (i > 0) { i = i - 1; putc(buf[i]); }
}
`
