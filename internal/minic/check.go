package minic

import "fmt"

// checker resolves identifiers and annotates every expression with its
// type. Functions and globals may be declared in any order; struct types
// must precede their first use (handled by the parser).
type checker struct {
	file   *File
	errs   *ErrorList
	funcs  map[string]*FuncDecl
	global map[string]*VarSym
	scopes []map[string]*VarSym
	fn     *FuncDecl
	loops  int
}

func check(file *File, errs *ErrorList) {
	c := &checker{
		file:   file,
		errs:   errs,
		funcs:  make(map[string]*FuncDecl),
		global: make(map[string]*VarSym),
	}
	for _, fn := range file.Funcs {
		if _, dup := c.funcs[fn.Name]; dup {
			c.errorf(fn.Pos, "duplicate function %q", fn.Name)
			continue
		}
		c.funcs[fn.Name] = fn
	}
	for _, g := range file.Globals {
		if _, dup := c.global[g.Sym.Name]; dup {
			c.errorf(g.Pos, "duplicate global %q", g.Sym.Name)
			continue
		}
		if g.Sym.Type.Kind == TVoid {
			c.errorf(g.Pos, "global %q has void type", g.Sym.Name)
		}
		c.global[g.Sym.Name] = g.Sym
		c.checkGlobalInit(g)
	}
	for _, fn := range file.Funcs {
		c.checkFunc(fn)
	}
}

func (c *checker) errorf(pos Pos, format string, args ...any) {
	*c.errs = append(*c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) checkGlobalInit(g *GlobalDecl) {
	if g.Init != nil {
		if g.Sym.Type.Kind == TArray || g.Sym.Type.Kind == TStruct {
			c.errorf(g.Pos, "scalar initializer for aggregate %q", g.Sym.Name)
			return
		}
		if g.Init.Kind == EStr {
			if g.Sym.Type.Kind != TPtr || g.Sym.Type.Elem.Kind != TChar {
				c.errorf(g.Pos, "string initializer requires char* type")
			}
			return
		}
		if _, ok := foldConst(g.Init); !ok {
			c.errorf(g.Pos, "global initializer for %q is not constant", g.Sym.Name)
		}
		return
	}
	if len(g.InitList) > 0 {
		if g.Sym.Type.Kind != TArray {
			c.errorf(g.Pos, "brace initializer requires array type")
			return
		}
		if int64(len(g.InitList)) > g.Sym.Type.Len {
			c.errorf(g.Pos, "too many initializers for %q (%d > %d)",
				g.Sym.Name, len(g.InitList), g.Sym.Type.Len)
		}
		for _, e := range g.InitList {
			if _, ok := foldConst(e); !ok {
				c.errorf(e.Pos, "array initializer element is not constant")
			}
		}
	}
}

func (c *checker) checkFunc(fn *FuncDecl) {
	c.fn = fn
	c.scopes = []map[string]*VarSym{make(map[string]*VarSym)}
	if len(fn.Params) > 8 {
		c.errorf(fn.Pos, "function %q has %d parameters; the ABI allows at most 8", fn.Name, len(fn.Params))
	}
	for _, p := range fn.Params {
		if !p.Type.IsScalar() {
			c.errorf(p.Pos, "parameter %q must be scalar (int, char or pointer)", p.Name)
		}
		p.Sym = &VarSym{Name: p.Name, Type: p.Type, Param: true, Slot: -1}
		c.declare(p.Pos, p.Sym)
	}
	if fn.Ret.Kind == TArray || fn.Ret.Kind == TStruct {
		c.errorf(fn.Pos, "function %q cannot return an aggregate", fn.Name)
	}
	c.stmt(fn.Body)
	c.fn = nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*VarSym)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos Pos, sym *VarSym) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		c.errorf(pos, "%q redeclared in this scope", sym.Name)
	}
	top[sym.Name] = sym
}

func (c *checker) lookup(name string) *VarSym {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.global[name]
}

func (c *checker) stmt(s *Stmt) {
	if s == nil {
		return
	}
	switch s.Kind {
	case SBlock:
		c.pushScope()
		for _, sub := range s.List {
			c.stmt(sub)
		}
		c.popScope()
	case SGroup:
		for _, sub := range s.List {
			c.stmt(sub)
		}
	case SDecl:
		d := s.Decl
		if d.Type.Kind == TVoid {
			c.errorf(d.Pos, "variable %q has void type", d.Name)
			d.Type = typeInt
		}
		d.Sym = &VarSym{Name: d.Name, Type: d.Type, Slot: -1}
		// Aggregates always live in memory.
		if !d.Type.IsScalar() {
			d.Sym.AddrTaken = true
		}
		if d.Init != nil {
			t := c.expr(d.Init)
			if !d.Type.IsScalar() {
				c.errorf(d.Pos, "cannot initialize aggregate %q", d.Name)
			} else {
				c.assignable(d.Pos, d.Type, t)
			}
		}
		// Declare after checking the initializer: `int x = x;` is an error.
		c.declare(d.Pos, d.Sym)
	case SExpr:
		c.expr(s.Expr)
	case SIf:
		c.condition(s.Expr)
		c.stmt(s.Body)
		c.stmt(s.Else)
	case SWhile:
		c.condition(s.Expr)
		c.loops++
		c.stmt(s.Body)
		c.loops--
	case SFor:
		c.pushScope()
		c.stmt(s.Init)
		if s.Expr != nil {
			c.condition(s.Expr)
		}
		if s.Post != nil {
			c.expr(s.Post)
		}
		c.loops++
		c.stmt(s.Body)
		c.loops--
		c.popScope()
	case SReturn:
		if s.Expr != nil {
			t := c.expr(s.Expr)
			if c.fn.Ret.Kind == TVoid {
				c.errorf(s.Pos, "return with value in void function %q", c.fn.Name)
			} else {
				c.assignable(s.Pos, c.fn.Ret, t)
			}
		} else if c.fn.Ret.Kind != TVoid {
			c.errorf(s.Pos, "return without value in function %q returning %s", c.fn.Name, c.fn.Ret)
		}
	case SBreak, SContinue:
		if c.loops == 0 {
			c.errorf(s.Pos, "break/continue outside loop")
		}
	case SEmpty:
	}
}

func (c *checker) condition(e *Expr) {
	t := c.expr(e)
	if t != nil && !decay(t).IsScalar() {
		c.errorf(e.Pos, "condition has non-scalar type %s", t)
	}
}

// decay converts array types to element pointers, the implicit conversion
// applied in value contexts.
func decay(t *Type) *Type {
	if t != nil && t.Kind == TArray {
		return PtrTo(t.Elem)
	}
	return t
}

// assignable checks whether a value of type src may be stored into dst.
// All scalar types are mutually assignable (char truncates, int<->pointer
// conversions are allowed as in early C).
func (c *checker) assignable(pos Pos, dst, src *Type) {
	if dst == nil || src == nil {
		return
	}
	src = decay(src)
	if dst.IsScalar() && src.IsScalar() {
		return
	}
	c.errorf(pos, "cannot assign %s to %s", src, dst)
}

// expr type-checks e, annotates e.Type and returns it (nil on error).
func (c *checker) expr(e *Expr) *Type {
	if e == nil {
		return nil
	}
	t := c.exprType(e)
	e.Type = t
	return t
}

func (c *checker) exprType(e *Expr) *Type {
	switch e.Kind {
	case ENum:
		return typeInt
	case EStr:
		return PtrTo(typeChar)
	case ESizeof:
		return typeInt
	case EVar:
		sym := c.lookup(e.Name)
		if sym == nil {
			c.errorf(e.Pos, "undefined identifier %q", e.Name)
			return typeInt
		}
		e.Sym = sym
		return sym.Type
	case EUnary:
		return c.unaryType(e)
	case EBinary:
		return c.binaryType(e)
	case EAssign:
		lt := c.expr(e.L)
		rt := c.expr(e.R)
		if !c.isLvalue(e.L) {
			c.errorf(e.Pos, "assignment target is not an lvalue")
			return lt
		}
		if lt != nil && !lt.IsScalar() {
			c.errorf(e.Pos, "cannot assign to aggregate of type %s", lt)
			return lt
		}
		c.assignable(e.Pos, lt, rt)
		return lt
	case ECond:
		c.condition(e.Cond)
		lt := decay(c.expr(e.L))
		rt := decay(c.expr(e.R))
		if lt != nil && rt != nil && !lt.IsScalar() {
			c.errorf(e.Pos, "?: arms must be scalar")
		}
		_ = rt
		return lt
	case ECall:
		return c.callType(e)
	case EIndex:
		bt := decay(c.expr(e.L))
		it := decay(c.expr(e.R))
		if bt == nil || bt.Kind != TPtr {
			c.errorf(e.Pos, "indexing non-pointer type %s", bt)
			return typeInt
		}
		if it != nil && !it.IsInteger() {
			c.errorf(e.Pos, "array index must be integer, got %s", it)
		}
		if bt.Elem.Kind == TVoid {
			c.errorf(e.Pos, "cannot index void pointer")
			return typeInt
		}
		return bt.Elem
	case EField:
		lt := c.expr(e.L)
		if lt == nil {
			return typeInt
		}
		st := lt
		if e.Arrow {
			if lt.Kind != TPtr || lt.Elem.Kind != TStruct {
				c.errorf(e.Pos, "-> on non-struct-pointer type %s", lt)
				return typeInt
			}
			st = lt.Elem
		} else if lt.Kind != TStruct {
			c.errorf(e.Pos, ". on non-struct type %s", lt)
			return typeInt
		}
		f := st.Str.Field(e.Name)
		if f == nil {
			c.errorf(e.Pos, "struct %s has no field %q", st.Str.Name, e.Name)
			return typeInt
		}
		return f.Type
	default:
		c.errorf(e.Pos, "internal: unknown expression kind %d", e.Kind)
		return typeInt
	}
}

func (c *checker) unaryType(e *Expr) *Type {
	lt := c.expr(e.L)
	switch e.Op {
	case "-", "~":
		if lt != nil && !decay(lt).IsScalar() {
			c.errorf(e.Pos, "unary %s on non-scalar %s", e.Op, lt)
		}
		return typeInt
	case "!":
		if lt != nil && !decay(lt).IsScalar() {
			c.errorf(e.Pos, "! on non-scalar %s", lt)
		}
		return typeInt
	case "*":
		dt := decay(lt)
		if dt == nil || dt.Kind != TPtr {
			c.errorf(e.Pos, "dereference of non-pointer type %s", lt)
			return typeInt
		}
		if dt.Elem.Kind == TVoid {
			c.errorf(e.Pos, "dereference of void pointer")
			return typeInt
		}
		return dt.Elem
	case "&":
		if !c.isLvalue(e.L) {
			c.errorf(e.Pos, "& of non-lvalue")
			return PtrTo(typeInt)
		}
		c.markAddrTaken(e.L)
		if lt == nil {
			return PtrTo(typeInt)
		}
		if lt.Kind == TArray {
			return PtrTo(lt.Elem)
		}
		return PtrTo(lt)
	default:
		c.errorf(e.Pos, "internal: unknown unary %q", e.Op)
		return typeInt
	}
}

func (c *checker) binaryType(e *Expr) *Type {
	lt := decay(c.expr(e.L))
	rt := decay(c.expr(e.R))
	if lt == nil || rt == nil {
		return typeInt
	}
	if !lt.IsScalar() || !rt.IsScalar() {
		c.errorf(e.Pos, "binary %s on non-scalar operands (%s, %s)", e.Op, lt, rt)
		return typeInt
	}
	switch e.Op {
	case "+":
		if lt.Kind == TPtr && rt.IsInteger() {
			return lt
		}
		if rt.Kind == TPtr && lt.IsInteger() {
			return rt
		}
		if lt.Kind == TPtr && rt.Kind == TPtr {
			c.errorf(e.Pos, "cannot add two pointers")
		}
		return typeInt
	case "-":
		if lt.Kind == TPtr && rt.IsInteger() {
			return lt
		}
		if lt.Kind == TPtr && rt.Kind == TPtr {
			return typeInt // element difference
		}
		if rt.Kind == TPtr {
			c.errorf(e.Pos, "cannot subtract pointer from integer")
		}
		return typeInt
	case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
		return typeInt
	default: // * / % & | ^ << >>
		if lt.Kind == TPtr || rt.Kind == TPtr {
			c.errorf(e.Pos, "arithmetic %s on pointer operand", e.Op)
		}
		return typeInt
	}
}

func (c *checker) callType(e *Expr) *Type {
	// Intrinsics first.
	type builtinSig struct {
		id   BuiltinID
		args int
		ret  *Type
	}
	builtins := map[string]builtinSig{
		"getc": {BuiltinGetc, 0, typeInt},
		"putc": {BuiltinPutc, 1, typeInt},
		"sbrk": {BuiltinSbrk, 1, PtrTo(typeChar)},
		"exit": {BuiltinExit, 1, typeVoid},
	}
	if b, ok := builtins[e.Name]; ok {
		e.Builtin = b.id
		if len(e.Args) != b.args {
			c.errorf(e.Pos, "%s expects %d argument(s), got %d", e.Name, b.args, len(e.Args))
		}
		for _, a := range e.Args {
			at := decay(c.expr(a))
			if at != nil && !at.IsScalar() {
				c.errorf(a.Pos, "intrinsic argument must be scalar")
			}
		}
		return b.ret
	}
	fn, ok := c.funcs[e.Name]
	if !ok {
		c.errorf(e.Pos, "call to undefined function %q", e.Name)
		for _, a := range e.Args {
			c.expr(a)
		}
		return typeInt
	}
	e.Fn = fn
	if len(e.Args) != len(fn.Params) {
		c.errorf(e.Pos, "%q expects %d argument(s), got %d", e.Name, len(fn.Params), len(e.Args))
	}
	for i, a := range e.Args {
		at := c.expr(a)
		if i < len(fn.Params) {
			c.assignable(a.Pos, fn.Params[i].Type, at)
		}
	}
	return fn.Ret
}

// isLvalue reports whether e designates a storage location.
func (c *checker) isLvalue(e *Expr) bool {
	switch e.Kind {
	case EVar, EIndex:
		return true
	case EField:
		return e.Arrow || c.isLvalue(e.L)
	case EUnary:
		return e.Op == "*"
	default:
		return false
	}
}

// markAddrTaken forces the base variable of an lvalue into memory.
func (c *checker) markAddrTaken(e *Expr) {
	switch e.Kind {
	case EVar:
		if e.Sym != nil {
			e.Sym.AddrTaken = true
		}
	case EField:
		if !e.Arrow {
			c.markAddrTaken(e.L)
		}
	case EIndex:
		// The base of an index is an array (already memory-resident) or a
		// pointer value; neither needs further marking here. Arrays are
		// marked at declaration.
	}
}
