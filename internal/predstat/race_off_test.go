//go:build !race

package predstat

// raceEnabled reports whether the race detector instrumented this build;
// allocation-count assertions are skipped under it.
const raceEnabled = false
