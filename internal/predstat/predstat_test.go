package predstat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/seqclass"
)

// feed delivers a single-PC value stream to the tracker in runs of
// varying length, mimicking how core.Bank groups batches.
func feed(t *Tracker, pc uint64, values []uint64) {
	for off := 0; off < len(values); {
		n := 1 + (off*7)%13
		if off+n > len(values) {
			n = len(values) - off
		}
		t.ObserveRun(pc, values[off:off+n], nil)
		off += n
	}
}

// bruteForce computes the exact empirical order-o conditional entropy and
// ideal-predictor ceiling of a sequence with hash maps.
func bruteForce(values []uint64, order int) (entropyBits, ceiling float64) {
	type ctx struct{ a, b, c, d, e, f uint64 }
	mk := func(i int) ctx {
		var k ctx
		p := []*uint64{&k.a, &k.b, &k.c, &k.d, &k.e, &k.f}
		for j := 0; j < order; j++ {
			*p[j] = values[i-1-j] + 1 // +1 so "unused" zero fields can't alias
		}
		return k
	}
	ctxN := map[ctx]uint64{}
	pairN := map[ctx]map[uint64]uint64{}
	tot := uint64(0)
	for i := order; i < len(values); i++ {
		k := mk(i)
		ctxN[k]++
		if pairN[k] == nil {
			pairN[k] = map[uint64]uint64{}
		}
		pairN[k][values[i]]++
		tot++
	}
	if tot == 0 {
		return 0, 0
	}
	var sumC, sumV float64
	var sumMax uint64
	for k, nc := range ctxN {
		sumC += float64(nc) * math.Log2(float64(nc))
		mx := uint64(0)
		for _, n := range pairN[k] {
			sumV += float64(n) * math.Log2(float64(n))
			if n > mx {
				mx = n
			}
		}
		sumMax += mx
	}
	return (sumC - sumV) / float64(tot), float64(sumMax) / float64(tot)
}

// TestStreamingEntropyExact pins the streaming estimator to the exact
// empirical conditional entropy (and ideal-predictor ceiling) on small
// alphabets, where nothing escapes or overflows: randomized sequences
// over alphabets of size 2..5, checked at every order.
func TestStreamingEntropyExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		alpha := 2 + trial%4
		n := 100 + rng.Intn(400)
		values := make([]uint64, n)
		for i := range values {
			values[i] = uint64(rng.Intn(alpha)) * 1000003 // non-trivial values
		}
		tr := NewTracker(Config{MaxOrder: 3, MaxValues: 8, MaxCtx: 2048, MinEvents: 1})
		feed(tr, 0x40, values)
		h, ok := tr.idx.Lookup(0x40)
		if !ok {
			t.Fatal("pc not tracked")
		}
		for order := 0; order <= 3; order++ {
			wantH, wantC := bruteForce(values, order)
			gotH, gotC, tot := tr.orderStats(h, order)
			if want := uint64(n - order); tot != want {
				t.Fatalf("trial %d order %d: tabled %d events, want %d", trial, order, tot, want)
			}
			if math.Abs(gotH-wantH) > 1e-9 {
				t.Errorf("trial %d order %d: entropy %.12f, want %.12f", trial, order, gotH, wantH)
			}
			if math.Abs(gotC-wantC) > 1e-9 {
				t.Errorf("trial %d order %d: ceiling %.12f, want %.12f", trial, order, gotC, wantC)
			}
		}
	}
}

// TestLastValueStrideCeilings pins the oracle last-value and stride
// ceilings on hand-checkable sequences.
func TestLastValueStrideCeilings(t *testing.T) {
	tr := NewTracker(Config{MinEvents: 1})
	// 10 events: stride 1..8 then two repeats of 8.
	vals := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 8, 8}
	feed(tr, 1, vals)
	h, _ := tr.idx.Lookup(1)
	lv, st, _, _ := tr.pcCeilings(h)
	// value==prev at the two trailing repeats: 2/9.
	if want := 2.0 / 9.0; math.Abs(lv-want) > 1e-12 {
		t.Errorf("last-value ceiling %.6f, want %.6f", lv, want)
	}
	// delta==prevDelta for deltas 2..7 (six) plus the final 0 after 0? deltas
	// are 1,1,1,1,1,1,1,0,0 → repeats at positions 2..7 (six) and the last 0: 7/8.
	if want := 7.0 / 8.0; math.Abs(st-want) > 1e-12 {
		t.Errorf("stride ceiling %.6f, want %.6f", st, want)
	}
}

// mergeStats extracts the order-dependent-free statistics compared by the
// associativity tests.
type mergeStats struct {
	events  uint64
	entropy map[uint64][4]float64 // pc → entropy at orders 0..3
	ceil    map[uint64][4]float64
	gaps    []PredGap
}

func statsOf(tr *Tracker) mergeStats {
	ms := mergeStats{
		events:  tr.events,
		entropy: map[uint64][4]float64{},
		ceil:    map[uint64][4]float64{},
	}
	for h := int32(0); int(h) < len(tr.pcs); h++ {
		var e, c [4]float64
		for o := 0; o <= 3; o++ {
			e[o], c[o], _ = tr.orderStats(h, o)
		}
		ms.entropy[tr.pcs[h]] = e
		ms.ceil[tr.pcs[h]] = c
	}
	ms.gaps = tr.Report(100).GapByPred
	return ms
}

func (a mergeStats) equal(t *testing.T, b mergeStats, label string) {
	t.Helper()
	if a.events != b.events {
		t.Errorf("%s: events %d vs %d", label, a.events, b.events)
	}
	if len(a.entropy) != len(b.entropy) {
		t.Fatalf("%s: pc count %d vs %d", label, len(a.entropy), len(b.entropy))
	}
	for pc, e := range a.entropy {
		be, ok := b.entropy[pc]
		if !ok {
			t.Fatalf("%s: pc %d missing", label, pc)
		}
		for o := range e {
			if math.Abs(e[o]-be[o]) > 1e-9 {
				t.Errorf("%s: pc %d order %d entropy %.12f vs %.12f", label, pc, o, e[o], be[o])
			}
			if math.Abs(a.ceil[pc][o]-b.ceil[pc][o]) > 1e-9 {
				t.Errorf("%s: pc %d order %d ceiling mismatch", label, pc, o)
			}
		}
	}
	for i := range a.gaps {
		if a.gaps[i].Hits != b.gaps[i].Hits || a.gaps[i].Events != b.gaps[i].Events ||
			math.Abs(a.gaps[i].CeilWeighted-b.gaps[i].CeilWeighted) > 1e-6 {
			t.Errorf("%s: pred %s gap sums differ", label, a.gaps[i].Name)
		}
	}
}

// TestMergeAssociativity checks that folding shard trackers together is
// associative in every count-derived statistic, across both disjoint and
// shared PCs (shared PCs exercise the symbol-remapping path: each stream
// meets the values in a different order, so symbol IDs differ per side).
func TestMergeAssociativity(t *testing.T) {
	cfg := Config{MaxOrder: 3, MaxValues: 16, MaxCtx: 1024, MinEvents: 1, PredNames: []string{"l", "fcm3"}}
	rng := rand.New(rand.NewSource(11))
	streams := make(map[int]map[uint64][]uint64) // part → pc → values
	for part := 0; part < 3; part++ {
		streams[part] = map[uint64][]uint64{}
		for _, pc := range []uint64{100 + uint64(part), 500, 600} { // 500/600 shared
			n := 64 + rng.Intn(200)
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = uint64(rng.Intn(5)) * 77
			}
			streams[part][pc] = vals
		}
	}
	build := func(part int) *Tracker {
		tr := NewTracker(cfg)
		for pc, vals := range streams[part] {
			hits := [][]byte{make([]byte, 0), make([]byte, 0)}
			for range vals {
				hits[0] = append(hits[0], byte(rng.Intn(2)))
				hits[1] = append(hits[1], 1)
			}
			// deliver as one run per stream for simplicity
			tr.ObserveRun(pc, vals, hits)
		}
		return tr
	}
	// hits are randomized per build call; freeze them by seeding per part
	buildDet := func(part int) *Tracker {
		rng = rand.New(rand.NewSource(int64(1000 + part)))
		return build(part)
	}

	ab := buildDet(0)
	ab.Merge(buildDet(1))
	abc := ab
	abc.Merge(buildDet(2))

	bc := buildDet(1)
	bc.Merge(buildDet(2))
	abc2 := buildDet(0)
	abc2.Merge(bc)

	statsOf(abc).equal(t, statsOf(abc2), "(a+b)+c vs a+(b+c)")

	// And against the union computed directly: a tracker that saw each
	// part's stream per PC back to back would differ at run boundaries,
	// so instead compare the merged order-0 totals, which are boundary-free.
	want := uint64(0)
	for part := 0; part < 3; part++ {
		for _, vals := range streams[part] {
			want += uint64(len(vals))
		}
	}
	if abc.events != want {
		t.Errorf("merged events %d, want %d", abc.events, want)
	}
}

// TestMergeDisjointMatchesSingle: merging trackers over disjoint PC sets
// is exactly the tracker that saw everything (same single-writer order).
func TestMergeDisjointMatchesSingle(t *testing.T) {
	cfg := Config{MinEvents: 1, PredNames: []string{"l"}}
	rng := rand.New(rand.NewSource(3))
	one := NewTracker(cfg)
	parts := []*Tracker{NewTracker(cfg), NewTracker(cfg)}
	for pc := uint64(0); pc < 6; pc++ {
		n := 50 + rng.Intn(100)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(rng.Intn(4))
		}
		hits := [][]byte{make([]byte, n)}
		for i := range hits[0] {
			hits[0][i] = byte(rng.Intn(2))
		}
		one.ObserveRun(pc, vals, hits)
		parts[pc%2].ObserveRun(pc, vals, hits)
	}
	merged := NewTracker(cfg)
	merged.Merge(parts[0])
	merged.Merge(parts[1])
	statsOf(one).equal(t, statsOf(merged), "single vs merged-disjoint")
	// Disjoint merge copies tail state too, so full reports agree.
	a, b := one.Report(10), merged.Report(10)
	if a.Reported != b.Reported || a.PCs != b.PCs {
		t.Fatalf("report shape differs: %+v vs %+v", a, b)
	}
	for i := range a.Hardest {
		if a.Hardest[i].PC != b.Hardest[i].PC || a.Hardest[i].Class != b.Hardest[i].Class ||
			math.Abs(a.Hardest[i].EntropyBits-b.Hardest[i].EntropyBits) > 1e-9 {
			t.Errorf("hardest[%d] differs: %+v vs %+v", i, a.Hardest[i], b.Hardest[i])
		}
	}
}

// TestClassLabeling checks the live window labeling against the paper's
// classes.
func TestClassLabeling(t *testing.T) {
	tr := NewTracker(Config{MinEvents: 1})
	feed(tr, 1, seqclass.Take(seqclass.ConstantGen(9), 40))
	feed(tr, 2, seqclass.Take(seqclass.StrideGen(0, 3), 40))
	feed(tr, 3, seqclass.Take(seqclass.RepeatedGen([]uint64{5, 1, 9, 2}), 40))
	want := map[uint64]string{1: "C", 2: "S", 3: "RNS"}
	for pc, cls := range want {
		h, ok := tr.idx.Lookup(pc)
		if !ok {
			t.Fatalf("pc %d untracked", pc)
		}
		if got := tr.classOf(h).String(); got != cls {
			t.Errorf("pc %d classified %s, want %s", pc, got, cls)
		}
	}
}

// TestGapEvent: a highly predictable stream served only by a predictor
// that always misses must fire a predictability_gap ring event once past
// MinEvents, and only once (hysteresis latch).
func TestGapEvent(t *testing.T) {
	ring := obs.NewRing(16)
	tr := NewTracker(Config{PredNames: []string{"l"}, Ring: ring, MinEvents: 256, GapThreshold: 0.25})
	vals := seqclass.Take(seqclass.RepeatedGen([]uint64{5, 1, 9, 2}), 2048)
	miss := make([]byte, 64)
	for off := 0; off < len(vals); off += 64 {
		tr.ObserveRun(7, vals[off:off+64], [][]byte{miss[:64]})
	}
	evs := ring.Events()
	n := 0
	for _, ev := range evs {
		if ev.Kind == "predictability_gap" {
			n++
			if ev.Shard != 0 || ev.Detail == "" {
				t.Errorf("bad gap event: %+v", ev)
			}
		}
	}
	if n != 1 {
		t.Fatalf("got %d gap events, want exactly 1 (latched): %+v", n, evs)
	}
}

// TestBoundedMemory floods one PC with distinct values under a tiny
// config: the alphabet escapes, tables overflow, and nothing grows or
// panics; the report stays sane.
func TestBoundedMemory(t *testing.T) {
	tr := NewTracker(Config{MaxValues: 4, MaxCtx: 8, Window: 8, MinEvents: 16, PredNames: []string{"l"}})
	vals := make([]uint64, 4096)
	for i := range vals {
		vals[i] = uint64(i) * 2654435761
	}
	hits := make([]byte, len(vals))
	tr.ObserveRun(9, vals, [][]byte{hits})
	r := tr.Report(5)
	if r.Reported != 1 || r.Events != 4096 {
		t.Fatalf("report: %+v", r)
	}
	pr := r.Hardest[0]
	if pr.Ceiling < 0 || pr.Ceiling > 1 || math.IsNaN(pr.EntropyBits) {
		t.Fatalf("bad pc report: %+v", pr)
	}
	if got := len(tr.cnt); got != (tr.cfg.MaxOrder+1)*tr.cfg.MaxCtx {
		t.Fatalf("count slab grew: %d entries", got)
	}
}

// TestObserveRunZeroAlloc is the steady-state gate for the tracker
// itself: once every PC's slabs exist, ObserveRun allocates nothing —
// including with a ring attached (gap checks run but don't fire on a
// stream the bank predicts perfectly).
func TestObserveRunZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	ring := obs.NewRing(64)
	tr := NewTracker(Config{PredNames: []string{"l", "fcm3"}, Ring: ring, MinEvents: 256})
	const batch = 256
	vals := make([]uint64, batch)
	hit := make([]byte, batch)
	for i := range hit {
		hit[i] = 1
	}
	rows := [][]byte{hit, hit}
	period := []uint64{3, 1, 4, 7}
	fill := func(base int) {
		for j := range vals {
			vals[j] = period[(base+j)%4]
		}
	}
	for it := 0; it < 8; it++ {
		fill(it)
		for pc := uint64(0); pc < 16; pc++ {
			tr.ObserveRun(pc, vals, rows)
		}
	}
	it := 8
	allocs := testing.AllocsPerRun(50, func() {
		fill(it)
		for pc := uint64(0); pc < 16; pc++ {
			tr.ObserveRun(pc, vals, rows)
		}
		it++
	})
	if allocs != 0 {
		t.Fatalf("ObserveRun steady state allocates %.1f allocs", allocs)
	}
}
