// Package predstat measures how predictable each PC's value stream is,
// online and in bounded memory, so realized predictor hit rates can be
// judged against the ceiling the stream itself permits. It is the running
// system's version of the paper's central question: not "how often did the
// predictor hit" but "how often could any predictor of this class hit".
//
// A Tracker attaches to a core.Bank through the RunObserver hook and sees
// every same-PC value run together with each predictor's hit bits. Per PC
// it maintains, on the flat-slab idiom of internal/core:
//
//   - order-0..MaxOrder conditional entropy rates and ideal-predictor
//     ceilings, via fixed-size count tables over a small per-PC symbol
//     alphabet (values past MaxValues collapse into an escape symbol,
//     contexts past MaxCtx into an overflow counter — estimates degrade
//     gracefully instead of memory growing);
//   - last-value and stride ceilings (the fraction of events an oracle
//     last-value or stride predictor would hit);
//   - a trailing value window labeled with the paper's sequence classes
//     (internal/seqclass) at report time;
//   - realized per-predictor hit counts, so the gap between ceiling and
//     reality is attributable per predictor.
//
// When a PC's ceiling-gap (best ceiling minus best realized accuracy)
// crosses Config.GapThreshold, the Tracker fires a stage-ring event — the
// "this stream deserves a different predictor" signal a future
// meta-chooser consumes.
//
// ObserveRun is allocation-free in steady state; all reporting
// (Report, Merge) is cold-path.
package predstat

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/seqclass"
)

// Config bounds a Tracker's memory and tunes its reporting. The zero
// value is usable: Normalize fills in defaults.
type Config struct {
	// MaxOrder is the highest conditional-entropy order tracked
	// (order-0..MaxOrder tables are kept per PC). Default 3, max 6.
	MaxOrder int
	// MaxValues bounds the per-PC symbol alphabet; further distinct
	// values collapse into one escape symbol. Default 16, max 64.
	MaxValues int
	// MaxCtx bounds the count-table slots per (pc, order); rounded up to
	// a power of two. Contexts past 3/4 fill are tallied in an overflow
	// counter instead of tabled. Default 64.
	MaxCtx int
	// Window is the number of trailing values kept per PC for sequence-
	// class labeling. Default 16.
	Window int
	// PredNames are the bank's predictor names in bank order. If empty,
	// names p0..pN-1 are synthesized from the first observed run.
	PredNames []string
	// GapThreshold is the ceiling-gap at which a stage-ring event fires
	// (with hysteresis: the latch clears at 0.8×). Default 0.25.
	GapThreshold float64
	// MinEvents is the per-PC event count below which a PC is neither
	// reported nor gap-checked. Default 256.
	MinEvents uint64
	// Ring, when non-nil, receives "predictability_gap" events.
	Ring *obs.Ring
	// Shard is stamped on ring events.
	Shard int
}

// Normalize fills defaults and clamps bounds so that every context key
// fits in a uint64. It returns the normalized copy.
func (c Config) Normalize() Config {
	if c.MaxOrder <= 0 {
		c.MaxOrder = 3
	}
	if c.MaxOrder > 6 {
		c.MaxOrder = 6
	}
	if c.MaxValues <= 0 {
		c.MaxValues = 16
	}
	if c.MaxValues > 64 {
		c.MaxValues = 64
	}
	if c.MaxCtx <= 0 {
		c.MaxCtx = 64
	}
	c.MaxCtx = pow2ceil(c.MaxCtx)
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.Window > 1<<14 {
		c.Window = 1 << 14
	}
	if c.GapThreshold <= 0 {
		c.GapThreshold = 0.25
	}
	if c.MinEvents == 0 {
		c.MinEvents = 256
	}
	return c
}

func pow2ceil(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// mix64 is the splitmix64 finalizer (same mixer as internal/core).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ctxEntry is one count-table slot: a base-(MaxValues+1) packed
// (context, next-symbol) key and its occurrence count. n==0 means empty.
type ctxEntry struct {
	key uint64
	n   uint32
}

// symSlot is one symbol-dictionary slot; ref is sym+1 so the zero value
// is empty and value 0 needs no special casing.
type symSlot struct {
	val uint64
	ref uint16
}

// pcState is the scalar per-PC state slab entry.
type pcState struct {
	events    uint64 // values observed at this PC
	prev      uint64 // last value
	prevDelta uint64 // last delta (valid when events >= 2)
	lvHits    uint64 // events where value == previous value
	stHits    uint64 // events where delta == previous delta
	winLen    uint16
	winPos    uint16
	syms      uint16 // assigned symbols (escape excluded)
	gapHigh   bool   // gap-event hysteresis latch
}

// Tracker is a bounded-memory streaming predictability estimator over
// every PC it observes. It is single-writer: ObserveRun, Report and Merge
// must not race (in serve each shard owns one Tracker).
type Tracker struct {
	cfg     Config
	base    uint64 // MaxValues+1; symbol MaxValues is the escape
	dictCap int    // power of two, ≥ 2×MaxValues
	npred   int
	names   []string

	idx  core.PCIndex
	pcs  []uint64   // handle → pc
	st   []pcState  // handle → scalars
	win  []uint64   // handle*Window trailing-value ring
	dict []symSlot  // handle*dictCap value→symbol slots
	symv []uint64   // handle*MaxValues symbol→value (for Merge remap)
	hist []uint16   // handle*MaxOrder most-recent-first symbols
	cnt  []ctxEntry // handle*(MaxOrder+1)*MaxCtx count tables
	fill []uint32   // handle*(MaxOrder+1) occupied slots per table
	ovf  []uint64   // handle*(MaxOrder+1) events lost to full tables

	predHits []uint64 // handle*npred realized hits

	events  uint64     // total observed events
	scratch []ctxEntry // reused by orderStats
	winBuf  []uint64   // reused window linearization
}

// NewTracker builds a Tracker; cfg is normalized first.
func NewTracker(cfg Config) *Tracker {
	cfg = cfg.Normalize()
	t := &Tracker{
		cfg:     cfg,
		base:    uint64(cfg.MaxValues) + 1,
		dictCap: pow2ceil(2 * cfg.MaxValues),
		scratch: make([]ctxEntry, 0, cfg.MaxCtx),
		winBuf:  make([]uint64, cfg.Window),
	}
	if len(cfg.PredNames) > 0 {
		t.setPreds(cfg.PredNames)
	}
	return t
}

// Config returns the tracker's normalized configuration.
func (t *Tracker) Config() Config { return t.cfg }

// PredNames returns the predictor names in bank order.
func (t *Tracker) PredNames() []string { return t.names }

// Events returns the total number of observed events.
func (t *Tracker) Events() uint64 { return t.events }

// PCs returns the number of tracked PCs.
func (t *Tracker) PCs() int { return t.idx.Len() }

func (t *Tracker) setPreds(names []string) {
	t.npred = len(names)
	t.names = append([]string(nil), names...)
}

// handle returns the slab handle for pc, growing every slab in lockstep
// on first sight.
func (t *Tracker) handle(pc uint64) int32 {
	if h, ok := t.idx.Lookup(pc); ok {
		return h
	}
	h := t.idx.Insert(pc)
	t.pcs = append(t.pcs, pc)
	t.st = append(t.st, pcState{})
	t.win = append(t.win, make([]uint64, t.cfg.Window)...)
	t.dict = append(t.dict, make([]symSlot, t.dictCap)...)
	t.symv = append(t.symv, make([]uint64, t.cfg.MaxValues)...)
	t.hist = append(t.hist, make([]uint16, t.cfg.MaxOrder)...)
	t.cnt = append(t.cnt, make([]ctxEntry, (t.cfg.MaxOrder+1)*t.cfg.MaxCtx)...)
	t.fill = append(t.fill, make([]uint32, t.cfg.MaxOrder+1)...)
	t.ovf = append(t.ovf, make([]uint64, t.cfg.MaxOrder+1)...)
	t.predHits = append(t.predHits, make([]uint64, t.npred)...)
	return h
}

// symbolFor maps a value to this PC's symbol, assigning the next free
// symbol on first sight and the escape symbol once the alphabet is full.
func (t *Tracker) symbolFor(h int32, v uint64) uint16 {
	slots := t.dict[int(h)*t.dictCap : (int(h)+1)*t.dictCap]
	mask := uint64(t.dictCap - 1)
	for i := mix64(v) & mask; ; i = (i + 1) & mask {
		sl := &slots[i]
		if sl.ref == 0 {
			s := &t.st[h]
			if int(s.syms) >= t.cfg.MaxValues {
				return uint16(t.cfg.MaxValues) // escape
			}
			sym := s.syms
			s.syms++
			sl.val = v
			sl.ref = sym + 1
			t.symv[int(h)*t.cfg.MaxValues+int(sym)] = v
			return sym
		}
		if sl.val == v {
			return sl.ref - 1
		}
	}
}

// bumpN adds n occurrences of key to the (handle, order) count table,
// spilling to the overflow counter when the table is 3/4 full.
func (t *Tracker) bumpN(h int32, order int, key uint64, n uint32) {
	tb := t.table(h, order)
	mask := uint64(t.cfg.MaxCtx - 1)
	fi := int(h)*(t.cfg.MaxOrder+1) + order
	for i := mix64(key) & mask; ; i = (i + 1) & mask {
		e := &tb[i]
		if e.n == 0 {
			if 4*int(t.fill[fi]+1) > 3*t.cfg.MaxCtx {
				t.ovf[fi] += uint64(n)
				return
			}
			e.key = key
			e.n = n
			t.fill[fi]++
			return
		}
		if e.key == key {
			e.n += n
			return
		}
	}
}

func (t *Tracker) table(h int32, order int) []ctxEntry {
	off := (int(h)*(t.cfg.MaxOrder+1) + order) * t.cfg.MaxCtx
	return t.cnt[off : off+t.cfg.MaxCtx]
}

// ObserveRun implements core.RunObserver: values is one same-PC run in
// stream order, hits one row per predictor. Allocation-free once a PC's
// slabs exist.
func (t *Tracker) ObserveRun(pc uint64, values []uint64, hits [][]byte) {
	if len(values) == 0 {
		return
	}
	if t.npred == 0 && len(hits) > 0 {
		names := make([]string, len(hits))
		for i := range names {
			names[i] = fmt.Sprintf("p%d", i)
		}
		t.setPreds(names)
	}
	h := t.handle(pc)
	for i := 0; i < t.npred && i < len(hits); i++ {
		sum := uint64(0)
		for _, b := range hits[i] {
			sum += uint64(b)
		}
		t.predHits[int(h)*t.npred+i] += sum
	}

	s := &t.st[h]
	before := s.events
	K := t.cfg.MaxOrder
	hist := t.hist[int(h)*K : (int(h)+1)*K]
	win := t.win[int(h)*t.cfg.Window : (int(h)+1)*t.cfg.Window]
	for _, v := range values {
		if s.events >= 1 {
			if v == s.prev {
				s.lvHits++
			}
			delta := v - s.prev
			if s.events >= 2 && delta == s.prevDelta {
				s.stHits++
			}
			s.prevDelta = delta
		}
		s.prev = v

		win[s.winPos] = v
		s.winPos++
		if int(s.winPos) == t.cfg.Window {
			s.winPos = 0
		}
		if int(s.winLen) < t.cfg.Window {
			s.winLen++
		}

		sym := t.symbolFor(h, v)
		ctx, mul := uint64(0), uint64(1)
		for o := 0; o <= K; o++ {
			if uint64(o) <= s.events {
				t.bumpN(h, o, ctx*t.base+uint64(sym), 1)
			}
			if o < K {
				ctx += uint64(hist[o]) * mul
				mul *= t.base
			}
		}
		for j := K - 1; j > 0; j-- {
			hist[j] = hist[j-1]
		}
		if K > 0 {
			hist[0] = sym
		}
		s.events++
	}
	t.events += uint64(len(values))

	if t.cfg.Ring != nil && s.events >= t.cfg.MinEvents && before>>8 != s.events>>8 {
		t.checkGap(h, s)
	}
}

// orderStats computes the order-o conditional entropy rate (bits/value),
// the ideal order-o context predictor's hit ceiling, and the tabled event
// count for one PC. Escaped values count as one symbol; overflowed
// contexts are excluded (bounded-memory approximation).
func (t *Tracker) orderStats(h int32, order int) (entropyBits, ceiling float64, total uint64) {
	tb := t.table(h, order)
	sc := t.scratch[:0]
	for i := range tb {
		if tb[i].n != 0 {
			// Insertion sort by key keeps same-context entries adjacent
			// (key = ctx*base + sym).
			j := len(sc)
			sc = append(sc, tb[i])
			for j > 0 && sc[j-1].key > sc[j].key {
				sc[j-1], sc[j] = sc[j], sc[j-1]
				j--
			}
		}
	}
	t.scratch = sc[:0] // retain capacity
	if len(sc) == 0 {
		return 0, 0, 0
	}
	var sumClogC, sumVlogV float64
	var sumMax, tot uint64
	i := 0
	for i < len(sc) {
		ctx := sc[i].key / t.base
		var nc, mx uint64
		for i < len(sc) && sc[i].key/t.base == ctx {
			n := uint64(sc[i].n)
			nc += n
			if n > mx {
				mx = n
			}
			sumVlogV += float64(n) * math.Log2(float64(n))
			i++
		}
		sumClogC += float64(nc) * math.Log2(float64(nc))
		sumMax += mx
		tot += nc
	}
	return (sumClogC - sumVlogV) / float64(tot), float64(sumMax) / float64(tot), tot
}

// pcCeilings returns the last-value and stride ceilings plus the per-order
// ceilings and top-order entropy for one PC.
func (t *Tracker) pcCeilings(h int32) (ceilLV, ceilSt float64, ceilOrder []float64, entropy float64) {
	s := &t.st[h]
	if s.events >= 2 {
		ceilLV = float64(s.lvHits) / float64(s.events-1)
	}
	if s.events >= 3 {
		ceilSt = float64(s.stHits) / float64(s.events-2)
	}
	ceilOrder = make([]float64, t.cfg.MaxOrder+1)
	for o := 0; o <= t.cfg.MaxOrder; o++ {
		e, c, tot := t.orderStats(h, o)
		ceilOrder[o] = c
		if o == t.cfg.MaxOrder && tot > 0 {
			entropy = e
		}
	}
	return
}

// checkGap fires a stage-ring event when the PC's ceiling-gap rises
// through GapThreshold, with a 0.8× hysteresis on the way down. Cold
// path: the event detail allocates.
func (t *Tracker) checkGap(h int32, s *pcState) {
	var best float64
	if s.events >= 2 {
		best = float64(s.lvHits) / float64(s.events-1)
	}
	if s.events >= 3 {
		if st := float64(s.stHits) / float64(s.events-2); st > best {
			best = st
		}
	}
	for o := 0; o <= t.cfg.MaxOrder; o++ {
		if _, c, _ := t.orderStats(h, o); c > best {
			best = c
		}
	}
	acc, bi := 0.0, -1
	for i := 0; i < t.npred; i++ {
		a := float64(t.predHits[int(h)*t.npred+i]) / float64(s.events)
		if a > acc {
			acc, bi = a, i
		}
	}
	gap := best - acc
	if !s.gapHigh && gap >= t.cfg.GapThreshold {
		s.gapHigh = true
		bestName := "?"
		if bi >= 0 {
			bestName = t.names[bi]
		}
		t.cfg.Ring.Add(obs.StageEvent{
			Kind:  "predictability_gap",
			Shard: t.cfg.Shard,
			N:     s.events,
			Detail: fmt.Sprintf("pc=%#x ceiling=%.3f best=%s acc=%.3f gap=%.3f",
				t.pcs[h], best, bestName, acc, gap),
		})
	} else if s.gapHigh && gap < 0.8*t.cfg.GapThreshold {
		s.gapHigh = false
	}
}

// Reset drops all per-PC state, keeping configuration and capacity.
func (t *Tracker) Reset() {
	t.idx.Reset()
	t.pcs = t.pcs[:0]
	t.st = t.st[:0]
	t.win = t.win[:0]
	t.dict = t.dict[:0]
	t.symv = t.symv[:0]
	t.hist = t.hist[:0]
	t.cnt = t.cnt[:0]
	t.fill = t.fill[:0]
	t.ovf = t.ovf[:0]
	t.predHits = t.predHits[:0]
	t.events = 0
}

// classOf labels one PC's trailing window with the paper's sequence
// class, using the reusable linearization buffer.
func (t *Tracker) classOf(h int32) seqclass.Kind {
	s := &t.st[h]
	n := int(s.winLen)
	if n < 3 {
		return seqclass.Unclassified
	}
	win := t.win[int(h)*t.cfg.Window : (int(h)+1)*t.cfg.Window]
	buf := t.winBuf[:0]
	start := int(s.winPos)
	if n < t.cfg.Window {
		start = 0
	}
	for i := 0; i < n; i++ {
		buf = append(buf, win[(start+i)%t.cfg.Window])
	}
	return seqclass.Classify(buf, t.cfg.Window/2)
}

// Merge folds o's observations into t. Both trackers must share the same
// normalized Config shape (MaxOrder, MaxValues, MaxCtx, Window) and
// predictor list. Count statistics merge exactly (and associatively) as
// long as neither side overflowed its tables or alphabet; stream-tail
// state (previous value/delta, history, window) is taken from whichever
// side has seen more events at that PC.
func (t *Tracker) Merge(o *Tracker) {
	if o == nil || o.idx.Len() == 0 {
		return
	}
	if t.npred == 0 {
		t.setPreds(o.names)
	}
	K := t.cfg.MaxOrder
	W := t.cfg.Window
	for oh := int32(0); int(oh) < len(o.pcs); oh++ {
		pc := o.pcs[oh]
		_, existed := t.idx.Lookup(pc)
		h := t.handle(pc)
		os := &o.st[oh]
		if !existed {
			// Fast path: byte-copy every slab for a PC only o has seen.
			t.st[h] = *os
			copy(t.win[int(h)*W:(int(h)+1)*W], o.win[int(oh)*W:(int(oh)+1)*W])
			copy(t.dict[int(h)*t.dictCap:(int(h)+1)*t.dictCap], o.dict[int(oh)*o.dictCap:(int(oh)+1)*o.dictCap])
			copy(t.symv[int(h)*t.cfg.MaxValues:(int(h)+1)*t.cfg.MaxValues], o.symv[int(oh)*o.cfg.MaxValues:(int(oh)+1)*o.cfg.MaxValues])
			copy(t.hist[int(h)*K:(int(h)+1)*K], o.hist[int(oh)*K:(int(oh)+1)*K])
			cw := (K + 1) * t.cfg.MaxCtx
			copy(t.cnt[int(h)*cw:(int(h)+1)*cw], o.cnt[int(oh)*cw:(int(oh)+1)*cw])
			copy(t.fill[int(h)*(K+1):(int(h)+1)*(K+1)], o.fill[int(oh)*(K+1):(int(oh)+1)*(K+1)])
			copy(t.ovf[int(h)*(K+1):(int(h)+1)*(K+1)], o.ovf[int(oh)*(K+1):(int(oh)+1)*(K+1)])
			copy(t.predHits[int(h)*t.npred:(int(h)+1)*t.npred], o.predHits[int(oh)*o.npred:(int(oh)+1)*o.npred])
			continue
		}
		// Slow path: same PC on both sides. Remap o's symbols into t's
		// alphabet, then re-key and sum every count.
		remap := make([]uint16, o.cfg.MaxValues+1)
		for sym := 0; sym < int(os.syms); sym++ {
			remap[sym] = t.symbolFor(h, o.symv[int(oh)*o.cfg.MaxValues+sym])
		}
		remap[o.cfg.MaxValues] = uint16(t.cfg.MaxValues) // escape stays escape
		for order := 0; order <= K; order++ {
			for _, e := range o.table(oh, order) {
				if e.n == 0 {
					continue
				}
				key, mul := uint64(0), uint64(1)
				rk := e.key
				for d := 0; d <= order; d++ {
					key += uint64(remap[rk%o.base]) * mul
					rk /= o.base
					mul *= t.base
				}
				t.bumpN(h, order, key, e.n)
			}
			t.ovf[int(h)*(K+1)+order] += o.ovf[int(oh)*(K+1)+order]
		}
		for i := 0; i < t.npred; i++ {
			t.predHits[int(h)*t.npred+i] += o.predHits[int(oh)*o.npred+i]
		}
		ts := &t.st[h]
		if os.events > ts.events {
			ts.prev, ts.prevDelta = os.prev, os.prevDelta
			ts.winLen, ts.winPos = os.winLen, os.winPos
			copy(t.win[int(h)*W:(int(h)+1)*W], o.win[int(oh)*W:(int(oh)+1)*W])
			for j := 0; j < K; j++ { // o's history carries o's symbol IDs
				t.hist[int(h)*K+j] = remap[o.hist[int(oh)*K+j]]
			}
		}
		ts.events += os.events
		ts.lvHits += os.lvHits
		ts.stHits += os.stHits
		ts.gapHigh = ts.gapHigh || os.gapHigh
	}
	t.events += o.events
}
