package predstat

import (
	"sort"
	"strings"
)

// PCReport is one PC's predictability summary.
type PCReport struct {
	PC     uint64 `json:"pc"`
	Events uint64 `json:"events"`
	// Class is the paper's sequence-class label of the trailing window
	// (C, S, NS, RS, RNS or ?).
	Class string `json:"class"`
	// EntropyBits is the order-MaxOrder conditional entropy rate in
	// bits/value: 0 means perfectly predictable given context.
	EntropyBits float64 `json:"entropy_bits"`
	// Ceiling is the best achievable hit rate across all tracked
	// predictor classes (last-value, stride, order-0..MaxOrder context).
	Ceiling    float64   `json:"ceiling"`
	CeilLast   float64   `json:"ceil_last_value"`
	CeilStride float64   `json:"ceil_stride"`
	CeilOrder  []float64 `json:"ceil_order"`
	// BestPred and BestAccuracy identify the realized winner.
	BestPred     string  `json:"best_pred"`
	BestAccuracy float64 `json:"best_accuracy"`
	// Gap = Ceiling − BestAccuracy: how much headroom the bank leaves.
	Gap float64 `json:"gap"`
}

// PredGap attributes the ceiling-gap to one predictor: its realized hits
// versus the ceiling of its own class (last-value predictors against the
// last-value ceiling, stride against stride, order-N FCMs against the
// order-min(N,MaxOrder) context ceiling, hybrids against the best).
type PredGap struct {
	Name   string `json:"name"`
	Events uint64 `json:"events"`
	Hits   uint64 `json:"hits"`
	// Gap is (Σ ceiling·events − Σ hits)/Σ events over reported PCs.
	Gap float64 `json:"gap"`
	// CeilWeighted is Σ ceiling·events, kept for exact merging.
	CeilWeighted float64 `json:"-"`
}

// ClassStat aggregates the reported PCs of one sequence class: how many
// events they carry, the events-weighted best ceiling their streams
// permit, and the events-weighted best accuracy the bank realized — the
// per-class accuracy-vs-ceiling comparison the paper's taxonomy frames.
type ClassStat struct {
	PCs    int    `json:"pcs"`
	Events uint64 `json:"events"`
	// Ceiling, Accuracy and EntropyBits are events-weighted means over
	// the class's reported PCs (each PC contributes its best ceiling, its
	// best realized predictor accuracy, and its order-MaxOrder entropy).
	Ceiling     float64 `json:"ceiling"`
	Accuracy    float64 `json:"accuracy"`
	EntropyBits float64 `json:"entropy_bits"`
	// CeilW, AccW and EntW are the Σ value·events sums, kept for merging.
	CeilW float64 `json:"-"`
	AccW  float64 `json:"-"`
	EntW  float64 `json:"-"`
}

// Report is a mergeable predictability summary over every PC a Tracker
// (or a set of shard trackers) has seen.
type Report struct {
	Preds []string `json:"preds"`
	// Events and PCs cover everything observed; Reported counts only
	// PCs with ≥ MinEvents, which all per-PC statistics are limited to.
	Events   uint64 `json:"events"`
	PCs      int    `json:"pcs"`
	Reported int    `json:"reported_pcs"`
	// ClassEvents tallies events by the sequence class of each PC's
	// trailing window (all tracked PCs, not just reported ones).
	ClassEvents map[string]uint64 `json:"class_events"`
	// Classes aggregates accuracy vs ceiling per sequence class over
	// reported PCs only.
	Classes   map[string]*ClassStat `json:"classes"`
	GapByPred []PredGap             `json:"gap_by_pred"`
	// Hardest and Easiest rank reported PCs by conditional entropy.
	Hardest []PCReport `json:"hardest"`
	Easiest []PCReport `json:"easiest"`
	// EntropyBits holds one order-MaxOrder entropy sample per reported
	// PC, for histogram exposition; excluded from JSON.
	EntropyBits []float64 `json:"-"`
}

// ClassLabels are the sequence-class labels in presentation order.
var ClassLabels = []string{"C", "S", "NS", "RS", "RNS", "?"}

// ceilingIndex classifies a predictor name into the ceiling it should be
// judged against: 0 last-value, 1 stride, 2+o order-o context, -1 best.
func ceilingIndex(name string, maxOrder int) int {
	switch {
	case strings.HasPrefix(name, "fcm") || strings.HasPrefix(name, "bfcm"):
		d := 0
		for _, r := range name {
			if r >= '0' && r <= '9' {
				d = d*10 + int(r-'0')
				break // first digit run is the order
			}
		}
		if d > maxOrder {
			d = maxOrder
		}
		return 2 + d
	case strings.HasPrefix(name, "l"):
		return 0
	case strings.HasPrefix(name, "s"):
		return 1
	default:
		return -1 // hybrids and unknowns: judge against the best ceiling
	}
}

// Report builds a summary, ranking at most topN hardest and easiest PCs.
// Cold path: allocates freely.
func (t *Tracker) Report(topN int) *Report {
	if topN <= 0 {
		topN = 10
	}
	r := &Report{
		Preds:       append([]string(nil), t.names...),
		Events:      t.events,
		PCs:         t.idx.Len(),
		ClassEvents: make(map[string]uint64, len(ClassLabels)),
		Classes:     make(map[string]*ClassStat, len(ClassLabels)),
		GapByPred:   make([]PredGap, t.npred),
	}
	for i, n := range t.names {
		r.GapByPred[i].Name = n
	}
	var all []PCReport
	for h := int32(0); int(h) < len(t.pcs); h++ {
		s := &t.st[h]
		r.ClassEvents[t.classOf(h).String()] += s.events
		if s.events < t.cfg.MinEvents {
			continue
		}
		ceilLV, ceilSt, ceilOrder, entropy := t.pcCeilings(h)
		pr := PCReport{
			PC:          t.pcs[h],
			Events:      s.events,
			Class:       t.classOf(h).String(),
			EntropyBits: entropy,
			CeilLast:    ceilLV,
			CeilStride:  ceilSt,
			CeilOrder:   ceilOrder,
		}
		pr.Ceiling = ceilLV
		if ceilSt > pr.Ceiling {
			pr.Ceiling = ceilSt
		}
		for _, c := range ceilOrder {
			if c > pr.Ceiling {
				pr.Ceiling = c
			}
		}
		for i := 0; i < t.npred; i++ {
			hits := t.predHits[int(h)*t.npred+i]
			acc := float64(hits) / float64(s.events)
			if acc > pr.BestAccuracy || pr.BestPred == "" {
				pr.BestAccuracy, pr.BestPred = acc, t.names[i]
			}
			g := &r.GapByPred[i]
			g.Events += s.events
			g.Hits += hits
			ceil := pr.Ceiling
			switch ci := ceilingIndex(t.names[i], t.cfg.MaxOrder); {
			case ci == 0:
				ceil = ceilLV
			case ci == 1:
				ceil = ceilSt
			case ci >= 2:
				ceil = ceilOrder[ci-2]
			}
			g.CeilWeighted += ceil * float64(s.events)
		}
		pr.Gap = pr.Ceiling - pr.BestAccuracy
		cs := r.Classes[pr.Class]
		if cs == nil {
			cs = &ClassStat{}
			r.Classes[pr.Class] = cs
		}
		cs.PCs++
		cs.Events += s.events
		cs.CeilW += pr.Ceiling * float64(s.events)
		cs.AccW += pr.BestAccuracy * float64(s.events)
		cs.EntW += entropy * float64(s.events)
		r.Reported++
		r.EntropyBits = append(r.EntropyBits, entropy)
		all = append(all, pr)
	}
	for i := range r.GapByPred {
		g := &r.GapByPred[i]
		if g.Events > 0 {
			g.Gap = (g.CeilWeighted - float64(g.Hits)) / float64(g.Events)
		}
	}
	finalizeClasses(r)
	rankInto(r, all, topN)
	return r
}

// finalizeClasses turns each class's weighted sums into means.
func finalizeClasses(r *Report) {
	for _, cs := range r.Classes {
		if cs.Events > 0 {
			cs.Ceiling = cs.CeilW / float64(cs.Events)
			cs.Accuracy = cs.AccW / float64(cs.Events)
			cs.EntropyBits = cs.EntW / float64(cs.Events)
		}
	}
}

// rankInto fills r.Hardest/r.Easiest from the full PC list.
func rankInto(r *Report, all []PCReport, topN int) {
	sort.Slice(all, func(i, j int) bool {
		if all[i].EntropyBits != all[j].EntropyBits {
			return all[i].EntropyBits > all[j].EntropyBits
		}
		return all[i].PC < all[j].PC
	})
	n := topN
	if n > len(all) {
		n = len(all)
	}
	r.Hardest = append([]PCReport(nil), all[:n]...)
	r.Easiest = make([]PCReport, 0, n)
	for i := len(all) - 1; i >= len(all)-n; i-- {
		r.Easiest = append(r.Easiest, all[i])
	}
}

// Merge folds o into r (predictor lists must match), keeping at most topN
// entries in each ranking. Used to aggregate per-shard reports at scrape.
func (r *Report) Merge(o *Report, topN int) {
	if o == nil {
		return
	}
	if len(r.Preds) == 0 {
		r.Preds = append([]string(nil), o.Preds...)
		r.GapByPred = make([]PredGap, len(o.GapByPred))
		for i := range o.GapByPred {
			r.GapByPred[i].Name = o.GapByPred[i].Name
		}
	}
	r.Events += o.Events
	r.PCs += o.PCs
	r.Reported += o.Reported
	if r.ClassEvents == nil {
		r.ClassEvents = make(map[string]uint64, len(ClassLabels))
	}
	for k, v := range o.ClassEvents {
		r.ClassEvents[k] += v
	}
	if r.Classes == nil {
		r.Classes = make(map[string]*ClassStat, len(ClassLabels))
	}
	for k, ocs := range o.Classes {
		cs := r.Classes[k]
		if cs == nil {
			cs = &ClassStat{}
			r.Classes[k] = cs
		}
		cs.PCs += ocs.PCs
		cs.Events += ocs.Events
		cs.CeilW += ocs.CeilW
		cs.AccW += ocs.AccW
		cs.EntW += ocs.EntW
	}
	finalizeClasses(r)
	for i := range r.GapByPred {
		if i >= len(o.GapByPred) {
			break
		}
		g, og := &r.GapByPred[i], &o.GapByPred[i]
		g.Events += og.Events
		g.Hits += og.Hits
		g.CeilWeighted += og.CeilWeighted
		if g.Events > 0 {
			g.Gap = (g.CeilWeighted - float64(g.Hits)) / float64(g.Events)
		}
	}
	r.EntropyBits = append(r.EntropyBits, o.EntropyBits...)
	all := append(r.Hardest, o.Hardest...)
	all = append(all, r.Easiest...)
	all = append(all, o.Easiest...)
	seen := make(map[uint64]bool, len(all))
	uniq := all[:0]
	for _, p := range all {
		if !seen[p.PC] {
			seen[p.PC] = true
			uniq = append(uniq, p)
		}
	}
	rankInto(r, uniq, topN)
}
