// Package analysis runs workloads under the paper's methodology and
// collects every statistic the evaluation section reports: per-predictor
// per-category accuracy (Figs 3-7), predictor-set correlation (Fig 8),
// per-static-instruction improvement of context over stride prediction
// (Fig 9), unique-value characteristics (Fig 10), and the sensitivity
// sweeps (Tables 6-7, Fig 11).
//
// A single simulation pass per benchmark feeds all predictors and
// collectors simultaneously, so cross-predictor comparisons are exact:
// every predictor sees the identical event stream with immediate updates,
// unbounded per-PC tables and no aliasing — the paper's idealization.
package analysis

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
)

// Config parameterizes a suite run.
type Config struct {
	// Events caps the number of predicted instructions traced per
	// benchmark (0 = run each workload to completion).
	Events uint64
	// Scale is the input scale factor (default 1).
	Scale int
	// Opt is the compiler optimization level (default bench.RefOpt).
	Opt int
	// Benchmarks restricts the run (nil = all).
	Benchmarks []string
	// UniqueValueCap bounds per-instruction unique-value tracking
	// (default 65537, one past the paper's largest bucket).
	UniqueValueCap int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Opt == 0 {
		c.Opt = bench.RefOpt
	}
	if c.UniqueValueCap == 0 {
		c.UniqueValueCap = 65537
	}
	return c
}

// PredictorNames is the reporting order of the standard predictors.
var PredictorNames = []string{"l", "s2", "fcm1", "fcm2", "fcm3"}

// Set masks for the Figure 8 analysis: bit 0 = last value, bit 1 = stride,
// bit 2 = fcm. MaskLabels follows the paper's legend.
const NumMasks = 8

// MaskLabels names each subset in the paper's notation (np = none
// predicted correctly; lsf = all three correct).
var MaskLabels = [NumMasks]string{"np", "l", "s", "ls", "f", "lf", "sf", "lsf"}

// CatAccuracy tallies accuracy per instruction category plus overall.
type CatAccuracy struct {
	PerCat  [isa.NumCategories]core.Accuracy
	Overall core.Accuracy
}

// PCStat is the per-static-instruction record backing Figs 9 and 10.
type PCStat struct {
	Cat        isa.Category
	Count      uint64 // dynamic executions
	S2Correct  uint64
	FCMCorrect uint64
	Unique     int  // distinct values produced (capped)
	Overflow   bool // true when Unique hit the cap
}

// BenchResult is everything collected from one benchmark run.
type BenchResult struct {
	Name         string
	Opt          int
	Instructions uint64
	Events       uint64
	Halted       bool
	DynPerCat    [isa.NumCategories]uint64
	// Acc maps predictor name to its accuracy tallies.
	Acc map[string]*CatAccuracy
	// SetCounts[cat][mask] and SetAll[mask] back Figure 8.
	SetCounts [isa.NumCategories][NumMasks]uint64
	SetAll    [NumMasks]uint64
	// Static maps PC -> per-instruction record.
	Static map[uint64]*PCStat
}

// Accuracy returns the overall accuracy percentage for a predictor.
func (r *BenchResult) Accuracy(pred string) float64 {
	return r.Acc[pred].Overall.Percent()
}

// CatAcc returns the accuracy percentage for a predictor and category.
func (r *BenchResult) CatAcc(pred string, cat isa.Category) float64 {
	return r.Acc[pred].PerCat[cat].Percent()
}

// RunBenchmark executes one workload under the standard five predictors
// and all collectors.
func RunBenchmark(w *bench.Workload, cfg Config) (*BenchResult, error) {
	cfg = cfg.withDefaults()
	preds := make([]core.Predictor, len(PredictorNames))
	for i, f := range core.StandardFactories() {
		preds[i] = f.New()
	}
	res := &BenchResult{
		Name:   w.Name,
		Opt:    cfg.Opt,
		Acc:    make(map[string]*CatAccuracy, len(preds)),
		Static: make(map[uint64]*PCStat),
	}
	for _, name := range PredictorNames {
		res.Acc[name] = &CatAccuracy{}
	}

	// Predictor indexes for the set analysis: l=0, s2=1, fcm3=4.
	const li, si, fi = 0, 1, 4

	onValue := func(ev sim.ValueEvent) {
		var mask uint64
		for i, p := range preds {
			pred, ok := p.Predict(ev.PC)
			correct := ok && pred == ev.Value
			acc := res.Acc[PredictorNames[i]]
			acc.Overall.Observe(correct)
			acc.PerCat[ev.Cat].Observe(correct)
			if correct {
				switch i {
				case li:
					mask |= 1
				case si:
					mask |= 2
				case fi:
					mask |= 4
				}
			}
			p.Update(ev.PC, ev.Value)
		}
		res.SetCounts[ev.Cat][mask]++
		res.SetAll[mask]++

		st := res.Static[ev.PC]
		if st == nil {
			st = &PCStat{Cat: ev.Cat}
			res.Static[ev.PC] = st
		}
		st.Count++
		if mask&2 != 0 {
			st.S2Correct++
		}
		if mask&4 != 0 {
			st.FCMCorrect++
		}
	}

	// Unique-value tracking piggybacks on the same pass.
	uniq := make(map[uint64]map[uint64]struct{})
	trackUniq := func(ev sim.ValueEvent) {
		vs := uniq[ev.PC]
		if vs == nil {
			vs = make(map[uint64]struct{})
			uniq[ev.PC] = vs
		}
		if len(vs) < cfg.UniqueValueCap {
			vs[ev.Value] = struct{}{}
		}
	}

	simRes, err := w.Run(bench.RunConfig{
		Opt:       cfg.Opt,
		Scale:     cfg.Scale,
		MaxEvents: cfg.Events,
		OnValue: func(ev sim.ValueEvent) {
			onValue(ev)
			trackUniq(ev)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", w.Name, err)
	}
	res.Instructions = simRes.Instructions
	res.Events = simRes.Events
	res.Halted = simRes.Halted
	res.DynPerCat = simRes.DynPerCat
	for pc, vs := range uniq {
		st := res.Static[pc]
		st.Unique = len(vs)
		st.Overflow = len(vs) >= cfg.UniqueValueCap
	}
	return res, nil
}

// Suite is the collection of per-benchmark results for one configuration.
type Suite struct {
	Config  Config
	Results []*BenchResult
}

// RunSuite runs every configured benchmark once.
func RunSuite(cfg Config, progress func(name string)) (*Suite, error) {
	cfg = cfg.withDefaults()
	var workloads []*bench.Workload
	if len(cfg.Benchmarks) == 0 {
		workloads = bench.Registry()
	} else {
		for _, name := range cfg.Benchmarks {
			w := bench.ByName(name)
			if w == nil {
				return nil, fmt.Errorf("analysis: unknown benchmark %q", name)
			}
			workloads = append(workloads, w)
		}
	}
	suite := &Suite{Config: cfg}
	for _, w := range workloads {
		if progress != nil {
			progress(w.Name)
		}
		r, err := RunBenchmark(w, cfg)
		if err != nil {
			return nil, err
		}
		suite.Results = append(suite.Results, r)
	}
	return suite, nil
}

// MeanAccuracy returns the arithmetic mean accuracy of a predictor across
// benchmarks, matching the paper's averaging ("each benchmark effectively
// contributes the same number of total predictions").
func (s *Suite) MeanAccuracy(pred string) float64 {
	if len(s.Results) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range s.Results {
		sum += r.Accuracy(pred)
	}
	return sum / float64(len(s.Results))
}

// MeanSetFractions averages the Figure 8 subset fractions over benchmarks
// for one category (or overall when cat < 0).
func (s *Suite) MeanSetFractions(cat int) [NumMasks]float64 {
	var out [NumMasks]float64
	if len(s.Results) == 0 {
		return out
	}
	for _, r := range s.Results {
		var counts [NumMasks]uint64
		var total uint64
		if cat < 0 {
			counts = r.SetAll
		} else {
			counts = r.SetCounts[cat]
		}
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue
		}
		for m, c := range counts {
			out[m] += float64(c) / float64(total)
		}
	}
	for m := range out {
		out[m] /= float64(len(s.Results))
	}
	return out
}
