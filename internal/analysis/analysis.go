// Package analysis runs workloads under the paper's methodology and
// collects every statistic the evaluation section reports: per-predictor
// per-category accuracy (Figs 3-7), predictor-set correlation (Fig 8),
// per-static-instruction improvement of context over stride prediction
// (Fig 9), unique-value characteristics (Fig 10), and the sensitivity
// sweeps (Tables 6-7, Fig 11).
//
// A single simulation pass per benchmark feeds all predictors and
// collectors simultaneously, so cross-predictor comparisons are exact:
// every predictor sees the identical event stream with immediate updates,
// unbounded per-PC tables and no aliasing — the paper's idealization.
package analysis

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
)

// Config parameterizes a suite run.
type Config struct {
	// Events caps the number of predicted instructions traced per
	// benchmark (0 = run each workload to completion).
	Events uint64
	// Scale is the input scale factor (default 1).
	Scale int
	// Opt is the compiler optimization level (default bench.RefOpt).
	Opt int
	// Benchmarks restricts the run (nil = all).
	Benchmarks []string
	// UniqueValueCap bounds per-instruction unique-value tracking
	// (default 65537, one past the paper's largest bucket).
	UniqueValueCap int
}

// WithDefaults returns the config with zero values resolved, so that
// alternative suite drivers (internal/engine) normalize identically.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Opt == 0 {
		c.Opt = bench.RefOpt
	}
	if c.UniqueValueCap == 0 {
		c.UniqueValueCap = 65537
	}
	return c
}

// PredictorNames is the reporting order of the standard predictors.
var PredictorNames = []string{"l", "s2", "fcm1", "fcm2", "fcm3"}

// Set masks for the Figure 8 analysis: bit 0 = last value, bit 1 = stride,
// bit 2 = fcm. MaskLabels follows the paper's legend.
const NumMasks = 8

// MaskLabels names each subset in the paper's notation (np = none
// predicted correctly; lsf = all three correct).
var MaskLabels = [NumMasks]string{"np", "l", "s", "ls", "f", "lf", "sf", "lsf"}

// CatAccuracy tallies accuracy per instruction category plus overall.
type CatAccuracy struct {
	PerCat  [isa.NumCategories]core.Accuracy
	Overall core.Accuracy
}

// PCStat is the per-static-instruction record backing Figs 9 and 10.
type PCStat struct {
	Cat        isa.Category
	Count      uint64 // dynamic executions
	S2Correct  uint64
	FCMCorrect uint64
	Unique     int  // distinct values produced (capped)
	Overflow   bool // true when Unique hit the cap
}

// BenchResult is everything collected from one benchmark run.
type BenchResult struct {
	Name         string
	Opt          int
	Instructions uint64
	Events       uint64
	Halted       bool
	DynPerCat    [isa.NumCategories]uint64
	// Acc maps predictor name to its accuracy tallies.
	Acc map[string]*CatAccuracy
	// SetCounts[cat][mask] and SetAll[mask] back Figure 8.
	SetCounts [isa.NumCategories][NumMasks]uint64
	SetAll    [NumMasks]uint64
	// Static maps PC -> per-instruction record.
	Static map[uint64]*PCStat
}

// Tracked predictor indexes within PredictorNames for the Figure 8 set
// analysis (mask bit 0 = last value, bit 1 = stride, bit 2 = fcm3).
const (
	TrackedL = 0
	TrackedS = 1
	TrackedF = 4
)

// RecordEvent folds one event's cross-predictor statistics — the subset
// mask counts and the per-static-instruction record — into the result.
// Both the serial path and internal/engine's merger call this, so the
// collector semantics live in exactly one place.
func (r *BenchResult) RecordEvent(cat isa.Category, pc uint64, mask uint64) {
	r.SetCounts[cat][mask]++
	r.SetAll[mask]++

	st := r.Static[pc]
	if st == nil {
		st = &PCStat{Cat: cat}
		r.Static[pc] = st
	}
	st.Count++
	if mask&2 != 0 {
		st.S2Correct++
	}
	if mask&4 != 0 {
		st.FCMCorrect++
	}
}

// UniqueTracker accumulates per-PC unique-value sets up to a cap, the
// Figure 10 collector shared by the serial and concurrent paths.
type UniqueTracker struct {
	cap int
	m   map[uint64]map[uint64]struct{}
}

// NewUniqueTracker returns a tracker bounding each per-PC set at cap.
func NewUniqueTracker(cap int) *UniqueTracker {
	return &UniqueTracker{cap: cap, m: make(map[uint64]map[uint64]struct{})}
}

// Observe records one value produced at pc.
func (u *UniqueTracker) Observe(pc, value uint64) {
	vs := u.m[pc]
	if vs == nil {
		vs = make(map[uint64]struct{})
		u.m[pc] = vs
	}
	if len(vs) < u.cap {
		vs[value] = struct{}{}
	}
}

// FillStatic writes the unique-value counts into the result's static
// records (which must already exist from RecordEvent calls).
func (u *UniqueTracker) FillStatic(r *BenchResult) {
	for pc, vs := range u.m {
		st := r.Static[pc]
		st.Unique = len(vs)
		st.Overflow = len(vs) >= u.cap
	}
}

// Accuracy returns the overall accuracy percentage for a predictor.
func (r *BenchResult) Accuracy(pred string) float64 {
	return r.Acc[pred].Overall.Percent()
}

// CatAcc returns the accuracy percentage for a predictor and category.
func (r *BenchResult) CatAcc(pred string, cat isa.Category) float64 {
	return r.Acc[pred].PerCat[cat].Percent()
}

// NewBenchResult returns an empty result with the accuracy and static
// maps initialized for the standard predictor set.
func NewBenchResult(name string, opt int) *BenchResult {
	res := &BenchResult{
		Name:   name,
		Opt:    opt,
		Acc:    make(map[string]*CatAccuracy, len(PredictorNames)),
		Static: make(map[uint64]*PCStat),
	}
	for _, n := range PredictorNames {
		res.Acc[n] = &CatAccuracy{}
	}
	return res
}

// RunBenchmark executes one workload under the standard five predictors
// and all collectors.
func RunBenchmark(w *bench.Workload, cfg Config) (*BenchResult, error) {
	cfg = cfg.WithDefaults()
	preds := make([]core.Predictor, len(PredictorNames))
	for i, f := range core.StandardFactories() {
		preds[i] = f.New()
	}
	res := NewBenchResult(w.Name, cfg.Opt)

	// Unique-value tracking piggybacks on the same pass.
	uniq := NewUniqueTracker(cfg.UniqueValueCap)

	simRes, err := w.Run(bench.RunConfig{
		Opt:       cfg.Opt,
		Scale:     cfg.Scale,
		MaxEvents: cfg.Events,
		OnValue: func(ev sim.ValueEvent) {
			var mask uint64
			for i, p := range preds {
				pred, ok := p.Predict(ev.PC)
				correct := ok && pred == ev.Value
				acc := res.Acc[PredictorNames[i]]
				acc.Overall.Observe(correct)
				acc.PerCat[ev.Cat].Observe(correct)
				if correct {
					switch i {
					case TrackedL:
						mask |= 1
					case TrackedS:
						mask |= 2
					case TrackedF:
						mask |= 4
					}
				}
				p.Update(ev.PC, ev.Value)
			}
			res.RecordEvent(ev.Cat, ev.PC, mask)
			uniq.Observe(ev.PC, ev.Value)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", w.Name, err)
	}
	res.Instructions = simRes.Instructions
	res.Events = simRes.Events
	res.Halted = simRes.Halted
	res.DynPerCat = simRes.DynPerCat
	uniq.FillStatic(res)
	return res, nil
}

// Suite is the collection of per-benchmark results for one configuration.
type Suite struct {
	Config  Config
	Results []*BenchResult
}

// Workloads resolves the configured benchmark set in reporting order
// (the registry order when cfg.Benchmarks is nil).
func Workloads(cfg Config) ([]*bench.Workload, error) {
	if len(cfg.Benchmarks) == 0 {
		return bench.Registry(), nil
	}
	var workloads []*bench.Workload
	for _, name := range cfg.Benchmarks {
		w := bench.ByName(name)
		if w == nil {
			return nil, fmt.Errorf("analysis: unknown benchmark %q", name)
		}
		workloads = append(workloads, w)
	}
	return workloads, nil
}

// RunSuite runs every configured benchmark once.
func RunSuite(cfg Config, progress func(name string)) (*Suite, error) {
	cfg = cfg.WithDefaults()
	workloads, err := Workloads(cfg)
	if err != nil {
		return nil, err
	}
	suite := &Suite{Config: cfg}
	for _, w := range workloads {
		if progress != nil {
			progress(w.Name)
		}
		r, err := RunBenchmark(w, cfg)
		if err != nil {
			return nil, err
		}
		suite.Results = append(suite.Results, r)
	}
	return suite, nil
}

// MeanAccuracy returns the arithmetic mean accuracy of a predictor across
// benchmarks, matching the paper's averaging ("each benchmark effectively
// contributes the same number of total predictions").
func (s *Suite) MeanAccuracy(pred string) float64 {
	if len(s.Results) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range s.Results {
		sum += r.Accuracy(pred)
	}
	return sum / float64(len(s.Results))
}

// MeanSetFractions averages the Figure 8 subset fractions over benchmarks
// for one category (or overall when cat < 0).
func (s *Suite) MeanSetFractions(cat int) [NumMasks]float64 {
	var out [NumMasks]float64
	if len(s.Results) == 0 {
		return out
	}
	for _, r := range s.Results {
		var counts [NumMasks]uint64
		var total uint64
		if cat < 0 {
			counts = r.SetAll
		} else {
			counts = r.SetCounts[cat]
		}
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue
		}
		for m, c := range counts {
			out[m] += float64(c) / float64(total)
		}
	}
	for m := range out {
		out[m] /= float64(len(s.Results))
	}
	return out
}
