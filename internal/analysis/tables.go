package analysis

import (
	"fmt"
	"io"
	"strings"
)

// Table renders aligned ASCII tables for experiment reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}
