package analysis

import "sort"

// This file derives the paper's Figure 9 and Figure 10 series from the
// per-static-instruction records.

// ImprovementPoint is one point of the Figure 9 cumulative curve.
type ImprovementPoint struct {
	PctStatic      float64 // x: % of improving static instructions included
	PctImprovement float64 // y: % of total FCM-over-stride improvement covered
}

// ImprovementCurve computes, for the given category (or all when cat < 0),
// the cumulative share of the total FCM3-over-S2 improvement contributed
// by static instructions sorted by decreasing improvement — the paper's
// Figure 9. Points are emitted at every 5% of static instructions.
func ImprovementCurve(results []*BenchResult, cat int) []ImprovementPoint {
	var gains []int64
	var total int64
	for _, r := range results {
		for _, st := range r.Static {
			if cat >= 0 && int(st.Cat) != cat {
				continue
			}
			gain := int64(st.FCMCorrect) - int64(st.S2Correct)
			if gain > 0 {
				gains = append(gains, gain)
				total += gain
			}
		}
	}
	if total == 0 || len(gains) == 0 {
		return nil
	}
	sort.Slice(gains, func(i, j int) bool { return gains[i] > gains[j] })
	points := make([]ImprovementPoint, 0, 21)
	var cum int64
	next := 0.05
	points = append(points, ImprovementPoint{0, 0})
	for i, g := range gains {
		cum += g
		frac := float64(i+1) / float64(len(gains))
		for frac >= next-1e-9 && next <= 1.0+1e-9 {
			points = append(points, ImprovementPoint{
				PctStatic:      next * 100,
				PctImprovement: 100 * float64(cum) / float64(total),
			})
			next += 0.05
		}
	}
	return points
}

// ImprovementShare returns the fraction of static instructions (among
// improving ones) needed to cover the given share of total improvement —
// the paper's headline "about 20% of static instructions account for 97%
// of the improvement".
func ImprovementShare(results []*BenchResult, coverage float64) (pctStatic, pctImprovement float64) {
	pts := ImprovementCurve(results, -1)
	for _, p := range pts {
		if p.PctImprovement >= coverage*100 {
			return p.PctStatic, p.PctImprovement
		}
	}
	if n := len(pts); n > 0 {
		return pts[n-1].PctStatic, pts[n-1].PctImprovement
	}
	return 0, 0
}

// ValueBuckets is the Figure 10 bucket ladder of unique-value counts.
var ValueBuckets = []int{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

// ValueHistogram is one Figure 10 column: the share of static (or
// dynamic) instructions whose producing instruction generated a number of
// unique values falling in each bucket; Over is the ">65536" share.
type ValueHistogram struct {
	Buckets []float64 // parallel to ValueBuckets
	Over    float64
}

// UniqueValueHistogram computes Figure 10 for a category (all when
// cat < 0). When dynamic is true instructions are weighted by execution
// count; otherwise each static instruction counts once.
func UniqueValueHistogram(results []*BenchResult, cat int, dynamic bool) ValueHistogram {
	h := ValueHistogram{Buckets: make([]float64, len(ValueBuckets))}
	var total float64
	for _, r := range results {
		for _, st := range r.Static {
			if cat >= 0 && int(st.Cat) != cat {
				continue
			}
			w := 1.0
			if dynamic {
				w = float64(st.Count)
			}
			total += w
			if st.Overflow {
				h.Over += w
				continue
			}
			placed := false
			for i, b := range ValueBuckets {
				if st.Unique <= b {
					h.Buckets[i] += w
					placed = true
					break
				}
			}
			if !placed {
				h.Over += w
			}
		}
	}
	if total > 0 {
		for i := range h.Buckets {
			h.Buckets[i] = 100 * h.Buckets[i] / total
		}
		h.Over = 100 * h.Over / total
	}
	return h
}

// CumulativeAtMost returns the percentage of instructions producing at
// most the bucket value (inclusive), for assertions like "over 50% of
// static instructions generate only one value".
func (h ValueHistogram) CumulativeAtMost(bucket int) float64 {
	sum := 0.0
	for i, b := range ValueBuckets {
		if b > bucket {
			break
		}
		sum += h.Buckets[i]
	}
	return sum
}

// StaticCounts tallies executed static instructions per category for one
// benchmark (the paper's Table 4).
func StaticCounts(r *BenchResult) [8]int {
	var out [8]int
	for _, st := range r.Static {
		out[st.Cat]++
	}
	return out
}
