package analysis

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// smallSuite runs two benchmarks with a tight event budget; shared across
// tests via sync-once-style caching.
var cachedSuite *Suite

func smallSuite(t *testing.T) *Suite {
	t.Helper()
	if cachedSuite != nil {
		return cachedSuite
	}
	s, err := RunSuite(Config{
		Events:     60_000,
		Benchmarks: []string{"compress", "m88ksim"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cachedSuite = s
	return s
}

func TestRunBenchmarkCollectsEverything(t *testing.T) {
	s := smallSuite(t)
	if len(s.Results) != 2 {
		t.Fatalf("got %d results", len(s.Results))
	}
	for _, r := range s.Results {
		if r.Events == 0 || r.Instructions == 0 {
			t.Fatalf("%s: empty run", r.Name)
		}
		for _, p := range PredictorNames {
			if r.Acc[p] == nil || r.Acc[p].Overall.Total != r.Events {
				t.Fatalf("%s/%s: accuracy totals do not match events", r.Name, p)
			}
		}
		var setSum uint64
		for _, c := range r.SetAll {
			setSum += c
		}
		if setSum != r.Events {
			t.Fatalf("%s: set counts sum %d != events %d", r.Name, setSum, r.Events)
		}
		var dynSum, staticDyn uint64
		for _, c := range r.DynPerCat {
			dynSum += c
		}
		if dynSum != r.Events {
			t.Fatalf("%s: per-category dynamic sum mismatch", r.Name)
		}
		for _, st := range r.Static {
			staticDyn += st.Count
			if st.Unique == 0 {
				t.Fatalf("%s: static record with zero unique values", r.Name)
			}
			if st.FCMCorrect > st.Count || st.S2Correct > st.Count {
				t.Fatalf("%s: correct counts exceed executions", r.Name)
			}
		}
		if staticDyn != r.Events {
			t.Fatalf("%s: static records cover %d of %d events", r.Name, staticDyn, r.Events)
		}
	}
}

func TestAccuracyOrderingHolds(t *testing.T) {
	// The paper's headline ordering: mean L < mean S2 < mean FCM3, and
	// FCM accuracy non-decreasing in order.
	s := smallSuite(t)
	l, s2 := s.MeanAccuracy("l"), s.MeanAccuracy("s2")
	f1, f2, f3 := s.MeanAccuracy("fcm1"), s.MeanAccuracy("fcm2"), s.MeanAccuracy("fcm3")
	if !(l < s2) {
		t.Errorf("want l < s2, got %.1f vs %.1f", l, s2)
	}
	if !(f1 <= f2 && f2 <= f3) {
		t.Errorf("fcm order not monotone: %.1f %.1f %.1f", f1, f2, f3)
	}
	if !(s2 < f3+30) { // sanity bound, not a strict claim on tiny runs
		t.Errorf("implausible accuracies: s2=%.1f fcm3=%.1f", s2, f3)
	}
}

func TestMeanSetFractionsSumToOne(t *testing.T) {
	s := smallSuite(t)
	fr := s.MeanSetFractions(-1)
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %f", sum)
	}
	frCat := s.MeanSetFractions(int(isa.CatAddSub))
	sum = 0
	for _, f := range frCat {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("AddSub fractions sum to %f", sum)
	}
}

func TestImprovementCurveProperties(t *testing.T) {
	s := smallSuite(t)
	pts := ImprovementCurve(s.Results, -1)
	if len(pts) == 0 {
		t.Fatal("no improvement curve (fcm should beat stride somewhere)")
	}
	last := ImprovementPoint{}
	for _, p := range pts {
		if p.PctStatic < last.PctStatic || p.PctImprovement < last.PctImprovement-1e-9 {
			t.Fatalf("curve not monotone at %+v after %+v", p, last)
		}
		last = p
	}
	if last.PctImprovement < 99.9 {
		t.Fatalf("curve should reach 100%%, got %.2f", last.PctImprovement)
	}
	// The curve must be concave-ish: covering half the instructions
	// covers well over half the improvement (few statics dominate).
	for _, p := range pts {
		if p.PctStatic >= 49.9 && p.PctStatic <= 50.1 && p.PctImprovement < 50 {
			t.Fatalf("improvement not concentrated: %+v", p)
		}
	}
}

func TestUniqueValueHistogram(t *testing.T) {
	s := smallSuite(t)
	for _, dynamic := range []bool{false, true} {
		h := UniqueValueHistogram(s.Results, -1, dynamic)
		sum := h.Over
		for _, b := range h.Buckets {
			sum += b
		}
		if sum < 99.9 || sum > 100.1 {
			t.Fatalf("histogram (dynamic=%v) sums to %.2f", dynamic, sum)
		}
	}
	static := UniqueValueHistogram(s.Results, -1, false)
	// Paper: a large share of static instructions generate one value.
	if static.CumulativeAtMost(1) < 10 {
		t.Errorf("only %.1f%% of statics produce one value; expected a large share",
			static.CumulativeAtMost(1))
	}
	if static.CumulativeAtMost(65536)+static.Over < 99.9 {
		t.Error("histogram lost mass")
	}
}

func TestStaticCounts(t *testing.T) {
	s := smallSuite(t)
	counts := StaticCounts(s.Results[0])
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(s.Results[0].Static) {
		t.Fatalf("per-category static counts (%d) != static map size (%d)",
			total, len(s.Results[0].Static))
	}
}

func TestRunSuiteUnknownBenchmark(t *testing.T) {
	_, err := RunSuite(Config{Benchmarks: []string{"nope"}}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("err = %v", err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "a", "bb", "ccc")
	tab.AddRow("x", 1, 2.5)
	tab.AddRow("longer", "v", "w")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "a", "bb", "ccc", "longer", "2.5", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
