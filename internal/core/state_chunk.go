package core

// Chunk-granular state saving, the core half of delta checkpoints. A
// predictor's canonical SaveState stream is split at per-PC record
// boundaries into content-defined chunks: PC p opens a new chunk exactly
// when the upper half of mix64(p) hits the anchor mask (plus the first
// record, which always opens chunk 0). Anchors depend only on the PC value, so a stable PC
// membership yields a stable chunk partition across saves — the property
// that lets an unchanged chunk be skipped (or deduplicated by content
// hash) between checkpoints. Concatenating the header and every chunk's
// bytes reproduces the plain SaveState output byte for byte, so the
// existing LoadState path restores chunked saves unchanged.

import "io"

// chunkAnchorMask sets the expected chunk size: a PC opens a chunk with
// probability 1/(mask+1), so chunks average ~64 records — big enough to
// amortize per-chunk hashing, small enough that a localized working set
// dirties few of them.
const chunkAnchorMask = 63

// chunkAnchor reports whether pc opens a new chunk. mix64 decorrelates
// the decision from PC locality, so dense PC ranges still split evenly.
// The decision reads the UPPER half of the hash: the serving tier shards
// PCs by mix64(pc) mod the shard count, which consumes the low bits —
// anchoring on those same bits would funnel every anchor onto shard 0
// for power-of-two shard counts, leaving the other shards one giant
// chunk each.
func chunkAnchor(pc uint64) bool { return (mix64(pc)>>32)&chunkAnchorMask == 0 }

// ChunkSaver receives one predictor's state as a header plus a sequence
// of chunks. The callbacks must consume their byte slices synchronously:
// the buffers are reused by the driver.
type ChunkSaver struct {
	// Dirty reports whether pc's state may have changed since the parent
	// save. nil means everything is dirty.
	Dirty func(pc uint64) bool
	// CanSkip permits omitting the bytes of an all-clean chunk (Emit is
	// called with nil data). Skipping is only sound when the PC
	// membership is unchanged since the parent save: membership changes
	// move record boundaries and cross-chunk PC deltas, so the caller
	// must leave CanSkip false after any PC was inserted.
	CanSkip bool
	// Header receives the stream's header bytes (everything before the
	// first per-PC record), always present even when every chunk skips.
	Header func(hdr []byte) error
	// Emit receives one chunk: the PC of its first record, the record
	// count, and the encoded bytes. data == nil means the chunk was
	// skipped as clean — its bytes equal the parent save's chunk at the
	// same index.
	Emit func(firstPC uint64, records int, data []byte) error
}

// ChunkedStateful is implemented by predictors whose SaveState stream can
// be produced chunk-wise. SaveStateChunks must emit exactly the bytes of
// SaveState, split as header + chunks; predictors without it (cross-PC or
// composite state) are saved whole and treated as a single opaque chunk
// one layer up.
type ChunkedStateful interface {
	Stateful
	SaveStateChunks(cs *ChunkSaver) error
}

// cachedSortedHandles returns handles ordered by ascending PC, reusing
// the cached order when it is still valid. Tables are append-only between
// resets, so a cached permutation of equal length that is still strictly
// ascending over the current PC slab is exactly the sorted order; the
// O(n) validation pass makes the cache safe even across Reset/LoadState
// (which change membership and invalidate it by failing the check).
func cachedSortedHandles(cache *[]int32, pcs []uint64) []int32 {
	hs := *cache
	if len(hs) == len(pcs) {
		ok := true
		var prev uint64
		for i, h := range hs {
			pc := pcs[h]
			if i > 0 && pc <= prev {
				ok = false
				break
			}
			prev = pc
		}
		if ok {
			return hs
		}
	}
	hs = sortedHandles(pcs)
	*cache = hs
	return hs
}

// chunkedSave drives one predictor's chunk-granular save: hdr's bytes go
// to cs.Header, then records are encoded in ascending-PC handle order
// with delta-encoded PCs (the canonical layout), split at anchor PCs.
// rec encodes one record's fields after the PC delta. The previous-PC
// cursor advances across skipped chunks, which is what makes a skipped
// chunk's bytes identical to the parent's: with stable membership the
// first record of the next encoded chunk sees the same predecessor PC.
func chunkedSave(cs *ChunkSaver, handles []int32, pcAt func(int32) uint64, hdr *stateEncoder, rec func(e *stateEncoder, h int32)) error {
	if err := cs.Header(hdr.buf); err != nil {
		return err
	}
	var e stateEncoder
	var prev uint64
	i := 0
	for i < len(handles) {
		j := i + 1
		for j < len(handles) && !chunkAnchor(pcAt(handles[j])) {
			j++
		}
		firstPC := pcAt(handles[i])
		dirty := !cs.CanSkip || cs.Dirty == nil
		if !dirty {
			for k := i; k < j; k++ {
				if cs.Dirty(pcAt(handles[k])) {
					dirty = true
					break
				}
			}
		}
		if !dirty {
			if err := cs.Emit(firstPC, j-i, nil); err != nil {
				return err
			}
			prev = pcAt(handles[j-1])
			i = j
			continue
		}
		e.buf = e.buf[:0]
		for k := i; k < j; k++ {
			h := handles[k]
			pc := pcAt(h)
			e.uvarint(pc - prev)
			rec(&e, h)
			prev = pc
		}
		if err := cs.Emit(firstPC, j-i, e.buf); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// SaveStateChunks implements ChunkedStateful.
func (p *LastValue) SaveStateChunks(cs *ChunkSaver) error {
	var hdr stateEncoder
	hdr.uvarint(uint64(len(p.vals)))
	hs := cachedSortedHandles(&p.saveOrder, p.pcs)
	return chunkedSave(cs, hs, func(h int32) uint64 { return p.pcs[h] }, &hdr,
		func(e *stateEncoder, h int32) {
			e.uvarint(p.vals[h])
		})
}

// SaveStateChunks implements ChunkedStateful.
func (p *LastValueCounter) SaveStateChunks(cs *ChunkSaver) error {
	var hdr stateEncoder
	hdr.uvarint(uint64(len(p.entries)))
	hs := cachedSortedHandles(&p.saveOrder, p.pcs)
	return chunkedSave(cs, hs, func(h int32) uint64 { return p.pcs[h] }, &hdr,
		func(e *stateEncoder, h int32) {
			ent := &p.entries[h]
			e.uvarint(ent.value)
			e.uvarint(uint64(ent.count))
		})
}

// SaveStateChunks implements ChunkedStateful.
func (p *LastValueConsecutive) SaveStateChunks(cs *ChunkSaver) error {
	var hdr stateEncoder
	hdr.uvarint(uint64(len(p.entries)))
	hs := cachedSortedHandles(&p.saveOrder, p.pcs)
	return chunkedSave(cs, hs, func(h int32) uint64 { return p.pcs[h] }, &hdr,
		func(e *stateEncoder, h int32) {
			ent := &p.entries[h]
			e.uvarint(ent.value)
			e.uvarint(ent.candidate)
			e.uvarint(uint64(ent.runLength))
		})
}

// SaveStateChunks implements ChunkedStateful.
func (p *StrideSimple) SaveStateChunks(cs *ChunkSaver) error {
	var hdr stateEncoder
	hdr.uvarint(uint64(len(p.entries)))
	hs := cachedSortedHandles(&p.saveOrder, p.pcs)
	return chunkedSave(cs, hs, func(h int32) uint64 { return p.pcs[h] }, &hdr,
		func(e *stateEncoder, h int32) {
			ent := &p.entries[h]
			e.uvarint(ent.last)
			e.uvarint(ent.stride)
			e.uvarint(uint64(ent.seen))
		})
}

// SaveStateChunks implements ChunkedStateful.
func (p *Stride2Delta) SaveStateChunks(cs *ChunkSaver) error {
	var hdr stateEncoder
	hdr.uvarint(uint64(len(p.entries)))
	hs := cachedSortedHandles(&p.saveOrder, p.pcs)
	return chunkedSave(cs, hs, func(h int32) uint64 { return p.pcs[h] }, &hdr,
		func(e *stateEncoder, h int32) {
			ent := &p.entries[h]
			e.uvarint(ent.last)
			e.uvarint(ent.s1)
			e.uvarint(ent.s2)
			e.uvarint(uint64(ent.s1Count))
			e.uvarint(uint64(ent.seen))
		})
}

// SaveStateChunks implements ChunkedStateful.
func (p *StrideCounter) SaveStateChunks(cs *ChunkSaver) error {
	var hdr stateEncoder
	hdr.uvarint(uint64(len(p.entries)))
	hs := cachedSortedHandles(&p.saveOrder, p.pcs)
	return chunkedSave(cs, hs, func(h int32) uint64 { return p.pcs[h] }, &hdr,
		func(e *stateEncoder, h int32) {
			ent := &p.entries[h]
			e.uvarint(ent.last)
			e.uvarint(ent.stride)
			e.uvarint(uint64(ent.count))
			e.uvarint(uint64(ent.seen))
		})
}

// WriteChunks is a convenience adapter: it drives SaveStateChunks with no
// skipping and concatenates header and chunks into w, which must equal
// SaveState's output byte for byte (pinned by state_chunk_test.go).
func WriteChunks(p ChunkedStateful, w io.Writer) error {
	emit := func(b []byte) error {
		_, err := w.Write(b)
		return err
	}
	return p.SaveStateChunks(&ChunkSaver{
		Header: emit,
		Emit:   func(_ uint64, _ int, data []byte) error { return emit(data) },
	})
}
