package core

import (
	"fmt"
	"sort"
	"strings"
)

// NamedFactory is a Factory plus the metadata harnesses need to expose a
// predictor by name: a one-line description and whether its state is
// partitioned purely by PC.
type NamedFactory struct {
	Factory
	// Desc is a one-line description for -help style listings.
	Desc string
	// PCLocal reports that the predictor keeps no state shared or aliased
	// across PCs: its behavior on a PC's value subsequence is independent
	// of every other PC's events. PC-local predictors can be sharded by
	// hash(pc) with bit-identical accuracy; non-PC-local ones (bounded,
	// aliasing tables) cannot.
	PCLocal bool
}

// registry is the single catalog of predictor spellings shared by
// cmd/vptrace, cmd/vpserve and the load generator. Order is the listing
// order used in help output.
var registry = []NamedFactory{
	{Factory{"l", func() Predictor { return NewLastValue() }}, "last value, always update", true},
	{Factory{"lc", func() Predictor { return NewLastValueCounter(3, 1) }}, "last value, 2-bit counter hysteresis", true},
	{Factory{"ln", func() Predictor { return NewLastValueConsecutive(2) }}, "last value, adopt after 2 consecutive", true},
	{Factory{"s", func() Predictor { return NewStrideSimple() }}, "stride, always update", true},
	{Factory{"s2", func() Predictor { return NewStride2Delta() }}, "2-delta stride", true},
	{Factory{"sc", func() Predictor { return NewStrideCounter(3, 1) }}, "stride, 2-bit counter hysteresis", true},
	{Factory{"fcm1", func() Predictor { return NewFCM(1) }}, "order-1 FCM, blended", true},
	{Factory{"fcm2", func() Predictor { return NewFCM(2) }}, "order-2 FCM, blended", true},
	{Factory{"fcm3", func() Predictor { return NewFCM(3) }}, "order-3 FCM, blended", true},
	{Factory{"fcm3nb", func() Predictor { return NewFCMNoBlend(3) }}, "order-3 FCM, no blending", true},
	{Factory{"hyb", func() Predictor { return NewStrideFCMHybrid(3) }}, "s2 + fcm3 chooser hybrid", true},
	{Factory{"bfcm3", func() Predictor { return NewBoundedFCM(3, 12, 18) }}, "bounded hashed FCM (aliases across PCs)", false},
}

// KnownFactories returns the full predictor catalog in listing order. The
// returned slice is a copy; entries are safe to retain.
func KnownFactories() []NamedFactory {
	out := make([]NamedFactory, len(registry))
	copy(out, registry)
	return out
}

// KnownNames returns every registered predictor name, sorted.
func KnownNames() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	sort.Strings(names)
	return names
}

// FactoryByName looks up one predictor by its registry name.
func FactoryByName(name string) (NamedFactory, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return NamedFactory{}, false
}

// ParseFactories resolves a comma-separated predictor list ("l,s2,fcm3")
// against the registry, preserving order. Whitespace around names is
// ignored; empty elements and duplicates are errors.
func ParseFactories(spec string) ([]NamedFactory, error) {
	var out []NamedFactory
	seen := make(map[string]bool)
	for _, raw := range strings.Split(spec, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			return nil, fmt.Errorf("core: empty predictor name in %q", spec)
		}
		if seen[name] {
			return nil, fmt.Errorf("core: duplicate predictor %q", name)
		}
		seen[name] = true
		e, ok := FactoryByName(name)
		if !ok {
			return nil, fmt.Errorf("core: unknown predictor %q (known: %s)",
				name, strings.Join(KnownNames(), ", "))
		}
		out = append(out, e)
	}
	return out, nil
}
