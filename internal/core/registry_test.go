package core

import (
	"strings"
	"testing"
)

func TestRegistryNamesUniqueAndConstructible(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range KnownFactories() {
		if seen[e.Name] {
			t.Fatalf("duplicate registry name %q", e.Name)
		}
		seen[e.Name] = true
		if p := e.New(); p == nil {
			t.Fatalf("%s: nil predictor", e.Name)
		}
		if e.Desc == "" {
			t.Errorf("%s: empty description", e.Name)
		}
	}
}

func TestRegistryCoversStandardFactories(t *testing.T) {
	for _, f := range StandardFactories() {
		e, ok := FactoryByName(f.Name)
		if !ok {
			t.Fatalf("standard factory %q missing from registry", f.Name)
		}
		if !e.PCLocal {
			t.Errorf("standard factory %q must be PC-local", f.Name)
		}
	}
}

func TestParseFactories(t *testing.T) {
	fs, err := ParseFactories(" l , s2,fcm3 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 || fs[0].Name != "l" || fs[1].Name != "s2" || fs[2].Name != "fcm3" {
		t.Fatalf("parsed %+v", fs)
	}
	for _, bad := range []string{"", "l,,s2", "l,l", "nope"} {
		if _, err := ParseFactories(bad); err == nil {
			t.Errorf("ParseFactories(%q): expected error", bad)
		}
	}
	if _, err := ParseFactories("zzz"); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown-name error should list known names, got %v", err)
	}
}

func TestRegistryFreshInstances(t *testing.T) {
	// Two instances from the same factory must not share tables.
	e, _ := FactoryByName("l")
	a, b := e.New(), e.New()
	a.Update(1, 42)
	if _, ok := b.Predict(1); ok {
		t.Fatal("factory instances share state")
	}
}
