package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"testing"
)

// This file keeps a verbatim copy of the original map-backed FCM (string
// context keys, per-order maps, pointer entries) as a behavioral
// reference, and replays deterministic traces through it and the flat
// slab-backed FCM in lockstep. The two must agree on every individual
// prediction, on the hit tallies, and — byte for byte — on SaveState
// output, which is what lets the flat rewrite claim the snapshot wire
// format never changed.

// refFCM is the reference (pre-flat) implementation.
type refFCM struct {
	order int
	blend bool
	table map[uint64]*refFCMPC
}

type refFCMPC struct {
	hist    [MaxFCMOrder]uint64
	n       int
	ctxs    []map[string]*refFCMCtx
	updates uint64
}

type refFCMCtx struct {
	vals []refFCMVal
	best int
}

type refFCMVal struct {
	value uint64
	count uint32
}

func newRefFCM(order int, blend bool) *refFCM {
	if order < 0 {
		order = 0
	}
	if order > MaxFCMOrder {
		order = MaxFCMOrder
	}
	return &refFCM{order: order, blend: blend, table: make(map[uint64]*refFCMPC)}
}

func (s *refFCMPC) ctxKey(o int) string {
	if o == 0 {
		return ""
	}
	var buf [8 * MaxFCMOrder]byte
	for i := 0; i < o; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], s.hist[s.n-o+i])
	}
	return string(buf[: 8*o : 8*o])
}

func (p *refFCM) Predict(pc uint64) (uint64, bool) {
	s, ok := p.table[pc]
	if !ok {
		return 0, false
	}
	v, _, ok := p.lookup(s)
	return v, ok
}

func (p *refFCM) lookup(s *refFCMPC) (value uint64, matched int, ok bool) {
	lowest := p.order
	if p.blend {
		lowest = 0
	}
	for o := p.order; o >= lowest; o-- {
		if o > s.n {
			continue
		}
		t := s.ctxs[o]
		if t == nil {
			continue
		}
		if c, hit := t[s.ctxKey(o)]; hit && len(c.vals) > 0 {
			return c.vals[c.best].value, o, true
		}
	}
	return 0, -1, false
}

func (p *refFCM) Update(pc uint64, value uint64) {
	s, ok := p.table[pc]
	if !ok {
		s = &refFCMPC{ctxs: make([]map[string]*refFCMCtx, p.order+1)}
		p.table[pc] = s
	}
	_, matched, hit := p.lookup(s)
	low := 0
	if hit && p.blend {
		low = matched
	}
	if !p.blend {
		low = p.order
	}
	for o := p.order; o >= low; o-- {
		if o > s.n {
			continue
		}
		t := s.ctxs[o]
		if t == nil {
			t = make(map[string]*refFCMCtx)
			s.ctxs[o] = t
		}
		key := s.ctxKey(o)
		c := t[key]
		if c == nil {
			c = &refFCMCtx{}
			t[key] = c
		}
		c.add(value)
	}
	s.push(value, p.order)
	s.updates++
}

func (c *refFCMCtx) add(v uint64) {
	for i := range c.vals {
		if c.vals[i].value == v {
			c.vals[i].count++
			if c.vals[i].count >= c.vals[c.best].count {
				c.best = i
			}
			return
		}
	}
	c.vals = append(c.vals, refFCMVal{value: v, count: 1})
	if len(c.vals) == 1 || c.vals[c.best].count <= 1 {
		c.best = len(c.vals) - 1
	}
}

func (s *refFCMPC) push(v uint64, order int) {
	if order == 0 {
		return
	}
	if s.n < order {
		s.hist[s.n] = v
		s.n++
		return
	}
	copy(s.hist[:order-1], s.hist[1:order])
	s.hist[order-1] = v
}

func (p *refFCM) TableEntries() (static, total int) {
	static = len(p.table)
	for _, s := range p.table {
		for _, t := range s.ctxs {
			total += len(t)
		}
	}
	return static, total
}

func (p *refFCM) PCEntries() map[uint64]int {
	out := make(map[uint64]int, len(p.table))
	for pc, s := range p.table {
		n := 0
		for _, t := range s.ctxs {
			n += len(t)
		}
		out[pc] = n
	}
	return out
}

func (p *refFCM) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(p.order))
	blend := uint64(0)
	if p.blend {
		blend = 1
	}
	e.uvarint(blend)
	e.uvarint(uint64(len(p.table)))
	pcs := make([]uint64, 0, len(p.table))
	for pc := range p.table {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	var prev uint64
	for _, pc := range pcs {
		s := p.table[pc]
		e.uvarint(pc - prev)
		prev = pc
		e.uvarint(uint64(s.n))
		for i := 0; i < s.n; i++ {
			e.uvarint(s.hist[i])
		}
		e.uvarint(s.updates)
		for o := 0; o <= p.order; o++ {
			t := s.ctxs[o]
			e.uvarint(uint64(len(t)))
			keys := make([]string, 0, len(t))
			for k := range t {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, key := range keys {
				e.bytes([]byte(key))
				c := t[key]
				e.uvarint(uint64(len(c.vals)))
				e.uvarint(uint64(c.best))
				for _, v := range c.vals {
					e.uvarint(v.value)
					e.uvarint(uint64(v.count))
				}
			}
		}
	}
	return e.flushTo(w)
}

// parityStream is a deterministic (pc, value) trace with strides,
// constants, short repeats and value noise wide enough to collide rolling
// signatures' low bits, over enough PCs to force table growth.
func parityStream(n int) []struct{ PC, Value uint64 } {
	return trainStream(n)
}

func refSaveBytes(t *testing.T, p *refFCM) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.SaveState(&buf); err != nil {
		t.Fatalf("reference SaveState: %v", err)
	}
	return buf.Bytes()
}

// TestFCMFlatMatchesMapReference locksteps the flat FCM against the
// map-backed reference: every prediction, the hit counts, the occupancy
// reports and every SaveState byte must agree, across orders (including
// the paper's high-order sweep) and both blending modes.
func TestFCMFlatMatchesMapReference(t *testing.T) {
	configs := []struct {
		order int
		blend bool
	}{
		{0, true}, {1, true}, {2, true}, {3, true}, {4, true}, {8, true},
		{3, false}, {8, false},
	}
	evs := parityStream(8000)
	for _, cfg := range configs {
		name := fmt.Sprintf("order%d_blend%v", cfg.order, cfg.blend)
		t.Run(name, func(t *testing.T) {
			ref := newRefFCM(cfg.order, cfg.blend)
			flat := NewFCM(cfg.order)
			if !cfg.blend {
				flat = NewFCMNoBlend(cfg.order)
			}
			var refHits, flatHits uint64
			for i, ev := range evs {
				rv, rok := ref.Predict(ev.PC)
				fv, fok := flat.Predict(ev.PC)
				if rok != fok || rv != fv {
					t.Fatalf("event %d pc=%#x: reference (%d,%v) vs flat (%d,%v)",
						i, ev.PC, rv, rok, fv, fok)
				}
				if rok && rv == ev.Value {
					refHits++
				}
				if fok && fv == ev.Value {
					flatHits++
				}
				ref.Update(ev.PC, ev.Value)
				flat.Update(ev.PC, ev.Value)
				if i%2000 == 1999 {
					want := refSaveBytes(t, ref)
					got := saveBytes(t, flat)
					if !bytes.Equal(got, want) {
						t.Fatalf("SaveState diverged after %d events (%d vs %d bytes)",
							i+1, len(got), len(want))
					}
				}
			}
			if refHits != flatHits {
				t.Fatalf("hit counts diverged: reference %d, flat %d", refHits, flatHits)
			}
			rs, rt := ref.TableEntries()
			fs, ft := flat.TableEntries()
			if rs != fs || rt != ft {
				t.Fatalf("TableEntries diverged: reference (%d,%d), flat (%d,%d)", rs, rt, fs, ft)
			}
			refPer := ref.PCEntries()
			flatPer := flat.PCEntries()
			if len(refPer) != len(flatPer) {
				t.Fatalf("PCEntries size diverged: %d vs %d", len(refPer), len(flatPer))
			}
			for pc, n := range refPer {
				if flatPer[pc] != n {
					t.Fatalf("PCEntries[%#x]: reference %d, flat %d", pc, n, flatPer[pc])
				}
			}
		})
	}
}

// TestFCMFlatLoadsReferenceState proves the wire format is shared both
// ways: a state saved by the reference loads into a flat FCM (exercising
// the slab rebuild and signature recomputation), the restored predictor
// re-saves byte-identically, and it continues in lockstep with the
// reference that kept running.
func TestFCMFlatLoadsReferenceState(t *testing.T) {
	evs := parityStream(6000)
	for _, order := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("order%d", order), func(t *testing.T) {
			ref := newRefFCM(order, true)
			for _, ev := range evs[:3000] {
				ref.Update(ev.PC, ev.Value)
			}
			state := refSaveBytes(t, ref)

			flat := NewFCM(order)
			if err := flat.LoadState(bytes.NewReader(state)); err != nil {
				t.Fatalf("flat LoadState of reference state: %v", err)
			}
			if got := saveBytes(t, flat); !bytes.Equal(got, state) {
				t.Fatalf("flat re-save of reference state not byte-identical (%d vs %d bytes)",
					len(got), len(state))
			}
			for i, ev := range evs[3000:] {
				rv, rok := ref.Predict(ev.PC)
				fv, fok := flat.Predict(ev.PC)
				if rok != fok || rv != fv {
					t.Fatalf("post-restore event %d pc=%#x: reference (%d,%v) vs flat (%d,%v)",
						i, ev.PC, rv, rok, fv, fok)
				}
				ref.Update(ev.PC, ev.Value)
				flat.Update(ev.PC, ev.Value)
			}
			if got, want := saveBytes(t, flat), refSaveBytes(t, ref); !bytes.Equal(got, want) {
				t.Fatal("states diverged after restored replay")
			}
		})
	}
}
