// Package kernel holds the word-parallel primitives under core.Bank's
// StepRun path: branch-free SWAR compare+count over []uint64 value
// runs, prefix scanners for bulk fast paths, and the hit-bitset
// scatter. Every kernel has a scalar reference twin (the *Ref
// functions) that is the parity oracle for the property tests and the
// fuzzer; kernels must be bit-identical to their reference — same
// hits bytes, same counts — on every input.
//
// Two implementations exist:
//
//   - portable SWAR (swar.go): 8-unrolled uint64 lanes, equality via
//     the xor / subtract-borrow / mask-msb trick, hit masks folded
//     with popcount. This is the default on every platform.
//   - amd64 assembly (compare_amd64.s, build tag "vpasmkernel"):
//     AVX2 4-lane VPCMPEQQ compare+count selected at runtime by CPUID
//     feature detection, falling back to the portable SWAR path on
//     CPUs without AVX2. Impl() reports which variant is live.
//
// Kernels never read or write past len() of their arguments, so
// callers do not need tail padding; core.Bank still rounds its run
// buffers up to a multiple of 8 so future wide variants can drop the
// tail loop entirely.
package kernel

// CompareConstCount compares every element of values against the
// single prediction pred, writes hits[k] = 1 where values[k] == pred
// and 0 elsewhere, and returns the number of hits. hits must be at
// least len(values) long.
func CompareConstCount(values []uint64, pred uint64, hits []byte) uint64 {
	return compareConstCount(values, pred, hits)
}

// CompareConstCountLast is the fused variant of CompareConstCount: it
// additionally returns the index of the last mismatch, or -1 when the
// whole run matched pred.
func CompareConstCountLast(values []uint64, pred uint64, hits []byte) (uint64, int) {
	return compareConstCountLastSWAR(values, pred, hits)
}

// ConstPrefixLen returns the length of the longest prefix of values
// whose elements all equal v.
func ConstPrefixLen(values []uint64, v uint64) int {
	return constPrefixLenSWAR(values, v)
}

// CompareAdjacentCount scores a last-value predictor over a run: the
// prediction for values[0] is prev, and for values[k] (k >= 1) it is
// values[k-1]. Hits are written as 0/1 bytes and the hit count is
// returned.
func CompareAdjacentCount(prev uint64, values []uint64, hits []byte) uint64 {
	return compareAdjacentCountSWAR(prev, values, hits)
}

// CompareStrideCount scores an always-update stride predictor over a
// run starting from state (last, stride): the prediction for
// values[0] is last+stride, for values[1] it is 2*values[0]-last, and
// for values[k] (k >= 2) it is 2*values[k-1]-values[k-2]. Hits are
// written as 0/1 bytes and the hit count is returned. All arithmetic
// is mod 2^64, matching the scalar predictors.
func CompareStrideCount(last, stride uint64, values []uint64, hits []byte) uint64 {
	return compareStrideCountSWAR(last, stride, values, hits)
}

// StridePrefixLen returns the length of the longest prefix of values
// that continues the arithmetic sequence prev, prev+stride,
// prev+2*stride, ... — i.e. the number of leading k with
// values[k] == values[k-1] + stride (values[-1] = prev).
func StridePrefixLen(prev, stride uint64, values []uint64) int {
	return stridePrefixLenSWAR(prev, stride, values)
}

// Scatter ORs each run-ordered hit byte into a stream-ordered bitset:
// for every k with hits[k] != 0, bit idx[k] is set in bits. idx must
// be at least len(hits) long and every index must be < 64*len(bits).
func Scatter(hits []byte, idx []int32, bits []uint64) {
	scatterSWAR(hits, idx, bits)
}

// SetOnes fills hits with 1 bytes; the bulk fast paths use it to
// record a run segment of guaranteed hits.
func SetOnes(hits []byte) {
	for i := range hits {
		hits[i] = 1
	}
}
