package kernel

// The *Ref functions are the scalar, obviously-correct twins of the
// exported kernels. They are the parity oracle: the property tests
// and FuzzKernelCompareCount assert the SWAR (and, under the
// vpasmkernel build tag, assembly) paths produce bit-identical hits
// and counts on every input. They are not called from the hot path.

// CompareConstCountRef is the scalar reference for CompareConstCount.
func CompareConstCountRef(values []uint64, pred uint64, hits []byte) uint64 {
	var cnt uint64
	for k, v := range values {
		if v == pred {
			hits[k] = 1
			cnt++
		} else {
			hits[k] = 0
		}
	}
	return cnt
}

// CompareConstCountLastRef is the scalar reference for
// CompareConstCountLast.
func CompareConstCountLastRef(values []uint64, pred uint64, hits []byte) (uint64, int) {
	var cnt uint64
	last := -1
	for k, v := range values {
		if v == pred {
			hits[k] = 1
			cnt++
		} else {
			hits[k] = 0
			last = k
		}
	}
	return cnt, last
}

// ConstPrefixLenRef is the scalar reference for ConstPrefixLen.
func ConstPrefixLenRef(values []uint64, v uint64) int {
	for k, w := range values {
		if w != v {
			return k
		}
	}
	return len(values)
}

// CompareAdjacentCountRef is the scalar reference for
// CompareAdjacentCount.
func CompareAdjacentCountRef(prev uint64, values []uint64, hits []byte) uint64 {
	var cnt uint64
	for k, v := range values {
		if v == prev {
			hits[k] = 1
			cnt++
		} else {
			hits[k] = 0
		}
		prev = v
	}
	return cnt
}

// CompareStrideCountRef is the scalar reference for
// CompareStrideCount: it replays the always-update stride predictor
// one event at a time.
func CompareStrideCountRef(last, stride uint64, values []uint64, hits []byte) uint64 {
	var cnt uint64
	for k, v := range values {
		if v == last+stride {
			hits[k] = 1
			cnt++
		} else {
			hits[k] = 0
		}
		stride = v - last
		last = v
	}
	return cnt
}

// StridePrefixLenRef is the scalar reference for StridePrefixLen.
func StridePrefixLenRef(prev, stride uint64, values []uint64) int {
	for k, v := range values {
		if v-prev != stride {
			return k
		}
		prev = v
	}
	return len(values)
}

// ScatterRef is the scalar reference for Scatter.
func ScatterRef(hits []byte, idx []int32, bits []uint64) {
	n := len(hits)
	if len(idx) < n {
		n = len(idx)
	}
	for k := 0; k < n; k++ {
		if hits[k] != 0 {
			i := uint32(idx[k])
			bits[i>>6] |= 1 << (i & 63)
		}
	}
}
