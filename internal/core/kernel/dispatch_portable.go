//go:build !vpasmkernel || !amd64

package kernel

// Default dispatch: every kernel runs the portable SWAR path. The
// vpasmkernel build tag on amd64 swaps compareConstCount for the
// runtime-dispatched assembly variant (see dispatch_amd64.go).

func compareConstCount(values []uint64, pred uint64, hits []byte) uint64 {
	return compareConstCountSWAR(values, pred, hits)
}

// Impl reports the active compare+count implementation.
func Impl() string { return "swar" }
