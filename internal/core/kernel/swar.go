package kernel

import "math/bits"

// eq1 returns 1 when x == y and 0 otherwise, with no branches: the
// xor is zero only on equality, and for d != 0 the subtract borrows
// out of at least one set bit of d, so (d-1) &^ d has its top bit set
// only when d == 0... the other way around: for d == 0, d-1 is all
// ones and &^ 0 keeps the MSB; for d != 0, every bit set in d-1 above
// the lowest set bit of d is also set in d, so the MSB survives only
// if d's MSB is clear AND d == 0. Shifting the MSB down yields the
// 0/1 flag.
func eq1(x, y uint64) uint64 {
	d := x ^ y
	return ((d - 1) &^ d) >> 63
}

func compareConstCountSWAR(values []uint64, pred uint64, hits []byte) uint64 {
	n := len(values)
	hits = hits[:n]
	var cnt uint64
	k := 0
	for ; k+8 <= n; k += 8 {
		v := values[k : k+8 : k+8]
		h := hits[k : k+8 : k+8]
		b0 := eq1(v[0], pred)
		b1 := eq1(v[1], pred)
		b2 := eq1(v[2], pred)
		b3 := eq1(v[3], pred)
		b4 := eq1(v[4], pred)
		b5 := eq1(v[5], pred)
		b6 := eq1(v[6], pred)
		b7 := eq1(v[7], pred)
		h[0] = byte(b0)
		h[1] = byte(b1)
		h[2] = byte(b2)
		h[3] = byte(b3)
		h[4] = byte(b4)
		h[5] = byte(b5)
		h[6] = byte(b6)
		h[7] = byte(b7)
		cnt += b0 + b1 + b2 + b3 + b4 + b5 + b6 + b7
	}
	for ; k < n; k++ {
		b := eq1(values[k], pred)
		hits[k] = byte(b)
		cnt += b
	}
	return cnt
}

func compareConstCountLastSWAR(values []uint64, pred uint64, hits []byte) (uint64, int) {
	n := len(values)
	hits = hits[:n]
	var cnt uint64
	last := -1
	k := 0
	for ; k+8 <= n; k += 8 {
		v := values[k : k+8 : k+8]
		h := hits[k : k+8 : k+8]
		b0 := eq1(v[0], pred)
		b1 := eq1(v[1], pred)
		b2 := eq1(v[2], pred)
		b3 := eq1(v[3], pred)
		b4 := eq1(v[4], pred)
		b5 := eq1(v[5], pred)
		b6 := eq1(v[6], pred)
		b7 := eq1(v[7], pred)
		h[0] = byte(b0)
		h[1] = byte(b1)
		h[2] = byte(b2)
		h[3] = byte(b3)
		h[4] = byte(b4)
		h[5] = byte(b5)
		h[6] = byte(b6)
		h[7] = byte(b7)
		mask := b0 | b1<<1 | b2<<2 | b3<<3 | b4<<4 | b5<<5 | b6<<6 | b7<<7
		cnt += uint64(bits.OnesCount8(uint8(mask)))
		if miss := ^uint8(mask); miss != 0 {
			last = k + 7 - bits.LeadingZeros8(miss)
		}
	}
	for ; k < n; k++ {
		b := eq1(values[k], pred)
		hits[k] = byte(b)
		cnt += b
		if b == 0 {
			last = k
		}
	}
	return cnt, last
}

func constPrefixLenSWAR(values []uint64, v uint64) int {
	n := len(values)
	k := 0
	for ; k+8 <= n; k += 8 {
		w := values[k : k+8 : k+8]
		or := (w[0] ^ v) | (w[1] ^ v) | (w[2] ^ v) | (w[3] ^ v) |
			(w[4] ^ v) | (w[5] ^ v) | (w[6] ^ v) | (w[7] ^ v)
		if or != 0 {
			break
		}
	}
	for ; k < n; k++ {
		if values[k] != v {
			return k
		}
	}
	return n
}

func compareAdjacentCountSWAR(prev uint64, values []uint64, hits []byte) uint64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	hits = hits[:n]
	b := eq1(values[0], prev)
	hits[0] = byte(b)
	cnt := b
	k := 1
	for ; k+8 <= n; k += 8 {
		p := values[k-1 : k+7 : k+7]
		v := values[k : k+8 : k+8]
		h := hits[k : k+8 : k+8]
		b0 := eq1(v[0], p[0])
		b1 := eq1(v[1], p[1])
		b2 := eq1(v[2], p[2])
		b3 := eq1(v[3], p[3])
		b4 := eq1(v[4], p[4])
		b5 := eq1(v[5], p[5])
		b6 := eq1(v[6], p[6])
		b7 := eq1(v[7], p[7])
		h[0] = byte(b0)
		h[1] = byte(b1)
		h[2] = byte(b2)
		h[3] = byte(b3)
		h[4] = byte(b4)
		h[5] = byte(b5)
		h[6] = byte(b6)
		h[7] = byte(b7)
		cnt += b0 + b1 + b2 + b3 + b4 + b5 + b6 + b7
	}
	for ; k < n; k++ {
		b := eq1(values[k], values[k-1])
		hits[k] = byte(b)
		cnt += b
	}
	return cnt
}

func compareStrideCountSWAR(last, stride uint64, values []uint64, hits []byte) uint64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	hits = hits[:n]
	b := eq1(values[0], last+stride)
	hits[0] = byte(b)
	cnt := b
	if n == 1 {
		return cnt
	}
	b = eq1(values[1], 2*values[0]-last)
	hits[1] = byte(b)
	cnt += b
	k := 2
	for ; k+8 <= n; k += 8 {
		p2 := values[k-2 : k+6 : k+6]
		p1 := values[k-1 : k+7 : k+7]
		v := values[k : k+8 : k+8]
		h := hits[k : k+8 : k+8]
		b0 := eq1(v[0], 2*p1[0]-p2[0])
		b1 := eq1(v[1], 2*p1[1]-p2[1])
		b2 := eq1(v[2], 2*p1[2]-p2[2])
		b3 := eq1(v[3], 2*p1[3]-p2[3])
		b4 := eq1(v[4], 2*p1[4]-p2[4])
		b5 := eq1(v[5], 2*p1[5]-p2[5])
		b6 := eq1(v[6], 2*p1[6]-p2[6])
		b7 := eq1(v[7], 2*p1[7]-p2[7])
		h[0] = byte(b0)
		h[1] = byte(b1)
		h[2] = byte(b2)
		h[3] = byte(b3)
		h[4] = byte(b4)
		h[5] = byte(b5)
		h[6] = byte(b6)
		h[7] = byte(b7)
		cnt += b0 + b1 + b2 + b3 + b4 + b5 + b6 + b7
	}
	for ; k < n; k++ {
		b := eq1(values[k], 2*values[k-1]-values[k-2])
		hits[k] = byte(b)
		cnt += b
	}
	return cnt
}

func stridePrefixLenSWAR(prev, stride uint64, values []uint64) int {
	n := len(values)
	if n == 0 {
		return 0
	}
	if values[0]-prev != stride {
		return 0
	}
	k := 1
	for ; k+8 <= n; k += 8 {
		p := values[k-1 : k+7 : k+7]
		v := values[k : k+8 : k+8]
		or := ((v[0] - p[0]) ^ stride) | ((v[1] - p[1]) ^ stride) |
			((v[2] - p[2]) ^ stride) | ((v[3] - p[3]) ^ stride) |
			((v[4] - p[4]) ^ stride) | ((v[5] - p[5]) ^ stride) |
			((v[6] - p[6]) ^ stride) | ((v[7] - p[7]) ^ stride)
		if or != 0 {
			break
		}
	}
	for ; k < n; k++ {
		if values[k]-values[k-1] != stride {
			return k
		}
	}
	return n
}

func scatterSWAR(hits []byte, idx []int32, bits []uint64) {
	n := len(hits)
	if len(idx) < n {
		n = len(idx)
	}
	for k := 0; k < n; k++ {
		i := uint32(idx[k])
		bits[i>>6] |= uint64(hits[k]&1) << (i & 63)
	}
}
