package kernel

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// runLengths covers the SWAR block boundaries: empty, sub-block,
// exact blocks, and odd tails around them.
var runLengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 63, 64, 65, 100, 255, 256}

func randRun(rng *rand.Rand, n int) []uint64 {
	values := make([]uint64, n)
	for i := range values {
		// A tiny value domain forces frequent hits and long equal
		// prefixes, so the interesting kernel paths all fire.
		switch rng.Intn(3) {
		case 0:
			values[i] = uint64(rng.Intn(4))
		case 1:
			values[i] = rng.Uint64()
		default:
			values[i] = uint64(rng.Intn(4)) * 8
		}
	}
	return values
}

func TestCompareConstCountParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range runLengths {
		for trial := 0; trial < 50; trial++ {
			values := randRun(rng, n)
			pred := uint64(rng.Intn(4))
			if trial%5 == 0 && n > 0 {
				pred = values[rng.Intn(n)]
			}
			got := make([]byte, n)
			want := make([]byte, n)
			gc := CompareConstCount(values, pred, got)
			wc := CompareConstCountRef(values, pred, want)
			if gc != wc || !bytes.Equal(got, want) {
				t.Fatalf("n=%d pred=%d: count %d vs ref %d, hits %v vs %v", n, pred, gc, wc, got, want)
			}
			gc2, gl := CompareConstCountLast(values, pred, got)
			wc2, wl := CompareConstCountLastRef(values, pred, want)
			if gc2 != wc2 || gl != wl || !bytes.Equal(got, want) {
				t.Fatalf("fused n=%d pred=%d: (%d,%d) vs ref (%d,%d)", n, pred, gc2, gl, wc2, wl)
			}
		}
	}
}

func TestConstPrefixLenParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range runLengths {
		for trial := 0; trial < 50; trial++ {
			v := uint64(rng.Intn(3))
			values := make([]uint64, n)
			// Constant prefix of random length, then noise.
			cut := 0
			if n > 0 {
				cut = rng.Intn(n + 1)
			}
			for i := 0; i < cut; i++ {
				values[i] = v
			}
			for i := cut; i < n; i++ {
				values[i] = rng.Uint64()
			}
			got := ConstPrefixLen(values, v)
			want := ConstPrefixLenRef(values, v)
			if got != want {
				t.Fatalf("n=%d cut=%d: ConstPrefixLen %d, ref %d", n, cut, got, want)
			}
		}
	}
}

func TestCompareAdjacentCountParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range runLengths {
		for trial := 0; trial < 50; trial++ {
			values := randRun(rng, n)
			prev := uint64(rng.Intn(4))
			got := make([]byte, n)
			want := make([]byte, n)
			gc := CompareAdjacentCount(prev, values, got)
			wc := CompareAdjacentCountRef(prev, values, want)
			if gc != wc || !bytes.Equal(got, want) {
				t.Fatalf("n=%d prev=%d: count %d vs ref %d, hits %v vs %v", n, prev, gc, wc, got, want)
			}
		}
	}
}

func TestCompareStrideCountParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range runLengths {
		for trial := 0; trial < 50; trial++ {
			var values []uint64
			if trial%2 == 0 {
				// Noisy arithmetic sequence: mostly strided with
				// occasional breaks, the stride predictor's habitat.
				values = make([]uint64, n)
				v := rng.Uint64()
				stride := uint64(rng.Intn(16)) - 8
				for i := range values {
					if rng.Intn(8) == 0 {
						v = rng.Uint64()
					}
					values[i] = v
					v += stride
				}
			} else {
				values = randRun(rng, n)
			}
			last := rng.Uint64()
			stride := uint64(rng.Intn(16)) - 8
			got := make([]byte, n)
			want := make([]byte, n)
			gc := CompareStrideCount(last, stride, values, got)
			wc := CompareStrideCountRef(last, stride, values, want)
			if gc != wc || !bytes.Equal(got, want) {
				t.Fatalf("n=%d: count %d vs ref %d, hits %v vs %v", n, gc, wc, got, want)
			}
			gp := StridePrefixLen(last, stride, values)
			wp := StridePrefixLenRef(last, stride, values)
			if gp != wp {
				t.Fatalf("n=%d: StridePrefixLen %d, ref %d", n, gp, wp)
			}
		}
	}
}

func TestScatterParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range runLengths {
		for trial := 0; trial < 20; trial++ {
			hits := make([]byte, n)
			idx := make([]int32, n)
			perm := rng.Perm(n * 2)
			for i := range idx {
				hits[i] = byte(rng.Intn(2))
				idx[i] = int32(perm[i])
			}
			words := (n*2 + 63) / 64
			if words == 0 {
				words = 1
			}
			got := make([]uint64, words)
			want := make([]uint64, words)
			Scatter(hits, idx, got)
			ScatterRef(hits, idx, want)
			for w := range got {
				if got[w] != want[w] {
					t.Fatalf("n=%d word %d: %#x vs ref %#x", n, w, got[w], want[w])
				}
			}
		}
	}
}

// FuzzKernelCompareCount fuzzes the dispatched compare+count kernels
// against the scalar references over arbitrary runs and predictions.
func FuzzKernelCompareCount(f *testing.F) {
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0}, uint64(1))
	seed := make([]byte, 9*8)
	for i := 0; i < 9; i++ {
		binary.LittleEndian.PutUint64(seed[i*8:], uint64(i%3))
	}
	f.Add(seed, uint64(0))
	f.Fuzz(func(t *testing.T, raw []byte, pred uint64) {
		n := len(raw) / 8
		if n > 4096 {
			n = 4096
		}
		values := make([]uint64, n)
		for i := range values {
			values[i] = binary.LittleEndian.Uint64(raw[i*8:])
		}
		got := make([]byte, n)
		want := make([]byte, n)
		if gc, wc := CompareConstCount(values, pred, got), CompareConstCountRef(values, pred, want); gc != wc || !bytes.Equal(got, want) {
			t.Fatalf("CompareConstCount: count %d vs ref %d", gc, wc)
		}
		gc, gl := CompareConstCountLast(values, pred, got)
		wc, wl := CompareConstCountLastRef(values, pred, want)
		if gc != wc || gl != wl || !bytes.Equal(got, want) {
			t.Fatalf("CompareConstCountLast: (%d,%d) vs ref (%d,%d)", gc, gl, wc, wl)
		}
		if gp, wp := ConstPrefixLen(values, pred), ConstPrefixLenRef(values, pred); gp != wp {
			t.Fatalf("ConstPrefixLen: %d vs ref %d", gp, wp)
		}
		if gc, wc := CompareAdjacentCount(pred, values, got), CompareAdjacentCountRef(pred, values, want); gc != wc || !bytes.Equal(got, want) {
			t.Fatalf("CompareAdjacentCount: count %d vs ref %d", gc, wc)
		}
		var stride uint64
		if n > 0 {
			stride = values[0] - pred
		}
		if gc, wc := CompareStrideCount(pred, stride, values, got), CompareStrideCountRef(pred, stride, values, want); gc != wc || !bytes.Equal(got, want) {
			t.Fatalf("CompareStrideCount: count %d vs ref %d", gc, wc)
		}
		if gp, wp := StridePrefixLen(pred, stride, values), StridePrefixLenRef(pred, stride, values); gp != wp {
			t.Fatalf("StridePrefixLen: %d vs ref %d", gp, wp)
		}
	})
}

// TestKernelZeroAlloc is part of the CI zero-alloc gate: stepping the
// kernels over preallocated runs must not allocate.
func TestKernelZeroAlloc(t *testing.T) {
	values := make([]uint64, 256)
	hits := make([]byte, 256)
	idx := make([]int32, 256)
	bits := make([]uint64, 4)
	for i := range values {
		values[i] = uint64(i % 4)
		idx[i] = int32(i)
	}
	var sink uint64
	allocs := testing.AllocsPerRun(100, func() {
		sink += CompareConstCount(values, 2, hits)
		c, _ := CompareConstCountLast(values, 2, hits)
		sink += c
		sink += uint64(ConstPrefixLen(values, 0))
		sink += CompareAdjacentCount(0, values, hits)
		sink += CompareStrideCount(0, 1, values, hits)
		sink += uint64(StridePrefixLen(0, 1, values))
		Scatter(hits, idx, bits)
	})
	if allocs != 0 {
		t.Fatalf("kernel hot path allocated %.1f times per run (impl=%s)", allocs, Impl())
	}
	_ = sink
}

func TestImplReported(t *testing.T) {
	switch Impl() {
	case "swar", "avx2":
	default:
		t.Fatalf("unexpected kernel impl %q", Impl())
	}
}

func BenchmarkKernelCompareCount(b *testing.B) {
	values := make([]uint64, 4096)
	hits := make([]byte, 4096)
	for i := range values {
		values[i] = uint64(i % 4)
	}
	b.SetBytes(4096 * 8)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += CompareConstCount(values, 2, hits)
	}
	_ = sink
}

func BenchmarkKernelCompareCountRef(b *testing.B) {
	values := make([]uint64, 4096)
	hits := make([]byte, 4096)
	for i := range values {
		values[i] = uint64(i % 4)
	}
	b.SetBytes(4096 * 8)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += CompareConstCountRef(values, 2, hits)
	}
	_ = sink
}
