//go:build vpasmkernel && amd64

#include "textflag.h"

// maskBytes4 maps a 4-bit VMOVMSKPD lane mask to the corresponding
// four 0/1 hit bytes, little-endian (lane 0 = lowest byte).
DATA maskBytes4<>+0(SB)/4, $0x00000000
DATA maskBytes4<>+4(SB)/4, $0x00000001
DATA maskBytes4<>+8(SB)/4, $0x00000100
DATA maskBytes4<>+12(SB)/4, $0x00000101
DATA maskBytes4<>+16(SB)/4, $0x00010000
DATA maskBytes4<>+20(SB)/4, $0x00010001
DATA maskBytes4<>+24(SB)/4, $0x00010100
DATA maskBytes4<>+28(SB)/4, $0x00010101
DATA maskBytes4<>+32(SB)/4, $0x01000000
DATA maskBytes4<>+36(SB)/4, $0x01000001
DATA maskBytes4<>+40(SB)/4, $0x01000100
DATA maskBytes4<>+44(SB)/4, $0x01000101
DATA maskBytes4<>+48(SB)/4, $0x01010000
DATA maskBytes4<>+52(SB)/4, $0x01010001
DATA maskBytes4<>+56(SB)/4, $0x01010100
DATA maskBytes4<>+60(SB)/4, $0x01010101
GLOBL maskBytes4<>(SB), RODATA|NOPTR, $64

// func compareConstCountAVX2(values *uint64, n int, pred uint64, hits *byte) uint64
//
// Four 64-bit lanes per iteration: VPCMPEQQ against the broadcast
// prediction, VMOVMSKPD folds the lane results to a 4-bit mask,
// POPCNT accumulates the hit count, and a 16-entry table expands the
// mask to four hit bytes stored with a single MOVL. The scalar tail
// handles n % 4 events; nothing is read or written past n.
TEXT ·compareConstCountAVX2(SB), NOSPLIT, $0-40
	MOVQ values+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ pred+16(FP), AX
	MOVQ hits+24(FP), DI
	VPBROADCASTQ pred+16(FP), Y0
	LEAQ maskBytes4<>(SB), R12
	XORQ R9, R9             // hit count
	XORQ DX, DX             // event index
loop4:
	LEAQ 4(DX), BX
	CMPQ BX, CX
	JGT  tail
	VMOVDQU (SI)(DX*8), Y1
	VPCMPEQQ Y0, Y1, Y1
	VMOVMSKPD Y1, R8
	POPCNTL R8, R10
	ADDQ R10, R9
	MOVL (R12)(R8*4), R11
	MOVL R11, (DI)(DX*1)
	MOVQ BX, DX
	JMP  loop4
tail:
	CMPQ DX, CX
	JGE  done
	MOVQ (SI)(DX*8), BX
	XORQ R10, R10
	CMPQ BX, AX
	JNE  store
	INCQ R10
store:
	MOVB R10, (DI)(DX*1)
	ADDQ R10, R9
	INCQ DX
	JMP  tail
done:
	VZEROUPPER
	MOVQ R9, ret+32(FP)
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
