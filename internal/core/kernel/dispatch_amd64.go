//go:build vpasmkernel && amd64

package kernel

// Assembly dispatch (build tag vpasmkernel): CPUID feature detection
// picks the AVX2 compare+count kernel at startup; CPUs without AVX2
// (or without OS-enabled YMM state) fall back to the portable SWAR
// path, so the tag is always safe to enable.

var useAVX2 = detectAVX2()

// cpuid and xgetbv are implemented in compare_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// compareConstCountAVX2 is implemented in compare_amd64.s. values and
// hits must both have at least n elements; n may be 0.
//
//go:noescape
func compareConstCountAVX2(values *uint64, n int, pred uint64, hits *byte) uint64

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const (
		popcntBit  = 1 << 23
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c&popcntBit == 0 || c&osxsaveBit == 0 || c&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX/YMM) must both be OS-enabled.
	if lo, _ := xgetbv(); lo&6 != 6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return b&avx2Bit != 0
}

func compareConstCount(values []uint64, pred uint64, hits []byte) uint64 {
	if useAVX2 && len(values) >= 4 {
		_ = hits[len(values)-1]
		return compareConstCountAVX2(&values[0], len(values), pred, &hits[0])
	}
	return compareConstCountSWAR(values, pred, hits)
}

// Impl reports the active compare+count implementation.
func Impl() string {
	if useAVX2 {
		return "avx2"
	}
	return "swar"
}
