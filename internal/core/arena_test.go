package core

import (
	"bytes"
	"testing"

	"repro/internal/arena"
)

// TestFCMArenaParity drives an FCM whose slabs live in mmap regions in
// lockstep with a heap-backed twin: every per-event hit and the final
// SaveState bytes must be identical. The threshold is lowered so even the
// test-sized slabs go through real mappings, and the workload is shaped to
// cross every growth path — pcTable and signature-table rehashes, context
// and key slab appends, value-run relocation, and index promotion.
func TestFCMArenaParity(t *testing.T) {
	defer func(old int) { arena.MmapThreshold = old }(arena.MmapThreshold)
	arena.MmapThreshold = 64

	if err := SetSlabArena("mmap"); err != nil {
		t.Fatal(err)
	}
	mapped := NewFCM(3)
	if err := SetSlabArena("heap"); err != nil {
		t.Fatal(err)
	}
	heap := NewFCM(3)
	if heap.arena != nil {
		t.Fatal("heap store got an arena")
	}

	rng := uint64(1)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	for ev := 0; ev < 60000; ev++ {
		pc := next() % 200 * 4
		var v uint64
		switch next() % 4 {
		case 0:
			v = 42 // constant stretches
		case 1:
			v = uint64(ev) // monotone — degenerate context, forces promote
		default:
			v = next() % 8 // small alphabet — deep context reuse
		}
		pm, okm := mapped.Predict(pc)
		ph, okh := heap.Predict(pc)
		if okm != okh || (okm && pm != ph) {
			t.Fatalf("event %d pc %#x: mmap predicts %d,%v heap %d,%v", ev, pc, pm, okm, ph, okh)
		}
		mapped.Update(pc, v)
		heap.Update(pc, v)
	}

	if mapped.arena == nil || mapped.arena.Mapped() == 0 {
		t.Fatal("mmap store never mapped a region — test exercised nothing")
	}

	var bm, bh bytes.Buffer
	if err := mapped.SaveState(&bm); err != nil {
		t.Fatal(err)
	}
	if err := heap.SaveState(&bh); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bm.Bytes(), bh.Bytes()) {
		t.Fatalf("SaveState bytes diverge: %d vs %d bytes", bm.Len(), bh.Len())
	}

	// LoadState swaps in a fresh store and must release the old mappings.
	if err := mapped.LoadState(bytes.NewReader(bh.Bytes())); err != nil {
		t.Fatal(err)
	}
	if v, ok := mapped.Predict(4); ok {
		if hv, hok := heap.Predict(4); !hok || hv != v {
			t.Fatalf("post-load Predict diverges: %d vs %d", v, hv)
		}
	}
}
