package core

import (
	"bytes"
	"fmt"
	"testing"
)

// This file pins the batch execution layer to the per-event reference:
// for every registry predictor, a Bank stepping the stream in batches —
// across batch sizes including degenerate ones — must agree with a
// Predict/Update loop on every individual prediction (the per-event
// correctness bits), on the hit counts, and byte for byte on SaveState
// output. The same technique as fcm_parity_test.go, one level up: the
// kernels may regroup and fuse, but nothing observable may change.

// perEventRef steps one predictor over a stream the pre-batch way,
// recording per-event correctness.
func perEventRef(p Predictor, evs []struct{ PC, Value uint64 }) (bits []bool, correct uint64) {
	bits = make([]bool, len(evs))
	for i, ev := range evs {
		pred, ok := p.Predict(ev.PC)
		if ok && pred == ev.Value {
			bits[i] = true
			correct++
		}
		p.Update(ev.PC, ev.Value)
	}
	return bits, correct
}

// batchParityStream widens trainStream with long same-PC stretches so
// grouped runs are exercised at length, not just interleaved.
func batchParityStream(n int) []struct{ PC, Value uint64 } {
	evs := trainStream(n)
	for i := 0; i < n/4; i++ {
		pc := uint64(1000 + 8*(i/97)) // ~97-event same-PC stretches
		evs = append(evs, struct{ PC, Value uint64 }{PC: pc, Value: uint64(i % 5)})
	}
	return evs
}

func TestBankMatchesPerEventReference(t *testing.T) {
	evs := batchParityStream(8000)
	for _, fac := range KnownFactories() {
		for _, batch := range []int{1, 7, 256, 4096, len(evs)} {
			t.Run(fmt.Sprintf("%s/batch%d", fac.Name, batch), func(t *testing.T) {
				ref := fac.New()
				refBits, refCorrect := perEventRef(ref, evs)

				p := fac.New()
				b := NewBank(p)
				gotBits := make([]bool, len(evs))
				var counts [1]uint64
				pcs := make([]uint64, batch)
				vals := make([]uint64, batch)
				words := make([]uint64, (batch+63)/64)
				bitsArg := [][]uint64{words}
				for off := 0; off < len(evs); off += batch {
					end := off + batch
					if end > len(evs) {
						end = len(evs)
					}
					m := end - off
					for j := 0; j < m; j++ {
						pcs[j] = evs[off+j].PC
						vals[j] = evs[off+j].Value
					}
					b.StepBatchCollect(pcs[:m], vals[:m], counts[:], bitsArg)
					for j := 0; j < m; j++ {
						gotBits[off+j] = words[j>>6]&(1<<(uint(j)&63)) != 0
					}
				}
				for i := range refBits {
					if gotBits[i] != refBits[i] {
						t.Fatalf("event %d (pc=%#x): batch path correct=%v, per-event %v",
							i, evs[i].PC, gotBits[i], refBits[i])
					}
				}
				if counts[0] != refCorrect || b.correct[0] != refCorrect {
					t.Fatalf("hit counts: batch collected %d, bank %d, per-event %d",
						counts[0], b.correct[0], refCorrect)
				}
				if b.Events() != uint64(len(evs)) {
					t.Fatalf("bank stepped %d events, want %d", b.Events(), len(evs))
				}
				if got, want := saveBytes(t, p), saveBytes(t, ref); !bytes.Equal(got, want) {
					t.Fatalf("SaveState diverged: batch path %d bytes, per-event %d", len(got), len(want))
				}
			})
		}
	}
}

// TestStepBankMatchesPerEventReference pins the per-event wrapper (the
// edge the replay tools use) to the same reference.
func TestStepBankMatchesPerEventReference(t *testing.T) {
	evs := batchParityStream(4000)
	var names []string
	var refs, via []Predictor
	for _, fac := range KnownFactories() {
		names = append(names, fac.Name)
		refs = append(refs, fac.New())
		via = append(via, fac.New())
	}
	correct := make([]uint64, len(via))
	refCorrect := make([]uint64, len(refs))
	for _, ev := range evs {
		StepBank(via, correct, ev.PC, ev.Value)
		for i, p := range refs {
			pred, ok := p.Predict(ev.PC)
			if ok && pred == ev.Value {
				refCorrect[i]++
			}
			p.Update(ev.PC, ev.Value)
		}
	}
	for i := range refs {
		if correct[i] != refCorrect[i] {
			t.Errorf("%s: StepBank tallied %d, per-event %d", names[i], correct[i], refCorrect[i])
		}
		if got, want := saveBytes(t, via[i]), saveBytes(t, refs[i]); !bytes.Equal(got, want) {
			t.Errorf("%s: StepBank state diverged from per-event", names[i])
		}
	}
}

// TestRunWrappersMatchPerEvent pins the Run/RunSequence wrappers (now
// thin shims over the batch path) to the pre-batch loop they replaced.
func TestRunWrappersMatchPerEvent(t *testing.T) {
	evs := batchParityStream(6000)
	pcs := make([]uint64, len(evs))
	vals := make([]uint64, len(evs))
	for i, ev := range evs {
		pcs[i] = ev.PC
		vals[i] = ev.Value
	}
	for _, fac := range KnownFactories() {
		t.Run(fac.Name, func(t *testing.T) {
			ref := fac.New()
			var want Accuracy
			for i := range evs {
				pred, ok := ref.Predict(pcs[i])
				want.Observe(ok && pred == vals[i])
				ref.Update(pcs[i], vals[i])
			}
			if got := Run(fac.New(), pcs, vals); got != want {
				t.Errorf("Run = %+v, per-event %+v", got, want)
			}

			seq := fac.New()
			var wantSeq Accuracy
			for _, v := range vals[:5000] {
				pred, ok := seq.Predict(0)
				wantSeq.Observe(ok && pred == v)
				seq.Update(0, v)
			}
			if got := RunSequence(fac.New(), vals[:5000]); got != wantSeq {
				t.Errorf("RunSequence = %+v, per-event %+v", got, wantSeq)
			}
		})
	}
}

// TestBankMultiPredictorAndReset checks correct-counter bookkeeping over
// a mixed bank (native kernels + the per-event bounded fallback in one
// StepBatch) and that Reset produces a bank indistinguishable from a
// fresh one.
func TestBankMultiPredictorAndReset(t *testing.T) {
	evs := batchParityStream(3000)
	preds := []Predictor{NewLastValue(), NewFCM(3), NewBoundedFCM(3, 12, 18), NewStrideFCMHybrid(2)}
	refs := []Predictor{NewLastValue(), NewFCM(3), NewBoundedFCM(3, 12, 18), NewStrideFCMHybrid(2)}
	b := NewBank(preds...)

	run := func() {
		pcs := make([]uint64, 0, 512)
		vals := make([]uint64, 0, 512)
		for off := 0; off < len(evs); off += 512 {
			end := off + 512
			if end > len(evs) {
				end = len(evs)
			}
			pcs, vals = pcs[:0], vals[:0]
			for _, ev := range evs[off:end] {
				pcs = append(pcs, ev.PC)
				vals = append(vals, ev.Value)
			}
			b.StepBatch(pcs, vals)
		}
	}
	run()
	refCorrect := make([]uint64, len(refs))
	for _, ev := range evs {
		StepBank(refs, refCorrect, ev.PC, ev.Value)
	}
	for i := range refs {
		if b.correct[i] != refCorrect[i] {
			t.Errorf("predictor %d (%s): bank %d correct, reference %d",
				i, preds[i].Name(), b.correct[i], refCorrect[i])
		}
	}

	if !b.Reset() {
		t.Fatal("Reset reported unresettable predictors; all registry predictors implement Resetter")
	}
	if b.Events() != 0 {
		t.Fatalf("events after Reset = %d", b.Events())
	}
	run()
	for i := range refs {
		if b.correct[i] != refCorrect[i] {
			t.Errorf("after Reset, predictor %d (%s): bank %d correct, want %d",
				i, preds[i].Name(), b.correct[i], refCorrect[i])
		}
	}
}
