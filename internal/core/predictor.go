// Package core implements the value predictors studied in "The
// Predictability of Data Values" (Sazeides & Smith, MICRO-30, 1997).
//
// Two families are provided, matching the paper's taxonomy:
//
//   - Computational predictors compute a function of previous values:
//     LastValue (identity) and Stride (last value + delta), each with the
//     hysteresis variants the paper describes (always-update, saturating
//     counter, and the 2-delta stride of Eickemeyer & Vassiliadis).
//
//   - Context-based predictors learn which value follows a finite ordered
//     sequence of previous values: FCM (finite context method) with exact
//     occurrence counts, full-concatenation contexts (no aliasing) and
//     blending with lazy exclusion across orders, exactly as simulated in
//     the paper.
//
// All predictors follow the paper's idealization: unbounded tables with one
// entry per static instruction (keyed by PC) and immediate update with the
// correct value after every prediction.
//
// The package is substrate-free: it consumes a bare (pc, value) stream and
// has no dependency on the ISA, simulator or benchmarks, so it can be used
// on any value trace.
package core

// Predictor is the common interface of all value predictors.
//
// The protocol for each dynamic instance of a static instruction is:
//
//	pred, ok := p.Predict(pc)   // ok=false while the table has no basis
//	...
//	p.Update(pc, actual)        // immediate update with the true value
//
// Predict must not mutate predictor state; Update performs all learning.
type Predictor interface {
	// Name returns a short identifier such as "l", "s2" or "fcm3".
	Name() string

	// Predict returns the predicted next value for the static instruction
	// at pc. ok is false when the predictor has no basis for a prediction
	// yet (for accounting these count as mispredictions, matching the
	// paper's accuracy definition: correct predictions / all predictions).
	Predict(pc uint64) (value uint64, ok bool)

	// Update informs the predictor of the true value produced at pc.
	Update(pc uint64, value uint64)
}

// Resetter is implemented by predictors whose tables can be cleared in
// place, which lets harnesses reuse allocations between runs.
type Resetter interface {
	Reset()
}

// Sized is implemented by predictors that can report how many table
// entries they hold; used by the value-characteristics analysis and by
// memory accounting in the experiment harness.
type Sized interface {
	// TableEntries returns the number of static instructions tracked and
	// the total number of internal table entries (contexts, counters...).
	TableEntries() (static, total int)
}

// Factory constructs a fresh predictor instance. Experiment runners use
// factories so each benchmark gets untrained tables.
type Factory struct {
	// Name is the identifier instances will report; also used in reports.
	Name string
	// New returns a fresh, empty predictor.
	New func() Predictor
}

// StandardFactories returns the predictor set the paper evaluates in
// Figures 3-7: last value (always update), 2-delta stride, and FCM of
// orders 1, 2 and 3.
func StandardFactories() []Factory {
	return []Factory{
		{Name: "l", New: func() Predictor { return NewLastValue() }},
		{Name: "s2", New: func() Predictor { return NewStride2Delta() }},
		{Name: "fcm1", New: func() Predictor { return NewFCM(1) }},
		{Name: "fcm2", New: func() Predictor { return NewFCM(2) }},
		{Name: "fcm3", New: func() Predictor { return NewFCM(3) }},
	}
}

// Accuracy is a simple correct/total tally helper shared by harnesses.
type Accuracy struct {
	Correct uint64
	Total   uint64
}

// Observe records one prediction outcome.
func (a *Accuracy) Observe(correct bool) {
	a.Total++
	if correct {
		a.Correct++
	}
}

// Rate returns the fraction of correct predictions, or 0 when empty.
func (a Accuracy) Rate() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.Total)
}

// Percent returns the accuracy as a percentage in [0,100].
func (a Accuracy) Percent() float64 { return a.Rate() * 100 }

// StepBank applies the paper's protocol — predict, compare, update — for
// one event across a bank of predictors, incrementing correct[i] when
// predictor i was right. It is the per-event edge of the batch execution
// layer: it steps through the same stepOne helper Bank's fallback path
// uses, and bank_parity_test.go pins it against every native batch
// kernel, so offline replay, the drive -verify check and the serving
// layer can never drift apart. Streams long enough to batch should go
// through Bank.StepBatch instead.
func StepBank(ps []Predictor, correct []uint64, pc, value uint64) {
	for i, p := range ps {
		correct[i] += stepOne(p, pc, value)
	}
}

// runChunk bounds the batch the Run wrappers feed the bank at once, so a
// multi-million-event stream does not force an equally large grouping
// arena.
const runChunk = 4096

// Run drives a predictor over a value stream and returns its accuracy.
// It is a thin wrapper over the batch path: the stream is fed to a
// single-predictor Bank in bounded chunks.
func Run(p Predictor, pcs []uint64, values []uint64) Accuracy {
	n := len(pcs)
	if len(values) < n {
		n = len(values)
	}
	b := NewBank(p)
	for off := 0; off < n; off += runChunk {
		end := off + runChunk
		if end > n {
			end = n
		}
		b.StepBatch(pcs[off:end], values[off:end])
	}
	return Accuracy{Correct: b.correct[0], Total: uint64(n)}
}

// RunSequence drives a predictor over a single-instruction value sequence
// (all events share one PC), the setting of the paper's Table 1 analysis.
// Like Run it wraps the batch path; with one static instruction each
// chunk is a single maximal same-PC run.
func RunSequence(p Predictor, values []uint64) Accuracy {
	b := NewBank(p)
	var pcs [runChunk]uint64 // all zero: the sequence's single PC
	for off := 0; off < len(values); off += runChunk {
		end := off + runChunk
		if end > len(values) {
			end = len(values)
		}
		b.StepBatch(pcs[:end-off], values[off:end])
	}
	return Accuracy{Correct: b.correct[0], Total: uint64(len(values))}
}
