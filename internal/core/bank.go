package core

// This file is the batch-first execution layer. A Bank owns a predictor
// set, its per-predictor correct counters and the reusable scratch arenas
// batching needs; StepBatch is the single step path shared by the engine's
// fan-out workers, the serving tier's shard loop, warm-restart replay and
// the offline Run/RunSequence wrappers, so none of them can drift from the
// paper's predict → compare → update protocol.
//
// The batch is grouped by PC before any predictor sees it: one probe of
// the bank's pc table per event builds contiguous same-PC value runs, and
// each predictor with a native batch kernel (BatchPredictor) then pays a
// single probe of its own table per distinct PC per batch instead of one
// per event, with a fused predict/compare/update inner loop over the run.
// Grouping reorders events across PCs — never within one — which is
// exactly the transformation PC-local predictors are invariant under (the
// same property that lets the serving tier shard by hash(pc)). Predictors
// without a kernel are fed per event in original stream order, so
// cross-PC (aliasing) predictors like the bounded FCM stay bit-exact too.

import "repro/internal/core/kernel"

// BatchPredictor is implemented by predictors with a native fused batch
// kernel over a same-PC run of values.
//
// StepRun applies the paper's per-event protocol — predict, compare,
// update — to every value in order, for the single static instruction at
// pc. hits must have len(values) slots; hits[k] is set to 1 when the
// prediction for values[k] was correct and 0 otherwise, and the return
// value is the total number of correct predictions.
//
// Implementing this interface asserts that the predictor's state is
// strictly per-PC (NamedFactory.PCLocal): a Bank may reorder events
// across PCs between kernels, never within one PC. A predictor whose
// safety is conditional (e.g. a hybrid over arbitrary components) may
// additionally implement BatchSafe() bool; when it reports false the bank
// falls back to the per-event path.
type BatchPredictor interface {
	Predictor
	StepRun(pc uint64, values []uint64, hits []byte) uint64
}

// RunObserver is an optional tap on the bank's batch execution: after a
// batch's predictors have all stepped, ObserveRun is called once per
// same-PC value run with the run's values (stream order preserved within
// the PC) and, per predictor in bank order, one hit byte per value
// (1 = that predictor predicted it correctly). Runs are delivered in the
// batch's first-appearance PC order, and a PC's runs arrive in stream
// order across batches, so an observer sees exactly the per-static-
// instruction value subsequences the paper's analysis is defined over.
//
// The slices are the bank's reused arenas: observers must consume them
// during the call and retain nothing. Observation rides inside the
// zero-alloc batch path (see TestBankObserverZeroAlloc), so ObserveRun
// implementations are expected to be allocation-free in steady state too.
type RunObserver interface {
	ObserveRun(pc uint64, values []uint64, hits [][]byte)
}

// SetObserver attaches (or, with nil, detaches) a run observer. Not safe
// to call concurrently with StepBatch.
func (b *Bank) SetObserver(o RunObserver) {
	b.obs = o
	if o != nil && b.obsHits == nil {
		b.obsHits = make([][]byte, len(b.preds))
		b.obsRows = make([][]byte, len(b.preds))
	}
}

// Observer returns the attached run observer, nil when none.
func (b *Bank) Observer() RunObserver { return b.obs }

// batchOf returns p's native batch kernel when it has one and its batched
// execution is currently safe, nil otherwise.
func batchOf(p Predictor) BatchPredictor {
	bp, ok := p.(BatchPredictor)
	if !ok {
		return nil
	}
	if g, ok := p.(interface{ BatchSafe() bool }); ok && !g.BatchSafe() {
		return nil
	}
	return bp
}

// b2u8 is the branch-free bool→{0,1} conversion the kernels' inner
// compare/count loops are written around.
func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// roundUp8 rounds a buffer length up to a multiple of 8 — the SWAR
// kernels' block width — so grouped runs of any length sit in buffers
// with whole blocks of capacity behind them.
func roundUp8(n int) int {
	return (n + 7) &^ 7
}

// stepOne applies the per-event protocol for one predictor and returns 1
// on a correct prediction. It is the per-event reference the batch
// kernels are parity-tested against (bank_parity_test.go) and the
// fallback path for predictors without a native kernel.
func stepOne(p Predictor, pc, value uint64) uint64 {
	pred, ok := p.Predict(pc)
	p.Update(pc, value)
	if ok && pred == value {
		return 1
	}
	return 0
}

// Bank executes a predictor set over batched (pc, value) streams,
// accumulating per-predictor correct counts. All scratch is owned by the
// bank and reused, so StepBatch is allocation-free in steady state. A
// Bank is not safe for concurrent use; give each goroutine its own.
type Bank struct {
	preds   []Predictor
	runs    []BatchPredictor // per predictor; nil = per-event fallback
	correct []uint64
	events  uint64

	// Grouping arenas. idx maps a PC to a dense handle that persists
	// across batches (it only ever grows, like predictor tables); epoch
	// stamps mark which handles appeared in the current batch so nothing
	// is cleared between batches.
	idx    pcTable
	epoch  []uint64 // per handle: stamp of the last batch that saw it
	gid    []int32  // per handle: group index within the current batch
	stamp  uint64   // current batch number
	egid   []int32  // per event: its group index
	gpc    []uint64 // per group: the PC
	cnt    []int32  // per group: event count, then the fill cursor
	starts []int32  // per group: offset of its run (len = groups+1)
	order  []int32  // event indices, grouped by PC, per-PC order kept
	gvals  []uint64 // values, gathered into contiguous same-PC runs
	hits   []byte   // per-event hit scratch, grouped order

	// Observer state: when obs is attached every predictor's hits are
	// retained per batch (one grouped-order row per predictor) so each
	// same-PC run can be delivered with all predictors' outcomes at once.
	obs     RunObserver
	obsHits [][]byte // per predictor: grouped-order hit row, reused
	obsRows [][]byte // per-run hits argument, refilled per run
	obsTmp  []byte   // original-order scratch for fallback predictors

	// Dirty tracking for delta checkpoints: one bit per pc-table handle,
	// set the first time a batch touches that PC (the same once-per-
	// distinct-PC stamp point grouping already pays for). Every predictor
	// in a bank steps every event, so bank granularity is exact for all
	// of them. The bitset only grows when a new PC is inserted, so
	// steady-state marking is allocation-free.
	dirtyOn bool
	dirty   []uint64 // per handle: bit set when touched since ResetDirty
}

// NewBank builds a bank over the given predictors. The slice is retained.
func NewBank(preds ...Predictor) *Bank {
	b := &Bank{
		preds:   preds,
		runs:    make([]BatchPredictor, len(preds)),
		correct: make([]uint64, len(preds)),
	}
	for i, p := range preds {
		b.runs[i] = batchOf(p)
	}
	return b
}

// Predictors returns the bank's predictors in counter order. The returned
// slice is the bank's own; callers must not mutate it.
func (b *Bank) Predictors() []Predictor { return b.preds }

// Correct returns a copy of the per-predictor correct counts accumulated
// since construction or the last Reset.
func (b *Bank) Correct() []uint64 { return append([]uint64(nil), b.correct...) }

// Events returns how many events the bank has stepped.
func (b *Bank) Events() uint64 { return b.events }

// StepBatch applies the predict → compare → update protocol to every
// event, accumulating correct counts. Events beyond min(len(pcs),
// len(values)) are ignored.
func (b *Bank) StepBatch(pcs, values []uint64) {
	b.StepBatchCollect(pcs, values, nil, nil)
}

// StepBatchCollect is StepBatch with per-batch outputs: when counts is
// non-nil, this batch's per-predictor hits are added into it; when
// bits[i] is non-nil (len(bits) must equal the predictor count), its
// first ⌈n/64⌉ words are overwritten with predictor i's per-event
// correctness, bit j set when event j (in the caller's original order)
// was predicted correctly.
func (b *Bank) StepBatchCollect(pcs, values, counts []uint64, bits [][]uint64) {
	n := len(pcs)
	if len(values) < n {
		n = len(values)
	}
	if n == 0 {
		return
	}
	b.events += uint64(n)
	observing := b.obs != nil
	native := false
	anyFallback := false
	for _, r := range b.runs {
		if r != nil {
			native = true
		} else {
			anyFallback = true
		}
	}
	needOrder := observing && anyFallback
	if bits != nil && !needOrder {
		for i, r := range b.runs {
			if r != nil && bits[i] != nil {
				needOrder = true
				break
			}
		}
	}
	// The observer needs the grouped runs even when every predictor takes
	// the per-event fallback, so grouping is forced while one is attached;
	// dirty tracking rides on grouping's per-distinct-PC stamp point, so
	// it forces grouping the same way.
	if native || observing || b.dirtyOn {
		b.group(pcs[:n], values[:n], needOrder)
	}
	if observing {
		for i := range b.obsHits {
			if cap(b.obsHits[i]) < n {
				b.obsHits[i] = make([]byte, roundUp8(n))
			}
		}
		if anyFallback && cap(b.obsTmp) < n {
			b.obsTmp = make([]byte, roundUp8(n))
		}
	}
	nw := (n + 63) / 64
	for i, p := range b.preds {
		var bs []uint64
		if bits != nil && bits[i] != nil {
			bs = bits[i][:nw]
			clear(bs)
		}
		var hit uint64
		if r := b.runs[i]; r != nil {
			hits := b.hits[:n]
			if observing {
				hits = b.obsHits[i][:n]
			}
			for g := 0; g+1 < len(b.starts); g++ {
				lo, hi := b.starts[g], b.starts[g+1]
				hit += r.StepRun(b.gpc[g], b.gvals[lo:hi], hits[lo:hi])
			}
			if bs != nil {
				kernel.Scatter(hits, b.order[:n], bs)
			}
		} else {
			// Fallback predictors must see the stream in original order
			// (cross-PC state); when observing, their per-event hits are
			// recorded in stream order first and scattered into grouped
			// order afterwards through the same order map the bitsets use.
			var tmp []byte
			if observing {
				tmp = b.obsTmp[:n]
			}
			for j := 0; j < n; j++ {
				h := stepOne(p, pcs[j], values[j])
				hit += h
				if tmp != nil {
					tmp[j] = byte(h)
				}
				if bs != nil && h != 0 {
					bs[j>>6] |= 1 << (uint(j) & 63)
				}
			}
			if observing {
				row := b.obsHits[i][:n]
				for at, idx := range b.order[:n] {
					row[at] = tmp[idx]
				}
			}
		}
		b.correct[i] += hit
		if counts != nil {
			counts[i] += hit
		}
	}
	if observing {
		rows := b.obsRows
		for g := 0; g+1 < len(b.starts); g++ {
			lo, hi := b.starts[g], b.starts[g+1]
			for i := range rows {
				rows[i] = b.obsHits[i][lo:hi]
			}
			b.obs.ObserveRun(b.gpc[g], b.gvals[lo:hi], rows)
		}
	}
}

// group buckets one batch by PC: a counting sort over the bank's pc
// table, stable within each PC, leaving contiguous per-PC value runs in
// gvals. The original event index of every grouped slot is recorded in
// order only when a bitset output needs the scatter map back to stream
// positions (needOrder).
func (b *Bank) group(pcs, values []uint64, needOrder bool) {
	n := len(pcs)
	b.stamp++
	b.gpc = b.gpc[:0]
	b.cnt = b.cnt[:0]
	if cap(b.egid) < n {
		b.egid = make([]int32, roundUp8(n))
	}
	egid := b.egid[:n]
	for j, pc := range pcs {
		h, ok := b.idx.lookup(pc)
		if !ok {
			h = b.idx.insert(pc)
			b.epoch = append(b.epoch, 0)
			b.gid = append(b.gid, 0)
		}
		if b.epoch[h] != b.stamp {
			b.epoch[h] = b.stamp
			b.gid[h] = int32(len(b.gpc))
			b.gpc = append(b.gpc, pc)
			b.cnt = append(b.cnt, 0)
			if b.dirtyOn {
				b.markDirty(h)
			}
		}
		g := b.gid[h]
		b.cnt[g]++
		egid[j] = g
	}
	ng := len(b.gpc)
	if cap(b.starts) < ng+1 {
		b.starts = make([]int32, ng+1)
	}
	starts := b.starts[:ng+1]
	starts[0] = 0
	for g := 0; g < ng; g++ {
		starts[g+1] = starts[g] + b.cnt[g]
	}
	b.starts = starts
	// Run buffers are sized to a multiple of 8, so word-parallel
	// kernels always have whole blocks of capacity behind any
	// odd-length run and never need a scalar tail-guard copy.
	if cap(b.order) < n {
		na := roundUp8(n)
		b.order = make([]int32, na)
		b.gvals = make([]uint64, na)
		b.hits = make([]byte, na)
	}
	gvals := b.gvals[:n]
	fill := b.cnt // repurpose the counts as fill cursors
	copy(fill, starts[:ng])
	if needOrder {
		order := b.order[:n]
		for j := 0; j < n; j++ {
			g := egid[j]
			at := fill[g]
			order[at] = int32(j)
			gvals[at] = values[j]
			fill[g] = at + 1
		}
		return
	}
	for j := 0; j < n; j++ {
		g := egid[j]
		at := fill[g]
		gvals[at] = values[j]
		fill[g] = at + 1
	}
}

// Reset clears the correct counters, the event count and the grouping
// index (keeping all capacity), and resets every predictor that supports
// in-place reset. It reports whether every predictor was reset; when
// false the caller must rebuild the non-Resetter predictors itself.
func (b *Bank) Reset() bool {
	ok := true
	for _, p := range b.preds {
		if r, can := p.(Resetter); can {
			r.Reset()
		} else {
			ok = false
		}
	}
	clear(b.correct)
	b.events = 0
	b.idx.reset()
	b.epoch = b.epoch[:0]
	b.gid = b.gid[:0]
	b.stamp = 0
	b.dirty = b.dirty[:0]
	return ok
}

// SetDirtyTracking turns per-PC dirty tracking on or off. While on, every
// PC touched by a batch is marked in a bitset that SaveState chunking
// reads through PCDirty; marking piggybacks on batch grouping's existing
// once-per-distinct-PC stamp and adds zero steady-state allocations
// (TestBankDirtyTrackingZeroAlloc). Not safe to call concurrently with
// StepBatch.
func (b *Bank) SetDirtyTracking(on bool) {
	b.dirtyOn = on
	if !on {
		b.dirty = b.dirty[:0]
	}
}

func (b *Bank) markDirty(h int32) {
	w := int(h) >> 6
	for w >= len(b.dirty) {
		b.dirty = append(b.dirty, 0)
	}
	b.dirty[w] |= 1 << (uint(h) & 63)
}

// PCDirty reports whether pc has been stepped since the last ResetDirty.
// A PC the bank has never grouped (including PCs that exist only in
// predictor state loaded by LoadState) is clean by definition: nothing
// has mutated it through this bank.
func (b *Bank) PCDirty(pc uint64) bool {
	h, ok := b.idx.lookup(pc)
	if !ok {
		return false
	}
	w := int(h) >> 6
	if w >= len(b.dirty) {
		return false
	}
	return b.dirty[w]&(1<<(uint(h)&63)) != 0
}

// ResetDirty clears all dirty bits (keeping capacity). Callers snapshot
// state first, then reset, so the bits always cover "since the last cut".
func (b *Bank) ResetDirty() {
	clear(b.dirty)
}

// PCCount returns how many distinct PCs the bank has grouped. The pc
// table never deletes, so an unchanged count between two cuts proves the
// PC membership — and therefore every predictor's record layout and
// chunk partition — is unchanged, which is the precondition for skipping
// clean chunks in a delta save.
func (b *Bank) PCCount() int { return b.idx.len() }
