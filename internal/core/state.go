package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Stateful is the durability capability: a predictor that can serialize
// its entire learned state and later restore it exactly. The tables a
// predictor accumulates are the compressed summary of the past that
// carries all of its predictive information about the future (Bialek &
// Tishby's framing), so persisting them is what lets a restarted service
// skip the cold-start learning period the paper measures.
//
// The contract is exactness: after
//
//	a.SaveState(w); b.LoadState(r)   // b fresh from the same factory
//
// a and b must be behaviorally indistinguishable — every subsequent
// Predict/Update sequence produces identical results — and SaveState must
// be canonical: saving b again yields byte-identical output. LoadState
// replaces any existing state (implicit Reset) and must fail cleanly on
// malformed input: no panics, and allocations proportional to the bytes
// actually consumed, never to unvalidated counts from the input.
//
// The encoding is a varint-packed stream private to each predictor type;
// framing, versioning and checksums live one layer up in
// internal/snapshot. Every predictor in the registry implements Stateful
// (registry tests enforce it).
type Stateful interface {
	SaveState(w io.Writer) error
	LoadState(r io.Reader) error
}

// PerPC is implemented by predictors that can report their per-PC table
// occupancy: how many internal entries (contexts, counters, history
// slots) each static instruction currently owns. Offline snapshot
// inspection (cmd/vpstate) uses it for per-PC entry counts and
// cross-snapshot drift. Predictors whose tables alias across PCs (the
// bounded variants) have no per-PC attribution and return nil.
type PerPC interface {
	PCEntries() map[uint64]int
}

// errState wraps state-decoding failures with the predictor name.
func errState(name string, err error) error {
	return fmt.Errorf("core: %s state: %w", name, err)
}

// errDuplicatePC flags a state stream whose delta-encoded PC sequence
// revisits a PC. Canonical saves iterate strictly ascending PCs, so this
// only appears in corrupt or hand-built input; the flat tables reject it
// rather than silently keeping one of the records.
func errDuplicatePC(pc uint64) error {
	return fmt.Errorf("duplicate pc %#x in state", pc)
}

// stateEncoder accumulates a varint-packed state stream and writes it out
// in one call; errors are sticky so encode paths stay linear.
type stateEncoder struct {
	buf []byte
}

func (e *stateEncoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// bytes appends raw bytes with no length prefix; the decoder must know
// the length from context (e.g. fixed-width FCM context keys).
func (e *stateEncoder) bytes(b []byte) {
	e.buf = append(e.buf, b...)
}

// blob appends a length-prefixed byte string, the framing used to nest
// one predictor's state stream inside another's (hybrid components).
func (e *stateEncoder) blob(b []byte) {
	e.uvarint(uint64(len(b)))
	e.bytes(b)
}

// le64 appends v as 8 little-endian bytes — the fixed-width wire form of
// one FCM context value. Streaming values this way keeps the canonical
// full-concatenation encoding while never materializing the string keys
// the original map-backed tables concatenated per context.
func (e *stateEncoder) le64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *stateEncoder) flushTo(w io.Writer) error {
	_, err := w.Write(e.buf)
	return err
}

// stateDecoder reads a varint-packed state stream with sticky errors. It
// distinguishes truncation (io.ErrUnexpectedEOF) from overflowing varints
// and exposes expectEOF so callers can reject trailing garbage.
type stateDecoder struct {
	r   *bufio.Reader
	err error
}

func newStateDecoder(r io.Reader) *stateDecoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &stateDecoder{r: br}
}

func (d *stateDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	var v uint64
	for shift := uint(0); ; shift += 7 {
		b, err := d.r.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			d.err = err
			return 0
		}
		if shift == 63 && b > 1 {
			d.err = errors.New("varint overflows uint64")
			return 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
	}
}

// count decodes a collection length and validates it against max, keeping
// allocation decisions honest even on hostile input.
func (d *stateDecoder) count(max uint64) uint64 {
	n := d.uvarint()
	if d.err == nil && n > max {
		d.err = fmt.Errorf("count %d exceeds limit %d", n, max)
	}
	if d.err != nil {
		return 0
	}
	return n
}

// bytes reads exactly n raw bytes. The result grows in bounded chunks so
// a hostile length can never force an allocation larger than the bytes
// actually present in the input.
func (d *stateDecoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	const chunk = 64 << 10
	out := make([]byte, 0, min(n, chunk))
	for uint64(len(out)) < n {
		want := min(n-uint64(len(out)), chunk)
		start := len(out)
		out = append(out, make([]byte, want)...)
		if _, err := io.ReadFull(d.r, out[start:]); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			d.err = err
			return nil
		}
	}
	return out
}

// blob reads a length-prefixed byte string written by stateEncoder.blob.
func (d *stateDecoder) blob() []byte {
	return d.bytes(d.uvarint())
}

// le64 reads one fixed-width little-endian uint64 (the inverse of
// stateEncoder.le64), with no per-value allocation.
func (d *stateDecoder) le64() uint64 {
	if d.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		d.err = err
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

// expectEOF fails unless the stream is fully consumed.
func (d *stateDecoder) expectEOF() error {
	if d.err != nil {
		return d.err
	}
	if _, err := d.r.ReadByte(); err == nil {
		return errors.New("trailing bytes after state")
	} else if !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// The canonical SaveState iteration order (ascending PCs) is produced by
// sortedHandles in pctable.go, working from each predictor's handle-order
// PC slab instead of map keys.
