package core

import (
	"testing"
)

// recordingObserver reassembles, per PC, the value subsequence and each
// predictor's hit bytes as delivered run by run.
type recordingObserver struct {
	vals map[uint64][]uint64
	hits map[uint64][][]byte // per PC: one hit slice per predictor
	runs int
}

func newRecordingObserver(npred int) *recordingObserver {
	return &recordingObserver{
		vals: make(map[uint64][]uint64),
		hits: make(map[uint64][][]byte),
	}
}

func (o *recordingObserver) ObserveRun(pc uint64, values []uint64, hits [][]byte) {
	o.runs++
	o.vals[pc] = append(o.vals[pc], values...)
	rows := o.hits[pc]
	if rows == nil {
		rows = make([][]byte, len(hits))
		o.hits[pc] = rows
	}
	for i, h := range hits {
		if len(h) != len(values) {
			panic("observer: hit row length != run length")
		}
		rows[i] = append(rows[i], h...)
	}
}

// observerStream builds a mixed stream over a few PCs: strides, constants
// and an irregular repeat, interleaved so runs are short and frequent.
func observerStream(n int) (pcs, vals []uint64) {
	pcs = make([]uint64, n)
	vals = make([]uint64, n)
	for i := 0; i < n; i++ {
		pc := uint64(i % 7)
		pcs[i] = pc
		switch pc % 3 {
		case 0:
			vals[i] = uint64(i) * 4
		case 1:
			vals[i] = 99
		default:
			vals[i] = NonStride4[i%4]
		}
	}
	return pcs, vals
}

// TestBankObserverParity pins three properties of the observer tap: it
// does not change any predictor's tallies, it sees every PC's exact value
// subsequence in stream order, and its hit bytes agree event-for-event
// with an independent per-event reference run — including for fallback
// (non-batch) predictors, whose hits are scattered back into run order.
func TestBankObserverParity(t *testing.T) {
	mk := func() []Predictor {
		return []Predictor{
			NewLastValue(),
			NewStride2Delta(),
			NewFCM(2),
			NewBoundedFCM(3, 12, 18), // no batch kernel: per-event fallback
		}
	}
	pcs, vals := observerStream(4096)

	plain := NewBank(mk()...)
	observed := NewBank(mk()...)
	obs := newRecordingObserver(4)
	observed.SetObserver(obs)

	for _, batch := range []int{1, 3, 64, 1000} {
		for off := 0; off < len(pcs); off += batch {
			end := min(off+batch, len(pcs))
			plain.StepBatch(pcs[off:end], vals[off:end])
			observed.StepBatch(pcs[off:end], vals[off:end])
		}
	}

	pc, oc := plain.Correct(), observed.Correct()
	for i := range pc {
		if pc[i] != oc[i] {
			t.Errorf("predictor %d: observer changed tally: %d vs %d", i, oc[i], pc[i])
		}
	}
	if obs.runs == 0 {
		t.Fatal("observer saw no runs")
	}

	// Per-event reference: fresh predictors stepped one event at a time,
	// accumulating per-PC subsequences and hit bytes.
	refPreds := mk()
	refVals := make(map[uint64][]uint64)
	refHits := make(map[uint64][][]byte)
	for r := 0; r < 4; r++ { // same four passes as above
		for j := range pcs {
			pcv, v := pcs[j], vals[j]
			refVals[pcv] = append(refVals[pcv], v)
			rows := refHits[pcv]
			if rows == nil {
				rows = make([][]byte, len(refPreds))
				refHits[pcv] = rows
			}
			for i, p := range refPreds {
				rows[i] = append(rows[i], byte(stepOne(p, pcv, v)))
			}
		}
	}
	for pcv, want := range refVals {
		got := obs.vals[pcv]
		if len(got) != len(want) {
			t.Fatalf("pc %d: observer saw %d values, want %d", pcv, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("pc %d event %d: observer value %d, want %d", pcv, k, got[k], want[k])
			}
		}
		for i := range refPreds {
			gh, wh := obs.hits[pcv][i], refHits[pcv][i]
			for k := range wh {
				if gh[k] != wh[k] {
					t.Fatalf("pc %d pred %d event %d: observer hit %d, want %d", pcv, i, k, gh[k], wh[k])
				}
			}
		}
	}
}

// TestBankObserverAllFallback exercises the grouping path that only the
// observer forces: a bank of exclusively non-batch predictors still
// delivers grouped runs.
func TestBankObserverAllFallback(t *testing.T) {
	b := NewBank(NewBoundedFCM(2, 10, 14))
	obs := newRecordingObserver(1)
	b.SetObserver(obs)
	pcs, vals := observerStream(512)
	b.StepBatch(pcs, vals)
	if obs.runs == 0 {
		t.Fatal("no runs delivered for fallback-only bank")
	}
	total := 0
	for _, v := range obs.vals {
		total += len(v)
	}
	if total != len(pcs) {
		t.Fatalf("observer saw %d events, want %d", total, len(pcs))
	}
}
