package core

import "testing"

// TestPredictorsSteadyStateZeroAlloc pins the flat storage layer's core
// property: once every PC, context and value has been seen, the
// predict/update path allocates nothing. The stream is strictly periodic
// over a fixed PC set and fully warmed first, so any allocation reported
// here is a per-event cost, not amortized growth.
func TestPredictorsSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rns := NonStride4 // period-4 repeating values
	preds := []Predictor{
		NewLastValue(),
		NewStride2Delta(),
		NewFCM(1),
		NewFCM(3),
		NewFCM(8),
		NewStrideFCMHybrid(3),
	}
	for _, p := range preds {
		t.Run(p.Name(), func(t *testing.T) {
			step := func(i int) {
				pc := uint64(i % 48)
				v := rns[(uint64(i/48)+pc)%4]
				p.Predict(pc)
				p.Update(pc, v)
			}
			for i := 0; i < 48*16; i++ { // warm every context of every order
				step(i)
			}
			i := 48 * 16
			allocs := testing.AllocsPerRun(200, func() {
				step(i)
				i++
			})
			if allocs != 0 {
				t.Fatalf("%s steady state allocates %.1f allocs per event", p.Name(), allocs)
			}
		})
	}
}

// NonStride4 is a fixed period-4 non-stride value pattern (3 1 4 1 would
// alias a stride; these do not).
var NonStride4 = []uint64{3, 1, 4, 7}

// TestBankSteadyStateZeroAlloc extends the steady-state property to the
// batch execution layer: once every PC, context and value has been seen
// and the grouping arenas have grown to the batch size, Bank.StepBatch
// allocates nothing.
func TestBankSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rns := NonStride4
	b := NewBank(
		NewLastValue(),
		NewStride2Delta(),
		NewFCM(3),
		NewStrideFCMHybrid(3),
	)
	const batch = 1024
	pcs := make([]uint64, batch)
	vals := make([]uint64, batch)
	counts := make([]uint64, 4)
	bits := [][]uint64{nil, nil, make([]uint64, (batch+63)/64), nil}
	fill := func(base int) {
		for j := 0; j < batch; j++ {
			i := base + j
			pc := uint64(i % 48)
			pcs[j] = pc
			vals[j] = rns[(uint64(i/48)+pc)%4]
		}
	}
	for it := 0; it < 16; it++ { // warm every PC, context and arena
		fill(it * batch)
		b.StepBatch(pcs, vals)
	}
	it := 16
	allocs := testing.AllocsPerRun(100, func() {
		fill(it * batch)
		b.StepBatchCollect(pcs, vals, counts, bits)
		it++
	})
	if allocs != 0 {
		t.Fatalf("bank steady state allocates %.1f allocs per batch", allocs)
	}
}

// countingObserver is the cheapest possible RunObserver: it only tallies,
// so any allocation reported by the gate below belongs to the Bank's
// observer plumbing, not the observer itself.
type countingObserver struct {
	runs, events, hits uint64
}

func (o *countingObserver) ObserveRun(pc uint64, values []uint64, hits [][]byte) {
	o.runs++
	o.events += uint64(len(values))
	for _, row := range hits {
		for _, h := range row {
			o.hits += uint64(h)
		}
	}
}

// TestBankObserverZeroAlloc is the CI gate for the observer hook: in
// steady state Bank.StepBatch must allocate nothing both with a nil
// observer (the default hot path) and with one attached (the grouped hit
// rows and fallback scatter buffers are reused across batches). The bank
// includes a fallback-only predictor so the original-order scratch path
// is covered too.
func TestBankObserverZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rns := NonStride4
	for _, attached := range []bool{false, true} {
		name := "nil-observer"
		if attached {
			name = "attached-observer"
		}
		t.Run(name, func(t *testing.T) {
			b := NewBank(
				NewLastValue(),
				NewStride2Delta(),
				NewFCM(3),
				NewBoundedFCM(3, 12, 18), // per-event fallback: scatter path
			)
			obs := &countingObserver{}
			if attached {
				b.SetObserver(obs)
			}
			const batch = 1024
			pcs := make([]uint64, batch)
			vals := make([]uint64, batch)
			fill := func(base int) {
				for j := 0; j < batch; j++ {
					i := base + j
					pc := uint64(i % 48)
					pcs[j] = pc
					vals[j] = rns[(uint64(i/48)+pc)%4]
				}
			}
			for it := 0; it < 16; it++ {
				fill(it * batch)
				b.StepBatch(pcs, vals)
			}
			it := 16
			allocs := testing.AllocsPerRun(100, func() {
				fill(it * batch)
				b.StepBatch(pcs, vals)
				it++
			})
			if allocs != 0 {
				t.Fatalf("%s: steady state allocates %.1f allocs per batch", name, allocs)
			}
			if attached && obs.events == 0 {
				t.Fatal("observer saw no events")
			}
		})
	}
}
