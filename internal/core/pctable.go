package core

import (
	"sort"

	"repro/internal/arena"
)

// This file holds the flat storage primitives shared by every predictor in
// the package: an open-addressed PC index and the small hash/sort helpers
// the slab-backed tables are built from. The design replaces the original
// map[uint64]*entry layout (one heap object and two pointer hops per PC)
// with a single probe into a power-of-two slot array that yields a dense
// int32 handle into a contiguous slab, so the hot predict/update path does
// no allocation and at most one dependent cache miss per level.

// pcTableMinSize is the initial slot-array size (power of two).
const pcTableMinSize = 16

// mix64 is the splitmix64 finalizer, the same mixer the serving tier uses
// to shard PCs: cheap, invertible and well distributed, so consecutive PCs
// from tight loops spread across slots.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// pcSlot is one open-addressing slot. ref is the dense handle plus one, so
// the zero value means empty and PC 0 needs no special casing.
type pcSlot struct {
	pc  uint64
	ref int32
}

// pcTable maps a PC to the dense int32 handle of its slab entry: linear
// probing over a power-of-two slot array, grown at 3/4 load, with no
// deletion (predictor tables only grow; Reset clears wholesale). Handles
// are assigned in insertion order, so n is both the tracked-PC count and
// the handle the next insert will return — callers keep their slabs in
// lockstep by appending one entry per insert.
type pcTable struct {
	slots []pcSlot
	n     int
	arena *arena.Arena // optional slab backing for the slot array; nil = heap
}

// lookup returns the handle for pc, if present.
func (t *pcTable) lookup(pc uint64) (int32, bool) {
	if len(t.slots) == 0 {
		return 0, false
	}
	mask := uint64(len(t.slots) - 1)
	for i := mix64(pc) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.ref == 0 {
			return 0, false
		}
		if s.pc == pc {
			return s.ref - 1, true
		}
	}
}

// insert adds pc (which must not be present) and returns its new handle.
func (t *pcTable) insert(pc uint64) int32 {
	if 4*(t.n+1) > 3*len(t.slots) {
		t.grow()
	}
	h := int32(t.n)
	t.n++
	mask := uint64(len(t.slots) - 1)
	for i := mix64(pc) & mask; ; i = (i + 1) & mask {
		if t.slots[i].ref == 0 {
			t.slots[i] = pcSlot{pc: pc, ref: h + 1}
			return h
		}
	}
}

func (t *pcTable) grow() {
	size := pcTableMinSize
	if len(t.slots) > 0 {
		size = 2 * len(t.slots)
	}
	old := t.slots
	t.slots = arena.Make[pcSlot](t.arena, size)
	mask := uint64(size - 1)
	for _, s := range old {
		if s.ref == 0 {
			continue
		}
		for i := mix64(s.pc) & mask; ; i = (i + 1) & mask {
			if t.slots[i].ref == 0 {
				t.slots[i] = s
				break
			}
		}
	}
	arena.Free(t.arena, old)
}

// reset empties the table in place, keeping the slot array's capacity.
func (t *pcTable) reset() {
	clear(t.slots)
	t.n = 0
}

// len returns the number of tracked PCs.
func (t *pcTable) len() int { return t.n }

// sortedHandles returns slab handles ordered by ascending PC — the
// canonical SaveState iteration order. pcs is the predictor's
// handle-order slab of PCs; the input is not modified.
func sortedHandles(pcs []uint64) []int32 {
	hs := make([]int32, len(pcs))
	for i := range hs {
		hs[i] = int32(i)
	}
	sort.Slice(hs, func(i, j int) bool { return pcs[hs[i]] < pcs[hs[j]] })
	return hs
}

// onePerPC is the PCEntries implementation shared by every predictor whose
// slab holds exactly one entry per tracked PC.
func onePerPC(pcs []uint64) map[uint64]int {
	out := make(map[uint64]int, len(pcs))
	for _, pc := range pcs {
		out[pc] = 1
	}
	return out
}

// PCIndex maps PCs to dense int32 handles assigned in insertion order —
// the flat-slab primitive every predictor's storage is built on, exported
// so sibling packages (e.g. the predictability tracker) can keep their
// own parallel slabs in lockstep without reinventing the probe loop.
// The zero value is an empty index.
type PCIndex struct {
	t pcTable
}

// Lookup returns the handle for pc, if present.
func (x *PCIndex) Lookup(pc uint64) (int32, bool) { return x.t.lookup(pc) }

// Insert adds pc (which must not be present) and returns its new handle:
// always the current Len, so callers grow their slabs by one entry per
// insert.
func (x *PCIndex) Insert(pc uint64) int32 { return x.t.insert(pc) }

// Len returns the number of tracked PCs.
func (x *PCIndex) Len() int { return x.t.len() }

// Reset empties the index in place, keeping capacity.
func (x *PCIndex) Reset() { x.t.reset() }

// PCSet is an open-addressed set of PCs for hot-path membership tracking
// (the serving tier's unique-PC accounting): Add is allocation-free in
// steady state, unlike inserting into a map[uint64]struct{} on every
// event. The zero value is an empty set.
type PCSet struct {
	t pcTable
}

// Add inserts pc, reporting whether it was new.
func (s *PCSet) Add(pc uint64) bool {
	if _, ok := s.t.lookup(pc); ok {
		return false
	}
	s.t.insert(pc)
	return true
}

// Contains reports membership.
func (s *PCSet) Contains(pc uint64) bool {
	_, ok := s.t.lookup(pc)
	return ok
}

// Len returns the number of members.
func (s *PCSet) Len() int { return s.t.len() }

// AppendSorted appends the members in ascending order to dst.
func (s *PCSet) AppendSorted(dst []uint64) []uint64 {
	start := len(dst)
	for _, sl := range s.t.slots {
		if sl.ref != 0 {
			dst = append(dst, sl.pc)
		}
	}
	tail := dst[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return dst
}

// Reset empties the set in place, keeping capacity.
func (s *PCSet) Reset() { s.t.reset() }
