package core

import (
	"fmt"
	"io"
	"math/bits"
	"sort"

	"repro/internal/arena"
	"repro/internal/core/kernel"
)

// MaxFCMOrder bounds the context length supported by FCM predictors. The
// paper sweeps orders 1..8 in Figure 11.
const MaxFCMOrder = 16

// FCM is the finite context method predictor of Section 2.2 as simulated
// in the paper: per static instruction it keeps, for every context (an
// ordered sequence of the most recent k values), exact occurrence counts
// of each value that followed that context. The predicted value is the one
// with the maximum count (most recently observed wins ties).
//
// An order-k FCM internally blends orders k..0 ("n different fcm
// predictors of orders 0 to n-1"): the prediction comes from the highest
// order whose context has been observed before, and updates follow the
// lazy-exclusion rule — only the matched order and all higher orders have
// their counts updated. Context matching is exact (full value sequences
// are compared, never just hashes), so there is no aliasing, exactly as
// the paper requires.
//
// Storage is flat and allocation-free in steady state: per-PC state lives
// in a slab indexed by one open-addressed pc→handle table, contexts live
// in per-order slabs indexed by open-addressed signature tables, and the
// (value, count) lists are handle-linked nodes in a shared slab. The
// context signature of every order is maintained incrementally — O(1) per
// order per event — instead of re-concatenating the history, and each
// signature hit is verified against the stored full context before it
// counts as a match.
type FCM struct {
	order int
	blend bool
	fcmStore
	// saveOrder caches the ascending-PC handle order between chunked
	// saves; revalidated against the current pcs slab on every use, so
	// LoadState's store swap and Reset invalidate it naturally.
	saveOrder []int32
	// groupCache caches each order's ctx→PC bucketing between chunked
	// saves. A context's owning PC never changes and the ctx slabs are
	// append-only between resets, so the bucketing (and any canonical
	// sorting already done on its buckets) stays valid while the PC and
	// context counts are unchanged — which is exactly the steady state
	// delta checkpoints cut in. Reset and LoadState discard it
	// explicitly: counts alone could alias across a store swap.
	groupCache []fcmGroupCache
}

// fcmGroupCache is one order's cached ctx→PC bucketing. Bucket h is
// grouped[starts[h]:starts[h+1]]; sorted[h] records that the bucket is
// already in canonical key order.
type fcmGroupCache struct {
	nctx    int
	grouped []int32
	starts  []int32
	sorted  []bool
}

// fcmStore is the FCM's entire mutable storage, grouped so LoadState can
// build a fresh store and swap it in atomically. Every pointer-free slab
// (pcs, vals, the per-order ctxs/keys/slots, the pcTable slots) grows
// through the store's arena; vidx stays on the heap because fcmValIdx
// holds a slice header the collector must see.
type fcmStore struct {
	idx   pcTable
	pcs   []fcmPCState    // per-PC slab, indexed by pcTable handles
	ords  []fcmOrderStore // per-order context stores, index 0..order
	vals  []fcmVal        // shared (value, count) slab; each context owns one contiguous run
	vidx  []fcmValIdx     // value→ordinal indexes of promoted (large) contexts
	arena *arena.Arena    // slab backing; nil = plain heap
}

// fcmPCState is the per-static-instruction state: the value history, the
// incrementally maintained rolling signature of each order's context, and
// the handle of this PC's order-0 context (-1 until first update).
type fcmPCState struct {
	hist    [MaxFCMOrder]uint64     // most recent values, hist[0] oldest kept
	sigs    [MaxFCMOrder + 1]uint64 // sigs[o] = signature of the last o values (valid for o <= n)
	pc      uint64
	updates uint64 // total updates at this PC (for reporting)
	ctx0    int32  // handle of the order-0 context in ords[0], -1 if none
	n       int32  // how many history values are valid (<= order)
}

// fcmOrderStore holds every context of one order across all PCs: an
// open-addressed signature table over a context slab, plus the exact
// context values (order values per context) for alias-free verification.
// Order 0 uses only the slab (its single per-PC context is addressed
// directly through fcmPCState.ctx0).
//
// Context handles are assigned in insertion order, and within a
// steady-state run a PC re-touches its contexts in the order it first
// learned them — so the ctxs and keys slab offsets a run walks are
// monotonically increasing, which the hardware prefetcher follows.
type fcmOrderStore struct {
	slots []int32      // context handle+1; 0 = empty
	ctxs  []fcmCtxEnt  // context slab; handle order = insertion order
	keys  []uint64     // exact context values, order per context
	arena *arena.Arena // shared with the owning fcmStore; nil = heap
}

// fcmCtxEnt is one context's entry: its signature and owner (for probing
// and rehash), the bounds of its value run in the shared slab, and the
// cached prediction (best value, its list ordinal and count) so Predict
// is one read.
type fcmCtxEnt struct {
	sig     uint64 // rolling signature of the context values
	bestVal uint64 // value at ordinal best (the current prediction)
	pcIdx   int32  // owning PC handle
	valOff  int32  // start of this context's run in the value slab
	valCap  int32  // reserved run length (doubled by relocation when full)
	nvals   int32  // live values in the run
	best    int32  // run ordinal of the prediction
	vh      int32  // value-index handle+1 once promoted; 0 = scan the run
	bestCnt uint32 // count of the prediction's value
}

// fcmVal is one (value, count) pair. Contexts typically see very few
// distinct values, so lists are scanned linearly; keeping each context's
// list as one contiguous slab run makes that scan sequential in memory. A
// full run relocates to a doubled run at the slab's end (the hole is left
// behind), so growth is amortized O(1) with no per-context allocation.
type fcmVal struct {
	value uint64
	count uint32
}

// fcmHashThreshold is the run length past which a context gets a
// value→ordinal hash index: short lists (the overwhelmingly common case)
// stay a sequential scan, while degenerate contexts that accumulate
// thousands of distinct values — e.g. a monotonically counting
// instruction — keep O(1) updates instead of an O(n) rescan per event.
const fcmHashThreshold = 16

// fcmValIdx is the open-addressed value→run-ordinal index of one promoted
// context. Ordinals are stable (runs only append; relocation preserves
// order), so the index never needs repair.
type fcmValIdx struct {
	slots []vhSlot
	n     int
}

type vhSlot struct {
	value uint64
	ref   int32 // run ordinal+1; 0 = empty
}

func (t *fcmValIdx) lookup(v uint64) (int32, bool) {
	if len(t.slots) == 0 {
		return 0, false
	}
	mask := uint64(len(t.slots) - 1)
	for i := mix64(v) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.ref == 0 {
			return 0, false
		}
		if s.value == v {
			return s.ref - 1, true
		}
	}
}

// insert records v at ord; when v is already present the first ordinal is
// kept, mirroring the find-first semantics of the linear scan.
func (t *fcmValIdx) insert(a *arena.Arena, v uint64, ord int32) {
	if 4*(t.n+1) > 3*len(t.slots) {
		t.grow(a)
	}
	mask := uint64(len(t.slots) - 1)
	for i := mix64(v) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.ref == 0 {
			*s = vhSlot{value: v, ref: ord + 1}
			t.n++
			return
		}
		if s.value == v {
			return
		}
	}
}

func (t *fcmValIdx) grow(a *arena.Arena) {
	size := 4 * fcmHashThreshold
	if len(t.slots) > 0 {
		size = 2 * len(t.slots)
	}
	old := t.slots
	t.slots = arena.Make[vhSlot](a, size)
	mask := uint64(size - 1)
	for _, s := range old {
		if s.ref == 0 {
			continue
		}
		for i := mix64(s.value) & mask; ; i = (i + 1) & mask {
			if t.slots[i].ref == 0 {
				t.slots[i] = s
				break
			}
		}
	}
	arena.Free(a, old)
}

// Rolling signature: sig(v1..vo) = Σ sigMix(vi)·sigMult^(o-i) mod 2^64.
// Appending a value shifts every order's signature down one order —
// sig[o] becomes sig[o-1]·sigMult + sigMix(v) — so maintenance is one
// multiply-add per order with no removal term. Signatures only steer
// probing; matches are always verified against the stored context values.
const sigMult = 0x9E3779B97F4A7C15 // odd, high-entropy (2^64 / golden ratio)

func sigMix(v uint64) uint64 { return mix64(v) }

// sigOf computes the signature of a full context from scratch (LoadState
// and verification paths; the hot path rolls signatures incrementally).
func sigOf(vals []uint64) uint64 {
	var s uint64
	for _, v := range vals {
		s = s*sigMult + sigMix(v)
	}
	return s
}

// ctxSlotHash folds a context signature and its owning PC handle into the
// probe start, so equal contexts of different PCs spread apart.
func ctxSlotHash(sig uint64, pcIdx int32) uint64 {
	return mix64(sig ^ uint64(pcIdx)*sigMult)
}

// NewFCM returns an order-k FCM with blending and lazy exclusion, the
// configuration the paper simulates as fcm1/fcm2/fcm3.
func NewFCM(order int) *FCM {
	if order < 0 {
		order = 0
	}
	if order > MaxFCMOrder {
		order = MaxFCMOrder
	}
	return &FCM{order: order, blend: true, fcmStore: newFCMStore(order)}
}

// NewFCMNoBlend returns an order-k FCM without blending: it predicts only
// on an exact order-k context match and updates only the order-k table.
// Used for the blending ablation.
func NewFCMNoBlend(order int) *FCM {
	p := NewFCM(order)
	p.blend = false
	return p
}

func newFCMStore(order int) fcmStore {
	st := fcmStore{
		ords:  make([]fcmOrderStore, order+1),
		arena: arena.New(slabArenaKind),
	}
	st.idx.arena = st.arena
	for i := range st.ords {
		st.ords[i].arena = st.arena
	}
	return st
}

// Name implements Predictor.
func (p *FCM) Name() string {
	if !p.blend {
		return "fcm" + itoa(p.order) + "nb"
	}
	return "fcm" + itoa(p.order)
}

// Order returns the maximum context length of this FCM.
func (p *FCM) Order() int { return p.order }

// itoa converts a small non-negative int without importing strconv.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// find returns the handle of the context with the given exact values, or
// -1. The signature narrows the probe; the stored values decide.
func (st *fcmOrderStore) find(pcIdx int32, sig uint64, key []uint64) int32 {
	if len(st.slots) == 0 {
		return -1
	}
	mask := uint64(len(st.slots) - 1)
	o := len(key)
	for i := ctxSlotHash(sig, pcIdx) & mask; ; i = (i + 1) & mask {
		ref := st.slots[i]
		if ref == 0 {
			return -1
		}
		c := &st.ctxs[ref-1]
		if c.pcIdx != pcIdx || c.sig != sig {
			continue
		}
		k := st.keys[int(ref-1)*o : int(ref)*o]
		match := true
		for j := range k {
			if k[j] != key[j] {
				match = false
				break
			}
		}
		if match {
			return ref - 1
		}
	}
}

// insert adds a context (which must not be present) and returns its
// handle.
func (st *fcmOrderStore) insert(pcIdx int32, sig uint64, key []uint64) int32 {
	if 4*(len(st.ctxs)+1) > 3*len(st.slots) {
		st.grow()
	}
	h := int32(len(st.ctxs))
	st.ctxs = append(arena.Grow(st.arena, st.ctxs, 1), fcmCtxEnt{sig: sig, pcIdx: pcIdx})
	st.keys = append(arena.Grow(st.arena, st.keys, len(key)), key...)
	mask := uint64(len(st.slots) - 1)
	for i := ctxSlotHash(sig, pcIdx) & mask; ; i = (i + 1) & mask {
		if st.slots[i] == 0 {
			st.slots[i] = h + 1
			return h
		}
	}
}

// insertPlain appends a keyless context (order 0; addressed through
// fcmPCState.ctx0, never probed).
func (st *fcmOrderStore) insertPlain(pcIdx int32) int32 {
	h := int32(len(st.ctxs))
	st.ctxs = append(arena.Grow(st.arena, st.ctxs, 1), fcmCtxEnt{pcIdx: pcIdx})
	return h
}

func (st *fcmOrderStore) grow() {
	size := pcTableMinSize
	if len(st.slots) > 0 {
		size = 2 * len(st.slots)
	}
	old := st.slots
	st.slots = arena.Make[int32](st.arena, size)
	mask := uint64(size - 1)
	for h := range st.ctxs {
		c := &st.ctxs[h]
		for i := ctxSlotHash(c.sig, c.pcIdx) & mask; ; i = (i + 1) & mask {
			if st.slots[i] == 0 {
				st.slots[i] = int32(h) + 1
				break
			}
		}
	}
	arena.Free(st.arena, old)
}

// Predict implements Predictor. With blending, the highest order whose
// context has been seen makes the prediction; without, only the full
// order is consulted.
func (p *FCM) Predict(pc uint64) (uint64, bool) {
	h, ok := p.idx.lookup(pc)
	if !ok {
		return 0, false
	}
	v, _, _, ok := p.lookupCtx(&p.pcs[h], h)
	return v, ok
}

// lookupCtx returns the predicted value, the order that matched and the
// matched context's handle within that order's store (so the following
// update does not re-probe it). Context slabs only append, so the handle
// stays valid across the update's own inserts.
func (p *FCM) lookupCtx(s *fcmPCState, pcIdx int32) (value uint64, matched int, hnd int32, ok bool) {
	lowest := p.order
	if p.blend {
		lowest = 0
	}
	for o := p.order; o >= lowest; o-- {
		if o > int(s.n) {
			continue
		}
		var h int32
		if o == 0 {
			if s.ctx0 < 0 {
				continue
			}
			h = s.ctx0
		} else {
			h = p.ords[o].find(pcIdx, s.sigs[o], s.hist[int(s.n)-o:s.n])
			if h < 0 {
				continue
			}
		}
		if c := &p.ords[o].ctxs[h]; c.nvals > 0 {
			return c.bestVal, o, h, true
		}
	}
	return 0, -1, -1, false
}

// updateCtxs applies lazy exclusion for one observed value: the matched
// order (whose context handle lookupCtx already found) and all higher
// orders are updated, then the history and rolling signatures advance.
func (p *FCM) updateCtxs(s *fcmPCState, pcIdx int32, value uint64, matched int, mhnd int32, hit bool) {
	low := 0
	if hit && p.blend {
		low = matched
	}
	if !p.blend {
		low = p.order
	}
	for o := p.order; o >= low; o-- {
		if o > int(s.n) {
			continue
		}
		var hnd int32
		switch {
		case hit && o == matched:
			hnd = mhnd
		case o == 0:
			if s.ctx0 < 0 {
				s.ctx0 = p.ords[0].insertPlain(pcIdx)
			}
			hnd = s.ctx0
		default:
			st := &p.ords[o]
			key := s.hist[int(s.n)-o : s.n]
			hnd = st.find(pcIdx, s.sigs[o], key)
			if hnd < 0 {
				hnd = st.insert(pcIdx, s.sigs[o], key)
			}
		}
		p.addValue(&p.ords[o].ctxs[hnd], value)
	}
	s.pushValue(value, p.order)
	s.updates++
}

// Update implements Predictor, applying lazy exclusion: the matched order
// and all higher orders are updated; lower orders are left untouched.
func (p *FCM) Update(pc uint64, value uint64) {
	pcIdx, ok := p.idx.lookup(pc)
	if !ok {
		pcIdx = p.idx.insert(pc)
		p.pcs = append(arena.Grow(p.arena, p.pcs, 1), fcmPCState{pc: pc, ctx0: -1})
	}
	s := &p.pcs[pcIdx]
	_, matched, mhnd, hit := p.lookupCtx(s, pcIdx)
	p.updateCtxs(s, pcIdx, value, matched, mhnd, hit)
}

// StepRun implements BatchPredictor. Beyond the single pc-table probe per
// run, the fused loop walks the context orders once per event — the walk
// serves both the prediction and the update's matched-order/lazy-
// exclusion decision — where the Predict/Update pair walks them twice.
// Constant stretches (the paper's dominant sequence class) take a bulk
// fast path: once the history is saturated with the repeated value and
// the top-order context predicts it, the per-event step is a fixed
// point of the whole state except one counter, so the entire stretch
// collapses to a single counter addition.
func (p *FCM) StepRun(pc uint64, values []uint64, hits []byte) uint64 {
	if len(values) == 0 {
		return 0
	}
	pcIdx, ok := p.idx.lookup(pc)
	if !ok {
		pcIdx = p.idx.insert(pc)
		p.pcs = append(arena.Grow(p.arena, p.pcs, 1), fcmPCState{pc: pc, ctx0: -1})
	}
	// p.pcs cannot grow during the run (only the insert above appends),
	// so the state pointer is loop-invariant.
	s := &p.pcs[pcIdx]
	order := p.order
	var n uint64
	k := 0
	for k < len(values) {
		v := values[k]
		pred, matched, mhnd, okc := p.lookupCtx(s, pcIdx)
		// Bulk precondition: the top order matched (which implies the
		// history is full), every history value equals v, and the
		// prediction is v. Each scalar step would then (a) hit, (b)
		// update only the matched top-order context under lazy
		// exclusion, (c) bump exactly its cached best value — runs
		// hold distinct values, so the scan lands on ordinal best —
		// and (d) push v into a history already saturated with v,
		// which leaves hist and every rolling signature bit-identical.
		// The whole constant prefix is therefore one count addition.
		if okc && pred == v && matched == order && histConst(s, v, order) {
			m := kernel.ConstPrefixLen(values[k:], v)
			c := &p.ords[order].ctxs[mhnd]
			e := &p.vals[c.valOff+c.best]
			e.count += uint32(m)
			c.bestCnt = e.count
			s.updates += uint64(m)
			kernel.SetOnes(hits[k : k+m])
			n += uint64(m)
			k += m
			continue
		}
		h := b2u8(okc && pred == v)
		hits[k] = h
		n += uint64(h)
		p.updateCtxs(s, pcIdx, v, matched, mhnd, okc)
		k++
	}
	return n
}

// histConst reports whether every valid history value equals v. Newest
// first, so a broken constant stretch exits on the first compare. The
// caller guarantees the history is full (a top-order context match
// implies s.n == order).
func histConst(s *fcmPCState, v uint64, order int) bool {
	for i := order - 1; i >= 0; i-- {
		if s.hist[i] != v {
			return false
		}
	}
	return true
}

// addValue increments the count for v in c's run (appending on first
// sight) and maintains the cached max-count prediction; a just-updated
// value wins ties, giving most-recently-seen tie-breaks. Small runs are
// scanned; promoted contexts go through their value index.
func (st *fcmStore) addValue(c *fcmCtxEnt, v uint64) {
	if c.vh != 0 {
		if ord, ok := st.vidx[c.vh-1].lookup(v); ok {
			st.bumpValue(c, ord)
			return
		}
		st.appendNewValue(c, v)
		st.vidx[c.vh-1].insert(st.arena, v, c.nvals-1)
		return
	}
	run := st.vals[c.valOff : c.valOff+c.nvals]
	for i := range run {
		if run[i].value == v {
			st.bumpValue(c, int32(i))
			return
		}
	}
	st.appendNewValue(c, v)
	if c.nvals >= fcmHashThreshold {
		st.promote(c)
	}
}

// bumpValue increments the count at run ordinal ord and refreshes the
// cached prediction under the most-recently-updated tie-break.
func (st *fcmStore) bumpValue(c *fcmCtxEnt, ord int32) {
	e := &st.vals[c.valOff+ord]
	e.count++
	if e.count >= c.bestCnt {
		c.best, c.bestVal, c.bestCnt = ord, e.value, e.count
	}
}

// appendNewValue appends a first-sighting (count 1) value to c's run.
func (st *fcmStore) appendNewValue(c *fcmCtxEnt, v uint64) {
	if c.nvals == c.valCap {
		st.relocateRun(c)
	}
	st.vals[c.valOff+c.nvals] = fcmVal{value: v, count: 1}
	c.nvals++
	if c.nvals == 1 || c.bestCnt <= 1 {
		c.best, c.bestVal, c.bestCnt = c.nvals-1, v, 1
	}
}

// promote builds c's value index from its current run.
func (st *fcmStore) promote(c *fcmCtxEnt) {
	h := int32(len(st.vidx))
	st.vidx = append(st.vidx, fcmValIdx{})
	t := &st.vidx[h]
	run := st.vals[c.valOff : c.valOff+c.nvals]
	for i := range run {
		t.insert(st.arena, run[i].value, int32(i))
	}
	c.vh = h + 1
}

// relocateRun moves c's value run to a doubled reservation at the slab's
// end. The old run becomes a dead hole; total slab size stays within a
// small constant factor of the live values, the standard doubling
// amortization.
func (st *fcmStore) relocateRun(c *fcmCtxEnt) {
	newCap := int32(1)
	if c.valCap > 0 {
		newCap = 2 * c.valCap
	}
	// Grow first, then copy within the (possibly relocated) slab: the
	// source run must be re-sliced from the grown slab, because Grow
	// unmaps a replaced arena backing as soon as it has copied it.
	st.vals = arena.Grow(st.arena, st.vals, int(newCap))
	off := int32(len(st.vals))
	st.vals = append(st.vals, st.vals[c.valOff:c.valOff+c.nvals]...)
	for i := c.nvals; i < newCap; i++ {
		st.vals = append(st.vals, fcmVal{})
	}
	c.valOff, c.valCap = off, newCap
}

// appendVal tail-appends a value with an explicit count (LoadState path;
// the cached prediction is derived afterwards from the loaded ordinal).
func (st *fcmStore) appendVal(c *fcmCtxEnt, value uint64, count uint32) {
	if c.nvals == c.valCap {
		st.relocateRun(c)
	}
	st.vals[c.valOff+c.nvals] = fcmVal{value: value, count: count}
	c.nvals++
}

// pushValue appends v to the value history and rolls every order's
// signature forward: the new last-o values are the old last-(o-1) values
// followed by v, so sig[o] derives from the old sig[o-1] in one
// multiply-add, independent of the order.
func (s *fcmPCState) pushValue(v uint64, order int) {
	if order == 0 {
		return
	}
	m := sigMix(v)
	for o := order; o >= 1; o-- {
		s.sigs[o] = s.sigs[o-1]*sigMult + m
	}
	if int(s.n) < order {
		s.hist[s.n] = v
		s.n++
		return
	}
	copy(s.hist[:order-1], s.hist[1:order])
	s.hist[order-1] = v
}

// Reset implements Resetter: every slab and table is emptied in place,
// keeping capacity.
func (p *FCM) Reset() {
	p.groupCache = nil
	p.idx.reset()
	p.pcs = p.pcs[:0]
	p.vals = p.vals[:0]
	p.vidx = p.vidx[:0]
	for i := range p.ords {
		st := &p.ords[i]
		clear(st.slots)
		st.ctxs = st.ctxs[:0]
		st.keys = st.keys[:0]
	}
}

// TableEntries implements Sized: static PCs tracked and total contexts
// across all orders.
func (p *FCM) TableEntries() (static, total int) {
	static = p.idx.len()
	for o := range p.ords {
		total += len(p.ords[o].ctxs)
	}
	return static, total
}

// sortedPCHandles returns the per-PC slab handles ordered by ascending PC.
func (p *FCM) sortedPCHandles() []int32 {
	hs := make([]int32, len(p.pcs))
	for i := range hs {
		hs[i] = int32(i)
	}
	sort.Slice(hs, func(i, j int) bool { return p.pcs[hs[i]].pc < p.pcs[hs[j]].pc })
	return hs
}

// ctxKeyLess orders two contexts of the same order by their canonical
// wire form: the lexicographic order of the little-endian concatenation
// of their values, which per value is the numeric order of the
// byte-reversed value.
func (st *fcmOrderStore) ctxKeyLess(o int, a, b int32) bool {
	ka := st.keys[int(a)*o : (int(a)+1)*o]
	kb := st.keys[int(b)*o : (int(b)+1)*o]
	for j := range ka {
		x, y := bits.ReverseBytes64(ka[j]), bits.ReverseBytes64(kb[j])
		if x != y {
			return x < y
		}
	}
	return false
}

// bucketCtxsByPC buckets one order's context handles by owning PC handle
// (counting sort only, buckets unsorted). Bucket i is
// out[starts[i]:starts[i+1]].
func (st *fcmOrderStore) bucketCtxsByPC(npc int) (out []int32, starts []int32) {
	starts = make([]int32, npc+1)
	for i := range st.ctxs {
		starts[st.ctxs[i].pcIdx+1]++
	}
	for i := 1; i <= npc; i++ {
		starts[i] += starts[i-1]
	}
	out = make([]int32, len(st.ctxs))
	fill := make([]int32, npc)
	copy(fill, starts[:npc])
	for i := range st.ctxs {
		pcIdx := st.ctxs[i].pcIdx
		out[fill[pcIdx]] = int32(i)
		fill[pcIdx]++
	}
	return out, starts
}

// sortBucket puts one PC's bucket into canonical key order.
func (st *fcmOrderStore) sortBucket(o int, bucket []int32) {
	sort.Slice(bucket, func(a, b int) bool { return st.ctxKeyLess(o, bucket[a], bucket[b]) })
}

// groupCtxsByPC buckets one order's context handles by owning PC handle
// (counting sort), each bucket sorted in canonical key order. Bucket i is
// out[starts[i]:starts[i+1]].
func (st *fcmOrderStore) groupCtxsByPC(o, npc int) (out []int32, starts []int32) {
	out, starts = st.bucketCtxsByPC(npc)
	for i := 0; i < npc; i++ {
		st.sortBucket(o, out[starts[i]:starts[i+1]])
	}
	return out, starts
}

// encodeCtx emits one context: value-list length, best ordinal, then the
// (value, count) pairs in exact list order — both the order and the best
// index steer future tie-breaks, so they are state, not presentation.
func (p *FCM) encodeCtx(e *stateEncoder, c *fcmCtxEnt) {
	e.uvarint(uint64(c.nvals))
	e.uvarint(uint64(c.best))
	for _, v := range p.vals[c.valOff : c.valOff+c.nvals] {
		e.uvarint(v.value)
		e.uvarint(uint64(v.count))
	}
}

// SaveState implements Stateful. Layout: order and blend flag (validated
// against the receiver's configuration on load), then sorted per-PC
// records: history, update count, and for each order 0..k the context
// table with full-concatenation keys in lexicographic order, streamed
// straight from the key slab with no intermediate string. The encoding is
// byte-identical to the original map-backed implementation's.
func (p *FCM) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(p.order))
	blend := uint64(0)
	if p.blend {
		blend = 1
	}
	e.uvarint(blend)
	e.uvarint(uint64(len(p.pcs)))
	npc := len(p.pcs)
	grouped := make([][]int32, p.order+1)
	starts := make([][]int32, p.order+1)
	for o := 1; o <= p.order; o++ {
		grouped[o], starts[o] = p.ords[o].groupCtxsByPC(o, npc)
	}
	var prev uint64
	for _, h := range p.sortedPCHandles() {
		s := &p.pcs[h]
		e.uvarint(s.pc - prev)
		prev = s.pc
		e.uvarint(uint64(s.n))
		for i := 0; i < int(s.n); i++ {
			e.uvarint(s.hist[i])
		}
		e.uvarint(s.updates)
		if s.ctx0 >= 0 {
			e.uvarint(1)
			p.encodeCtx(&e, &p.ords[0].ctxs[s.ctx0])
		} else {
			e.uvarint(0)
		}
		for o := 1; o <= p.order; o++ {
			st := &p.ords[o]
			bucket := grouped[o][starts[o][h]:starts[o][h+1]]
			e.uvarint(uint64(len(bucket)))
			for _, ch := range bucket {
				for _, kv := range st.keys[int(ch)*o : (int(ch)+1)*o] {
					e.le64(kv) // full concatenation: exactly 8*o bytes
				}
				p.encodeCtx(&e, &st.ctxs[ch])
			}
		}
	}
	return e.flushTo(w)
}

// cachedPCHandles is sortedPCHandles with the saveOrder cache: a cached
// permutation of matching length that is still strictly ascending over
// the current pcs slab is the sorted order (the slab is append-only
// between resets), so a linear pass revalidates it.
func (p *FCM) cachedPCHandles() []int32 {
	hs := p.saveOrder
	if len(hs) == len(p.pcs) {
		ok := true
		var prev uint64
		for i, h := range hs {
			pc := p.pcs[h].pc
			if i > 0 && pc <= prev {
				ok = false
				break
			}
			prev = pc
		}
		if ok {
			return hs
		}
	}
	hs = p.sortedPCHandles()
	p.saveOrder = hs
	return hs
}

// SaveStateChunks implements ChunkedStateful: the exact SaveState stream
// split at per-PC record boundaries. Context handles are counting-sorted
// into per-PC buckets through groupCache — rebuilt only when contexts or
// PCs were added since the previous save — and each bucket's canonical
// key sort runs lazily, only when its PC's record is actually encoded. A
// steady-state delta save therefore skips the record encode of every
// clean chunk and pays no per-save bucketing at all.
func (p *FCM) SaveStateChunks(cs *ChunkSaver) error {
	var hdr stateEncoder
	hdr.uvarint(uint64(p.order))
	blend := uint64(0)
	if p.blend {
		blend = 1
	}
	hdr.uvarint(blend)
	hdr.uvarint(uint64(len(p.pcs)))
	npc := len(p.pcs)
	if p.groupCache == nil {
		p.groupCache = make([]fcmGroupCache, p.order+1)
	}
	for o := 1; o <= p.order; o++ {
		c := &p.groupCache[o]
		if c.nctx != len(p.ords[o].ctxs) || len(c.starts) != npc+1 {
			c.grouped, c.starts = p.ords[o].bucketCtxsByPC(npc)
			c.sorted = make([]bool, npc)
			c.nctx = len(p.ords[o].ctxs)
		}
	}
	hs := p.cachedPCHandles()
	return chunkedSave(cs, hs, func(h int32) uint64 { return p.pcs[h].pc }, &hdr,
		func(e *stateEncoder, h int32) {
			s := &p.pcs[h]
			e.uvarint(uint64(s.n))
			for i := 0; i < int(s.n); i++ {
				e.uvarint(s.hist[i])
			}
			e.uvarint(s.updates)
			if s.ctx0 >= 0 {
				e.uvarint(1)
				p.encodeCtx(e, &p.ords[0].ctxs[s.ctx0])
			} else {
				e.uvarint(0)
			}
			for o := 1; o <= p.order; o++ {
				st := &p.ords[o]
				c := &p.groupCache[o]
				bucket := c.grouped[c.starts[h]:c.starts[h+1]]
				if !c.sorted[h] {
					st.sortBucket(o, bucket)
					c.sorted[h] = true
				}
				e.uvarint(uint64(len(bucket)))
				for _, ch := range bucket {
					for _, kv := range st.keys[int(ch)*o : (int(ch)+1)*o] {
						e.le64(kv)
					}
					p.encodeCtx(e, &st.ctxs[ch])
				}
			}
		})
}

// LoadState implements Stateful. The stream is decoded into a fresh store
// (swapped in only on success, so a failed load leaves the receiver
// untouched) and the rolling signatures are rebuilt from each restored
// history.
func (p *FCM) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	order := d.count(MaxFCMOrder)
	blend := d.count(1)
	if d.err == nil && (int(order) != p.order || (blend == 1) != p.blend) {
		return errState(p.Name(), fmt.Errorf(
			"state is for order %d blend=%v, receiver wants order %d blend=%v",
			order, blend == 1, p.order, p.blend))
	}
	npc := d.uvarint()
	store := newFCMStore(p.order)
	var pc uint64
	for i := uint64(0); i < npc && d.err == nil; i++ {
		pc += d.uvarint()
		if d.err != nil {
			break
		}
		if _, dup := store.idx.lookup(pc); dup {
			return errState(p.Name(), errDuplicatePC(pc))
		}
		pcIdx := store.idx.insert(pc)
		store.pcs = append(arena.Grow(store.arena, store.pcs, 1), fcmPCState{pc: pc, ctx0: -1})
		s := &store.pcs[pcIdx]
		s.n = int32(d.count(uint64(p.order)))
		for j := 0; j < int(s.n); j++ {
			s.hist[j] = d.uvarint()
		}
		s.updates = d.uvarint()
		for o := 1; o <= int(s.n); o++ {
			s.sigs[o] = sigOf(s.hist[int(s.n)-o : s.n])
		}
		var key [MaxFCMOrder]uint64
		for o := 0; o <= p.order && d.err == nil; o++ {
			nctx := d.uvarint()
			for k := uint64(0); k < nctx && d.err == nil; k++ {
				var hnd int32
				if o == 0 {
					if s.ctx0 >= 0 {
						return errState(p.Name(), fmt.Errorf("pc %#x has %d order-0 contexts", pc, nctx))
					}
					s.ctx0 = store.ords[0].insertPlain(pcIdx)
					hnd = s.ctx0
				} else {
					for j := 0; j < o; j++ {
						key[j] = d.le64()
					}
					if d.err != nil {
						break
					}
					sig := sigOf(key[:o])
					st := &store.ords[o]
					if st.find(pcIdx, sig, key[:o]) >= 0 {
						return errState(p.Name(), fmt.Errorf("duplicate order-%d context at pc %#x", o, pc))
					}
					hnd = st.insert(pcIdx, sig, key[:o])
				}
				nv := d.uvarint()
				best := d.uvarint()
				if d.err == nil && best >= max(nv, 1) {
					return errState(p.Name(), fmt.Errorf("best index %d out of range for %d values", best, nv))
				}
				c := &store.ords[o].ctxs[hnd]
				c.best = int32(best)
				for vi := uint64(0); vi < nv && d.err == nil; vi++ {
					value := d.uvarint()
					count := d.count(1<<32 - 1)
					if d.err != nil {
						break
					}
					store.appendVal(c, value, uint32(count))
				}
				if d.err == nil && c.nvals > 0 {
					bv := store.vals[c.valOff+c.best]
					c.bestVal, c.bestCnt = bv.value, bv.count
				}
				if d.err == nil && c.nvals >= fcmHashThreshold {
					store.promote(c)
				}
			}
		}
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.fcmStore.arena.Release()
	p.fcmStore = store
	p.groupCache = nil
	return nil
}

// PCEntries implements PerPC: contexts held across all orders per static
// instruction.
func (p *FCM) PCEntries() map[uint64]int {
	out := make(map[uint64]int, len(p.pcs))
	for i := range p.pcs {
		n := 0
		if p.pcs[i].ctx0 >= 0 {
			n = 1
		}
		out[p.pcs[i].pc] = n
	}
	for o := 1; o <= p.order; o++ {
		for i := range p.ords[o].ctxs {
			out[p.pcs[p.ords[o].ctxs[i].pcIdx].pc]++
		}
	}
	return out
}

// CountTable is a standalone order-k finite context model over an
// arbitrary symbol sequence, mirroring the frequency tables of the paper's
// Figure 1. It is independent of the Predictor machinery and is used by
// the fig1 experiment, tests and examples.
type CountTable struct {
	order  int
	counts map[string]map[string]int
}

// NewCountTable returns an empty order-k context model for symbols.
func NewCountTable(order int) *CountTable {
	if order < 0 {
		order = 0
	}
	return &CountTable{order: order, counts: make(map[string]map[string]int)}
}

// Train observes the sequence, counting for each length-k context the
// symbols that immediately follow it.
func (m *CountTable) Train(symbols []string) {
	for i := m.order; i < len(symbols); i++ {
		ctx := join(symbols[i-m.order : i])
		row := m.counts[ctx]
		if row == nil {
			row = make(map[string]int)
			m.counts[ctx] = row
		}
		row[symbols[i]]++
	}
}

// Predict returns the max-count symbol following the sequence's final
// context, and whether that context has been observed.
func (m *CountTable) Predict(symbols []string) (string, bool) {
	if len(symbols) < m.order {
		return "", false
	}
	ctx := join(symbols[len(symbols)-m.order:])
	row, ok := m.counts[ctx]
	if !ok || len(row) == 0 {
		return "", false
	}
	best, bestN := "", -1
	for s, n := range row {
		if n > bestN || (n == bestN && s < best) {
			best, bestN = s, n
		}
	}
	return best, true
}

// Count returns the observation count for symbol following context.
func (m *CountTable) Count(context []string, symbol string) int {
	return m.counts[join(context)][symbol]
}

// Contexts returns the number of distinct contexts observed.
func (m *CountTable) Contexts() int { return len(m.counts) }

func join(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s + "\x00"
	}
	return out
}
