package core

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFCMOrder bounds the context length supported by FCM predictors. The
// paper sweeps orders 1..8 in Figure 11.
const MaxFCMOrder = 16

// FCM is the finite context method predictor of Section 2.2 as simulated
// in the paper: per static instruction it keeps, for every context (an
// ordered sequence of the most recent k values), exact occurrence counts
// of each value that followed that context. The predicted value is the one
// with the maximum count (most recently observed wins ties).
//
// An order-k FCM internally blends orders k..0 ("n different fcm
// predictors of orders 0 to n-1"): the prediction comes from the highest
// order whose context has been observed before, and updates follow the
// lazy-exclusion rule — only the matched order and all higher orders have
// their counts updated. Contexts are full concatenations of history
// values, so there is no aliasing when matching contexts.
type FCM struct {
	order int
	blend bool
	table map[uint64]*fcmPC
}

// fcmPC is the per-static-instruction state of an FCM.
type fcmPC struct {
	hist    [MaxFCMOrder]uint64 // most recent values, hist[0] oldest kept
	n       int                 // how many history values are valid (<= order)
	ctxs    []map[string]*fcmCtx
	updates uint64 // total updates at this PC (for reporting)
}

// fcmCtx holds the exact value counts observed after one context.
type fcmCtx struct {
	vals []fcmVal
	best int // index into vals of the current prediction
}

// fcmVal is one (value, count) pair; contexts typically see very few
// distinct values, so a small linear-scanned slice beats a map.
type fcmVal struct {
	value uint64
	count uint32
}

// NewFCM returns an order-k FCM with blending and lazy exclusion, the
// configuration the paper simulates as fcm1/fcm2/fcm3.
func NewFCM(order int) *FCM {
	if order < 0 {
		order = 0
	}
	if order > MaxFCMOrder {
		order = MaxFCMOrder
	}
	return &FCM{order: order, blend: true, table: make(map[uint64]*fcmPC)}
}

// NewFCMNoBlend returns an order-k FCM without blending: it predicts only
// on an exact order-k context match and updates only the order-k table.
// Used for the blending ablation.
func NewFCMNoBlend(order int) *FCM {
	p := NewFCM(order)
	p.blend = false
	return p
}

// Name implements Predictor.
func (p *FCM) Name() string {
	if !p.blend {
		return "fcm" + itoa(p.order) + "nb"
	}
	return "fcm" + itoa(p.order)
}

// Order returns the maximum context length of this FCM.
func (p *FCM) Order() int { return p.order }

// itoa converts a small non-negative int without importing strconv.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ctxKey encodes the most recent o values of s as a map key. Order-0 uses
// the empty key. Full concatenation guarantees no aliasing.
func (s *fcmPC) ctxKey(o int) string {
	if o == 0 {
		return ""
	}
	var buf [8 * MaxFCMOrder]byte
	for i := 0; i < o; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], s.hist[s.n-o+i])
	}
	return string(buf[: 8*o : 8*o])
}

// Predict implements Predictor. With blending, the highest order whose
// context has been seen makes the prediction; without, only the full
// order is consulted.
func (p *FCM) Predict(pc uint64) (uint64, bool) {
	s, ok := p.table[pc]
	if !ok {
		return 0, false
	}
	v, _, ok := p.lookup(s)
	return v, ok
}

// lookup returns the predicted value and the order that matched.
func (p *FCM) lookup(s *fcmPC) (value uint64, matched int, ok bool) {
	lowest := p.order
	if p.blend {
		lowest = 0
	}
	for o := p.order; o >= lowest; o-- {
		if o > s.n {
			continue
		}
		t := s.ctxs[o]
		if t == nil {
			continue
		}
		if c, hit := t[s.ctxKey(o)]; hit && len(c.vals) > 0 {
			return c.vals[c.best].value, o, true
		}
	}
	return 0, -1, false
}

// Update implements Predictor, applying lazy exclusion: the matched order
// and all higher orders are updated; lower orders are left untouched.
func (p *FCM) Update(pc uint64, value uint64) {
	s, ok := p.table[pc]
	if !ok {
		s = &fcmPC{ctxs: make([]map[string]*fcmCtx, p.order+1)}
		p.table[pc] = s
	}
	_, matched, hit := p.lookup(s)
	low := 0
	if hit && p.blend {
		low = matched
	}
	if !p.blend {
		low = p.order
	}
	for o := p.order; o >= low; o-- {
		if o > s.n {
			continue
		}
		t := s.ctxs[o]
		if t == nil {
			t = make(map[string]*fcmCtx)
			s.ctxs[o] = t
		}
		key := s.ctxKey(o)
		c := t[key]
		if c == nil {
			c = &fcmCtx{}
			t[key] = c
		}
		c.add(value)
	}
	s.push(value, p.order)
	s.updates++
}

// add increments the count for v and maintains the max-count prediction;
// a just-updated value wins ties, giving most-recently-seen tie-breaks.
func (c *fcmCtx) add(v uint64) {
	for i := range c.vals {
		if c.vals[i].value == v {
			c.vals[i].count++
			if c.vals[i].count >= c.vals[c.best].count {
				c.best = i
			}
			return
		}
	}
	c.vals = append(c.vals, fcmVal{value: v, count: 1})
	if len(c.vals) == 1 || c.vals[c.best].count <= 1 {
		c.best = len(c.vals) - 1
	}
}

// push appends v to the value history, keeping at most order values.
func (s *fcmPC) push(v uint64, order int) {
	if order == 0 {
		return
	}
	if s.n < order {
		s.hist[s.n] = v
		s.n++
		return
	}
	copy(s.hist[:order-1], s.hist[1:order])
	s.hist[order-1] = v
}

// Reset implements Resetter.
func (p *FCM) Reset() { clear(p.table) }

// TableEntries implements Sized: static PCs tracked and total contexts
// across all orders.
func (p *FCM) TableEntries() (static, total int) {
	static = len(p.table)
	for _, s := range p.table {
		for _, t := range s.ctxs {
			total += len(t)
		}
	}
	return static, total
}

// SaveState implements Stateful. Layout: order and blend flag (validated
// against the receiver's configuration on load), then sorted per-PC
// records: history, update count, and for each order 0..k the context
// table with keys in lexicographic order. A context's value list keeps
// its exact slice order and best index — both steer future tie-breaks, so
// they are state, not presentation.
func (p *FCM) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(p.order))
	blend := uint64(0)
	if p.blend {
		blend = 1
	}
	e.uvarint(blend)
	e.uvarint(uint64(len(p.table)))
	var prev uint64
	for _, pc := range sortedKeys(p.table) {
		s := p.table[pc]
		e.uvarint(pc - prev)
		prev = pc
		e.uvarint(uint64(s.n))
		for i := 0; i < s.n; i++ {
			e.uvarint(s.hist[i])
		}
		e.uvarint(s.updates)
		for o := 0; o <= p.order; o++ {
			t := s.ctxs[o]
			e.uvarint(uint64(len(t)))
			for _, key := range sortedStringKeys(t) {
				e.bytes([]byte(key)) // full concatenation: exactly 8*o bytes
				c := t[key]
				e.uvarint(uint64(len(c.vals)))
				e.uvarint(uint64(c.best))
				for _, v := range c.vals {
					e.uvarint(v.value)
					e.uvarint(uint64(v.count))
				}
			}
		}
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *FCM) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	order := d.count(MaxFCMOrder)
	blend := d.count(1)
	if d.err == nil && (int(order) != p.order || (blend == 1) != p.blend) {
		return errState(p.Name(), fmt.Errorf(
			"state is for order %d blend=%v, receiver wants order %d blend=%v",
			order, blend == 1, p.order, p.blend))
	}
	npc := d.uvarint()
	table := make(map[uint64]*fcmPC)
	var pc uint64
	for i := uint64(0); i < npc && d.err == nil; i++ {
		pc += d.uvarint()
		s := &fcmPC{ctxs: make([]map[string]*fcmCtx, p.order+1)}
		s.n = int(d.count(uint64(p.order)))
		for j := 0; j < s.n; j++ {
			s.hist[j] = d.uvarint()
		}
		s.updates = d.uvarint()
		for o := 0; o <= p.order && d.err == nil; o++ {
			nctx := d.uvarint()
			if nctx == 0 || d.err != nil {
				continue
			}
			t := make(map[string]*fcmCtx)
			s.ctxs[o] = t
			for k := uint64(0); k < nctx && d.err == nil; k++ {
				key := string(d.bytes(uint64(8 * o)))
				nv := d.uvarint()
				best := d.uvarint()
				if d.err == nil && best >= max(nv, 1) {
					return errState(p.Name(), fmt.Errorf("best index %d out of range for %d values", best, nv))
				}
				c := &fcmCtx{best: int(best)}
				if nv > 0 {
					c.vals = make([]fcmVal, 0, min(nv, 1024))
					for vi := uint64(0); vi < nv && d.err == nil; vi++ {
						value := d.uvarint()
						count := d.count(1<<32 - 1)
						c.vals = append(c.vals, fcmVal{value: value, count: uint32(count)})
					}
				}
				t[key] = c
			}
		}
		table[pc] = s
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.table = table
	return nil
}

// PCEntries implements PerPC: contexts held across all orders per static
// instruction.
func (p *FCM) PCEntries() map[uint64]int {
	out := make(map[uint64]int, len(p.table))
	for pc, s := range p.table {
		n := 0
		for _, t := range s.ctxs {
			n += len(t)
		}
		out[pc] = n
	}
	return out
}

// CountTable is a standalone order-k finite context model over an
// arbitrary symbol sequence, mirroring the frequency tables of the paper's
// Figure 1. It is independent of the Predictor machinery and is used by
// the fig1 experiment, tests and examples.
type CountTable struct {
	order  int
	counts map[string]map[string]int
}

// NewCountTable returns an empty order-k context model for symbols.
func NewCountTable(order int) *CountTable {
	if order < 0 {
		order = 0
	}
	return &CountTable{order: order, counts: make(map[string]map[string]int)}
}

// Train observes the sequence, counting for each length-k context the
// symbols that immediately follow it.
func (m *CountTable) Train(symbols []string) {
	for i := m.order; i < len(symbols); i++ {
		ctx := join(symbols[i-m.order : i])
		row := m.counts[ctx]
		if row == nil {
			row = make(map[string]int)
			m.counts[ctx] = row
		}
		row[symbols[i]]++
	}
}

// Predict returns the max-count symbol following the sequence's final
// context, and whether that context has been observed.
func (m *CountTable) Predict(symbols []string) (string, bool) {
	if len(symbols) < m.order {
		return "", false
	}
	ctx := join(symbols[len(symbols)-m.order:])
	row, ok := m.counts[ctx]
	if !ok || len(row) == 0 {
		return "", false
	}
	best, bestN := "", -1
	for s, n := range row {
		if n > bestN || (n == bestN && s < best) {
			best, bestN = s, n
		}
	}
	return best, true
}

// Count returns the observation count for symbol following context.
func (m *CountTable) Count(context []string, symbol string) int {
	return m.counts[join(context)][symbol]
}

// Contexts returns the number of distinct contexts observed.
func (m *CountTable) Contexts() int { return len(m.counts) }

func join(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s + "\x00"
	}
	return out
}
