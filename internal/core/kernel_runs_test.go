package core

import (
	"bytes"
	"testing"
)

// TestBankOddRunLengths pins the counting-sort arena rounding: runs
// whose lengths are not multiples of the SWAR block width (1, 7, 9, 63
// events) must step bit-identically to the per-event reference — hits,
// counts and saved state — through every kernel-backed predictor.
func TestBankOddRunLengths(t *testing.T) {
	mk := func() []Predictor {
		return []Predictor{
			NewLastValue(),
			NewLastValueCounter(3, 1),
			NewLastValueConsecutive(2),
			NewStrideSimple(),
			NewStride2Delta(),
			NewStrideCounter(3, 1),
			NewFCM(3),
		}
	}
	for _, runLen := range []int{1, 7, 9, 63} {
		// Two PCs with interleave-proof content: one strided, one mixing
		// constants and period-2 repeats, each PC's run exactly runLen
		// events long, repeated across enough batches to cross the
		// warm/steady seam and the bulk fast paths.
		var pcs, vals []uint64
		for batch := 0; batch < 6; batch++ {
			for j := 0; j < runLen; j++ {
				pcs = append(pcs, 100)
				vals = append(vals, uint64(batch*runLen+j)*8)
				pcs = append(pcs, 200)
				if batch%2 == 0 {
					vals = append(vals, 42)
				} else {
					vals = append(vals, uint64(j%2))
				}
			}
		}
		batchEvents := 2 * runLen

		bank := NewBank(mk()...)
		ref := mk()
		refHits := make([]uint64, len(ref))
		for off := 0; off < len(pcs); off += batchEvents {
			bank.StepBatch(pcs[off:off+batchEvents], vals[off:off+batchEvents])
		}
		for j := range pcs {
			for i, p := range ref {
				refHits[i] += stepOne(p, pcs[j], vals[j])
			}
		}
		correct := bank.Correct()
		for i := range ref {
			if correct[i] != refHits[i] {
				t.Errorf("runLen %d predictor %d (%s): bank %d correct, reference %d",
					runLen, i, ref[i].Name(), correct[i], refHits[i])
			}
			bs, ok := bank.Predictors()[i].(Stateful)
			if !ok {
				continue
			}
			rs := ref[i].(Stateful)
			var bb, rb bytes.Buffer
			if err := bs.SaveState(&bb); err != nil {
				t.Fatalf("runLen %d %s: bank SaveState: %v", runLen, ref[i].Name(), err)
			}
			if err := rs.SaveState(&rb); err != nil {
				t.Fatalf("runLen %d %s: ref SaveState: %v", runLen, ref[i].Name(), err)
			}
			if !bytes.Equal(bb.Bytes(), rb.Bytes()) {
				t.Errorf("runLen %d predictor %s: state bytes diverge (%d vs %d bytes)",
					runLen, ref[i].Name(), bb.Len(), rb.Len())
			}
		}
	}
}
