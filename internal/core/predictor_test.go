package core

import (
	"testing"
	"testing/quick"
)

// --- Last value -----------------------------------------------------------

func TestLastValueBasics(t *testing.T) {
	p := NewLastValue()
	if _, ok := p.Predict(10); ok {
		t.Fatal("empty predictor must not predict")
	}
	p.Update(10, 42)
	if v, ok := p.Predict(10); !ok || v != 42 {
		t.Fatalf("got (%d,%v), want (42,true)", v, ok)
	}
	if _, ok := p.Predict(11); ok {
		t.Fatal("different PC must have its own entry")
	}
	p.Update(10, 99)
	if v, _ := p.Predict(10); v != 99 {
		t.Fatalf("always-update must replace: got %d", v)
	}
}

func TestLastValueConstantSequence(t *testing.T) {
	// Table 1: LT=1 (first prediction after one observation), LD=100%.
	p := NewLastValue()
	values := make([]uint64, 100)
	for i := range values {
		values[i] = 7
	}
	acc := RunSequence(p, values)
	if acc.Correct != 99 {
		t.Fatalf("constant sequence: got %d correct, want 99", acc.Correct)
	}
}

func TestLastValueStrideSequenceFails(t *testing.T) {
	// Table 1 marks last-value unsuitable for stride sequences.
	p := NewLastValue()
	values := make([]uint64, 100)
	for i := range values {
		values[i] = uint64(i)
	}
	acc := RunSequence(p, values)
	if acc.Correct != 0 {
		t.Fatalf("stride sequence: got %d correct, want 0", acc.Correct)
	}
}

func TestLastValueCounterHysteresis(t *testing.T) {
	p := NewLastValueCounter(3, 1)
	// Build confidence in 5.
	for i := 0; i < 4; i++ {
		p.Update(1, 5)
	}
	// One blip must not replace the prediction (counter above threshold).
	p.Update(1, 6)
	if v, _ := p.Predict(1); v != 5 {
		t.Fatalf("single blip replaced value: got %d, want 5", v)
	}
	// Repeated failures drain the counter and eventually replace.
	for i := 0; i < 5; i++ {
		p.Update(1, 6)
	}
	if v, _ := p.Predict(1); v != 6 {
		t.Fatalf("persistent new value not adopted: got %d, want 6", v)
	}
}

func TestLastValueConsecutiveAdoptsAfterRun(t *testing.T) {
	p := NewLastValueConsecutive(3)
	p.Update(1, 5)
	if v, _ := p.Predict(1); v != 5 {
		t.Fatal("first value must be adopted immediately")
	}
	p.Update(1, 9)
	p.Update(1, 9)
	if v, _ := p.Predict(1); v != 5 {
		t.Fatalf("adopted after only 2 observations: got %d", v)
	}
	p.Update(1, 9)
	if v, _ := p.Predict(1); v != 9 {
		t.Fatalf("not adopted after 3 consecutive: got %d", v)
	}
	// An interrupted run must restart the count.
	p.Update(1, 4)
	p.Update(1, 4)
	p.Update(1, 9)
	p.Update(1, 4)
	if v, _ := p.Predict(1); v != 9 {
		t.Fatalf("interrupted run adopted: got %d", v)
	}
}

// --- Stride ---------------------------------------------------------------

func TestStrideSimpleLearnsStride(t *testing.T) {
	// Table 1: stride on S has LT=2 and then LD=100%.
	p := NewStrideSimple()
	var firstCorrect int
	for i := 0; i < 50; i++ {
		v := uint64(10 + 3*i)
		pred, ok := p.Predict(0)
		if ok && pred == v && firstCorrect == 0 {
			firstCorrect = i + 1
		}
		if i >= 2 && (!ok || pred != v) {
			t.Fatalf("step %d: got (%d,%v), want %d", i, pred, ok, v)
		}
		p.Update(0, v)
	}
	if firstCorrect != 3 {
		// Values observed before first correct = 2 (LT=2 in the paper's
		// counting); the first correct prediction is for the 3rd value.
		t.Fatalf("first correct at %d, want 3", firstCorrect)
	}
}

func TestStrideNegativeDelta(t *testing.T) {
	p := NewStride2Delta()
	for i := 0; i < 20; i++ {
		v := uint64(int64(1000 - 7*i))
		pred, ok := p.Predict(0)
		if i >= 3 && (!ok || pred != v) {
			t.Fatalf("step %d: got (%d,%v), want %d", i, pred, ok, v)
		}
		p.Update(0, v)
	}
}

func TestStrideSimpleRepeatedStrideTwoMissesPerIteration(t *testing.T) {
	// Section 2.1: the plain stride predictor misses twice per repeat of
	// an RS sequence (at the wrap, and again re-learning the stride).
	p := NewStrideSimple()
	seq := []uint64{1, 2, 3, 4}
	misses := 0
	// Warm up two full periods, then count misses over 10 periods.
	for rep := 0; rep < 12; rep++ {
		for _, v := range seq {
			pred, ok := p.Predict(0)
			if rep >= 2 && (!ok || pred != v) {
				misses++
			}
			p.Update(0, v)
		}
	}
	if misses != 20 {
		t.Fatalf("simple stride misses = %d over 10 periods, want 20", misses)
	}
}

func TestStride2DeltaRepeatedStrideOneMissPerIteration(t *testing.T) {
	// Table 1: stride with hysteresis gets LD = (p-1)/p on RS sequences.
	p := NewStride2Delta()
	seq := []uint64{1, 2, 3, 4}
	misses := 0
	for rep := 0; rep < 12; rep++ {
		for _, v := range seq {
			pred, ok := p.Predict(0)
			if rep >= 2 && (!ok || pred != v) {
				misses++
			}
			p.Update(0, v)
		}
	}
	if misses != 10 {
		t.Fatalf("2-delta misses = %d over 10 periods, want 10", misses)
	}
}

func TestStride2DeltaMatchesFig2Trace(t *testing.T) {
	// Figure 2 walks stride prediction over 1 2 3 4 repeated: predictions
	// are 0 0 3 4 5 2 3 4 5 2 3 4 (0 = no prediction yet).
	p := NewStride2Delta()
	input := []uint64{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4}
	want := []uint64{0, 0, 3, 4, 5, 2, 3, 4, 5, 2, 3, 4}
	for i, v := range input {
		pred, ok := p.Predict(0)
		if !ok {
			pred = 0
		}
		if pred != want[i] {
			t.Fatalf("step %d: predicted %d, want %d", i, pred, want[i])
		}
		p.Update(0, v)
	}
}

func TestStrideCounterHoldsStrideThroughBlip(t *testing.T) {
	p := NewStrideCounter(3, 1)
	// Learn stride 5 with confidence.
	for i := 0; i < 8; i++ {
		p.Update(0, uint64(5*i))
	}
	// Wrap back (like an RS sequence boundary): one failure.
	p.Update(0, 0)
	// The held stride should still be 5 (counter hysteresis).
	if v, ok := p.Predict(0); !ok || v != 5 {
		t.Fatalf("after blip got (%d,%v), want (5,true)", v, ok)
	}
}

// --- FCM ------------------------------------------------------------------

func TestFCMConstantSequence(t *testing.T) {
	// Table 1: order-o FCM needs o values before it can match, then 100%.
	for order := 1; order <= 3; order++ {
		p := NewFCM(order)
		values := make([]uint64, 50)
		for i := range values {
			values[i] = 9
		}
		acc := RunSequence(p, values)
		// With blending, the order-0 model predicts from the 2nd value on.
		if int(acc.Correct) != 49 {
			t.Fatalf("order %d: got %d correct, want 49", order, acc.Correct)
		}
	}
}

func TestFCMNoBlendConstantNeedsOrderValues(t *testing.T) {
	order := 3
	p := NewFCMNoBlend(order)
	correctAt := -1
	for i := 0; i < 10; i++ {
		pred, ok := p.Predict(0)
		if ok && pred == 9 && correctAt < 0 {
			correctAt = i
		}
		p.Update(0, 9)
	}
	// Without blending the first order-3 context exists after 3 values
	// and has a count after the 4th; first hit predicting value #5 (i=4).
	if correctAt != 4 {
		t.Fatalf("first correct at %d, want 4", correctAt)
	}
}

func TestFCMRepeatedNonStride(t *testing.T) {
	// Table 1: only FCM handles RNS; after p+o values it is 100%.
	seq := []uint64{1, ^uint64(12), ^uint64(98), 7} // 1 -13 -99 7 pattern
	p := NewFCM(2)
	misses := 0
	for rep := 0; rep < 10; rep++ {
		for _, v := range seq {
			pred, ok := p.Predict(0)
			if rep >= 2 && (!ok || pred != v) {
				misses++
			}
			p.Update(0, v)
		}
	}
	if misses != 0 {
		t.Fatalf("FCM on RNS: %d misses in steady state, want 0", misses)
	}
}

func TestFCMMatchesFig2Trace(t *testing.T) {
	// Figure 2: order-2 FCM over 1 2 3 4 repeated predicts
	// 0 0 0 0 0 0 3 4 1 2 3 4 (learn time = period + order = 6).
	p := NewFCMNoBlend(2)
	input := []uint64{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4}
	want := []uint64{0, 0, 0, 0, 0, 0, 3, 4, 1, 2, 3, 4}
	for i, v := range input {
		pred, ok := p.Predict(0)
		if !ok {
			pred = 0
		}
		if pred != want[i] {
			t.Fatalf("step %d: predicted %d, want %d", i, pred, want[i])
		}
		p.Update(0, v)
	}
}

func TestFCMCannotPredictNonRepeating(t *testing.T) {
	// Table 1: FCM is unsuitable for S and NS sequences (every context is
	// new). Use no-blend to avoid order-0 lucky hits.
	p := NewFCMNoBlend(2)
	correct := 0
	for i := 0; i < 200; i++ {
		v := uint64(i * 3)
		pred, ok := p.Predict(0)
		if ok && pred == v {
			correct++
		}
		p.Update(0, v)
	}
	if correct != 0 {
		t.Fatalf("FCM predicted %d stride values, want 0", correct)
	}
}

func TestFCMMaxCountWins(t *testing.T) {
	// After context [7]: value 5 twice, value 6 once -> predict 5.
	p := NewFCMNoBlend(1)
	feed := []uint64{7, 5, 7, 6, 7, 5}
	for _, v := range feed {
		p.Update(0, v)
	}
	// History is now [5]; teach context [5] -> 7 so we can steer; instead
	// query context [7] by feeding a 7.
	p.Update(0, 7)
	if v, ok := p.Predict(0); !ok || v != 5 {
		t.Fatalf("got (%d,%v), want (5,true)", v, ok)
	}
}

func TestFCMMostRecentTieBreak(t *testing.T) {
	p := NewFCMNoBlend(1)
	// Context [7] followed once by 5, once by 6 (tie); 6 is more recent.
	for _, v := range []uint64{7, 5, 7, 6, 7} {
		p.Update(0, v)
	}
	if v, ok := p.Predict(0); !ok || v != 6 {
		t.Fatalf("got (%d,%v), want (6,true) on most-recent tie-break", v, ok)
	}
}

func TestFCMPerPCTablesAreIndependent(t *testing.T) {
	p := NewFCM(1)
	for i := 0; i < 10; i++ {
		p.Update(100, 1)
		p.Update(200, 2)
	}
	if v, _ := p.Predict(100); v != 1 {
		t.Fatalf("pc 100: got %d, want 1", v)
	}
	if v, _ := p.Predict(200); v != 2 {
		t.Fatalf("pc 200: got %d, want 2", v)
	}
}

func TestFCMLazyExclusionUpdatesMatchedAndHigher(t *testing.T) {
	// Build an order-2 blend where only order 0 matches initially, and
	// verify that low-order tables are not polluted once a higher order
	// matches. We check observable behaviour: a value seen many times
	// under a specific order-2 context must win there even if a different
	// value dominates order 0 overall.
	p := NewFCM(2)
	// Teach order-2 context (1,2)->3 repeatedly.
	for i := 0; i < 6; i++ {
		p.Update(0, 1)
		p.Update(0, 2)
		p.Update(0, 3)
	}
	// Now history is (2,3); feed 1 then 2 so history becomes (1,2).
	p.Update(0, 1)
	p.Update(0, 2)
	if v, ok := p.Predict(0); !ok || v != 3 {
		t.Fatalf("order-2 context (1,2): got (%d,%v), want (3,true)", v, ok)
	}
}

func TestFCMOrderZeroIsLastValueLike(t *testing.T) {
	// The paper notes last-value prediction can be viewed as a 0th order
	// fcm with one prediction per context; our order-0 blend keeps counts,
	// so the most frequent value is predicted.
	p := NewFCM(0)
	for _, v := range []uint64{5, 5, 5, 9} {
		p.Update(0, v)
	}
	if v, ok := p.Predict(0); !ok || v != 5 {
		t.Fatalf("got (%d,%v), want (5,true)", v, ok)
	}
}

func TestFCMReset(t *testing.T) {
	p := NewFCM(2)
	for i := 0; i < 10; i++ {
		p.Update(1, uint64(i%3))
	}
	p.Reset()
	if _, ok := p.Predict(1); ok {
		t.Fatal("reset predictor must not predict")
	}
	static, total := p.TableEntries()
	if static != 0 || total != 0 {
		t.Fatalf("reset left entries: static=%d total=%d", static, total)
	}
}

func TestFCMTableEntriesGrow(t *testing.T) {
	p := NewFCM(2)
	for i := 0; i < 100; i++ {
		p.Update(uint64(i%5), uint64(i))
	}
	static, total := p.TableEntries()
	if static != 5 {
		t.Fatalf("static=%d, want 5", static)
	}
	if total == 0 {
		t.Fatal("total contexts must be > 0")
	}
}

// --- CountTable (Figure 1) --------------------------------------------------

func TestCountTableFig1(t *testing.T) {
	// The paper's Figure 1 sequence: a a a b c a a a b c a a a -> predict?
	seq := []string{"a", "a", "a", "b", "c", "a", "a", "a", "b", "c", "a", "a", "a"}

	m0 := NewCountTable(0)
	m0.Train(seq)
	if got := m0.Count(nil, "a"); got != 9 {
		t.Fatalf("order0 count(a)=%d, want 9", got)
	}
	if got := m0.Count(nil, "b"); got != 2 {
		t.Fatalf("order0 count(b)=%d, want 2", got)
	}
	if pred, _ := m0.Predict(seq); pred != "a" {
		t.Fatalf("order0 predicts %q, want a", pred)
	}

	m1 := NewCountTable(1)
	m1.Train(seq)
	if got := m1.Count([]string{"a"}, "a"); got != 6 {
		t.Fatalf("order1 count(a|a)=%d, want 6", got)
	}
	if got := m1.Count([]string{"a"}, "b"); got != 2 {
		t.Fatalf("order1 count(b|a)=%d, want 2", got)
	}
	if pred, _ := m1.Predict(seq); pred != "a" {
		t.Fatalf("order1 predicts %q, want a", pred)
	}

	m2 := NewCountTable(2)
	m2.Train(seq)
	if got := m2.Count([]string{"a", "a"}, "a"); got != 3 {
		t.Fatalf("order2 count(a|aa)=%d, want 3", got)
	}
	if got := m2.Count([]string{"a", "a"}, "b"); got != 2 {
		t.Fatalf("order2 count(b|aa)=%d, want 2", got)
	}
	if pred, _ := m2.Predict(seq); pred != "a" {
		t.Fatalf("order2 predicts %q, want a", pred)
	}

	// Order 3 is the interesting one: context (a,a,a) is always followed
	// by b in this sequence, so the prediction flips to b.
	m3 := NewCountTable(3)
	m3.Train(seq)
	if got := m3.Count([]string{"a", "a", "a"}, "b"); got != 2 {
		t.Fatalf("order3 count(b|aaa)=%d, want 2", got)
	}
	if pred, _ := m3.Predict(seq); pred != "b" {
		t.Fatalf("order3 predicts %q, want b (Figure 1)", pred)
	}
}

// --- Hybrid ----------------------------------------------------------------

func TestHybridPrefersWinningComponent(t *testing.T) {
	// On a pure stride sequence the hybrid must converge to the stride
	// component and match its steady-state accuracy.
	h := NewStrideFCMHybrid(2)
	misses := 0
	for i := 0; i < 200; i++ {
		v := uint64(3 * i)
		pred, ok := h.Predict(0)
		if i > 10 && (!ok || pred != v) {
			misses++
		}
		h.Update(0, v)
	}
	if misses != 0 {
		t.Fatalf("hybrid on stride: %d steady-state misses, want 0", misses)
	}
}

func TestHybridBeatsComponentsOnMixedPCs(t *testing.T) {
	// PC 1 produces a stride (stride wins), PC 2 produces an RNS pattern
	// (fcm wins). The hybrid should approach the max of both.
	runOn := func(p Predictor) float64 {
		if r, ok := p.(Resetter); ok {
			r.Reset()
		}
		rns := []uint64{10, 99, 3, 77}
		var acc Accuracy
		for i := 0; i < 400; i++ {
			for _, ev := range []struct{ pc, v uint64 }{
				{1, uint64(5 * i)},
				{2, rns[i%len(rns)]},
			} {
				pred, ok := p.Predict(ev.pc)
				if i >= 50 {
					acc.Observe(ok && pred == ev.v)
				}
				p.Update(ev.pc, ev.v)
			}
		}
		return acc.Rate()
	}
	hybrid := runOn(NewStrideFCMHybrid(3))
	stride := runOn(NewStride2Delta())
	fcm := runOn(NewFCM(3))
	if hybrid < 0.99 {
		t.Fatalf("hybrid rate %.3f, want ~1.0", hybrid)
	}
	if stride > 0.8 || fcm > 0.8 {
		t.Fatalf("components unexpectedly strong alone: s2=%.3f fcm=%.3f", stride, fcm)
	}
}

func TestClassifiedPredictorRoutesByClass(t *testing.T) {
	cp := NewClassifiedPredictor("bytype", func(class uint8) Predictor {
		if class == 0 {
			return NewStride2Delta()
		}
		return NewFCM(2)
	})
	for i := 0; i < 100; i++ {
		cp.UpdateClass(0, 7, uint64(2*i))
	}
	if v, ok := cp.PredictClass(0, 7); !ok || v != 200 {
		t.Fatalf("class 0 stride: got (%d,%v), want (200,true)", v, ok)
	}
	// Same PC in another class must be independent.
	if _, ok := cp.PredictClass(1, 7); ok {
		t.Fatal("class 1 must be untrained for pc 7")
	}
}

// --- SetTracker (Figure 8) ---------------------------------------------------

func TestSetTrackerSubsets(t *testing.T) {
	l := NewLastValue()
	s := NewStride2Delta()
	f := NewFCM(3)
	tr := NewSetTracker(l, s, f)

	// A constant sequence: after warmup all three are correct -> mask 0b111.
	for i := 0; i < 20; i++ {
		tr.Observe(1, 5)
	}
	if tr.Count(0b111) == 0 {
		t.Fatal("constant stream should produce lsf (all-correct) events")
	}
	// First event has no predictions: mask 0.
	if tr.Count(0) == 0 {
		t.Fatal("first event should be np (none-correct)")
	}
	if tr.Total() != 20 {
		t.Fatalf("total=%d, want 20", tr.Total())
	}
	sum := uint64(0)
	for mask := uint64(0); mask < 8; mask++ {
		sum += tr.Count(mask)
	}
	if sum != tr.Total() {
		t.Fatalf("subset counts sum to %d, want %d", sum, tr.Total())
	}
}

func TestSetTrackerStrideOnlySubset(t *testing.T) {
	tr := NewSetTracker(NewLastValue(), NewStride2Delta(), NewFCM(3))
	// A long non-repeating stride: only the stride predictor is correct in
	// steady state, i.e. mask 0b010 dominates.
	for i := 0; i < 300; i++ {
		tr.Observe(9, uint64(4*i))
	}
	if tr.Count(0b010) < 290 {
		t.Fatalf("stride-only count=%d, want >=290", tr.Count(0b010))
	}
}

// --- property-based tests ----------------------------------------------------

func TestPropertyLastValueAlwaysEchoesPrevious(t *testing.T) {
	f := func(pcs []uint64, values []uint64) bool {
		p := NewLastValue()
		last := make(map[uint64]uint64)
		n := min(len(pcs), len(values))
		for i := 0; i < n; i++ {
			pc, v := pcs[i]%16, values[i]
			pred, ok := p.Predict(pc)
			want, seen := last[pc]
			if ok != seen || (seen && pred != want) {
				return false
			}
			p.Update(pc, v)
			last[pc] = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStridePerfectOnAnyAffineSequence(t *testing.T) {
	f := func(start, delta uint64) bool {
		p := NewStride2Delta()
		for i := 0; i < 40; i++ {
			v := start + uint64(i)*delta
			pred, ok := p.Predict(0)
			if i >= 3 && (!ok || pred != v) {
				return false
			}
			p.Update(0, v)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFCMPerfectOnAnyShortCycle(t *testing.T) {
	f := func(a, b, c uint64) bool {
		// Any period-3 repeating sequence must reach 100% for order>=3
		// (order >= period guarantees unique contexts).
		seq := []uint64{a, b, c}
		p := NewFCM(3)
		for rep := 0; rep < 12; rep++ {
			for _, v := range seq {
				pred, ok := p.Predict(0)
				if rep >= 4 && (!ok || pred != v) {
					return false
				}
				p.Update(0, v)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPredictIsPure(t *testing.T) {
	// Calling Predict many times must not change any predictor's answer.
	preds := []Predictor{
		NewLastValue(), NewLastValueCounter(3, 1), NewLastValueConsecutive(2),
		NewStrideSimple(), NewStride2Delta(), NewStrideCounter(3, 1),
		NewFCM(2), NewFCMNoBlend(2), NewStrideFCMHybrid(2),
	}
	f := func(values []uint64) bool {
		for _, p := range preds {
			if r, ok := p.(Resetter); ok {
				r.Reset()
			}
			for _, v := range values {
				v1, ok1 := p.Predict(0)
				for k := 0; k < 3; k++ {
					v2, ok2 := p.Predict(0)
					if v1 != v2 || ok1 != ok2 {
						return false
					}
				}
				p.Update(0, v)
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAccuracyNeverExceedsTotal(t *testing.T) {
	f := func(pcs, values []uint64) bool {
		p := NewFCM(2)
		acc := Run(p, pcs, values)
		return acc.Correct <= acc.Total && acc.Rate() >= 0 && acc.Rate() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStandardFactoriesProduceFreshInstances(t *testing.T) {
	for _, f := range StandardFactories() {
		a, b := f.New(), f.New()
		a.Update(1, 42)
		if _, ok := b.Predict(1); ok {
			t.Fatalf("%s: factory instances share state", f.Name)
		}
		if a.Name() != f.Name {
			t.Fatalf("factory name %q != instance name %q", f.Name, a.Name())
		}
	}
}
