package core

import (
	"bytes"
	"testing"
)

// chunkCapture collects one SaveStateChunks run into inspectable form.
type chunkCapture struct {
	header  []byte
	chunks  [][]byte // nil element = skipped clean chunk
	firstPC []uint64
	records []int
}

func captureChunks(t *testing.T, p ChunkedStateful, dirty func(pc uint64) bool, canSkip bool) *chunkCapture {
	t.Helper()
	cc := &chunkCapture{}
	err := p.SaveStateChunks(&ChunkSaver{
		Dirty:   dirty,
		CanSkip: canSkip,
		Header: func(hdr []byte) error {
			cc.header = append([]byte(nil), hdr...)
			return nil
		},
		Emit: func(firstPC uint64, records int, data []byte) error {
			if data == nil {
				cc.chunks = append(cc.chunks, nil)
			} else {
				cc.chunks = append(cc.chunks, append([]byte(nil), data...))
			}
			cc.firstPC = append(cc.firstPC, firstPC)
			cc.records = append(cc.records, records)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("SaveStateChunks: %v", err)
	}
	return cc
}

// testPCs returns n distinct, well-spread PCs in ascending order so the
// anchor hash splits them into many chunks.
func testPCs(n int) []uint64 {
	pcs := make([]uint64, n)
	for i := range pcs {
		pcs[i] = uint64(i+1) * 24 // spread, ascending, distinct
	}
	return pcs
}

// TestSaveStateChunksParity pins the defining property of the chunked
// save: for every predictor that implements ChunkedStateful, the
// concatenation of header and chunk bytes is byte-identical to the plain
// SaveState stream, so LoadState restores chunked saves unchanged.
func TestSaveStateChunksParity(t *testing.T) {
	pcs := testPCs(700)
	for _, f := range KnownFactories() {
		t.Run(f.Name, func(t *testing.T) {
			p := f.New()
			cp, ok := p.(ChunkedStateful)
			if !ok {
				t.Skipf("%s is saved opaque (no chunked save)", f.Name)
			}
			for i := 0; i < len(pcs)*12; i++ {
				pc := pcs[i%len(pcs)]
				p.Predict(pc)
				p.Update(pc, NonStride4[(uint64(i/len(pcs))+pc)%4]+pc%7)
			}
			var want bytes.Buffer
			if err := cp.SaveState(&want); err != nil {
				t.Fatalf("SaveState: %v", err)
			}
			var got bytes.Buffer
			if err := WriteChunks(cp, &got); err != nil {
				t.Fatalf("WriteChunks: %v", err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatalf("chunked save differs from SaveState: %d vs %d bytes",
					got.Len(), want.Len())
			}
			cc := captureChunks(t, cp, nil, false)
			if len(cc.chunks) < 4 {
				t.Fatalf("expected many chunks over %d PCs, got %d", len(pcs), len(cc.chunks))
			}
			// A second capture must agree with itself (cache validity) and
			// with the first.
			cc2 := captureChunks(t, cp, nil, false)
			if len(cc2.chunks) != len(cc.chunks) {
				t.Fatalf("chunk partition unstable: %d then %d chunks", len(cc.chunks), len(cc2.chunks))
			}
		})
	}
}

// TestSaveStateChunksSkipParity drives a bank with dirty tracking through
// a warm phase, cuts a parent save, mutates only a small PC range, and
// checks that the child save (a) skips the clean chunks and (b) when the
// skipped chunks are filled in from the parent, reconstructs the plain
// SaveState stream byte for byte — the exact resolution a delta-chain
// restore performs.
func TestSaveStateChunksSkipParity(t *testing.T) {
	preds := []Predictor{
		NewLastValue(),
		NewLastValueCounter(3, 1),
		NewLastValueConsecutive(2),
		NewStrideSimple(),
		NewStride2Delta(),
		NewStrideCounter(3, 1),
		NewFCM(2),
	}
	b := NewBank(preds...)
	b.SetDirtyTracking(true)
	pcs := testPCs(960)
	step := func(sub []uint64, rounds int) {
		vals := make([]uint64, len(sub))
		for r := 0; r < rounds; r++ {
			for j, pc := range sub {
				vals[j] = NonStride4[(uint64(r)+pc)%4] + pc%5
			}
			b.StepBatch(sub, vals)
		}
	}
	step(pcs, 8)

	parents := make([]*chunkCapture, len(preds))
	for i, p := range preds {
		parents[i] = captureChunks(t, p.(ChunkedStateful), nil, false)
	}
	parentPCs := b.PCCount()
	b.ResetDirty()

	// Mutate only the first ~5% of the (ascending) PC set: existing PCs
	// only, so membership — and with it the chunk partition — is stable.
	hot := pcs[:len(pcs)/20]
	step(hot, 4)
	if b.PCCount() != parentPCs {
		t.Fatalf("PC membership changed: %d -> %d", parentPCs, b.PCCount())
	}
	for _, pc := range hot {
		if !b.PCDirty(pc) {
			t.Fatalf("hot pc %#x not dirty", pc)
		}
	}
	if b.PCDirty(pcs[len(pcs)-1]) {
		t.Fatal("cold pc reported dirty")
	}

	for i, p := range preds {
		cp := p.(ChunkedStateful)
		t.Run(p.Name(), func(t *testing.T) {
			child := captureChunks(t, cp, b.PCDirty, true)
			parent := parents[i]
			if len(child.chunks) != len(parent.chunks) {
				t.Fatalf("chunk count changed: parent %d, child %d", len(parent.chunks), len(child.chunks))
			}
			skipped, encoded := 0, 0
			var got bytes.Buffer
			got.Write(child.header)
			for ci, data := range child.chunks {
				if data == nil {
					skipped++
					if child.firstPC[ci] != parent.firstPC[ci] || child.records[ci] != parent.records[ci] {
						t.Fatalf("skipped chunk %d misaligned with parent: pc %#x/%#x records %d/%d",
							ci, child.firstPC[ci], parent.firstPC[ci], child.records[ci], parent.records[ci])
					}
					got.Write(parent.chunks[ci])
				} else {
					encoded++
					got.Write(data)
				}
			}
			if skipped == 0 {
				t.Fatal("no chunks skipped despite 95% clean PCs")
			}
			if encoded > len(child.chunks)/2 {
				t.Fatalf("too few skips: %d of %d chunks encoded", encoded, len(child.chunks))
			}
			var want bytes.Buffer
			if err := cp.SaveState(&want); err != nil {
				t.Fatalf("SaveState: %v", err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatalf("reconstructed child differs from SaveState (%d vs %d bytes, %d skipped)",
					got.Len(), want.Len(), skipped)
			}
		})
	}
}

// TestBankDirtyTracking pins the bitset's semantics: PCs become dirty the
// first time a batch touches them after a reset, stay clean otherwise,
// and PCCount detects membership growth (the skip precondition).
func TestBankDirtyTracking(t *testing.T) {
	b := NewBank(NewLastValue())
	b.SetDirtyTracking(true)
	b.StepBatch([]uint64{10, 20, 30}, []uint64{1, 2, 3})
	for _, pc := range []uint64{10, 20, 30} {
		if !b.PCDirty(pc) {
			t.Fatalf("pc %d should be dirty", pc)
		}
	}
	if b.PCDirty(99) {
		t.Fatal("unseen pc reported dirty")
	}
	if b.PCCount() != 3 {
		t.Fatalf("PCCount = %d, want 3", b.PCCount())
	}
	b.ResetDirty()
	if b.PCDirty(10) {
		t.Fatal("pc 10 still dirty after ResetDirty")
	}
	b.StepBatch([]uint64{20}, []uint64{5})
	if !b.PCDirty(20) || b.PCDirty(10) {
		t.Fatalf("dirty after partial batch: pc20=%v pc10=%v", b.PCDirty(20), b.PCDirty(10))
	}
	if b.PCCount() != 3 {
		t.Fatalf("PCCount changed on existing pc: %d", b.PCCount())
	}
	b.StepBatch([]uint64{40}, []uint64{6})
	if b.PCCount() != 4 {
		t.Fatalf("PCCount = %d after new pc, want 4", b.PCCount())
	}
	b.SetDirtyTracking(false)
	if b.PCDirty(20) {
		t.Fatal("dirty bit survived disabling")
	}
	if !b.Reset() {
		t.Fatal("Reset reported non-resettable predictor")
	}
	if b.PCCount() != 0 || b.PCDirty(20) {
		t.Fatal("Reset did not clear dirty state")
	}
}

// TestBankDirtyTrackingZeroAlloc is the CI gate for the tentpole's cost
// model: with dirty tracking enabled, the steady-state batch path —
// including the per-cut PCDirty probes and ResetDirty — allocates
// nothing. The bitset only grows when a PC is first inserted, which the
// warmup completes.
func TestBankDirtyTrackingZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rns := NonStride4
	b := NewBank(
		NewLastValue(),
		NewStride2Delta(),
		NewFCM(3),
	)
	b.SetDirtyTracking(true)
	const batch = 1024
	pcs := make([]uint64, batch)
	vals := make([]uint64, batch)
	fill := func(base int) {
		for j := 0; j < batch; j++ {
			i := base + j
			pc := uint64(i % 48)
			pcs[j] = pc
			vals[j] = rns[(uint64(i/48)+pc)%4]
		}
	}
	for it := 0; it < 16; it++ {
		fill(it * batch)
		b.StepBatch(pcs, vals)
	}
	it := 16
	var dirtyCount int
	allocs := testing.AllocsPerRun(100, func() {
		fill(it * batch)
		b.StepBatch(pcs, vals)
		for pc := uint64(0); pc < 48; pc++ {
			if b.PCDirty(pc) {
				dirtyCount++
			}
		}
		b.ResetDirty()
		it++
	})
	if allocs != 0 {
		t.Fatalf("dirty-tracking steady state allocates %.1f allocs per batch", allocs)
	}
	if dirtyCount == 0 {
		t.Fatal("no PCs observed dirty")
	}
}

// TestChunkAnchorSpread sanity-checks the content-defined chunking: over
// a large PC population roughly 1/64 of PCs are anchors, so chunk sizes
// stay near the target without any stored boundaries.
func TestChunkAnchorSpread(t *testing.T) {
	anchors := 0
	const n = 1 << 16
	for i := 0; i < n; i++ {
		if chunkAnchor(uint64(i) * 8) {
			anchors++
		}
	}
	want := n / (chunkAnchorMask + 1)
	if anchors < want/2 || anchors > want*2 {
		t.Fatalf("anchor density off: %d of %d (want ~%d)", anchors, n, want)
	}
}
