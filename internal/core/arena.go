package core

import "repro/internal/arena"

// slabArenaKind is the backing used for predictor slab growth by stores
// constructed after SetSlabArena. Heap keeps ordinary GC-scanned
// allocation; Mmap moves large slabs into anonymous mappings the
// collector never walks, which matters once context tables reach
// gigabytes: the slabs are pointer-free arrays the GC can neither move
// nor shrink, so scanning them is pure overhead.
var slabArenaKind = arena.Heap

// SetSlabArena selects the slab allocation backend ("heap" or "mmap")
// for predictors created from now on; existing predictors keep their
// backing. Slab contents are identical under either backend — SaveState
// bytes and predictions do not change.
func SetSlabArena(name string) error {
	k, err := arena.ParseKind(name)
	if err != nil {
		return err
	}
	slabArenaKind = k
	return nil
}
