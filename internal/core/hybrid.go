package core

import (
	"bytes"
	"fmt"
	"io"
)

// Hybrid combines component predictors with a per-PC chooser, the scheme
// Section 4.2 argues for ("a hybrid fcm-stride predictor with choosing
// seems to be a good approach"), analogous to McFarling's combining branch
// predictors. For every static instruction it keeps one saturating counter
// per component; the component with the highest counter makes the
// prediction (earlier components win ties, so list the cheap predictor
// first to mimic "use stride for most predictions").
type Hybrid struct {
	name       string
	components []Predictor
	max        int16
	// Chooser counters use the package's flat layout: PC handles index
	// fixed-width rows of len(components) counters in one slab.
	idx      pcTable
	pcs      []uint64
	counters []int16
	// chits is StepRun's per-component hit scratch (len(components) ×
	// run length); sv/sok hold one event's component predictions on the
	// per-event fallback path. Neither is predictor state.
	chits []byte
	sv    []uint64
	sok   []bool
}

// NewHybrid builds a chooser hybrid over the given components. Counter
// values saturate at max (e.g. 7 for 3-bit counters).
func NewHybrid(name string, max int16, components ...Predictor) *Hybrid {
	if max < 1 {
		max = 1
	}
	return &Hybrid{
		name:       name,
		components: components,
		max:        max,
	}
}

// row returns the chooser counters for one PC handle.
func (p *Hybrid) row(i int32) []int16 {
	nc := len(p.components)
	return p.counters[int(i)*nc : (int(i)+1)*nc]
}

// NewStrideFCMHybrid returns the specific hybrid the paper suggests:
// 2-delta stride chosen against an order-k FCM.
func NewStrideFCMHybrid(order int) *Hybrid {
	return NewHybrid("s2+fcm"+itoa(order), 7, NewStride2Delta(), NewFCM(order))
}

// Name implements Predictor.
func (p *Hybrid) Name() string { return p.name }

// Components returns the component predictors (for inspection in reports).
func (p *Hybrid) Components() []Predictor { return p.components }

// Predict implements Predictor: the best-counter component predicts.
func (p *Hybrid) Predict(pc uint64) (uint64, bool) {
	var counters []int16
	if h, ok := p.idx.lookup(pc); ok {
		counters = p.row(h)
	}
	bestIdx, bestCount := 0, int16(-1)
	for i := range p.components {
		c := int16(0)
		if counters != nil {
			c = counters[i]
		}
		if c > bestCount {
			bestIdx, bestCount = i, c
		}
	}
	return p.components[bestIdx].Predict(pc)
}

// Update implements Predictor: every component's would-be prediction is
// scored against the true value (adjusting its chooser counter), then all
// components are updated so each keeps learning even when not chosen.
func (p *Hybrid) Update(pc uint64, value uint64) {
	h, ok := p.idx.lookup(pc)
	if !ok {
		h = p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		for range p.components {
			p.counters = append(p.counters, 0)
		}
	}
	counters := p.row(h)
	for i, c := range p.components {
		pred, ok := c.Predict(pc)
		if ok && pred == value {
			if counters[i] < p.max {
				counters[i]++
			}
		} else if counters[i] > 0 {
			counters[i]--
		}
	}
	for _, c := range p.components {
		c.Update(pc, value)
	}
}

// BatchSafe reports whether every component has a native batch kernel,
// which is what makes the hybrid's own batched execution safe: a kernel
// asserts strictly per-PC state, and the chooser's counters are per-PC
// already. A hybrid over a cross-PC component (e.g. the bounded FCM)
// reports false and the bank falls back to per-event stepping in
// original stream order.
func (p *Hybrid) BatchSafe() bool {
	for _, c := range p.components {
		if batchOf(c) == nil {
			return false
		}
	}
	return true
}

// StepRun implements BatchPredictor. Component state evolves
// independently of the chooser, so each component's kernel runs over the
// whole run first, recording per-event correctness; the chooser loop then
// replays those hit bytes in order — component ci correct at event k is
// exactly the condition that bumps counter ci, and the hybrid's own hit
// at k is the then-best component's hit byte.
func (p *Hybrid) StepRun(pc uint64, values []uint64, hits []byte) uint64 {
	if len(values) == 0 {
		return 0
	}
	nc := len(p.components)
	h, ok := p.idx.lookup(pc)
	if !ok {
		h = p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		for range p.components {
			p.counters = append(p.counters, 0)
		}
	}
	if !p.BatchSafe() {
		// Direct callers of StepRun assert run-level ordering themselves;
		// step the run per event so non-batch components stay exact.
		return p.stepRunPerEvent(pc, values, hits, h)
	}
	need := nc * len(values)
	if cap(p.chits) < need {
		p.chits = make([]byte, need)
	}
	ch := p.chits[:need]
	for ci, c := range p.components {
		c.(BatchPredictor).StepRun(pc, values, ch[ci*len(values):(ci+1)*len(values)])
	}
	counters := p.row(h)
	var n uint64
	for k := range values {
		bestIdx, bestCount := 0, int16(-1)
		for ci := range counters {
			if counters[ci] > bestCount {
				bestIdx, bestCount = ci, counters[ci]
			}
		}
		hb := ch[bestIdx*len(values)+k]
		hits[k] = hb
		n += uint64(hb)
		for ci := range counters {
			if ch[ci*len(values)+k] != 0 {
				if counters[ci] < p.max {
					counters[ci]++
				}
			} else if counters[ci] > 0 {
				counters[ci]--
			}
		}
	}
	return n
}

// stepRunPerEvent is StepRun's event-at-a-time flavor for hybrids whose
// components lack batch kernels. Each component still predicts exactly
// once per event — the prediction feeds both the chooser scoring and, for
// the best component, the hybrid's own output — where the Predict/Update
// pair predicts twice.
func (p *Hybrid) stepRunPerEvent(pc uint64, values []uint64, hits []byte, h int32) uint64 {
	nc := len(p.components)
	if cap(p.sv) < nc {
		p.sv = make([]uint64, nc)
		p.sok = make([]bool, nc)
	}
	sv, sok := p.sv[:nc], p.sok[:nc]
	counters := p.row(h)
	var n uint64
	for k, v := range values {
		bestIdx, bestCount := 0, int16(-1)
		for ci := range counters {
			if counters[ci] > bestCount {
				bestIdx, bestCount = ci, counters[ci]
			}
		}
		for ci, c := range p.components {
			sv[ci], sok[ci] = c.Predict(pc)
		}
		hb := b2u8(sok[bestIdx] && sv[bestIdx] == v)
		hits[k] = hb
		n += uint64(hb)
		for ci := range counters {
			if sok[ci] && sv[ci] == v {
				if counters[ci] < p.max {
					counters[ci]++
				}
			} else if counters[ci] > 0 {
				counters[ci]--
			}
		}
		for _, c := range p.components {
			c.Update(pc, v)
		}
	}
	return n
}

// Reset implements Resetter.
func (p *Hybrid) Reset() {
	p.idx.reset()
	p.pcs = p.pcs[:0]
	p.counters = p.counters[:0]
	for _, c := range p.components {
		if r, ok := c.(Resetter); ok {
			r.Reset()
		}
	}
}

// TableEntries implements Sized.
func (p *Hybrid) TableEntries() (static, total int) {
	static = len(p.pcs)
	total = len(p.counters)
	for _, c := range p.components {
		if s, ok := c.(Sized); ok {
			_, t := s.TableEntries()
			total += t
		}
	}
	return static, total
}

// SaveState implements Stateful: the chooser counters as sorted per-PC
// records, then each component's own state as a length-prefixed nested
// blob (components are Stateful themselves, so the hybrid composes).
func (p *Hybrid) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.components)))
	e.uvarint(uint64(len(p.pcs)))
	var prev uint64
	for _, h := range sortedHandles(p.pcs) {
		pc := p.pcs[h]
		e.uvarint(pc - prev)
		prev = pc
		for _, c := range p.row(h) {
			e.uvarint(uint64(c)) // saturating counters never go negative
		}
	}
	for _, c := range p.components {
		st, ok := c.(Stateful)
		if !ok {
			return errState(p.name, fmt.Errorf("component %s does not implement Stateful", c.Name()))
		}
		var buf bytes.Buffer
		if err := st.SaveState(&buf); err != nil {
			return err
		}
		e.blob(buf.Bytes())
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *Hybrid) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	ncomp := d.uvarint()
	if d.err == nil && ncomp != uint64(len(p.components)) {
		return errState(p.name, fmt.Errorf("state has %d components, receiver has %d", ncomp, len(p.components)))
	}
	npc := d.uvarint()
	var idx pcTable
	var pcs []uint64
	var counters []int16
	var pc uint64
	for i := uint64(0); i < npc && d.err == nil; i++ {
		pc += d.uvarint()
		row := make([]int16, len(p.components))
		for j := range row {
			row[j] = int16(d.count(uint64(p.max)))
		}
		if d.err != nil {
			break
		}
		if _, dup := idx.lookup(pc); dup {
			return errState(p.name, errDuplicatePC(pc))
		}
		idx.insert(pc)
		pcs = append(pcs, pc)
		counters = append(counters, row...)
	}
	blobs := make([][]byte, len(p.components))
	for i := range blobs {
		blobs[i] = d.blob()
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.name, err)
	}
	// Load the nested component states only once the outer stream is
	// known-good. Components mutate in place, so back each one up first
	// and roll the loaded prefix back if a later blob fails — LoadState
	// stays all-or-nothing like every other predictor's.
	stateful := make([]Stateful, len(p.components))
	backups := make([][]byte, len(p.components))
	for i, c := range p.components {
		st, ok := c.(Stateful)
		if !ok {
			return errState(p.name, fmt.Errorf("component %s does not implement Stateful", c.Name()))
		}
		var buf bytes.Buffer
		if err := st.SaveState(&buf); err != nil {
			return errState(p.name, err)
		}
		stateful[i], backups[i] = st, buf.Bytes()
	}
	for i := range stateful {
		if err := stateful[i].LoadState(bytes.NewReader(blobs[i])); err != nil {
			for j := i - 1; j >= 0; j-- {
				// Backups are this predictor's own canonical output, so
				// reloading them cannot fail; nothing useful to do if the
				// impossible happens, the error below already reports the
				// real failure.
				stateful[j].LoadState(bytes.NewReader(backups[j]))
			}
			return errState(p.name, err)
		}
	}
	p.idx, p.pcs, p.counters = idx, pcs, counters
	return nil
}

// PCEntries implements PerPC: one chooser row per PC plus every
// component's own per-PC entries.
func (p *Hybrid) PCEntries() map[uint64]int {
	out := make(map[uint64]int, len(p.pcs))
	for _, pc := range p.pcs {
		out[pc] = len(p.components)
	}
	for _, c := range p.components {
		if pp, ok := c.(PerPC); ok {
			for pc, n := range pp.PCEntries() {
				out[pc] += n
			}
		}
	}
	return out
}

// ClassifiedPredictor routes events to per-class component predictors, the
// instruction-type hybrid Section 4.1 suggests ("a hybrid predictor based
// on instruction types"). Classes are small integers supplied by the
// caller (e.g. isa.Category values); the component for each class is built
// on first use.
type ClassifiedPredictor struct {
	name       string
	newForCls  func(class uint8) Predictor
	components map[uint8]Predictor
}

// NewClassifiedPredictor builds a per-class router; newForCls constructs
// the component used for each class.
func NewClassifiedPredictor(name string, newForCls func(class uint8) Predictor) *ClassifiedPredictor {
	return &ClassifiedPredictor{
		name:       name,
		newForCls:  newForCls,
		components: make(map[uint8]Predictor),
	}
}

// Name returns the router's identifier.
func (p *ClassifiedPredictor) Name() string { return p.name }

// component returns (building if needed) the predictor for class.
func (p *ClassifiedPredictor) component(class uint8) Predictor {
	c, ok := p.components[class]
	if !ok {
		c = p.newForCls(class)
		p.components[class] = c
	}
	return c
}

// PredictClass predicts the next value for pc within the given class.
func (p *ClassifiedPredictor) PredictClass(class uint8, pc uint64) (uint64, bool) {
	return p.component(class).Predict(pc)
}

// UpdateClass updates the class component with the true value.
func (p *ClassifiedPredictor) UpdateClass(class uint8, pc uint64, value uint64) {
	p.component(class).Update(pc, value)
}

// Reset implements Resetter.
func (p *ClassifiedPredictor) Reset() { clear(p.components) }

// SetTracker runs several predictors in lockstep over one event stream and
// tallies, for every subset of predictors, how many predictions exactly
// that subset got right. This regenerates the paper's Figure 8 (labels
// like "ls" mean last-value and stride correct but fcm wrong; "np" means
// none correct).
type SetTracker struct {
	preds  []Predictor
	counts []uint64 // indexed by bitmask over preds
	total  uint64
}

// NewSetTracker wraps the predictors (at most 16) for subset accounting.
func NewSetTracker(preds ...Predictor) *SetTracker {
	if len(preds) > 16 {
		preds = preds[:16]
	}
	return &SetTracker{preds: preds, counts: make([]uint64, 1<<len(preds))}
}

// Observe performs predict/compare/update on all predictors for one event
// and records which subset was correct. It returns the subset bitmask
// (bit i set means predictor i was correct).
func (t *SetTracker) Observe(pc uint64, value uint64) uint64 {
	mask := uint64(0)
	for i, p := range t.preds {
		pred, ok := p.Predict(pc)
		if ok && pred == value {
			mask |= 1 << i
		}
	}
	for _, p := range t.preds {
		p.Update(pc, value)
	}
	t.counts[mask]++
	t.total++
	return mask
}

// Total returns the number of observed events.
func (t *SetTracker) Total() uint64 { return t.total }

// Fraction returns the fraction of events whose correct-set was exactly
// mask.
func (t *SetTracker) Fraction(mask uint64) float64 {
	if t.total == 0 {
		return 0
	}
	return float64(t.counts[mask]) / float64(t.total)
}

// Count returns the raw tally for a subset mask.
func (t *SetTracker) Count(mask uint64) uint64 { return t.counts[mask] }

// Predictors returns the tracked predictors in bit order.
func (t *SetTracker) Predictors() []Predictor { return t.preds }
