package core

import (
	"io"

	"repro/internal/core/kernel"
)

// LastValue is the paper's simplest computational predictor: the identity
// function on the previous value. This variant always updates (no
// hysteresis), matching the "l" configuration simulated in the paper.
type LastValue struct {
	idx  pcTable
	pcs  []uint64
	vals []uint64
	// saveOrder caches the ascending-PC handle order between chunked
	// saves; revalidated by cachedSortedHandles on every use.
	saveOrder []int32
}

// NewLastValue returns an empty always-update last value predictor.
func NewLastValue() *LastValue {
	return &LastValue{}
}

// Name implements Predictor.
func (p *LastValue) Name() string { return "l" }

// Predict implements Predictor.
func (p *LastValue) Predict(pc uint64) (uint64, bool) {
	i, ok := p.idx.lookup(pc)
	if !ok {
		return 0, false
	}
	return p.vals[i], true
}

// Update implements Predictor.
func (p *LastValue) Update(pc uint64, value uint64) {
	if i, ok := p.idx.lookup(pc); ok {
		p.vals[i] = value
		return
	}
	p.idx.insert(pc)
	p.pcs = append(p.pcs, pc)
	p.vals = append(p.vals, value)
}

// StepRun implements BatchPredictor: one table probe for the whole run,
// then the word-parallel adjacent compare+count kernel — within a
// same-PC run the prediction for values[k] is simply values[k-1].
func (p *LastValue) StepRun(pc uint64, values []uint64, hits []byte) uint64 {
	if len(values) == 0 {
		return 0
	}
	k := 0
	i, ok := p.idx.lookup(pc)
	if !ok {
		i = p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		p.vals = append(p.vals, values[0])
		hits[0] = 0
		k = 1
	}
	n := kernel.CompareAdjacentCount(p.vals[i], values[k:], hits[k:])
	p.vals[i] = values[len(values)-1]
	return n
}

// Reset implements Resetter.
func (p *LastValue) Reset() {
	p.idx.reset()
	p.pcs = p.pcs[:0]
	p.vals = p.vals[:0]
}

// TableEntries implements Sized.
func (p *LastValue) TableEntries() (static, total int) {
	return len(p.vals), len(p.vals)
}

// SaveState implements Stateful: sorted (pc, value) pairs, PCs
// delta-encoded.
func (p *LastValue) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.vals)))
	var prev uint64
	for _, i := range sortedHandles(p.pcs) {
		pc := p.pcs[i]
		e.uvarint(pc - prev)
		e.uvarint(p.vals[i])
		prev = pc
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *LastValue) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	n := d.uvarint()
	var idx pcTable
	var pcs, vals []uint64
	var pc uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		pc += d.uvarint()
		v := d.uvarint()
		if d.err != nil {
			break
		}
		if _, dup := idx.lookup(pc); dup {
			return errState(p.Name(), errDuplicatePC(pc))
		}
		idx.insert(pc)
		pcs = append(pcs, pc)
		vals = append(vals, v)
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.idx, p.pcs, p.vals = idx, pcs, vals
	return nil
}

// PCEntries implements PerPC: one table entry per static instruction.
func (p *LastValue) PCEntries() map[uint64]int { return onePerPC(p.pcs) }

// LastValueCounter is the saturating-counter hysteresis variant described
// in Section 2.1: a counter per entry is incremented on success and
// decremented on failure, and the stored value is replaced only when the
// counter is below a threshold. The counter saturates at max.
type LastValueCounter struct {
	idx       pcTable
	pcs       []uint64
	entries   []lvcEntry
	max       int8
	threshold int8
	saveOrder []int32 // chunked-save handle-order cache
}

type lvcEntry struct {
	value uint64
	count int8
}

// NewLastValueCounter returns a hysteresis last-value predictor with the
// given saturation maximum and replacement threshold. A common
// configuration is max=3, threshold=1 (2-bit counter).
func NewLastValueCounter(max, threshold int8) *LastValueCounter {
	if max < 1 {
		max = 1
	}
	if threshold < 0 {
		threshold = 0
	}
	return &LastValueCounter{max: max, threshold: threshold}
}

// Name implements Predictor.
func (p *LastValueCounter) Name() string { return "lc" }

// Predict implements Predictor.
func (p *LastValueCounter) Predict(pc uint64) (uint64, bool) {
	i, ok := p.idx.lookup(pc)
	if !ok {
		return 0, false
	}
	return p.entries[i].value, true
}

// Update implements Predictor.
func (p *LastValueCounter) Update(pc uint64, value uint64) {
	i, ok := p.idx.lookup(pc)
	if !ok {
		p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		p.entries = append(p.entries, lvcEntry{value: value, count: 0})
		return
	}
	e := &p.entries[i]
	if e.value == value {
		if e.count < p.max {
			e.count++
		}
		return
	}
	if e.count > 0 {
		e.count--
	}
	if e.count <= p.threshold {
		e.value = value
	}
}

// StepRun implements BatchPredictor: the entry is read once, carried
// through the run in registers and written back at the end.
func (p *LastValueCounter) StepRun(pc uint64, values []uint64, hits []byte) uint64 {
	if len(values) == 0 {
		return 0
	}
	k := 0
	i, ok := p.idx.lookup(pc)
	if !ok {
		i = p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		p.entries = append(p.entries, lvcEntry{value: values[0], count: 0})
		hits[0] = 0
		k = 1
	}
	e := p.entries[i]
	var n uint64
	// Segment loop: every maximal stretch of events equal to the stored
	// value is a block of guaranteed hits (the counter only saturates
	// upward), applied in bulk via the prefix kernel; the mismatch event
	// that ends a segment runs the scalar hysteresis step.
	for k < len(values) {
		if m := kernel.ConstPrefixLen(values[k:], e.value); m > 0 {
			kernel.SetOnes(hits[k : k+m])
			n += uint64(m)
			if c := int(e.count) + m; c >= int(p.max) {
				e.count = p.max
			} else {
				e.count = int8(c)
			}
			k += m
			continue
		}
		hits[k] = 0
		if e.count > 0 {
			e.count--
		}
		if e.count <= p.threshold {
			e.value = values[k]
		}
		k++
	}
	p.entries[i] = e
	return n
}

// Reset implements Resetter.
func (p *LastValueCounter) Reset() {
	p.idx.reset()
	p.pcs = p.pcs[:0]
	p.entries = p.entries[:0]
}

// TableEntries implements Sized.
func (p *LastValueCounter) TableEntries() (static, total int) {
	return len(p.entries), len(p.entries)
}

// SaveState implements Stateful: sorted (pc, value, counter) triples. The
// counter never goes negative (decrements are guarded), so it encodes as
// a plain uvarint.
func (p *LastValueCounter) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.entries)))
	var prev uint64
	for _, i := range sortedHandles(p.pcs) {
		pc := p.pcs[i]
		ent := &p.entries[i]
		e.uvarint(pc - prev)
		e.uvarint(ent.value)
		e.uvarint(uint64(ent.count))
		prev = pc
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *LastValueCounter) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	n := d.uvarint()
	var idx pcTable
	var pcs []uint64
	var entries []lvcEntry
	var pc uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		pc += d.uvarint()
		value := d.uvarint()
		count := d.count(uint64(p.max))
		if d.err != nil {
			break
		}
		if _, dup := idx.lookup(pc); dup {
			return errState(p.Name(), errDuplicatePC(pc))
		}
		idx.insert(pc)
		pcs = append(pcs, pc)
		entries = append(entries, lvcEntry{value: value, count: int8(count)})
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.idx, p.pcs, p.entries = idx, pcs, entries
	return nil
}

// PCEntries implements PerPC.
func (p *LastValueCounter) PCEntries() map[uint64]int { return onePerPC(p.pcs) }

// LastValueConsecutive is the second hysteresis flavor from Section 2.1:
// the prediction only changes to a new value after that value has been
// observed a fixed number of times in succession ("changes to a new
// prediction only after it has been consistently observed").
type LastValueConsecutive struct {
	idx       pcTable
	pcs       []uint64
	entries   []lvcons
	required  int
	saveOrder []int32 // chunked-save handle-order cache
}

type lvcons struct {
	value     uint64 // current prediction
	candidate uint64 // value observed but not yet adopted
	runLength int    // consecutive observations of candidate
}

// NewLastValueConsecutive returns a predictor that adopts a new value only
// after observing it `required` times in a row (required >= 1).
func NewLastValueConsecutive(required int) *LastValueConsecutive {
	if required < 1 {
		required = 1
	}
	return &LastValueConsecutive{required: required}
}

// Name implements Predictor.
func (p *LastValueConsecutive) Name() string { return "ln" }

// Predict implements Predictor.
func (p *LastValueConsecutive) Predict(pc uint64) (uint64, bool) {
	i, ok := p.idx.lookup(pc)
	if !ok {
		return 0, false
	}
	return p.entries[i].value, true
}

// Update implements Predictor.
func (p *LastValueConsecutive) Update(pc uint64, value uint64) {
	i, ok := p.idx.lookup(pc)
	if !ok {
		p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		p.entries = append(p.entries, lvcons{value: value, candidate: value, runLength: p.required})
		return
	}
	e := &p.entries[i]
	if value == e.candidate {
		e.runLength++
	} else {
		e.candidate = value
		e.runLength = 1
	}
	if e.runLength >= p.required {
		e.value = e.candidate
	}
}

// StepRun implements BatchPredictor.
func (p *LastValueConsecutive) StepRun(pc uint64, values []uint64, hits []byte) uint64 {
	if len(values) == 0 {
		return 0
	}
	k := 0
	i, ok := p.idx.lookup(pc)
	if !ok {
		i = p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		p.entries = append(p.entries, lvcons{value: values[0], candidate: values[0], runLength: p.required})
		hits[0] = 0
		k = 1
	}
	e := p.entries[i]
	var n uint64
	for k < len(values) {
		v := values[k]
		// Steady state: prediction and candidate agree and the stream
		// repeats them — every event is a hit that only extends the
		// candidate run, so the whole stretch applies in bulk.
		if e.value == e.candidate && v == e.value {
			m := kernel.ConstPrefixLen(values[k:], v)
			kernel.SetOnes(hits[k : k+m])
			n += uint64(m)
			e.runLength += m
			k += m
			continue
		}
		h := b2u8(e.value == v)
		hits[k] = h
		n += uint64(h)
		if v == e.candidate {
			e.runLength++
		} else {
			e.candidate = v
			e.runLength = 1
		}
		if e.runLength >= p.required {
			e.value = e.candidate
		}
		k++
	}
	p.entries[i] = e
	return n
}

// Reset implements Resetter.
func (p *LastValueConsecutive) Reset() {
	p.idx.reset()
	p.pcs = p.pcs[:0]
	p.entries = p.entries[:0]
}

// TableEntries implements Sized.
func (p *LastValueConsecutive) TableEntries() (static, total int) {
	return len(p.entries), len(p.entries)
}

// SaveState implements Stateful: sorted (pc, value, candidate, runLength).
func (p *LastValueConsecutive) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.entries)))
	var prev uint64
	for _, i := range sortedHandles(p.pcs) {
		pc := p.pcs[i]
		ent := &p.entries[i]
		e.uvarint(pc - prev)
		e.uvarint(ent.value)
		e.uvarint(ent.candidate)
		e.uvarint(uint64(ent.runLength))
		prev = pc
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *LastValueConsecutive) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	n := d.uvarint()
	var idx pcTable
	var pcs []uint64
	var entries []lvcons
	var pc uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		pc += d.uvarint()
		ent := lvcons{value: d.uvarint(), candidate: d.uvarint()}
		ent.runLength = int(d.count(1 << 62))
		if d.err != nil {
			break
		}
		if _, dup := idx.lookup(pc); dup {
			return errState(p.Name(), errDuplicatePC(pc))
		}
		idx.insert(pc)
		pcs = append(pcs, pc)
		entries = append(entries, ent)
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.idx, p.pcs, p.entries = idx, pcs, entries
	return nil
}

// PCEntries implements PerPC.
func (p *LastValueConsecutive) PCEntries() map[uint64]int { return onePerPC(p.pcs) }
