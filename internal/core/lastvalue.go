package core

import "io"

// LastValue is the paper's simplest computational predictor: the identity
// function on the previous value. This variant always updates (no
// hysteresis), matching the "l" configuration simulated in the paper.
type LastValue struct {
	table map[uint64]uint64
}

// NewLastValue returns an empty always-update last value predictor.
func NewLastValue() *LastValue {
	return &LastValue{table: make(map[uint64]uint64)}
}

// Name implements Predictor.
func (p *LastValue) Name() string { return "l" }

// Predict implements Predictor.
func (p *LastValue) Predict(pc uint64) (uint64, bool) {
	v, ok := p.table[pc]
	return v, ok
}

// Update implements Predictor.
func (p *LastValue) Update(pc uint64, value uint64) {
	p.table[pc] = value
}

// Reset implements Resetter.
func (p *LastValue) Reset() {
	clear(p.table)
}

// TableEntries implements Sized.
func (p *LastValue) TableEntries() (static, total int) {
	return len(p.table), len(p.table)
}

// SaveState implements Stateful: sorted (pc, value) pairs, PCs
// delta-encoded.
func (p *LastValue) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.table)))
	var prev uint64
	for _, pc := range sortedKeys(p.table) {
		e.uvarint(pc - prev)
		e.uvarint(p.table[pc])
		prev = pc
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *LastValue) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	n := d.uvarint()
	table := make(map[uint64]uint64)
	var pc uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		pc += d.uvarint()
		table[pc] = d.uvarint()
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.table = table
	return nil
}

// PCEntries implements PerPC: one table entry per static instruction.
func (p *LastValue) PCEntries() map[uint64]int { return onePerPC(p.table) }

// LastValueCounter is the saturating-counter hysteresis variant described
// in Section 2.1: a counter per entry is incremented on success and
// decremented on failure, and the stored value is replaced only when the
// counter is below a threshold. The counter saturates at max.
type LastValueCounter struct {
	table     map[uint64]*lvcEntry
	max       int8
	threshold int8
}

type lvcEntry struct {
	value uint64
	count int8
}

// NewLastValueCounter returns a hysteresis last-value predictor with the
// given saturation maximum and replacement threshold. A common
// configuration is max=3, threshold=1 (2-bit counter).
func NewLastValueCounter(max, threshold int8) *LastValueCounter {
	if max < 1 {
		max = 1
	}
	if threshold < 0 {
		threshold = 0
	}
	return &LastValueCounter{table: make(map[uint64]*lvcEntry), max: max, threshold: threshold}
}

// Name implements Predictor.
func (p *LastValueCounter) Name() string { return "lc" }

// Predict implements Predictor.
func (p *LastValueCounter) Predict(pc uint64) (uint64, bool) {
	e, ok := p.table[pc]
	if !ok {
		return 0, false
	}
	return e.value, true
}

// Update implements Predictor.
func (p *LastValueCounter) Update(pc uint64, value uint64) {
	e, ok := p.table[pc]
	if !ok {
		p.table[pc] = &lvcEntry{value: value, count: 0}
		return
	}
	if e.value == value {
		if e.count < p.max {
			e.count++
		}
		return
	}
	if e.count > 0 {
		e.count--
	}
	if e.count <= p.threshold {
		e.value = value
	}
}

// Reset implements Resetter.
func (p *LastValueCounter) Reset() { clear(p.table) }

// TableEntries implements Sized.
func (p *LastValueCounter) TableEntries() (static, total int) {
	return len(p.table), len(p.table)
}

// SaveState implements Stateful: sorted (pc, value, counter) triples. The
// counter never goes negative (decrements are guarded), so it encodes as
// a plain uvarint.
func (p *LastValueCounter) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.table)))
	var prev uint64
	for _, pc := range sortedKeys(p.table) {
		ent := p.table[pc]
		e.uvarint(pc - prev)
		e.uvarint(ent.value)
		e.uvarint(uint64(ent.count))
		prev = pc
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *LastValueCounter) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	n := d.uvarint()
	table := make(map[uint64]*lvcEntry)
	var pc uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		pc += d.uvarint()
		value := d.uvarint()
		count := d.count(uint64(p.max))
		table[pc] = &lvcEntry{value: value, count: int8(count)}
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.table = table
	return nil
}

// PCEntries implements PerPC.
func (p *LastValueCounter) PCEntries() map[uint64]int { return onePerPC(p.table) }

// LastValueConsecutive is the second hysteresis flavor from Section 2.1:
// the prediction only changes to a new value after that value has been
// observed a fixed number of times in succession ("changes to a new
// prediction only after it has been consistently observed").
type LastValueConsecutive struct {
	table    map[uint64]*lvcons
	required int
}

type lvcons struct {
	value     uint64 // current prediction
	candidate uint64 // value observed but not yet adopted
	runLength int    // consecutive observations of candidate
}

// NewLastValueConsecutive returns a predictor that adopts a new value only
// after observing it `required` times in a row (required >= 1).
func NewLastValueConsecutive(required int) *LastValueConsecutive {
	if required < 1 {
		required = 1
	}
	return &LastValueConsecutive{table: make(map[uint64]*lvcons), required: required}
}

// Name implements Predictor.
func (p *LastValueConsecutive) Name() string { return "ln" }

// Predict implements Predictor.
func (p *LastValueConsecutive) Predict(pc uint64) (uint64, bool) {
	e, ok := p.table[pc]
	if !ok {
		return 0, false
	}
	return e.value, true
}

// Update implements Predictor.
func (p *LastValueConsecutive) Update(pc uint64, value uint64) {
	e, ok := p.table[pc]
	if !ok {
		p.table[pc] = &lvcons{value: value, candidate: value, runLength: p.required}
		return
	}
	if value == e.candidate {
		e.runLength++
	} else {
		e.candidate = value
		e.runLength = 1
	}
	if e.runLength >= p.required {
		e.value = e.candidate
	}
}

// Reset implements Resetter.
func (p *LastValueConsecutive) Reset() { clear(p.table) }

// TableEntries implements Sized.
func (p *LastValueConsecutive) TableEntries() (static, total int) {
	return len(p.table), len(p.table)
}

// SaveState implements Stateful: sorted (pc, value, candidate, runLength).
func (p *LastValueConsecutive) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.table)))
	var prev uint64
	for _, pc := range sortedKeys(p.table) {
		ent := p.table[pc]
		e.uvarint(pc - prev)
		e.uvarint(ent.value)
		e.uvarint(ent.candidate)
		e.uvarint(uint64(ent.runLength))
		prev = pc
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *LastValueConsecutive) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	n := d.uvarint()
	table := make(map[uint64]*lvcons)
	var pc uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		pc += d.uvarint()
		ent := &lvcons{value: d.uvarint(), candidate: d.uvarint()}
		ent.runLength = int(d.count(1 << 62))
		table[pc] = ent
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.table = table
	return nil
}

// PCEntries implements PerPC.
func (p *LastValueConsecutive) PCEntries() map[uint64]int { return onePerPC(p.table) }
