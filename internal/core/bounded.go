package core

import (
	"fmt"
	"io"
)

// BoundedFCM is a fixed-capacity, hashed variant of the FCM — the step
// from the paper's unbounded idealization (§4.3 notes "when real
// implementations are considered, of course this will not be possible")
// toward a realizable two-level table, as later built by the
// Sazeides/Smith follow-up work and the CVP championship predictors.
//
// Level 1 (per-PC) is a direct-mapped table of 2^pcBits entries holding
// the value history. Level 2 maps a hashed (pc, context) to a single
// predicted value with a 2-bit confidence counter. Unlike FCM, both
// levels alias: different instructions or contexts may collide, trading
// accuracy for bounded storage — exactly the effect the paper's
// methodology deliberately excludes, made measurable here.
type BoundedFCM struct {
	order   int
	l1Mask  uint64
	l2Mask  uint64
	l1      []boundedHist
	l2      []boundedEntry
	updates uint64
}

type boundedHist struct {
	tag  uint64
	hist [MaxFCMOrder]uint64
	n    int
}

type boundedEntry struct {
	tag   uint64
	value uint64
	conf  int8
}

// NewBoundedFCM builds an order-k bounded FCM with 2^pcBits level-1
// entries and 2^tableBits level-2 entries (e.g. order 3, 10, 16).
func NewBoundedFCM(order, pcBits, tableBits int) *BoundedFCM {
	if order < 1 {
		order = 1
	}
	if order > MaxFCMOrder {
		order = MaxFCMOrder
	}
	if pcBits < 1 {
		pcBits = 1
	}
	if tableBits < 1 {
		tableBits = 1
	}
	return &BoundedFCM{
		order:  order,
		l1Mask: (1 << pcBits) - 1,
		l2Mask: (1 << tableBits) - 1,
		l1:     make([]boundedHist, 1<<pcBits),
		l2:     make([]boundedEntry, 1<<tableBits),
	}
}

// Name implements Predictor.
func (p *BoundedFCM) Name() string { return "bfcm" + itoa(p.order) }

// slot1 returns the (possibly aliased) level-1 entry for pc. A tag
// mismatch means another instruction evicted this slot; its history is
// reused as-is, modelling destructive aliasing.
func (p *BoundedFCM) slot1(pc uint64) *boundedHist {
	return &p.l1[(pc>>2)&p.l1Mask]
}

// hashCtx folds pc and the value history into a level-2 index: FNV-1a
// over the little-endian bytes of each history value. The bytes are
// extracted by shifting instead of staging through a buffer — the hash
// values (and so every aliasing decision and saved table image) are
// bit-identical to the original buffered form.
func (p *BoundedFCM) hashCtx(pc uint64, h *boundedHist) uint64 {
	acc := pc * 0x9E3779B97F4A7C15
	for i := 0; i < h.n; i++ {
		v := h.hist[i]
		for s := 0; s < 64; s += 8 {
			acc = (acc ^ (v >> s & 0xff)) * 0x100000001B3
		}
	}
	return acc
}

// Predict implements Predictor: predict only with full history and
// matching level-2 tag plus non-zero confidence.
func (p *BoundedFCM) Predict(pc uint64) (uint64, bool) {
	h := p.slot1(pc)
	if h.tag != pc || h.n < p.order {
		return 0, false
	}
	hash := p.hashCtx(pc, h)
	e := &p.l2[hash&p.l2Mask]
	if e.tag != hash>>32 || e.conf <= 0 {
		return 0, false
	}
	return e.value, true
}

// Update implements Predictor.
func (p *BoundedFCM) Update(pc uint64, value uint64) {
	h := p.slot1(pc)
	if h.tag != pc {
		// Eviction: a different instruction owns the slot now.
		h.tag = pc
		h.n = 0
	}
	if h.n >= p.order {
		hash := p.hashCtx(pc, h)
		e := &p.l2[hash&p.l2Mask]
		tag := hash >> 32
		switch {
		case e.tag == tag && e.value == value:
			if e.conf < 3 {
				e.conf++
			}
		case e.tag == tag:
			e.conf--
			if e.conf <= 0 {
				e.value = value
				e.conf = 1
			}
		default:
			// Level-2 collision with another (pc, context): replace only
			// when the incumbent has no confidence left.
			e.conf--
			if e.conf <= 0 {
				e.tag = tag
				e.value = value
				e.conf = 1
			}
		}
	}
	// Shift the value history.
	if h.n < p.order {
		h.hist[h.n] = value
		h.n++
		return
	}
	copy(h.hist[:p.order-1], h.hist[1:p.order])
	h.hist[p.order-1] = value
	p.updates++
}

// Reset implements Resetter.
func (p *BoundedFCM) Reset() {
	clear(p.l1)
	clear(p.l2)
	p.updates = 0
}

// TableEntries implements Sized: fixed capacities.
func (p *BoundedFCM) TableEntries() (static, total int) {
	return len(p.l1), len(p.l1) + len(p.l2)
}

// SaveState implements Stateful. The geometry (order, table sizes) is
// written first and validated against the receiver on load. Both levels
// are encoded sparsely — only slots differing from the zero value, with
// ascending index deltas. A touched slot is never zero-valued (level 1
// always holds history, level 2 always holds confidence >= 1), so the
// sparse form loses nothing; a level-1 slot's stale history tail beyond n
// is unreachable until overwritten and is deliberately not persisted.
func (p *BoundedFCM) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(p.order))
	e.uvarint(uint64(len(p.l1)))
	e.uvarint(uint64(len(p.l2)))
	e.uvarint(p.updates)

	live1 := 0
	for i := range p.l1 {
		if h := &p.l1[i]; h.tag != 0 || h.n != 0 {
			live1++
		}
	}
	e.uvarint(uint64(live1))
	prev := uint64(0)
	for i := range p.l1 {
		h := &p.l1[i]
		if h.tag == 0 && h.n == 0 {
			continue
		}
		e.uvarint(uint64(i) - prev)
		prev = uint64(i)
		e.uvarint(h.tag)
		e.uvarint(uint64(h.n))
		for j := 0; j < h.n; j++ {
			e.uvarint(h.hist[j])
		}
	}

	live2 := 0
	for i := range p.l2 {
		if ent := &p.l2[i]; ent.tag != 0 || ent.value != 0 || ent.conf != 0 {
			live2++
		}
	}
	e.uvarint(uint64(live2))
	prev = 0
	for i := range p.l2 {
		ent := &p.l2[i]
		if ent.tag == 0 && ent.value == 0 && ent.conf == 0 {
			continue
		}
		e.uvarint(uint64(i) - prev)
		prev = uint64(i)
		e.uvarint(ent.tag)
		e.uvarint(ent.value)
		e.uvarint(uint64(ent.conf))
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *BoundedFCM) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	order := d.count(MaxFCMOrder)
	n1 := d.uvarint()
	n2 := d.uvarint()
	if d.err == nil && (int(order) != p.order || n1 != uint64(len(p.l1)) || n2 != uint64(len(p.l2))) {
		return errState(p.Name(), fmt.Errorf(
			"state geometry order=%d l1=%d l2=%d, receiver wants order=%d l1=%d l2=%d",
			order, n1, n2, p.order, len(p.l1), len(p.l2)))
	}
	updates := d.uvarint()

	l1 := make([]boundedHist, len(p.l1))
	live1 := d.count(uint64(len(p.l1)))
	idx := uint64(0)
	for i := uint64(0); i < live1 && d.err == nil; i++ {
		idx += d.uvarint()
		if idx >= uint64(len(l1)) {
			return errState(p.Name(), fmt.Errorf("level-1 index %d out of range %d", idx, len(l1)))
		}
		h := &l1[idx]
		h.tag = d.uvarint()
		h.n = int(d.count(order))
		for j := 0; j < h.n; j++ {
			h.hist[j] = d.uvarint()
		}
	}

	l2 := make([]boundedEntry, len(p.l2))
	live2 := d.count(uint64(len(p.l2)))
	idx = 0
	for i := uint64(0); i < live2 && d.err == nil; i++ {
		idx += d.uvarint()
		if idx >= uint64(len(l2)) {
			return errState(p.Name(), fmt.Errorf("level-2 index %d out of range %d", idx, len(l2)))
		}
		ent := &l2[idx]
		ent.tag = d.uvarint()
		ent.value = d.uvarint()
		ent.conf = int8(d.count(3))
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.l1, p.l2, p.updates = l1, l2, updates
	return nil
}
