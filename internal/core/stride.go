package core

import "io"

// StrideSimple is the basic stride predictor of Section 2.1: it predicts
// last + (last - secondLast) with no hysteresis, so a repeated stride
// sequence costs two mispredictions per iteration (one at the wrap, one
// re-learning the stride).
type StrideSimple struct {
	table map[uint64]*strideEntry
}

type strideEntry struct {
	last   uint64
	stride uint64 // stored as wrapped two's-complement delta
	// seen counts observations, saturating at 2: 0 values, 1 value,
	// or enough (2+) to have a stride.
	seen uint8
}

// NewStrideSimple returns an empty always-update stride predictor.
func NewStrideSimple() *StrideSimple {
	return &StrideSimple{table: make(map[uint64]*strideEntry)}
}

// Name implements Predictor.
func (p *StrideSimple) Name() string { return "s" }

// Predict implements Predictor.
func (p *StrideSimple) Predict(pc uint64) (uint64, bool) {
	e, ok := p.table[pc]
	if !ok || e.seen == 0 {
		return 0, false
	}
	// After a single observation the stride is zero, i.e. last-value
	// behavior, which matches hardware stride tables that initialize the
	// delta field to 0 on allocation.
	return e.last + e.stride, true
}

// Update implements Predictor.
func (p *StrideSimple) Update(pc uint64, value uint64) {
	e, ok := p.table[pc]
	if !ok {
		p.table[pc] = &strideEntry{last: value, seen: 1}
		return
	}
	e.stride = value - e.last
	e.last = value
	if e.seen < 2 {
		e.seen++
	}
}

// Reset implements Resetter.
func (p *StrideSimple) Reset() { clear(p.table) }

// TableEntries implements Sized.
func (p *StrideSimple) TableEntries() (static, total int) {
	return len(p.table), len(p.table)
}

// SaveState implements Stateful: sorted (pc, last, stride, seen) tuples.
func (p *StrideSimple) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.table)))
	var prev uint64
	for _, pc := range sortedKeys(p.table) {
		ent := p.table[pc]
		e.uvarint(pc - prev)
		e.uvarint(ent.last)
		e.uvarint(ent.stride)
		e.uvarint(uint64(ent.seen))
		prev = pc
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *StrideSimple) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	n := d.uvarint()
	table := make(map[uint64]*strideEntry)
	var pc uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		pc += d.uvarint()
		ent := &strideEntry{last: d.uvarint(), stride: d.uvarint()}
		ent.seen = uint8(d.count(2))
		table[pc] = ent
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.table = table
	return nil
}

// PCEntries implements PerPC.
func (p *StrideSimple) PCEntries() map[uint64]int { return onePerPC(p.table) }

// Stride2Delta is the 2-delta stride predictor of Eickemeyer &
// Vassiliadis that the paper simulates as "s2": two strides are kept; s1
// always tracks the difference of the two most recent values, while s2 is
// used for predictions and is only overwritten when the same s1 occurs
// twice in a row. Repeated stride sequences then cost one misprediction
// per iteration and the stride changes only on consistent evidence.
type Stride2Delta struct {
	table map[uint64]*s2Entry
}

type s2Entry struct {
	last uint64
	s1   uint64 // most recent delta
	s2   uint64 // prediction delta
	// s1Count counts consecutive occurrences of the current s1 value,
	// saturating at 2; when it reaches 2, s2 is set to s1.
	s1Count uint8
	seen    uint8 // 0: empty, 1: one value seen, 2: stride history valid
}

// NewStride2Delta returns an empty 2-delta stride predictor.
func NewStride2Delta() *Stride2Delta {
	return &Stride2Delta{table: make(map[uint64]*s2Entry)}
}

// Name implements Predictor.
func (p *Stride2Delta) Name() string { return "s2" }

// Predict implements Predictor. No prediction is made until two values
// have been seen, matching the trace in the paper's Figure 2 (predictions
// "0 0 3 4 5 2 3 4 ..." for the sequence 1 2 3 4 repeated).
func (p *Stride2Delta) Predict(pc uint64) (uint64, bool) {
	e, ok := p.table[pc]
	if !ok || e.seen < 2 {
		return 0, false
	}
	return e.last + e.s2, true
}

// Update implements Predictor. The first observed delta initializes both
// strides; afterwards s2 follows s1 only when the same s1 repeats.
func (p *Stride2Delta) Update(pc uint64, value uint64) {
	e, ok := p.table[pc]
	if !ok {
		p.table[pc] = &s2Entry{last: value, seen: 1}
		return
	}
	delta := value - e.last
	switch {
	case e.seen == 1:
		e.s1, e.s2, e.s1Count = delta, delta, 1
		e.seen = 2
	case delta == e.s1:
		if e.s1Count < 2 {
			e.s1Count++
		}
		if e.s1Count >= 2 {
			e.s2 = delta
		}
	default:
		e.s1 = delta
		e.s1Count = 1
	}
	e.last = value
}

// Reset implements Resetter.
func (p *Stride2Delta) Reset() { clear(p.table) }

// TableEntries implements Sized.
func (p *Stride2Delta) TableEntries() (static, total int) {
	return len(p.table), len(p.table)
}

// SaveState implements Stateful: sorted (pc, last, s1, s2, s1Count, seen).
func (p *Stride2Delta) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.table)))
	var prev uint64
	for _, pc := range sortedKeys(p.table) {
		ent := p.table[pc]
		e.uvarint(pc - prev)
		e.uvarint(ent.last)
		e.uvarint(ent.s1)
		e.uvarint(ent.s2)
		e.uvarint(uint64(ent.s1Count))
		e.uvarint(uint64(ent.seen))
		prev = pc
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *Stride2Delta) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	n := d.uvarint()
	table := make(map[uint64]*s2Entry)
	var pc uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		pc += d.uvarint()
		ent := &s2Entry{last: d.uvarint(), s1: d.uvarint(), s2: d.uvarint()}
		ent.s1Count = uint8(d.count(2))
		ent.seen = uint8(d.count(2))
		table[pc] = ent
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.table = table
	return nil
}

// PCEntries implements PerPC.
func (p *Stride2Delta) PCEntries() map[uint64]int { return onePerPC(p.table) }

// StrideCounter is the saturating-counter stride variant of Gonzalez &
// Gonzalez referenced in Section 2.1: the stride is only changed when a
// saturating counter (incremented on success, decremented on failure) is
// below a threshold. This also reduces repeated-stride mispredictions to
// one per iteration.
type StrideCounter struct {
	table     map[uint64]*scEntry
	max       int8
	threshold int8
}

type scEntry struct {
	last   uint64
	stride uint64
	count  int8
	seen   uint8
}

// NewStrideCounter returns a stride predictor guarded by a saturating
// counter with the given maximum and replacement threshold (e.g. 3 and 1).
func NewStrideCounter(max, threshold int8) *StrideCounter {
	if max < 1 {
		max = 1
	}
	if threshold < 0 {
		threshold = 0
	}
	return &StrideCounter{table: make(map[uint64]*scEntry), max: max, threshold: threshold}
}

// Name implements Predictor.
func (p *StrideCounter) Name() string { return "sc" }

// Predict implements Predictor.
func (p *StrideCounter) Predict(pc uint64) (uint64, bool) {
	e, ok := p.table[pc]
	if !ok || e.seen == 0 {
		return 0, false
	}
	return e.last + e.stride, true
}

// Update implements Predictor.
func (p *StrideCounter) Update(pc uint64, value uint64) {
	e, ok := p.table[pc]
	if !ok {
		p.table[pc] = &scEntry{last: value, seen: 1}
		return
	}
	predicted := e.last + e.stride
	if e.seen >= 1 {
		if predicted == value {
			if e.count < p.max {
				e.count++
			}
		} else {
			if e.count > 0 {
				e.count--
			}
			if e.count <= p.threshold {
				e.stride = value - e.last
			}
		}
	}
	e.last = value
	if e.seen < 2 {
		e.seen++
	}
}

// Reset implements Resetter.
func (p *StrideCounter) Reset() { clear(p.table) }

// TableEntries implements Sized.
func (p *StrideCounter) TableEntries() (static, total int) {
	return len(p.table), len(p.table)
}

// SaveState implements Stateful: sorted (pc, last, stride, count, seen).
// The counter never goes negative (decrements are guarded), so it encodes
// as a plain uvarint.
func (p *StrideCounter) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.table)))
	var prev uint64
	for _, pc := range sortedKeys(p.table) {
		ent := p.table[pc]
		e.uvarint(pc - prev)
		e.uvarint(ent.last)
		e.uvarint(ent.stride)
		e.uvarint(uint64(ent.count))
		e.uvarint(uint64(ent.seen))
		prev = pc
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *StrideCounter) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	n := d.uvarint()
	table := make(map[uint64]*scEntry)
	var pc uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		pc += d.uvarint()
		ent := &scEntry{last: d.uvarint(), stride: d.uvarint()}
		ent.count = int8(d.count(uint64(p.max)))
		ent.seen = uint8(d.count(2))
		table[pc] = ent
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.table = table
	return nil
}

// PCEntries implements PerPC.
func (p *StrideCounter) PCEntries() map[uint64]int { return onePerPC(p.table) }
