package core

import (
	"io"

	"repro/internal/core/kernel"
)

// The stride and last-value predictors share the package's flat layout:
// one open-addressed pc→handle table per predictor plus a contiguous
// entry slab (and a parallel PC slab for canonical state iteration), so
// predict/update never allocates and touches at most two cache lines.

// StrideSimple is the basic stride predictor of Section 2.1: it predicts
// last + (last - secondLast) with no hysteresis, so a repeated stride
// sequence costs two mispredictions per iteration (one at the wrap, one
// re-learning the stride).
type StrideSimple struct {
	idx     pcTable
	pcs     []uint64
	entries []strideEntry
	// saveOrder caches the ascending-PC handle order between chunked
	// saves; revalidated by cachedSortedHandles on every use.
	saveOrder []int32
}

type strideEntry struct {
	last   uint64
	stride uint64 // stored as wrapped two's-complement delta
	// seen counts observations, saturating at 2: 0 values, 1 value,
	// or enough (2+) to have a stride.
	seen uint8
}

// NewStrideSimple returns an empty always-update stride predictor.
func NewStrideSimple() *StrideSimple {
	return &StrideSimple{}
}

// Name implements Predictor.
func (p *StrideSimple) Name() string { return "s" }

// Predict implements Predictor.
func (p *StrideSimple) Predict(pc uint64) (uint64, bool) {
	i, ok := p.idx.lookup(pc)
	if !ok || p.entries[i].seen == 0 {
		return 0, false
	}
	// After a single observation the stride is zero, i.e. last-value
	// behavior, which matches hardware stride tables that initialize the
	// delta field to 0 on allocation.
	e := &p.entries[i]
	return e.last + e.stride, true
}

// Update implements Predictor.
func (p *StrideSimple) Update(pc uint64, value uint64) {
	i, ok := p.idx.lookup(pc)
	if !ok {
		p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		p.entries = append(p.entries, strideEntry{last: value, seen: 1})
		return
	}
	e := &p.entries[i]
	e.stride = value - e.last
	e.last = value
	if e.seen < 2 {
		e.seen++
	}
}

// StepRun implements BatchPredictor: one table probe per run, the entry
// carried through the loop and written back once.
func (p *StrideSimple) StepRun(pc uint64, values []uint64, hits []byte) uint64 {
	if len(values) == 0 {
		return 0
	}
	k := 0
	i, ok := p.idx.lookup(pc)
	if !ok {
		i = p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		p.entries = append(p.entries, strideEntry{last: values[0], seen: 1})
		hits[0] = 0
		k = 1
	}
	e := p.entries[i]
	// The always-update predictor's whole run is one kernel call: the
	// prediction for rest[0] is last+stride, for rest[1] it is
	// 2*rest[0]-last, and from there on 2*rest[j-1]-rest[j-2].
	rest := values[k:]
	n := kernel.CompareStrideCount(e.last, e.stride, rest, hits[k:])
	if e.seen == 0 && len(rest) > 0 && hits[k] != 0 {
		// A restored-but-empty entry makes no prediction for its first
		// event; the kernel scored it, so take it back.
		hits[k] = 0
		n--
	}
	if m := len(rest); m > 0 {
		if m >= 2 {
			e.stride = rest[m-1] - rest[m-2]
		} else {
			e.stride = rest[0] - e.last
		}
		e.last = rest[m-1]
		if s := int(e.seen) + m; s >= 2 {
			e.seen = 2
		} else {
			e.seen = uint8(s)
		}
	}
	p.entries[i] = e
	return n
}

// Reset implements Resetter.
func (p *StrideSimple) Reset() {
	p.idx.reset()
	p.pcs = p.pcs[:0]
	p.entries = p.entries[:0]
}

// TableEntries implements Sized.
func (p *StrideSimple) TableEntries() (static, total int) {
	return len(p.entries), len(p.entries)
}

// SaveState implements Stateful: sorted (pc, last, stride, seen) tuples.
func (p *StrideSimple) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.entries)))
	var prev uint64
	for _, i := range sortedHandles(p.pcs) {
		pc := p.pcs[i]
		ent := &p.entries[i]
		e.uvarint(pc - prev)
		e.uvarint(ent.last)
		e.uvarint(ent.stride)
		e.uvarint(uint64(ent.seen))
		prev = pc
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *StrideSimple) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	n := d.uvarint()
	var idx pcTable
	var pcs []uint64
	var entries []strideEntry
	var pc uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		pc += d.uvarint()
		ent := strideEntry{last: d.uvarint(), stride: d.uvarint()}
		ent.seen = uint8(d.count(2))
		if d.err != nil {
			break
		}
		if _, dup := idx.lookup(pc); dup {
			return errState(p.Name(), errDuplicatePC(pc))
		}
		idx.insert(pc)
		pcs = append(pcs, pc)
		entries = append(entries, ent)
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.idx, p.pcs, p.entries = idx, pcs, entries
	return nil
}

// PCEntries implements PerPC.
func (p *StrideSimple) PCEntries() map[uint64]int { return onePerPC(p.pcs) }

// Stride2Delta is the 2-delta stride predictor of Eickemeyer &
// Vassiliadis that the paper simulates as "s2": two strides are kept; s1
// always tracks the difference of the two most recent values, while s2 is
// used for predictions and is only overwritten when the same s1 occurs
// twice in a row. Repeated stride sequences then cost one misprediction
// per iteration and the stride changes only on consistent evidence.
type Stride2Delta struct {
	idx       pcTable
	pcs       []uint64
	entries   []s2Entry
	saveOrder []int32 // chunked-save handle-order cache
}

type s2Entry struct {
	last uint64
	s1   uint64 // most recent delta
	s2   uint64 // prediction delta
	// s1Count counts consecutive occurrences of the current s1 value,
	// saturating at 2; when it reaches 2, s2 is set to s1.
	s1Count uint8
	seen    uint8 // 0: empty, 1: one value seen, 2: stride history valid
}

// NewStride2Delta returns an empty 2-delta stride predictor.
func NewStride2Delta() *Stride2Delta {
	return &Stride2Delta{}
}

// Name implements Predictor.
func (p *Stride2Delta) Name() string { return "s2" }

// Predict implements Predictor. No prediction is made until two values
// have been seen, matching the trace in the paper's Figure 2 (predictions
// "0 0 3 4 5 2 3 4 ..." for the sequence 1 2 3 4 repeated).
func (p *Stride2Delta) Predict(pc uint64) (uint64, bool) {
	i, ok := p.idx.lookup(pc)
	if !ok || p.entries[i].seen < 2 {
		return 0, false
	}
	e := &p.entries[i]
	return e.last + e.s2, true
}

// Update implements Predictor. The first observed delta initializes both
// strides; afterwards s2 follows s1 only when the same s1 repeats.
func (p *Stride2Delta) Update(pc uint64, value uint64) {
	i, ok := p.idx.lookup(pc)
	if !ok {
		p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		p.entries = append(p.entries, s2Entry{last: value, seen: 1})
		return
	}
	e := &p.entries[i]
	delta := value - e.last
	switch {
	case e.seen == 1:
		e.s1, e.s2, e.s1Count = delta, delta, 1
		e.seen = 2
	case delta == e.s1:
		if e.s1Count < 2 {
			e.s1Count++
		}
		if e.s1Count >= 2 {
			e.s2 = delta
		}
	default:
		e.s1 = delta
		e.s1Count = 1
	}
	e.last = value
}

// StepRun implements BatchPredictor.
func (p *Stride2Delta) StepRun(pc uint64, values []uint64, hits []byte) uint64 {
	if len(values) == 0 {
		return 0
	}
	k := 0
	i, ok := p.idx.lookup(pc)
	if !ok {
		i = p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		p.entries = append(p.entries, s2Entry{last: values[0], seen: 1})
		hits[0] = 0
		k = 1
	}
	e := p.entries[i]
	var n uint64
	for k < len(values) {
		// Steady state: both strides agree, so a hit implies delta ==
		// s1 == s2 and the step only saturates s1Count — the whole
		// strided stretch applies in bulk via the prefix kernel.
		if e.seen == 2 && e.s1 == e.s2 {
			if m := kernel.StridePrefixLen(e.last, e.s2, values[k:]); m > 0 {
				kernel.SetOnes(hits[k : k+m])
				n += uint64(m)
				if c := int(e.s1Count) + m; c >= 2 {
					e.s1Count = 2
				} else {
					e.s1Count = uint8(c)
				}
				e.last = values[k+m-1]
				k += m
				continue
			}
		}
		v := values[k]
		h := b2u8(e.seen >= 2 && e.last+e.s2 == v)
		hits[k] = h
		n += uint64(h)
		delta := v - e.last
		switch {
		case e.seen == 1:
			e.s1, e.s2, e.s1Count = delta, delta, 1
			e.seen = 2
		case delta == e.s1:
			if e.s1Count < 2 {
				e.s1Count++
			}
			if e.s1Count >= 2 {
				e.s2 = delta
			}
		default:
			e.s1 = delta
			e.s1Count = 1
		}
		e.last = v
		k++
	}
	p.entries[i] = e
	return n
}

// Reset implements Resetter.
func (p *Stride2Delta) Reset() {
	p.idx.reset()
	p.pcs = p.pcs[:0]
	p.entries = p.entries[:0]
}

// TableEntries implements Sized.
func (p *Stride2Delta) TableEntries() (static, total int) {
	return len(p.entries), len(p.entries)
}

// SaveState implements Stateful: sorted (pc, last, s1, s2, s1Count, seen).
func (p *Stride2Delta) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.entries)))
	var prev uint64
	for _, i := range sortedHandles(p.pcs) {
		pc := p.pcs[i]
		ent := &p.entries[i]
		e.uvarint(pc - prev)
		e.uvarint(ent.last)
		e.uvarint(ent.s1)
		e.uvarint(ent.s2)
		e.uvarint(uint64(ent.s1Count))
		e.uvarint(uint64(ent.seen))
		prev = pc
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *Stride2Delta) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	n := d.uvarint()
	var idx pcTable
	var pcs []uint64
	var entries []s2Entry
	var pc uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		pc += d.uvarint()
		ent := s2Entry{last: d.uvarint(), s1: d.uvarint(), s2: d.uvarint()}
		ent.s1Count = uint8(d.count(2))
		ent.seen = uint8(d.count(2))
		if d.err != nil {
			break
		}
		if _, dup := idx.lookup(pc); dup {
			return errState(p.Name(), errDuplicatePC(pc))
		}
		idx.insert(pc)
		pcs = append(pcs, pc)
		entries = append(entries, ent)
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.idx, p.pcs, p.entries = idx, pcs, entries
	return nil
}

// PCEntries implements PerPC.
func (p *Stride2Delta) PCEntries() map[uint64]int { return onePerPC(p.pcs) }

// StrideCounter is the saturating-counter stride variant of Gonzalez &
// Gonzalez referenced in Section 2.1: the stride is only changed when a
// saturating counter (incremented on success, decremented on failure) is
// below a threshold. This also reduces repeated-stride mispredictions to
// one per iteration.
type StrideCounter struct {
	idx       pcTable
	pcs       []uint64
	entries   []scEntry
	max       int8
	threshold int8
	saveOrder []int32 // chunked-save handle-order cache
}

type scEntry struct {
	last   uint64
	stride uint64
	count  int8
	seen   uint8
}

// NewStrideCounter returns a stride predictor guarded by a saturating
// counter with the given maximum and replacement threshold (e.g. 3 and 1).
func NewStrideCounter(max, threshold int8) *StrideCounter {
	if max < 1 {
		max = 1
	}
	if threshold < 0 {
		threshold = 0
	}
	return &StrideCounter{max: max, threshold: threshold}
}

// Name implements Predictor.
func (p *StrideCounter) Name() string { return "sc" }

// Predict implements Predictor.
func (p *StrideCounter) Predict(pc uint64) (uint64, bool) {
	i, ok := p.idx.lookup(pc)
	if !ok || p.entries[i].seen == 0 {
		return 0, false
	}
	e := &p.entries[i]
	return e.last + e.stride, true
}

// Update implements Predictor.
func (p *StrideCounter) Update(pc uint64, value uint64) {
	i, ok := p.idx.lookup(pc)
	if !ok {
		p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		p.entries = append(p.entries, scEntry{last: value, seen: 1})
		return
	}
	e := &p.entries[i]
	predicted := e.last + e.stride
	if e.seen >= 1 {
		if predicted == value {
			if e.count < p.max {
				e.count++
			}
		} else {
			if e.count > 0 {
				e.count--
			}
			if e.count <= p.threshold {
				e.stride = value - e.last
			}
		}
	}
	e.last = value
	if e.seen < 2 {
		e.seen++
	}
}

// StepRun implements BatchPredictor.
func (p *StrideCounter) StepRun(pc uint64, values []uint64, hits []byte) uint64 {
	if len(values) == 0 {
		return 0
	}
	k := 0
	i, ok := p.idx.lookup(pc)
	if !ok {
		i = p.idx.insert(pc)
		p.pcs = append(p.pcs, pc)
		p.entries = append(p.entries, scEntry{last: values[0], seen: 1})
		hits[0] = 0
		k = 1
	}
	e := p.entries[i]
	var n uint64
	if e.seen == 0 && k < len(values) {
		// A restored-but-empty entry: no prediction, no counter logic.
		hits[k] = 0
		e.last = values[k]
		e.seen = 1
		k++
	}
	// Segment loop: a stretch that follows the sticky stride is all
	// hits and only saturates the counter, applied in bulk; the
	// mismatch ending it runs the scalar hysteresis step.
	for k < len(values) {
		if m := kernel.StridePrefixLen(e.last, e.stride, values[k:]); m > 0 {
			kernel.SetOnes(hits[k : k+m])
			n += uint64(m)
			if c := int(e.count) + m; c >= int(p.max) {
				e.count = p.max
			} else {
				e.count = int8(c)
			}
			e.last = values[k+m-1]
			if s := int(e.seen) + m; s >= 2 {
				e.seen = 2
			} else {
				e.seen = uint8(s)
			}
			k += m
			continue
		}
		v := values[k]
		hits[k] = 0
		if e.count > 0 {
			e.count--
		}
		if e.count <= p.threshold {
			e.stride = v - e.last
		}
		e.last = v
		if e.seen < 2 {
			e.seen++
		}
		k++
	}
	p.entries[i] = e
	return n
}

// Reset implements Resetter.
func (p *StrideCounter) Reset() {
	p.idx.reset()
	p.pcs = p.pcs[:0]
	p.entries = p.entries[:0]
}

// TableEntries implements Sized.
func (p *StrideCounter) TableEntries() (static, total int) {
	return len(p.entries), len(p.entries)
}

// SaveState implements Stateful: sorted (pc, last, stride, count, seen).
// The counter never goes negative (decrements are guarded), so it encodes
// as a plain uvarint.
func (p *StrideCounter) SaveState(w io.Writer) error {
	var e stateEncoder
	e.uvarint(uint64(len(p.entries)))
	var prev uint64
	for _, i := range sortedHandles(p.pcs) {
		pc := p.pcs[i]
		ent := &p.entries[i]
		e.uvarint(pc - prev)
		e.uvarint(ent.last)
		e.uvarint(ent.stride)
		e.uvarint(uint64(ent.count))
		e.uvarint(uint64(ent.seen))
		prev = pc
	}
	return e.flushTo(w)
}

// LoadState implements Stateful.
func (p *StrideCounter) LoadState(r io.Reader) error {
	d := newStateDecoder(r)
	n := d.uvarint()
	var idx pcTable
	var pcs []uint64
	var entries []scEntry
	var pc uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		pc += d.uvarint()
		ent := scEntry{last: d.uvarint(), stride: d.uvarint()}
		ent.count = int8(d.count(uint64(p.max)))
		ent.seen = uint8(d.count(2))
		if d.err != nil {
			break
		}
		if _, dup := idx.lookup(pc); dup {
			return errState(p.Name(), errDuplicatePC(pc))
		}
		idx.insert(pc)
		pcs = append(pcs, pc)
		entries = append(entries, ent)
	}
	if err := d.expectEOF(); err != nil {
		return errState(p.Name(), err)
	}
	p.idx, p.pcs, p.entries = idx, pcs, entries
	return nil
}

// PCEntries implements PerPC.
func (p *StrideCounter) PCEntries() map[uint64]int { return onePerPC(p.pcs) }
