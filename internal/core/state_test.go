package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// trainStream produces a deterministic mixed stream exercising every
// predictor family: strides, constants, short repeating patterns and
// noise, spread over a few dozen PCs (including PC 0, the zero-value
// aliasing edge for the bounded tables).
func trainStream(n int) []struct{ PC, Value uint64 } {
	rng := rand.New(rand.NewSource(42))
	evs := make([]struct{ PC, Value uint64 }, n)
	for i := range evs {
		pc := uint64(rng.Intn(48)) * 4 // includes pc 0
		var v uint64
		switch pc % 16 {
		case 0:
			v = uint64(i) * 8 // stride
		case 4:
			v = 7 // constant
		case 8:
			v = []uint64{3, 1, 4, 1, 5}[i%5] // period 5
		default:
			v = rng.Uint64() >> uint(rng.Intn(60)) // noise, varied width
		}
		evs[i] = struct{ PC, Value uint64 }{pc, v}
	}
	return evs
}

// saveBytes encodes p's state or fails the test.
func saveBytes(t *testing.T, p Predictor) []byte {
	t.Helper()
	st, ok := p.(Stateful)
	if !ok {
		t.Fatalf("%s does not implement Stateful", p.Name())
	}
	var buf bytes.Buffer
	if err := st.SaveState(&buf); err != nil {
		t.Fatalf("%s SaveState: %v", p.Name(), err)
	}
	return buf.Bytes()
}

// TestStatefulRoundTripExact is the capability's core contract, checked
// for every registry predictor: train a on a stream prefix, save, load
// into fresh b, then run both over the suffix comparing every individual
// prediction — and re-saving b must reproduce a's bytes (canonical form).
func TestStatefulRoundTripExact(t *testing.T) {
	evs := trainStream(6000)
	for _, fac := range KnownFactories() {
		t.Run(fac.Name, func(t *testing.T) {
			a := fac.New()
			for _, ev := range evs[:4000] {
				a.Predict(ev.PC)
				a.Update(ev.PC, ev.Value)
			}
			state := saveBytes(t, a)

			b := fac.New()
			if err := b.(Stateful).LoadState(bytes.NewReader(state)); err != nil {
				t.Fatalf("LoadState: %v", err)
			}
			if got := saveBytes(t, b); !bytes.Equal(got, state) {
				t.Fatalf("re-saved state is not byte-identical (%d vs %d bytes)", len(got), len(state))
			}
			for i, ev := range evs[4000:] {
				av, aok := a.Predict(ev.PC)
				bv, bok := b.Predict(ev.PC)
				if aok != bok || av != bv {
					t.Fatalf("event %d pc=%#x: original (%d,%v) vs restored (%d,%v)", i, ev.PC, av, aok, bv, bok)
				}
				a.Update(ev.PC, ev.Value)
				b.Update(ev.PC, ev.Value)
			}
			// Final states must agree byte-for-byte, too.
			if !bytes.Equal(saveBytes(t, a), saveBytes(t, b)) {
				t.Fatal("states diverged after continued updates")
			}
		})
	}
}

// TestStatefulEmptyRoundTrip covers the untrained edge: an empty save
// must load into an empty, working predictor.
func TestStatefulEmptyRoundTrip(t *testing.T) {
	for _, fac := range KnownFactories() {
		t.Run(fac.Name, func(t *testing.T) {
			state := saveBytes(t, fac.New())
			b := fac.New()
			if err := b.(Stateful).LoadState(bytes.NewReader(state)); err != nil {
				t.Fatalf("LoadState of empty state: %v", err)
			}
			if _, ok := b.Predict(4); ok {
				t.Fatal("restored-empty predictor predicted")
			}
			b.Update(4, 9)
		})
	}
}

// TestLoadStateReplacesExisting: LoadState is an implicit Reset — state
// present before the load must not leak through.
func TestLoadStateReplacesExisting(t *testing.T) {
	evs := trainStream(2000)
	for _, fac := range KnownFactories() {
		t.Run(fac.Name, func(t *testing.T) {
			a := fac.New()
			for _, ev := range evs[:500] {
				a.Update(ev.PC, ev.Value)
			}
			want := saveBytes(t, a)

			b := fac.New()
			for _, ev := range evs[500:] { // different training
				b.Update(ev.PC, ev.Value)
			}
			if err := b.(Stateful).LoadState(bytes.NewReader(want)); err != nil {
				t.Fatalf("LoadState: %v", err)
			}
			if got := saveBytes(t, b); !bytes.Equal(got, want) {
				t.Fatal("pre-existing state leaked through LoadState")
			}
		})
	}
}

// TestLoadStateRejectsCorrupt feeds every predictor truncations and
// bit-flips of a valid state: the decoder must return an error or, for
// mutations that still parse, at minimum never panic.
func TestLoadStateRejectsCorrupt(t *testing.T) {
	evs := trainStream(3000)
	for _, fac := range KnownFactories() {
		t.Run(fac.Name, func(t *testing.T) {
			a := fac.New()
			for _, ev := range evs {
				a.Update(ev.PC, ev.Value)
			}
			state := saveBytes(t, a)
			if len(state) < 8 {
				t.Fatalf("state unexpectedly tiny: %d bytes", len(state))
			}
			// Every truncation must fail: the formats are exactly sized.
			for _, cut := range []int{1, len(state) / 2, len(state) - 1} {
				if err := fac.New().(Stateful).LoadState(bytes.NewReader(state[:cut])); err == nil {
					t.Fatalf("truncation at %d accepted", cut)
				}
			}
			// Trailing garbage must fail (expectEOF).
			withTail := append(append([]byte(nil), state...), 0x01)
			if err := fac.New().(Stateful).LoadState(bytes.NewReader(withTail)); err == nil {
				t.Fatal("trailing garbage accepted")
			}
			// A wild leading count must fail without huge allocation.
			huge := append([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, state...)
			if err := fac.New().(Stateful).LoadState(bytes.NewReader(huge)); err == nil {
				t.Fatal("absurd element count accepted")
			}
			// Deterministic bit flips: must never panic.
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 200; i++ {
				mut := append([]byte(nil), state...)
				mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
				fac.New().(Stateful).LoadState(bytes.NewReader(mut))
			}
		})
	}
}

// TestStatefulConfigMismatch: structured predictors must reject state
// saved by a differently-configured instance rather than corrupt their
// tables.
func TestStatefulConfigMismatch(t *testing.T) {
	evs := trainStream(1000)

	f2 := NewFCM(2)
	for _, ev := range evs {
		f2.Update(ev.PC, ev.Value)
	}
	var buf bytes.Buffer
	if err := f2.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := NewFCM(3).LoadState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("order-3 FCM accepted order-2 state")
	}
	if err := NewFCMNoBlend(2).LoadState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("no-blend FCM accepted blended state")
	}

	bf := NewBoundedFCM(3, 8, 10)
	for _, ev := range evs {
		bf.Update(ev.PC, ev.Value)
	}
	buf.Reset()
	if err := bf.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := NewBoundedFCM(3, 9, 10).LoadState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("bounded FCM accepted mismatched level-1 geometry")
	}

	h2 := NewHybrid("h2", 7, NewLastValue(), NewStrideSimple())
	for _, ev := range evs {
		h2.Update(ev.PC, ev.Value)
	}
	buf.Reset()
	if err := h2.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	h3 := NewHybrid("h3", 7, NewLastValue(), NewStrideSimple(), NewFCM(1))
	if err := h3.LoadState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("3-component hybrid accepted 2-component state")
	}
}

// TestHybridLoadStateAtomic: a component blob that fails to decode after
// an earlier component already loaded must roll the whole hybrid back —
// LoadState is all-or-nothing like every other predictor's.
func TestHybridLoadStateAtomic(t *testing.T) {
	evs := trainStream(2000)
	a := NewHybrid("h", 7, NewLastValue(), NewFCM(1))
	for _, ev := range evs[:1000] {
		a.Update(ev.PC, ev.Value)
	}
	full := saveBytes(t, a)
	// The hybrid's stream ends with blob(component0), blob(component1);
	// replace component1's content with same-length garbage so the outer
	// framing still parses, component0 loads, and component1's decode
	// fails.
	fcmBlob := saveBytes(t, a.Components()[1])
	corrupt := append([]byte(nil), full[:len(full)-len(fcmBlob)]...)
	for range fcmBlob {
		corrupt = append(corrupt, 0xFF)
	}

	b := NewHybrid("h", 7, NewLastValue(), NewFCM(1))
	for _, ev := range evs[1000:] { // different training than a
		b.Update(ev.PC, ev.Value)
	}
	before := saveBytes(t, b)
	if err := b.LoadState(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt component blob accepted")
	}
	if got := saveBytes(t, b); !bytes.Equal(got, before) {
		t.Fatal("failed LoadState left the hybrid partially loaded")
	}
}

// TestRegistryAllStateful pins the registry-wide capability: every
// predictor the service can be configured with is checkpointable, and the
// PC-local ones report per-PC occupancy for offline inspection.
func TestRegistryAllStateful(t *testing.T) {
	for _, fac := range KnownFactories() {
		p := fac.New()
		if _, ok := p.(Stateful); !ok {
			t.Errorf("registry predictor %q does not implement Stateful", fac.Name)
		}
		if _, ok := p.(PerPC); !ok && fac.PCLocal {
			t.Errorf("PC-local predictor %q does not implement PerPC", fac.Name)
		}
	}
}

// TestPCEntriesMatchesTableEntries: summed per-PC occupancy must agree
// with the aggregate Sized view for map-backed predictors.
func TestPCEntriesMatchesTableEntries(t *testing.T) {
	evs := trainStream(4000)
	for _, fac := range KnownFactories() {
		if !fac.PCLocal {
			continue
		}
		t.Run(fac.Name, func(t *testing.T) {
			p := fac.New()
			for _, ev := range evs {
				p.Update(ev.PC, ev.Value)
			}
			perPC := p.(PerPC).PCEntries()
			static, total := p.(Sized).TableEntries()
			sum := 0
			for _, n := range perPC {
				sum += n
			}
			if len(perPC) != static {
				t.Fatalf("PCEntries has %d PCs, Sized reports %d static", len(perPC), static)
			}
			if sum != total {
				t.Fatalf("PCEntries sum %d != Sized total %d", sum, total)
			}
		})
	}
}
