package core

import "testing"

func TestBoundedFCMLearnsRepeatingSequence(t *testing.T) {
	p := NewBoundedFCM(3, 10, 16)
	seq := []uint64{10, 20, 30, 40}
	misses := 0
	for rep := 0; rep < 20; rep++ {
		for _, v := range seq {
			pred, ok := p.Predict(0x400)
			if rep >= 4 && (!ok || pred != v) {
				misses++
			}
			p.Update(0x400, v)
		}
	}
	if misses != 0 {
		t.Fatalf("bounded fcm: %d steady-state misses on RS, want 0", misses)
	}
}

func TestBoundedFCMDestructiveAliasing(t *testing.T) {
	// Two PCs mapping to the same level-1 slot must evict each other;
	// with only 2 L1 entries, pc and pc+8*(1<<1) collide.
	p := NewBoundedFCM(2, 1, 12)
	pcA, pcB := uint64(0x00), uint64(0x10) // both index slot 0 with 1-bit mask... pcA>>2=0, pcB>>2=4 -> &1 = 0
	for i := 0; i < 50; i++ {
		p.Update(pcA, 7)
		p.Update(pcB, 9) // evicts pcA's history every time
	}
	// After interleaved eviction neither PC can accumulate full history,
	// so no prediction is possible: destructive aliasing in action.
	if _, ok := p.Predict(pcA); ok {
		t.Fatal("expected aliasing to prevent prediction for pcA")
	}
}

func TestBoundedFCMUnboundedComparison(t *testing.T) {
	// On a stream of many static instructions with repeating patterns, a
	// tiny bounded FCM must do strictly worse than the unbounded FCM,
	// and a generously sized one should approach it.
	gen := func(p Predictor) float64 {
		var acc Accuracy
		patterns := [][]uint64{
			{1, 2, 3}, {9, 9, 5}, {100, 50, 100, 75}, {42},
		}
		for i := 0; i < 30_000; i++ {
			pc := uint64(i%997) * 4
			pat := patterns[pc%uint64(len(patterns))]
			v := pat[i%len(pat)]
			pred, ok := p.Predict(pc)
			acc.Observe(ok && pred == v)
			p.Update(pc, v)
		}
		return acc.Rate()
	}
	unbounded := gen(NewFCM(3))
	big := gen(NewBoundedFCM(3, 12, 18))
	tiny := gen(NewBoundedFCM(3, 4, 8))
	if !(tiny < big) {
		t.Fatalf("tiny bounded (%.3f) should underperform big bounded (%.3f)", tiny, big)
	}
	if !(big <= unbounded+0.02) {
		t.Fatalf("bounded (%.3f) should not beat unbounded (%.3f)", big, unbounded)
	}
	if big < unbounded-0.25 {
		t.Fatalf("generous bounded (%.3f) too far below unbounded (%.3f)", big, unbounded)
	}
}

func TestBoundedFCMReset(t *testing.T) {
	p := NewBoundedFCM(2, 8, 12)
	for i := 0; i < 100; i++ {
		p.Update(4, uint64(i%3))
	}
	p.Reset()
	if _, ok := p.Predict(4); ok {
		t.Fatal("reset bounded fcm must not predict")
	}
	static, total := p.TableEntries()
	if static != 1<<8 || total != (1<<8)+(1<<12) {
		t.Fatalf("capacities: static=%d total=%d", static, total)
	}
}

func TestBoundedFCMConfidenceResistsNoise(t *testing.T) {
	p := NewBoundedFCM(1, 8, 12)
	// Train context 5 -> 7 strongly.
	for i := 0; i < 20; i++ {
		p.Update(8, 5)
		p.Update(8, 7)
	}
	// One noisy occurrence must not flip the high-confidence entry.
	p.Update(8, 5)
	p.Update(8, 99)
	p.Update(8, 5)
	if v, ok := p.Predict(8); !ok || v != 7 {
		t.Fatalf("confidence lost to single noise event: got (%d,%v)", v, ok)
	}
}
