package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sample builds a small two-shard snapshot with nontrivial content.
func sample() *Snapshot {
	return &Snapshot{
		Meta: Meta{
			CreatedUnixNano: 1_700_000_000_123_456_789,
			Predictors:      []string{"l", "s2", "fcm3"},
		},
		Shards: []ShardState{
			{
				Shard:  0,
				Events: 1000,
				PCs:    []uint64{0x400, 0x404, 0x90000},
				Preds: []PredState{
					{Name: "l", Correct: 400, Total: 1000, State: []byte{1, 2, 3}},
					{Name: "s2", Correct: 500, Total: 1000, State: []byte{}},
					{Name: "fcm3", Correct: 700, Total: 1000, State: bytes.Repeat([]byte{0xAB}, 300)},
				},
			},
			{
				Shard:  1,
				Events: 250,
				PCs:    nil,
				Preds: []PredState{
					{Name: "l", Correct: 1, Total: 250, State: []byte{9}},
					{Name: "s2", Correct: 2, Total: 250, State: []byte{0}},
					{Name: "fcm3", Correct: 3, Total: 250, State: nil},
				},
			},
		},
	}
}

func encodeOK(t *testing.T, s *Snapshot) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	id, err := Encode(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	return id, buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sample()
	id, data := encodeOK(t, s)
	if s.Meta.Events != 1250 || s.Meta.Shards != 2 || s.Meta.ID != id {
		t.Fatalf("Encode did not normalize meta: %+v", s.Meta)
	}
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.ID != id {
		t.Fatalf("decoded ID %s, want %s", got.Meta.ID, id)
	}
	if got.Meta.FormatVersion != FormatVersion || got.Meta.Events != 1250 {
		t.Fatalf("meta = %+v", got.Meta)
	}
	// Normalize nil-vs-empty before the deep compare: the wire format
	// cannot distinguish them and neither do consumers.
	want := sample()
	_, _ = Encode(&bytes.Buffer{}, want)
	for si := range want.Shards {
		for pi := range want.Shards[si].Preds {
			if len(want.Shards[si].Preds[pi].State) == 0 {
				want.Shards[si].Preds[pi].State = nil
			}
			if len(got.Shards[si].Preds[pi].State) == 0 {
				got.Shards[si].Preds[pi].State = nil
			}
		}
	}
	if !reflect.DeepEqual(got.Shards, want.Shards) {
		t.Fatalf("shards differ:\n got %+v\nwant %+v", got.Shards, want.Shards)
	}
	// Canonical: re-encoding the decoded snapshot is byte-identical.
	id2, data2 := encodeOK(t, got)
	if id2 != id || !bytes.Equal(data2, data) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestEncodeRejectsMalformedInput(t *testing.T) {
	for name, mutate := range map[string]func(*Snapshot){
		"no shards":          func(s *Snapshot) { s.Shards = nil },
		"no predictors":      func(s *Snapshot) { s.Meta.Predictors = nil },
		"shard id gap":       func(s *Snapshot) { s.Shards[1].Shard = 2 },
		"pred count":         func(s *Snapshot) { s.Shards[0].Preds = s.Shards[0].Preds[:2] },
		"pred name mismatch": func(s *Snapshot) { s.Shards[1].Preds[0].Name = "zzz" },
		"unsorted pcs":       func(s *Snapshot) { s.Shards[0].PCs = []uint64{8, 4} },
		"duplicate pcs":      func(s *Snapshot) { s.Shards[0].PCs = []uint64{4, 4} },
		"empty pred name":    func(s *Snapshot) { s.Meta.Predictors[0] = "" },
	} {
		s := sample()
		mutate(s)
		if _, err := Encode(&bytes.Buffer{}, s); err == nil {
			t.Errorf("%s: Encode accepted", name)
		}
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	_, data := encodeOK(t, sample())

	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[0] ^= 0x40
		if _, err := DecodeBytes(mut); err == nil || errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want a magic error", err)
		}
	})
	t.Run("flipped payload byte fails checksum", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[len(Magic)+3] ^= 0x01
		if _, err := DecodeBytes(mut); !errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("flipped trailer byte fails checksum", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[len(mut)-1] ^= 0x80
		if _, err := DecodeBytes(mut); !errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(data); cut++ {
			if _, err := DecodeBytes(data[:cut]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", cut)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := DecodeBytes(append(append([]byte(nil), data...), 0xEE)); err == nil {
			t.Fatal("trailing garbage accepted")
		}
	})
}

// rewrap recomputes the CRC trailer over a mutated payload, building an
// internally consistent file so structural validation (not the checksum)
// must catch the damage.
func rewrap(payload []byte) []byte {
	out := append([]byte(nil), Magic...)
	out = append(out, payload...)
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], crc64.Checksum(payload, crcTable))
	return append(out, trailer[:]...)
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	_, data := encodeOK(t, sample())
	payload := append([]byte(nil), data[len(Magic):len(data)-8]...)
	if payload[0] != FormatVersion {
		t.Fatalf("version byte is %d, layout changed?", payload[0])
	}
	payload[0] = FormatVersion + 1
	if _, err := DecodeBytes(rewrap(payload)); err == nil ||
		!strings.Contains(err.Error(), "unsupported format version") {
		t.Fatalf("got %v, want unsupported-version error", err)
	}
}

func TestDecodeRejectsTruncatedVarint(t *testing.T) {
	_, data := encodeOK(t, sample())
	payload := append([]byte(nil), data[len(Magic):len(data)-8]...)
	// Cut the payload mid-structure but keep a valid checksum: the error
	// must come from varint/structure parsing, proving decode does not
	// rely on the checksum alone to catch short input.
	short := payload[:len(payload)/2]
	if _, err := DecodeBytes(rewrap(short)); err == nil {
		t.Fatal("truncated payload with valid checksum accepted")
	}
	// A dangling continuation byte at the end of the payload.
	cont := append(append([]byte(nil), payload[:3]...), 0x80)
	if _, err := DecodeBytes(rewrap(cont)); err == nil {
		t.Fatal("dangling varint continuation accepted")
	}
}

func TestDecodeRejectsHostileCounts(t *testing.T) {
	// Claim 2^40 predictors in an otherwise tiny file: the count limit
	// must reject it without attempting the allocation.
	var payload []byte
	payload = binary.AppendUvarint(payload, FormatVersion)
	payload = binary.AppendUvarint(payload, 0)          // created
	payload = binary.AppendUvarint(payload, 0)          // events
	payload = binary.AppendUvarint(payload, 1)          // shards
	payload = binary.AppendUvarint(payload, 1<<40)      // predictors
	if _, err := DecodeBytes(rewrap(payload)); err == nil {
		t.Fatal("absurd predictor count accepted")
	}
	// Claim more PCs than the file has bytes left.
	payload = nil
	payload = binary.AppendUvarint(payload, FormatVersion)
	payload = binary.AppendUvarint(payload, 0) // created
	payload = binary.AppendUvarint(payload, 0) // events
	payload = binary.AppendUvarint(payload, 1) // shards
	payload = binary.AppendUvarint(payload, 1) // predictors
	payload = binary.AppendUvarint(payload, 1)
	payload = append(payload, 'l')
	payload = binary.AppendUvarint(payload, 0)     // shard id
	payload = binary.AppendUvarint(payload, 0)     // shard events
	payload = binary.AppendUvarint(payload, 1<<30) // npcs far beyond payload size
	if _, err := DecodeBytes(rewrap(payload)); err == nil {
		t.Fatal("PC count beyond payload size accepted")
	}
}

func TestFileRoundTripAndLatest(t *testing.T) {
	dir := t.TempDir()
	if _, err := Latest(dir); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Latest on empty dir = %v, want fs.ErrNotExist", err)
	}

	s1 := sample()
	p1, err := WriteFileAtomic(dir, s1)
	if err != nil {
		t.Fatal(err)
	}
	s2 := sample()
	s2.Shards[0].Events += 500
	s2.Shards[0].Preds[0].Correct += 123
	p2, err := WriteFileAtomic(dir, s2)
	if err != nil {
		t.Fatal(err)
	}

	got, err := ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.ID != s1.Meta.ID || got.Meta.Events != s1.Meta.Events {
		t.Fatalf("read back %+v, want %+v", got.Meta, s1.Meta)
	}

	latest, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest != p2 {
		t.Fatalf("Latest = %s, want %s", latest, p2)
	}

	// No temp files may survive a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".vpsnap-tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}

	// SweepTemp removes orphaned in-progress files and nothing else.
	stray := filepath.Join(dir, ".vpsnap-tmp-12345")
	if err := os.WriteFile(stray, []byte("partial"), 0o600); err != nil {
		t.Fatal(err)
	}
	removed, err := SweepTemp(dir)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("SweepTemp removed %d files, want 1", removed)
	}
	if _, err := os.Stat(stray); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("stray temp file survived the sweep")
	}
	if _, err := os.Stat(p1); err != nil {
		t.Fatalf("sweep touched a finished snapshot: %v", err)
	}

	// A corrupted file on disk is rejected with its path in the error.
	raw, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	bad := filepath.Join(dir, "snap-99999999999999999999-corrupt.vpsnap")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil || !strings.Contains(err.Error(), bad) {
		t.Fatalf("corrupt file read = %v, want error naming %s", err, bad)
	}
}
