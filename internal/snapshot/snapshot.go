// Package snapshot is the durability layer for predictor state: a
// versioned, checksummed, varint-packed binary codec for the full learned
// state of a sharded predictor bank, plus atomic file helpers for
// checkpoint directories.
//
// In the information-theoretic framing the reproduction follows (Bialek &
// Tishby's predictive information), a predictor's tables are the
// compressed summary of the past that carries all of its predictive
// information about the future. A snapshot persists exactly that summary:
// restoring one and continuing a stream must be bit-identical to never
// having stopped, which is what lets a restarted service skip the
// cold-start learning period the paper's Table 1 and Figure 2 measure.
//
// On-disk layout:
//
//	8 bytes   magic "VPSNAP01"
//	payload   varint-packed sections (below)
//	8 bytes   little-endian CRC-64/ECMA of the payload
//
// The payload is, in order: format version, creation time (unix nanos),
// total events, shard count, the predictor name list, then one section
// per shard: shard id, shard events, the shard's sorted unique PCs
// (delta-encoded), and per predictor its lifetime tallies and an opaque
// state blob produced by core.Stateful.SaveState. Everything inside a
// blob is private to the predictor type; this package only frames,
// versions and checksums.
//
// A snapshot's ID is the hex CRC-64 of its payload — content-addressed,
// so two snapshots of identical state (and creation time) share an ID and
// any corruption changes it.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
)

// Magic is the 8-byte file signature; the trailing "01" is the on-disk
// generation and changes only on incompatible layout changes.
const Magic = "VPSNAP01"

// FormatVersion is the payload schema version written by Encode.
const FormatVersion = 1

// Decoding limits: generous for real deployments, tight enough that a
// hostile header cannot demand absurd allocations before the bytes
// backing them have actually been read.
const (
	maxShards     = 1 << 16
	maxPredictors = 1024
	maxNameLen    = 256
)

// ErrChecksum reports a payload whose trailer CRC does not match.
var ErrChecksum = errors.New("snapshot: checksum mismatch")

// crcTable is the CRC-64/ECMA table shared by encode and decode.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Meta describes a snapshot as a whole.
type Meta struct {
	// FormatVersion is the payload schema version read from the file.
	FormatVersion int
	// ID is the content-addressed snapshot identifier (hex CRC-64 of the
	// payload). Filled by Encode and Decode; ignored as input.
	ID string
	// CreatedUnixNano is the checkpoint wall-clock time.
	CreatedUnixNano int64
	// Events is the total event count across shards at checkpoint time.
	Events uint64
	// Shards is the number of shard sections.
	Shards int
	// Predictors is the bank's predictor names, in bank order.
	Predictors []string
}

// PredState is one predictor's persisted state within one shard.
type PredState struct {
	// Name is the registry name; always equal to the matching entry of
	// Meta.Predictors.
	Name string
	// Correct and Total are the predictor's lifetime tally on this shard.
	Correct uint64
	Total   uint64
	// State is the opaque core.Stateful blob.
	State []byte
}

// ShardState is one shard's full persisted state.
type ShardState struct {
	// Shard is the shard index in [0, Meta.Shards).
	Shard int
	// Events is the shard's lifetime event count.
	Events uint64
	// PCs is the shard's set of observed PCs, ascending and unique.
	PCs []uint64
	// Preds holds one entry per bank predictor, in bank order.
	Preds []PredState
}

// Snapshot is a fully decoded snapshot.
type Snapshot struct {
	Meta   Meta
	Shards []ShardState
}

// StateBytes returns the total size of the opaque predictor state blobs,
// the dominant term of the file size.
func (s *Snapshot) StateBytes() int {
	n := 0
	for _, sh := range s.Shards {
		for _, p := range sh.Preds {
			n += len(p.State)
		}
	}
	return n
}

// Encode writes the snapshot and returns its content-addressed ID. The
// output is canonical: Meta.Events and Meta.Shards are derived from the
// shard sections, and shard sections must arrive ordered by shard id with
// ascending PCs (Encode validates rather than silently reorders, since
// out-of-order input indicates a bug in the capture path).
func Encode(w io.Writer, s *Snapshot) (string, error) {
	if len(s.Shards) == 0 || len(s.Shards) > maxShards {
		return "", fmt.Errorf("snapshot: invalid shard count %d", len(s.Shards))
	}
	if len(s.Meta.Predictors) == 0 || len(s.Meta.Predictors) > maxPredictors {
		return "", fmt.Errorf("snapshot: invalid predictor count %d", len(s.Meta.Predictors))
	}

	var b []byte
	b = binary.AppendUvarint(b, FormatVersion)
	b = binary.AppendUvarint(b, uint64(s.Meta.CreatedUnixNano))
	var events uint64
	for _, sh := range s.Shards {
		events += sh.Events
	}
	b = binary.AppendUvarint(b, events)
	b = binary.AppendUvarint(b, uint64(len(s.Shards)))
	b = binary.AppendUvarint(b, uint64(len(s.Meta.Predictors)))
	for _, name := range s.Meta.Predictors {
		if len(name) == 0 || len(name) > maxNameLen {
			return "", fmt.Errorf("snapshot: invalid predictor name %q", name)
		}
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
	}
	for i, sh := range s.Shards {
		if sh.Shard != i {
			return "", fmt.Errorf("snapshot: shard section %d has id %d (must be ordered, gap-free)", i, sh.Shard)
		}
		if len(sh.Preds) != len(s.Meta.Predictors) {
			return "", fmt.Errorf("snapshot: shard %d has %d predictors, bank has %d",
				i, len(sh.Preds), len(s.Meta.Predictors))
		}
		b = binary.AppendUvarint(b, uint64(sh.Shard))
		b = binary.AppendUvarint(b, sh.Events)
		b = binary.AppendUvarint(b, uint64(len(sh.PCs)))
		var prev uint64
		for j, pc := range sh.PCs {
			if j > 0 && pc <= prev {
				return "", fmt.Errorf("snapshot: shard %d PCs not strictly ascending", i)
			}
			b = binary.AppendUvarint(b, pc-prev)
			prev = pc
		}
		for j, ps := range sh.Preds {
			if ps.Name != s.Meta.Predictors[j] {
				return "", fmt.Errorf("snapshot: shard %d predictor %d is %q, bank says %q",
					i, j, ps.Name, s.Meta.Predictors[j])
			}
			b = binary.AppendUvarint(b, ps.Correct)
			b = binary.AppendUvarint(b, ps.Total)
			b = binary.AppendUvarint(b, uint64(len(ps.State)))
			b = append(b, ps.State...)
		}
	}

	crc := crc64.Checksum(b, crcTable)
	id := fmt.Sprintf("%016x", crc)
	if _, err := w.Write([]byte(Magic)); err != nil {
		return "", err
	}
	if _, err := w.Write(b); err != nil {
		return "", err
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], crc)
	if _, err := w.Write(trailer[:]); err != nil {
		return "", err
	}
	s.Meta.FormatVersion = FormatVersion
	s.Meta.ID = id
	s.Meta.Events = events
	s.Meta.Shards = len(s.Shards)
	return id, nil
}

// Decode reads and verifies one snapshot. Malformed input yields an
// error, never a panic, and allocations stay proportional to the bytes
// actually present.
func Decode(r io.Reader) (*Snapshot, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", magic[:])
	}
	rest, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return decodePayload(rest)
}

// DecodeBytes decodes a snapshot from an in-memory image.
func DecodeBytes(data []byte) (*Snapshot, error) {
	if len(data) < len(Magic) {
		return nil, fmt.Errorf("snapshot: %w", io.ErrUnexpectedEOF)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", data[:len(Magic)])
	}
	return decodePayload(data[len(Magic):])
}

// decodePayload parses payload+trailer (everything after the magic).
func decodePayload(b []byte) (*Snapshot, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("snapshot: %w", io.ErrUnexpectedEOF)
	}
	payload, trailer := b[:len(b)-8], b[len(b)-8:]
	crc := crc64.Checksum(payload, crcTable)
	if binary.LittleEndian.Uint64(trailer) != crc {
		return nil, ErrChecksum
	}

	d := &sdec{p: payload}
	s := &Snapshot{}
	version := d.uvarint()
	if d.err == nil && version != FormatVersion {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (supported: %d)", version, FormatVersion)
	}
	s.Meta.FormatVersion = int(version)
	s.Meta.ID = fmt.Sprintf("%016x", crc)
	s.Meta.CreatedUnixNano = int64(d.uvarint())
	s.Meta.Events = d.uvarint()
	nshards := d.count(maxShards)
	npred := d.count(maxPredictors)
	if d.err == nil && (nshards == 0 || npred == 0) {
		return nil, errors.New("snapshot: empty shard or predictor list")
	}
	s.Meta.Shards = int(nshards)
	for i := uint64(0); i < npred && d.err == nil; i++ {
		s.Meta.Predictors = append(s.Meta.Predictors, string(d.bytes(d.count(maxNameLen))))
	}

	var sumEvents uint64
	for i := uint64(0); i < nshards && d.err == nil; i++ {
		sh := ShardState{Shard: int(d.uvarint())}
		if d.err == nil && sh.Shard != int(i) {
			return nil, fmt.Errorf("snapshot: shard section %d has id %d", i, sh.Shard)
		}
		sh.Events = d.uvarint()
		sumEvents += sh.Events
		npc := d.count(uint64(len(d.p))) // each PC is at least one byte
		var pc uint64
		for j := uint64(0); j < npc && d.err == nil; j++ {
			next := pc + d.uvarint()
			if j > 0 && next <= pc { // zero delta or uint64 wraparound
				return nil, fmt.Errorf("snapshot: shard %d PCs not strictly ascending", i)
			}
			pc = next
			sh.PCs = append(sh.PCs, pc)
		}
		for j := uint64(0); j < npred && d.err == nil; j++ {
			ps := PredState{Name: s.Meta.Predictors[j]}
			ps.Correct = d.uvarint()
			ps.Total = d.uvarint()
			ps.State = d.bytes(d.count(uint64(len(d.p))))
			sh.Preds = append(sh.Preds, ps)
		}
		s.Shards = append(s.Shards, sh)
	}
	if d.err != nil {
		return nil, fmt.Errorf("snapshot: %w", d.err)
	}
	if len(d.p) != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after last shard", len(d.p))
	}
	if sumEvents != s.Meta.Events {
		return nil, fmt.Errorf("snapshot: header claims %d events, shards sum to %d", s.Meta.Events, sumEvents)
	}
	return s, nil
}

// sdec is a sticky-error cursor over the in-memory payload. Counts are
// validated against the remaining payload length, so no element count can
// request memory the input does not back.
type sdec struct {
	p   []byte
	err error
}

func (d *sdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		if n == 0 {
			d.err = io.ErrUnexpectedEOF
		} else {
			d.err = errors.New("varint overflows uint64")
		}
		return 0
	}
	d.p = d.p[n:]
	return v
}

// count decodes an element count and bounds it by max.
func (d *sdec) count(max uint64) uint64 {
	n := d.uvarint()
	if d.err == nil && n > max {
		d.err = fmt.Errorf("count %d exceeds limit %d", n, max)
		return 0
	}
	return n
}

// bytes consumes exactly n bytes of payload.
func (d *sdec) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.p)) {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	out := make([]byte, n)
	copy(out, d.p[:n])
	d.p = d.p[n:]
	return out
}
