package snapshot

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// ref strips a chunk's inline bytes, turning it into a hash reference.
func ref(c ChunkRef) ChunkRef {
	c.Data = nil
	return c
}

// sampleFull builds the root of a two-shard, two-predictor chain. The
// "l" chunk bytes are shared verbatim between the shards, so the chain
// exercises cross-shard dedup as well as cross-interval dedup.
func sampleFull() *Delta {
	sharedA := MakeChunk(0x400, 2, []byte{10, 11, 12})
	return &Delta{
		Meta: DeltaMeta{
			CreatedUnixNano: 1_700_000_000_000_000_001,
			Predictors:      []string{"l", "hyb"},
		},
		Shards: []DeltaShard{
			{
				Shard:  0,
				Events: 1000,
				PCs:    []uint64{0x400, 0x404, 0x90000},
				Preds: []DeltaPred{
					{Name: "l", Correct: 400, Total: 1000, Header: []byte{3},
						Chunks: []ChunkRef{sharedA, MakeChunk(0x404, 1, []byte{20, 21})}},
					{Name: "hyb", Correct: 500, Total: 1000, Header: nil,
						Chunks: []ChunkRef{MakeChunk(0, 0, bytes.Repeat([]byte{0xAB}, 64))}},
				},
			},
			{
				Shard:  1,
				Events: 250,
				PCs:    []uint64{0x500},
				Preds: []DeltaPred{
					{Name: "l", Correct: 1, Total: 250, Header: []byte{3},
						Chunks: []ChunkRef{ref(sharedA)}},
					{Name: "hyb", Correct: 2, Total: 250, Header: nil,
						Chunks: []ChunkRef{MakeChunk(0, 0, []byte{7})}},
				},
			},
		},
	}
}

// sampleChild builds a delta on top of parent: shard 0's first "l" chunk
// and shard 1 are unchanged (references), the rest re-encoded.
func sampleChild(parent *Delta) *Delta {
	keepA := ref(parent.Shards[0].Preds[0].Chunks[0])
	keepHyb1 := ref(parent.Shards[1].Preds[1].Chunks[0])
	return &Delta{
		Meta: DeltaMeta{
			CreatedUnixNano: parent.Meta.CreatedUnixNano + 1,
			ParentID:        parent.Meta.ID,
			Depth:           parent.Meta.Depth + 1,
			Predictors:      parent.Meta.Predictors,
		},
		Shards: []DeltaShard{
			{
				Shard:  0,
				Events: 1500,
				PCs:    parent.Shards[0].PCs,
				Preds: []DeltaPred{
					{Name: "l", Correct: 600, Total: 1500, Header: []byte{3},
						Chunks: []ChunkRef{keepA, MakeChunk(0x404, 1, []byte{22, 23, 24})}},
					{Name: "hyb", Correct: 700, Total: 1500, Header: nil,
						Chunks: []ChunkRef{MakeChunk(0, 0, bytes.Repeat([]byte{0xCD}, 48))}},
				},
			},
			{
				Shard:  1,
				Events: 250,
				PCs:    parent.Shards[1].PCs,
				Preds: []DeltaPred{
					{Name: "l", Correct: 1, Total: 250, Header: []byte{3},
						Chunks: []ChunkRef{ref(parent.Shards[1].Preds[0].Chunks[0])}},
					{Name: "hyb", Correct: 2, Total: 250, Header: nil,
						Chunks: []ChunkRef{keepHyb1}},
				},
			},
		},
	}
}

// blobOf reconstructs the expected canonical state blob for one
// predictor of a delta, pulling reference bytes from src chunks.
func blobOf(p *DeltaPred, pool map[[HashSize]byte][]byte) []byte {
	var out []byte
	out = append(out, p.Header...)
	for i := range p.Chunks {
		c := &p.Chunks[i]
		if c.Inline() {
			out = append(out, c.Data...)
		} else {
			out = append(out, pool[c.Hash]...)
		}
	}
	return out
}

func poolOf(ds ...*Delta) map[[HashSize]byte][]byte {
	pool := make(map[[HashSize]byte][]byte)
	for _, d := range ds {
		for si := range d.Shards {
			for pi := range d.Shards[si].Preds {
				for _, c := range d.Shards[si].Preds[pi].Chunks {
					if c.Inline() {
						pool[c.Hash] = c.Data
					}
				}
			}
		}
	}
	return pool
}

func TestDeltaEncodeDecodeRoundTrip(t *testing.T) {
	full := sampleFull()
	var buf bytes.Buffer
	id, err := EncodeDelta(&buf, full)
	if err != nil {
		t.Fatal(err)
	}
	if full.Meta.ID != id || full.Meta.Events != 1250 || full.Meta.Shards != 2 {
		t.Fatalf("EncodeDelta did not normalize meta: %+v", full.Meta)
	}
	got, err := DecodeDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.ID != id || got.Meta.FormatVersion != DeltaFormatVersion || got.Meta.Depth != 0 {
		t.Fatalf("meta = %+v", got.Meta)
	}
	// Normalize nil-vs-empty the wire cannot distinguish.
	norm := func(d *Delta) {
		for si := range d.Shards {
			for pi := range d.Shards[si].Preds {
				if len(d.Shards[si].Preds[pi].Header) == 0 {
					d.Shards[si].Preds[pi].Header = nil
				}
			}
		}
	}
	want := sampleFull()
	if _, err := EncodeDelta(&bytes.Buffer{}, want); err != nil {
		t.Fatal(err)
	}
	norm(want)
	norm(got)
	if !reflect.DeepEqual(got.Shards, want.Shards) {
		t.Fatalf("shards differ:\n got %+v\nwant %+v", got.Shards, want.Shards)
	}
	var buf2 bytes.Buffer
	id2, err := EncodeDelta(&buf2, got)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id || !bytes.Equal(buf2.Bytes(), buf.Bytes()) {
		t.Fatal("re-encode is not byte-identical")
	}
	st := got.Stats()
	if st.Inline != 4 || st.Refs != 1 {
		t.Fatalf("stats = %+v, want 4 inline / 1 ref", st)
	}
}

func TestDeltaEncodeRejectsMalformed(t *testing.T) {
	for name, mutate := range map[string]func(*Delta){
		"no shards":          func(d *Delta) { d.Shards = nil },
		"no predictors":      func(d *Delta) { d.Meta.Predictors = nil },
		"shard id gap":       func(d *Delta) { d.Shards[1].Shard = 2 },
		"pred name mismatch": func(d *Delta) { d.Shards[1].Preds[0].Name = "zzz" },
		"unsorted pcs":       func(d *Delta) { d.Shards[0].PCs = []uint64{8, 4} },
		"full with depth":    func(d *Delta) { d.Meta.Depth = 1 },
		"delta depth zero":   func(d *Delta) { d.Meta.ParentID = "abc" },
		"chunk len mismatch": func(d *Delta) { d.Shards[0].Preds[0].Chunks[0].Len++ },
	} {
		d := sampleFull()
		mutate(d)
		if _, err := EncodeDelta(&bytes.Buffer{}, d); err == nil {
			t.Errorf("%s: EncodeDelta accepted", name)
		}
	}
}

func TestDeltaDecodeRejectsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if _, err := EncodeDelta(&buf, sampleFull()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[0] ^= 0x40
		if _, err := DecodeDeltaBytes(mut); err == nil || errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want a magic error", err)
		}
	})
	t.Run("flipped payload byte fails checksum", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[len(DeltaMagic)+3] ^= 0x01
		if _, err := DecodeDeltaBytes(mut); !errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(data); cut++ {
			if _, err := DecodeDeltaBytes(data[:cut]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", cut)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := DecodeDeltaBytes(append(append([]byte(nil), data...), 0xEE)); err == nil {
			t.Fatal("trailing garbage accepted")
		}
	})
}

// writeChain writes full + child into dir and returns their paths.
func writeChain(t *testing.T) (dir, fullPath, childPath string, full, child *Delta) {
	t.Helper()
	dir = t.TempDir()
	full = sampleFull()
	fullPath, err := WriteDeltaFileAtomic(dir, full)
	if err != nil {
		t.Fatal(err)
	}
	child = sampleChild(full)
	childPath, err = WriteDeltaFileAtomic(dir, child)
	if err != nil {
		t.Fatal(err)
	}
	return dir, fullPath, childPath, full, child
}

func TestResolveChain(t *testing.T) {
	_, fullPath, childPath, full, child := writeChain(t)

	snap, info, err := ResolveChain(childPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Depth != 1 || info.Tip == nil || info.Tip.Meta.ID != child.Meta.ID {
		t.Fatalf("chain info = %+v", info)
	}
	if len(info.Files) != 2 || info.Files[0] != fullPath || info.Files[1] != childPath {
		t.Fatalf("chain files = %v", info.Files)
	}
	if snap.Meta.ID != child.Meta.ID || snap.Meta.Events != child.Meta.Events {
		t.Fatalf("snapshot meta = %+v", snap.Meta)
	}
	pool := poolOf(full, child)
	for si := range child.Shards {
		for pi := range child.Shards[si].Preds {
			want := blobOf(&child.Shards[si].Preds[pi], pool)
			got := snap.Shards[si].Preds[pi].State
			if !bytes.Equal(want, got) {
				t.Fatalf("shard %d pred %d blob differs (%d vs %d bytes)", si, pi, len(got), len(want))
			}
		}
	}

	// Resolving the full directly is a single-file chain.
	snapF, infoF, err := ResolveChain(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	if infoF.Depth != 0 || len(infoF.Files) != 1 {
		t.Fatalf("full chain info = %+v", infoF)
	}
	if snapF.Meta.ID != full.Meta.ID {
		t.Fatalf("full snapshot id = %s", snapF.Meta.ID)
	}
}

func TestResolveChainRejectsBrokenChains(t *testing.T) {
	t.Run("missing parent file", func(t *testing.T) {
		_, fullPath, childPath, _, _ := writeChain(t)
		if err := os.Remove(fullPath); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ResolveChain(childPath); err == nil ||
			!strings.Contains(err.Error(), "chain broken") {
			t.Fatalf("got %v, want chain-broken error", err)
		}
	})
	t.Run("missing chunk", func(t *testing.T) {
		dir := t.TempDir()
		full := sampleFull()
		if _, err := WriteDeltaFileAtomic(dir, full); err != nil {
			t.Fatal(err)
		}
		child := sampleChild(full)
		// Point one reference at a hash no ancestor carries.
		c := &child.Shards[0].Preds[0].Chunks[0]
		c.Hash[0] ^= 0xFF
		childPath, err := WriteDeltaFileAtomic(dir, child)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ResolveChain(childPath); err == nil ||
			!strings.Contains(err.Error(), "missing from chain") {
			t.Fatalf("got %v, want missing-chunk error", err)
		}
	})
	t.Run("corrupt manifest chunk hash", func(t *testing.T) {
		dir := t.TempDir()
		full := sampleFull()
		// An inline chunk whose recorded hash does not match its bytes:
		// the file CRC is consistent (the lie is in the manifest itself),
		// so only per-chunk verification can catch it.
		full.Shards[0].Preds[0].Chunks[1].Hash[3] ^= 0x10
		path, err := WriteDeltaFileAtomic(dir, full)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ResolveChain(path); !errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("reference crc mismatch", func(t *testing.T) {
		dir := t.TempDir()
		full := sampleFull()
		if _, err := WriteDeltaFileAtomic(dir, full); err != nil {
			t.Fatal(err)
		}
		child := sampleChild(full)
		c := &child.Shards[0].Preds[0].Chunks[0] // a reference
		c.CRC ^= 0xDEAD
		childPath, err := WriteDeltaFileAtomic(dir, child)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ResolveChain(childPath); !errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("depth gap", func(t *testing.T) {
		dir := t.TempDir()
		full := sampleFull()
		if _, err := WriteDeltaFileAtomic(dir, full); err != nil {
			t.Fatal(err)
		}
		child := sampleChild(full)
		child.Meta.Depth = 5
		childPath, err := WriteDeltaFileAtomic(dir, child)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ResolveChain(childPath); err == nil ||
			!strings.Contains(err.Error(), "chain depth") {
			t.Fatalf("got %v, want depth error", err)
		}
	})
}

func TestLatestAnyAndSweepSuperseded(t *testing.T) {
	dir := t.TempDir()
	if _, err := LatestAny(dir); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("LatestAny on empty dir = %v, want fs.ErrNotExist", err)
	}

	// A v1 snapshot at 1250 events, then a v2 chain reaching 1750.
	v1 := sample()
	v1Path, err := WriteFileAtomic(dir, v1)
	if err != nil {
		t.Fatal(err)
	}
	full := sampleFull()
	fullPath, err := WriteDeltaFileAtomic(dir, full)
	if err != nil {
		t.Fatal(err)
	}
	child := sampleChild(full)
	childPath, err := WriteDeltaFileAtomic(dir, child)
	if err != nil {
		t.Fatal(err)
	}

	latest, err := LatestAny(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest != childPath {
		t.Fatalf("LatestAny = %s, want %s", latest, childPath)
	}

	found, err := FindByID(dir, full.Meta.ID)
	if err != nil || found != fullPath {
		t.Fatalf("FindByID = %s, %v; want %s", found, err, fullPath)
	}
	if _, err := FindByID(dir, "ffffffffffffffff"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("FindByID unknown = %v, want fs.ErrNotExist", err)
	}

	// A new full at higher event count supersedes everything before it.
	super := sampleFull()
	super.Shards[0].Events = 9000
	super.Meta.CreatedUnixNano += 10
	superPath, err := WriteDeltaFileAtomic(dir, super)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := SweepSuperseded(dir, superPath, super.Meta.Events)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("SweepSuperseded removed %d, want 3", removed)
	}
	for _, gone := range []string{v1Path, fullPath, childPath} {
		if _, err := os.Stat(gone); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("%s survived the sweep", filepath.Base(gone))
		}
	}
	if _, err := os.Stat(superPath); err != nil {
		t.Fatalf("sweep removed the new full: %v", err)
	}
}
