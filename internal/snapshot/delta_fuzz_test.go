package snapshot

import (
	"bytes"
	"testing"
)

// chainFromBytes derives a deterministic, always-valid two-link chain
// (full + delta) from fuzz input: the full's chunks come from the input
// bytes, and per-chunk control bits decide which chunks the delta keeps
// as references, rewrites inline, or duplicates (dedup against the
// parent by content hash). Returns the chain plus the expected
// materialized state blob of the delta's single predictor.
func chainFromBytes(data []byte) (full, child *Delta, wantBlob []byte) {
	take := func(n int) []byte {
		if n > len(data) {
			n = len(data)
		}
		out := data[:n]
		data = data[n:]
		return out
	}
	byteAt := func() byte {
		b := take(1)
		if len(b) == 0 {
			return 0
		}
		return b[0]
	}

	nchunks := int(byteAt()%6) + 1
	header := append([]byte(nil), take(int(byteAt()%8))...)
	fullChunks := make([]ChunkRef, 0, nchunks)
	pc := uint64(0x100)
	for i := 0; i < nchunks; i++ {
		chunkLen := int(byteAt()%32) + 1
		body := make([]byte, chunkLen)
		copy(body, take(chunkLen))
		body[0] = byte(i) // distinct chunks, so hashes never collide by construction
		fullChunks = append(fullChunks, MakeChunk(pc, 1+int(byteAt()%4), body))
		pc += uint64(byteAt()) + 4
	}
	full = &Delta{
		Meta: DeltaMeta{
			CreatedUnixNano: int64(byteAt()) + 1,
			Predictors:      []string{"l"},
		},
		Shards: []DeltaShard{{
			Shard:  0,
			Events: uint64(byteAt()) * 3,
			PCs:    []uint64{0x100, 0x104},
			Preds: []DeltaPred{{
				Name: "l", Correct: uint64(byteAt()), Total: 1000,
				Header: header, Chunks: fullChunks,
			}},
		}},
	}

	childChunks := make([]ChunkRef, 0, nchunks)
	wantBlob = append(wantBlob, header...)
	for i, c := range fullChunks {
		switch byteAt() % 3 {
		case 0: // unchanged: reference the parent's bytes
			childChunks = append(childChunks, ref(c))
			wantBlob = append(wantBlob, c.Data...)
		case 1: // rewritten: fresh inline bytes
			body := make([]byte, len(c.Data)+1)
			copy(body, take(len(body)))
			body[0] = byte(0x80 | i)
			nc := MakeChunk(c.FirstPC, c.Records, body)
			childChunks = append(childChunks, nc)
			wantBlob = append(wantBlob, nc.Data...)
		default: // identical re-encode: dedup by hash, stored as reference
			childChunks = append(childChunks, ref(c))
			wantBlob = append(wantBlob, c.Data...)
		}
	}
	child = &Delta{
		Meta: DeltaMeta{
			CreatedUnixNano: full.Meta.CreatedUnixNano + 1,
			Depth:           1,
			Predictors:      []string{"l"},
		},
		Shards: []DeltaShard{{
			Shard:  0,
			Events: full.Shards[0].Events + uint64(byteAt()),
			PCs:    full.Shards[0].PCs,
			Preds: []DeltaPred{{
				Name: "l", Correct: uint64(byteAt()), Total: 2000,
				Header: header, Chunks: childChunks,
			}},
		}},
	}
	return full, child, wantBlob
}

// FuzzDeltaChainRoundTrip: any structurally valid full+delta chain must
// write, re-decode canonically, and resolve to exactly the concatenation
// of header and (dereferenced) chunk bytes — and a delta whose parent
// reference is broken must be rejected, never misresolved.
func FuzzDeltaChainRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(bytes.Repeat([]byte{0xA7}, 160))
	f.Add([]byte{2, 0, 9, 9, 9, 1, 0, 2, 0, 1, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		full, child, wantBlob := chainFromBytes(data)
		dir := t.TempDir()
		if _, err := WriteDeltaFileAtomic(dir, full); err != nil {
			t.Fatalf("write full: %v", err)
		}
		child.Meta.ParentID = full.Meta.ID
		childPath, err := WriteDeltaFileAtomic(dir, child)
		if err != nil {
			t.Fatalf("write child: %v", err)
		}

		// The tip must re-decode to canonical bytes.
		got, err := ReadDeltaFile(childPath)
		if err != nil {
			t.Fatalf("read child: %v", err)
		}
		var re bytes.Buffer
		id, err := EncodeDelta(&re, got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if id != child.Meta.ID {
			t.Fatalf("re-encode id %s, want %s", id, child.Meta.ID)
		}

		snap, info, err := ResolveChain(childPath)
		if err != nil {
			t.Fatalf("resolve: %v", err)
		}
		if info.Depth != 1 || len(info.Files) != 2 {
			t.Fatalf("chain info = %+v", info)
		}
		if !bytes.Equal(snap.Shards[0].Preds[0].State, wantBlob) {
			t.Fatalf("resolved blob differs: %d vs %d bytes",
				len(snap.Shards[0].Preds[0].State), len(wantBlob))
		}

		// Break one reference (if the delta has any): resolution must fail
		// loudly rather than substitute wrong bytes.
		broke := false
		for i := range child.Shards[0].Preds[0].Chunks {
			c := &child.Shards[0].Preds[0].Chunks[i]
			if !c.Inline() {
				c.Hash[5] ^= 0xFF
				broke = true
				break
			}
		}
		if broke {
			badPath, err := WriteDeltaFileAtomic(dir, child)
			if err != nil {
				t.Fatalf("write broken child: %v", err)
			}
			if _, _, err := ResolveChain(badPath); err == nil {
				t.Fatal("chain with dangling chunk reference resolved")
			}
		}
	})
}
