package snapshot

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Ext is the snapshot file extension.
const Ext = ".vpsnap"

// DeltaExt is the v2 (delta-chain) checkpoint file extension. Full
// checkpoints cut in delta mode use it too: they are v2 files with an
// empty parent ID.
const DeltaExt = ".vpdelta"

// tmpPattern / deltaTmpPattern name in-progress checkpoint files;
// SweepTemp removes strays a crashed writer left behind.
const (
	tmpPattern      = ".vpsnap-tmp-*"
	deltaTmpPattern = ".vpdelta-tmp-*"
)

// SweepTemp removes orphaned in-progress checkpoint files from dir and
// reports how many it deleted. A writer killed between CreateTemp and
// rename leaves a near-full-size temp file nothing else cleans up, so a
// server sweeps its checkpoint directory on startup. A checkpoint
// directory belongs to one server at a time (Latest would conflate
// several anyway), so any temp file found at startup is dead.
func SweepTemp(dir string) (int, error) {
	removed := 0
	for _, pattern := range []string{tmpPattern, deltaTmpPattern} {
		strays, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			return removed, fmt.Errorf("snapshot: %w", err)
		}
		for _, path := range strays {
			if err := os.Remove(path); err == nil {
				removed++
			} else if !os.IsNotExist(err) {
				return removed, fmt.Errorf("snapshot: %w", err)
			}
		}
	}
	return removed, nil
}

// Filename returns the canonical checkpoint file name for a snapshot:
// event count then creation time, both zero-padded so lexicographic
// order is checkpoint order (ties on events broken by wall clock), then
// the content-addressed ID.
func Filename(events uint64, createdUnixNano int64, id string) string {
	return fmt.Sprintf("snap-%020d-%020d-%s%s", events, createdUnixNano, id, Ext)
}

// WriteFileAtomic encodes the snapshot into dir under its canonical name
// using the temp-file-plus-rename protocol: a reader (or a crashed
// writer) can never observe a partial snapshot. The file is fsynced
// before the rename and the directory after it, so a completed write
// also survives power loss.
func WriteFileAtomic(dir string, s *Snapshot) (path string, err error) {
	f, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	id, err := Encode(bw, s)
	if err != nil {
		return "", err
	}
	if err = bw.Flush(); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err = f.Sync(); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err = f.Close(); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	path = filepath.Join(dir, Filename(s.Meta.Events, s.Meta.CreatedUnixNano, id))
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	return path, nil
}

// syncDir flushes the directory entry so the rename itself survives a
// crash, not just the file contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	if closeErr := d.Close(); syncErr == nil {
		syncErr = closeErr
	}
	return syncErr
}

// ReadFile decodes and verifies one snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	s, err := DecodeBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Latest returns the newest checkpoint file in dir, by the canonical
// name ordering (event count, then ID). fs.ErrNotExist is returned when
// the directory holds no snapshots.
func Latest(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, Ext) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("snapshot: no %s files in %s: %w", Ext, dir, fs.ErrNotExist)
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1]), nil
}

// DeltaFilename returns the canonical file name for a v2 checkpoint:
// the same events-then-time-then-ID scheme as Filename, so lexicographic
// order within each extension is checkpoint order.
func DeltaFilename(events uint64, createdUnixNano int64, id string) string {
	return fmt.Sprintf("delta-%020d-%020d-%s%s", events, createdUnixNano, id, DeltaExt)
}

// parseCkptName extracts the ordering key from a canonical checkpoint
// file name of either generation ("snap-<events>-<created>-<id>.vpsnap"
// or "delta-<events>-<created>-<id>.vpdelta").
func parseCkptName(name string) (events uint64, createdUnixNano int64, id string, ok bool) {
	switch {
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, Ext):
		name = name[len("snap-") : len(name)-len(Ext)]
	case strings.HasPrefix(name, "delta-") && strings.HasSuffix(name, DeltaExt):
		name = name[len("delta-") : len(name)-len(DeltaExt)]
	default:
		return 0, 0, "", false
	}
	parts := strings.SplitN(name, "-", 3)
	if len(parts) != 3 || len(parts[0]) != 20 || len(parts[1]) != 20 || parts[2] == "" {
		return 0, 0, "", false
	}
	var created uint64
	if _, err := fmt.Sscanf(parts[0], "%d", &events); err != nil {
		return 0, 0, "", false
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &created); err != nil {
		return 0, 0, "", false
	}
	return events, int64(created), parts[2], true
}

// LatestAny returns the newest checkpoint file in dir across both
// generations (.vpsnap and .vpdelta), ordered by event count then
// creation time parsed from the canonical names — a mixed directory
// (e.g. a server upgraded to delta mode over existing full snapshots)
// restores from whichever checkpoint is furthest along. fs.ErrNotExist
// is returned when the directory holds no checkpoints.
func LatestAny(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	best := ""
	var bestEvents uint64
	var bestCreated int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		events, created, _, ok := parseCkptName(name)
		if !ok {
			continue
		}
		if best == "" || events > bestEvents ||
			(events == bestEvents && (created > bestCreated ||
				(created == bestCreated && name > best))) {
			best, bestEvents, bestCreated = name, events, created
		}
	}
	if best == "" {
		return "", fmt.Errorf("snapshot: no %s or %s files in %s: %w", Ext, DeltaExt, dir, fs.ErrNotExist)
	}
	return filepath.Join(dir, best), nil
}

// FindByID locates the checkpoint file in dir whose content-addressed ID
// matches — how a delta's parent reference becomes a path. fs.ErrNotExist
// is returned when no file carries the ID.
func FindByID(dir, id string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, _, fid, ok := parseCkptName(e.Name()); ok && fid == id {
			return filepath.Join(dir, e.Name()), nil
		}
	}
	return "", fmt.Errorf("snapshot: no checkpoint with id %s in %s: %w", id, dir, fs.ErrNotExist)
}

// WriteDeltaFileAtomic encodes a v2 checkpoint into dir under its
// canonical name with the same temp-file, fsync, rename, dir-sync
// protocol as WriteFileAtomic.
func WriteDeltaFileAtomic(dir string, d *Delta) (path string, err error) {
	f, err := os.CreateTemp(dir, deltaTmpPattern)
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	id, err := EncodeDelta(bw, d)
	if err != nil {
		return "", err
	}
	if err = bw.Flush(); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err = f.Sync(); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err = f.Close(); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	path = filepath.Join(dir, DeltaFilename(d.Meta.Events, d.Meta.CreatedUnixNano, id))
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	return path, nil
}

// ReadDeltaFile decodes and verifies one v2 checkpoint file.
func ReadDeltaFile(path string) (*Delta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	d, err := DecodeDeltaBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return d, nil
}

// SweepSuperseded removes checkpoint files of either generation whose
// event count is at or below events, keeping keepPath itself — the chunk
// GC a server runs after a successful full checkpoint, when every older
// chain (and any chunk only reachable through it) is superseded. Returns
// how many files were removed.
func SweepSuperseded(dir, keepPath string, events uint64) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	keep := filepath.Base(keepPath)
	removed := 0
	for _, e := range entries {
		if e.IsDir() || e.Name() == keep {
			continue
		}
		ev, _, _, ok := parseCkptName(e.Name())
		if !ok || ev > events {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err == nil {
			removed++
		} else if !os.IsNotExist(err) {
			return removed, fmt.Errorf("snapshot: %w", err)
		}
	}
	return removed, nil
}
