package snapshot

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Ext is the snapshot file extension.
const Ext = ".vpsnap"

// tmpPattern names in-progress checkpoint files; SweepTemp removes
// strays a crashed writer left behind.
const tmpPattern = ".vpsnap-tmp-*"

// SweepTemp removes orphaned in-progress checkpoint files from dir and
// reports how many it deleted. A writer killed between CreateTemp and
// rename leaves a near-full-size temp file nothing else cleans up, so a
// server sweeps its checkpoint directory on startup. A checkpoint
// directory belongs to one server at a time (Latest would conflate
// several anyway), so any temp file found at startup is dead.
func SweepTemp(dir string) (int, error) {
	strays, err := filepath.Glob(filepath.Join(dir, tmpPattern))
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	removed := 0
	for _, path := range strays {
		if err := os.Remove(path); err == nil {
			removed++
		} else if !os.IsNotExist(err) {
			return removed, fmt.Errorf("snapshot: %w", err)
		}
	}
	return removed, nil
}

// Filename returns the canonical checkpoint file name for a snapshot:
// event count then creation time, both zero-padded so lexicographic
// order is checkpoint order (ties on events broken by wall clock), then
// the content-addressed ID.
func Filename(events uint64, createdUnixNano int64, id string) string {
	return fmt.Sprintf("snap-%020d-%020d-%s%s", events, createdUnixNano, id, Ext)
}

// WriteFileAtomic encodes the snapshot into dir under its canonical name
// using the temp-file-plus-rename protocol: a reader (or a crashed
// writer) can never observe a partial snapshot. The file is fsynced
// before the rename and the directory after it, so a completed write
// also survives power loss.
func WriteFileAtomic(dir string, s *Snapshot) (path string, err error) {
	f, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	id, err := Encode(bw, s)
	if err != nil {
		return "", err
	}
	if err = bw.Flush(); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err = f.Sync(); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err = f.Close(); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	path = filepath.Join(dir, Filename(s.Meta.Events, s.Meta.CreatedUnixNano, id))
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	return path, nil
}

// syncDir flushes the directory entry so the rename itself survives a
// crash, not just the file contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	if closeErr := d.Close(); syncErr == nil {
		syncErr = closeErr
	}
	return syncErr
}

// ReadFile decodes and verifies one snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	s, err := DecodeBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Latest returns the newest checkpoint file in dir, by the canonical
// name ordering (event count, then ID). fs.ErrNotExist is returned when
// the directory holds no snapshots.
func Latest(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, Ext) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("snapshot: no %s files in %s: %w", Ext, dir, fs.ErrNotExist)
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1]), nil
}
