package snapshot

// Chain resolution: materializing `full + deltas → Snapshot`. A delta
// checkpoint stores only the chunks that changed (or first appeared)
// since its parent; everything else is a hash reference into some
// ancestor. Resolving walks parent IDs back to the chain's full root,
// pools every inline chunk by hash, then reassembles the tip's canonical
// SaveState blobs by concatenating header and chunk bytes — verifying
// each chunk's CRC-64 (and, for inline chunks, its content hash) on the
// way, so a corrupt or incomplete chain is rejected rather than restored.

import (
	"fmt"
	"path/filepath"
	"strings"
)

// ChainInfo describes how a checkpoint was materialized.
type ChainInfo struct {
	// Files is the resolved chain, root (full) first, tip last. A v1
	// snapshot or a full v2 checkpoint is a single-element chain.
	Files []string
	// Depth is the number of delta links in the chain (0 for a full).
	Depth int
	// Tip is the decoded tip manifest; nil when the tip was a v1 file.
	Tip *Delta
}

// ResolveChain reads the checkpoint at path and materializes its full
// state. A .vpsnap file is returned as-is; a .vpdelta file has its chain
// walked (parents are located by content ID in the same directory) and
// its predictor state blobs reassembled from inline and referenced
// chunks. The returned Snapshot is exactly what a v1 decode of the same
// logical state would produce, so every consumer of full snapshots
// (restore, warm replay, vpstate) works on chains unchanged.
func ResolveChain(path string) (*Snapshot, *ChainInfo, error) {
	if strings.HasSuffix(path, Ext) {
		s, err := ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		return s, &ChainInfo{Files: []string{path}}, nil
	}
	dir := filepath.Dir(path)

	// Walk tip → root, prepending so the slices end up root-first.
	var files []string
	var chain []*Delta
	seen := make(map[string]bool)
	cur := path
	for {
		d, err := ReadDeltaFile(cur)
		if err != nil {
			return nil, nil, err
		}
		if seen[d.Meta.ID] {
			return nil, nil, fmt.Errorf("snapshot: checkpoint chain cycle at id %s", d.Meta.ID)
		}
		seen[d.Meta.ID] = true
		files = append([]string{cur}, files...)
		chain = append([]*Delta{d}, chain...)
		if len(chain) > maxChainDepth {
			return nil, nil, fmt.Errorf("snapshot: checkpoint chain longer than %d", maxChainDepth)
		}
		if d.Meta.ParentID == "" {
			break
		}
		parent, err := FindByID(dir, d.Meta.ParentID)
		if err != nil {
			return nil, nil, fmt.Errorf("snapshot: chain broken at %s: parent %s: %w",
				filepath.Base(cur), d.Meta.ParentID, err)
		}
		cur = parent
	}

	tip := chain[len(chain)-1]
	// Each link must extend its parent: depth increments along the walk
	// and the predictor sets must agree, or the references cannot mean
	// what the tip thinks they mean.
	for i := 1; i < len(chain); i++ {
		p, c := chain[i-1], chain[i]
		if c.Meta.Depth != p.Meta.Depth+1 {
			return nil, nil, fmt.Errorf("snapshot: chain depth %d follows depth %d (%s after %s)",
				c.Meta.Depth, p.Meta.Depth, c.Meta.ID, p.Meta.ID)
		}
		if len(c.Meta.Predictors) != len(p.Meta.Predictors) {
			return nil, nil, fmt.Errorf("snapshot: chain predictor set changed at %s", c.Meta.ID)
		}
		for j := range c.Meta.Predictors {
			if c.Meta.Predictors[j] != p.Meta.Predictors[j] {
				return nil, nil, fmt.Errorf("snapshot: chain predictor set changed at %s", c.Meta.ID)
			}
		}
	}

	// Pool every inline chunk in the chain by content hash, verifying
	// integrity once per stored chunk. References anywhere in the tip may
	// point at any ancestor (cross-interval and cross-shard dedup), so the
	// pool is global to the chain.
	pool := make(map[[HashSize]byte][]byte)
	for fi, d := range chain {
		for si := range d.Shards {
			for pi := range d.Shards[si].Preds {
				ps := &d.Shards[si].Preds[pi]
				for ci := range ps.Chunks {
					c := &ps.Chunks[ci]
					if !c.Inline() {
						continue
					}
					hash, crc := ChunkKey(c.Data)
					if hash != c.Hash || crc != c.CRC {
						return nil, nil, fmt.Errorf(
							"snapshot: chunk %x corrupt in %s (shard %d pred %q chunk %d): %w",
							c.Hash[:4], filepath.Base(files[fi]), si, ps.Name, ci, ErrChecksum)
					}
					pool[c.Hash] = c.Data
				}
			}
		}
	}

	// Materialize the tip: every predictor blob is header + chunks, with
	// references resolved from the pool and re-verified against the
	// manifest's CRC and length.
	snap := &Snapshot{
		Meta: Meta{
			FormatVersion:   tip.Meta.FormatVersion,
			ID:              tip.Meta.ID,
			CreatedUnixNano: tip.Meta.CreatedUnixNano,
			Events:          tip.Meta.Events,
			Shards:          tip.Meta.Shards,
			Predictors:      tip.Meta.Predictors,
		},
	}
	for si := range tip.Shards {
		dsh := &tip.Shards[si]
		sh := ShardState{Shard: dsh.Shard, Events: dsh.Events, PCs: dsh.PCs}
		for pi := range dsh.Preds {
			ps := &dsh.Preds[pi]
			size := len(ps.Header)
			for ci := range ps.Chunks {
				size += ps.Chunks[ci].Len
			}
			blob := make([]byte, 0, size)
			blob = append(blob, ps.Header...)
			for ci := range ps.Chunks {
				c := &ps.Chunks[ci]
				data := c.Data
				if data == nil {
					var ok bool
					data, ok = pool[c.Hash]
					if !ok {
						return nil, nil, fmt.Errorf(
							"snapshot: chunk %x missing from chain (tip %s shard %d pred %q chunk %d)",
							c.Hash[:4], tip.Meta.ID, si, ps.Name, ci)
					}
					if len(data) != c.Len || crcOf(data) != c.CRC {
						return nil, nil, fmt.Errorf(
							"snapshot: chunk %x reference mismatch (tip %s shard %d pred %q chunk %d): %w",
							c.Hash[:4], tip.Meta.ID, si, ps.Name, ci, ErrChecksum)
					}
				}
				blob = append(blob, data...)
			}
			sh.Preds = append(sh.Preds, PredState{
				Name:    ps.Name,
				Correct: ps.Correct,
				Total:   ps.Total,
				State:   blob,
			})
		}
		snap.Shards = append(snap.Shards, sh)
	}
	return snap, &ChainInfo{Files: files, Depth: tip.Meta.Depth, Tip: tip}, nil
}
