package snapshot

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// snapshotFromBytes derives a deterministic, always-valid snapshot from
// fuzz input so the round-trip property gets exercised over arbitrary
// shard counts, PC sets and blob contents. Layout consumed per field is
// intentionally simple: the fuzzer mutates structure and content alike.
func snapshotFromBytes(data []byte) *Snapshot {
	take := func(n int) []byte {
		if n > len(data) {
			n = len(data)
		}
		out := data[:n]
		data = data[n:]
		return out
	}
	byteAt := func() byte {
		b := take(1)
		if len(b) == 0 {
			return 0
		}
		return b[0]
	}

	nshards := int(byteAt()%4) + 1
	npred := int(byteAt()%3) + 1
	names := []string{"l", "s2", "fcm3", "hyb"}[:npred]

	s := &Snapshot{Meta: Meta{
		CreatedUnixNano: int64(binary.LittleEndian.Uint32(append(take(4), 0, 0, 0, 0))),
		Predictors:      names,
	}}
	for i := 0; i < nshards; i++ {
		sh := ShardState{Shard: i, Events: uint64(byteAt()) * 17}
		npc := int(byteAt() % 8)
		pc := uint64(0)
		for j := 0; j < npc; j++ {
			pc += uint64(byteAt()) + 1 // strictly ascending
			sh.PCs = append(sh.PCs, pc)
		}
		for _, name := range names {
			ps := PredState{
				Name:    name,
				Correct: uint64(byteAt()),
				Total:   uint64(byteAt()) + 1,
				State:   append([]byte(nil), take(int(byteAt())%64)...),
			}
			sh.Preds = append(sh.Preds, ps)
		}
		s.Shards = append(s.Shards, sh)
	}
	return s
}

// FuzzSnapshotRoundTrip: any structurally valid snapshot must encode,
// decode to an equal value, and re-encode byte-identically.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add(bytes.Repeat([]byte{0xFF}, 200))
	f.Fuzz(func(t *testing.T, data []byte) {
		in := snapshotFromBytes(data)
		var buf bytes.Buffer
		id, err := Encode(&buf, in)
		if err != nil {
			t.Fatalf("Encode of valid snapshot: %v", err)
		}
		out, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Decode of just-encoded snapshot: %v", err)
		}
		if out.Meta.ID != id || out.Meta.Events != in.Meta.Events {
			t.Fatalf("meta mismatch: %+v vs %+v", out.Meta, in.Meta)
		}
		// nil-vs-empty blobs are indistinguishable on the wire.
		for si := range in.Shards {
			for pi := range in.Shards[si].Preds {
				if len(in.Shards[si].Preds[pi].State) == 0 {
					in.Shards[si].Preds[pi].State = nil
				}
				if len(out.Shards[si].Preds[pi].State) == 0 {
					out.Shards[si].Preds[pi].State = nil
				}
			}
		}
		if !reflect.DeepEqual(in.Shards, out.Shards) {
			t.Fatalf("shards differ:\n in  %+v\n out %+v", in.Shards, out.Shards)
		}
		var buf2 bytes.Buffer
		id2, err := Encode(&buf2, out)
		if err != nil {
			t.Fatal(err)
		}
		if id2 != id || !bytes.Equal(buf2.Bytes(), buf.Bytes()) {
			t.Fatal("re-encode not canonical")
		}
	})
}

// FuzzSnapshotDecodeRobustness: arbitrary bytes must never panic the
// decoder or make it allocate past the input it was handed.
func FuzzSnapshotDecodeRobustness(f *testing.F) {
	var valid bytes.Buffer
	s := snapshotFromBytes([]byte{2, 2, 1, 2, 3, 4, 9, 9, 9, 9, 9, 9, 9, 9})
	if _, err := Encode(&valid, s); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeBytes(data)
		if err == nil {
			// Anything accepted must re-encode cleanly (it passed CRC and
			// all structural checks, so it is a genuine snapshot image).
			if _, err := Encode(&bytes.Buffer{}, snap); err != nil {
				t.Fatalf("accepted snapshot fails re-encode: %v", err)
			}
		}
	})
}
