package snapshot

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

// fuzzPredictorNames is the name pool snapshotFromBytes draws banks from;
// fcm8 puts the high-order slab-backed FCM tables in the fuzzed loop.
var fuzzPredictorNames = []string{"l", "s2", "fcm3", "hyb", "fcm8"}

// fuzzConstructors builds a fresh predictor for each pool name, so the
// fuzz can push every State blob through the real LoadState (fcm8 is not
// a registry spelling, hence no FactoryByName here).
var fuzzConstructors = map[string]func() core.Predictor{
	"l":    func() core.Predictor { return core.NewLastValue() },
	"s2":   func() core.Predictor { return core.NewStride2Delta() },
	"fcm3": func() core.Predictor { return core.NewFCM(3) },
	"hyb":  func() core.Predictor { return core.NewStrideFCMHybrid(3) },
	"fcm8": func() core.Predictor { return core.NewFCM(8) },
}

// snapshotFromBytes derives a deterministic, always-valid snapshot from
// fuzz input so the round-trip property gets exercised over arbitrary
// shard counts, PC sets and blob contents. Layout consumed per field is
// intentionally simple: the fuzzer mutates structure and content alike.
// State blob lengths are 16-bit so seed blobs can hold complete predictor
// states (an order-8 FCM image runs to a few KiB).
func snapshotFromBytes(data []byte) *Snapshot {
	take := func(n int) []byte {
		if n > len(data) {
			n = len(data)
		}
		out := data[:n]
		data = data[n:]
		return out
	}
	byteAt := func() byte {
		b := take(1)
		if len(b) == 0 {
			return 0
		}
		return b[0]
	}

	nshards := int(byteAt()%4) + 1
	npred := int(byteAt()) % len(fuzzPredictorNames)
	names := fuzzPredictorNames[:npred+1]

	s := &Snapshot{Meta: Meta{
		CreatedUnixNano: int64(binary.LittleEndian.Uint32(append(take(4), 0, 0, 0, 0))),
		Predictors:      names,
	}}
	for i := 0; i < nshards; i++ {
		sh := ShardState{Shard: i, Events: uint64(byteAt()) * 17}
		npc := int(byteAt() % 8)
		pc := uint64(0)
		for j := 0; j < npc; j++ {
			pc += uint64(byteAt()) + 1 // strictly ascending
			sh.PCs = append(sh.PCs, pc)
		}
		for _, name := range names {
			stateLen := int(binary.LittleEndian.Uint16(append(take(2), 0, 0)))
			ps := PredState{
				Name:    name,
				Correct: uint64(byteAt()),
				Total:   uint64(byteAt()) + 1,
				State:   append([]byte(nil), take(stateLen)...),
			}
			sh.Preds = append(sh.Preds, ps)
		}
		s.Shards = append(s.Shards, sh)
	}
	return s
}

// trainedStateSeed builds fuzz input whose State blobs are genuine
// SaveState images of every pool predictor — including an order-8 FCM at
// a realistic table shape — laid out exactly as snapshotFromBytes
// consumes it, so the seed corpus starts from states the slab-backed
// LoadState accepts and the mutator works outward from there.
func trainedStateSeed(events int) []byte {
	rng := rand.New(rand.NewSource(99))
	preds := make([]core.Predictor, len(fuzzPredictorNames))
	for i, name := range fuzzPredictorNames {
		preds[i] = fuzzConstructors[name]()
	}
	for i := 0; i < events; i++ {
		pc := uint64(rng.Intn(12)) * 4
		var v uint64
		switch pc % 12 {
		case 0:
			v = uint64(i) * 8
		case 4:
			v = uint64(rng.Intn(3))
		default:
			v = []uint64{3, 1, 4, 7}[i%4]
		}
		for _, p := range preds {
			p.Update(pc, v)
		}
	}
	b := []byte{0 /* 1 shard */, byte(len(fuzzPredictorNames) - 1)}
	b = append(b, 1, 2, 3, 4) // created
	b = append(b, 9 /* events */, 2 /* npc */, 5, 7)
	for _, p := range preds {
		var st bytes.Buffer
		if err := p.(core.Stateful).SaveState(&st); err != nil {
			panic(err)
		}
		b = append(b, byte(st.Len()), byte(st.Len()>>8)) // 16-bit state length
		b = append(b, 1, 2)                              // correct, total
		b = append(b, st.Bytes()...)
	}
	return b
}

// FuzzSnapshotRoundTrip: any structurally valid snapshot must encode,
// decode to an equal value, and re-encode byte-identically; every State
// blob the matching predictor's LoadState accepts must restore to a state
// whose save is a canonical fixed point.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add(bytes.Repeat([]byte{0xFF}, 200))
	// Genuine trained states — order-8 FCM included — at two table
	// shapes, so the slab-backed LoadState is fuzzed from realistic
	// corpora rather than only from garbage.
	f.Add(trainedStateSeed(120))
	f.Add(trainedStateSeed(400))
	f.Fuzz(func(t *testing.T, data []byte) {
		in := snapshotFromBytes(data)
		var buf bytes.Buffer
		id, err := Encode(&buf, in)
		if err != nil {
			t.Fatalf("Encode of valid snapshot: %v", err)
		}
		out, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Decode of just-encoded snapshot: %v", err)
		}
		if out.Meta.ID != id || out.Meta.Events != in.Meta.Events {
			t.Fatalf("meta mismatch: %+v vs %+v", out.Meta, in.Meta)
		}
		for si := range out.Shards {
			for pi := range out.Shards[si].Preds {
				checkPredStateLoad(t, &out.Shards[si].Preds[pi])
			}
		}
		// nil-vs-empty blobs are indistinguishable on the wire.
		for si := range in.Shards {
			for pi := range in.Shards[si].Preds {
				if len(in.Shards[si].Preds[pi].State) == 0 {
					in.Shards[si].Preds[pi].State = nil
				}
				if len(out.Shards[si].Preds[pi].State) == 0 {
					out.Shards[si].Preds[pi].State = nil
				}
			}
		}
		if !reflect.DeepEqual(in.Shards, out.Shards) {
			t.Fatalf("shards differ:\n in  %+v\n out %+v", in.Shards, out.Shards)
		}
		var buf2 bytes.Buffer
		id2, err := Encode(&buf2, out)
		if err != nil {
			t.Fatal(err)
		}
		if id2 != id || !bytes.Equal(buf2.Bytes(), buf.Bytes()) {
			t.Fatal("re-encode not canonical")
		}
	})
}

// checkPredStateLoad pushes one State blob through the named predictor's
// LoadState. Rejection is fine (the blob is fuzz data); acceptance must
// never panic, and the restored predictor's own save must be a canonical
// fixed point: saving, loading that save into a fresh instance and saving
// again reproduces the same bytes.
func checkPredStateLoad(t *testing.T, ps *PredState) {
	t.Helper()
	ctor, ok := fuzzConstructors[ps.Name]
	if !ok || len(ps.State) == 0 {
		return
	}
	p := ctor()
	st := p.(core.Stateful)
	if err := st.LoadState(bytes.NewReader(ps.State)); err != nil {
		return
	}
	var s1 bytes.Buffer
	if err := st.SaveState(&s1); err != nil {
		t.Fatalf("%s: save after accepted load: %v", ps.Name, err)
	}
	q := ctor().(core.Stateful)
	if err := q.LoadState(bytes.NewReader(s1.Bytes())); err != nil {
		t.Fatalf("%s: canonical save rejected by LoadState: %v", ps.Name, err)
	}
	var s2 bytes.Buffer
	if err := q.SaveState(&s2); err != nil {
		t.Fatalf("%s: re-save: %v", ps.Name, err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatalf("%s: save/load/save is not a fixed point (%d vs %d bytes)",
			ps.Name, s1.Len(), s2.Len())
	}
}

// FuzzSnapshotDecodeRobustness: arbitrary bytes must never panic the
// decoder or make it allocate past the input it was handed.
func FuzzSnapshotDecodeRobustness(f *testing.F) {
	var valid bytes.Buffer
	s := snapshotFromBytes([]byte{2, 2, 1, 2, 3, 4, 9, 9, 9, 9, 9, 9, 9, 9})
	if _, err := Encode(&valid, s); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeBytes(data)
		if err == nil {
			// Anything accepted must re-encode cleanly (it passed CRC and
			// all structural checks, so it is a genuine snapshot image).
			if _, err := Encode(&bytes.Buffer{}, snap); err != nil {
				t.Fatalf("accepted snapshot fails re-encode: %v", err)
			}
		}
	})
}
