package snapshot

// Delta (v2) snapshot container: an incremental checkpoint whose
// predictor state arrives as content-addressed chunks. Each chunk is an
// exact byte range of the predictor's canonical SaveState stream (split
// at per-PC record boundaries by internal/core's chunked save), named by
// the truncated SHA-256 of its bytes and carrying its own CRC-64. A
// chunk is either written inline or referenced by hash against an
// ancestor checkpoint in the same chain, so regions that did not change
// between cuts — or that are identical across shards — are stored once.
//
// On-disk layout mirrors the v1 container:
//
//	8 bytes   magic "VPDELT01"
//	payload   varint-packed sections (below)
//	8 bytes   little-endian CRC-64/ECMA of the payload
//
// The payload is: format version, creation time, total events, parent
// snapshot ID (empty = full checkpoint, the root of a chain), chain
// depth, shard count, the predictor name list, then one section per
// shard: shard id, events, sorted PCs (delta-encoded), and per predictor
// its tallies, the chunked-save header blob, and the chunk table. Per
// chunk: flags (bit0 = bytes inline), 16-byte hash, CRC-64, raw length,
// first PC, record count, then the bytes when inline.
//
// A delta file is self-describing but not self-contained: materializing
// its state needs the ancestors its references point into — the chain
// resolver in chain.go walks parent IDs and reassembles the canonical
// SaveState blobs, verifying every chunk's CRC on the way.

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
)

// DeltaMagic is the v2 file signature.
const DeltaMagic = "VPDELT01"

// DeltaFormatVersion is the payload schema version written by EncodeDelta.
const DeltaFormatVersion = 2

// maxChainDepth bounds parent walks, so a corrupt or adversarial parent
// graph cannot loop forever.
const maxChainDepth = 4096

// HashSize is the stored prefix of the SHA-256 chunk hash. 128 bits keeps
// accidental collision probability negligible at any realistic chunk
// count while halving the per-chunk overhead.
const HashSize = 16

// ChunkRef is one content-addressed chunk of a predictor's state stream.
type ChunkRef struct {
	// Hash is the truncated SHA-256 of the chunk bytes — the chunk's
	// identity for dedup and for resolving references.
	Hash [HashSize]byte
	// CRC is the CRC-64/ECMA of the chunk bytes, verified independently
	// of the hash when a chain is resolved.
	CRC uint64
	// Len is the chunk's byte length.
	Len int
	// FirstPC and Records locate the chunk within the predictor's sorted
	// per-PC record sequence (manifest metadata for tooling; the bytes
	// alone reconstruct the stream).
	FirstPC uint64
	Records int
	// Data holds the chunk bytes when inline; nil means the chunk is a
	// reference resolved by Hash against an ancestor in the chain.
	Data []byte
}

// Inline reports whether the chunk's bytes are stored in this file.
func (c *ChunkRef) Inline() bool { return c.Data != nil }

// ChunkKey computes a chunk's content address: truncated SHA-256 plus
// CRC-64/ECMA of its bytes.
func ChunkKey(data []byte) (hash [HashSize]byte, crc uint64) {
	sum := sha256.Sum256(data)
	copy(hash[:], sum[:HashSize])
	return hash, crcOf(data)
}

// crcOf is the per-chunk CRC-64/ECMA.
func crcOf(data []byte) uint64 { return crc64.Checksum(data, crcTable) }

// MakeChunk builds an inline ChunkRef, copying data.
func MakeChunk(firstPC uint64, records int, data []byte) ChunkRef {
	h, crc := ChunkKey(data)
	return ChunkRef{
		Hash:    h,
		CRC:     crc,
		Len:     len(data),
		FirstPC: firstPC,
		Records: records,
		Data:    append([]byte(nil), data...),
	}
}

// DeltaPred is one predictor's state within one shard of a delta
// checkpoint: tallies, the chunked-save header bytes, and the chunk
// table. Concatenating Header with every chunk's bytes (after resolving
// references) yields the predictor's canonical SaveState blob. Opaque
// predictors (no chunked save) appear as an empty header plus a single
// chunk holding the whole blob.
type DeltaPred struct {
	Name    string
	Correct uint64
	Total   uint64
	Header  []byte
	Chunks  []ChunkRef
}

// DeltaShard is one shard's section of a delta checkpoint.
type DeltaShard struct {
	Shard  int
	Events uint64
	PCs    []uint64
	Preds  []DeltaPred
}

// DeltaMeta describes a delta checkpoint as a whole.
type DeltaMeta struct {
	FormatVersion int
	// ID is the content-addressed file identifier (hex CRC-64 of the
	// payload), filled by EncodeDelta and DecodeDelta.
	ID string
	// ParentID names the previous checkpoint in the chain; empty for a
	// full checkpoint (chain root).
	ParentID string
	// Depth is the number of delta links from the chain root: 0 for a
	// full checkpoint, parent depth + 1 otherwise.
	Depth           int
	CreatedUnixNano int64
	Events          uint64
	Shards          int
	Predictors      []string
}

// Delta is a fully decoded v2 checkpoint file.
type Delta struct {
	Meta   DeltaMeta
	Shards []DeltaShard
}

// ChunkStats tallies a delta's chunk table: how many chunks (and bytes)
// were written inline versus referenced from ancestors.
type ChunkStats struct {
	Inline      int
	InlineBytes int
	Refs        int
	RefBytes    int
}

// Stats sums the chunk tables across all shards and predictors.
func (d *Delta) Stats() ChunkStats {
	var st ChunkStats
	for i := range d.Shards {
		for j := range d.Shards[i].Preds {
			for k := range d.Shards[i].Preds[j].Chunks {
				c := &d.Shards[i].Preds[j].Chunks[k]
				if c.Inline() {
					st.Inline++
					st.InlineBytes += c.Len
				} else {
					st.Refs++
					st.RefBytes += c.Len
				}
			}
		}
	}
	return st
}

// crcWriter streams bytes through to w while accumulating the payload
// CRC, so encoding never holds more than one section in memory.
type crcWriter struct {
	w   io.Writer
	crc uint64
	n   int
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc64.Update(cw.crc, crcTable, p)
	cw.n += len(p)
	return cw.w.Write(p)
}

// EncodeDelta streams the checkpoint to w and returns its
// content-addressed ID. The write is io.Writer-driven with bounded
// scratch: sections are varint-packed into a small reused buffer and
// chunk bytes pass straight from their slices, so no full file image is
// ever materialized. Like v1's Encode, input is validated rather than
// repaired: shard sections must be ordered and gap-free, PCs strictly
// ascending, names consistent, and every inline chunk's length must
// match its data.
func EncodeDelta(w io.Writer, d *Delta) (string, error) {
	if len(d.Shards) == 0 || len(d.Shards) > maxShards {
		return "", fmt.Errorf("snapshot: invalid shard count %d", len(d.Shards))
	}
	if len(d.Meta.Predictors) == 0 || len(d.Meta.Predictors) > maxPredictors {
		return "", fmt.Errorf("snapshot: invalid predictor count %d", len(d.Meta.Predictors))
	}
	if d.Meta.ParentID == "" && d.Meta.Depth != 0 {
		return "", fmt.Errorf("snapshot: full checkpoint with depth %d", d.Meta.Depth)
	}
	if d.Meta.ParentID != "" && d.Meta.Depth == 0 {
		return "", errors.New("snapshot: delta checkpoint with depth 0")
	}
	if _, err := io.WriteString(w, DeltaMagic); err != nil {
		return "", err
	}
	cw := &crcWriter{w: w}
	var scratch []byte
	put := func(vals ...uint64) error {
		scratch = scratch[:0]
		for _, v := range vals {
			scratch = binary.AppendUvarint(scratch, v)
		}
		_, err := cw.Write(scratch)
		return err
	}
	putBlob := func(b []byte) error {
		if err := put(uint64(len(b))); err != nil {
			return err
		}
		_, err := cw.Write(b)
		return err
	}

	var events uint64
	for _, sh := range d.Shards {
		events += sh.Events
	}
	if err := put(DeltaFormatVersion, uint64(d.Meta.CreatedUnixNano), events); err != nil {
		return "", err
	}
	if err := putBlob([]byte(d.Meta.ParentID)); err != nil {
		return "", err
	}
	if err := put(uint64(d.Meta.Depth), uint64(len(d.Shards)), uint64(len(d.Meta.Predictors))); err != nil {
		return "", err
	}
	for _, name := range d.Meta.Predictors {
		if len(name) == 0 || len(name) > maxNameLen {
			return "", fmt.Errorf("snapshot: invalid predictor name %q", name)
		}
		if err := putBlob([]byte(name)); err != nil {
			return "", err
		}
	}
	for i, sh := range d.Shards {
		if sh.Shard != i {
			return "", fmt.Errorf("snapshot: shard section %d has id %d (must be ordered, gap-free)", i, sh.Shard)
		}
		if len(sh.Preds) != len(d.Meta.Predictors) {
			return "", fmt.Errorf("snapshot: shard %d has %d predictors, bank has %d",
				i, len(sh.Preds), len(d.Meta.Predictors))
		}
		if err := put(uint64(sh.Shard), sh.Events, uint64(len(sh.PCs))); err != nil {
			return "", err
		}
		var prev uint64
		for j, pc := range sh.PCs {
			if j > 0 && pc <= prev {
				return "", fmt.Errorf("snapshot: shard %d PCs not strictly ascending", i)
			}
			if err := put(pc - prev); err != nil {
				return "", err
			}
			prev = pc
		}
		for j := range sh.Preds {
			ps := &sh.Preds[j]
			if ps.Name != d.Meta.Predictors[j] {
				return "", fmt.Errorf("snapshot: shard %d predictor %d is %q, bank says %q",
					i, j, ps.Name, d.Meta.Predictors[j])
			}
			if err := put(ps.Correct, ps.Total); err != nil {
				return "", err
			}
			if err := putBlob(ps.Header); err != nil {
				return "", err
			}
			if err := put(uint64(len(ps.Chunks))); err != nil {
				return "", err
			}
			for k := range ps.Chunks {
				c := &ps.Chunks[k]
				flags := uint64(0)
				if c.Inline() {
					flags |= 1
					if len(c.Data) != c.Len {
						return "", fmt.Errorf("snapshot: shard %d pred %q chunk %d: len %d != %d data bytes",
							i, ps.Name, k, c.Len, len(c.Data))
					}
				}
				if err := put(flags); err != nil {
					return "", err
				}
				if _, err := cw.Write(c.Hash[:]); err != nil {
					return "", err
				}
				var crcb [8]byte
				binary.LittleEndian.PutUint64(crcb[:], c.CRC)
				if _, err := cw.Write(crcb[:]); err != nil {
					return "", err
				}
				if err := put(uint64(c.Len), c.FirstPC, uint64(c.Records)); err != nil {
					return "", err
				}
				if c.Inline() {
					if _, err := cw.Write(c.Data); err != nil {
						return "", err
					}
				}
			}
		}
	}

	id := fmt.Sprintf("%016x", cw.crc)
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], cw.crc)
	if _, err := w.Write(trailer[:]); err != nil {
		return "", err
	}
	d.Meta.FormatVersion = DeltaFormatVersion
	d.Meta.ID = id
	d.Meta.Events = events
	d.Meta.Shards = len(d.Shards)
	return id, nil
}

// DecodeDelta reads and verifies one v2 checkpoint file.
func DecodeDelta(r io.Reader) (*Delta, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if string(magic[:]) != DeltaMagic {
		return nil, fmt.Errorf("snapshot: bad magic %q", magic[:])
	}
	rest, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return decodeDeltaPayload(rest)
}

// DecodeDeltaBytes decodes a v2 checkpoint from an in-memory image.
func DecodeDeltaBytes(data []byte) (*Delta, error) {
	if len(data) < len(DeltaMagic) {
		return nil, fmt.Errorf("snapshot: %w", io.ErrUnexpectedEOF)
	}
	if string(data[:len(DeltaMagic)]) != DeltaMagic {
		return nil, fmt.Errorf("snapshot: bad magic %q", data[:len(DeltaMagic)])
	}
	return decodeDeltaPayload(data[len(DeltaMagic):])
}

func decodeDeltaPayload(b []byte) (*Delta, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("snapshot: %w", io.ErrUnexpectedEOF)
	}
	payload, trailer := b[:len(b)-8], b[len(b)-8:]
	crc := crc64.Checksum(payload, crcTable)
	if binary.LittleEndian.Uint64(trailer) != crc {
		return nil, ErrChecksum
	}

	d := &sdec{p: payload}
	out := &Delta{}
	version := d.uvarint()
	if d.err == nil && version != DeltaFormatVersion {
		return nil, fmt.Errorf("snapshot: unsupported delta format version %d (supported: %d)",
			version, DeltaFormatVersion)
	}
	out.Meta.FormatVersion = int(version)
	out.Meta.ID = fmt.Sprintf("%016x", crc)
	out.Meta.CreatedUnixNano = int64(d.uvarint())
	out.Meta.Events = d.uvarint()
	out.Meta.ParentID = string(d.bytes(d.count(maxNameLen)))
	out.Meta.Depth = int(d.count(maxChainDepth))
	if d.err == nil {
		if out.Meta.ParentID == "" && out.Meta.Depth != 0 {
			return nil, fmt.Errorf("snapshot: full checkpoint with depth %d", out.Meta.Depth)
		}
		if out.Meta.ParentID != "" && out.Meta.Depth == 0 {
			return nil, errors.New("snapshot: delta checkpoint with depth 0")
		}
	}
	nshards := d.count(maxShards)
	npred := d.count(maxPredictors)
	if d.err == nil && (nshards == 0 || npred == 0) {
		return nil, errors.New("snapshot: empty shard or predictor list")
	}
	out.Meta.Shards = int(nshards)
	for i := uint64(0); i < npred && d.err == nil; i++ {
		out.Meta.Predictors = append(out.Meta.Predictors, string(d.bytes(d.count(maxNameLen))))
	}

	var sumEvents uint64
	for i := uint64(0); i < nshards && d.err == nil; i++ {
		sh := DeltaShard{Shard: int(d.uvarint())}
		if d.err == nil && sh.Shard != int(i) {
			return nil, fmt.Errorf("snapshot: shard section %d has id %d", i, sh.Shard)
		}
		sh.Events = d.uvarint()
		sumEvents += sh.Events
		npc := d.count(uint64(len(d.p)))
		var pc uint64
		for j := uint64(0); j < npc && d.err == nil; j++ {
			next := pc + d.uvarint()
			if j > 0 && next <= pc {
				return nil, fmt.Errorf("snapshot: shard %d PCs not strictly ascending", i)
			}
			pc = next
			sh.PCs = append(sh.PCs, pc)
		}
		for j := uint64(0); j < npred && d.err == nil; j++ {
			ps := DeltaPred{Name: out.Meta.Predictors[j]}
			ps.Correct = d.uvarint()
			ps.Total = d.uvarint()
			ps.Header = d.bytes(d.count(uint64(len(d.p))))
			// Every chunk costs at least its fixed-size hash and CRC, so
			// the remaining payload bounds the believable chunk count.
			nchunks := d.count(uint64(len(d.p))/(HashSize+8) + 1)
			for k := uint64(0); k < nchunks && d.err == nil; k++ {
				var c ChunkRef
				flags := d.uvarint()
				copy(c.Hash[:], d.bytes(HashSize))
				crcb := d.bytes(8)
				if d.err == nil {
					c.CRC = binary.LittleEndian.Uint64(crcb)
				}
				c.Len = int(d.count(1 << 32))
				c.FirstPC = d.uvarint()
				c.Records = int(d.count(1 << 32))
				if flags&1 != 0 {
					c.Data = d.bytes(uint64(c.Len))
					if c.Data == nil && c.Len > 0 {
						break
					}
					if c.Data == nil {
						c.Data = []byte{} // zero-length inline chunk stays inline
					}
				}
				ps.Chunks = append(ps.Chunks, c)
			}
			sh.Preds = append(sh.Preds, ps)
		}
		out.Shards = append(out.Shards, sh)
	}
	if d.err != nil {
		return nil, fmt.Errorf("snapshot: %w", d.err)
	}
	if len(d.p) != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after last shard", len(d.p))
	}
	if sumEvents != out.Meta.Events {
		return nil, fmt.Errorf("snapshot: header claims %d events, shards sum to %d", out.Meta.Events, sumEvents)
	}
	return out, nil
}
