package engine_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/experiments"
)

// renderSuiteArtifacts renders every suite-backed paper artifact
// (Tables 2, 4, 5 and Figures 3-10) from one suite into a single string.
func renderSuiteArtifacts(t *testing.T, cfg experiments.Config, suite *analysis.Suite) string {
	t.Helper()
	var sb strings.Builder
	for _, e := range experiments.Registry() {
		if !e.NeedsSuite {
			continue
		}
		if err := e.Run(&sb, cfg, suite); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
	}
	return sb.String()
}

// TestParallelArtifactsByteIdentical is the engine's determinism
// guarantee: the parallel engine must render byte-identical artifact
// tables to the serial path, whatever the worker count or batch size.
func TestParallelArtifactsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism suite in -short mode")
	}
	ecfg := experiments.Config{Events: 20_000, Benchmarks: []string{"compress", "m88ksim"}}
	acfg := analysis.Config{Events: ecfg.Events, Benchmarks: ecfg.Benchmarks}

	serial, err := engine.RunSuite(engine.Config{Analysis: acfg, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := renderSuiteArtifacts(t, ecfg, serial)
	if !strings.Contains(want, "compress") || !strings.Contains(want, "m88ksim") {
		t.Fatalf("serial artifacts look empty:\n%s", want)
	}

	for _, c := range []struct {
		workers, batch int
	}{
		{2, 0},
		{4, 0},
		{4, 1},
		{4, 513},
	} {
		suite, err := engine.RunSuite(engine.Config{
			Analysis:  acfg,
			Workers:   c.workers,
			BatchSize: c.batch,
		})
		if err != nil {
			t.Fatalf("workers=%d batch=%d: %v", c.workers, c.batch, err)
		}
		got := renderSuiteArtifacts(t, ecfg, suite)
		if got != want {
			t.Errorf("workers=%d batch=%d: artifacts differ from serial path\n--- serial ---\n%s\n--- parallel ---\n%s",
				c.workers, c.batch, want, got)
		}
	}
}
