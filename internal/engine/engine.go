// Package engine executes the paper's experiment suite concurrently.
//
// The serial path (internal/analysis.RunSuite) interleaves simulation and
// prediction in one goroutine: every value event is pushed through five
// predictors and three collectors before the simulator may retire the next
// instruction. The engine decouples the two: each benchmark is simulated
// exactly once, its value events are delivered in fixed-size batches
// (sim.Config.OnValues) and fanned out over bounded channels to a pool of
// predictor workers — one worker per predictor bank — while a merger
// goroutine reconstructs the cross-predictor statistics (Figure 8 subset
// masks, per-static-instruction records, unique-value tracking) from
// per-batch correctness bitsets. Benchmarks themselves run in parallel
// across a configurable worker pool.
//
// Results are deterministic: workers consume batches in program order over
// FIFO channels, every per-event statistic is a commutative counter, and
// suite results are merged in reporting order, so the produced
// analysis.Suite — and every artifact table rendered from it — is
// byte-identical to the serial path (see determinism_test.go).
package engine

import (
	"runtime"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
)

// Config parameterizes a concurrent suite run.
type Config struct {
	// Analysis carries the methodology parameters (event budget, scale,
	// benchmark subset...) shared with the serial path.
	Analysis analysis.Config
	// Workers bounds benchmark-level parallelism: 0 = GOMAXPROCS,
	// 1 = the serial reference path (analysis.RunSuite), used to verify
	// the engine against.
	Workers int
	// BatchSize is the number of value events per delivered batch
	// (0 = DefaultBatchSize).
	BatchSize int
	// Progress, when non-nil, is called with each benchmark's name as it
	// starts. With Workers > 1 calls may come from concurrent goroutines.
	Progress func(name string)
	// Arena selects the predictor slab backing ("", "heap" or "mmap");
	// see core.SetSlabArena. Process-global: it applies to every
	// predictor constructed after RunSuite starts.
	Arena string
}

// RunSuite runs every configured benchmark once and returns results in
// reporting order regardless of completion order.
func RunSuite(cfg Config) (*analysis.Suite, error) {
	if err := core.SetSlabArena(cfg.Arena); err != nil {
		return nil, err
	}
	acfg := cfg.Analysis.WithDefaults()
	if cfg.Workers == 1 {
		return analysis.RunSuite(acfg, cfg.Progress)
	}
	workloads, err := analysis.Workloads(acfg)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(workloads) {
		workers = len(workloads)
	}

	results := make([]*analysis.BenchResult, len(workloads))
	errs := make([]error, len(workloads))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One arena per suite worker: predictor tables, grouping
			// arenas, batch buffers and bitsets are reset in place
			// between benchmarks instead of reallocated per run.
			ar := newArena()
			for i := range idx {
				if cfg.Progress != nil {
					cfg.Progress(workloads[i].Name)
				}
				results[i], errs[i] = ar.runBenchmark(workloads[i], acfg, cfg.BatchSize)
			}
		}()
	}
	for i := range workloads {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &analysis.Suite{Config: acfg, Results: results}, nil
}
