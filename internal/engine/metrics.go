package engine

import (
	"repro/internal/core"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
)

// Fan-out instrumentation, registered on the process-wide default
// registry so one-shot drivers (vpredict, vpbench) can dump it after a
// run without plumbing a registry through every call. All cells are
// shared across concurrent benchmark runs; the per-batch updates are
// uncontended atomic adds.
var (
	metBatches = obs.Default.Counter("vp_engine_batches_total",
		"simulator batches fanned out to the predictor bank workers")
	metEvents = obs.Default.Counter("vp_engine_events_total",
		"value events fanned out to the predictor bank workers")
	metFill = obs.Default.Histogram("vp_engine_batch_events",
		"events per fanned-out batch (fill relative to the configured batch size)")
)

// numWorkers is the fan-out width: one bank worker per standard
// predictor, fixed for the life of the process.
var numWorkers = len(core.StandardFactories())

// tracer records the same stage spans for the offline fan-out that the
// serving tier records for requests, so vpredict -metrics can put
// offline and online stage cost side by side. Lane layout: one
// single-writer lane per bank worker, then the simulator's fan-out lane
// and the merger's lane. Shared across concurrent benchmark runs (lanes
// are internally locked; spans from concurrent runs interleave but the
// per-stage aggregates stay exact).
var tracer = otrace.NewRecorder(otrace.Config{
	Lanes:    numWorkers + 2,
	Registry: obs.Default,
})

func simLane() int   { return numWorkers }
func mergeLane() int { return numWorkers + 1 }

// TraceStageSummary returns the per-stage span aggregates of every
// fan-out run so far (sim fan-out, per-predictor bank steps, merge).
func TraceStageSummary() []otrace.StageStat {
	return tracer.StageSummary()
}

// workerBusyHist returns the per-predictor bank-worker busy-time
// histogram — ns spent inside StepBatchCollect, the measure of how
// evenly the fan-out keeps its workers utilized.
func workerBusyHist(pred string) *obs.Histogram {
	return obs.Default.Histogram("vp_engine_worker_busy_ns",
		"ns per batch inside StepBatchCollect, per bank worker", "pred", pred)
}
