package engine

import "repro/internal/obs"

// Fan-out instrumentation, registered on the process-wide default
// registry so one-shot drivers (vpredict, vpbench) can dump it after a
// run without plumbing a registry through every call. All cells are
// shared across concurrent benchmark runs; the per-batch updates are
// uncontended atomic adds.
var (
	metBatches = obs.Default.Counter("vp_engine_batches_total",
		"simulator batches fanned out to the predictor bank workers")
	metEvents = obs.Default.Counter("vp_engine_events_total",
		"value events fanned out to the predictor bank workers")
	metFill = obs.Default.Histogram("vp_engine_batch_events",
		"events per fanned-out batch (fill relative to the configured batch size)")
)

// workerBusyHist returns the per-predictor bank-worker busy-time
// histogram — ns spent inside StepBatchCollect, the measure of how
// evenly the fan-out keeps its workers utilized.
func workerBusyHist(pred string) *obs.Histogram {
	return obs.Default.Histogram("vp_engine_worker_busy_ns",
		"ns per batch inside StepBatchCollect, per bank worker", "pred", pred)
}
