package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/sim"
)

// DefaultBatchSize mirrors the simulator's default delivery granularity.
const DefaultBatchSize = sim.DefaultBatchSize

// chanDepth bounds every channel in the fan-out so a fast simulator
// cannot run unboundedly ahead of slow predictor banks (backpressure).
const chanDepth = 4

// bitsRing is the number of correctness bitsets each tracked worker
// rotates through instead of allocating one per batch: at most chanDepth
// sit in the channel, the merger holds one, and one is being filled.
const bitsRing = chanDepth + 2

// batch is one refcounted slice of value events shared read-only by all
// predictor workers and the merger; the last consumer returns it to the
// pool. Every batch carries a trace context minted at fan-out so the
// bank workers and merger can record their stage spans against it.
type batch struct {
	ev     []sim.ValueEvent
	refs   atomic.Int32
	ctx    otrace.Context
	sentNs int64
}

func (b *batch) release(pool *sync.Pool) {
	if b.refs.Add(-1) == 0 {
		pool.Put(b)
	}
}

// workerState is one predictor bank's reusable execution state: the
// single-predictor core.Bank (whose grouping arenas and predictor tables
// persist across benchmark runs via Reset) plus the worker's own SoA and
// bitset scratch. Each bank worker goroutine owns exactly one.
type workerState struct {
	fac     core.Factory
	bank    *core.Bank
	idx     int            // predictor index: span lane, Pred label
	busy    *obs.Histogram // vp_engine_worker_busy_ns{pred}
	pcs     []uint64
	vals    []uint64
	bitsArg [][]uint64 // 1-slot reusable argument for StepBatchCollect
	ring    [][]uint64 // tracked workers: rotation of bitsets sent to the merger
	ringIdx int
	scratch []uint64 // untracked workers: private bitset, never leaves the worker
}

// arena holds everything a benchmark run can reuse from the previous one
// executed on the same goroutine: one workerState per standard predictor
// and the shared batch pool. RunSuite gives each suite worker its own
// arena, so back-to-back benchmarks pay no per-run reallocation of
// predictor tables, grouping arenas, event buffers or bitsets.
type arena struct {
	ws   []*workerState
	pool *sync.Pool
}

func newArena() *arena {
	facs := core.StandardFactories()
	a := &arena{
		ws: make([]*workerState, len(facs)),
		pool: &sync.Pool{New: func() any {
			return &batch{}
		}},
	}
	for i, f := range facs {
		ws := &workerState{
			fac:     f,
			bank:    core.NewBank(f.New()),
			idx:     i,
			busy:    workerBusyHist(f.Name),
			bitsArg: make([][]uint64, 1),
		}
		switch i {
		case analysis.TrackedL, analysis.TrackedS, analysis.TrackedF:
			ws.ring = make([][]uint64, bitsRing)
		}
		a.ws[i] = ws
	}
	return a
}

// reset readies the arena for a fresh benchmark: every predictor's tables
// are cleared in place (all standard predictors implement core.Resetter;
// a hypothetical one that doesn't is rebuilt from its factory).
func (a *arena) reset() {
	for _, ws := range a.ws {
		if !ws.bank.Reset() {
			ws.bank = core.NewBank(ws.fac.New())
		}
	}
}

// RunBenchmark executes one workload with the fan-out topology:
//
//	simulator ──batches──► bank worker (l)    ──bitsets──┐
//	    │     ──batches──► bank worker (s2)   ──bitsets──┤
//	    │     ──batches──► bank worker (fcm1)            ├──► merger
//	    │     ──batches──► bank worker (fcm2)            │
//	    │     ──batches──► bank worker (fcm3) ──bitsets──┤
//	    └─────batches────────────────────────────────────┘
//
// Each bank worker owns one single-predictor core.Bank and steps every
// batch through Bank.StepBatchCollect — the same batch path the serving
// tier and warm-restart replay use — reading per-event correctness back
// from the bank's bitset output to tally per-category accuracy; the three
// tracked banks forward their bitsets so the merger can rebuild the exact
// per-event subset masks and per-static-instruction records of the serial
// path. All channels are FIFO, so every consumer observes events in
// program order and the result is identical to analysis.RunBenchmark.
func RunBenchmark(w *bench.Workload, cfg analysis.Config, batchSize int) (*analysis.BenchResult, error) {
	return newArena().runBenchmark(w, cfg, batchSize)
}

func (a *arena) runBenchmark(w *bench.Workload, cfg analysis.Config, batchSize int) (*analysis.BenchResult, error) {
	cfg = cfg.WithDefaults()
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	a.reset()
	res := analysis.NewBenchResult(w.Name, cfg.Opt)

	ins := make([]chan *batch, len(a.ws))
	var bitsL, bitsS, bitsF chan []uint64
	var wg sync.WaitGroup
	for i, ws := range a.ws {
		ins[i] = make(chan *batch, chanDepth)
		var out chan []uint64
		switch i {
		case analysis.TrackedL:
			out = make(chan []uint64, chanDepth)
			bitsL = out
		case analysis.TrackedS:
			out = make(chan []uint64, chanDepth)
			bitsS = out
		case analysis.TrackedF:
			out = make(chan []uint64, chanDepth)
			bitsF = out
		}
		wg.Add(1)
		go bankWorker(&wg, ws, res.Acc[analysis.PredictorNames[i]], ins[i], out, a.pool)
	}

	mergeIn := make(chan *batch, chanDepth)
	uniq := analysis.NewUniqueTracker(cfg.UniqueValueCap)
	mergeDone := make(chan struct{})
	go merge(res, uniq, mergeIn, bitsL, bitsS, bitsF, a.pool, mergeDone)

	simRes, err := w.Run(bench.RunConfig{
		Opt:       cfg.Opt,
		Scale:     cfg.Scale,
		MaxEvents: cfg.Events,
		BatchSize: batchSize,
		OnValues: func(evs []sim.ValueEvent) {
			metBatches.Inc()
			metEvents.Add(uint64(len(evs)))
			metFill.Observe(uint64(len(evs)))
			// The simulator reuses its batch buffer, so copy into a pooled
			// one owned by the fan-out for the lifetime of the refcount.
			b := a.pool.Get().(*batch)
			b.ev = append(b.ev[:0], evs...)
			b.refs.Store(int32(len(ins) + 1))
			// Capture the context locally: once the last consumer releases
			// the batch to the pool its fields must not be read here.
			ctx, sentNs := otrace.Mint(), time.Now().UnixNano()
			b.ctx, b.sentNs = ctx, sentNs
			for _, in := range ins {
				in <- b
			}
			mergeIn <- b
			// Root span covers copy + fan-out enqueue: its duration is the
			// backpressure the simulator felt delivering this batch.
			tracer.Record(simLane(), otrace.Span{
				TraceID: ctx.TraceID,
				SpanID:  ctx.SpanID,
				Stage:   otrace.StageSim,
				Shard:   -1,
				Pred:    -1,
				Start:   sentNs,
				Dur:     time.Now().UnixNano() - sentNs,
				N:       uint64(len(evs)),
			})
		},
	})
	for _, in := range ins {
		close(in)
	}
	close(mergeIn)
	wg.Wait()
	<-mergeDone
	if err != nil {
		return nil, fmt.Errorf("engine: %s: %w", w.Name, err)
	}

	res.Instructions = simRes.Instructions
	res.Events = simRes.Events
	res.Halted = simRes.Halted
	res.DynPerCat = simRes.DynPerCat
	uniq.FillStatic(res)
	return res, nil
}

// bankWorker drives one predictor bank over the batch stream through the
// shared batch path, tallying its accuracy in place (each worker owns its
// CatAccuracy, so tallies need no locks). Tracked banks forward one
// correctness bitset per batch on out, drawn from a fixed ring: the
// bounded out channel plus the merger's strictly sequential consumption
// guarantee at most bitsRing bitsets are live at once, so the ring is
// reused without synchronization or allocation.
func bankWorker(wg *sync.WaitGroup, ws *workerState, acc *analysis.CatAccuracy,
	in <-chan *batch, out chan<- []uint64, pool *sync.Pool) {
	defer wg.Done()
	for b := range in {
		n := len(b.ev)
		if cap(ws.pcs) < n {
			ws.pcs = make([]uint64, n)
			ws.vals = make([]uint64, n)
		}
		pcs, vals := ws.pcs[:n], ws.vals[:n]
		for j := range b.ev {
			pcs[j] = b.ev[j].PC
			vals[j] = b.ev[j].Value
		}
		nw := (n + 63) / 64
		var bits []uint64
		if out != nil {
			bits = ws.ring[ws.ringIdx]
			if cap(bits) < nw {
				bits = make([]uint64, nw)
				ws.ring[ws.ringIdx] = bits
			}
			ws.ringIdx = (ws.ringIdx + 1) % bitsRing
		} else {
			if cap(ws.scratch) < nw {
				ws.scratch = make([]uint64, nw)
			}
			bits = ws.scratch
		}
		bits = bits[:nw]
		ws.bitsArg[0] = bits
		t0 := time.Now()
		ws.bank.StepBatchCollect(pcs, vals, nil, ws.bitsArg)
		stepNs := time.Since(t0).Nanoseconds()
		ws.busy.ObserveInt(stepNs)
		tracer.Record(ws.idx, otrace.Span{
			TraceID: b.ctx.TraceID,
			SpanID:  b.ctx.SpanID + 2 + uint64(ws.idx),
			Parent:  b.ctx.SpanID,
			Stage:   otrace.StageBank,
			Shard:   -1,
			Pred:    int32(ws.idx),
			Start:   t0.UnixNano(),
			Dur:     stepNs,
			N:       uint64(n),
		})
		for j := range b.ev {
			correct := bits[j>>6]&(1<<(uint(j)&63)) != 0
			acc.Overall.Observe(correct)
			acc.PerCat[b.ev[j].Cat].Observe(correct)
		}
		if out != nil {
			out <- bits
		}
		b.release(pool)
	}
	if out != nil {
		close(out)
	}
}

// merge joins each batch with the tracked banks' correctness bitsets
// (aligned by FIFO order: the k-th batch pairs with the k-th bitset of
// every tracked bank) and rebuilds the serial path's per-event subset
// masks, per-static-instruction records and unique-value sets through
// the same analysis collectors the serial path uses.
func merge(res *analysis.BenchResult, uniq *analysis.UniqueTracker,
	in <-chan *batch, bitsL, bitsS, bitsF <-chan []uint64, pool *sync.Pool, done chan<- struct{}) {
	defer close(done)
	for b := range in {
		lb, sb, fb := <-bitsL, <-bitsS, <-bitsF
		t0 := time.Now()
		for j := range b.ev {
			ev := &b.ev[j]
			bit := uint64(1) << (uint(j) & 63)
			var mask uint64
			if lb[j>>6]&bit != 0 {
				mask |= 1
			}
			if sb[j>>6]&bit != 0 {
				mask |= 2
			}
			if fb[j>>6]&bit != 0 {
				mask |= 4
			}
			res.RecordEvent(ev.Cat, ev.PC, mask)
			uniq.Observe(ev.PC, ev.Value)
		}
		tracer.Record(mergeLane(), otrace.Span{
			TraceID: b.ctx.TraceID,
			SpanID:  b.ctx.SpanID + 1,
			Parent:  b.ctx.SpanID,
			Stage:   otrace.StageMerge,
			Shard:   -1,
			Pred:    -1,
			Start:   t0.UnixNano(),
			Dur:     time.Since(t0).Nanoseconds(),
			N:       uint64(len(b.ev)),
		})
		b.release(pool)
	}
}
