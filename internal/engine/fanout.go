package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sim"
)

// DefaultBatchSize mirrors the simulator's default delivery granularity.
const DefaultBatchSize = sim.DefaultBatchSize

// chanDepth bounds every channel in the fan-out so a fast simulator
// cannot run unboundedly ahead of slow predictor banks (backpressure).
const chanDepth = 4

// batch is one refcounted slice of value events shared read-only by all
// predictor workers and the merger; the last consumer returns it to the
// pool.
type batch struct {
	ev   []sim.ValueEvent
	refs atomic.Int32
}

func (b *batch) release(pool *sync.Pool) {
	if b.refs.Add(-1) == 0 {
		pool.Put(b)
	}
}

// RunBenchmark executes one workload with the fan-out topology:
//
//	simulator ──batches──► bank worker (l)    ──bitsets──┐
//	    │     ──batches──► bank worker (s2)   ──bitsets──┤
//	    │     ──batches──► bank worker (fcm1)            ├──► merger
//	    │     ──batches──► bank worker (fcm2)            │
//	    │     ──batches──► bank worker (fcm3) ──bitsets──┤
//	    └─────batches────────────────────────────────────┘
//
// Each bank worker owns one predictor and its accuracy tallies; the three
// tracked banks additionally emit one correctness bit per event, from
// which the merger rebuilds the exact per-event subset masks and
// per-static-instruction records of the serial path. All channels are
// FIFO, so every consumer observes events in program order and the result
// is identical to analysis.RunBenchmark.
func RunBenchmark(w *bench.Workload, cfg analysis.Config, batchSize int) (*analysis.BenchResult, error) {
	cfg = cfg.WithDefaults()
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	res := analysis.NewBenchResult(w.Name, cfg.Opt)
	facs := core.StandardFactories()

	pool := &sync.Pool{New: func() any {
		return &batch{ev: make([]sim.ValueEvent, 0, batchSize)}
	}}

	ins := make([]chan *batch, len(facs))
	var bitsL, bitsS, bitsF chan []uint64
	var wg sync.WaitGroup
	for i, f := range facs {
		ins[i] = make(chan *batch, chanDepth)
		var out chan []uint64
		switch i {
		case analysis.TrackedL:
			out = make(chan []uint64, chanDepth)
			bitsL = out
		case analysis.TrackedS:
			out = make(chan []uint64, chanDepth)
			bitsS = out
		case analysis.TrackedF:
			out = make(chan []uint64, chanDepth)
			bitsF = out
		}
		wg.Add(1)
		go bankWorker(&wg, f.New(), res.Acc[analysis.PredictorNames[i]], ins[i], out, pool)
	}

	mergeIn := make(chan *batch, chanDepth)
	uniq := analysis.NewUniqueTracker(cfg.UniqueValueCap)
	mergeDone := make(chan struct{})
	go merge(res, uniq, mergeIn, bitsL, bitsS, bitsF, pool, mergeDone)

	simRes, err := w.Run(bench.RunConfig{
		Opt:       cfg.Opt,
		Scale:     cfg.Scale,
		MaxEvents: cfg.Events,
		BatchSize: batchSize,
		OnValues: func(evs []sim.ValueEvent) {
			// The simulator reuses its batch buffer, so copy into a pooled
			// one owned by the fan-out for the lifetime of the refcount.
			b := pool.Get().(*batch)
			b.ev = append(b.ev[:0], evs...)
			b.refs.Store(int32(len(ins) + 1))
			for _, in := range ins {
				in <- b
			}
			mergeIn <- b
		},
	})
	for _, in := range ins {
		close(in)
	}
	close(mergeIn)
	wg.Wait()
	<-mergeDone
	if err != nil {
		return nil, fmt.Errorf("engine: %s: %w", w.Name, err)
	}

	res.Instructions = simRes.Instructions
	res.Events = simRes.Events
	res.Halted = simRes.Halted
	res.DynPerCat = simRes.DynPerCat
	uniq.FillStatic(res)
	return res, nil
}

// bankWorker drives one predictor over the batch stream, tallying its
// accuracy in place (each worker owns its CatAccuracy, so tallies need no
// locks). Tracked banks emit one correctness bit per event on out.
func bankWorker(wg *sync.WaitGroup, p core.Predictor, acc *analysis.CatAccuracy,
	in <-chan *batch, out chan<- []uint64, pool *sync.Pool) {
	defer wg.Done()
	for b := range in {
		var bits []uint64
		if out != nil {
			bits = make([]uint64, (len(b.ev)+63)/64)
		}
		for j := range b.ev {
			ev := &b.ev[j]
			pred, ok := p.Predict(ev.PC)
			correct := ok && pred == ev.Value
			acc.Overall.Observe(correct)
			acc.PerCat[ev.Cat].Observe(correct)
			if correct && bits != nil {
				bits[j>>6] |= 1 << (uint(j) & 63)
			}
			p.Update(ev.PC, ev.Value)
		}
		if out != nil {
			out <- bits
		}
		b.release(pool)
	}
	if out != nil {
		close(out)
	}
}

// merge joins each batch with the tracked banks' correctness bitsets
// (aligned by FIFO order: the k-th batch pairs with the k-th bitset of
// every tracked bank) and rebuilds the serial path's per-event subset
// masks, per-static-instruction records and unique-value sets through
// the same analysis collectors the serial path uses.
func merge(res *analysis.BenchResult, uniq *analysis.UniqueTracker,
	in <-chan *batch, bitsL, bitsS, bitsF <-chan []uint64, pool *sync.Pool, done chan<- struct{}) {
	defer close(done)
	for b := range in {
		lb, sb, fb := <-bitsL, <-bitsS, <-bitsF
		for j := range b.ev {
			ev := &b.ev[j]
			bit := uint64(1) << (uint(j) & 63)
			var mask uint64
			if lb[j>>6]&bit != 0 {
				mask |= 1
			}
			if sb[j>>6]&bit != 0 {
				mask |= 2
			}
			if fb[j>>6]&bit != 0 {
				mask |= 4
			}
			res.RecordEvent(ev.Cat, ev.PC, mask)
			uniq.Observe(ev.PC, ev.Value)
		}
		b.release(pool)
	}
}
