package engine

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/sim"
)

// StreamConfig parameterizes RunStream.
type StreamConfig struct {
	// Benchmark names the workload (compress, gcc, ...).
	Benchmark string
	// Opt is the compiler optimization level (bench.RefOpt for the
	// paper's standard runs; the zero value is an -O0 build).
	Opt int
	// Scale is the input scale factor (default 1).
	Scale int
	// Events caps delivered value events (0 = run to completion).
	Events uint64
	// BatchSize bounds events per delivered batch (0 = DefaultBatchSize).
	BatchSize int
}

// RunStream simulates one benchmark and delivers its value-event stream
// as (pcs, vals) SoA batches — the shape core.Bank.StepBatch consumes —
// without materializing the trace. The slices are reused across calls;
// callers must consume them before returning. It returns the number of
// events delivered.
func RunStream(cfg StreamConfig, fn func(pcs, vals []uint64)) (uint64, error) {
	w := bench.ByName(cfg.Benchmark)
	if w == nil {
		return 0, fmt.Errorf("engine: unknown benchmark %q", cfg.Benchmark)
	}
	bs := cfg.BatchSize
	if bs <= 0 {
		bs = DefaultBatchSize
	}
	pcs := make([]uint64, bs)
	vals := make([]uint64, bs)
	var total uint64
	_, err := w.Run(bench.RunConfig{
		Opt:       cfg.Opt,
		Scale:     cfg.Scale,
		MaxEvents: cfg.Events,
		BatchSize: bs,
		OnValues: func(evs []sim.ValueEvent) {
			n := len(evs)
			for j, ev := range evs {
				pcs[j] = ev.PC
				vals[j] = ev.Value
			}
			total += uint64(n)
			fn(pcs[:n], vals[:n])
		},
	})
	return total, err
}
