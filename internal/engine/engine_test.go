package engine_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/engine"
)

// TestBenchResultMatchesSerial checks that the fan-out produces exactly
// the serial path's BenchResult — every tally, mask count, static record
// and unique-value count — across batch sizes including degenerate ones.
func TestBenchResultMatchesSerial(t *testing.T) {
	cfg := analysis.Config{Events: 10_000}
	w := bench.Compress()
	want, err := analysis.RunBenchmark(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, batchSize := range []int{1, 257, engine.DefaultBatchSize} {
		got, err := engine.RunBenchmark(w, cfg, batchSize)
		if err != nil {
			t.Fatalf("batch=%d: %v", batchSize, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("batch=%d: engine result differs from serial path", batchSize)
		}
	}
}

// TestRunSuiteMatchesSerial checks the parallel suite against the serial
// reference (Workers=1) result-for-result, in reporting order.
func TestRunSuiteMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("suite comparison in -short mode")
	}
	acfg := analysis.Config{Events: 5_000, Benchmarks: []string{"m88ksim", "compress", "perl"}}
	serial, err := engine.RunSuite(engine.Config{Analysis: acfg, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := engine.RunSuite(engine.Config{Analysis: acfg, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel.Results) != len(acfg.Benchmarks) {
		t.Fatalf("got %d results, want %d", len(parallel.Results), len(acfg.Benchmarks))
	}
	for i, r := range parallel.Results {
		if r.Name != acfg.Benchmarks[i] {
			t.Errorf("result %d is %s, want %s (merge order must be deterministic)",
				i, r.Name, acfg.Benchmarks[i])
		}
		if !reflect.DeepEqual(r, serial.Results[i]) {
			t.Errorf("%s: parallel result differs from serial", r.Name)
		}
	}
}

func TestRunSuiteUnknownBenchmark(t *testing.T) {
	_, err := engine.RunSuite(engine.Config{
		Analysis: analysis.Config{Events: 1000, Benchmarks: []string{"nope"}},
		Workers:  2,
	})
	if err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("err = %v, want unknown benchmark", err)
	}
}

// TestRunBenchmarkProgressAndBudget checks that the event budget is
// honored exactly through the batched path.
func TestRunBenchmarkBudget(t *testing.T) {
	const budget = 2_000
	r, err := engine.RunBenchmark(bench.M88ksim(), analysis.Config{Events: budget}, 333)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events != budget {
		t.Fatalf("events = %d, want %d", r.Events, budget)
	}
	var observed uint64
	for _, acc := range r.Acc {
		if acc.Overall.Total != budget {
			t.Fatalf("predictor observed %d events, want %d", acc.Overall.Total, budget)
		}
		observed = acc.Overall.Total
	}
	if observed == 0 {
		t.Fatal("no predictors tallied")
	}
}

// TestFanOutStageSpans checks that a fan-out run records spans for every
// stage of the offline pipeline (sim fan-out, per-predictor bank steps,
// merge), and that the bank stage saw one span per worker per batch.
func TestFanOutStageSpans(t *testing.T) {
	before := map[string]uint64{}
	for _, st := range engine.TraceStageSummary() {
		before[st.Stage] = st.Spans
	}
	if _, err := engine.RunBenchmark(bench.Compress(), analysis.Config{Events: 4_000}, 512); err != nil {
		t.Fatal(err)
	}
	after := map[string]uint64{}
	for _, st := range engine.TraceStageSummary() {
		after[st.Stage] = st.Spans
	}
	simN := after["sim"] - before["sim"]
	if simN == 0 {
		t.Fatal("no sim fan-out spans recorded")
	}
	if mergeN := after["merge"] - before["merge"]; mergeN != simN {
		t.Errorf("merge spans = %d, want one per batch (%d)", mergeN, simN)
	}
	wantBank := simN * uint64(len(analysis.PredictorNames))
	if bankN := after["bank"] - before["bank"]; bankN != wantBank {
		t.Errorf("bank spans = %d, want %d (batches x predictors)", bankN, wantBank)
	}
}
