package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func TestRegisterGoRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterGoRuntime(r)
	runtime.GC() // guarantee at least one GC cycle and pause sample

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"vp_go_goroutines ",
		"vp_go_heap_bytes ",
		"vp_go_gc_cycles_total ",
		"vp_go_gc_pause_ns_count ",
		"vp_go_sched_latency_ns_count ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The gauges must reflect a live process: at least this goroutine,
	// a non-empty heap, and the forced GC cycle.
	for _, line := range strings.Split(out, "\n") {
		if v, ok := strings.CutPrefix(line, "vp_go_goroutines "); ok && v == "0" {
			t.Error("vp_go_goroutines = 0, want > 0")
		}
		if v, ok := strings.CutPrefix(line, "vp_go_gc_cycles_total "); ok && v == "0" {
			t.Error("vp_go_gc_cycles_total = 0, want > 0 after runtime.GC")
		}
	}
	// A second scrape must not double-count the cumulative histograms.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramObserveN(t *testing.T) {
	h := NewHistogram()
	h.ObserveN(100, 5)
	h.ObserveN(0, 0) // no-op
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 500 || s.Max != 100 {
		t.Fatalf("snapshot = %+v, want count 5 sum 500 max 100", s)
	}
	if s.Buckets[bucketOf(100)] != 5 {
		t.Fatalf("bucket count = %d, want 5", s.Buckets[bucketOf(100)])
	}
}
