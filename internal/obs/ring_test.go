package obs

import "testing"

func TestRingSeqAssignment(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Add(StageEvent{Kind: "k"})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Seqs are 1-based and dense; the ring keeps the most recent 4 of 6.
	for i, ev := range evs {
		if want := uint64(3 + i); ev.Seq != want {
			t.Fatalf("event %d Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if r.Total() != 6 {
		t.Fatalf("Total = %d, want 6", r.Total())
	}
}

func TestRingEventsSince(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Add(StageEvent{Kind: "k"})
	}
	if got := r.EventsSince(0); len(got) != 5 {
		t.Fatalf("since 0 returned %d, want 5", len(got))
	}
	got := r.EventsSince(3)
	if len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("since 3 returned %+v", got)
	}
	if got := r.EventsSince(5); len(got) != 0 {
		t.Fatalf("since last_seq should be empty, got %+v", got)
	}
	// A cursor older than the retained window returns the whole window.
	small := NewRing(2)
	for i := 0; i < 5; i++ {
		small.Add(StageEvent{Kind: "k"})
	}
	if got := small.EventsSince(1); len(got) != 2 || got[0].Seq != 4 {
		t.Fatalf("overwritten cursor returned %+v", got)
	}
	// Nil ring stays inert.
	var nr *Ring
	if nr.EventsSince(0) != nil {
		t.Fatal("nil ring EventsSince should be nil")
	}
}
