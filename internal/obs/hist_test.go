package obs

import (
	"math/bits"
	"testing"
)

// TestHistogramBucketBoundaries pins the bucket layout: 0 lands in
// bucket 0, powers of two open a fresh bucket, and 2^k-1 closes one.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21}, {1<<21 - 1, 21},
		{1 << 62, NumBuckets - 1}, // clamps into the last bucket
		{^uint64(0), NumBuckets - 1},
	}
	for _, c := range cases {
		h := NewHistogram()
		h.Observe(c.v)
		s := h.Snapshot()
		if s.Buckets[c.bucket] != 1 {
			got := -1
			for i, n := range s.Buckets {
				if n != 0 {
					got = i
				}
			}
			t.Errorf("Observe(%d): bucket %d, want %d", c.v, got, c.bucket)
		}
		if c.bucket < NumBuckets-1 {
			if hi := BucketUpper(c.bucket); c.v > hi {
				t.Errorf("value %d above its bucket's le bound %d", c.v, hi)
			}
		}
	}
	// The le bound of bucket i must admit every value the bucket holds.
	for i := 1; i < NumBuckets-1; i++ {
		hi := BucketUpper(i)
		if bucketOf(hi) != i || bucketOf(hi+1) != i+1 {
			t.Errorf("bucket %d upper bound %d misplaced (len=%d)", i, hi, bits.Len64(hi))
		}
	}
}

func TestHistogramSnapshotAndMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for _, v := range []uint64{1, 2, 3, 100} {
		a.Observe(v)
	}
	for _, v := range []uint64{50, 5000} {
		b.Observe(v)
	}
	var merged HistSnap
	a.AddTo(&merged)
	b.AddTo(&merged)
	if merged.Count != 6 || merged.Sum != 1+2+3+100+50+5000 || merged.Max != 5000 {
		t.Fatalf("merged = count %d sum %d max %d", merged.Count, merged.Sum, merged.Max)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if sa != merged {
		t.Fatal("HistSnap.Merge disagrees with Histogram.AddTo")
	}
	for i := range merged.Buckets {
		if want := sa.Buckets[i]; merged.Buckets[i] != want {
			t.Fatalf("bucket %d: %d vs %d", i, merged.Buckets[i], want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 250 || p50 > 750 {
		t.Fatalf("p50 = %v, want within [250, 750] for uniform 1..1000", p50)
	}
	if p100 := s.Quantile(1); p100 != 1000 {
		t.Fatalf("p100 = %v, want the exact max 1000", p100)
	}
	if p99 := s.Quantile(0.99); p99 > 1000 || p99 < 500 {
		t.Fatalf("p99 = %v out of range", p99)
	}
	lo, hi := s.Quantile(0.25), s.Quantile(0.75)
	if lo > hi {
		t.Fatalf("quantiles not monotone: p25=%v > p75=%v", lo, hi)
	}
	// A single-valued histogram answers that value at every quantile.
	one := NewHistogram()
	one.Observe(42)
	os := one.Snapshot()
	for _, p := range []float64{0.01, 0.5, 0.999, 1} {
		if q := os.Quantile(p); q > 42 {
			t.Fatalf("Quantile(%v) = %v exceeds the max 42", p, q)
		}
	}
	if os.Mean() != 42 {
		t.Fatalf("mean = %v, want 42", os.Mean())
	}
}

func TestObserveInt(t *testing.T) {
	h := NewHistogram()
	h.ObserveInt(-5) // clamps to 0
	h.ObserveInt(9)
	s := h.Snapshot()
	if s.Count != 2 || s.Buckets[0] != 1 || s.Sum != 9 {
		t.Fatalf("snapshot = %+v", s)
	}
}
