package obs

import (
	"sync"
	"time"
)

// StageEvent is one control-plane occurrence worth a trace entry:
// checkpoint cuts, restores, drains, slow batches. Fields are fixed-width
// so recording one composes no strings; Detail is reserved for cold-path
// events (restore provenance, error text) where an allocation is fine.
type StageEvent struct {
	// Seq is the event's 1-based position in the ring's lifetime sequence,
	// assigned by Add. Pollers resume from where they left off by passing
	// their last seen Seq to EventsSince (the /events ?since= cursor).
	Seq          uint64 `json:"seq"`
	TimeUnixNano int64  `json:"time_unix_nano"`
	Kind         string `json:"kind"`
	Shard        int    `json:"shard"` // -1 when not shard-scoped
	DurNs        int64  `json:"dur_ns,omitempty"`
	N            uint64 `json:"n,omitempty"` // kind-dependent count (events, bytes)
	Detail       string `json:"detail,omitempty"`
}

// Ring is a fixed-capacity, mutex-guarded ring of stage events. Events
// are rare (checkpoints, restores, anomalies), so a mutex is cheaper and
// simpler than a lock-free design; the hot path never touches the ring
// unless something noteworthy happened.
type Ring struct {
	mu    sync.Mutex
	buf   []StageEvent
	next  int
	total uint64
}

// NewRing returns a ring keeping the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 256
	}
	return &Ring{buf: make([]StageEvent, 0, capacity)}
}

// Add records one event, stamping TimeUnixNano if unset. Safe for
// concurrent use; nil rings drop events so recording sites need no guard.
func (r *Ring) Add(ev StageEvent) {
	if r == nil {
		return
	}
	if ev.TimeUnixNano == 0 {
		ev.TimeUnixNano = time.Now().UnixNano()
	}
	r.mu.Lock()
	r.total++
	ev.Seq = r.total
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []StageEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]StageEvent, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// EventsSince returns the retained events with Seq > since, oldest
// first. A poller that remembers the last Seq it saw tails the ring
// without re-reading old events; since 0 returns everything retained.
func (r *Ring) EventsSince(since uint64) []StageEvent {
	if r == nil {
		return nil
	}
	evs := r.Events()
	// Seqs are assigned in order, so the retained window is sorted:
	// find the first event past the cursor.
	lo := 0
	for lo < len(evs) && evs[lo].Seq <= since {
		lo++
	}
	return evs[lo:]
}

// Total returns how many events have ever been recorded (including those
// the ring has since overwritten).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
