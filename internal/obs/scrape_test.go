package obs

import (
	"strings"
	"testing"
)

// TestOnScrapeHook: hooks run before families render, so a scrape sees
// the values the hook just wrote — including a Reset+refill histogram.
func TestOnScrapeHook(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_scrapes", "scrape count")
	h := r.Histogram("test_dist", "rebuilt per scrape")
	n := int64(0)
	r.OnScrape(func() {
		n++
		g.Set(n)
		h.Reset()
		h.Observe(uint64(10 * n))
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "test_scrapes 1\n") || !strings.Contains(out, "test_scrapes 2\n") {
		t.Fatalf("hook did not run per scrape:\n%s", out)
	}
	// The histogram must show exactly one observation each time (Reset
	// cleared the first scrape's fill), with sums 10 then 20.
	if !strings.Contains(out, "test_dist_sum 10\n") || !strings.Contains(out, "test_dist_sum 20\n") {
		t.Fatalf("histogram not rebuilt per scrape:\n%s", out)
	}
	if strings.Count(out, "test_dist_count 1\n") != 2 {
		t.Fatalf("histogram count not reset between scrapes:\n%s", out)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Observe(100)
	h.Reset()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("reset left state: %+v", s)
	}
	for i, b := range s.Buckets {
		if b != 0 {
			t.Fatalf("bucket %d not cleared", i)
		}
	}
	h.Observe(7)
	if s := h.Snapshot(); s.Count != 1 || s.Sum != 7 || s.Max != 7 {
		t.Fatalf("histogram unusable after reset: %+v", s)
	}
}

func TestResolveLevel(t *testing.T) {
	t.Setenv(LogLevelEnv, "")
	if lv, err := ResolveLevel(""); err != nil || lv != LevelInfo {
		t.Fatalf("default: %v %v", lv, err)
	}
	if lv, err := ResolveLevel("debug"); err != nil || lv != LevelDebug {
		t.Fatalf("flag: %v %v", lv, err)
	}
	t.Setenv(LogLevelEnv, "warn")
	if lv, err := ResolveLevel(""); err != nil || lv != LevelWarn {
		t.Fatalf("env fallback: %v %v", lv, err)
	}
	// Flag beats env.
	if lv, err := ResolveLevel("error"); err != nil || lv != LevelError {
		t.Fatalf("flag over env: %v %v", lv, err)
	}
	// Unknown values error and name the valid levels.
	if _, err := ResolveLevel("loud"); err == nil || !strings.Contains(err.Error(), "debug|info|warn|error") {
		t.Fatalf("unknown flag value: %v", err)
	}
	t.Setenv(LogLevelEnv, "quiet")
	if _, err := ResolveLevel(""); err == nil || !strings.Contains(err.Error(), LogLevelEnv) {
		t.Fatalf("unknown env value should name the variable: %v", err)
	}
}
