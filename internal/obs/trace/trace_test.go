package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestMinterUniqueAndHeadSampled(t *testing.T) {
	m := NewMinter(7, 4)
	seen := map[uint64]bool{}
	sampled := 0
	const n = 1000
	for i := 0; i < n; i++ {
		ctx := m.Next()
		if !ctx.Valid() {
			t.Fatalf("minted invalid context at %d", i)
		}
		if seen[ctx.TraceID] {
			t.Fatalf("duplicate trace id %016x", ctx.TraceID)
		}
		seen[ctx.TraceID] = true
		if ctx.Sampled() {
			sampled++
		}
	}
	if sampled != n/4 {
		t.Fatalf("head sampled %d of %d, want %d", sampled, n, n/4)
	}
	// headEvery = 0 never samples.
	m0 := NewMinter(7, 0)
	for i := 0; i < 100; i++ {
		if m0.Next().Sampled() {
			t.Fatal("headEvery=0 minted a sampled context")
		}
	}
}

func TestMintGlobalValid(t *testing.T) {
	a, b := Mint(), Mint()
	if !a.Valid() || !b.Valid() || a.TraceID == b.TraceID {
		t.Fatalf("global mint broken: %+v %+v", a, b)
	}
}

func TestStageStrings(t *testing.T) {
	for st := Stage(0); st < NumStages; st++ {
		if st.String() == "unknown" || st.String() == "" {
			t.Fatalf("stage %d has no name", st)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage should be unknown")
	}
}

func TestRecordPromoteCollect(t *testing.T) {
	r := NewRecorder(Config{Lanes: 3, SpanRing: 16, Retain: 8, SlowNs: 1000})
	ctx := Mint()
	// Spans spread across lanes, recorded out of Start order.
	r.Record(1, Span{TraceID: ctx.TraceID, SpanID: 2, Stage: StageShard, Shard: 1, Start: 200, Dur: 50, N: 4})
	r.Record(2, Span{TraceID: ctx.TraceID, SpanID: 3, Stage: StageBank, Shard: 2, Start: 300, Dur: 20, N: 4})
	r.Record(0, Span{TraceID: ctx.TraceID, SpanID: 1, Stage: StageConn, Shard: -1, Start: 100, Dur: 400, N: 8})
	// Noise from another trace must not leak in.
	other := Mint()
	r.Record(1, Span{TraceID: other.TraceID, SpanID: 9, Stage: StageShard, Shard: 1, Start: 250, Dur: 1})

	r.Promote(ctx, 100, 400, 8, "slow")
	got := r.Traces(0, 0)
	if len(got) != 1 {
		t.Fatalf("retained %d traces, want 1", len(got))
	}
	tr := got[0]
	if tr.TraceID != Hex16(ctx.TraceID) || tr.Reason != "slow" || tr.DurNs != 400 || tr.Events != 8 {
		t.Fatalf("bad retained header: %+v", tr)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("collected %d spans, want 3: %+v", len(tr.Spans), tr.Spans)
	}
	// Sorted by Start, with StageName filled at record time.
	wantStages := []string{"conn", "shard", "bank"}
	for i, sp := range tr.Spans {
		if sp.StageName != wantStages[i] {
			t.Fatalf("span %d stage %q, want %q", i, sp.StageName, wantStages[i])
		}
	}
	if r.Promoted() != 1 {
		t.Fatalf("Promoted() = %d, want 1", r.Promoted())
	}
}

func TestSpanRingOverwrite(t *testing.T) {
	r := NewRecorder(Config{Lanes: 1, SpanRing: 4, Retain: 4})
	ctx := Mint()
	// 6 spans into a ring of 4: the first two age out.
	for i := 0; i < 6; i++ {
		r.Record(0, Span{TraceID: ctx.TraceID, SpanID: uint64(i + 1), Stage: StageShard, Start: int64(i)})
	}
	r.Promote(ctx, 0, 0, 0, "head")
	got := r.Traces(0, 0)
	if len(got) != 1 || len(got[0].Spans) != 4 {
		t.Fatalf("want 4 surviving spans, got %+v", got)
	}
	if got[0].Spans[0].SpanID != 3 || got[0].Spans[3].SpanID != 6 {
		t.Fatalf("wrong survivors: %+v", got[0].Spans)
	}
}

func TestFlightRecorderEvictionAndFilters(t *testing.T) {
	r := NewRecorder(Config{Lanes: 1, SpanRing: 8, Retain: 3})
	for i := 0; i < 5; i++ {
		ctx := Mint()
		r.Record(0, Span{TraceID: ctx.TraceID, Stage: StageConn, Start: int64(i), Dur: int64(i) * 100})
		r.Promote(ctx, int64(i), int64(i)*100, 1, "slow")
	}
	all := r.Traces(0, 0)
	if len(all) != 3 {
		t.Fatalf("retain=3 kept %d", len(all))
	}
	// Newest first: durations 400, 300, 200.
	if all[0].DurNs != 400 || all[2].DurNs != 200 {
		t.Fatalf("order wrong: %+v", all)
	}
	if got := r.Traces(300, 0); len(got) != 2 {
		t.Fatalf("min_ns filter kept %d, want 2", len(got))
	}
	if got := r.Traces(0, 1); len(got) != 1 || got[0].DurNs != 400 {
		t.Fatalf("n filter wrong: %+v", got)
	}
	if r.Promoted() != 5 {
		t.Fatalf("Promoted() = %d, want 5", r.Promoted())
	}
}

func TestRetainReasonPriority(t *testing.T) {
	r := NewRecorder(Config{Lanes: 1, SlowNs: 1000})
	slow := Context{TraceID: 1, SpanID: 1}
	head := Context{TraceID: 2, SpanID: 2, Flags: FlagSampled}
	if got := r.RetainReason(slow, 2000, "mailbox_saturated"); got != "mailbox_saturated" {
		t.Fatalf("degraded should win, got %q", got)
	}
	if got := r.RetainReason(slow, 2000, ""); got != "slow" {
		t.Fatalf("slow threshold, got %q", got)
	}
	if got := r.RetainReason(head, 10, ""); got != "head" {
		t.Fatalf("head flag, got %q", got)
	}
	if got := r.RetainReason(slow, 10, ""); got != "" {
		t.Fatalf("fast unflagged should drop, got %q", got)
	}
	if got := r.RetainReason(Context{}, 1<<40, "x"); got != "" {
		t.Fatalf("invalid context should drop, got %q", got)
	}
	r.SetSlowNs(5)
	if got := r.RetainReason(slow, 10, ""); got != "slow" {
		t.Fatalf("after SetSlowNs, got %q", got)
	}
	r.SetSlowNs(0) // ignored
	if r.SlowNs() != 5 {
		t.Fatalf("SetSlowNs(0) should be ignored, got %d", r.SlowNs())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, Span{TraceID: 1})
	r.Promote(Context{TraceID: 1}, 0, 0, 0, "slow")
	r.SetSlowNs(1)
	if r.SlowNs() != 0 || r.RetainReason(Context{TraceID: 1}, 1, "") != "" ||
		r.Traces(0, 0) != nil || r.StageSummary() != nil || r.Promoted() != 0 {
		t.Fatal("nil recorder must be inert")
	}
}

func TestRecordOutOfRangeLane(t *testing.T) {
	r := NewRecorder(Config{Lanes: 1, SpanRing: 4})
	r.Record(-1, Span{TraceID: 1, Stage: StageConn})
	r.Record(5, Span{TraceID: 1, Stage: StageConn})
	r.Promote(Context{TraceID: 1, SpanID: 1}, 0, 0, 0, "head")
	if got := r.Traces(0, 0); len(got) != 1 || len(got[0].Spans) != 0 {
		t.Fatalf("out-of-range lanes must drop spans: %+v", got)
	}
}

func TestStageSummaryAndRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRecorder(Config{Lanes: 1, Registry: reg})
	r.Record(0, Span{TraceID: 1, Stage: StageConn, Dur: 100})
	r.Record(0, Span{TraceID: 1, Stage: StageConn, Dur: 50})
	r.Record(0, Span{TraceID: 1, Stage: StageBank, Dur: 7})
	sum := r.StageSummary()
	if len(sum) != 2 {
		t.Fatalf("summary %+v, want 2 stages", sum)
	}
	if sum[0].Stage != "conn" || sum[0].Spans != 2 || sum[0].Ns != 150 {
		t.Fatalf("conn stat wrong: %+v", sum[0])
	}
	if sum[1].Stage != "bank" || sum[1].Spans != 1 || sum[1].Ns != 7 {
		t.Fatalf("bank stat wrong: %+v", sum[1])
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		`vp_trace_spans_total{stage="conn"} 2`,
		`vp_trace_stage_ns_total{stage="conn"} 150`,
		`vp_trace_spans_total{stage="bank"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHex16(t *testing.T) {
	if got := Hex16(0); got != "0000000000000000" {
		t.Fatalf("Hex16(0) = %q", got)
	}
	if got := Hex16(0xdeadbeef12345678); got != "deadbeef12345678" {
		t.Fatalf("got %q", got)
	}
}

func TestWritePerfetto(t *testing.T) {
	r := NewRecorder(Config{Lanes: 2, SpanRing: 16, Retain: 4})
	ctx := Mint()
	r.Record(0, Span{TraceID: ctx.TraceID, SpanID: 1, Stage: StageConn, Shard: -1, Pred: -1, Start: 1_000_000, Dur: 500_000, N: 8})
	r.Record(1, Span{TraceID: ctx.TraceID, SpanID: 2, Stage: StageShard, Shard: 0, Pred: -1, Start: 1_100_000, Dur: 100})
	r.Record(1, Span{TraceID: ctx.TraceID, SpanID: 3, Stage: StageBank, Shard: 0, Pred: -1, Start: 1_150_000, Dur: 10})
	r.Record(0, Span{TraceID: ctx.TraceID, SpanID: 4, Stage: StageCheckpointCut, Shard: -1, Pred: -1, Start: 1_200_000, Dur: 300})
	r.Promote(ctx, 1_000_000, 500_000, 8, "slow")

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, r.Traces(0, 0)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Name string         `json:"name"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v\n%s", err, buf.String())
	}
	var xEvents, mEvents int
	names := map[string]bool{}
	tids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
			names[ev.Name] = true
			tids[ev.Name] = ev.Tid
			if ev.Dur <= 0 {
				t.Fatalf("span %q has non-positive dur %v", ev.Name, ev.Dur)
			}
		case "M":
			mEvents++
		}
	}
	if xEvents != 4 || mEvents == 0 {
		t.Fatalf("got %d X events, %d M events", xEvents, mEvents)
	}
	for _, want := range []string{"conn", "shard", "bank", "checkpoint_cut"} {
		if !names[want] {
			t.Fatalf("missing span %q in perfetto output", want)
		}
	}
	if tids["shard"] != perfettoTidShardBase || tids["bank"] != perfettoTidShardBase {
		t.Fatalf("shard-scoped spans on wrong tid: %+v", tids)
	}
	if tids["checkpoint_cut"] != perfettoTidCheckpoint || tids["conn"] != perfettoTidConn {
		t.Fatalf("edge/checkpoint tids wrong: %+v", tids)
	}
	// ts is µs: 1ms start → 1000µs.
	if doc.TraceEvents == nil {
		t.Fatal("no events")
	}
}

func TestWritePerfettoEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty perfetto doc invalid: %v", err)
	}
}
