package trace

import (
	"fmt"
	"io"
	"strings"
)

// Perfetto (chrome://tracing) rendering: retained traces become Chrome
// trace-event JSON — one "X" (complete) event per span, timestamps and
// durations in microseconds, laid out on one synthetic process with one
// thread row per shard plus rows for the connection/driver edge and the
// checkpoint machinery. Named thread rows come from "M" metadata events.

const (
	perfettoTidConn       = 0  // conn / enqueue / sim / merge edge work
	perfettoTidShardBase  = 1  // shard s renders on tid 1+s
	perfettoTidCheckpoint = 99 // checkpoint cut + encode
)

func perfettoTid(sp *Span) int {
	switch sp.Stage {
	case StageCheckpointCut, StageCheckpointEncode:
		return perfettoTidCheckpoint
	}
	if sp.Shard >= 0 {
		return perfettoTidShardBase + int(sp.Shard)
	}
	return perfettoTidConn
}

// WritePerfetto renders traces as a Chrome trace-event JSON object
// loadable in Perfetto or chrome://tracing. Spans from different traces
// share the timeline (real wall-clock placement), so cut interference
// and queueing overlap are visible across requests.
func WritePerfetto(w io.Writer, traces []Retained) error {
	var b strings.Builder
	b.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	emit := func(s string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(s)
	}
	// Thread-name metadata for every tid that appears.
	seenTid := map[int]string{}
	for ti := range traces {
		for si := range traces[ti].Spans {
			sp := &traces[ti].Spans[si]
			tid := perfettoTid(sp)
			if _, ok := seenTid[tid]; ok {
				continue
			}
			switch {
			case tid == perfettoTidConn:
				seenTid[tid] = "edge"
			case tid == perfettoTidCheckpoint:
				seenTid[tid] = "checkpoint"
			default:
				seenTid[tid] = fmt.Sprintf("shard %d", tid-perfettoTidShardBase)
			}
		}
	}
	for tid, name := range seenTid {
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`, tid, name))
	}
	for ti := range traces {
		tr := &traces[ti]
		for si := range tr.Spans {
			sp := &tr.Spans[si]
			// ts/dur are float64 microseconds in the trace-event format;
			// sub-µs durations round up to 0.001 so they stay visible.
			tsUs := float64(sp.Start) / 1e3
			durUs := float64(sp.Dur) / 1e3
			if durUs < 0.001 {
				durUs = 0.001
			}
			emit(fmt.Sprintf(
				`{"ph":"X","pid":1,"tid":%d,"name":%q,"cat":%q,"ts":%.3f,"dur":%.3f,"args":{"trace_id":%q,"n":%d,"shard":%d,"pred":%d}}`,
				perfettoTid(sp), sp.Stage.String(), tr.Reason, tsUs, durUs,
				tr.TraceID, sp.N, sp.Shard, sp.Pred))
		}
	}
	b.WriteString(`]}`)
	_, err := io.WriteString(w, b.String())
	return err
}
