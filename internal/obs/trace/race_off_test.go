//go:build !race

package trace

// raceEnabled reports whether the race detector is active; alloc-count
// tests skip under -race because instrumentation allocates.
const raceEnabled = false
