// Package trace is the request-level half of the observability plane: a
// zero-alloc span layer threaded through the serving and offline
// execution paths, with tail-based sampling into a retained flight
// recorder.
//
// The aggregate metrics in internal/obs answer "how is the population
// doing"; this package answers "where did *this* slow request spend its
// time". A Context (64-bit trace id, span id, sampled flag) is minted by
// the client or driver, rides the wire protocol, and every stage the
// request crosses — connection decode, mailbox enqueue, shard dequeue,
// core.Bank batch step, checkpoint-cut interference — records one fixed-
// width Span into a per-lane ring. Rings are bounded and overwritten, so
// recording is provisional: only traces that finish slow (adaptive
// threshold), hit a degraded path, or carry the head-sampling flag are
// Promoted — their spans copied out of the rings into the retained
// flight-recorder buffer that GET /trace and the Perfetto export serve.
// Steady-state overhead is a handful of uncontended mutex'd stores per
// traced request and nothing at all for untraced ones.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Flags carried in a Context (wire byte).
const (
	// FlagSampled marks a head-sampled trace: retained regardless of how
	// fast it finished, so a steady trickle of ordinary requests is always
	// inspectable alongside the tail-sampled pathological ones.
	FlagSampled = 1 << 0
)

// Context is one request's trace identity: minted at the edge (client,
// driver, or the server itself for internal work like checkpoints) and
// propagated through every stage the request crosses. The zero Context
// means "untraced" — stages record nothing for it.
type Context struct {
	TraceID uint64
	SpanID  uint64
	Flags   uint8
}

// Valid reports whether the context identifies a trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// Sampled reports the head-sampling flag.
func (c Context) Sampled() bool { return c.Flags&FlagSampled != 0 }

// mix64 is the splitmix64 finalizer — the id generator behind minting.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Minter mints trace contexts from a counter run through splitmix64, so
// ids are unique per minter and well-mixed without coordination. Not safe
// for concurrent use; give each connection or runner its own.
type Minter struct {
	state uint64
	n     uint64
	// headEvery head-samples every headEvery-th minted context (0 = never).
	headEvery uint64
}

// NewMinter seeds a minter. headEvery > 0 sets FlagSampled on every
// headEvery-th context (the 1-in-N head-sampling rate).
func NewMinter(seed uint64, headEvery int) *Minter {
	m := &Minter{state: seed}
	if headEvery > 0 {
		m.headEvery = uint64(headEvery)
	}
	return m
}

// Next mints the next context. A zero TraceID draw is skipped so minted
// contexts are always Valid.
func (m *Minter) Next() Context {
	m.state++
	id := mix64(m.state)
	for id == 0 {
		m.state++
		id = mix64(m.state)
	}
	ctx := Context{TraceID: id, SpanID: mix64(id)}
	m.n++
	if m.headEvery > 0 && m.n%m.headEvery == 0 {
		ctx.Flags |= FlagSampled
	}
	return ctx
}

// Mint mints one context from the process-wide sequence — for internal
// work (checkpoints) that has no client-held minter. Safe for concurrent
// use.
func Mint() Context {
	id := mix64(globalMint.Add(1) ^ 0x9e3779b97f4a7c15)
	for id == 0 {
		id = mix64(globalMint.Add(1) ^ 0x9e3779b97f4a7c15)
	}
	return Context{TraceID: id, SpanID: mix64(id)}
}

var globalMint atomic.Uint64

// Stage identifies where in the request path a span was recorded. The
// same stages serve online (vpserve) and offline (engine) execution, so
// their per-stage costs are directly comparable.
type Stage uint8

const (
	// StageConn is the whole server-side request: events frame decoded →
	// result ready to write.
	StageConn Stage = iota
	// StageEnqueue is the dispatch step: checkpoint cut-lock acquisition
	// plus mailing every shard sub-batch — where backpressure and cut
	// interference surface.
	StageEnqueue
	// StageShard is one sub-batch from mailbox send to applied: queue wait
	// plus execution on the owning shard.
	StageShard
	// StageBank is the core.Bank batch step itself (predict + compare +
	// update for the whole bank).
	StageBank
	// StageCheckpointCut is a checkpoint's capture: markers mailed → every
	// shard's state gathered.
	StageCheckpointCut
	// StageCheckpointEncode is a checkpoint's encode + atomic file write.
	StageCheckpointEncode
	// StageSim is the offline engine's simulator-side batch delivery
	// (copy + fan-out enqueue to the bank workers).
	StageSim
	// StageMerge is the offline engine's merger join for one batch.
	StageMerge
	// NumStages bounds the enum; new stages go before it.
	NumStages
)

var stageNames = [NumStages]string{
	"conn", "enqueue", "shard", "bank",
	"checkpoint_cut", "checkpoint_encode", "sim", "merge",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one stage crossing of one trace. Fields are fixed-width so
// recording composes no strings and a ring slot assignment is a plain
// struct store.
type Span struct {
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id"`
	Parent  uint64 `json:"parent,omitempty"`
	Stage   Stage  `json:"-"`
	// StageName mirrors Stage for JSON consumers.
	StageName string `json:"stage"`
	// Shard is the owning shard, -1 when the span is not shard-scoped.
	Shard int32 `json:"shard"`
	// Pred is a predictor index for per-predictor spans (engine bank
	// workers), -1 otherwise.
	Pred  int32 `json:"pred,omitempty"`
	Start int64 `json:"start_unix_nano"`
	Dur   int64 `json:"dur_ns"`
	// N is the span's event count.
	N uint64 `json:"n,omitempty"`
}

// lane is one writer's fixed-capacity span ring. Writes are expected to
// come from a single goroutine (shard lanes) or a small set (the shared
// control lane); the mutex makes either race-free while staying
// allocation-free and a few nanoseconds when uncontended.
type lane struct {
	mu   sync.Mutex
	buf  []Span
	next int
	full bool
}

func (l *lane) add(sp Span) {
	l.mu.Lock()
	l.buf[l.next] = sp
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// collect appends every retained span of traceID to dst, oldest first.
func (l *lane) collect(traceID uint64, dst []Span) []Span {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	start := 0
	if l.full {
		start = l.next
	}
	for i := 0; i < n; i++ {
		sp := &l.buf[(start+i)%len(l.buf)]
		if sp.TraceID == traceID {
			dst = append(dst, *sp)
		}
	}
	l.mu.Unlock()
	return dst
}

// Retained is one promoted trace in the flight recorder: its identity,
// why it was kept, and the spans copied out of the rings at promotion.
type Retained struct {
	// TraceID is the trace id rendered as 16 hex digits — the form drivers
	// print and operators paste into ?min_ns= queries' neighbor, /trace.
	TraceID string `json:"trace_id"`
	// Reason is why the trace was retained: "slow", "head", "checkpoint",
	// or a degraded-path marker ("mailbox_saturated", "decode_error").
	Reason string `json:"reason"`
	Start  int64  `json:"start_unix_nano"`
	DurNs  int64  `json:"dur_ns"`
	Events uint64 `json:"events,omitempty"`
	Spans  []Span `json:"spans"`
}

// StageStat is one stage's lifetime aggregate — the offline/online
// comparability summary.
type StageStat struct {
	Stage string `json:"stage"`
	Spans uint64 `json:"spans"`
	Ns    uint64 `json:"ns"`
}

// Config parameterizes a Recorder.
type Config struct {
	// Lanes is the writer-lane count (shards + 1 shared control lane in
	// the server; predictor workers + sim + merge in the engine). Min 1.
	Lanes int
	// SpanRing is each lane's span capacity (0 = 4096).
	SpanRing int
	// Retain is the flight recorder's trace capacity (0 = 64).
	Retain int
	// SlowNs is the initial tail-sampling threshold; a request whose total
	// duration reaches it is promoted (0 = 50ms). Serving layers adapt it
	// from live latency quantiles via SetSlowNs.
	SlowNs int64
	// Registry, when non-nil, receives the per-stage span/ns counter
	// families (vp_trace_spans_total, vp_trace_stage_ns_total).
	Registry *obs.Registry
}

// Recorder owns the span lanes, the per-stage aggregates and the
// flight recorder. All methods are nil-safe so instrumentation sites
// need no "is tracing on" guards.
type Recorder struct {
	lanes  []lane
	slowNs atomic.Int64

	// Per-stage lifetime aggregates, updated on every Record — the
	// cross-run summary vpredict -metrics dumps and /metrics exports.
	stageSpans [NumStages]*obs.Counter
	stageNs    [NumStages]*obs.Counter

	fmu      sync.Mutex
	flight   []Retained // ring, next at fnext
	fnext    int
	ffull    bool
	promoted atomic.Uint64
}

// NewRecorder builds a recorder.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Lanes < 1 {
		cfg.Lanes = 1
	}
	if cfg.SpanRing <= 0 {
		cfg.SpanRing = 4096
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 64
	}
	if cfg.SlowNs <= 0 {
		cfg.SlowNs = int64(50 * time.Millisecond)
	}
	r := &Recorder{
		lanes:  make([]lane, cfg.Lanes),
		flight: make([]Retained, 0, cfg.Retain),
	}
	r.slowNs.Store(cfg.SlowNs)
	for i := range r.lanes {
		r.lanes[i].buf = make([]Span, cfg.SpanRing)
	}
	reg := cfg.Registry
	for st := Stage(0); st < NumStages; st++ {
		if reg != nil {
			r.stageSpans[st] = reg.Counter("vp_trace_spans_total",
				"spans recorded, per request-path stage", "stage", st.String())
			r.stageNs[st] = reg.Counter("vp_trace_stage_ns_total",
				"ns spent inside recorded spans, per request-path stage", "stage", st.String())
		} else {
			r.stageSpans[st] = &obs.Counter{}
			r.stageNs[st] = &obs.Counter{}
		}
	}
	return r
}

// Record writes one span into the given lane ring and folds it into the
// stage aggregates. Zero-alloc; nil recorders and invalid lanes drop the
// span. The StageName field is filled here so callers build bare structs.
func (r *Recorder) Record(laneIdx int, sp Span) {
	if r == nil || laneIdx < 0 || laneIdx >= len(r.lanes) {
		return
	}
	sp.StageName = sp.Stage.String() // constant string: no allocation
	r.lanes[laneIdx].add(sp)
	if sp.Stage < NumStages {
		r.stageSpans[sp.Stage].Inc()
		r.stageNs[sp.Stage].Add(uint64(sp.Dur))
	}
}

// SlowNs returns the current tail-sampling threshold.
func (r *Recorder) SlowNs() int64 {
	if r == nil {
		return 0
	}
	return r.slowNs.Load()
}

// SetSlowNs updates the tail-sampling threshold (adaptive callers feed a
// live latency quantile; values <= 0 are ignored).
func (r *Recorder) SetSlowNs(ns int64) {
	if r == nil || ns <= 0 {
		return
	}
	r.slowNs.Store(ns)
}

// RetainReason decides tail promotion for a finished request: a degraded
// marker wins, then the slow threshold, then the head-sampling flag.
// Empty means the trace is dropped (its ring spans simply age out).
func (r *Recorder) RetainReason(ctx Context, durNs int64, degraded string) string {
	if r == nil || !ctx.Valid() {
		return ""
	}
	if degraded != "" {
		return degraded
	}
	if durNs >= r.slowNs.Load() {
		return "slow"
	}
	if ctx.Sampled() {
		return "head"
	}
	return ""
}

// Promote copies every span of ctx's trace out of the lane rings into
// the retained flight recorder. The caller must have finished recording
// the trace's spans (for the server: the request's done signal has been
// consumed, so every shard's spans happened-before). Promotion is the
// cold path — it allocates — but runs only for the slow, degraded or
// head-sampled minority.
func (r *Recorder) Promote(ctx Context, start, durNs int64, events uint64, reason string) {
	if r == nil || !ctx.Valid() {
		return
	}
	var spans []Span
	for i := range r.lanes {
		spans = r.lanes[i].collect(ctx.TraceID, spans)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	ret := Retained{
		TraceID: hex16(ctx.TraceID),
		Reason:  reason,
		Start:   start,
		DurNs:   durNs,
		Events:  events,
		Spans:   spans,
	}
	r.fmu.Lock()
	if len(r.flight) < cap(r.flight) {
		r.flight = append(r.flight, ret)
	} else {
		r.flight[r.fnext] = ret
		r.fnext = (r.fnext + 1) % cap(r.flight)
		r.ffull = true
	}
	r.fmu.Unlock()
	r.promoted.Add(1)
}

// Promoted returns how many traces have ever been promoted (including
// ones the flight recorder has since evicted).
func (r *Recorder) Promoted() uint64 {
	if r == nil {
		return 0
	}
	return r.promoted.Load()
}

// Traces returns the retained traces, newest first, keeping only those
// with DurNs >= minNs, at most n (n <= 0 = all).
func (r *Recorder) Traces(minNs int64, n int) []Retained {
	if r == nil {
		return nil
	}
	r.fmu.Lock()
	all := make([]Retained, 0, len(r.flight))
	if r.ffull {
		all = append(all, r.flight[r.fnext:]...)
		all = append(all, r.flight[:r.fnext]...)
	} else {
		all = append(all, r.flight...)
	}
	r.fmu.Unlock()
	// all is oldest-first; filter and reverse into newest-first.
	out := make([]Retained, 0, len(all))
	for i := len(all) - 1; i >= 0; i-- {
		if all[i].DurNs >= minNs {
			out = append(out, all[i])
		}
		if n > 0 && len(out) == n {
			break
		}
	}
	return out
}

// StageSummary returns the lifetime per-stage aggregates, in stage order,
// stages never recorded elided.
func (r *Recorder) StageSummary() []StageStat {
	if r == nil {
		return nil
	}
	out := make([]StageStat, 0, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		if c := r.stageSpans[st].Load(); c > 0 {
			out = append(out, StageStat{Stage: st.String(), Spans: c, Ns: r.stageNs[st].Load()})
		}
	}
	return out
}

const hexDigits = "0123456789abcdef"

// hex16 renders an id as 16 lowercase hex digits (what %016x prints).
func hex16(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Hex16 is hex16 exported for drivers printing trace ids.
func Hex16(v uint64) string { return hex16(v) }
