package trace

import "testing"

// TestSpanRecordZeroAlloc gates the provisional-record hot path: writing
// a span into a lane ring (including the per-stage aggregate updates)
// must not allocate, and neither must minting a context or evaluating
// the retain decision for a dropped trace.
func TestSpanRecordZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	r := NewRecorder(Config{Lanes: 2, SpanRing: 64, Retain: 4, SlowNs: 1 << 60})
	m := NewMinter(1, 0)
	ctx := m.Next()
	sp := Span{TraceID: ctx.TraceID, SpanID: ctx.SpanID, Stage: StageShard, Shard: 0, Dur: 100, N: 8}
	if n := testing.AllocsPerRun(200, func() {
		r.Record(0, sp)
	}); n != 0 {
		t.Fatalf("Record allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		c := m.Next()
		_ = r.RetainReason(c, 10, "")
	}); n != 0 {
		t.Fatalf("mint+retain decision allocates %v/op", n)
	}
	// Nil recorder fast path.
	var nr *Recorder
	if n := testing.AllocsPerRun(200, func() {
		nr.Record(0, sp)
	}); n != 0 {
		t.Fatalf("nil Record allocates %v/op", n)
	}
}
