package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	default:
		return "ERROR"
	}
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error") to a
// Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// LogLevelEnv is the environment variable the daemons honor when no
// -log-level flag is given.
const LogLevelEnv = "VP_LOG_LEVEL"

// ResolveLevel resolves the effective log level for a command: an
// explicit flag value wins, otherwise $VP_LOG_LEVEL applies, otherwise
// info. Unknown values — from either source — are an error naming the
// valid levels.
func ResolveLevel(flagValue string) (Level, error) {
	if flagValue != "" {
		return ParseLevel(flagValue)
	}
	if env := os.Getenv(LogLevelEnv); env != "" {
		lv, err := ParseLevel(env)
		if err != nil {
			return lv, fmt.Errorf("%s: %w", LogLevelEnv, err)
		}
		return lv, nil
	}
	return LevelInfo, nil
}

// Logger is a minimal leveled structured logger: one logfmt-style line
// per call — RFC 3339 timestamp, level, message, then key=value pairs.
// It exists so the daemons share one output shape without pulling in a
// logging dependency; it is not a hot-path component. A nil *Logger
// drops everything, so optional logging needs no guards at call sites.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	min atomic.Int32
}

// NewLogger writes lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{w: w}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Enabled reports whether lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && int32(lv) >= l.min.Load()
}

// Debug, Info, Warn and Error emit one line with alternating key, value
// pairs appended as key=value.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv...) }
func (l *Logger) Info(msg string, kv ...any)  { l.log(LevelInfo, msg, kv...) }
func (l *Logger) Warn(msg string, kv ...any)  { l.log(LevelWarn, msg, kv...) }
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv...) }

func (l *Logger) log(lv Level, msg string, kv ...any) {
	if !l.Enabled(lv) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buf[:0]
	b = time.Now().UTC().AppendFormat(b, time.RFC3339)
	b = append(b, ' ')
	b = append(b, lv.String()...)
	b = append(b, ' ')
	b = appendValue(b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b = append(b, ' ')
		b = append(b, fmt.Sprint(kv[i])...)
		b = append(b, '=')
		b = appendValue(b, fmt.Sprint(kv[i+1]))
	}
	b = append(b, '\n')
	l.buf = b
	l.w.Write(b)
}

// appendValue quotes values that would break the one-token-per-field
// shape (spaces, quotes, equals signs).
func appendValue(b []byte, s string) []byte {
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.AppendQuote(b, s)
	}
	return append(b, s...)
}
