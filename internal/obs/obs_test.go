package obs

import (
	"bytes"
	"io"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "help", "k", "v")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("t_total", "help", "k", "v"); again != c {
		t.Fatal("re-registering the same (name, labels) must return the same counter")
	}
	g := r.Gauge("t_gauge", "help")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Load(); got != 5 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Fatalf("SetMax = %d, want 9", got)
	}
	f := r.FloatGauge("t_fgauge", "help")
	f.Set(0.25)
	if got := f.Load(); got != 0.25 {
		t.Fatalf("float gauge = %v, want 0.25", got)
	}
}

// sampleLine matches one Prometheus exposition sample.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*")*\})? [-+]?([0-9.eE+-]+|Inf|NaN)$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("vp_test_total", "a counter", "shard", "0").Add(3)
	r.Counter("vp_test_total", "a counter", "shard", "1").Add(4)
	r.Gauge("vp_test_depth", "a gauge").Set(-2)
	r.FloatGauge("vp_test_rate", "a rate", "pred", "fcm3").Set(0.5)
	r.GaugeFunc("vp_test_uptime", "derived", func() float64 { return 1.5 })
	h := r.Histogram("vp_test_ns", "a histogram")
	h.Observe(1)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE vp_test_total counter",
		`vp_test_total{shard="0"} 3`,
		`vp_test_total{shard="1"} 4`,
		"# TYPE vp_test_depth gauge",
		"vp_test_depth -2",
		`vp_test_rate{pred="fcm3"} 0.5`,
		"vp_test_uptime 1.5",
		"# TYPE vp_test_ns histogram",
		`vp_test_ns_bucket{le="+Inf"} 2`,
		"vp_test_ns_sum 6",
		"vp_test_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("unparseable sample line %q", line)
		}
	}
}

// TestMergedHistogramCells: several Histograms registered under one
// (name, labels) must expose a single merged series.
func TestMergedHistogramCells(t *testing.T) {
	r := NewRegistry()
	h0 := r.Histogram("vp_merge_ns", "merged")
	h1 := r.Histogram("vp_merge_ns", "merged")
	h0.Observe(2)
	h1.Observe(100)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "vp_merge_ns_count 2") {
		t.Fatalf("merged count missing:\n%s", out)
	}
	if !strings.Contains(out, "vp_merge_ns_sum 102") {
		t.Fatalf("merged sum missing:\n%s", out)
	}
	if c := strings.Count(out, "# TYPE vp_merge_ns histogram"); c != 1 {
		t.Fatalf("got %d TYPE lines, want 1", c)
	}
}

// TestConcurrentIncrementScrape hammers every primitive from many
// goroutines while scraping concurrently; run under -race in CI. The
// final totals must be exact.
func TestConcurrentIncrementScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vp_race_total", "counter")
	g := r.Gauge("vp_race_depth", "gauge")
	f := r.FloatGauge("vp_race_rate", "rate")
	h := r.Histogram("vp_race_ns", "hist")
	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ { // concurrent scrapers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Set(int64(i))
				g.SetMax(int64(i))
				f.Set(float64(i))
				h.Observe(uint64(i))
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := c.Load(); got != workers*perW {
		t.Fatalf("counter = %d, want %d", got, workers*perW)
	}
	if s := h.Snapshot(); s.Count != workers*perW || s.Max != perW-1 {
		t.Fatalf("hist count=%d max=%d, want %d / %d", s.Count, s.Max, workers*perW, perW-1)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 6; i++ {
		r.Add(StageEvent{Kind: "k", Shard: i, TimeUnixNano: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := i + 3; ev.Shard != want {
			t.Fatalf("event %d is shard %d, want %d (oldest-first)", i, ev.Shard, want)
		}
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d, want 6", r.Total())
	}
	var nilRing *Ring
	nilRing.Add(StageEvent{Kind: "dropped"}) // must not panic
	if nilRing.Events() != nil || nilRing.Total() != 0 {
		t.Fatal("nil ring must be inert")
	}
}

func TestRingStampsTime(t *testing.T) {
	r := NewRing(2)
	r.Add(StageEvent{Kind: "k"})
	if evs := r.Events(); evs[0].TimeUnixNano == 0 {
		t.Fatal("Add must stamp TimeUnixNano when unset")
	}
}

func TestLoggerLevelsAndFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debug("hidden")
	l.Info("checkpoint written", "id", "abc", "bytes", 123)
	l.Warn("odd message", "spaced key", "a value with spaces")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatal("debug line leaked past an info-level logger")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], " INFO ") || !strings.Contains(lines[0], "id=abc") || !strings.Contains(lines[0], "bytes=123") {
		t.Fatalf("bad info line %q", lines[0])
	}
	if !strings.Contains(lines[1], `"a value with spaces"`) {
		t.Fatalf("spaced value not quoted in %q", lines[1])
	}
	l.SetLevel(LevelError)
	if l.Enabled(LevelWarn) {
		t.Fatal("warn enabled at error level")
	}
	var nilLogger *Logger
	nilLogger.Info("dropped") // must not panic
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("ParseLevel must reject unknown levels")
	}
}
