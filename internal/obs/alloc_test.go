package obs

import "testing"

// TestObsHotPathZeroAlloc pins the package's core contract: every
// write-side operation the serving batch loop performs — counter adds,
// gauge stores, high-water updates, EWMA gauge stores, histogram
// observes — allocates nothing. Matches the alloc gates in internal/core
// and internal/serve, so instrumentation can never regress the 0
// allocs/op hot path.
func TestObsHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	r := NewRegistry()
	c := r.Counter("vp_alloc_total", "c", "shard", "0")
	g := r.Gauge("vp_alloc_depth", "g", "shard", "0")
	f := r.FloatGauge("vp_alloc_rate", "f", "shard", "0")
	h := r.Histogram("vp_alloc_ns", "h")
	i := uint64(0)
	allocs := testing.AllocsPerRun(500, func() {
		c.Add(3)
		c.Inc()
		g.Set(int64(i % 128))
		g.SetMax(int64(i % 128))
		f.Set(float64(i) * 0.5)
		h.Observe(i * 7)
		h.ObserveInt(int64(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("obs hot path allocates %.1f allocs per op, want 0", allocs)
	}
}

// TestHistSnapZeroAllocAccumulate covers the scrape-side primitive the
// server's latency summary uses in a loop: accumulating histograms into
// a caller-owned snapshot allocates nothing either.
func TestHistSnapZeroAllocAccumulate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	h := NewHistogram()
	for v := uint64(0); v < 100; v++ {
		h.Observe(v)
	}
	var s HistSnap
	allocs := testing.AllocsPerRun(200, func() {
		s = HistSnap{}
		h.AddTo(&s)
	})
	if allocs != 0 {
		t.Fatalf("HistSnap accumulate allocates %.1f allocs per op, want 0", allocs)
	}
}
