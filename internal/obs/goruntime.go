package obs

import (
	"math"
	"runtime/metrics"
)

// Names of the runtime/metrics samples the bridge reads, in the fixed
// order of goSamples.
const (
	goMetricGoroutines = "/sched/goroutines:goroutines"
	goMetricHeapBytes  = "/memory/classes/heap/objects:bytes"
	goMetricGCCycles   = "/gc/cycles/total:gc-cycles"
	goMetricGCPause    = "/gc/pauses:seconds"
	goMetricSchedLat   = "/sched/latencies:seconds"
)

// RegisterGoRuntime bridges the Go runtime's own telemetry into r as
// vp_go_* families, refreshed lazily by an OnScrape hook so an idle
// process pays nothing between scrapes:
//
//	vp_go_goroutines         gauge      live goroutines
//	vp_go_heap_bytes         gauge      bytes of live heap objects
//	vp_go_gc_cycles_total    counter    completed GC cycles
//	vp_go_gc_pause_ns        histogram  stop-the-world pause durations
//	vp_go_sched_latency_ns   histogram  goroutine runnable-to-running latency
//
// The two histograms mirror the runtime's cumulative distributions:
// each scrape clears and refills them from the runtime's buckets (one
// bulk ObserveN per bucket at its midpoint), so quantiles are over the
// process lifetime, bucketized twice (runtime buckets, then log2).
func RegisterGoRuntime(r *Registry) {
	goroutines := r.Gauge("vp_go_goroutines", "live goroutines")
	heapBytes := r.Gauge("vp_go_heap_bytes", "bytes of live heap objects")
	gcCycles := r.Counter("vp_go_gc_cycles_total", "completed GC cycles since process start")
	gcPause := r.Histogram("vp_go_gc_pause_ns", "ns per GC stop-the-world pause, process lifetime")
	schedLat := r.Histogram("vp_go_sched_latency_ns", "ns a runnable goroutine waited to run, process lifetime")

	samples := []metrics.Sample{
		{Name: goMetricGoroutines},
		{Name: goMetricHeapBytes},
		{Name: goMetricGCCycles},
		{Name: goMetricGCPause},
		{Name: goMetricSchedLat},
	}
	r.OnScrape(func() {
		metrics.Read(samples)
		for _, s := range samples {
			switch s.Name {
			case goMetricGoroutines:
				if s.Value.Kind() == metrics.KindUint64 {
					goroutines.Set(int64(s.Value.Uint64()))
				}
			case goMetricHeapBytes:
				if s.Value.Kind() == metrics.KindUint64 {
					heapBytes.Set(int64(s.Value.Uint64()))
				}
			case goMetricGCCycles:
				if s.Value.Kind() == metrics.KindUint64 {
					// Counter cells only add; store the delta since the
					// last scrape to track the runtime's cumulative count.
					if v := s.Value.Uint64(); v > gcCycles.Load() {
						gcCycles.Add(v - gcCycles.Load())
					}
				}
			case goMetricGCPause:
				if s.Value.Kind() == metrics.KindFloat64Histogram {
					refillFromRuntime(gcPause, s.Value.Float64Histogram())
				}
			case goMetricSchedLat:
				if s.Value.Kind() == metrics.KindFloat64Histogram {
					refillFromRuntime(schedLat, s.Value.Float64Histogram())
				}
			}
		}
	})
}

// refillFromRuntime rebuilds h from a runtime/metrics cumulative
// histogram: clear, then one bulk observation per non-empty runtime
// bucket at the bucket's midpoint converted from seconds to ns.
// Only the scrape hook writes h, so the reset/refill is single-writer.
func refillFromRuntime(h *Histogram, rh *metrics.Float64Histogram) {
	if rh == nil {
		return
	}
	h.Reset()
	for i, n := range rh.Counts {
		if n == 0 {
			continue
		}
		lo, hi := rh.Buckets[i], rh.Buckets[i+1]
		mid := (lo + hi) / 2
		// The edge buckets are unbounded; fall back to the finite side.
		if math.IsInf(lo, -1) {
			mid = hi
		}
		if math.IsInf(hi, 1) {
			mid = lo
		}
		if mid < 0 || math.IsNaN(mid) || math.IsInf(mid, 0) {
			mid = 0
		}
		h.ObserveN(uint64(mid*1e9), n)
	}
}
