package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, then one
// sample line per series. Histogram cells sharing a (name, labels) pair
// are merged here, on the read side; bucket lines are cumulative with
// power-of-two `le` bounds and trailing empty octaves elided (the +Inf
// bucket always present).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<14)
	r.mu.Lock()
	hooks := append(make([]func(), 0, len(r.hooks)), r.hooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ.String())
		bw.WriteByte('\n')
		for _, c := range f.cells {
			switch {
			case c.ctr != nil:
				writeSample(bw, f.name, "", c.labels, strconv.FormatUint(c.ctr.Load(), 10))
			case c.gauge != nil:
				writeSample(bw, f.name, "", c.labels, strconv.FormatInt(c.gauge.Load(), 10))
			case c.fgauge != nil:
				writeSample(bw, f.name, "", c.labels, formatFloat(c.fgauge.Load()))
			case c.fn != nil:
				writeSample(bw, f.name, "", c.labels, formatFloat(c.fn()))
			case len(c.hists) > 0:
				var s HistSnap
				for _, h := range c.hists {
					h.AddTo(&s)
				}
				writeHistogram(bw, f.name, c.labels, &s)
			}
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, name, labels string, s *HistSnap) {
	last := 0
	for i := range s.Buckets {
		if s.Buckets[i] != 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += s.Buckets[i]
		writeSample(bw, name, "_bucket", withLE(labels, strconv.FormatUint(BucketUpper(i), 10)),
			strconv.FormatUint(cum, 10))
	}
	writeSample(bw, name, "_bucket", withLE(labels, "+Inf"), strconv.FormatUint(s.Count, 10))
	writeSample(bw, name, "_sum", labels, strconv.FormatUint(s.Sum, 10))
	writeSample(bw, name, "_count", labels, strconv.FormatUint(s.Count, 10))
}

// withLE splices the `le` label into an already-rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func writeSample(bw *bufio.Writer, name, suffix, labels, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
