package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every Histogram: bucket 0
// holds observations of exactly 0 and bucket i (i ≥ 1) holds values in
// [2^(i-1), 2^i). 40 octaves cover 1 ns .. ~9 minutes for latencies and
// 1 B .. ~512 GiB for sizes, so one fixed layout serves every unit the
// system observes and any two histograms merge bucket-by-bucket.
const NumBuckets = 40

// Histogram is a fixed-bucket log2-scale histogram. Observe is a few
// uncontended atomic adds and never allocates; snapshots and merging
// happen on the read side. A Histogram is typically single-writer (one
// per shard) but is safe for concurrent writers too.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram (usable standalone; use
// Registry.Histogram to expose one).
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a value to its bucket index: bits.Len64 puts 0 in
// bucket 0 and v in bucket ⌊log2 v⌋+1, clamped into the last bucket.
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur {
			return
		}
		if h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Reset zeroes the histogram. It is meant for scrape-rebuilt
// distributions (cleared and refilled inside an OnScrape hook by the
// cell's single writer); resetting while writers are observing loses the
// in-flight observations but stays internally consistent per field.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// ObserveN records n observations of value v in one call — the bulk
// primitive for mirroring an external histogram (e.g. runtime/metrics
// buckets) into this one without n separate Observe calls.
func (h *Histogram) ObserveN(v, n uint64) {
	if n == 0 {
		return
	}
	h.buckets[bucketOf(v)].Add(n)
	h.sum.Add(v * n)
	h.count.Add(n)
	for {
		cur := h.max.Load()
		if v <= cur {
			return
		}
		if h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveInt records a non-negative int (negative values clamp to 0).
func (h *Histogram) ObserveInt(v int64) {
	if v < 0 {
		v = 0
	}
	h.Observe(uint64(v))
}

// Snapshot returns a consistent-enough copy for reporting: each field is
// loaded atomically, but fields are not cut at a single instant (an
// in-flight Observe may appear in count but not yet in its bucket; the
// skew is at most the writers in flight during the read).
func (h *Histogram) Snapshot() HistSnap {
	var s HistSnap
	h.AddTo(&s)
	return s
}

// AddTo accumulates this histogram into an existing snapshot — the merge
// primitive per-shard histograms use at scrape time.
func (h *Histogram) AddTo(s *HistSnap) {
	s.Count += h.count.Load()
	s.Sum += h.sum.Load()
	if m := h.max.Load(); m > s.Max {
		s.Max = m
	}
	for i := range h.buckets {
		s.Buckets[i] += h.buckets[i].Load()
	}
}

// HistSnap is a point-in-time histogram state, mergeable by addition.
type HistSnap struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [NumBuckets]uint64
}

// Merge adds other into s.
func (s *HistSnap) Merge(other *HistSnap) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// Mean returns the average observed value (0 when empty).
func (s HistSnap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketBounds returns bucket i's value range [lo, hi] inclusive.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	hi = lo<<1 - 1
	return lo, hi
}

// BucketUpper returns bucket i's inclusive upper bound (the Prometheus
// `le` boundary).
func BucketUpper(i int) uint64 {
	_, hi := bucketBounds(i)
	return hi
}

// Quantile returns the approximate p-quantile (0 < p ≤ 1) by linear
// interpolation inside the containing log2 bucket, clamped to the exact
// observed maximum. Returns 0 when the histogram is empty.
func (s HistSnap) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i := 0; i < NumBuckets; i++ {
		n := float64(s.Buckets[i])
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := bucketBounds(i)
			v := float64(lo) + (float64(hi)-float64(lo))*(target-cum)/n
			if fm := float64(s.Max); v > fm {
				v = fm
			}
			return v
		}
		cum += n
	}
	return float64(s.Max)
}

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
