// Package obs is the repo's dependency-free observability core: metric
// primitives whose hot-path operations never allocate, a registry that
// renders Prometheus text exposition on demand, a fixed-capacity
// stage-event ring for control-plane tracing, and a small leveled
// structured logger.
//
// The design splits cost between two sides. The *write* side — Counter.Add,
// Gauge.Set, Histogram.Observe — is a handful of uncontended atomic
// operations with zero allocation, cheap enough to sit inside the serving
// tier's batch loop (the same loop the core alloc gates pin at 0
// allocs/op). Per-shard metrics are registered as separate cells, one per
// shard goroutine, so the single writer of each cell performs plain
// (uncontended) stores on its own cache line and cross-shard aggregation
// happens only on the *read* side: scrapes snapshot every cell and merge
// histograms at that moment, paying the formatting and aggregation cost
// on the (rare) /metrics request instead of the (hot) event path.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; registry-created counters are shared by pointer.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (depth, occupancy, timestamp).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (e.g. +1/-1 around a connection's life).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark safe to update from any number of writers.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the gauge's current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 (rates, EWMAs), stored as raw
// bits so Set/Load stay single atomic operations.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the gauge's current value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Load returns the gauge's current value.
func (g *FloatGauge) Load() float64 { return floatFromBits(g.bits.Load()) }

// metricType tags a registry family for exposition.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// cell is one labeled series within a family. Exactly one of the metric
// pointers is set (histogram cells may hold several Histograms with
// identical labels — per-shard instances merged at scrape time).
type cell struct {
	labels string // rendered label set: `{k="v",...}` or ""
	ctr    *Counter
	gauge  *Gauge
	fgauge *FloatGauge
	fn     func() float64
	hists  []*Histogram
}

// family is all cells sharing one metric name.
type family struct {
	name  string
	help  string
	typ   metricType
	cells []*cell
}

func (f *family) cellFor(labels string) *cell {
	for _, c := range f.cells {
		if c.labels == labels {
			return c
		}
	}
	c := &cell{labels: labels}
	f.cells = append(f.cells, c)
	return c
}

// Registry holds named metric families and renders them as Prometheus
// text exposition. Registration takes a lock; the returned metric
// pointers are lock-free to update. Registering the same (name, labels)
// twice returns the same metric, so independent components can share a
// series, and registering several Histograms under one (name, labels)
// accumulates cells that merge into a single exposed series at scrape.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	hooks []func()
}

// OnScrape registers fn to run at the start of every WritePrometheus
// call, before families are snapshotted. Hooks refresh scrape-derived
// series (distributions rebuilt from live state, aggregated gauges) so
// their cost lands on the rare /metrics request, not the event path. fn
// may register metrics and update cells; it must not call WritePrometheus.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry used by components without an
// obvious owner (e.g. the engine fan-out's instrumentation).
var Default = NewRegistry()

func (r *Registry) familyFor(name, help string, typ metricType) *family {
	for _, f := range r.fams {
		if f.name == name {
			if f.typ != typ {
				panic(fmt.Sprintf("obs: metric %q registered as %v and %v", name, f.typ, typ))
			}
			return f
		}
	}
	f := &family{name: name, help: help, typ: typ}
	r.fams = append(r.fams, f)
	return f
}

// renderLabels turns alternating key, value strings into a canonical
// `{k="v",...}` label set (keys sorted so the same set always renders
// identically regardless of registration order).
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value count")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\"", `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter registers (or finds) a counter series. labels are alternating
// key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.familyFor(name, help, typeCounter).cellFor(renderLabels(labels))
	if c.ctr == nil {
		c.ctr = &Counter{}
	}
	return c.ctr
}

// Gauge registers (or finds) an int64 gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.familyFor(name, help, typeGauge).cellFor(renderLabels(labels))
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// FloatGauge registers (or finds) a float64 gauge series.
func (r *Registry) FloatGauge(name, help string, labels ...string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.familyFor(name, help, typeGauge).cellFor(renderLabels(labels))
	if c.fgauge == nil {
		c.fgauge = &FloatGauge{}
	}
	return c.fgauge
}

// GaugeFunc registers a gauge series computed by fn at scrape time
// (uptime, derived ratios). fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.familyFor(name, help, typeGauge).cellFor(renderLabels(labels))
	c.fn = fn
}

// Histogram registers a histogram cell. Several cells registered under
// the same (name, labels) — e.g. one per shard — stay independent
// single-writer structures on the hot path and are merged into one
// exposed series at scrape time.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.familyFor(name, help, typeHistogram).cellFor(renderLabels(labels))
	h := NewHistogram()
	c.hists = append(c.hists, h)
	return h
}
