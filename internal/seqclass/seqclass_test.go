package seqclass

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestGenerators(t *testing.T) {
	if got := Take(ConstantGen(5), 4); got[0] != 5 || got[3] != 5 {
		t.Fatalf("constant: %v", got)
	}
	s := Take(StrideGen(1, 1), 5)
	for i, v := range s {
		if v != uint64(i+1) {
			t.Fatalf("stride: %v", s)
		}
	}
	r := Take(RepeatedGen([]uint64{1, 2, 3}), 7)
	want := []uint64{1, 2, 3, 1, 2, 3, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("repeated: %v", r)
		}
	}
}

func TestNonStrideGenHasNoConstantDelta(t *testing.T) {
	vals := Take(NonStrideGen(42), 100)
	d := vals[1] - vals[0]
	same := true
	for i := 2; i < len(vals); i++ {
		if vals[i]-vals[i-1] != d {
			same = false
			break
		}
	}
	if same {
		t.Fatal("non-stride generator produced a stride")
	}
}

func TestComposeGen(t *testing.T) {
	// Inner stride 1..3 followed by a marker, repeated: like a nested loop.
	g := ComposeGen(
		[]Gen{StrideGen(1, 1), ConstantGen(99)},
		[]int{3, 1},
	)
	got := Take(g, 9)
	want := []uint64{1, 2, 3, 99, 1, 2, 3, 99, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("compose: got %v, want %v", got, want)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		vals []uint64
		want Kind
	}{
		{"constant", Take(ConstantGen(5), 20), Constant},
		{"stride1", Take(StrideGen(1, 1), 20), Stride},
		{"strideNeg", Take(StrideGen(100, ^uint64(2)), 20), Stride}, // delta -3
		{"nonstride", Take(NonStrideGen(7), 50), NonStride},
		{"rs", Take(RepeatedGen(StridePeriod(1, 1, 3)), 30), RepeatedStride},
		{"rns", Take(RepeatedGen([]uint64{1, ^uint64(12), ^uint64(98), 7}), 40), RepeatedNonStride},
		{"tooShort", []uint64{1, 2}, Unclassified},
	}
	for _, c := range cases {
		if got := Classify(c.vals, 16); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyRepeatedConstantPeriodIsRS(t *testing.T) {
	// A period that is itself constant should not arise (it collapses to
	// Constant), but a period like (5,5,9) repeats and is non-stride.
	vals := Take(RepeatedGen([]uint64{5, 5, 9}), 30)
	if got := Classify(vals, 16); got != RepeatedNonStride {
		t.Fatalf("got %v, want RNS", got)
	}
}

func TestKindString(t *testing.T) {
	if Constant.String() != "C" || RepeatedNonStride.String() != "RNS" {
		t.Fatal("kind names wrong")
	}
}

// TestTable1 reproduces the paper's Table 1 with the actual predictors:
// learning time and learning degree per predictor per sequence class.
func TestTable1(t *testing.T) {
	const period = 4
	const order = 3
	n := 200

	t.Run("LastValue/C", func(t *testing.T) {
		prof := Measure(core.NewLastValue(), ConstantGen(5), n)
		if prof.LT != 2 || prof.LD != 100 {
			// One value observed before first correct prediction: the
			// prediction for value #2 is correct, LT(paper)=1 observation.
			t.Fatalf("LT=%d LD=%.1f, want first-correct at 2, LD=100", prof.LT, prof.LD)
		}
	})
	t.Run("LastValue/S", func(t *testing.T) {
		prof := Measure(core.NewLastValue(), StrideGen(1, 1), n)
		if prof.Correct != 0 {
			t.Fatalf("last value predicted a stride: %+v", prof)
		}
	})
	t.Run("Stride/S", func(t *testing.T) {
		prof := Measure(core.NewStride2Delta(), StrideGen(1, 1), n)
		if prof.LT == 0 || prof.LT > 4 || prof.LD != 100 {
			t.Fatalf("LT=%d LD=%.1f, want small LT and LD=100", prof.LT, prof.LD)
		}
	})
	t.Run("Stride/RS", func(t *testing.T) {
		prof := Measure(core.NewStride2Delta(), RepeatedGen(StridePeriod(1, 1, period)), n)
		// Table 1: LD = (p-1)/p = 75%.
		if prof.LD < 70 || prof.LD > 80 {
			t.Fatalf("LD=%.1f, want ~75", prof.LD)
		}
	})
	t.Run("FCM/C", func(t *testing.T) {
		prof := Measure(core.NewFCMNoBlend(order), ConstantGen(5), n)
		// Table 1: LT = o. First correct prediction comes once the order-o
		// context has been seen and updated: position order+2.
		if prof.LT != order+2 || prof.LD != 100 {
			t.Fatalf("LT=%d LD=%.1f, want LT=%d LD=100", prof.LT, prof.LD, order+2)
		}
	})
	t.Run("FCM/RS", func(t *testing.T) {
		prof := Measure(core.NewFCMNoBlend(order), RepeatedGen(StridePeriod(1, 1, period)), n)
		// Table 1: LT = p + o, then LD = 100%.
		if prof.LT != period+order+1 || prof.LD != 100 {
			t.Fatalf("LT=%d LD=%.1f, want LT=%d LD=100", prof.LT, prof.LD, period+order+1)
		}
	})
	t.Run("FCM/RNS", func(t *testing.T) {
		rns := NonStridePeriod(3, period)
		prof := Measure(core.NewFCMNoBlend(order), RepeatedGen(rns), n)
		if prof.LD != 100 {
			t.Fatalf("LD=%.1f, want 100", prof.LD)
		}
	})
	t.Run("Stride/RNS-unsuitable", func(t *testing.T) {
		rns := NonStridePeriod(3, period)
		prof := Measure(core.NewStride2Delta(), RepeatedGen(rns), n)
		if prof.LD > 30 {
			t.Fatalf("stride LD=%.1f on RNS, expected low", prof.LD)
		}
	})
	t.Run("FCM/NS-unsuitable", func(t *testing.T) {
		prof := Measure(core.NewFCMNoBlend(order), NonStrideGen(11), n)
		if prof.Correct != 0 {
			t.Fatalf("FCM correct on NS: %+v", prof)
		}
	})
}

func TestMeasureNeverCorrect(t *testing.T) {
	prof := Measure(core.NewLastValue(), StrideGen(0, 1), 50)
	if prof.LT != 0 || prof.LD != 0 || prof.Correct != 0 || prof.Total != 50 {
		t.Fatalf("unexpected profile %+v", prof)
	}
}

func TestPropertyClassifyGeneratedSequences(t *testing.T) {
	// Classification must recover the generating class for arbitrary
	// parameters (within the classifier's documented rules).
	f := func(v uint64, start uint64, rawDelta uint64, rawP uint8) bool {
		delta := rawDelta | 1 // non-zero
		p := int(rawP%6) + 2  // period 2..7
		if Classify(Take(ConstantGen(v), 24), 16) != Constant {
			return false
		}
		if Classify(Take(StrideGen(start, delta), 24), 16) != Stride {
			return false
		}
		period := StridePeriod(start, delta, p)
		got := Classify(Take(RepeatedGen(period), p*6), 16)
		return got == RepeatedStride
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyComposePeriodicity(t *testing.T) {
	f := func(a, b uint64, rawN uint8) bool {
		n := int(rawN%5) + 1
		g := ComposeGen([]Gen{ConstantGen(a), ConstantGen(b)}, []int{n, n})
		// The composition must have period 2n.
		for i := 0; i < 4*n; i++ {
			if g(i) != g(i+2*n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
