// Package seqclass implements the value-sequence taxonomy of Section 1.1
// of the paper: constant (C), stride (S), non-stride (NS), repeated stride
// (RS) and repeated non-stride (RNS) sequences, plus generators, a
// classifier and the learning-time / learning-degree measurements used in
// Table 1 and Figure 2.
package seqclass

import "fmt"

// Kind labels a value sequence with the paper's classification.
type Kind uint8

// Sequence kinds in the order the paper introduces them.
const (
	Constant  Kind = iota // 5 5 5 5 ...
	Stride                // 1 2 3 4 ... (constant non-zero delta)
	NonStride             // no constant delta, no short repetition
	RepeatedStride
	RepeatedNonStride
	Unclassified // too short or mixed behaviour
)

var kindNames = [...]string{
	Constant:          "C",
	Stride:            "S",
	NonStride:         "NS",
	RepeatedStride:    "RS",
	RepeatedNonStride: "RNS",
	Unclassified:      "?",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Gen produces the n-th element of a sequence (0-based). All the paper's
// sequence classes are expressible as Gens.
type Gen func(n int) uint64

// Take materializes the first n values of a generator.
func Take(g Gen, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = g(i)
	}
	return out
}

// ConstantGen yields v forever: the paper's C class.
func ConstantGen(v uint64) Gen {
	return func(int) uint64 { return v }
}

// StrideGen yields start, start+delta, start+2*delta, ...: the S class.
// delta may be "negative" via two's-complement wrap-around.
func StrideGen(start, delta uint64) Gen {
	return func(n int) uint64 { return start + uint64(n)*delta }
}

// RepeatedGen cycles through period forever: with a stride period this is
// the RS class, with arbitrary values the RNS class.
func RepeatedGen(period []uint64) Gen {
	p := make([]uint64, len(period))
	copy(p, period)
	return func(n int) uint64 { return p[n%len(p)] }
}

// StridePeriod builds the period [start, start+delta, ...] of length p,
// the building block of the paper's RS examples (e.g. 1 2 3 repeated).
func StridePeriod(start, delta uint64, p int) []uint64 {
	out := make([]uint64, p)
	for i := range out {
		out[i] = start + uint64(i)*delta
	}
	return out
}

// NonStrideGen yields a deterministic pseudo-random sequence with no
// constant delta and (for practical lengths) no repetition: the NS class.
// The generator is a 64-bit LCG, seeded for reproducibility.
func NonStrideGen(seed uint64) Gen {
	return func(n int) uint64 {
		x := seed + uint64(n)*0x9E3779B97F4A7C15
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		return x
	}
}

// NonStridePeriod builds a period of p pseudo-random values for RNS
// sequences.
func NonStridePeriod(seed uint64, p int) []uint64 {
	return Take(NonStrideGen(seed), p)
}

// ComposeGen concatenates generators: the first n0 values come from g0,
// the next n1 from g1, and so on, then the composition repeats. This
// models the paper's "sequences formed by composing stride and non-stride
// sequences with themselves" (e.g. nested loops).
func ComposeGen(parts []Gen, lens []int) Gen {
	total := 0
	for _, l := range lens {
		total += l
	}
	return func(n int) uint64 {
		n %= total
		for i, l := range lens {
			if n < l {
				return parts[i](n)
			}
			n -= l
		}
		return 0 // unreachable
	}
}

// Classify inspects a finite sequence and assigns the paper's class.
// Rules, applied in order:
//
//   - all values equal                       -> Constant
//   - constant non-zero delta                -> Stride
//   - cycles with some period 2<=p<=maxP     -> RepeatedStride if one
//     period is itself a stride run, else RepeatedNonStride
//   - otherwise                              -> NonStride
//
// Sequences shorter than 3 values are Unclassified.
func Classify(values []uint64, maxPeriod int) Kind {
	if len(values) < 3 {
		return Unclassified
	}
	if isConstant(values) {
		return Constant
	}
	if isStride(values) {
		return Stride
	}
	if p := findPeriod(values, maxPeriod); p > 0 {
		if isStride(values[:p]) || isConstant(values[:p]) {
			return RepeatedStride
		}
		return RepeatedNonStride
	}
	return NonStride
}

func isConstant(values []uint64) bool {
	for _, v := range values[1:] {
		if v != values[0] {
			return false
		}
	}
	return true
}

func isStride(values []uint64) bool {
	if len(values) < 2 {
		return false
	}
	delta := values[1] - values[0]
	if delta == 0 {
		return false
	}
	for i := 2; i < len(values); i++ {
		if values[i]-values[i-1] != delta {
			return false
		}
	}
	return true
}

// findPeriod returns the smallest period 2<=p<=maxP such that the sequence
// cycles with period p and contains at least two full periods, or 0.
func findPeriod(values []uint64, maxP int) int {
	if maxP > len(values)/2 {
		maxP = len(values) / 2
	}
	for p := 2; p <= maxP; p++ {
		ok := true
		for i := p; i < len(values); i++ {
			if values[i] != values[i-p] {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	return 0
}

// predictor mirrors core.Predictor without importing it, keeping seqclass
// substrate-free in both directions; core types satisfy it directly.
type predictor interface {
	Predict(pc uint64) (uint64, bool)
	Update(pc uint64, value uint64)
}

// LearnProfile quantifies the two characteristics Section 2.3 defines:
// learning time (LT), the number of values observed before the first
// correct prediction, and learning degree (LD), the percentage of correct
// predictions after the first correct one.
type LearnProfile struct {
	// LT is the 1-based index of the first correct prediction; 0 means
	// the predictor was never correct on the sequence.
	LT int
	// LD is the percentage of correct predictions among the predictions
	// made after the first correct one (the paper's "learning degree").
	LD float64
	// Correct and Total tally the whole run for reference.
	Correct int
	Total   int
}

// Measure runs a predictor over the first n values of a sequence (all
// events at a single PC, the paper's per-static-instruction setting) and
// returns its learning profile.
func Measure(p predictor, g Gen, n int) LearnProfile {
	prof := LearnProfile{}
	afterCorrect, afterTotal := 0, 0
	for i := 0; i < n; i++ {
		v := g(i)
		pred, ok := p.Predict(0)
		correct := ok && pred == v
		prof.Total++
		if correct {
			prof.Correct++
		}
		if prof.LT == 0 {
			if correct {
				prof.LT = i + 1
			}
		} else {
			afterTotal++
			if correct {
				afterCorrect++
			}
		}
		p.Update(0, v)
	}
	if afterTotal > 0 {
		prof.LD = 100 * float64(afterCorrect) / float64(afterTotal)
	} else if prof.LT > 0 {
		prof.LD = 100 // correct exactly once, at the very end
	}
	return prof
}
