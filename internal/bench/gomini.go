package bench

import "fmt"

// Go returns the 099.go analog: a board-game engine playing against
// itself — Othello with alpha-beta search and a positional evaluation,
// matching SPEC go's character (branchy search over board state, pattern
// tables, no floating point).
func Go() *Workload {
	return &Workload{
		Name:        "go",
		Paper:       "099.go",
		Description: "Othello engine, alpha-beta depth-3 self-play",
		Source:      goSrc,
		Input:       goInput,
		SelfCheck:   "games 3 diff 58 nodes 67893 moves 11832272\n",
	}
}

// goInput encodes the number of self-play games.
func goInput(scale int) []byte {
	return []byte(fmt.Sprintf("%d\n", 3*scale))
}

const goSrc = `
// Othello engine, 099.go analog. Board: 0 empty, 1 black, 2 white.

int board[64];
int dr[8] = {-1, -1, -1, 0, 0, 1, 1, 1};
int dc[8] = {-1, 0, 1, -1, 1, -1, 0, 1};

// positional weights: corners gold, X-squares poison
int weight[64] = {
	100, -20, 10, 5, 5, 10, -20, 100,
	-20, -40, 1, 1, 1, 1, -40, -20,
	10, 1, 3, 2, 2, 3, 1, 10,
	5, 1, 2, 1, 1, 2, 1, 5,
	5, 1, 2, 1, 1, 2, 1, 5,
	10, 1, 3, 2, 2, 3, 1, 10,
	-20, -40, 1, 1, 1, 1, -40, -20,
	100, -20, 10, 5, 5, 10, -20, 100
};

int nodes;
int movesum;

int opponent(int p) { return 3 - p; }

// flips in one direction from (r,c); returns count (0 = not bracketed)
int flips_dir(int r, int c, int d, int p) {
	int rr; int cc; int n; int opp;
	opp = opponent(p);
	rr = r + dr[d];
	cc = c + dc[d];
	n = 0;
	while (rr >= 0 && rr < 8 && cc >= 0 && cc < 8 && board[rr * 8 + cc] == opp) {
		n = n + 1;
		rr = rr + dr[d];
		cc = cc + dc[d];
	}
	if (n == 0) { return 0; }
	if (rr < 0 || rr >= 8 || cc < 0 || cc >= 8) { return 0; }
	if (board[rr * 8 + cc] != p) { return 0; }
	return n;
}

int legal(int pos, int p) {
	int d;
	if (board[pos]) { return 0; }
	for (d = 0; d < 8; d = d + 1) {
		if (flips_dir(pos / 8, pos % 8, d, p)) { return 1; }
	}
	return 0;
}

// apply move, recording flipped squares into undo buffer; returns count
int apply(int pos, int p, int *undo) {
	int d; int n; int k; int rr; int cc; int total;
	total = 0;
	board[pos] = p;
	for (d = 0; d < 8; d = d + 1) {
		n = flips_dir(pos / 8, pos % 8, d, p);
		rr = pos / 8;
		cc = pos % 8;
		for (k = 0; k < n; k = k + 1) {
			rr = rr + dr[d];
			cc = cc + dc[d];
			board[rr * 8 + cc] = p;
			undo[total] = rr * 8 + cc;
			total = total + 1;
		}
	}
	return total;
}

void unapply(int pos, int p, int *undo, int n) {
	int k; int opp;
	opp = opponent(p);
	board[pos] = 0;
	for (k = 0; k < n; k = k + 1) { board[undo[k]] = opp; }
}

int evaluate(int p) {
	int s; int i; int opp;
	opp = opponent(p);
	s = 0;
	for (i = 0; i < 64; i = i + 1) {
		if (board[i] == p) { s = s + weight[i]; }
		else { if (board[i] == opp) { s = s - weight[i]; } }
	}
	return s;
}

int alphabeta(int p, int depth, int alpha, int beta) {
	int pos; int best; int v; int moved;
	int undo[20];
	int n;
	nodes = nodes + 1;
	if (depth == 0) { return evaluate(p); }
	best = -1000000;
	moved = 0;
	for (pos = 0; pos < 64; pos = pos + 1) {
		if (legal(pos, p)) {
			moved = 1;
			n = apply(pos, p, undo);
			v = -alphabeta(opponent(p), depth - 1, -beta, -alpha);
			unapply(pos, p, undo, n);
			if (v > best) { best = v; }
			if (best > alpha) { alpha = best; }
			if (alpha >= beta) { return best; }
		}
	}
	if (!moved) { return evaluate(p); }
	return best;
}

// choose the best root move for p, or -1
int choose(int p, int noise) {
	int pos; int best; int bestpos; int v;
	int undo[20];
	int n;
	best = -1000000;
	bestpos = -1;
	for (pos = 0; pos < 64; pos = pos + 1) {
		if (legal(pos, p)) {
			n = apply(pos, p, undo);
			v = -alphabeta(opponent(p), 2, -1000000, 1000000);
			unapply(pos, p, undo, n);
			v = v * 4 + ((rand() >> 3) & noise);
			if (v > best) { best = v; bestpos = pos; }
		}
	}
	return bestpos;
}

// play one game; returns signed disc difference (black - white)
int game() {
	int i; int p; int passes; int mv; int diff;
	int undo[20];
	for (i = 0; i < 64; i = i + 1) { board[i] = 0; }
	board[27] = 2; board[28] = 1; board[35] = 1; board[36] = 2;
	p = 1;
	passes = 0;
	while (passes < 2) {
		mv = choose(p, 7);
		if (mv < 0) {
			passes = passes + 1;
		} else {
			passes = 0;
			apply(mv, p, undo);
			movesum = (movesum * 31 + mv) & 0xFFFFFF;
		}
		p = opponent(p);
	}
	diff = 0;
	for (i = 0; i < 64; i = i + 1) {
		if (board[i] == 1) { diff = diff + 1; }
		if (board[i] == 2) { diff = diff - 1; }
	}
	return diff;
}

int main() {
	int games; int c; int g; int total;
	games = 0;
	c = getc();
	while (c >= '0' && c <= '9') { games = games * 10 + (c - '0'); c = getc(); }
	if (games < 1) { games = 1; }

	srand(7);
	total = 0;
	for (g = 0; g < games; g = g + 1) { total = total + game(); }

	print_str("games ");
	print_int(games);
	print_str(" diff ");
	print_int(total);
	print_str(" nodes ");
	print_int(nodes);
	print_str(" moves ");
	print_int(movesum);
	putc(10);
	return 0;
}
`
