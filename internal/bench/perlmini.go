package bench

import "strings"

// Perl returns the 134.perl analog (scrabbl.pl input): an anagram/word
// scoring game over a hash table of dictionary words with malloc'd chain
// nodes. Value sequences: pointer chasing through heap chains, string
// loops, hash mixing — the irregular, allocation-heavy member of the
// suite.
func Perl() *Workload {
	return &Workload{
		Name:        "perl",
		Paper:       "134.perl",
		Description: "anagram/scrabble word game over a chained hash table",
		Source:      perlSrc,
		Input:       perlInput,
		SelfCheck:   "dict 1500 queries 9000 found 11752 score 147338\n",
	}
}

const perlSrc = `
// Anagram word game, 134.perl (scrabbl) analog.
//
// Input: dictionary words, one per line, then a line ".", then query
// words. For each query: canonicalize letters, look up all dictionary
// anagrams, score them with scrabble letter values.

struct ent {
	char word[24];
	char sig[24];
	int score;
	struct ent *next;
};

struct ent *buckets[1024];

int letterscore[26] = {
	1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3,
	1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10
};

int dictwords;
int queries;
int found;
int totalscore;

// read one word into buf; returns length, 0 at blank line, -1 at EOF
int readword(char *buf) {
	int c; int n;
	n = 0;
	c = getc();
	while (c == 10 || c == 13 || c == 32) { c = getc(); }
	if (c < 0) { return -1; }
	while (c > 32) {
		if (n < 23) { buf[n] = c; n = n + 1; }
		c = getc();
	}
	buf[n] = 0;
	return n;
}

// canonical signature: letters sorted (insertion sort)
void makesig(char *word, char *sig) {
	int i; int j; int n;
	char c;
	n = strlen(word);
	for (i = 0; i < n; i = i + 1) { sig[i] = word[i]; }
	sig[n] = 0;
	for (i = 1; i < n; i = i + 1) {
		c = sig[i];
		j = i - 1;
		while (j >= 0 && sig[j] > c) {
			sig[j + 1] = sig[j];
			j = j - 1;
		}
		sig[j + 1] = c;
	}
}

int hashsig(char *sig) {
	int h; int i;
	h = 5381;
	for (i = 0; sig[i]; i = i + 1) { h = (h * 33 + sig[i]) & 0xFFFFF; }
	return h & 1023;
}

int wordscore(char *w) {
	int s; int i; int c;
	s = 0;
	for (i = 0; w[i]; i = i + 1) {
		c = w[i] - 'a';
		if (c >= 0 && c < 26) { s = s + letterscore[c]; }
	}
	return s;
}

void insert(char *word) {
	struct ent *e;
	int h;
	e = malloc(sizeof(struct ent));
	strcpy(e->word, word);
	makesig(word, e->sig);
	e->score = wordscore(word);
	h = hashsig(e->sig);
	e->next = buckets[h];
	buckets[h] = e;
	dictwords = dictwords + 1;
}

int lookup(char *word) {
	struct ent *e;
	char sig[24];
	int h; int s;
	makesig(word, sig);
	h = hashsig(sig);
	s = 0;
	e = buckets[h];
	while (e) {
		if (strcmp(e->sig, sig) == 0) {
			s = s + e->score;
			found = found + 1;
		}
		e = e->next;
	}
	return s;
}

int main() {
	char buf[24];
	int n;

	// dictionary section, terminated by "."
	n = readword(buf);
	while (n > 0 && !(n == 1 && buf[0] == '.')) {
		insert(buf);
		n = readword(buf);
	}

	// query section
	n = readword(buf);
	while (n > 0) {
		totalscore = totalscore + lookup(buf);
		queries = queries + 1;
		n = readword(buf);
	}

	print_str("dict ");
	print_int(dictwords);
	print_str(" queries ");
	print_int(queries);
	print_str(" found ");
	print_int(found);
	print_str(" score ");
	print_int(totalscore);
	putc(10);
	return 0;
}
`

// perlInput builds a dictionary of pseudo-words and a query stream where
// roughly a third of the queries are permutations (anagram hits).
func perlInput(scale int) []byte {
	r := lcg(99)
	syll := []string{"ba", "re", "to", "ka", "li", "mo", "zu", "ne", "pi", "sa", "ta", "vo", "we", "xi", "yo", "da"}
	makeWord := func() string {
		n := 2 + r.intn(3)
		var w strings.Builder
		for i := 0; i < n; i++ {
			w.WriteString(syll[r.intn(len(syll))])
		}
		return w.String()
	}
	dict := make([]string, 0, 1500)
	seen := map[string]bool{}
	for len(dict) < 1500 {
		w := makeWord()
		if !seen[w] {
			seen[w] = true
			dict = append(dict, w)
		}
	}
	var b strings.Builder
	for _, w := range dict {
		b.WriteString(w)
		b.WriteByte('\n')
	}
	b.WriteString(".\n")
	nq := 9000 * scale
	for q := 0; q < nq; q++ {
		switch r.intn(3) {
		case 0: // exact dictionary word
			b.WriteString(dict[r.intn(len(dict))])
		case 1: // permutation of a dictionary word (anagram hit)
			w := []byte(dict[r.intn(len(dict))])
			for i := len(w) - 1; i > 0; i-- {
				j := r.intn(i + 1)
				w[i], w[j] = w[j], w[i]
			}
			b.Write(w)
		default: // likely miss
			b.WriteString(makeWord())
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}
