// Package bench provides the seven benchmark workloads used to regenerate
// the paper's experiments. Each workload is a MiniC program whose
// computational character mirrors one of the integer SPEC95 benchmarks the
// paper traces (Table 2), plus a deterministic input generator:
//
//	compress  LZW compression of generated text        (129.compress)
//	gcc       mini-compiler front end over C-like code (126.gcc)
//	go        Othello engine, alpha-beta self-play      (099.go)
//	ijpeg     block-transform image codec               (132.ijpeg)
//	m88ksim   toy-RISC interpreter running a program    (124.m88ksim)
//	perl      anagram/scrabble hash-table word game     (134.perl)
//	xlisp     lisp interpreter solving N-queens         (130.li)
//
// Workloads are compiled with internal/minic, assembled with internal/asm
// and executed on internal/sim; the value-event stream feeds the
// predictors. Every workload writes a small self-check digest to output so
// tests can verify the whole stack end to end.
package bench

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/sim"
)

// Workload is one benchmark program plus its input generator.
type Workload struct {
	// Name is the benchmark identifier used in reports ("compress"...).
	Name string
	// Paper is the SPEC95 benchmark this workload stands in for.
	Paper string
	// Description summarizes the computational character.
	Description string
	// Source is the MiniC program text.
	Source string
	// Input generates the deterministic input for a scale factor;
	// scale 1 is the default experiment size.
	Input func(scale int) []byte
	// SelfCheck, when non-empty, is the exact output the program must
	// produce at scale 1 (verified by tests; guards the whole stack).
	SelfCheck string
}

// Registry returns all workloads in the paper's reporting order.
func Registry() []*Workload {
	return []*Workload{
		Compress(), Gcc(), Go(), Ijpeg(), M88ksim(), Perl(), Xlisp(),
	}
}

// ByName returns the named workload or nil.
func ByName(name string) *Workload {
	for _, w := range Registry() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// Compile builds the workload at the given optimization level.
func (w *Workload) Compile(opt int) (*isa.Program, error) {
	asmText, err := minic.Compile(
		[]minic.Source{{Name: w.Name + ".mc", Text: w.Source}},
		minic.Options{Opt: opt},
	)
	if err != nil {
		return nil, fmt.Errorf("bench %s: compile: %w", w.Name, err)
	}
	prog, err := asm.Assemble(w.Name+".s", asmText)
	if err != nil {
		return nil, fmt.Errorf("bench %s: assemble: %w", w.Name, err)
	}
	return prog, nil
}

// RefOpt is the optimization level used for the paper's standard runs
// (the analog of the SPEC "ref flags" -O3 builds).
const RefOpt = 2

// RunConfig parameterizes a workload execution. The zero value means:
// -O0 build, scale-1 input, run to completion.
type RunConfig struct {
	Opt       int    // optimization level 0..3
	Scale     int    // input scale factor (default 1)
	MaxEvents uint64 // value-event budget (0 = run to completion)
	Input     []byte // override input (nil = generated at Scale)
	OnValue   func(sim.ValueEvent)
	// OnValues receives events in batches of up to BatchSize; see
	// sim.Config.OnValues for the slice-reuse contract.
	OnValues  func([]sim.ValueEvent)
	BatchSize int
}

// Run compiles and executes the workload. Budget exhaustion is a normal
// early stop, not an error.
func (w *Workload) Run(cfg RunConfig) (*sim.Result, error) {
	prog, err := w.Compile(cfg.Opt)
	if err != nil {
		return nil, err
	}
	input := cfg.Input
	if input == nil {
		scale := cfg.Scale
		if scale <= 0 {
			scale = 1
		}
		input = w.Input(scale)
	}
	res, err := sim.Run(prog, input, sim.Config{
		MaxInstr:  1 << 62,
		MaxEvents: cfg.MaxEvents,
		OnValue:   cfg.OnValue,
		OnValues:  cfg.OnValues,
		BatchSize: cfg.BatchSize,
	})
	if err != nil && !isBudget(err) {
		return res, fmt.Errorf("bench %s: %w", w.Name, err)
	}
	return res, nil
}

func isBudget(err error) bool {
	for e := err; e != nil; {
		if e == sim.ErrBudget {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// lcg is the deterministic generator used by all input builders.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 33)
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }
