package bench

import "fmt"

// Ijpeg returns the 132.ijpeg analog: a block-transform image codec.
// Each 8x8 block of a procedurally generated image goes through a 2-D
// Walsh-Hadamard transform (the integer-exact stand-in for the DCT, as in
// H.264), quantization with the JPEG luminance table, zigzag run-length
// coding, then dequantization and inverse transform with error
// accumulation. Value sequences: dense stride loops over block memory and
// table lookups — the compute-bound array workload of the suite.
func Ijpeg() *Workload {
	return &Workload{
		Name:        "ijpeg",
		Paper:       "132.ijpeg",
		Description: "block-transform image codec (WHT + quant + RLE + reconstruction)",
		Source:      ijpegSrc,
		Input:       ijpegInput,
		SelfCheck:   "blocks 700 bits 30608 zeros 40735 err 248241\n",
	}
}

// ijpegInput encodes the number of 8x8 blocks to process.
func ijpegInput(scale int) []byte {
	return []byte(fmt.Sprintf("%d\n", 700*scale))
}

const ijpegSrc = `
// Block-transform image codec, 132.ijpeg analog.

// JPEG luminance quantization table (quality ~50), zigzag order.
int quant[64] = {
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99
};

int zigzag[64] = {
	0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63
};

int block[64];
int orig[64];
int coef[64];

int bits;     // entropy estimate
int errsum;   // reconstruction error
int zeros;    // zero coefficients after quantization

// in-place 8-point Walsh-Hadamard butterflies at the given stride
void wht8(int *a, int stride) {
	int h; int i; int j; int x; int y;
	for (h = 1; h < 8; h = h * 2) {
		for (i = 0; i < 8; i = i + h * 2) {
			for (j = i; j < i + h; j = j + 1) {
				x = a[j * stride];
				y = a[(j + h) * stride];
				a[j * stride] = x + y;
				a[(j + h) * stride] = x - y;
			}
		}
	}
}

void forward(int *a) {
	int r;
	for (r = 0; r < 8; r = r + 1) { wht8(a + r * 8, 1); }
	for (r = 0; r < 8; r = r + 1) { wht8(a + r, 8); }
}

// magnitude bit length, the crude entropy model
int maglen(int v) {
	int n;
	if (v < 0) { v = -v; }
	n = 0;
	while (v) { v = v >> 1; n = n + 1; }
	return n;
}

void codec_block(int bx) {
	int i; int run; int v; int d;

	// generate source block: gradient + texture + noise
	for (i = 0; i < 64; i = i + 1) {
		int x; int y;
		x = i & 7;
		y = i >> 3;
		v = 128 + (x * 5 - y * 3) + ((bx * 7 + x * y) & 15) + (rand() & 7);
		orig[i] = v;
		block[i] = v - 128;
	}

	forward(block);

	// quantize in zigzag order, run-length coding zeros
	run = 0;
	for (i = 0; i < 64; i = i + 1) {
		v = block[zigzag[i]] / (quant[i] << 3);
		coef[zigzag[i]] = v;
		if (v == 0) {
			run = run + 1;
			zeros = zeros + 1;
		} else {
			bits = bits + 4 + maglen(run) + maglen(v);
			run = 0;
		}
	}
	if (run) { bits = bits + 4; }

	// dequantize + inverse transform (WHT is self-inverse up to 1/64)
	for (i = 0; i < 64; i = i + 1) { block[i] = coef[i] * (quant[zigzagindex(i)] << 3); }
	forward(block);
	for (i = 0; i < 64; i = i + 1) {
		v = block[i] / 64 + 128;
		d = v - orig[i];
		if (d < 0) { d = -d; }
		errsum = errsum + d;
	}
}

// zigzag position of a raster index (inverse table, computed on demand)
int zz_inv[64];
int zz_ready;

int zigzagindex(int raster) {
	int i;
	if (!zz_ready) {
		for (i = 0; i < 64; i = i + 1) { zz_inv[zigzag[i]] = i; }
		zz_ready = 1;
	}
	return zz_inv[raster];
}

int main() {
	int nblocks; int c; int b;
	nblocks = 0;
	c = getc();
	while (c >= '0' && c <= '9') { nblocks = nblocks * 10 + (c - '0'); c = getc(); }
	if (nblocks < 1) { nblocks = 1; }

	srand(2026);
	for (b = 0; b < nblocks; b = b + 1) { codec_block(b); }

	print_str("blocks ");
	print_int(nblocks);
	print_str(" bits ");
	print_int(bits);
	print_str(" zeros ");
	print_int(zeros);
	print_str(" err ");
	print_int(errsum);
	putc(10);
	return 0;
}
`
