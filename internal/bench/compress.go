package bench

import "strings"

// Compress returns the 129.compress analog: LZW compression with an
// open-addressed dictionary hash, the classic compress(1) inner loop.
// Value sequences: constant hash parameters, stride-ish code assignment,
// and data-dependent hash probes.
func Compress() *Workload {
	return &Workload{
		Name:        "compress",
		Paper:       "129.compress",
		Description: "LZW compression of generated text (hash-probe inner loop)",
		Source:      compressSrc,
		Input:       textInput,
		SelfCheck:   "codes 9045 sum 6853629 in 65536\n",
	}
}

const compressSrc = `
// LZW compression, 129.compress analog.
// Dictionary: open-addressed hash of (prefix code, next char) -> code.

int htab[8192];     // hashed fcode, -1 = empty
int codetab[8192];  // assigned code

int outcnt;
int cksum;

void output(int code) {
	outcnt = outcnt + 1;
	cksum = (cksum * 31 + code) & 0xFFFFFF;
}

int main() {
	int free_ent; int ent; int c; int i; int disp;
	int fcode; int n; int found;

	for (i = 0; i < 8192; i = i + 1) { htab[i] = -1; }
	free_ent = 257;
	n = 0;

	ent = getc();
	if (ent < 0) { return 1; }
	n = 1;
	c = getc();
	while (c >= 0) {
		n = n + 1;
		fcode = (c << 13) + ent;
		i = ((c << 5) ^ ent) & 8191;
		found = 0;
		if (htab[i] == fcode) {
			ent = codetab[i];
			found = 1;
		}
		if (!found && htab[i] >= 0) {
			// secondary probe chain
			disp = 8191 - i;
			if (i == 0) { disp = 1; }
			while (!found && htab[i] >= 0) {
				i = i - disp;
				if (i < 0) { i = i + 8192; }
				if (htab[i] == fcode) {
					ent = codetab[i];
					found = 1;
				}
			}
		}
		if (!found) {
			output(ent);
			ent = c;
			if (free_ent < 4096) {
				codetab[i] = free_ent;
				htab[i] = fcode;
				free_ent = free_ent + 1;
			} else {
				// dictionary full: clear, like compress block mode
				for (i = 0; i < 8192; i = i + 1) { htab[i] = -1; }
				free_ent = 257;
			}
		}
		c = getc();
	}
	output(ent);

	print_str("codes ");
	print_int(outcnt);
	print_str(" sum ");
	print_int(cksum);
	print_str(" in ");
	print_int(n);
	putc(10);
	return 0;
}
`

// textInput builds a deterministic pseudo-English corpus: Markov-ish word
// soup with repeated phrases, giving LZW realistic dictionary behaviour.
func textInput(scale int) []byte {
	words := []string{
		"the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
		"data", "value", "predict", "table", "cache", "branch", "loop",
		"stride", "context", "order", "model", "trace", "instruction",
		"register", "result", "program", "pattern", "sequence", "history",
	}
	var b strings.Builder
	r := lcg(42)
	n := 64 * 1024 * scale
	for b.Len() < n {
		// Occasionally repeat a canned phrase so the dictionary pays off.
		if r.intn(8) == 0 {
			b.WriteString("the value of the data is in the table ")
			continue
		}
		b.WriteString(words[r.intn(len(words))])
		if r.intn(12) == 0 {
			b.WriteString(".\n")
		} else {
			b.WriteByte(' ')
		}
	}
	return []byte(b.String()[:n])
}
