package bench

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
)

// TestWorkloadsCompileAllLevels ensures every workload builds at -O0..-O3.
func TestWorkloadsCompileAllLevels(t *testing.T) {
	for _, w := range Registry() {
		for opt := 0; opt <= 3; opt++ {
			if _, err := w.Compile(opt); err != nil {
				t.Errorf("%s -O%d: %v", w.Name, opt, err)
			}
		}
	}
}

// TestWorkloadsSelfCheck runs each workload to completion at scale 1 and
// verifies the output digest against the recorded golden value, at both
// -O0 and the reference level; a mismatch indicates a compiler, simulator
// or workload bug.
func TestWorkloadsSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs in -short mode")
	}
	for _, w := range Registry() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			var outRef string
			for _, opt := range []int{0, RefOpt} {
				res, err := w.Run(RunConfig{Opt: opt})
				if err != nil {
					t.Fatalf("-O%d: %v", opt, err)
				}
				if !res.Halted {
					t.Fatalf("-O%d: did not halt", opt)
				}
				if res.ExitCode != 0 {
					t.Fatalf("-O%d: exit %d, output %q", opt, res.ExitCode, res.Output)
				}
				if outRef == "" {
					outRef = string(res.Output)
				} else if string(res.Output) != outRef {
					t.Fatalf("output differs across opt levels:\n-O0:  %q\n-O%d: %q",
						outRef, opt, res.Output)
				}
			}
			t.Logf("%s output: %s", w.Name, strings.TrimSpace(outRef))
			if w.SelfCheck != "" && outRef != w.SelfCheck {
				t.Errorf("self-check mismatch:\n got  %q\n want %q", outRef, w.SelfCheck)
			}
		})
	}
}

// TestWorkloadsProduceEvents verifies each workload generates a healthy
// value-event stream with the category spread the analyses rely on.
func TestWorkloadsProduceEvents(t *testing.T) {
	for _, w := range Registry() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			var perCat [isa.NumCategories]uint64
			res, err := w.Run(RunConfig{
				Opt:       RefOpt,
				MaxEvents: 300_000,
				OnValue:   func(ev sim.ValueEvent) { perCat[ev.Cat]++ },
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Events < 100_000 {
				t.Fatalf("only %d events", res.Events)
			}
			if perCat[isa.CatAddSub] == 0 || perCat[isa.CatLoads] == 0 {
				t.Fatalf("missing core categories: %v", perCat)
			}
		})
	}
}

// TestXlispCountsQueens checks the lisp program actually solves 7-queens.
func TestXlispCountsQueens(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs in -short mode")
	}
	w := Xlisp()
	res, err := w.Run(RunConfig{Opt: RefOpt})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(res.Output), "40\n") {
		t.Fatalf("7-queens solutions: output %q, want prefix \"40\\n\"", res.Output)
	}
}

// TestInputDeterminism guards the experiment reproducibility contract.
func TestInputDeterminism(t *testing.T) {
	for _, w := range Registry() {
		a := w.Input(1)
		b := w.Input(1)
		if string(a) != string(b) {
			t.Errorf("%s: input generation is non-deterministic", w.Name)
		}
		if len(a) == 0 {
			t.Errorf("%s: empty input", w.Name)
		}
	}
}

// TestGccInputProfilesDiffer ensures the Table 6 input files are actually
// different workloads.
func TestGccInputProfilesDiffer(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range GccInputFiles {
		in := string(GccInput(f, 1))
		if seen[in] {
			t.Errorf("%s: duplicate input content", f)
		}
		seen[in] = true
	}
}

func TestByName(t *testing.T) {
	if ByName("compress") == nil || ByName("nope") != nil {
		t.Fatal("ByName lookup broken")
	}
}
