package bench

import "fmt"

// Xlisp returns the 130.li analog: a lisp interpreter written in MiniC
// evaluating an N-queens program — the same workload the paper uses
// ("xlisp, 7 queens"). Value sequences: cons-cell indices (heap-ish
// strides), deep recursive eval with assoc-list environment chasing.
func Xlisp() *Workload {
	return &Workload{
		Name:        "xlisp",
		Paper:       "130.li",
		Description: "lisp interpreter solving N-queens",
		Source:      xlispSrc,
		Input:       xlispInput,
		SelfCheck:   "40\nforms 6 evals 410280 conses 98659\n",
	}
}

// xlispInput returns the lisp program. Scale raises the board size
// (7 queens at scale 1, as in the paper; capped at 8 to bound the cell
// arena).
func xlispInput(scale int) []byte {
	n := 6 + scale
	if n > 8 {
		n = 8
	}
	return []byte(fmt.Sprintf(lispProgram, n))
}

// The guest lisp program: count N-queens solutions with lists.
// 7 queens has 40 solutions, 8 queens 92.
const lispProgram = `
(define abs2 (lambda (x) (if (< x 0) (- 0 x) x)))
(define len2 (lambda (l) (if (nullp l) 0 (+ 1 (len2 (cdr l))))))
(define safe (lambda (row queens d)
  (if (nullp queens) 1
    (if (= (car queens) row) 0
      (if (= (abs2 (- (car queens) row)) d) 0
        (safe row (cdr queens) (+ d 1)))))))
(define tryrow (lambda (n row queens)
  (if (= row n) 0
    (+ (if (= (safe row queens 1) 1) (place n (cons row queens)) 0)
       (tryrow n (+ row 1) queens)))))
(define place (lambda (n queens)
  (if (= (len2 queens) n) 1 (tryrow n 0 queens))))
(print (place %d (quote ())))
`

const xlispSrc = `
// Tiny lisp interpreter, 130.li analog.
//
// Cells live in parallel arrays; tags: 1 int, 2 symbol, 3 cons,
// 4 builtin, 5 lambda. Cell 0 is nil. Small integers are interned so
// arithmetic does not exhaust the arena; there is no garbage collector
// (the arena is sized for the workload, like early xlisp with a large
// heap).

int tag[1000000];
int car_[1000000];
int cdr_[1000000];
int ncells;

// interned small ints -128..1023 (0 means "not yet created")
int smallint[1152];

// symbol interning
char names[8192];
int nameoff[512];
int nsyms;

int genv;      // global environment: assoc list of (sym . val)
int evals;     // eval invocation count
int conses;    // cons allocations

int nextch;

int cell(int t, int a, int d) {
	int id;
	if (ncells >= 1000000) { print_str("heap exhausted\n"); exit(3); }
	id = ncells;
	tag[id] = t; car_[id] = a; cdr_[id] = d;
	ncells = ncells + 1;
	return id;
}

int cons(int a, int d) { conses = conses + 1; return cell(3, a, d); }

int mkint(int v) {
	int idx;
	if (v >= -128 && v < 1024) {
		idx = v + 128;
		if (smallint[idx] == 0) { smallint[idx] = cell(1, v, 0); }
		return smallint[idx];
	}
	return cell(1, v, 0);
}

char symbuf[64];

int intern() {
	int i; int off;
	for (i = 0; i < nsyms; i = i + 1) {
		if (strcmp(names + nameoff[i], symbuf) == 0) { return cell(2, i, 0); }
	}
	if (nsyms >= 512) { print_str("too many symbols\n"); exit(6); }
	off = 0;
	if (nsyms > 0) {
		off = nameoff[nsyms - 1] + strlen(names + nameoff[nsyms - 1]) + 1;
	}
	nameoff[nsyms] = off;
	strcpy(names + off, symbuf);
	nsyms = nsyms + 1;
	return cell(2, nsyms - 1, 0);
}

// --- reader ---

int rpeek() { return nextch; }
int radv() { int c; c = nextch; nextch = getc(); return c; }

void rskip() {
	while (rpeek() == 32 || rpeek() == 10 || rpeek() == 13 || rpeek() == 9) { radv(); }
}

int readexpr() {
	int c; int i; int v; int neg;
	rskip();
	c = rpeek();
	if (c < 0) { return 0; }
	if (c == '(') {
		int head; int tl; int e;
		radv();
		rskip();
		if (rpeek() == ')') { radv(); return 0; }  // ()
		e = readexpr();
		head = cons(e, 0);
		tl = head;
		rskip();
		while (rpeek() != ')' && rpeek() >= 0) {
			e = readexpr();
			cdr_[tl] = cons(e, 0);
			tl = cdr_[tl];
			rskip();
		}
		radv();  // ')'
		return head;
	}
	neg = 0;
	if (c == '-') {
		radv();
		if (rpeek() >= '0' && rpeek() <= '9') {
			neg = 1;
		} else {
			symbuf[0] = '-';
			symbuf[1] = 0;
			return intern();
		}
	}
	if (rpeek() >= '0' && rpeek() <= '9') {
		v = 0;
		while (rpeek() >= '0' && rpeek() <= '9') { v = v * 10 + (radv() - '0'); }
		if (neg) { v = -v; }
		return mkint(v);
	}
	i = 0;
	while (rpeek() > 32 && rpeek() != '(' && rpeek() != ')') {
		if (i < 63) { symbuf[i] = radv(); i = i + 1; } else { radv(); }
	}
	symbuf[i] = 0;
	return intern();
}

// --- environment ---

// lookup walks the lexical chain, then the global environment, so
// top-level definitions may reference later ones (as in xlisp).
int lookup(int symid, int env) {
	int pair; int scan; int round;
	for (round = 0; round < 2; round = round + 1) {
		scan = env;
		if (round == 1) { scan = genv; }
		while (scan) {
			pair = car_[scan];
			if (car_[car_[pair]] == symid) { return cdr_[pair]; }
			scan = cdr_[scan];
		}
	}
	print_str("unbound: ");
	print_str(names + nameoff[symid]);
	putc(10);
	exit(4);
	return 0;
}

int bind(int symcell, int val, int env) {
	return cons(cons(symcell, val), env);
}

int symis(int symcell, char *s) {
	return tag[symcell] == 2 && strcmp(names + nameoff[car_[symcell]], s) == 0;
}

// --- eval ---

int eval(int e, int env);

int apply(int fn, int args, int env) {
	int vals[8];
	int n; int a;
	n = 0;
	a = args;
	while (a && n < 8) {
		vals[n] = eval(car_[a], env);
		n = n + 1;
		a = cdr_[a];
	}
	if (tag[fn] == 5) {
		int params; int body; int lenv; int i;
		params = car_[fn];
		body = car_[cdr_[fn]];
		lenv = cdr_[cdr_[fn]];
		i = 0;
		while (params && i < n) {
			lenv = bind(car_[params], vals[i], lenv);
			params = cdr_[params];
			i = i + 1;
		}
		return eval(body, lenv);
	}
	if (tag[fn] == 4) {
		int b;
		b = car_[fn];
		if (b == 1) { return mkint(car_[vals[0]] + car_[vals[1]]); }
		if (b == 2) { return mkint(car_[vals[0]] - car_[vals[1]]); }
		if (b == 3) { return mkint(car_[vals[0]] * car_[vals[1]]); }
		if (b == 4) { return mkint(car_[vals[0]] < car_[vals[1]]); }
		if (b == 5) { return mkint(car_[vals[0]] == car_[vals[1]]); }
		if (b == 6) { return cons(vals[0], vals[1]); }
		if (b == 7) { return car_[vals[0]]; }
		if (b == 8) { return cdr_[vals[0]]; }
		if (b == 9) { return mkint(vals[0] == 0); }
		if (b == 10) { print_int(car_[vals[0]]); putc(10); return vals[0]; }
	}
	print_str("not a function\n");
	exit(5);
	return 0;
}

int eval(int e, int env) {
	int head;
	evals = evals + 1;
	if (e == 0) { return 0; }
	if (tag[e] == 1) { return e; }
	if (tag[e] == 2) { return lookup(car_[e], env); }
	head = car_[e];
	if (tag[head] == 2) {
		if (symis(head, "quote")) { return car_[cdr_[e]]; }
		if (symis(head, "if")) {
			int c;
			c = eval(car_[cdr_[e]], env);
			if (c != 0 && !(tag[c] == 1 && car_[c] == 0)) {
				return eval(car_[cdr_[cdr_[e]]], env);
			}
			return eval(car_[cdr_[cdr_[cdr_[e]]]], env);
		}
		if (symis(head, "lambda")) {
			return cell(5, car_[cdr_[e]], cons(car_[cdr_[cdr_[e]]], env));
		}
		if (symis(head, "define")) {
			int val;
			val = eval(car_[cdr_[cdr_[e]]], genv);
			genv = bind(car_[cdr_[e]], val, genv);
			return val;
		}
	}
	return apply(eval(head, env), cdr_[e], env);
}

void defbuiltin(char *name, int id) {
	int symcell;
	strcpy(symbuf, name);
	symcell = intern();
	genv = bind(symcell, cell(4, id, 0), genv);
}

int main() {
	int e; int count;
	ncells = 1;  // cell 0 is nil

	defbuiltin("+", 1);
	defbuiltin("-", 2);
	defbuiltin("*", 3);
	defbuiltin("<", 4);
	defbuiltin("=", 5);
	defbuiltin("cons", 6);
	defbuiltin("car", 7);
	defbuiltin("cdr", 8);
	defbuiltin("nullp", 9);
	defbuiltin("print", 10);

	nextch = getc();
	count = 0;
	rskip();
	while (rpeek() >= 0) {
		e = readexpr();
		eval(e, genv);
		count = count + 1;
		rskip();
	}

	print_str("forms ");
	print_int(count);
	print_str(" evals ");
	print_int(evals);
	print_str(" conses ");
	print_int(conses);
	putc(10);
	return 0;
}
`
