package bench

import (
	"fmt"
	"strings"
)

// Gcc returns the 126.gcc analog: a compiler front end written in MiniC.
// It tokenizes a C-like source from its input, builds ASTs in an arena
// (one function at a time, like gcc), constant-folds them, and emits stack
// code, reporting instruction counts. Value sequences: pointer-ish arena
// indices, token-kind repetition, branchy recursive descent.
func Gcc() *Workload {
	return &Workload{
		Name:        "gcc",
		Paper:       "126.gcc",
		Description: "mini-compiler front end (tokenize, parse, fold, emit) over generated source",
		Source:      gccSrc,
		Input:       func(scale int) []byte { return GccInput("gcc.i", scale) },
		SelfCheck:   "funcs 140 emitted 15585 folded 1032 sum 9201253\n",
	}
}

// GccInputFiles lists the synthetic source files standing in for the
// paper's Table 6 gcc inputs.
var GccInputFiles = []string{"jump.i", "emit-rtl.i", "gcc.i", "recog.i", "stmt.i"}

const gccSrc = `
// Mini-compiler front end, 126.gcc analog.
//
// Input language:
//   func NAME { stmt* }
//   stmt: id = expr ; | if (expr) { stmt* } | while (expr) { stmt* }
//         | print expr ;
//   expr: the usual + - * / % ( ) < == operators over ints and ids
//
// The compiler parses one function at a time into an arena, folds
// constants, emits stack machine code, and accumulates statistics.

// token kinds
int T_EOF; int cur; int curval;
char curid[64];

// arena AST: node = (op, a, b); op: '0'=num, 'v'=var, else operator char
int nop[32768];
int na[32768];
int nb[32768];
int nn;

// emitted code statistics
int emitted;
int folded;
int funcs;
int cksum;

int nextc;

int peekc() { return nextc; }
int advc() { int c; c = nextc; nextc = getc(); return c; }

int isspacec(int c) { return c == 32 || c == 10 || c == 9 || c == 13; }
int isdigitc(int c) { return c >= '0' && c <= '9'; }
int isalphac(int c) { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'; }

// token kinds: 0 eof, 1 num, 2 id, else the character itself
void lex() {
	int c; int i;
	while (isspacec(peekc())) { advc(); }
	c = peekc();
	if (c < 0) { cur = 0; return; }
	if (isdigitc(c)) {
		curval = 0;
		while (isdigitc(peekc())) { curval = curval * 10 + (advc() - '0'); }
		cur = 1;
		return;
	}
	if (isalphac(c)) {
		i = 0;
		while (isalphac(peekc()) || isdigitc(peekc())) {
			if (i < 63) { curid[i] = advc(); i = i + 1; } else { advc(); }
		}
		curid[i] = 0;
		cur = 2;
		return;
	}
	advc();
	if (c == '=' && peekc() == '=') { advc(); cur = 'E'; return; }
	cur = c;
}

int node(int op, int a, int b) {
	int id;
	if (nn >= 32768) { print_str("arena overflow\n"); exit(2); }
	id = nn;
	nop[id] = op; na[id] = a; nb[id] = b;
	nn = nn + 1;
	return id;
}

int parse_expr();

int parse_prim() {
	int id;
	if (cur == 1) { id = node('0', curval, 0); lex(); return id; }
	if (cur == 2) {
		// hash the identifier into a symbol slot
		int h; int i;
		h = 0;
		for (i = 0; curid[i]; i = i + 1) { h = (h * 31 + curid[i]) & 1023; }
		id = node('v', h, 0);
		lex();
		return id;
	}
	if (cur == '(') {
		lex();
		id = parse_expr();
		if (cur == ')') { lex(); }
		return id;
	}
	lex();
	return node('0', 0, 0);
}

int parse_mul() {
	int l; int op;
	l = parse_prim();
	while (cur == '*' || cur == '/' || cur == '%') {
		op = cur;
		lex();
		l = node(op, l, parse_prim());
	}
	return l;
}

int parse_add() {
	int l; int op;
	l = parse_mul();
	while (cur == '+' || cur == '-') {
		op = cur;
		lex();
		l = node(op, l, parse_mul());
	}
	return l;
}

int parse_expr() {
	int l; int op;
	l = parse_add();
	while (cur == '<' || cur == 'E') {
		op = cur;
		lex();
		l = node(op, l, parse_add());
	}
	return l;
}

// constant folding: returns (possibly new) node id
int fold(int id) {
	int op; int a; int b;
	op = nop[id];
	if (op == '0' || op == 'v') { return id; }
	a = fold(na[id]);
	b = fold(nb[id]);
	na[id] = a;
	nb[id] = b;
	if (nop[a] == '0' && nop[b] == '0') {
		int x; int y; int r;
		x = na[a]; y = na[b];
		r = 0;
		if (op == '+') { r = x + y; }
		if (op == '-') { r = x - y; }
		if (op == '*') { r = x * y; }
		if (op == '/') { if (y) { r = x / y; } }
		if (op == '%') { if (y) { r = x % y; } }
		if (op == '<') { r = x < y; }
		if (op == 'E') { r = x == y; }
		folded = folded + 1;
		return node('0', r, 0);
	}
	return id;
}

// emit stack code: one "instruction" per node, post-order
void emit(int id) {
	int op;
	op = nop[id];
	if (op == '0') { cksum = (cksum * 33 + na[id]) & 0xFFFFFF; emitted = emitted + 1; return; }
	if (op == 'v') { cksum = (cksum * 37 + na[id]) & 0xFFFFFF; emitted = emitted + 1; return; }
	emit(na[id]);
	emit(nb[id]);
	cksum = (cksum * 41 + op) & 0xFFFFFF;
	emitted = emitted + 1;
}

void parse_stmts();

void parse_stmt() {
	int e;
	if (cur == 2) {
		// could be "if"/"while"/"print"/assignment; compare names
		if (strcmp(curid, "if") == 0) {
			lex();
			if (cur == '(') { lex(); }
			e = fold(parse_expr());
			if (cur == ')') { lex(); }
			emit(e);
			emitted = emitted + 1;  // branch
			if (cur == '{') { lex(); parse_stmts(); if (cur == '}') { lex(); } }
			return;
		}
		if (strcmp(curid, "while") == 0) {
			lex();
			if (cur == '(') { lex(); }
			e = fold(parse_expr());
			if (cur == ')') { lex(); }
			emit(e);
			emitted = emitted + 2;  // branch + backedge
			if (cur == '{') { lex(); parse_stmts(); if (cur == '}') { lex(); } }
			return;
		}
		if (strcmp(curid, "print") == 0) {
			lex();
			e = fold(parse_expr());
			emit(e);
			emitted = emitted + 1;
			if (cur == ';') { lex(); }
			return;
		}
		// assignment: id = expr ;
		lex();
		if (cur == '=') { lex(); }
		e = fold(parse_expr());
		emit(e);
		emitted = emitted + 1;  // store
		if (cur == ';') { lex(); }
		return;
	}
	lex();
}

void parse_stmts() {
	while (cur != 0 && cur != '}') { parse_stmt(); }
}

int main() {
	nextc = getc();
	lex();
	while (cur != 0) {
		// func NAME { stmts }
		if (cur == 2 && strcmp(curid, "func") == 0) {
			lex();       // name
			if (cur == 2) { lex(); }
			if (cur == '{') { lex(); }
			nn = 0;      // reset the arena per function, like gcc
			parse_stmts();
			if (cur == '}') { lex(); }
			funcs = funcs + 1;
		} else {
			lex();
		}
	}
	print_str("funcs ");
	print_int(funcs);
	print_str(" emitted ");
	print_int(emitted);
	print_str(" folded ");
	print_int(folded);
	print_str(" sum ");
	print_int(cksum);
	putc(10);
	return 0;
}
`

// GccInput generates a synthetic C-like source file. Each named file uses
// a different seed and statement mix, standing in for the paper's
// different gcc inputs (Table 6). Scale multiplies the function count.
func GccInput(file string, scale int) []byte {
	profile := map[string]struct {
		seed  uint64
		funcs int
		exprD int // expression depth bias
		loops int // while-density percent
	}{
		"jump.i":     {seed: 11, funcs: 110, exprD: 2, loops: 30},
		"emit-rtl.i": {seed: 22, funcs: 120, exprD: 3, loops: 10},
		"gcc.i":      {seed: 33, funcs: 140, exprD: 3, loops: 20},
		"recog.i":    {seed: 44, funcs: 200, exprD: 4, loops: 15},
		"stmt.i":     {seed: 55, funcs: 380, exprD: 3, loops: 40},
	}
	p, ok := profile[file]
	if !ok {
		p = profile["gcc.i"]
	}
	r := lcg(p.seed)
	var b strings.Builder
	ids := []string{"i", "j", "k", "n", "tmp", "acc", "ptr", "len", "idx", "val"}
	var expr func(d int) string
	expr = func(d int) string {
		if d <= 0 {
			if r.intn(2) == 0 {
				return fmt.Sprint(r.intn(1000))
			}
			return ids[r.intn(len(ids))]
		}
		ops := []string{"+", "-", "*", "/", "%", "<", "=="}
		op := ops[r.intn(len(ops))]
		l, rr := expr(d-1-r.intn(2)), expr(d-1-r.intn(2))
		if r.intn(3) == 0 {
			return "(" + l + " " + op + " " + rr + ")"
		}
		return l + " " + op + " " + rr
	}
	var stmts func(depth, n int)
	stmts = func(depth, n int) {
		for s := 0; s < n; s++ {
			switch {
			case depth < 2 && r.intn(100) < p.loops:
				fmt.Fprintf(&b, "while (%s) {\n", expr(1))
				stmts(depth+1, 1+r.intn(3))
				b.WriteString("}\n")
			case depth < 2 && r.intn(100) < 25:
				fmt.Fprintf(&b, "if (%s) {\n", expr(p.exprD-1))
				stmts(depth+1, 1+r.intn(2))
				b.WriteString("}\n")
			case r.intn(100) < 10:
				fmt.Fprintf(&b, "print %s;\n", expr(p.exprD))
			default:
				fmt.Fprintf(&b, "%s = %s;\n", ids[r.intn(len(ids))], expr(p.exprD))
			}
		}
	}
	for f := 0; f < p.funcs*scale; f++ {
		fmt.Fprintf(&b, "func f%d {\n", f)
		stmts(0, 3+r.intn(8))
		b.WriteString("}\n")
	}
	return []byte(b.String())
}
