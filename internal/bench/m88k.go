package bench

import "fmt"

// M88ksim returns the 124.m88ksim analog: an instruction-set interpreter
// written in MiniC (a simulator inside the simulator, exactly the paper's
// workload class). It executes an embedded toy-RISC ("M8") guest program —
// a prime counter plus a memory-walking loop — for an input-selected
// number of outer iterations. Value sequences: interpreter dispatch
// produces highly repetitive (pc, opcode, operand) streams, the classic
// FCM-friendly case the paper highlights.
func M88ksim() *Workload {
	return &Workload{
		Name:        "m88ksim",
		Paper:       "124.m88ksim",
		Description: "toy-RISC interpreter running a prime-counting guest program",
		Source:      m88kSrc,
		Input:       m88kInput,
		SelfCheck:   "steps 502145 outs 120 sum 12520986\n",
	}
}

// m88kInput encodes the outer iteration count as decimal text.
func m88kInput(scale int) []byte {
	return []byte(fmt.Sprintf("%d\n", 60*scale))
}

// The M8 guest ISA, one int per instruction:
//
//	bits 24..31 opcode, 16..23 rd (or branch target), 8..15 rs, 0..7 rt/imm8
//
//	1 ADDI  2 ADD  3 SUB  4 MUL  5 DIV  6 REM  7 LD  8 ST
//	9 BEQ  10 BNE  11 BLT  12 JMP(imm24)  13 OUT  14 HALT  15 SLT  17 AND
const m88kSrc = `
// Toy-RISC ("M8") interpreter, 124.m88ksim analog.
//
// Guest program (r1 = prime limit, set by the host per run):
//   0..16  count primes below r1 by trial division -> r3
//   17..29 OUT count, then walk guest memory with stride 7 mod 128
//
// Encoding: op<<24 | rd<<16 | rs<<8 | rt  (branch target in rd field).

int code[30] = {
	(1<<24)+(2<<16)+(0<<8)+2,    //  0: addi r2, r0, 2      n = 2
	(1<<24)+(3<<16)+(0<<8)+0,    //  1: addi r3, r0, 0      count = 0
	(15<<24)+(4<<16)+(2<<8)+1,   //  2: slt  r4, r2, r1     n < limit ?
	(9<<24)+(17<<16)+(4<<8)+0,   //  3: beq  r4, r0 -> 17   done
	(1<<24)+(5<<16)+(0<<8)+2,    //  4: addi r5, r0, 2      d = 2
	(1<<24)+(6<<16)+(0<<8)+1,    //  5: addi r6, r0, 1      isprime = 1
	(4<<24)+(7<<16)+(5<<8)+5,    //  6: mul  r7, r5, r5
	(15<<24)+(8<<16)+(2<<8)+7,   //  7: slt  r8, r2, r7     n < d*d ?
	(10<<24)+(14<<16)+(8<<8)+0,  //  8: bne  r8, r0 -> 14   prime confirmed
	(6<<24)+(9<<16)+(2<<8)+5,    //  9: rem  r9, r2, r5
	(9<<24)+(13<<16)+(9<<8)+0,   // 10: beq  r9, r0 -> 13   divisible
	(1<<24)+(5<<16)+(5<<8)+1,    // 11: addi r5, r5, 1
	(12<<24)+6,                  // 12: jmp  6
	(1<<24)+(6<<16)+(0<<8)+0,    // 13: addi r6, r0, 0      isprime = 0
	(2<<24)+(3<<16)+(3<<8)+6,    // 14: add  r3, r3, r6
	(1<<24)+(2<<16)+(2<<8)+1,    // 15: addi r2, r2, 1
	(12<<24)+2,                  // 16: jmp  2
	(13<<24)+(0<<16)+(3<<8)+0,   // 17: out  r3
	(1<<24)+(10<<16)+(0<<8)+0,   // 18: addi r10, r0, 0     idx = 0
	(1<<24)+(11<<16)+(0<<8)+0,   // 19: addi r11, r0, 0     sum = 0
	(1<<24)+(13<<16)+(0<<8)+64,  // 20: addi r13, r0, 64    counter
	(7<<24)+(12<<16)+(10<<8)+0,  // 21: ld   r12, [r10]
	(2<<24)+(11<<16)+(11<<8)+12, // 22: add  r11, r11, r12
	(1<<24)+(10<<16)+(10<<8)+7,  // 23: addi r10, r10, 7
	(1<<24)+(14<<16)+(0<<8)+127, // 24: addi r14, r0, 127
	(17<<24)+(10<<16)+(10<<8)+14,// 25: and  r10, r10, r14
	(1<<24)+(13<<16)+(13<<8)+255,// 26: addi r13, r13, -1
	(10<<24)+(21<<16)+(13<<8)+0, // 27: bne  r13, r0 -> 21
	(13<<24)+(0<<16)+(11<<8)+0,  // 28: out  r11
	(14<<24)                     // 29: halt
};

int gmem[128];
int regs[16];
int out_sum;
int out_cnt;

int sext8(int v) {
	if (v >= 128) { return v - 256; }
	return v;
}

// run the guest until halt or step budget; returns steps or -1 on a bad
// opcode
int interp(int max_steps) {
	int pc; int inst; int op; int rd; int rs; int rt; int steps;
	pc = 0;
	steps = 0;
	while (steps < max_steps) {
		steps = steps + 1;
		inst = code[pc];
		op = (inst >> 24) & 0xFF;
		rd = (inst >> 16) & 0xFF;
		rs = (inst >> 8) & 0xFF;
		rt = inst & 0xFF;
		pc = pc + 1;
		if (op == 1) { regs[rd] = regs[rs] + sext8(rt); }
		else { if (op == 2) { regs[rd] = regs[rs] + regs[rt]; }
		else { if (op == 3) { regs[rd] = regs[rs] - regs[rt]; }
		else { if (op == 4) { regs[rd] = regs[rs] * regs[rt]; }
		else { if (op == 5) { if (regs[rt]) { regs[rd] = regs[rs] / regs[rt]; } }
		else { if (op == 6) { if (regs[rt]) { regs[rd] = regs[rs] % regs[rt]; } }
		else { if (op == 7) { regs[rd] = gmem[regs[rs] & 127]; }
		else { if (op == 8) { gmem[regs[rs] & 127] = regs[rt]; }
		else { if (op == 9) { if (regs[rs] == regs[rt]) { pc = rd; } }
		else { if (op == 10) { if (regs[rs] != regs[rt]) { pc = rd; } }
		else { if (op == 11) { if (regs[rs] < regs[rt]) { pc = rd; } }
		else { if (op == 12) { pc = inst & 0xFFFFFF; }
		else { if (op == 13) { out_sum = (out_sum * 31 + regs[rs]) & 0xFFFFFF; out_cnt = out_cnt + 1; }
		else { if (op == 14) { return steps; }
		else { if (op == 15) { regs[rd] = regs[rs] < regs[rt]; }
		else { if (op == 17) { regs[rd] = regs[rs] & regs[rt]; }
		else { return -1; } } } } } } } } } } } } } } } }
		regs[0] = 0;
	}
	return steps;
}

int main() {
	int iters; int c; int i; int total;
	iters = 0;
	c = getc();
	while (c >= '0' && c <= '9') { iters = iters * 10 + (c - '0'); c = getc(); }
	if (iters < 1) { iters = 1; }

	for (i = 0; i < 128; i = i + 1) { gmem[i] = i * 3 + 1; }

	total = 0;
	for (i = 0; i < iters; i = i + 1) {
		int r;
		regs[1] = 200 + (i % 17) * 8;   // guest prime limit varies per run
		r = interp(500000);
		if (r < 0) { print_str("bad opcode\n"); return 2; }
		total = total + r;
	}
	print_str("steps ");
	print_int(total);
	print_str(" outs ");
	print_int(out_cnt);
	print_str(" sum ");
	print_int(out_sum);
	putc(10);
	return 0;
}
`
