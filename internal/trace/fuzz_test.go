package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/isa"
)

// eventsFromBytes derives a deterministic event stream from fuzz input:
// 11 bytes per event — 2 for the PC (small space, so the per-PC value
// delta chains get exercised), 1 for the category, 8 for the value.
func eventsFromBytes(data []byte) []Event {
	var evs []Event
	for len(data) >= 11 {
		evs = append(evs, Event{
			PC:    uint64(binary.LittleEndian.Uint16(data)),
			Cat:   isa.Category(data[2] % uint8(isa.NumCategories)),
			Value: binary.LittleEndian.Uint64(data[3:]),
		})
		data = data[11:]
	}
	return evs
}

func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 33))
	f.Add([]byte("\x04\x00\x01\xff\xff\xff\xff\xff\xff\xff\xff" +
		"\x04\x00\x01\x00\x00\x00\x00\x00\x00\x00\x00" +
		"\x08\x00\x02\x08\x00\x00\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		in := eventsFromBytes(data)
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{Benchmark: "fuzz", Opt: 1, Scale: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range in {
			if err := w.Write(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if r.Header != (Header{Benchmark: "fuzz", Opt: 1, Scale: 2}) {
			t.Fatalf("header = %+v", r.Header)
		}
		i := 0
		err = r.ForEach(func(ev Event) error {
			if i >= len(in) {
				return errors.New("decoded more events than written")
			}
			if ev != in[i] {
				t.Fatalf("event %d = %+v, want %+v", i, ev, in[i])
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if i != len(in) {
			t.Fatalf("decoded %d of %d events", i, len(in))
		}
	})
}

// FuzzReaderRobustness feeds arbitrary bytes to the decoder: it must
// reject or cleanly error on anything malformed, never panic or loop.
func FuzzReaderRobustness(f *testing.F) {
	var valid bytes.Buffer
	w, _ := NewWriter(&valid, Header{Benchmark: "seed"})
	w.Write(Event{PC: 4, Cat: isa.CatLoads, Value: 7})
	w.Close()
	f.Add(valid.Bytes())
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := 0
		for ; n < 1<<20; n++ { // decoded events are bounded by input size
			if _, err := r.Read(); err != nil {
				break
			}
		}
	})
}

// rawStream builds a gzip-wrapped stream with an arbitrary inner payload,
// for corrupt-input tests that must get past the gzip layer.
func rawStream(t *testing.T, magic string, body func(*bytes.Buffer)) []byte {
	t.Helper()
	var inner bytes.Buffer
	inner.WriteString(magic)
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], uint64(len("x")))
	inner.Write(b[:n])
	inner.WriteString("x") // benchmark name
	n = binary.PutUvarint(b[:], 2)
	n += binary.PutUvarint(b[n:], 1)
	inner.Write(b[:n]) // opt, scale
	if body != nil {
		body(&inner)
	}
	var out bytes.Buffer
	gz := gzip.NewWriter(&out)
	if _, err := gz.Write(inner.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// putRecord appends one encoded record: zigzag PC delta, raw category
// byte, zigzag value delta — the writer's exact layout.
func putRecord(buf *bytes.Buffer, pcDelta int64, cat byte, valDelta int64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], zigzag(pcDelta))
	buf.Write(b[:n])
	buf.WriteByte(cat)
	n = binary.PutUvarint(b[:], zigzag(valDelta))
	buf.Write(b[:n])
}

func TestCorruptBadMagic(t *testing.T) {
	data := rawStream(t, "VPTRACE9", nil)
	if _, err := NewReader(bytes.NewReader(data)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCorruptCategoryByte(t *testing.T) {
	data := rawStream(t, Magic, func(buf *bytes.Buffer) {
		putRecord(buf, 0x400, byte(isa.CatNone)+3, 42)
	})
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("corrupt category byte accepted")
	}
}

func TestCorruptTruncatedVarint(t *testing.T) {
	// One valid record, then a varint cut off mid-encoding (a continuation
	// byte with no successor). The reader must report an unexpected EOF,
	// not silently end the stream as if it were complete.
	data := rawStream(t, Magic, func(buf *bytes.Buffer) {
		putRecord(buf, 0x400, 0, 42)
		buf.WriteByte(0x80)
	})
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != nil {
		t.Fatalf("valid first record rejected: %v", err)
	}
	_, err = r.Read()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated varint: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestCorruptRecordCutAtCategory(t *testing.T) {
	// Stream ends after the PC delta: the category read must surface an
	// unexpected EOF.
	data := rawStream(t, Magic, func(buf *bytes.Buffer) {
		var b [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(b[:], zigzag(0x400))
		buf.Write(b[:n])
	})
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Read()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("cut record: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestCorruptVarintOverflow(t *testing.T) {
	// An 11-byte continuation run cannot encode a uint64, and neither can
	// a 10-byte varint whose final byte carries more than bit 63 — the
	// latter must error, not silently truncate the delta.
	for name, tail := range map[string][]byte{
		"eleven-bytes":    append(bytes.Repeat([]byte{0xFF}, 11), 0x01),
		"tenth-byte-wide": append(bytes.Repeat([]byte{0xFF}, 9), 0x03),
	} {
		data := rawStream(t, Magic, func(buf *bytes.Buffer) {
			buf.Write(tail)
		})
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(); err == nil {
			t.Fatalf("%s: overflowing varint accepted", name)
		}
	}
}

func TestReadBatchSemantics(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Benchmark: "b"})
	const n = 10
	for i := 0; i < n; i++ {
		w.Write(Event{PC: uint64(i * 4), Cat: isa.CatAddSub, Value: uint64(i)})
	}
	w.Close()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Event, 4)
	var got []Event
	for {
		k, err := r.ReadBatch(dst)
		got = append(got, dst[:k]...)
		if errors.Is(err, io.EOF) || k < len(dst) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != n {
		t.Fatalf("batched read returned %d events, want %d", len(got), n)
	}
	for i, ev := range got {
		if ev.PC != uint64(i*4) || ev.Value != uint64(i) {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if k, err := r.ReadBatch(dst); k != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("post-end ReadBatch = %d, %v", k, err)
	}
}

func TestForEachBatchMatchesForEach(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Benchmark: "b"})
	const n = 1000
	for i := 0; i < n; i++ {
		w.Write(Event{PC: uint64(0x400 + (i%7)*4), Cat: isa.CatLoads, Value: uint64(i * 3)})
	}
	w.Close()
	data := buf.Bytes()

	var serial []Event
	r1, _ := NewReader(bytes.NewReader(data))
	r1.ForEach(func(ev Event) error { serial = append(serial, ev); return nil })

	var batched []Event
	r2, _ := NewReader(bytes.NewReader(data))
	err := r2.ForEachBatch(64, func(evs []Event) error {
		batched = append(batched, evs...) // append copies, satisfying the reuse contract
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(serial) {
		t.Fatalf("batched %d events, serial %d", len(batched), len(serial))
	}
	for i := range serial {
		if batched[i] != serial[i] {
			t.Fatalf("event %d: batched %+v, serial %+v", i, batched[i], serial[i])
		}
	}
}
