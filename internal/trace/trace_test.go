package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	events := []Event{
		{PC: 0x100, Cat: isa.CatAddSub, Value: 42},
		{PC: 0x104, Cat: isa.CatLoads, Value: 0xDEADBEEF},
		{PC: 0x100, Cat: isa.CatAddSub, Value: 43},
		{PC: 0x100, Cat: isa.CatAddSub, Value: 44},
		{PC: 0x2000, Cat: isa.CatShift, Value: ^uint64(0)},
		{PC: 0x104, Cat: isa.CatLoads, Value: 0},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Benchmark: "unit", Opt: 2, Scale: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(events)) {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.Benchmark != "unit" || r.Header.Opt != 2 || r.Header.Scale != 3 {
		t.Fatalf("header = %+v", r.Header)
	}
	var got []Event
	if err := r.ForEach(func(ev Event) error { got = append(got, ev); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestPropertyRoundTripArbitraryStreams(t *testing.T) {
	f := func(pcs []uint16, vals []uint64, cats []uint8) bool {
		n := min(len(pcs), min(len(vals), len(cats)))
		in := make([]Event, n)
		for i := 0; i < n; i++ {
			in[i] = Event{
				PC:    uint64(pcs[i]),
				Cat:   isa.Category(cats[i] % uint8(isa.NumCategories)),
				Value: vals[i],
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{Benchmark: "q"})
		if err != nil {
			return false
		}
		for _, ev := range in {
			if w.Write(ev) != nil {
				return false
			}
		}
		if w.Close() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := 0; ; i++ {
			ev, err := r.Read()
			if errors.Is(err, io.EOF) {
				return i == n
			}
			if err != nil || i >= n || ev != in[i] {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("expected error for non-gzip input")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Benchmark: "x"})
	w.Write(Event{PC: 1, Value: 2})
	w.Close()
	data := buf.Bytes()
	// Truncated stream: should surface an error, not silently succeed.
	r, err := NewReader(bytes.NewReader(data[:len(data)-4]))
	if err == nil {
		err = r.ForEach(func(Event) error { return nil })
	}
	if err == nil {
		t.Fatal("expected error for truncated trace")
	}
}

func TestCaptureFromWorkloadAndReplay(t *testing.T) {
	// Capture a small compress trace, replay it, and verify the replayed
	// stream matches live simulation event for event.
	w := bench.Compress()
	var live []Event
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, Header{Benchmark: w.Name, Opt: 2, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.Run(bench.RunConfig{
		Opt:       2,
		MaxEvents: 20_000,
		OnValue: func(ev sim.ValueEvent) {
			e := FromSim(ev)
			live = append(live, e)
			if err := tw.Write(e); err != nil {
				t.Fatal(err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("trace: %d events in %d compressed bytes (%.2f bytes/event)",
		len(live), buf.Len(), float64(buf.Len())/float64(len(live)))

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	err = r.ForEach(func(ev Event) error {
		if ev != live[i] {
			return errors.New("replay diverged from live stream")
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(live) {
		t.Fatalf("replayed %d of %d events", i, len(live))
	}
}

func TestCompressionRatio(t *testing.T) {
	// The per-PC delta scheme should encode strided streams compactly:
	// well under 3 bytes/event for a loop-heavy workload.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Benchmark: "synthetic"})
	n := 50_000
	for i := 0; i < n; i++ {
		pc := uint64(0x400 + (i%10)*4)
		w.Write(Event{PC: pc, Cat: isa.CatAddSub, Value: uint64(i * 8)})
	}
	w.Close()
	perEvent := float64(buf.Len()) / float64(n)
	if perEvent > 3 {
		t.Fatalf("%.2f bytes/event, want < 3", perEvent)
	}
}
